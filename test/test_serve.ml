(* Protocol-level tests of the plan-serving daemon core (Serve.handle):
   cold/warm plan requests, malformed-request handling, the stats
   endpoint, and profile hot-reload through the artifact fingerprint
   watcher. These drive the exact code path behind both isaac_serve
   transports, minus the fd plumbing. *)

let () = Unix.putenv "ISAAC_SEARCH_CAP" "4000"

module J = Obs.Json

let profile =
  lazy
    (let rng = Util.Rng.create 604 in
     let engine =
       Isaac.tune ~samples:1200 ~epochs:10 ~arch:[| 32; 32 |] rng
         Gpu.Device.gtx980ti ~op:`Gemm ()
     in
     Isaac.profile engine)

(* A second profile for the same device/op with different weights, so a
   hot reload has a genuinely different file to pick up. *)
let profile2 =
  lazy
    (let rng = Util.Rng.create 1303 in
     let engine =
       Isaac.tune ~samples:1200 ~epochs:10 ~arch:[| 24; 24 |] rng
         Gpu.Device.gtx980ti ~op:`Gemm ()
     in
     Isaac.profile engine)

let with_server ?reload_interval f =
  let path = Filename.temp_file "serve_test" ".profile" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tuner.Profile.save (Lazy.force profile) path;
      match Serve.create ?reload_interval ~gemm_profile:path () with
      | Error msg -> Alcotest.fail msg
      | Ok srv -> f srv path)

let field response name =
  match J.member name (J.of_string response) with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks field %S" response name

let expect_ok response =
  Alcotest.(check (option bool))
    ("ok in " ^ response) (Some true)
    (J.to_bool (field response "ok"))

let handle_line srv line =
  let response, verdict = Serve.handle srv line in
  Alcotest.(check bool) "connection stays open" true (verdict = `Continue);
  response

let gemm_req = {|{"op":"gemm","id":1,"m":256,"n":64,"k":256}|}

let test_ping_and_ids () =
  with_server (fun srv _ ->
      let r = handle_line srv {|{"op":"ping","id":42}|} in
      expect_ok r;
      Alcotest.(check (option int)) "id echoed" (Some 42)
        (J.to_int (field r "id")))

let test_cold_then_warm () =
  with_server (fun srv _ ->
      let cold = handle_line srv gemm_req in
      expect_ok cold;
      Alcotest.(check (option string)) "first query misses" (Some "miss")
        (J.to_str (field cold "cache"));
      let warm = handle_line srv gemm_req in
      expect_ok warm;
      Alcotest.(check (option string)) "second query hits" (Some "hit")
        (J.to_str (field warm "cache"));
      (* the warm response re-serializes the identical plan *)
      Alcotest.(check string) "bit-identical plan on the wire"
        (J.to_string (field cold "plan"))
        (J.to_string (field warm "plan"));
      let plan = field cold "plan" in
      List.iter
        (fun k ->
          match J.member k plan with
          | Some (J.Int v) ->
            Alcotest.(check bool) (k ^ " positive") true (v > 0)
          | _ -> Alcotest.failf "plan lacks integer field %S" k)
        [ "ms"; "ns"; "ks"; "ml"; "nl"; "u"; "vec"; "db" ])

let test_errors () =
  with_server (fun srv _ ->
      let check_error line =
        let r = handle_line srv line in
        Alcotest.(check (option bool)) ("not ok: " ^ line) (Some false)
          (J.to_bool (field r "ok"));
        ignore (field r "error")
      in
      check_error "this is not json";
      check_error {|{"no_op_field":1}|};
      check_error {|{"op":"teleport"}|};
      check_error {|{"op":"gemm","m":256,"n":64}|};
      check_error {|{"op":"gemm","m":"big","n":64,"k":256}|};
      check_error {|{"op":"gemm","m":256,"n":64,"k":256,"dtype":"f128"}|};
      (* no conv profile was loaded *)
      check_error {|{"op":"conv","n":1,"c":8,"k":8,"p":4,"q":4,"r":3,"s":3}|})

let stats_cache_entries srv =
  let r = handle_line srv {|{"op":"stats"}|} in
  expect_ok r;
  match J.member "entries" (field r "cache") with
  | Some (J.Int n) -> n
  | _ -> Alcotest.fail "stats lacks cache.entries"

let test_stats () =
  with_server (fun srv _ ->
      Alcotest.(check int) "cold daemon: empty cache" 0 (stats_cache_entries srv);
      ignore (handle_line srv gemm_req);
      ignore (handle_line srv gemm_req);
      let r = handle_line srv {|{"op":"stats"}|} in
      let cache = field r "cache" in
      let get k =
        match J.member k cache with
        | Some (J.Int n) -> n
        | _ -> Alcotest.failf "stats lacks cache.%s" k
      in
      Alcotest.(check int) "one resident plan" 1 (get "entries");
      Alcotest.(check int) "one miss" 1 (get "misses");
      Alcotest.(check int) "one hit" 1 (get "hits");
      (* plan requests counted; ping/stats probes are not *)
      match J.member "requests" (J.of_string r) with
      | Some (J.Int n) -> Alcotest.(check int) "two plan requests" 2 n
      | _ -> Alcotest.fail "stats lacks requests")

let test_shutdown_verdict () =
  with_server (fun srv _ ->
      let response, verdict = Serve.handle srv {|{"op":"shutdown","id":9}|} in
      expect_ok response;
      Alcotest.(check bool) "transport told to stop" true (verdict = `Stop))

(* Rewriting the profile file must swap in a fresh engine (cold cache)
   on the next forced reload; rewriting identical bytes must not. *)
let test_hot_reload () =
  with_server ~reload_interval:3600.0 (fun srv path ->
      ignore (handle_line srv gemm_req);
      Alcotest.(check int) "plan resident" 1 (stats_cache_entries srv);
      (* identical bytes -> fingerprint unchanged -> no reload *)
      Tuner.Profile.save (Lazy.force profile) path;
      Alcotest.(check int) "same profile: no reload" 0
        (Serve.maybe_reload ~force:true srv);
      Alcotest.(check int) "cache untouched" 1 (stats_cache_entries srv);
      (* different profile -> reload, engine swapped, cache cold *)
      Tuner.Profile.save (Lazy.force profile2) path;
      let r = handle_line srv {|{"op":"reload"}|} in
      expect_ok r;
      Alcotest.(check (option int)) "one slot reloaded" (Some 1)
        (J.to_int (field r "reloaded"));
      Alcotest.(check int) "new engine starts cold" 0 (stats_cache_entries srv);
      (* and it still serves plans *)
      let cold = handle_line srv gemm_req in
      Alcotest.(check (option string)) "re-planned after reload" (Some "miss")
        (J.to_str (field cold "cache")))

(* The rate limiter: without force, a second check inside the interval
   is a no-op even if the file changed. *)
let test_reload_rate_limit () =
  with_server ~reload_interval:3600.0 (fun srv path ->
      Tuner.Profile.save (Lazy.force profile2) path;
      Alcotest.(check int) "inside the interval: not even checked" 0
        (Serve.maybe_reload srv);
      Alcotest.(check int) "forced: picked up" 1 (Serve.maybe_reload ~force:true srv))

let slow name f = Alcotest.test_case name `Slow f

let () =
  Alcotest.run "serve"
    [ ("protocol",
       [ slow "ping + id echo" test_ping_and_ids;
         slow "cold miss, warm hit, identical plan" test_cold_then_warm;
         slow "malformed requests" test_errors;
         slow "stats endpoint" test_stats;
         slow "shutdown verdict" test_shutdown_verdict ]);
      ("hot reload",
       [ slow "rewritten profile picked up without restart" test_hot_reload;
         slow "rate limited unless forced" test_reload_rate_limit ]) ]
