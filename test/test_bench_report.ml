(* Benchmark observatory: BENCH report JSON round-trips and schema
   validation, the statistical regression gate (deterministic tolerance,
   CI-overlap rule for timing metrics, shape-check transitions), the
   percentile-bootstrap confidence interval and robust-stats helpers
   behind it, and model-vs-counter attribution on synthetic samples with
   known proportionality. *)

module BR = Obs.Bench_report
module R = Obs.Regress

let quick name f = Alcotest.test_case name `Quick f

let env =
  { BR.rev = "deadbeef1234";
    seed = 42;
    repro_scale = 0.5;
    device = "GTX 980 Ti, Tesla P100";
    argv = [ "main.exe"; "table1" ];
    knobs = [ ("REPRO_SCALE", "0.5"); ("REPRO_SEED", "42") ];
    ocaml_version = Sys.ocaml_version;
    hostname = "testhost" }

let metric ?ci ?n ?(kind = BR.Deterministic) ?(direction = BR.Higher_better)
    ?(experiment = "t") ?(unit_ = "x") name value =
  { BR.m_name = name; m_experiment = experiment; value; unit_; direction;
    kind; ci; n }

let report ?(experiments = []) ?(attribution = []) metrics =
  { BR.version = BR.schema_version; env; experiments; metrics; attribution }

(* --- serialization ------------------------------------------------------ *)

let full_report () =
  report
    ~experiments:
      [ { BR.key = "table1"; wall_seconds = 1.25;
          checks =
            [ { BR.claim = "acceptance ratio"; paper = "200x"; ours = "310x";
                pass = true };
              { BR.claim = "under 2h"; paper = "< 2 h"; ours = "0.01 h";
                pass = false } ] } ]
    ~attribution:
      [ { BR.term = "mem_seconds"; counter = "interp.global_transactions";
          a_n = 48; pearson_r = 0.93; scale = 2.5e-9; drift = 0.12 } ]
    [ metric "fig6.geomean" 4.25 ~ci:(4.0, 4.5) ~n:14;
      metric "micro.sample" 131.0 ~kind:BR.Timing ~direction:BR.Lower_better;
      metric "info.only" 7.0 ~direction:BR.Neutral ]

let test_roundtrip () =
  let t = full_report () in
  (match BR.of_json (Obs.Json.of_string (Obs.Json.to_string (BR.to_json t))) with
   | Ok t' ->
     Alcotest.(check bool) "round-trip preserves the report" true (t = t')
   | Error e -> Alcotest.failf "round-trip failed: %s" e);
  let path = Filename.temp_file "isaac_bench" ".json" in
  BR.write ~path t;
  (match BR.load path with
   | Ok t' -> Alcotest.(check bool) "file round-trip" true (t = t')
   | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_schema_validation () =
  let json = BR.to_json (full_report ()) in
  let tamper f =
    match json with
    | Obs.Json.Obj fields -> Obs.Json.Obj (List.map f fields)
    | _ -> Alcotest.fail "report did not serialize to an object"
  in
  let newer =
    tamper (fun (k, v) ->
        if k = "version" then (k, Obs.Json.Int (BR.schema_version + 1))
        else (k, v))
  in
  (match BR.of_json newer with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted a newer schema version");
  let wrong_schema =
    tamper (fun (k, v) ->
        if k = "schema" then (k, Obs.Json.String "other") else (k, v))
  in
  (match BR.of_json wrong_schema with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted a foreign schema name");
  match BR.of_json (Obs.Json.Obj [ ("schema", Obs.Json.String "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated report"

let test_filename () =
  Alcotest.(check string) "filename" "BENCH_abc123.json"
    (BR.filename ~rev:"abc123")

(* --- regression gate ---------------------------------------------------- *)

let names l = List.map (fun c -> c.R.c_name) l

let test_deterministic_gate () =
  let base = report [ metric "fig6.geomean" 4.0; metric "table2.mse" 0.08
                        ~direction:BR.Lower_better ] in
  (* 20% TFLOPS drop and 50% MSE growth: both significant. *)
  let cand = report [ metric "fig6.geomean" 3.2; metric "table2.mse" 0.12
                        ~direction:BR.Lower_better ] in
  let regs = R.regressions (R.compare_reports base cand) in
  Alcotest.(check (list string)) "both deterministic drifts flagged"
    [ "fig6.geomean"; "table2.mse" ] (names regs);
  (* 0.5% drift stays inside the tolerance; improvement never flags. *)
  let cand = report [ metric "fig6.geomean" 3.99; metric "table2.mse" 0.02
                        ~direction:BR.Lower_better ] in
  let comps = R.compare_reports base cand in
  Alcotest.(check int) "no regressions" 0 (List.length (R.regressions comps));
  let v name =
    (List.find (fun c -> c.R.c_name = name) comps).R.verdict
  in
  Alcotest.(check bool) "small drift unchanged" true (v "fig6.geomean" = R.Unchanged);
  Alcotest.(check bool) "improvement recognised" true (v "table2.mse" = R.Improved)

let test_timing_ci_gate () =
  let timing ?ci v =
    metric "micro.op" v ?ci ~kind:BR.Timing ~direction:BR.Lower_better
  in
  let gate base cand = R.regressions (R.compare_reports base cand) <> [] in
  (* 40% slower but overlapping CIs: noise, not a regression. *)
  Alcotest.(check bool) "overlapping CIs not flagged" false
    (gate
       (report [ timing 100.0 ~ci:(80.0, 150.0) ])
       (report [ timing 140.0 ~ci:(120.0, 200.0) ]));
  (* 40% slower with disjoint CIs: significant. *)
  Alcotest.(check bool) "disjoint CIs flagged" true
    (gate
       (report [ timing 100.0 ~ci:(95.0, 105.0) ])
       (report [ timing 140.0 ~ci:(132.0, 148.0) ]));
  (* Disjoint but under the 25% threshold: reported, not significant. *)
  let comps =
    R.compare_reports
      (report [ timing 100.0 ~ci:(99.0, 101.0) ])
      (report [ timing 110.0 ~ci:(109.0, 111.0) ])
  in
  Alcotest.(check int) "small disjoint shift not significant" 0
    (List.length (R.regressions comps));
  Alcotest.(check bool) "but still a worsening" true (R.worsened comps <> []);
  (* Without CIs only the generous wall threshold applies. *)
  Alcotest.(check bool) "CI-less 40% not flagged" false
    (gate (report [ timing 100.0 ]) (report [ timing 140.0 ]));
  Alcotest.(check bool) "CI-less 80% flagged" true
    (gate (report [ timing 100.0 ]) (report [ timing 180.0 ]))

let test_wall_and_checks () =
  let exp ?(pass = true) key wall =
    { BR.key; wall_seconds = wall;
      checks = [ { BR.claim = "c"; paper = "p"; ours = "o"; pass } ] }
  in
  let base = report ~experiments:[ exp "fig6" 10.0 ] [] in
  (* Wall time doubles: synthesized wall.fig6 metric past the threshold. *)
  let cand = report ~experiments:[ exp "fig6" 21.0 ] [] in
  Alcotest.(check (list string)) "wall regression" [ "wall.fig6" ]
    (names (R.regressions (R.compare_reports base cand)));
  (* A passing check that now fails is always significant. *)
  let cand = report ~experiments:[ exp ~pass:false "fig6" 10.0 ] [] in
  Alcotest.(check (list string)) "check regression" [ "check:fig6/c" ]
    (names (R.regressions (R.compare_reports base cand)));
  (* Same-report comparison is entirely clean. *)
  Alcotest.(check int) "self-diff clean" 0
    (List.length (R.regressions (R.compare_reports base base)))

let test_missing_and_new () =
  let base = report [ metric "a" 1.0; metric "b" 2.0 ] in
  let cand = report [ metric "a" 1.0; metric "c" 3.0 ] in
  let comps = R.compare_reports base cand in
  let v name = (List.find (fun c -> c.R.c_name = name) comps).R.verdict in
  Alcotest.(check bool) "dropped metric missing" true (v "b" = R.Missing);
  Alcotest.(check bool) "added metric new" true (v "c" = R.New);
  Alcotest.(check int) "neither significant" 0
    (List.length (R.regressions comps));
  Alcotest.(check bool) "strict mode sees the loss" true
    (List.exists (fun c -> c.R.c_name = "b") (R.worsened comps))

(* --- robust statistics -------------------------------------------------- *)

let test_mad () =
  Alcotest.(check (float 1e-9)) "outlier-immune spread" 1.0
    (Util.Stats.mad [| 1.0; 2.0; 3.0; 4.0; 100.0 |]);
  Alcotest.(check (float 1e-9)) "constant data" 0.0
    (Util.Stats.mad [| 5.0; 5.0; 5.0 |])

let test_percentile_single () =
  let a = [| 7.5 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f of singleton" p)
        7.5 (Util.Stats.percentile a p))
    [ 0.0; 2.5; 50.0; 97.5; 100.0 ]

let test_bootstrap_ci () =
  (* Constant data: every resample has the same median, so the interval
     is degenerate at that value. *)
  let rng = Util.Rng.create 7 in
  let lo, hi =
    Util.Stats.bootstrap_ci rng [| 3.0; 3.0; 3.0; 3.0 |]
      ~estimator:Util.Stats.median
  in
  Alcotest.(check (float 1e-9)) "constant lo" 3.0 lo;
  Alcotest.(check (float 1e-9)) "constant hi" 3.0 hi;
  (* Singleton: only one possible resample. *)
  let lo, hi =
    Util.Stats.bootstrap_ci (Util.Rng.create 7) [| 9.0 |]
      ~estimator:Util.Stats.median
  in
  Alcotest.(check (float 1e-9)) "singleton lo" 9.0 lo;
  Alcotest.(check (float 1e-9)) "singleton hi" 9.0 hi;
  (* Spread data: the interval brackets the sample estimate, stays inside
     the data range, and is deterministic for a fixed seed. *)
  let a = [| 10.0; 11.0; 12.0; 13.0; 14.0; 15.0; 16.0; 17.0; 18.0; 19.0 |] in
  let est = Util.Stats.median a in
  let lo, hi =
    Util.Stats.bootstrap_ci (Util.Rng.create 42) a ~estimator:Util.Stats.median
  in
  Alcotest.(check bool) "lo <= estimate <= hi" true (lo <= est && est <= hi);
  Alcotest.(check bool) "inside data range" true (lo >= 10.0 && hi <= 19.0);
  Alcotest.(check bool) "nondegenerate" true (hi > lo);
  let lo', hi' =
    Util.Stats.bootstrap_ci (Util.Rng.create 42) a ~estimator:Util.Stats.median
  in
  Alcotest.(check (float 0.0)) "deterministic lo" lo lo';
  Alcotest.(check (float 0.0)) "deterministic hi" hi hi';
  (* Tighter confidence gives a narrower (or equal) interval. *)
  let lo50, hi50 =
    Util.Stats.bootstrap_ci (Util.Rng.create 42) a ~confidence:0.5
      ~estimator:Util.Stats.median
  in
  Alcotest.(check bool) "narrower at 50%" true (hi50 -. lo50 <= hi -. lo)

(* --- attribution -------------------------------------------------------- *)

let perf_report ~arith ~global_bytes ~shared ~overhead ~stalls =
  { Gpu.Perf_model.seconds = arith +. shared +. overhead;
    tflops = 1.0; occupancy = 1.0; warps_per_sm = 1; blocks_per_sm = 1;
    l2_hit_rate = 0.0; effective_dram_gbs = 0.0; global_bytes;
    bound = Gpu.Perf_model.Memory; arith_seconds = arith;
    mem_seconds = 1e-9 *. global_bytes; shared_seconds = shared;
    overhead_seconds = overhead; stall_cycles = stalls }

let synthetic_sample i =
  let c = Ptx.Interp.zero_counters () in
  c.Ptx.Interp.ialu <- 100 * i;
  c.Ptx.Interp.fma <- 40 * i;
  c.Ptx.Interp.ld_shared <- 8 * i;
  c.Ptx.Interp.ld_global <- 2 * i;
  c.Ptx.Interp.gld_transactions <- 10 * i;
  c.Ptx.Interp.gst_transactions <- 5 * i;
  c.Ptx.Interp.shared_transactions <- 7 * i;
  c.Ptx.Interp.bar <- i;
  { Gpu.Attribution.label = Printf.sprintf "cfg%d" i;
    kernel_hash = None;
    report =
      perf_report
        ~arith:(1e-9 *. float_of_int (100 * i))
        ~global_bytes:(32.0 *. float_of_int (15 * i))
        ~shared:(3e-9 *. float_of_int (7 * i))
        ~overhead:(4e-9 *. float_of_int i)
        ~stalls:(2.5 *. float_of_int (50 * i));
    counters = c }

let test_attribution_proportional () =
  let samples = List.init 6 (fun i -> synthetic_sample (i + 1)) in
  let rows = Gpu.Attribution.correlate samples in
  Alcotest.(check int) "one row per pairing"
    (List.length Gpu.Attribution.pairings)
    (List.length rows);
  List.iter
    (fun (r : Gpu.Attribution.row) ->
      Alcotest.(check int) (r.term ^ " n") 6 r.n;
      Alcotest.(check (float 1e-6)) (r.term ^ " perfectly correlated") 1.0
        r.pearson_r;
      Alcotest.(check (float 1e-6)) (r.term ^ " zero drift") 0.0 r.drift)
    rows;
  let scale term =
    (List.find (fun (r : Gpu.Attribution.row) -> r.term = term) rows)
      .Gpu.Attribution.scale
  in
  Alcotest.(check (float 1e-9)) "mem bytes per transaction" 32.0
    (scale "mem_seconds");
  Alcotest.(check (float 1e-15)) "overhead exchange rate" 4e-9
    (scale "overhead_seconds")

let test_attribution_degenerate () =
  (* Fewer than two samples, or zero variance: r must be nan, not a crash. *)
  let rows = Gpu.Attribution.correlate [ synthetic_sample 3 ] in
  List.iter
    (fun (r : Gpu.Attribution.row) ->
      Alcotest.(check bool) (r.term ^ " nan r on n=1") true
        (Float.is_nan r.pearson_r))
    rows;
  let rows =
    Gpu.Attribution.correlate [ synthetic_sample 2; synthetic_sample 2 ]
  in
  List.iter
    (fun (r : Gpu.Attribution.row) ->
      Alcotest.(check bool) (r.term ^ " nan r on zero variance") true
        (Float.is_nan r.pearson_r))
    rows

let () =
  Alcotest.run "bench_report"
    [ ( "serialization",
        [ quick "round-trip" test_roundtrip;
          quick "schema validation" test_schema_validation;
          quick "filename" test_filename ] );
      ( "regression gate",
        [ quick "deterministic tolerance" test_deterministic_gate;
          quick "timing CI overlap" test_timing_ci_gate;
          quick "wall times and shape checks" test_wall_and_checks;
          quick "missing and new metrics" test_missing_and_new ] );
      ( "statistics",
        [ quick "mad" test_mad;
          quick "percentile singleton" test_percentile_single;
          quick "bootstrap CI" test_bootstrap_ci ] );
      ( "attribution",
        [ quick "proportional samples" test_attribution_proportional;
          quick "degenerate inputs" test_attribution_degenerate ] ) ]
