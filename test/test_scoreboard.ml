(* Static scoreboard analysis: differential tests against the
   interpreter's dynamic counters (static per-block issue mix times trip
   counts must match exactly), stall-model sanity on hand-built chains,
   liveness/pressure consistency with Regalloc, and the scheduling
   lints. *)

open Ptx.Types
module I = Ptx.Instr
module S = Ptx.Scoreboard
module P = Codegen.Gemm_params
module G = Codegen.Gemm
module CP = Codegen.Conv_params
module C = Codegen.Conv

let quick name f = Alcotest.test_case name `Quick f

let prog ?(shared = 0) ?(shared_i = 0) ?(nf = 8) ?(ni = 8) ?(np = 4) body =
  { Ptx.Program.name = "sb";
    dtype = F32;
    buf_params = [||];
    int_params = [||];
    shared_words = shared;
    shared_int_words = shared_i;
    body = Array.of_list body;
    n_fregs = nf;
    n_iregs = ni;
    n_pregs = np }

let ins op = I.mk op
let gins p op = I.mk ~guard:(p, true) op

let analyze_exn p =
  match S.analyze p with
  | Ok t -> t
  | Error e -> Alcotest.failf "analyze: %s" e

(* --- static mix x trips == dynamic counters ---------------------------- *)

(* Category name, counter projection, mix index (S.cat_index order). *)
let counter_views =
  [ ("ialu", (fun (k : Ptx.Interp.counters) -> k.ialu), I.Cat_ialu);
    ("fma", (fun k -> k.fma), I.Cat_fma);
    ("fp_other", (fun k -> k.fp_other), I.Cat_fp_other);
    ("ld_global", (fun k -> k.ld_global), I.Cat_ld_global);
    ("st_global", (fun k -> k.st_global), I.Cat_st_global);
    ("ld_shared", (fun k -> k.ld_shared), I.Cat_ld_shared);
    ("st_shared", (fun k -> k.st_shared), I.Cat_st_shared);
    ("atom", (fun k -> k.atom), I.Cat_atom);
    ("bar", (fun k -> k.bar), I.Cat_bar);
    ("branch", (fun k -> k.branch), I.Cat_branch);
    ("pred", (fun k -> k.pred), I.Cat_pred);
    ("mov", (fun k -> k.mov), I.Cat_mov) ]

let check_counts name p ~grid ~block ~iargs (k : Ptx.Interp.counters) =
  let bx, by, bz = block in
  let threads = bx * by * bz in
  let t = analyze_exn p in
  match S.block_trips ~grid ~block ~iargs p with
  | Error e -> Alcotest.failf "%s: block_trips: %s" name e
  | Ok trips ->
    Alcotest.(check int)
      (name ^ ": trips covers every block")
      (Array.length t.S.blocks) (Array.length trips);
    List.iter
      (fun (cname, proj, cat) ->
        let idx = S.cat_index cat in
        let expected =
          Array.fold_left
            (fun acc (b : S.block_sched) ->
              acc + (trips.(b.S.block) * b.S.mix.(idx)))
            0 t.S.blocks
          * threads
        in
        Alcotest.(check int)
          (Printf.sprintf "%s: %s" name cname)
          expected (proj k))
      counter_views

let check_gemm_counts name ?bounds (i : P.input) (c : P.config) =
  Alcotest.(check bool) (name ^ ": legal") true (P.structurally_legal i c);
  let a = Array.init (i.m * i.k) (fun x -> float_of_int (x mod 7) -. 3.0) in
  let b = Array.init (i.k * i.n) (fun x -> float_of_int (x mod 5) -. 2.0) in
  let _, k = G.run_counted ?bounds i c ~a ~b () in
  let p = G.generate ?bounds i c in
  check_counts name p ~grid:(G.grid i c) ~block:(G.block c)
    ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
    k

let test_gemm_counts () =
  let cfg ?(ms = 2) ?(ns = 2) ?(ks = 1) ?(ml = 16) ?(nl = 16) ?(u = 8)
      ?(kl = 1) ?(kg = 1) ?(vec = 1) ?(db = 1) () =
    { P.ms; ns; ks; ml; nl; u; kl; kg; vec; db }
  in
  check_gemm_counts "gemm 32^3" (P.input 32 32 32) (cfg ());
  check_gemm_counts "gemm ragged" (P.input 17 23 29) (cfg ());
  check_gemm_counts "gemm ks2" (P.input 24 24 40) (cfg ~ks:2 ());
  check_gemm_counts "gemm kl2" (P.input 24 24 40) (cfg ~kl:2 ());
  check_gemm_counts "gemm kg2" (P.input 24 24 64) (cfg ~kg:2 ());
  check_gemm_counts "gemm a_trans" (P.input ~a_trans:true 20 18 25) (cfg ());
  check_gemm_counts "gemm db2" (P.input 32 32 32) (cfg ~db:2 ());
  check_gemm_counts "gemm unchecked" ~bounds:P.Unchecked (P.input 32 32 32)
    (cfg ())

let test_conv_counts () =
  let ci = CP.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:6 ~r:3 ~s:3 () in
  let cfg =
    { P.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
      vec = 1; db = 1 }
  in
  let gi = CP.gemm_input ci in
  let image =
    Array.init
      (ci.CP.n * ci.CP.c * CP.h ci * CP.w ci)
      (fun x -> float_of_int (x mod 9) -. 4.0)
  in
  let filter =
    Array.init (ci.c * ci.r * ci.s * ci.k) (fun x ->
        float_of_int (x mod 3) -. 1.0)
  in
  let _, k = C.run_counted ci cfg ~image ~filter in
  let p = C.generate ci cfg in
  let grid =
    ((gi.P.m + cfg.ml - 1) / cfg.ml, (gi.P.n + cfg.nl - 1) / cfg.nl, cfg.kg)
  in
  check_counts "conv" p ~grid
    ~block:(P.threads_per_block cfg, 1, 1)
    ~iargs:[ ("M", gi.P.m); ("N", gi.P.n); ("K", gi.P.k) ]
    k

(* The divergent branch-based bounds mode must be reported as
   unanalyzable rather than silently miscounted. *)
let test_branch_mode_unanalyzable () =
  let i = P.input 17 23 29 in
  let c =
    { P.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
      vec = 1; db = 1 }
  in
  let p = G.generate ~bounds:P.Branch i c in
  match
    S.block_trips ~grid:(G.grid i c) ~block:(G.block c)
      ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
      p
  with
  | Error _ -> ()
  | Ok _ ->
    Alcotest.fail "branch-mode kernel should have unanalyzable trip counts"

(* Random straight-line programs with guarded (masked) instructions:
   masked slots still issue, so the static mix matches exactly. *)
let test_random_straight_line () =
  let gen_op rng =
    match Util.Rng.int rng 9 with
    | 0 -> I.Iadd (Util.Rng.int rng 8, Ireg (Util.Rng.int rng 8), Iimm 3)
    | 1 -> I.Imul (Util.Rng.int rng 8, Iimm 5, Ispecial Tid_x)
    | 2 -> I.Movf (Util.Rng.int rng 8, Fimm 1.5)
    | 3 ->
      I.Ffma
        ( Util.Rng.int rng 8,
          Freg (Util.Rng.int rng 8),
          Fimm 2.0,
          Freg (Util.Rng.int rng 8) )
    | 4 -> I.Fadd (Util.Rng.int rng 8, Freg (Util.Rng.int rng 8), Fimm 1.0)
    | 5 -> I.Setp (Lt, Util.Rng.int rng 4, Ispecial Tid_x, Iimm 2)
    | 6 -> I.Mov (Util.Rng.int rng 8, Iimm 9)
    | 7 -> I.Imin (Util.Rng.int rng 8, Ireg (Util.Rng.int rng 8), Iimm 4)
    | _ -> I.Fmul (Util.Rng.int rng 8, Freg (Util.Rng.int rng 8), Fimm 0.5)
  in
  let rng = Util.Rng.create 4242 in
  for case = 0 to 24 do
    let n = 5 + Util.Rng.int rng 40 in
    let body =
      List.init n (fun _ ->
          let op = gen_op rng in
          (* Guard through p0, set by a tid compare early on: some lanes
             masked, categories still counted. *)
          if Util.Rng.int rng 3 = 0 then gins 0 op else ins op)
    in
    let body =
      (ins (I.Setp (Lt, 0, Ispecial Tid_x, Iimm 3)) :: body) @ [ ins I.Ret ]
    in
    let p = prog body in
    let block = (4, 2, 1) in
    let k =
      Ptx.Interp.run p ~grid:(2, 1, 1) ~block ~bufs:[] ~iargs:[]
    in
    check_counts (Printf.sprintf "random straight-line %d" case) p
      ~grid:(2, 1, 1) ~block ~iargs:[] k
  done

(* A hand-built affine loop: counter-driven trip counts resolve per CTA. *)
let test_affine_loop_counts () =
  let p =
    prog
      [ ins (I.Mov (0, Iimm 0));
        ins (I.Mov (1, Ispecial Ctaid_x));
        ins (I.Movf (0, Fimm 0.0));
        ins (I.Label "loop");
        ins (I.Ffma (0, Freg 0, Fimm 1.5, Fimm 1.0));
        ins (I.Iadd (0, Ireg 0, Iimm 1));
        ins (I.Iadd (1, Ireg 1, Iimm 2));
        ins (I.Setp (Lt, 0, Ireg 0, Iimm 10));
        gins 0 (I.Bra "loop");
        ins I.Ret ]
  in
  let block = (8, 1, 1) in
  let k = Ptx.Interp.run p ~grid:(3, 1, 1) ~block ~bufs:[] ~iargs:[] in
  check_counts "affine loop" p ~grid:(3, 1, 1) ~block ~iargs:[] k

(* --- stall model sanity ------------------------------------------------ *)

let test_dependent_chain_stalls () =
  (* One serial FMA accumulator chain: every FMA waits out the full
     pipeline latency, so the issue rate approaches 1/fma_latency. *)
  let chain =
    List.init 24 (fun _ -> ins (I.Ffma (0, Freg 0, Fimm 2.0, Fimm 1.0)))
  in
  let t = analyze_exn (prog ([ ins (I.Movf (0, Fimm 0.0)) ] @ chain @ [ ins I.Ret ])) in
  Alcotest.(check bool)
    "chain stalls" true
    (t.S.summary.S.stalls_per_slot > 1.0);
  Alcotest.(check bool)
    "chain rate near 1/lat" true
    (t.S.summary.S.fma_issue_rate < 0.25);
  (* Eight independent accumulators cover the latency: no FMA stalls. *)
  let wide =
    List.concat
      (List.init 8 (fun r -> [ ins (I.Movf (r, Fimm 0.0)) ]))
    @ List.concat
        (List.init 6 (fun _ ->
             List.init 8 (fun r ->
                 ins (I.Ffma (r, Freg r, Fimm 2.0, Fimm 1.0)))))
    @ [ ins I.Ret ]
  in
  let t = analyze_exn (prog wide) in
  Alcotest.(check bool)
    "wide rate high" true
    (t.S.summary.S.fma_issue_rate > 0.85);
  Alcotest.(check bool)
    "wide ilp wide" true (t.S.summary.S.ilp > 3.0)

let test_loop_steady_state () =
  (* The loop-carried accumulator chain only shows in the steady state:
     iteration 2 must stall on iteration 1's FMA. *)
  let p =
    prog
      [ ins (I.Mov (0, Iimm 0));
        ins (I.Movf (0, Fimm 0.0));
        ins (I.Label "loop");
        ins (I.Ffma (0, Freg 0, Fimm 2.0, Fimm 1.0));
        ins (I.Iadd (0, Ireg 0, Iimm 1));
        ins (I.Setp (Lt, 0, Ireg 0, Iimm 100));
        gins 0 (I.Bra "loop");
        ins I.Ret ]
  in
  let t = analyze_exn p in
  (match t.S.loops with
   | [ l ] ->
     Alcotest.(check bool) "steady stalls" true (l.S.steady_stalls > 0);
     Alcotest.(check bool)
       "carried critical path includes fma latency" true
       (l.S.carried_crit_path >= S.default_latency.S.fma)
   | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls));
  Alcotest.(check bool) "hot loop chosen" true (t.S.summary.S.hot_loop <> None)

let test_barrier_drains () =
  (* A global load's latency is exposed by a barrier right after it. *)
  let p ~with_bar =
    prog ~shared:4
      [ ins (I.Mov (0, Iimm 0));
        ins (I.St_shared (Iimm 0, Fimm 1.0));
        (if with_bar then ins I.Bar else ins (I.Mov (1, Iimm 1)));
        ins I.Ret ]
  in
  let stalls p_ =
    let t = analyze_exn p_ in
    Array.fold_left (fun acc b -> acc + b.S.stall_cycles) 0 t.S.blocks
  in
  Alcotest.(check bool)
    "bar waits for shared store" true
    (stalls (p ~with_bar:true) > stalls (p ~with_bar:false))

(* --- pressure vs Regalloc ---------------------------------------------- *)

let test_pressure_vs_regalloc () =
  let cfg =
    { P.ms = 4; ns = 4; ks = 1; ml = 32; nl = 32; u = 8; kl = 1; kg = 1;
      vec = 1; db = 1 }
  in
  let i = P.input 64 64 64 in
  let p = G.generate i cfg in
  let t = analyze_exn p in
  let press = Ptx.Regalloc.pressure p in
  Alcotest.(check int) "peak fregs" press.Ptx.Regalloc.fregs
    t.S.summary.S.peak_fregs;
  Alcotest.(check int) "peak iregs" press.Ptx.Regalloc.iregs
    t.S.summary.S.peak_iregs;
  (* The allocator can never beat MaxLive, and never exceeds the virtual
     counts: liveness under-counting would violate the first bound. *)
  let alloc = Ptx.Regalloc.allocate p in
  Alcotest.(check bool) "alloc >= maxlive (f)" true
    (alloc.Ptx.Program.n_fregs >= press.Ptx.Regalloc.fregs);
  Alcotest.(check bool) "alloc >= maxlive (i)" true
    (alloc.Ptx.Program.n_iregs >= press.Ptx.Regalloc.iregs);
  Alcotest.(check bool) "alloc <= virtual (f)" true
    (alloc.Ptx.Program.n_fregs <= p.Ptx.Program.n_fregs);
  (* More thread work must not reduce peak float pressure. *)
  let cfg2 = { cfg with P.ms = 2; ns = 2 } in
  let t2 = analyze_exn (G.generate (P.input 64 64 64) cfg2) in
  Alcotest.(check bool) "ms4ns4 >= ms2ns2 pressure" true
    (t.S.summary.S.peak_fregs >= t2.S.summary.S.peak_fregs)

(* --- lints ------------------------------------------------------------- *)

let lint_kinds p =
  List.map
    (function
      | S.Dead_store _ -> "dead-store"
      | S.Unread_register _ -> "unread-register"
      | S.Unreachable_code _ -> "unreachable"
      | S.Redundant_barrier _ -> "redundant-barrier")
    (S.lint p)

let test_lint_dead_store () =
  let kinds =
    lint_kinds
      (prog
         [ ins (I.Movf (0, Fimm 1.0));
           ins (I.Movf (0, Fimm 2.0));
           ins (I.St_shared (Iimm 0, Freg 0));
           ins I.Ret ]
      |> fun p -> { p with Ptx.Program.shared_words = 4 })
  in
  Alcotest.(check bool) "dead store found" true (List.mem "dead-store" kinds)

let test_lint_guarded_merge_not_dead () =
  (* The generators' staging idiom: mov 0 then guarded load — the mov is
     a live merge input, not a dead store. *)
  let p =
    { (prog
         [ ins (I.Setp (Lt, 0, Ispecial Tid_x, Iimm 2));
           ins (I.Movf (0, Fimm 0.0));
           gins 0 (I.Ld_global (0, 0, Ispecial Tid_x));
           ins (I.St_shared (Ispecial Tid_x, Freg 0));
           ins I.Ret ])
      with
      Ptx.Program.buf_params = [| "A" |];
      shared_words = 8 }
  in
  Alcotest.(check (list string)) "clean" [] (lint_kinds p)

let test_lint_unread_register () =
  let kinds =
    lint_kinds
      (prog [ ins (I.Mov (5, Iimm 3)); ins (I.Mov (5, Iimm 4)); ins I.Ret ])
  in
  Alcotest.(check bool) "unread found" true
    (List.mem "unread-register" kinds)

let test_lint_unreachable () =
  let kinds =
    lint_kinds
      (prog
         [ ins (I.Bra "end");
           ins (I.Mov (0, Iimm 1));
           ins (I.Label "end");
           ins I.Ret ])
  in
  Alcotest.(check bool) "unreachable found" true (List.mem "unreachable" kinds)

let test_lint_redundant_barrier () =
  let kinds =
    lint_kinds
      (prog ~shared:4
         [ ins (I.St_shared (Iimm 0, Fimm 1.0));
           ins I.Bar;
           ins I.Bar;
           ins (I.Ld_shared (0, Iimm 0));
           ins I.Ret ])
  in
  Alcotest.(check bool) "redundant bar found" true
    (List.mem "redundant-barrier" kinds);
  (* A shared access between two barriers keeps both meaningful. *)
  let kinds =
    lint_kinds
      (prog ~shared:4
         [ ins (I.St_shared (Iimm 0, Fimm 1.0));
           ins I.Bar;
           ins (I.Ld_shared (0, Iimm 0));
           ins I.Bar;
           ins I.Ret ])
  in
  Alcotest.(check bool) "separated bars clean" true
    (not (List.mem "redundant-barrier" kinds))

let test_generated_kernels_lint_free () =
  let cfg ?(ms = 2) ?(ns = 2) ?(ks = 1) ?(ml = 16) ?(nl = 16) ?(u = 8)
      ?(kl = 1) ?(kg = 1) ?(vec = 1) ?(db = 1) () =
    { P.ms; ns; ks; ml; nl; u; kl; kg; vec; db }
  in
  let check name p =
    match S.lint p with
    | [] -> ()
    | ls ->
      Alcotest.failf "%s: %d lints, first: %s" name (List.length ls)
        (snd (S.lint_message (List.hd ls)))
  in
  check "gemm basic" (G.generate (P.input 32 32 32) (cfg ()));
  check "gemm ragged" (G.generate (P.input 17 23 29) (cfg ()));
  check "gemm splits"
    (G.generate (P.input 24 24 160) (cfg ~ks:2 ~kl:2 ~kg:2 ~u:8 ()));
  check "gemm trans"
    (G.generate (P.input ~a_trans:true ~b_trans:true 20 18 25) (cfg ()));
  let ci = CP.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:6 ~r:3 ~s:3 () in
  check "conv" (C.generate ci (cfg ()))

let () =
  Alcotest.run "scoreboard"
    [ ( "differential",
        [ quick "gemm mix x trips == counters" test_gemm_counts;
          quick "conv mix x trips == counters" test_conv_counts;
          quick "branch mode unanalyzable" test_branch_mode_unanalyzable;
          quick "random straight-line" test_random_straight_line;
          quick "affine loop" test_affine_loop_counts ] );
      ( "stalls",
        [ quick "dependent chain stalls" test_dependent_chain_stalls;
          quick "loop steady state" test_loop_steady_state;
          quick "barrier drains" test_barrier_drains ] );
      ( "pressure",
        [ quick "scoreboard matches Regalloc MaxLive" test_pressure_vs_regalloc ] );
      ( "lints",
        [ quick "dead store" test_lint_dead_store;
          quick "guarded merge is live" test_lint_guarded_merge_not_dead;
          quick "unread register" test_lint_unread_register;
          quick "unreachable code" test_lint_unreachable;
          quick "redundant barrier" test_lint_redundant_barrier;
          quick "generated kernels lint-free" test_generated_kernels_lint_free ] ) ]
