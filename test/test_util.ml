(* Unit and property tests for the util library: PRNG, statistics, table
   rendering, CSV round-trips and env-based scaling. *)

let quick name f = Alcotest.test_case name `Quick f

(* --- rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Util.Rng.create 7 and b = Util.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.int a 1000) (Util.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 7 and b = Util.Rng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.int a 1_000_000 = Util.Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 5)

let test_rng_bounds () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17);
    let f = Util.Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0);
    let x = Util.Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_split_independent () =
  let root = Util.Rng.create 42 in
  let a = Util.Rng.split root in
  let b = Util.Rng.split root in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.int a 1_000_000 = Util.Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 5)

let test_rng_copy () =
  let a = Util.Rng.create 11 in
  ignore (Util.Rng.int a 100);
  let b = Util.Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int) "copy replays" (Util.Rng.int a 999) (Util.Rng.int b 999)
  done

let test_gaussian_moments () =
  let rng = Util.Rng.create 5 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Util.Rng.gaussian rng) in
  let mean = Util.Stats.mean xs in
  let std = Util.Stats.stddev xs in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "std ~ 1" true (Float.abs (std -. 1.0) < 0.05)

let test_choice_weighted () =
  let rng = Util.Rng.create 9 in
  let counts = Array.make 3 0 in
  let w = [| 1.0; 0.0; 3.0 |] in
  for _ = 1 to 4000 do
    let i = Util.Rng.choice_weighted rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  Alcotest.(check bool) "3:1 ratio approx" true (ratio > 2.4 && ratio < 3.75)

let test_permutation_valid () =
  let rng = Util.Rng.create 13 in
  let p = Util.Rng.permutation rng 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

(* --- stats ------------------------------------------------------------ *)

let test_stats_basics () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean a);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Util.Stats.variance a);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Util.Stats.median a);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Util.Stats.min a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Util.Stats.max a);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Util.Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Util.Stats.percentile a 100.0)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Util.Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_mse_mae () =
  let a = [| 1.0; 2.0 |] and b = [| 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mse" 2.5 (Util.Stats.mse a b);
  Alcotest.(check (float 1e-9)) "mae" 1.5 (Util.Stats.mae a b)

let test_stats_correlation () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Array.map (fun x -> (2.0 *. x) +. 1.0) a in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Util.Stats.correlation a b);
  let c = Array.map (fun x -> -.x) a in
  Alcotest.(check (float 1e-9)) "anti" (-1.0) (Util.Stats.correlation a c)

let test_stats_arg () =
  let a = [| 3.0; 1.0; 5.0; 5.0 |] in
  Alcotest.(check int) "argmax first" 2 (Util.Stats.argmax a);
  Alcotest.(check int) "argmin" 1 (Util.Stats.argmin a)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p"
    QCheck.(pair
              (array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (a, (p1, p2)) ->
      QCheck.assume (Array.length a > 0);
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Util.Stats.percentile a lo <= Util.Stats.percentile a hi +. 1e-9)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min, max]"
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))
    (fun a ->
      QCheck.assume (Array.length a > 0);
      let m = Util.Stats.mean a in
      m >= Util.Stats.min a -. 1e-6 && m <= Util.Stats.max a +. 1e-6)

(* --- table ------------------------------------------------------------ *)

let test_table_render () =
  let s =
    Util.Table.render ~header:[| "a"; "bb" |] [ [| "x"; "1" |]; [| "yy"; "22" |] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "6 lines" 6 (List.length lines);
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "equal width" (List.hd widths) w) widths

let test_table_fmt () =
  Alcotest.(check string) "pct" "12.5%" (Util.Table.fmt_pct 0.125);
  Alcotest.(check string) "float" "3.14" (Util.Table.fmt_float 3.14159);
  Alcotest.(check string) "float d3" "3.142" (Util.Table.fmt_float ~decimals:3 3.14159)

(* --- csv -------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let path = Filename.temp_file "isaac_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rows = [ [| 1.0; -2.5 |]; [| 3.25e-10; 4e22 |] ] in
      Util.Csv.write path ~header:[ "x"; "y" ] rows;
      let header, got = Util.Csv.read path in
      Alcotest.(check (list string)) "header" [ "x"; "y" ] header;
      List.iter2
        (fun want have ->
          Array.iteri
            (fun i w -> Alcotest.(check bool) "cell" true (Float.abs (w -. have.(i)) <= 1e-9 *. Float.abs w))
            want)
        rows got)

(* --- env config -------------------------------------------------------- *)

let test_env_scaled () =
  Unix.putenv "REPRO_SCALE" "0.5";
  Alcotest.(check int) "half" 50 (Util.Env_config.scaled 100);
  Unix.putenv "REPRO_SCALE" "1.0";
  Alcotest.(check int) "identity" 100 (Util.Env_config.scaled 100);
  Alcotest.(check int) "at least 1" 1 (Util.Env_config.scaled 0)

let test_env_parsing () =
  Unix.putenv "ISAAC_TEST_INT" "17";
  Alcotest.(check int) "int" 17 (Util.Env_config.int "ISAAC_TEST_INT" 3);
  Alcotest.(check int) "default" 3 (Util.Env_config.int "ISAAC_TEST_MISSING" 3);
  Unix.putenv "ISAAC_TEST_BOOL" "true";
  Alcotest.(check bool) "bool" true (Util.Env_config.bool "ISAAC_TEST_BOOL" false)

(* --- parallel ----------------------------------------------------------- *)

let test_parallel_map_equiv () =
  let arr = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "map with %d domains" domains)
        (Array.map f arr)
        (Util.Parallel.map_array ~domains f arr))
    [ 1; 2; 4; 7 ]

let test_parallel_chunks () =
  let chunks =
    Util.Parallel.run_chunks ~domains:4 ~total:10 (fun ~chunk ~size -> (chunk, size))
  in
  Alcotest.(check (list (pair int int))) "chunk sizes"
    [ (0, 3); (1, 3); (2, 2); (3, 2) ] chunks;
  let total =
    List.fold_left (fun acc (_, s) -> acc + s)
      0
      (Util.Parallel.run_chunks ~domains:3 ~total:100 (fun ~chunk ~size -> (chunk, size)))
  in
  Alcotest.(check int) "sizes sum to total" 100 total

let test_parallel_degenerate () =
  Alcotest.(check int) "single domain" 1
    (List.length (Util.Parallel.run_chunks ~domains:1 ~total:50 (fun ~chunk:_ ~size -> size)));
  Alcotest.(check bool) "recommended >= 1" true (Util.Parallel.recommended_domains () >= 1)

let () =
  Alcotest.run "util"
    [ ("rng",
       [ quick "deterministic" test_rng_deterministic;
         quick "seed sensitivity" test_rng_seed_sensitivity;
         quick "bounds" test_rng_bounds;
         quick "split independence" test_rng_split_independent;
         quick "copy replays" test_rng_copy;
         quick "gaussian moments" test_gaussian_moments;
         quick "weighted choice" test_choice_weighted;
         quick "permutation valid" test_permutation_valid ]);
      ("stats",
       [ quick "basics" test_stats_basics;
         quick "geomean" test_stats_geomean;
         quick "mse/mae" test_stats_mse_mae;
         quick "correlation" test_stats_correlation;
         quick "argmax/argmin" test_stats_arg;
         QCheck_alcotest.to_alcotest prop_percentile_monotone;
         QCheck_alcotest.to_alcotest prop_mean_bounded ]);
      ("table", [ quick "render" test_table_render; quick "formats" test_table_fmt ]);
      ("csv", [ quick "roundtrip" test_csv_roundtrip ]);
      ("env", [ quick "scaled" test_env_scaled; quick "parsing" test_env_parsing ]);
      ("parallel",
       [ quick "map equivalence" test_parallel_map_equiv;
         quick "chunking" test_parallel_chunks;
         quick "degenerate" test_parallel_degenerate ]) ]
