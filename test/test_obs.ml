(* Observability layer: JSON round-trips, span nesting and JSONL
   round-trip through a real sink, metric summaries, interpreter
   counter correctness on a hand-written kernel with a known
   instruction mix, zero-cost behaviour when ISAAC_TRACE is unset, and
   the counter snapshot embedded in interpreter trap messages. *)

open Ptx.Types
module B = Ptx.Builder
module I = Ptx.Instr
module J = Obs.Json

let quick name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let tmp_trace () = Filename.temp_file "isaac_obs" ".jsonl"

let str_field k ev = Option.bind (J.member k ev) J.to_str
let num_field k ev = Option.bind (J.member k ev) J.to_float

let events_of ev list = List.filter (fun e -> str_field "ev" e = Some ev) list

(* --- JSON --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let samples =
    [ J.Null;
      J.Bool true;
      J.Int (-42);
      J.Int max_int;
      J.Float 3.25;
      J.Float 1e-300;
      J.String "he\"llo\n\t\\world";
      J.List [ J.Int 1; J.String "x"; J.Null ];
      J.Obj
        [ ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.List [ J.Float 0.5 ]) ]);
          ("s", J.String "\x01\x1f") ] ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      if String.contains s '\n' then
        Alcotest.failf "rendering contains a newline: %s" s;
      if J.of_string s <> v then Alcotest.failf "round-trip failed: %s" s)
    samples;
  (* Non-finite floats round-trip through their string encoding. *)
  (match J.of_string (J.to_string (J.Float Float.nan)) with
   | J.String "nan" as v ->
     (match J.to_float v with
      | Some f when Float.is_nan f -> ()
      | _ -> Alcotest.fail "nan did not coerce back to a float")
   | _ -> Alcotest.fail "nan encoding changed");
  Alcotest.(check bool) "parse error raised" true
    (try ignore (J.of_string "{\"a\":}"); false
     with J.Parse_error _ -> true)

(* --- spans + JSONL round-trip ------------------------------------------- *)

let test_span_roundtrip () =
  let path = tmp_trace () in
  Obs.Metrics.reset ();
  Obs.Trace.start ~path ();
  Alcotest.(check bool) "enabled while open" true (Obs.Trace.enabled ());
  Obs.Span.with_ "a" (fun () ->
      Alcotest.(check string) "inner path" "a" (Obs.Span.current_path ());
      Obs.Span.with_ "b"
        ~meta:(fun () -> [ ("k", J.Int 7) ])
        (fun () ->
          Alcotest.(check string) "nested path" "a/b" (Obs.Span.current_path ());
          ignore (Sys.opaque_identity (Array.init 100 (fun i -> i)))));
  Alcotest.(check string) "path restored" "" (Obs.Span.current_path ());
  Obs.Trace.stop ();
  Alcotest.(check bool) "disabled after stop" false (Obs.Trace.enabled ());
  let events = Obs.Trace.read_file path in
  Sys.remove path;
  (match events with
   | first :: _ when str_field "ev" first = Some "trace_start" -> ()
   | _ -> Alcotest.fail "first event is not trace_start");
  (match List.rev events with
   | last :: _ when str_field "ev" last = Some "trace_end" -> ()
   | _ -> Alcotest.fail "last event is not trace_end");
  let spans = events_of "span" events in
  let find p =
    match List.find_opt (fun e -> str_field "path" e = Some p) spans with
    | Some e -> e
    | None -> Alcotest.failf "no span with path %s" p
  in
  let outer = find "a" and inner = find "a/b" in
  Alcotest.(check (option string)) "outer name" (Some "a") (str_field "name" outer);
  Alcotest.(check (option string)) "inner name" (Some "b") (str_field "name" inner);
  let dur e = Option.get (num_field "dur" e) in
  let start e = Option.get (num_field "start" e) in
  if dur outer < 0.0 || dur inner < 0.0 then Alcotest.fail "negative duration";
  if start inner < start outer then Alcotest.fail "child started before parent";
  if dur inner > dur outer +. 1e-9 then Alcotest.fail "child outlived parent";
  (match Option.bind (J.member "meta" inner) (J.member "k") with
   | Some (J.Int 7) -> ()
   | _ -> Alcotest.fail "meta not recorded")

let test_span_error_flag () =
  let path = tmp_trace () in
  Obs.Metrics.reset ();
  Obs.Trace.start ~path ();
  (try Obs.Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.Trace.stop ();
  let events = Obs.Trace.read_file path in
  Sys.remove path;
  match events_of "span" events with
  | [ sp ] ->
    Alcotest.(check bool) "error flag" true (J.member "error" sp = Some (J.Bool true))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* --- metrics ------------------------------------------------------------ *)

let test_metrics_flush () =
  let path = tmp_trace () in
  Obs.Metrics.reset ();
  Obs.Trace.start ~path ();
  Obs.Metrics.incr "c.hits";
  Obs.Metrics.add "c.hits" 4;
  Obs.Metrics.add "c.other" 2;
  Alcotest.(check (option int)) "live value" (Some 5)
    (Obs.Metrics.counter_value "c.hits");
  for i = 1 to 100 do
    Obs.Metrics.observe "h.lat" (float_of_int i)
  done;
  Obs.Metrics.point "s.loss" ~x:0.0 ~y:1.5;
  Obs.Trace.stop ();
  let events = Obs.Trace.read_file path in
  Sys.remove path;
  let counter name =
    List.find_opt (fun e -> str_field "name" e = Some name)
      (events_of "counter" events)
  in
  (match counter "c.hits" with
   | Some e -> Alcotest.(check (option (float 1e-9))) "c.hits" (Some 5.0) (num_field "value" e)
   | None -> Alcotest.fail "c.hits not flushed");
  (match counter "c.other" with
   | Some e -> Alcotest.(check (option (float 1e-9))) "c.other" (Some 2.0) (num_field "value" e)
   | None -> Alcotest.fail "c.other not flushed");
  (match events_of "hist" events with
   | [ h ] ->
     Alcotest.(check (option (float 1e-9))) "count" (Some 100.0) (num_field "count" h);
     Alcotest.(check (option (float 1e-9))) "min" (Some 1.0) (num_field "min" h);
     Alcotest.(check (option (float 1e-9))) "max" (Some 100.0) (num_field "max" h);
     Alcotest.(check (option (float 1e-9))) "mean" (Some 50.5) (num_field "mean" h);
     let p50 = Option.get (num_field "p50" h) in
     if p50 < 40.0 || p50 > 60.0 then Alcotest.failf "p50 off: %g" p50
   | l -> Alcotest.failf "expected 1 hist, got %d" (List.length l));
  (match events_of "point" events with
   | [ p ] ->
     Alcotest.(check (option string)) "series" (Some "s.loss") (str_field "series" p);
     Alcotest.(check (option (float 1e-9))) "y" (Some 1.5) (num_field "y" p)
   | l -> Alcotest.failf "expected 1 point, got %d" (List.length l));
  Alcotest.(check (option int)) "cleared after flush" None
    (Obs.Metrics.counter_value "c.hits")

(* Hammer the live sink from several domains at once: every span and
   metric call races against the others (and the final stop) for the
   shared JSONL channel. Passes iff the file stays line-atomic — every
   line parses — and nothing is lost: the counter saw all 800 incrs and
   all 800 span events landed. *)
let test_multi_domain_sink () =
  let path = tmp_trace () in
  Obs.Metrics.reset ();
  Obs.Trace.start ~path ();
  let n_domains = 4 and iters = 200 in
  let worker d () =
    for i = 1 to iters do
      Obs.Metrics.incr "par.counter";
      Obs.Span.with_
        (Printf.sprintf "work.%d" d)
        (fun () -> Obs.Metrics.observe "par.lat" (float_of_int i))
    done
  in
  let handles = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join handles;
  Alcotest.(check (option int)) "live counter saw every incr"
    (Some (n_domains * iters))
    (Obs.Metrics.counter_value "par.counter");
  Obs.Trace.stop ();
  let events = Obs.Trace.read_file path (* raises if any line is torn *) in
  Sys.remove path;
  Alcotest.(check int) "all spans recorded" (n_domains * iters)
    (List.length (events_of "span" events));
  (match
     List.find_opt
       (fun e -> str_field "name" e = Some "par.counter")
       (events_of "counter" events)
   with
   | Some e ->
     Alcotest.(check (option (float 1e-9))) "flushed counter value"
       (Some (float_of_int (n_domains * iters)))
       (num_field "value" e)
   | None -> Alcotest.fail "par.counter not flushed");
  (match events_of "hist" events with
   | [ h ] ->
     Alcotest.(check (option (float 1e-9))) "hist count"
       (Some (float_of_int (n_domains * iters)))
       (num_field "count" h)
   | l -> Alcotest.failf "expected 1 hist, got %d" (List.length l));
  (* Emitting after stop is a silent no-op, not a crash on a closed
     channel. *)
  Obs.Trace.emit "late" [];
  Alcotest.(check bool) "disabled after stop" false (Obs.Trace.enabled ())

(* --- interpreter counters on a known kernel ----------------------------- *)

(* One warp (32 threads), straight-line kernel exercising every memory
   path with a hand-computable transaction count:
     - coalesced global load  (addr = tid)        -> 1 transaction
     - strided global load    (addr = tid * 32)   -> 32 transactions
     - conflict-free shared store (addr = tid)    -> 1 pass
     - broadcast shared load  (addr = 0)          -> 1 pass
     - 2-way bank conflict    (addr = tid * 2)    -> 2 passes
     - coalesced global store (addr = tid)        -> 1 transaction
   plus a half-masked guarded mov to pin predicated_off. *)
let test_interp_counters () =
  let b = B.create ~name:"counters" ~dtype:F64 in
  let inp = B.buf_param b "IN" in
  let out = B.buf_param b "OUT" in
  B.set_shared b ~words:64 ~int_words:0;
  let tid = B.mov_i b (Ispecial Tid_x) in
  let f1 = B.fresh_f b in
  B.emit b (I.Ld_global (f1, inp, Ireg tid));
  let stride = B.mul_i b (Ireg tid) (Iimm 32) in
  let f2 = B.fresh_f b in
  B.emit b (I.Ld_global (f2, inp, Ireg stride));
  B.emit b (I.St_shared (Ireg tid, Freg f1));
  B.emit b I.Bar;
  let f3 = B.fresh_f b in
  B.emit b (I.Ld_shared (f3, Iimm 0));
  let conflict = B.mul_i b (Ireg tid) (Iimm 2) in
  let f4 = B.fresh_f b in
  B.emit b (I.Ld_shared (f4, Ireg conflict));
  let p = B.setp b Lt (Ireg tid) (Iimm 16) in
  let dead = B.fresh_i b in
  B.emit b ~guard:(p, true) (I.Mov (dead, Iimm 1));
  B.emit b (I.St_global (out, Ireg tid, Freg f3));
  let prog = B.finish b in
  let c =
    Ptx.Interp.run prog ~grid:(1, 1, 1) ~block:(32, 1, 1)
      ~bufs:[ ("IN", Array.make 1024 1.0); ("OUT", Array.make 32 0.0) ]
      ~iargs:[]
  in
  let check name exp got = Alcotest.(check int) name exp got in
  check "ld_global" 64 c.Ptx.Interp.ld_global;
  check "st_global" 32 c.st_global;
  check "ld_shared" 64 c.ld_shared;
  check "st_shared" 32 c.st_shared;
  check "bar" 32 c.bar;
  check "pred" 32 c.pred;
  (* mov tid (32) + guarded mov (32: masked lanes still occupy an issue
     slot and count in their category) *)
  check "mov" 64 c.mov;
  check "predicated_off" 16 c.predicated_off;
  (* two integer multiplies *)
  check "ialu" 64 c.ialu;
  check "gld_transactions" (1 + 32) c.gld_transactions;
  check "gst_transactions" 1 c.gst_transactions;
  check "shared_transactions" (1 + 1 + 2) c.shared_transactions;
  let s = Ptx.Interp.summary c in
  List.iter
    (fun needle ->
      if not (contains ~needle s) then
        Alcotest.failf "summary misses %s: %s" needle s)
    [ "gld.txn=33"; "smem.txn=4"; "masked=16" ]

(* Two warps: each warp coalesces independently, so a block of 64
   threads doing a coalesced load costs 2 transactions, not 1. *)
let test_interp_counters_two_warps () =
  let b = B.create ~name:"warps" ~dtype:F64 in
  let inp = B.buf_param b "IN" in
  let out = B.buf_param b "OUT" in
  let tid = B.mov_i b (Ispecial Tid_x) in
  let f = B.fresh_f b in
  B.emit b (I.Ld_global (f, inp, Ireg tid));
  B.emit b (I.St_global (out, Ireg tid, Freg f));
  let prog = B.finish b in
  let c =
    Ptx.Interp.run prog ~grid:(1, 1, 1) ~block:(64, 1, 1)
      ~bufs:[ ("IN", Array.make 64 1.0); ("OUT", Array.make 64 0.0) ]
      ~iargs:[]
  in
  Alcotest.(check int) "gld" 2 c.Ptx.Interp.gld_transactions;
  Alcotest.(check int) "gst" 2 c.gst_transactions

let test_trap_snapshot () =
  let b = B.create ~name:"oob" ~dtype:F64 in
  let inp = B.buf_param b "IN" in
  let f = B.fresh_f b in
  B.emit b (I.Ld_global (f, inp, Iimm 10_000));
  let prog = B.finish b in
  match
    Ptx.Interp.run prog ~grid:(1, 1, 1) ~block:(1, 1, 1)
      ~bufs:[ ("IN", Array.make 4 0.0) ]
      ~iargs:[]
  with
  | (_ : Ptx.Interp.counters) -> Alcotest.fail "expected a trap"
  | exception Ptx.Interp.Trap msg ->
    if not (contains ~needle:"dyn:" msg) then
      Alcotest.failf "trap message lacks counter snapshot: %s" msg

(* --- rotation, request ids, partial reads ------------------------------- *)

let test_trace_rotation () =
  let path = tmp_trace () in
  let rotated = path ^ ".1" in
  Obs.Metrics.reset ();
  (* A cap of 4 KiB forces several rotations out of ~200 span events of
     ~100 bytes each. *)
  Obs.Trace.start ~max_bytes:4096 ~path ();
  for i = 1 to 200 do
    Obs.Span.with_ (Printf.sprintf "rot-%03d" i) (fun () -> ())
  done;
  Obs.Trace.stop ();
  Alcotest.(check bool) "rotated file exists" true (Sys.file_exists rotated);
  let live = Obs.Trace.read_file path
  and old = Obs.Trace.read_file rotated in
  Sys.remove path;
  Sys.remove rotated;
  let size events =
    List.fold_left
      (fun acc e -> acc + String.length (J.to_string e) + 1)
      0 events
  in
  if size live > 4096 + 256 then
    Alcotest.failf "live trace overshoots cap: %d bytes" (size live);
  (* Every live segment announces where its predecessor went. *)
  (match events_of "trace_rotate" live with
   | marker :: _ ->
     Alcotest.(check (option string)) "rotation marker names target"
       (Some rotated)
       (str_field "rotated_to" marker)
   | [] -> Alcotest.fail "no trace_rotate marker in live file");
  (* The newest span is in the live file, an older one only in .1. *)
  let span_paths evs =
    List.filter_map (fun e -> str_field "path" e) (events_of "span" evs)
  in
  Alcotest.(check bool) "newest span live" true
    (List.mem "rot-200" (span_paths live));
  Alcotest.(check bool) "rotated file holds older spans" true
    (span_paths old <> [])

let test_request_ids () =
  let path = tmp_trace () in
  Obs.Metrics.reset ();
  Obs.Trace.start ~path ();
  Alcotest.(check (option int)) "no request outside scope" None
    (Obs.Span.current_request ());
  let r1 =
    Obs.Span.with_request (fun () ->
        let id = Obs.Span.current_request () in
        Obs.Span.with_ "req-span" (fun () -> ());
        id)
  in
  let r2 = Obs.Span.with_request (fun () -> Obs.Span.current_request ()) in
  Obs.Trace.stop ();
  let events = Obs.Trace.read_file path in
  Sys.remove path;
  Alcotest.(check bool) "scope restored" true (Obs.Span.current_request () = None);
  (match (r1, r2) with
   | Some a, Some b when a <> b -> ()
   | _ -> Alcotest.fail "request ids missing or not distinct");
  match events_of "span" events with
  | [ sp ] ->
    Alcotest.(check (option int)) "span tagged with request id" r1
      (Option.bind (J.member "req" sp) J.to_int)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_read_file_partial () =
  let path = tmp_trace () in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "{\"ev\":\"counter\",\"name\":\"a\",\"value\":1}\n";
      output_string oc "not json at all\n";
      output_string oc "{\"ev\":\"counter\",\"name\":\"b\",\"value\":2}\n";
      (* A torn final line, as left by a crashed writer. *)
      output_string oc "{\"ev\":\"counter\",\"na");
  let events, skipped = Obs.Trace.read_file_partial path in
  Sys.remove path;
  Alcotest.(check int) "parseable events survive" 2 (List.length events);
  Alcotest.(check int) "garbage lines counted" 2 skipped;
  Alcotest.(check (list (option string))) "order preserved"
    [ Some "a"; Some "b" ]
    (List.map (str_field "name") events);
  (* Empty file: no events, no error. *)
  let empty = tmp_trace () in
  let events, skipped = Obs.Trace.read_file_partial empty in
  Sys.remove empty;
  Alcotest.(check int) "empty file events" 0 (List.length events);
  Alcotest.(check int) "empty file skips" 0 skipped

(* --- zero cost when disabled -------------------------------------------- *)

let test_noop_when_disabled () =
  (* The test runner never sets ISAAC_TRACE, and every test above closes
     the sink it opens, so the layer must be off here. *)
  Alcotest.(check bool) "sink off" false (Obs.Trace.enabled ());
  Obs.Metrics.reset ();
  let iters = 200_000 in
  let (), elapsed =
    Obs.Span.timed (fun () ->
        for i = 1 to iters do
          Obs.Span.with_ "dead" (fun () -> ignore (Sys.opaque_identity i));
          Obs.Metrics.incr "dead.counter";
          Obs.Metrics.observe "dead.hist" 1.0
        done)
  in
  Alcotest.(check (option int)) "nothing accumulated" None
    (Obs.Metrics.counter_value "dead.counter");
  Alcotest.(check string) "no open spans" "" (Obs.Span.current_path ());
  (* ~3 no-op calls per iteration; anything near a microsecond each would
     blow this generous bound and indicate the gate stopped being a
     single boolean load. *)
  if elapsed > 2.0 then
    Alcotest.failf "disabled-path overhead too high: %.3fs for %d iters"
      elapsed iters

let () =
  Alcotest.run "obs"
    [ ("json", [ quick "roundtrip" test_json_roundtrip ]);
      ( "trace",
        [ quick "span nesting + jsonl roundtrip" test_span_roundtrip;
          quick "error flag" test_span_error_flag;
          quick "metrics flush" test_metrics_flush;
          quick "multi-domain emitters" test_multi_domain_sink;
          quick "size-capped rotation" test_trace_rotation;
          quick "request ids" test_request_ids;
          quick "partial reads" test_read_file_partial ] );
      ( "interp",
        [ quick "known instruction mix" test_interp_counters;
          quick "per-warp coalescing" test_interp_counters_two_warps;
          quick "trap carries counter snapshot" test_trap_snapshot ] );
      ("overhead", [ quick "no-op when ISAAC_TRACE unset" test_noop_when_disabled ])
    ]
