(* Tests for the MLP library: tensor algebra against naive references,
   training dynamics, and serialization. *)

let quick name f = Alcotest.test_case name `Quick f

let rng = Util.Rng.create 1234

let random_mat rows cols =
  let t = Mlp.Tensor.create rows cols in
  Array.iteri (fun i _ -> t.Mlp.Tensor.data.(i) <- Util.Rng.gaussian rng) t.Mlp.Tensor.data;
  t

let naive_mm ~m ~n ~k get_a get_b =
  let out = Mlp.Tensor.create m n in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (get_a i l *. get_b l j)
      done;
      Mlp.Tensor.set out i j !acc
    done
  done;
  out

let check_close name a b =
  assert (a.Mlp.Tensor.rows = b.Mlp.Tensor.rows && a.Mlp.Tensor.cols = b.Mlp.Tensor.cols);
  Array.iteri
    (fun i v ->
      if Float.abs (v -. b.Mlp.Tensor.data.(i)) > 1e-9 then
        Alcotest.failf "%s: element %d differs: %g vs %g" name i v b.Mlp.Tensor.data.(i))
    a.Mlp.Tensor.data

let test_matmul_nt () =
  let a = random_mat 5 7 and b = random_mat 4 7 in
  let got = Mlp.Tensor.matmul_nt a b in
  let want =
    naive_mm ~m:5 ~n:4 ~k:7 (Mlp.Tensor.get a) (fun l j -> Mlp.Tensor.get b j l)
  in
  check_close "nt" got want

let test_matmul_nn () =
  let a = random_mat 5 7 and b = random_mat 7 4 in
  check_close "nn" (Mlp.Tensor.matmul_nn a b)
    (naive_mm ~m:5 ~n:4 ~k:7 (Mlp.Tensor.get a) (Mlp.Tensor.get b))

let test_matmul_tn () =
  let a = random_mat 7 5 and b = random_mat 7 4 in
  check_close "tn" (Mlp.Tensor.matmul_tn a b)
    (naive_mm ~m:5 ~n:4 ~k:7 (fun i l -> Mlp.Tensor.get a l i) (Mlp.Tensor.get b))

let test_relu () =
  let t = Mlp.Tensor.of_array ~rows:1 ~cols:4 [| -1.0; 0.0; 2.0; -3.0 |] in
  Mlp.Tensor.relu_inplace t;
  Alcotest.(check (array (float 0.0))) "relu" [| 0.0; 0.0; 2.0; 0.0 |] t.Mlp.Tensor.data

let test_relu_mask () =
  let z = Mlp.Tensor.of_array ~rows:1 ~cols:4 [| -1.0; 0.5; 0.0; 3.0 |] in
  let d = Mlp.Tensor.of_array ~rows:1 ~cols:4 [| 9.0; 9.0; 9.0; 9.0 |] in
  Mlp.Tensor.relu_mask_inplace d z;
  Alcotest.(check (array (float 0.0))) "mask" [| 0.0; 9.0; 0.0; 9.0 |] d.Mlp.Tensor.data

let test_col_sums () =
  let t = Mlp.Tensor.of_array ~rows:2 ~cols:3 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "col sums" [| 5.; 7.; 9. |]
    (Mlp.Tensor.col_sums t)

let test_add_row () =
  let t = Mlp.Tensor.of_array ~rows:2 ~cols:2 [| 1.; 2.; 3.; 4. |] in
  Mlp.Tensor.add_row_inplace t [| 10.; 20. |];
  Alcotest.(check (array (float 0.0))) "bias" [| 11.; 22.; 13.; 24. |] t.Mlp.Tensor.data

(* --- network ------------------------------------------------------------ *)

let test_num_weights () =
  let net = Mlp.Network.create rng ~sizes:[| 3; 4; 1 |] in
  (* 3*4 + 4 biases + 4*1 + 1 bias = 21 *)
  Alcotest.(check int) "weights" 21 (Mlp.Network.num_weights net)

let test_predict_shape () =
  let net = Mlp.Network.create rng ~sizes:[| 3; 8; 1 |] in
  let x = random_mat 10 3 in
  Alcotest.(check int) "10 outputs" 10 (Array.length (Mlp.Network.predict net x))

let test_training_descends () =
  let net = Mlp.Network.create rng ~sizes:[| 2; 16; 1 |] in
  (* Fit y = x0 + 2*x1 on a fixed batch: loss must fall monotonically on
     average. *)
  let n = 64 in
  let x = random_mat n 2 in
  let y = Array.init n (fun i -> Mlp.Tensor.get x i 0 +. (2.0 *. Mlp.Tensor.get x i 1)) in
  let adam = Mlp.Network.default_adam in
  let first = Mlp.Network.train_batch net adam ~x ~y in
  for _ = 1 to 300 do
    ignore (Mlp.Network.train_batch net adam ~x ~y)
  done;
  let last = Mlp.Network.mse net ~x ~y in
  Alcotest.(check bool) "loss falls 10x" true (last < first /. 10.0)

let test_fit_linear_function () =
  let rng2 = Util.Rng.create 9 in
  let net = Mlp.Network.create rng2 ~sizes:[| 2; 32; 32; 1 |] in
  let n = 512 in
  let x = random_mat n 2 in
  let y = Array.init n (fun i ->
      let a = Mlp.Tensor.get x i 0 and b = Mlp.Tensor.get x i 1 in
      Float.max a b)
  in
  let (_ : Mlp.Train.history) =
    Mlp.Train.fit ~epochs:60 ~batch_size:32 rng2 net ~x ~y
  in
  (* max(a,b) is exactly the kind of kink relu nets capture (paper §5). *)
  Alcotest.(check bool) "fits max()" true (Mlp.Network.mse net ~x ~y < 0.01)

let test_history_shape () =
  let net = Mlp.Network.create rng ~sizes:[| 2; 4; 1 |] in
  let x = random_mat 100 2 in
  let y = Array.make 100 1.0 in
  let h = Mlp.Train.fit ~epochs:5 rng net ~x ~y ~validation:(x, y) in
  Alcotest.(check int) "train history" 5 (Array.length h.epoch_train_mse);
  Alcotest.(check int) "val history" 5 (Array.length h.epoch_val_mse)

let test_save_load_roundtrip () =
  let net = Mlp.Network.create rng ~sizes:[| 4; 8; 4; 1 |] in
  let path = Filename.temp_file "mlp" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Mlp.Network.save net oc;
      close_out oc;
      let ic = open_in path in
      let net2 = Mlp.Network.load ic in
      close_in ic;
      let x = random_mat 7 4 in
      Alcotest.(check (array (float 1e-12))) "same predictions"
        (Mlp.Network.predict net x) (Mlp.Network.predict net2 x))

(* --- batched forward (Matrix path) --------------------------------------- *)

let test_matrix_roundtrip () =
  let a = Array.init 12 float_of_int in
  let m = Mlp.Matrix.of_array ~rows:4 ~cols:3 a in
  Alcotest.(check (array (float 0.0))) "roundtrip" a (Mlp.Matrix.to_array m);
  Alcotest.(check (float 0.0)) "get" 7.0 (Mlp.Matrix.get m 2 1)

let test_matrix_sub_rows_shares_storage () =
  let m = Mlp.Matrix.of_array ~rows:4 ~cols:3 (Array.init 12 float_of_int) in
  let v = Mlp.Matrix.sub_rows m ~off:1 ~len:2 in
  Alcotest.(check int) "view rows" 2 v.Mlp.Matrix.rows;
  Alcotest.(check (float 0.0)) "view offset" 3.0 (Mlp.Matrix.get v 0 0);
  Mlp.Matrix.set v 1 2 99.0;
  Alcotest.(check (float 0.0)) "write visible in parent" 99.0 (Mlp.Matrix.get m 2 2)

(* The float contract of the planning hot path: the batched Bigarray
   forward must be bit-equal to the Tensor pipeline — exact zero
   tolerance — for any batch size, including 1 and ragged tails of the
   4-row blocking. *)
let test_forward_batch_matches_predict () =
  List.iter
    (fun sizes ->
      let net = Mlp.Network.create rng ~sizes in
      List.iter
        (fun batch ->
          let x = random_mat batch sizes.(0) in
          let want = Mlp.Network.predict net x in
          let got = Mlp.Network.predict_matrix net (Mlp.Matrix.of_tensor x) in
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "bit-equal at batch=%d" batch)
            want got)
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 14; 16; 17; 33 ])
    [ [| 16; 32; 1 |]; [| 16; 32; 64; 32; 1 |]; [| 3; 5; 1 |] ]

let test_forward_batch_rows_match_scalar () =
  let net = Mlp.Network.create rng ~sizes:[| 16; 32; 64; 32; 1 |] in
  let x = random_mat 37 16 in
  let batch = Mlp.Network.predict_matrix net (Mlp.Matrix.of_tensor x) in
  Array.iteri
    (fun r p ->
      let row = Array.init 16 (fun j -> Mlp.Tensor.get x r j) in
      Alcotest.(check (float 0.0)) "row = scalar path"
        (Mlp.Network.predict_one net row) p)
    batch

let prop_forward_batch_bit_equal =
  QCheck.Test.make ~name:"forward_batch bit-equals predict" ~count:30
    QCheck.(triple (int_range 1 24) (int_range 1 40) (int_range 0 1000))
    (fun (inputs, batch, seed) ->
      let r = Util.Rng.create (1 + seed) in
      let hidden = Array.init (1 + (seed mod 3)) (fun i -> 8 + (i * 4)) in
      let sizes = Array.concat [ [| inputs |]; hidden; [| 1 |] ] in
      let net = Mlp.Network.create r ~sizes in
      let x = Mlp.Tensor.create batch inputs in
      Array.iteri
        (fun i _ -> x.Mlp.Tensor.data.(i) <- Util.Rng.gaussian r)
        x.Mlp.Tensor.data;
      Mlp.Network.predict net x
      = Mlp.Network.predict_matrix net (Mlp.Matrix.of_tensor x))

let test_split () =
  let x = random_mat 100 3 in
  let y = Array.init 100 float_of_int in
  let (xt, yt), (xv, yv) = Mlp.Train.split rng ~test_fraction:0.2 ~x ~y in
  Alcotest.(check int) "train rows" 80 xt.Mlp.Tensor.rows;
  Alcotest.(check int) "test rows" 20 xv.Mlp.Tensor.rows;
  Alcotest.(check int) "train labels" 80 (Array.length yt);
  Alcotest.(check int) "test labels" 20 (Array.length yv);
  (* disjoint and exhaustive *)
  let all = Array.concat [ yt; yv ] in
  Array.sort compare all;
  Array.iteri (fun i v -> Alcotest.(check (float 0.0)) "partition" (float_of_int i) v) all

let prop_copy_independent =
  QCheck.Test.make ~name:"network copy is deep" QCheck.unit (fun () ->
      let rng = Util.Rng.create 3 in
      let net = Mlp.Network.create rng ~sizes:[| 2; 4; 1 |] in
      let copy = Mlp.Network.copy net in
      let x = Mlp.Tensor.of_array ~rows:1 ~cols:2 [| 1.0; 2.0 |] in
      let before = (Mlp.Network.predict copy x).(0) in
      ignore (Mlp.Network.train_batch net Mlp.Network.default_adam ~x ~y:[| 5.0 |]);
      (Mlp.Network.predict copy x).(0) = before)

let () =
  Alcotest.run "mlp"
    [ ("tensor",
       [ quick "matmul_nt" test_matmul_nt;
         quick "matmul_nn" test_matmul_nn;
         quick "matmul_tn" test_matmul_tn;
         quick "relu" test_relu;
         quick "relu mask" test_relu_mask;
         quick "col sums" test_col_sums;
         quick "add row" test_add_row ]);
      ("network",
       [ quick "num weights" test_num_weights;
         quick "predict shape" test_predict_shape;
         quick "training descends" test_training_descends;
         Alcotest.test_case "fits max()" `Slow test_fit_linear_function;
         quick "history shape" test_history_shape;
         quick "save/load" test_save_load_roundtrip;
         QCheck_alcotest.to_alcotest prop_copy_independent ]);
      ("matrix",
       [ quick "roundtrip" test_matrix_roundtrip;
         quick "sub_rows view" test_matrix_sub_rows_shares_storage;
         quick "forward_batch = predict" test_forward_batch_matches_predict;
         quick "rows match scalar path" test_forward_batch_rows_match_scalar;
         QCheck_alcotest.to_alcotest prop_forward_batch_bit_equal ]);
      ("train", [ quick "split" test_split ]) ]
