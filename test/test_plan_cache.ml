(* Unit tests of the sharded coalescing LRU cache under Isaac — the
   concurrency substrate of the serving daemon. Everything here runs on
   plain int/string keys so failures point at the cache, not the
   planner. *)

module PC = Isaac.Plan_cache

let weight1 _ = 1

let test_basic_hit_miss () =
  let c = PC.create () in
  let v, outcome, age = PC.find_or_compute c 1 ~weight:weight1 (fun () -> "a") in
  Alcotest.(check string) "computed value" "a" v;
  Alcotest.(check bool) "first request misses" true (outcome = PC.Miss);
  Alcotest.(check (float 0.0)) "miss age is zero" 0.0 age;
  let v2, outcome2, age2 =
    PC.find_or_compute c 1 ~weight:weight1 (fun () -> Alcotest.fail "recomputed")
  in
  Alcotest.(check string) "cached value" "a" v2;
  Alcotest.(check bool) "second request hits" true (outcome2 = PC.Hit);
  Alcotest.(check bool) "hit age non-negative" true (age2 >= 0.0);
  Alcotest.(check (option string)) "find sees it" (Some "a") (PC.find c 1);
  Alcotest.(check (option string)) "find misses absent" None (PC.find c 2);
  Alcotest.(check bool) "mem" true (PC.mem c 1 && not (PC.mem c 2));
  Alcotest.(check int) "one entry" 1 (PC.length c);
  let s = PC.stats c in
  Alcotest.(check (list int)) "stats" [ 1; 1; 0; 0 ]
    [ s.hits; s.misses; s.coalesced; s.evictions ]

let test_insert_and_clear () =
  let c = PC.create () in
  Alcotest.(check bool) "insert installs" true (PC.insert c "k" ~weight:7 "v");
  Alcotest.(check (option string)) "inserted visible" (Some "v") (PC.find c "k");
  Alcotest.(check int) "weight accounted" 7 (PC.bytes c);
  Alcotest.(check bool) "replace installs" true (PC.insert c "k" ~weight:3 "w");
  Alcotest.(check (option string)) "replaced" (Some "w") (PC.find c "k");
  Alcotest.(check int) "byte delta applied" 3 (PC.bytes c);
  Alcotest.(check int) "still one entry" 1 (PC.length c);
  PC.clear c;
  Alcotest.(check int) "cleared" 0 (PC.length c);
  Alcotest.(check int) "bytes reset" 0 (PC.bytes c);
  Alcotest.(check (option string)) "gone" None (PC.find c "k")

(* Exact LRU with a single shard: reading an old entry rescues it; the
   true least-recently-used entry goes first. *)
let test_lru_eviction_order () =
  let c = PC.create ~shards:1 ~max_entries:3 () in
  let put k = ignore (PC.find_or_compute c k ~weight:weight1 (fun () -> k)) in
  put 1; put 2; put 3;
  (* touch 1 so 2 becomes the LRU *)
  ignore (PC.find c 1);
  put 4;
  Alcotest.(check bool) "2 evicted (the LRU)" true (not (PC.mem c 2));
  Alcotest.(check bool) "1 rescued by the read" true (PC.mem c 1);
  Alcotest.(check bool) "3 and 4 resident" true (PC.mem c 3 && PC.mem c 4);
  Alcotest.(check int) "budget held" 3 (PC.length c);
  Alcotest.(check int) "one eviction" 1 (PC.stats c).evictions;
  put 5;
  Alcotest.(check bool) "next LRU (3) evicted" true (not (PC.mem c 3));
  Alcotest.(check int) "two evictions" 2 (PC.stats c).evictions

let test_byte_budget () =
  let c = PC.create ~shards:1 ~max_bytes:100 () in
  let put k w = ignore (PC.find_or_compute c k ~weight:(fun _ -> w) (fun () -> k)) in
  put 1 40; put 2 40;
  Alcotest.(check int) "under budget" 80 (PC.bytes c);
  put 3 40;
  (* 120 > 100: evict LRU (1) -> 80 *)
  Alcotest.(check bool) "oldest evicted" true (not (PC.mem c 1));
  Alcotest.(check int) "back under budget" 80 (PC.bytes c);
  (* one huge entry evicts everything else but stays itself *)
  put 4 99;
  Alcotest.(check bool) "big entry resident" true (PC.mem c 4);
  Alcotest.(check bool) "budget respected" true (PC.bytes c <= 100)

(* An entry older than the (injected) clock's current time: a backwards
   step must clamp the served age at 0, never go negative. *)
let test_age_clamped_on_backwards_clock () =
  let now = ref 1000.0 in
  let c = PC.create ~clock:(fun () -> !now) () in
  ignore (PC.find_or_compute c 1 ~weight:weight1 (fun () -> "v"));
  now := 1010.0;
  let _, _, age = PC.find_or_compute c 1 ~weight:weight1 (fun () -> "v") in
  Alcotest.(check (float 1e-9)) "forward clock: real age" 10.0 age;
  now := 900.0;
  let _, outcome, age = PC.find_or_compute c 1 ~weight:weight1 (fun () -> "v") in
  Alcotest.(check bool) "still a hit" true (outcome = PC.Hit);
  Alcotest.(check (float 0.0)) "backwards clock: age clamped at 0" 0.0 age

(* 8 domains race one cold key: the compute counter must end at exactly
   1, every domain gets the same value, and outcomes split into one
   Miss plus Coalesced/Hit for the rest. *)
let test_coalescing_races () =
  let c = PC.create () in
  let computes = Atomic.make 0 in
  let go = Atomic.make false in
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do Domain.cpu_relax () done;
            PC.find_or_compute c "key" ~weight:weight1 (fun () ->
                Atomic.incr computes;
                (* widen the race window so waiters really park *)
                Unix.sleepf 0.02;
                42)))
  in
  Atomic.set go true;
  let results = List.map Domain.join domains in
  Alcotest.(check int) "computation ran exactly once" 1 (Atomic.get computes);
  List.iter
    (fun (v, _, _) -> Alcotest.(check int) "same value everywhere" 42 v)
    results;
  let count o = List.length (List.filter (fun (_, o', _) -> o' = o) results) in
  Alcotest.(check int) "one miss" 1 (count PC.Miss);
  Alcotest.(check int) "seven parked or hit" 7
    (count PC.Coalesced + count PC.Hit);
  Alcotest.(check int) "stats agree" 1 (PC.stats c).misses

(* A failing computation must leave no trace: waiters re-raise the same
   exception, and the next request retries (and can succeed). *)
let test_failed_compute_retries () =
  let c = PC.create () in
  let boom = Failure "planner exploded" in
  (match PC.find_or_compute c 1 ~weight:weight1 (fun () -> raise boom) with
   | _ -> Alcotest.fail "expected the computation's exception"
   | exception Failure msg ->
     Alcotest.(check string) "original exception" "planner exploded" msg);
  Alcotest.(check bool) "no residue" true (not (PC.mem c 1));
  let v, outcome, _ = PC.find_or_compute c 1 ~weight:weight1 (fun () -> "ok") in
  Alcotest.(check string) "retry succeeds" "ok" v;
  Alcotest.(check bool) "retry is a fresh miss" true (outcome = PC.Miss)

(* insert must refuse to race an in-flight computation for the key. *)
let test_insert_respects_pending () =
  let c = PC.create () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        PC.find_or_compute c 1 ~weight:weight1 (fun () ->
            Atomic.set started true;
            while not (Atomic.get release) do Domain.cpu_relax () done;
            "computed"))
  in
  while not (Atomic.get started) do Domain.cpu_relax () done;
  Alcotest.(check bool) "insert refused while pending" false
    (PC.insert c 1 ~weight:1 "preloaded");
  Atomic.set release true;
  let v, _, _ = Domain.join d in
  Alcotest.(check string) "in-flight run published its result" "computed" v;
  Alcotest.(check (option string)) "pending result won" (Some "computed")
    (PC.find c 1)

let test_iter_and_merge_stats () =
  let c = PC.create () in
  List.iter
    (fun k -> ignore (PC.find_or_compute c k ~weight:weight1 (fun () -> 10 * k)))
    [ 1; 2; 3 ];
  let seen = ref [] in
  PC.iter c (fun k v -> seen := (k, v) :: !seen);
  Alcotest.(check (list (pair int int))) "iter sees every resident entry"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.sort compare !seen);
  let s = PC.stats c in
  let m = PC.merge_stats s s in
  Alcotest.(check (list int)) "merge is field-wise sum"
    [ 2 * s.hits; 2 * s.misses; 2 * s.entries; 2 * s.bytes ]
    [ m.hits; m.misses; m.entries; m.bytes ]

let () =
  Alcotest.run "plan_cache"
    [ ("basics",
       [ Alcotest.test_case "hit/miss/find/mem" `Quick test_basic_hit_miss;
         Alcotest.test_case "insert + clear" `Quick test_insert_and_clear;
         Alcotest.test_case "iter + merge_stats" `Quick test_iter_and_merge_stats ]);
      ("eviction",
       [ Alcotest.test_case "exact LRU order" `Quick test_lru_eviction_order;
         Alcotest.test_case "byte budget" `Quick test_byte_budget ]);
      ("clock",
       [ Alcotest.test_case "age clamped on backwards step" `Quick
           test_age_clamped_on_backwards_clock ]);
      ("concurrency",
       [ Alcotest.test_case "8-domain coalescing race" `Quick test_coalescing_races;
         Alcotest.test_case "failed compute retries" `Quick test_failed_compute_retries;
         Alcotest.test_case "insert respects pending" `Quick
           test_insert_respects_pending ]) ]
