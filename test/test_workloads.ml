(* Tests pinning the evaluation suites to the paper's Tables 4 and 5. *)

let quick name f = Alcotest.test_case name `Quick f

module WS = Workloads.Gemm_suites
module CS = Workloads.Conv_suites
module CP = Codegen.Conv_params

let test_fp32_suite_shape () =
  let tasks = WS.fp32_suite ~mk:2560 in
  Alcotest.(check int) "17 tasks (3+4+4+3+3)" 17 (List.length tasks);
  List.iter
    (fun (t : WS.task) ->
      Alcotest.(check bool) "fp32" true (t.input.dtype = Ptx.Types.F32))
    tasks

let test_mixed_suite_dtypes () =
  List.iter
    (fun (t : WS.task) ->
      let expect : Ptx.Types.dtype =
        match t.group with
        | "LINPACK" | "DeepBench [F]" | "DeepBench [B]" -> F16
        | _ -> F64
      in
      Alcotest.(check bool) (t.group ^ " dtype") true (t.input.dtype = expect))
    (WS.mixed_suite ~mk:2560)

let test_linpack_is_square_nt () =
  List.iter
    (fun (t : WS.task) ->
      Alcotest.(check bool) "square" true (t.input.m = t.input.n && t.input.n = t.input.k);
      Alcotest.(check bool) "N^T layout" true
        ((not t.input.a_trans) && t.input.b_trans))
    (WS.linpack F32)

let test_deepbench_layouts () =
  List.iter
    (fun (t : WS.task) ->
      Alcotest.(check bool) "forward has no transposes" true
        ((not t.input.a_trans) && not t.input.b_trans))
    (WS.deepbench_forward ~mk:1760 F32);
  List.iter
    (fun (t : WS.task) ->
      Alcotest.(check bool) "backward transposes A" true t.input.a_trans)
    (WS.deepbench_backward ~mk:1760 F32)

let test_ica_shape () =
  List.iter
    (fun (t : WS.task) ->
      Alcotest.(check int) "K = 60000" 60000 t.input.k;
      Alcotest.(check bool) "M = N" true (t.input.m = t.input.n))
    (WS.ica F32)

let test_svd_k32 () =
  List.iter
    (fun (t : WS.task) -> Alcotest.(check int) "K = 32 panel" 32 t.input.k)
    (WS.blocked_svd F64)

let test_table6_has_ten_rows () =
  Alcotest.(check int) "10 problems" 10 (List.length WS.table6_problems)

(* Table 5 prints NPQ and CRS for every layer; pin a few against the
   paper's numbers. *)
let test_conv_suite_matches_table5 () =
  let tasks = CS.suite Ptx.Types.F32 in
  Alcotest.(check int) "14 layers" 14 (List.length tasks);
  let check label npq crs =
    let t = CS.find label Ptx.Types.F32 in
    Alcotest.(check int) (label ^ " NPQ") npq (CP.npq t.input);
    Alcotest.(check int) (label ^ " CRS") crs (CP.crs t.input)
  in
  check "Conv1" 431024 100;
  check "Conv2" 100928 1600;
  check "Conv5" 23328 576;
  check "Conv8" 784 20800;
  check "Conv11" 79872 1600;
  check "Conv13" 784 4608;
  check "Conv14" 784 1024

let test_conv_find_missing () =
  Alcotest.check_raises "unknown layer" Not_found (fun () ->
      ignore (CS.find "Conv99" Ptx.Types.F32))

let test_conv_groups () =
  let groups =
    List.sort_uniq compare
      (List.map (fun (t : CS.task) -> t.group) (CS.suite Ptx.Types.F32))
  in
  Alcotest.(check int) "6 applications" 6 (List.length groups)

(* --- network stacks -------------------------------------------------------- *)

module NW = Workloads.Networks

let test_network_shapes () =
  let alex = NW.alexnet Ptx.Types.F32 in
  Alcotest.(check int) "AlexNet layers" 8 (List.length alex.layers);
  let resnet = NW.resnet50_excerpt Ptx.Types.F32 in
  Alcotest.(check int) "ResNet excerpt layers" 13 (List.length resnet.layers);
  let lstm = NW.lstm ~steps:5 Ptx.Types.F32 in
  Alcotest.(check int) "LSTM steps" 5 (List.length lstm.layers)

let test_network_flops () =
  (* fc8: 1000 x batch x 4096 at batch 16. *)
  let alex = NW.alexnet ~batch:16 Ptx.Types.F32 in
  let _, fc8 = List.nth alex.layers 7 in
  Alcotest.(check (float 1.0)) "fc8 flops"
    (2.0 *. 1000.0 *. 16.0 *. 4096.0)
    (NW.flops fc8);
  (* conv3: N16 C192 K384 P=Q=13 R=S=3. *)
  let _, conv3 = List.nth alex.layers 2 in
  Alcotest.(check (float 1.0)) "conv3 flops"
    (2.0 *. (16.0 *. 13.0 *. 13.0) *. 384.0 *. (192.0 *. 9.0))
    (NW.flops conv3)

let test_networks_plannable () =
  (* Every layer must have at least one legal configuration on both
     devices (otherwise the networks bench would fail). *)
  List.iter
    (fun device ->
      List.iter
        (fun (net : NW.network) ->
          List.iter
            (fun (label, layer) ->
              let ok =
                match layer with
                | NW.Gemm i ->
                  Baselines.Cublas.heuristic_pick device i <> None
                | NW.Conv i -> Baselines.Cudnn.heuristic_pick device i <> None
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s plannable" net.name label)
                true ok)
            net.layers)
        (NW.all Ptx.Types.F32))
    [ Gpu.Device.gtx980ti; Gpu.Device.p100 ]

let test_alexnet_padding_consistent () =
  (* conv1 has stride 4, pad 2: the derived input extent must be the
     AlexNet 223x223-ish input. *)
  let alex = NW.alexnet Ptx.Types.F32 in
  match List.assoc "conv1" alex.layers with
  | NW.Conv i ->
    Alcotest.(check int) "input height" 223 (Codegen.Conv_params.h i);
    Alcotest.(check int) "padded height" 227 (Codegen.Conv_params.h_padded i)
  | NW.Gemm _ -> Alcotest.fail "conv1 should be a convolution"

let () =
  Alcotest.run "workloads"
    [ ("gemm suites",
       [ quick "fp32 suite shape" test_fp32_suite_shape;
         quick "mixed suite dtypes" test_mixed_suite_dtypes;
         quick "linpack square NT" test_linpack_is_square_nt;
         quick "deepbench layouts" test_deepbench_layouts;
         quick "ica deep K" test_ica_shape;
         quick "svd K=32" test_svd_k32;
         quick "table 6 rows" test_table6_has_ten_rows ]);
      ("conv suite",
       [ quick "matches table 5" test_conv_suite_matches_table5;
         quick "find missing" test_conv_find_missing;
         quick "6 applications" test_conv_groups ]);
      ("networks",
       [ quick "layer counts" test_network_shapes;
         quick "flops accounting" test_network_flops;
         quick "all layers plannable" test_networks_plannable;
         quick "alexnet padding" test_alexnet_padding_consistent ]) ]
