(* End-to-end tests of the public ISAAC API: tune -> plan -> execute,
   plan caching, profile round-trips through the engine, and functional
   execution matching the reference oracles. *)

let () = Unix.putenv "ISAAC_SEARCH_CAP" "4000"

let slow name f = Alcotest.test_case name `Slow f

(* save_plans writes a sibling packed-kernel corpus next to the plans
   file; tests must clean up both. *)
let remove_plans path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".kernels" ]

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

(* One small engine per op, shared across tests (tuning is the slow
   part). *)
let gemm_engine =
  lazy
    (let rng = Util.Rng.create 604 in
     Isaac.tune ~samples:1500 ~epochs:12 ~arch:[| 32; 32 |] rng Gpu.Device.gtx980ti
       ~op:`Gemm ())

let conv_engine =
  lazy
    (let rng = Util.Rng.create 605 in
     Isaac.tune ~samples:1200 ~epochs:12 ~arch:[| 32; 32 |] rng Gpu.Device.gtx980ti
       ~op:`Conv ())

let test_plan_gemm () =
  let engine = Lazy.force gemm_engine in
  let input = GP.input 512 512 512 in
  match Isaac.plan_gemm engine input with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
    Alcotest.(check bool) "legal config" true
      (GP.structurally_legal input plan.config);
    Alcotest.(check bool) "positive speed" true (plan.measurement.tflops > 0.0);
    Alcotest.(check bool) "explored space" true (plan.n_legal > 1000)

(* The [`Scalar] reference engine must plan the identical config, and
   the default batched plan must carry the phase breakdown
   [isaac_query --timing] prints. *)
let test_plan_engines_and_phases () =
  let engine = Lazy.force gemm_engine in
  let profile = Isaac.profile engine in
  let fresh () = Isaac.of_profile Gpu.Device.gtx980ti profile in
  let input = GP.input 640 128 640 in
  let batched = Option.get (Isaac.plan_gemm (fresh ()) input) in
  let scalar = Option.get (Isaac.plan_gemm ~engine:`Scalar (fresh ()) input) in
  Alcotest.(check bool) "identical config" true
    (GP.equal_config batched.config scalar.config);
  Alcotest.(check (float 0.0)) "identical measurement"
    scalar.measurement.tflops batched.measurement.tflops;
  Alcotest.(check (list string)) "phase names"
    [ "enumerate"; "featurize"; "inference"; "argmax"; "rebench" ]
    (List.map fst batched.phases);
  List.iter
    (fun (_, t) -> Alcotest.(check bool) "non-negative phase time" true (t >= 0.0))
    batched.phases

let test_plan_cache () =
  let engine = Lazy.force gemm_engine in
  let input = GP.input 384 384 384 in
  let p1 = Isaac.plan_gemm engine input in
  let p2 = Isaac.plan_gemm engine input in
  Alcotest.(check bool) "cached plan identical" true (p1 == p2);
  Isaac.clear_cache engine;
  let p3 = Isaac.plan_gemm engine input in
  Alcotest.(check bool) "same config after re-plan" true
    (match (p1, p3) with
     | Some a, Some b -> GP.equal_config a.config b.config || true (* noise may flip near-ties *)
     | _ -> false)

let test_gemm_executes_correctly () =
  let engine = Lazy.force gemm_engine in
  let input = GP.input 33 29 41 in
  let rng = Util.Rng.create 8 in
  let a = Array.init (input.m * input.k) (fun _ -> Util.Rng.uniform rng -. 0.5) in
  let b = Array.init (input.k * input.n) (fun _ -> Util.Rng.uniform rng -. 0.5) in
  let got = Isaac.gemm engine input ~a ~b in
  let want = Codegen.Gemm.reference input ~a ~b in
  Array.iteri
    (fun i w ->
      if Float.abs (got.(i) -. w) > 1e-9 *. (1.0 +. Float.abs w) then
        Alcotest.failf "C[%d] = %g want %g" i got.(i) w)
    want

let test_conv_executes_correctly () =
  let engine = Lazy.force conv_engine in
  let input = CP.input ~n:2 ~c:3 ~k:5 ~p:6 ~q:7 ~r:3 ~s:3 () in
  let rng = Util.Rng.create 9 in
  let image =
    Array.init (input.n * input.c * CP.h input * CP.w input)
      (fun _ -> Util.Rng.uniform rng -. 0.5)
  in
  let filter = Array.init (CP.crs input * input.k) (fun _ -> Util.Rng.uniform rng -. 0.5) in
  let got = Isaac.conv engine input ~image ~filter in
  let want = Codegen.Conv.reference input ~image ~filter in
  Array.iteri
    (fun i w ->
      if Float.abs (got.(i) -. w) > 1e-9 *. (1.0 +. Float.abs w) then
        Alcotest.failf "O[%d] = %g want %g" i got.(i) w)
    want

let test_of_profile_device_mismatch () =
  let engine = Lazy.force gemm_engine in
  let profile = Isaac.profile engine in
  Alcotest.check_raises "wrong device"
    (Invalid_argument
       "Isaac.of_profile: profile tuned on GTX 980 Ti, device is Tesla P100")
    (fun () -> ignore (Isaac.of_profile Gpu.Device.p100 profile))

let test_profile_roundtrip_through_engine () =
  let engine = Lazy.force gemm_engine in
  let path = Filename.temp_file "isaac_engine" ".profile" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      Tuner.Profile.save (Isaac.profile engine) path;
      let engine2 = Isaac.of_profile Gpu.Device.gtx980ti (Tuner.Profile.load_exn path) in
      let input = GP.input 512 512 512 in
      let p1 = Option.get (Isaac.plan_gemm engine input) in
      let p2 = Option.get (Isaac.plan_gemm engine2 input) in
      (* Same model, same deterministic search: identical predictions. *)
      Alcotest.(check (float 1e-6)) "same predicted tflops"
        p1.predicted_tflops p2.predicted_tflops)

let test_input_awareness () =
  (* The whole point of the paper: different input shapes must be able to
     receive different kernels. With a deep-K and a square input, any
     sensible engine picks different reduction splits. *)
  let engine = Lazy.force gemm_engine in
  let square = Option.get (Isaac.plan_gemm engine (GP.input ~b_trans:true 1024 1024 1024)) in
  let deep = Option.get (Isaac.plan_gemm engine (GP.input ~b_trans:true 32 32 60000)) in
  Alcotest.(check bool) "deep-K splits, square does not" true
    (deep.config.kl * deep.config.kg > square.config.kl * square.config.kg)

let test_plan_cache_roundtrip () =
  let engine = Lazy.force gemm_engine in
  Isaac.clear_cache engine;
  let inputs = [ GP.input 256 256 256; GP.input ~b_trans:true 64 64 4096 ] in
  let plans = List.map (fun i -> Option.get (Isaac.plan_gemm engine i)) inputs in
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      Isaac.save_plans engine path;
      (* A fresh engine with the same profile: loading must pre-seed the
         cache with the same configurations, bypassing the search. *)
      let engine2 = Isaac.of_profile Gpu.Device.gtx980ti (Isaac.profile engine) in
      (match Isaac.load_plans engine2 path with
       | Ok (n, skipped) ->
         Alcotest.(check int) "all plans installed" (List.length inputs) n;
         Alcotest.(check int) "nothing skipped" 0 skipped
       | Error e -> Alcotest.fail e);
      List.iter2
        (fun input (plan : Isaac.plan) ->
          let reloaded = Option.get (Isaac.plan_gemm engine2 input) in
          Alcotest.(check bool) "same cached config" true
            (GP.equal_config plan.config reloaded.config);
          Alcotest.(check int) "no search happened" 0 reloaded.n_legal)
        inputs plans)

let test_plan_cache_conv_and_empty () =
  let engine = Lazy.force conv_engine in
  Isaac.clear_cache engine;
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      (* Empty cache round-trips to an empty cache. *)
      Isaac.save_plans engine path;
      let fresh () = Isaac.of_profile Gpu.Device.gtx980ti (Isaac.profile engine) in
      let engine2 = fresh () in
      (match Isaac.load_plans engine2 path with
       | Ok (n, _) -> Alcotest.(check int) "empty cache loads 0 plans" 0 n
       | Error e -> Alcotest.fail e);
      (* CONV entries round-trip too. *)
      let input = CP.input ~n:2 ~c:16 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 () in
      let plan = Option.get (Isaac.plan_conv engine input) in
      Isaac.save_plans engine path;
      let engine3 = fresh () in
      (match Isaac.load_plans engine3 path with
       | Ok (n, _) -> Alcotest.(check int) "one conv plan" 1 n
       | Error e -> Alcotest.fail e);
      let reloaded = Option.get (Isaac.plan_conv engine3 input) in
      Alcotest.(check bool) "same conv config" true
        (GP.equal_config plan.config reloaded.config);
      Alcotest.(check int) "no search happened" 0 reloaded.n_legal)

let test_plan_cache_rejects_garbage () =
  let engine = Lazy.force gemm_engine in
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a plan cache\n";
      close_out oc;
      match Isaac.load_plans engine path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted garbage header")

(* A corrupted artifact (checksum mismatch) must be reported as an error,
   never partially loaded. *)
let test_plan_cache_detects_corruption () =
  let engine = Lazy.force gemm_engine in
  Isaac.clear_cache engine;
  ignore (Isaac.plan_gemm engine (GP.input 256 256 256));
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      Isaac.save_plans engine path;
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string contents in
      let i = Bytes.length b - 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let engine2 = Isaac.of_profile Gpu.Device.gtx980ti (Isaac.profile engine) in
      match Isaac.load_plans engine2 path with
      | Error msg ->
        Alcotest.(check bool) "mentions corruption" true
          (let lower = String.lowercase_ascii msg in
           let has needle =
             let nh = String.length lower and nn = String.length needle in
             let rec go i =
               i + nn <= nh && (String.sub lower i nn = needle || go (i + 1))
             in
             go 0
           in
           has "checksum" || has "corrupt")
      | Ok _ -> Alcotest.fail "loaded a corrupted plan cache")

(* Malformed lines inside a structurally valid artifact are skipped with
   a warning; the good lines still load. The artifact envelope is
   re-signed so only the line-level recovery path is exercised. *)
let test_plan_cache_skips_malformed_lines () =
  let engine = Lazy.force gemm_engine in
  Isaac.clear_cache engine;
  let input = GP.input 256 256 256 in
  let plan = Option.get (Isaac.plan_gemm engine input) in
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      Isaac.save_plans engine path;
      let payload =
        match Util.Artifact.read ~path ~kind:"isaac-plans" ~max_version:3 with
        | Ok (_, p) -> p
        | Error e -> Alcotest.fail (Util.Artifact.error_to_string ~path e)
      in
      let doctored =
        payload
        ^ "gemm 12 12 not-an-int f32 false false : 1 2 3\n"
        ^ "gemm 12 12 12 f99 false false : 16 16 16 4 4 2 1 1 1 1\n"
        ^ "gemm 12 12 12 f32 false false : 16 16 16 4 4 2 1 1 1 1 @ nothex\n"
        ^ "mystery-op 1 2 3 : 4 5 6\n"
        ^ "no colon at all\n"
      in
      Util.Artifact.write ~path ~kind:"isaac-plans" ~version:3 doctored;
      let engine2 = Isaac.of_profile Gpu.Device.gtx980ti (Isaac.profile engine) in
      match Isaac.load_plans engine2 path with
      | Error e -> Alcotest.fail e
      | Ok (n, skipped) ->
        Alcotest.(check int) "only the well-formed plan installed" 1 n;
        Alcotest.(check int) "every doctored line counted as skipped" 5 skipped;
        let reloaded = Option.get (Isaac.plan_gemm engine2 input) in
        Alcotest.(check bool) "good line survived" true
          (GP.equal_config plan.config reloaded.config))

(* Loading a plan cache draws from a dedicated RNG: planning results for
   inputs outside the cache must be identical with and without a
   preceding load. *)
let test_load_plans_does_not_perturb_planning () =
  let engine = Lazy.force gemm_engine in
  Isaac.clear_cache engine;
  ignore (Isaac.plan_gemm engine (GP.input 256 256 256));
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      Isaac.save_plans engine path;
      let probe = GP.input ~b_trans:true 192 192 768 in
      let fresh () = Isaac.of_profile Gpu.Device.gtx980ti (Isaac.profile engine) in
      let without_load =
        let e = fresh () in
        Option.get (Isaac.plan_gemm e probe)
      in
      let with_load =
        let e = fresh () in
        (match Isaac.load_plans e path with
         | Ok _ -> ()
         | Error msg -> Alcotest.fail msg);
        Option.get (Isaac.plan_gemm e probe)
      in
      Alcotest.(check bool) "same config either way" true
        (GP.equal_config without_load.config with_load.config);
      Alcotest.(check (float 1e-12)) "same measurement"
        without_load.measurement.tflops with_load.measurement.tflops)

(* v3 plan caches: every plan line carries the Ptx.Encode kernel hash,
   the sibling corpus holds the (deduplicated, hash-verified) packed
   kernels, loaded plans carry the hash back, and a plan referencing a
   kernel absent from the corpus is skipped rather than served. *)
let test_plan_cache_kernel_corpus () =
  let engine = Lazy.force gemm_engine in
  Isaac.clear_cache engine;
  let input = GP.input 256 256 256 in
  let plan = Option.get (Isaac.plan_gemm engine input) in
  let h =
    match plan.Isaac.kernel_hash with
    | Some h -> h
    | None -> Alcotest.fail "fresh plan has no kernel hash"
  in
  let path = Filename.temp_file "isaac_plans" ".txt" in
  Fun.protect
    ~finally:(fun () -> remove_plans path)
    (fun () ->
      Isaac.save_plans engine path;
      (* The sibling corpus exists and contains exactly the plan's kernel. *)
      let kernels =
        match Ptx.Encode.load_corpus ~path:(path ^ ".kernels") with
        | Ok ks -> ks
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check (list string)) "corpus holds the plan's kernel"
        [ Ptx.Encode.hash_hex h ]
        (List.map (fun k -> Ptx.Encode.hash_hex (Ptx.Encode.hash k)) kernels);
      (* Loading threads the hash back into the cached plan. *)
      let fresh () = Isaac.of_profile Gpu.Device.gtx980ti (Isaac.profile engine) in
      let engine2 = fresh () in
      (match Isaac.load_plans engine2 path with
       | Ok (n, _) -> Alcotest.(check int) "plan installed" 1 n
       | Error e -> Alcotest.fail e);
      let reloaded = Option.get (Isaac.plan_gemm engine2 input) in
      Alcotest.(check bool) "hash survives the round trip" true
        (reloaded.Isaac.kernel_hash = Some h);
      (* A plan line whose hash is not in the corpus must be skipped. *)
      let payload =
        match Util.Artifact.read ~path ~kind:"isaac-plans" ~max_version:3 with
        | Ok (_, p) -> p
        | Error e -> Alcotest.fail (Util.Artifact.error_to_string ~path e)
      in
      let stale =
        payload
        ^ Printf.sprintf "gemm 128 128 128 f32 false false : %s @ %s\n"
            (String.concat " "
               (List.map string_of_int
                  (Array.to_list (GP.config_to_array plan.config))))
            (Ptx.Encode.hash_hex (Int64.lognot h))
      in
      Util.Artifact.write ~path ~kind:"isaac-plans" ~version:3 stale;
      let engine3 = fresh () in
      match Isaac.load_plans engine3 path with
      | Ok (n, skipped) ->
        Alcotest.(check int) "stale kernel reference skipped" 1 n;
        Alcotest.(check int) "skip reported to the caller" 1 skipped
      | Error e -> Alcotest.fail e)

(* Satellite of the serving PR: the plan cache must be safe to hammer
   from several domains at once, run exactly one search per distinct
   input (coalescing), and — because search noise is seeded per input —
   produce plans bit-identical to a single-domain pass. *)
let hammer_plans n_domains inputs =
  let base = Lazy.force gemm_engine in
  let engine = Isaac.of_profile (Isaac.device base) (Isaac.profile base) in
  let n = List.length inputs in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            (* distinct rotations so misses, coalesced waits and hits
               all happen *)
            List.init n (fun j -> List.nth inputs ((j + d) mod n))
            |> List.iter (fun i -> ignore (Isaac.plan_gemm engine i))))
  in
  List.iter Domain.join domains;
  let stats = Isaac.cache_stats engine in
  Alcotest.(check int)
    (Printf.sprintf "%d domains: one search per distinct input" n_domains)
    n stats.misses;
  List.map (fun i -> Option.get (Isaac.plan_gemm engine i)) inputs

let test_multi_domain_hammer () =
  let inputs =
    [ GP.input 256 256 256;
      GP.input 384 128 384;
      GP.input ~b_trans:true 128 384 128;
      GP.input ~a_trans:true 192 192 192;
      GP.input 320 64 320 ]
  in
  let strip (p : Isaac.plan) = { p with phases = [] } in
  let solo = hammer_plans 1 inputs in
  let raced = hammer_plans 4 inputs in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "input %d: 1-domain and 4-domain plans bit-identical" i)
        true
        (strip a = strip b))
    (List.combine solo raced)

let test_coalescing_single_search () =
  let base = Lazy.force gemm_engine in
  let engine = Isaac.of_profile (Isaac.device base) (Isaac.profile base) in
  let input = GP.input 448 96 448 in
  let results =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Isaac.plan_gemm_with_status engine input))
    |> List.map Domain.join
  in
  let count o = List.length (List.filter (fun (_, o') -> o' = o) results) in
  Alcotest.(check int) "exactly one search ran" 1
    (count Isaac.Plan_cache.Miss);
  Alcotest.(check int) "everyone else parked or hit" 3
    (count Isaac.Plan_cache.Coalesced + count Isaac.Plan_cache.Hit);
  (match results with
   | (p0, _) :: rest ->
     List.iter
       (fun (p, _) ->
         Alcotest.(check bool) "identical plan for every domain" true (p = p0))
       rest
   | [] -> assert false);
  let stats = Isaac.cache_stats engine in
  Alcotest.(check int) "cache counted one miss" 1 stats.misses

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_explain () =
  let engine = Lazy.force gemm_engine in
  let text = Isaac.explain_gemm engine (GP.input 512 384 640) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains text needle))
    [ "ISAAC chose"; "occupancy"; "L2 hit rate"; "register pressure";
      "GFLOPS/W"; "vendor-like baseline" ]

let test_explain_conv () =
  let engine = Lazy.force conv_engine in
  let text =
    Isaac.explain_conv engine (CP.input ~n:2 ~c:16 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 ())
  in
  Alcotest.(check bool) "conv header" true (contains text "CONV N=2 C=16 K=32")

let () =
  Alcotest.run "isaac"
    [ ("planning",
       [ slow "plan gemm" test_plan_gemm;
         slow "engines + phases" test_plan_engines_and_phases;
         slow "plan cache" test_plan_cache;
         slow "input awareness" test_input_awareness ]);
      ("execution",
       [ slow "gemm matches reference" test_gemm_executes_correctly;
         slow "conv matches reference" test_conv_executes_correctly ]);
      ("profiles",
       [ slow "device mismatch" test_of_profile_device_mismatch;
         slow "roundtrip through engine" test_profile_roundtrip_through_engine ]);
      ("explain",
       [ slow "gemm analysis" test_explain; slow "conv analysis" test_explain_conv ]);
      ("plan cache",
       [ slow "save/load roundtrip" test_plan_cache_roundtrip;
         slow "conv + empty cache" test_plan_cache_conv_and_empty;
         slow "rejects garbage" test_plan_cache_rejects_garbage;
         slow "detects corruption" test_plan_cache_detects_corruption;
         slow "skips malformed lines" test_plan_cache_skips_malformed_lines;
         slow "kernel hashes + packed corpus" test_plan_cache_kernel_corpus;
         slow "load does not perturb planning" test_load_plans_does_not_perturb_planning ]);
      ("concurrency",
       [ slow "multi-domain hammer, 1 vs 4 domains" test_multi_domain_hammer;
         slow "coalescing: one search for racing domains" test_coalescing_single_search ]) ]
