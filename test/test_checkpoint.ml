(* Resumable dataset generation: a killed run restored from its
   checkpoint chunks must produce a bitwise-identical dataset, stale and
   corrupt chunks are rejected, degenerate search spaces fail fast, and
   a crash while saving a profile keeps the previous one loadable. *)

module D = Tuner.Dataset
module F = Util.Faultsim

let with_faults spec f =
  F.configure spec;
  Fun.protect ~finally:(fun () -> F.configure "") f

let temp_base () =
  let path = Filename.temp_file "isaac_ckpt" "" in
  Sys.remove path;
  path

let cleanup_chunks base =
  let dir = Filename.dirname base and name = Filename.basename base in
  Array.iter
    (fun f ->
      if String.starts_with ~prefix:name f then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir)

let with_chunks f =
  let base = temp_base () in
  Fun.protect ~finally:(fun () -> cleanup_chunks base) (fun () -> f base)

let check_same_dataset msg (a : D.t) (b : D.t) =
  Alcotest.(check int) (msg ^ ": size") (D.size a) (D.size b);
  Alcotest.(check bool) (msg ^ ": log features bitwise equal") true
    (a.features_log = b.features_log);
  Alcotest.(check bool) (msg ^ ": raw features bitwise equal") true
    (a.features_raw = b.features_raw);
  Alcotest.(check bool) (msg ^ ": tflops bitwise equal") true
    (a.tflops = b.tflops)

let gen ?domains ?checkpoint ~seed n =
  D.generate_gemm ?domains ?checkpoint (Util.Rng.create seed)
    Gpu.Device.gtx980ti ~n

(* Writing checkpoints must not change what gets generated. *)
let test_checkpointing_is_transparent () =
  with_chunks (fun base ->
      let straight = gen ~seed:7001 120 in
      let checkpointed = gen ~seed:7001 ~checkpoint:(base, 25) 120 in
      check_same_dataset "checkpoint on vs off" straight checkpointed;
      Alcotest.(check bool) "chunk file removed after merge" false
        (Sys.file_exists (base ^ ".chunk0")))

(* The tentpole guarantee: kill the run mid-generation, resume from the
   surviving chunks, and get the exact dataset an uninterrupted run
   produces. *)
let test_kill_and_resume_bitwise_identical () =
  with_chunks (fun base ->
      let straight = gen ~seed:7002 120 in
      (* gen_crash:1 dies right after the first checkpoint write, leaving
         a durable partial chunk behind. *)
      with_faults "gen_crash:1" (fun () ->
          match gen ~seed:7002 ~checkpoint:(base, 25) 120 with
          | exception F.Injected _ -> ()
          | _ -> Alcotest.fail "gen_crash:1 did not kill the run");
      Alcotest.(check bool) "partial chunk survived the crash" true
        (Sys.file_exists (base ^ ".chunk0"));
      let resumed = gen ~seed:7002 ~checkpoint:(base, 25) 120 in
      check_same_dataset "resumed vs uninterrupted" straight resumed)

(* Crash on a later checkpoint: the chunk restores from its newest
   durable state, not the first. *)
let test_resume_from_later_checkpoint () =
  with_chunks (fun base ->
      let straight = gen ~seed:7003 120 in
      with_faults "gen_crash:0.34" (fun () ->
          (* period 3: dies on the third checkpoint write. *)
          match gen ~seed:7003 ~checkpoint:(base, 20) 120 with
          | exception F.Injected _ -> ()
          | _ -> Alcotest.fail "gen_crash did not kill the run");
      let resumed = gen ~seed:7003 ~checkpoint:(base, 20) 120 in
      check_same_dataset "late-crash resume" straight resumed)

(* Multi-domain runs checkpoint per chunk; resume must hold there too. *)
let test_kill_and_resume_two_domains () =
  with_chunks (fun base ->
      let straight = gen ~seed:7004 ~domains:2 120 in
      with_faults "gen_crash:1" (fun () ->
          match gen ~seed:7004 ~domains:2 ~checkpoint:(base, 25) 120 with
          | exception F.Injected _ -> ()
          | _ -> Alcotest.fail "gen_crash:1 did not kill the run");
      let resumed = gen ~seed:7004 ~domains:2 ~checkpoint:(base, 25) 120 in
      check_same_dataset "two-domain resume" straight resumed)

(* A checkpoint from a different configuration must be rejected (fresh
   restart), not silently merged into the wrong dataset. *)
let test_stale_checkpoint_rejected () =
  with_chunks (fun base ->
      with_faults "gen_crash:1" (fun () ->
          match
            D.generate_conv (Util.Rng.create 7005) Gpu.Device.gtx980ti ~n:120
              ~checkpoint:(base, 25)
          with
          | exception F.Injected _ -> ()
          | _ -> Alcotest.fail "gen_crash:1 did not kill the run");
      (* Same path, different op: the CONV chunk must not leak into a
         GEMM dataset. *)
      let straight = gen ~seed:7005 120 in
      let resumed = gen ~seed:7005 ~checkpoint:(base, 25) 120 in
      check_same_dataset "foreign chunk ignored" straight resumed)

let test_corrupt_checkpoint_rejected () =
  with_chunks (fun base ->
      with_faults "gen_crash:1" (fun () ->
          match gen ~seed:7006 ~checkpoint:(base, 25) 120 with
          | exception F.Injected _ -> ()
          | _ -> Alcotest.fail "gen_crash:1 did not kill the run");
      let chunk = base ^ ".chunk0" in
      let ic = open_in_bin chunk in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string raw in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      let oc = open_out_bin chunk in
      output_bytes oc b;
      close_out oc;
      let straight = gen ~seed:7006 120 in
      let resumed = gen ~seed:7006 ~checkpoint:(base, 25) 120 in
      check_same_dataset "corrupt chunk discarded" straight resumed)

(* Satellite (a): an input space with no measurable configuration must
   raise a descriptive error instead of spinning forever. *)
let test_no_progress_fails_fast () =
  let crippled =
    { Gpu.Device.gtx980ti with
      name = "crippled";
      shared_per_block_max = 1;
      max_threads_per_block = 1 }
  in
  match
    D.generate_gemm (Util.Rng.create 7007) crippled ~n:10
  with
  | exception Failure msg ->
    Alcotest.(check bool) "message names the cause" true
      (let lower = String.lowercase_ascii msg in
       let has needle =
         let nh = String.length lower and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub lower i nn = needle || go (i + 1))
         in
         go 0
       in
       has "no measurable configuration")
  | _ -> Alcotest.fail "generation succeeded on an impossible device"

(* Transient benchmark failures are skipped, not fatal: the run still
   delivers its n samples. *)
let test_bench_failures_survived () =
  with_faults "bench_fail:0.2" (fun () ->
      let d = gen ~seed:7008 80 in
      Alcotest.(check int) "all samples delivered" 80 (D.size d))

(* A crash while re-saving a profile leaves the previous profile intact
   and loadable, with bitwise-identical predictions. *)
let test_profile_crash_save_keeps_previous () =
  let rng = Util.Rng.create 7009 in
  let data = D.generate_gemm rng Gpu.Device.gtx980ti ~n:200 in
  let profile = Tuner.Profile.train ~arch:[| 16 |] ~epochs:4 rng data in
  let path = Filename.temp_file "isaac_profile" ".profile" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Tuner.Profile.save profile path;
      with_faults "io_crash:1" (fun () ->
          match Tuner.Profile.save profile path with
          | exception F.Injected _ -> ()
          | () -> Alcotest.fail "io_crash:1 did not fire");
      let reloaded =
        match Tuner.Profile.load path with
        | Ok p -> p
        | Error msg -> Alcotest.fail msg
      in
      let features = Array.init Tuner.Features.dim (fun i -> float_of_int (i + 2)) in
      Alcotest.(check (float 0.0)) "bitwise-equal prediction"
        (Tuner.Profile.predict_tflops profile features)
        (Tuner.Profile.predict_tflops reloaded features))

let () =
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "checkpoint"
    [ ("resume",
       [ slow "checkpointing is transparent" test_checkpointing_is_transparent;
         slow "kill and resume" test_kill_and_resume_bitwise_identical;
         slow "resume from later checkpoint" test_resume_from_later_checkpoint;
         slow "two domains" test_kill_and_resume_two_domains ]);
      ("rejection",
       [ slow "stale checkpoint" test_stale_checkpoint_rejected;
         slow "corrupt checkpoint" test_corrupt_checkpoint_rejected ]);
      ("resilience",
       [ slow "no legal config fails fast" test_no_progress_fails_fast;
         slow "benchmark failures skipped" test_bench_failures_survived;
         slow "profile crash-save" test_profile_crash_save_keeps_previous ]) ]
