(* Functional correctness of the CONV generator (implicit GEMM with
   indirection tables) against a direct-convolution oracle. *)

module P = Codegen.Gemm_params
module CP = Codegen.Conv_params
module C = Codegen.Conv

let rng = Util.Rng.create 77

let random_array dtype n =
  Array.init n (fun _ ->
      let v = Util.Rng.uniform rng *. 2.0 -. 1.0 in
      if dtype = Ptx.Types.F16 then Ptx.Types.round_half v else v)

let tolerance dtype crs =
  let kf = float_of_int crs in
  match (dtype : Ptx.Types.dtype) with
  | F64 -> 1e-12 *. kf
  | F32 -> 1e-13 *. kf +. 1e-9
  | F16 -> 5e-3 *. sqrt kf +. 1e-3

let cfg ?(ms = 2) ?(ns = 2) ?(ks = 1) ?(ml = 16) ?(nl = 16) ?(u = 8) ?(kl = 1)
    ?(kg = 1) ?(vec = 1) ?(db = 1) () =
  { P.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

let check_conv ?bounds (i : CP.input) c =
  Alcotest.(check bool) "legal" true (CP.structurally_legal i c);
  let image = random_array i.dtype (i.n * i.c * CP.h i * CP.w i) in
  let filter = random_array i.dtype (CP.crs i * i.k) in
  let got = C.run ?bounds i c ~image ~filter in
  let want = C.reference i ~image ~filter in
  let tol = tolerance i.dtype (CP.crs i) in
  Array.iteri
    (fun idx w ->
      let g = got.(idx) in
      if Float.abs (g -. w) > tol *. (1.0 +. Float.abs w) then
        Alcotest.failf "%s: O[%d] = %.9g, want %.9g (tol %g)"
          (CP.describe_name i c) idx g w tol)
    want

let test_basic_3x3 () =
  check_conv (CP.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:6 ~r:3 ~s:3 ()) (cfg ())

let test_1x1 () =
  (* RS = 1: degenerates to a plain matrix multiplication (paper's
     Conv14-style case). *)
  check_conv (CP.input ~n:2 ~c:8 ~k:16 ~p:5 ~q:5 ~r:1 ~s:1 ()) (cfg ())

let test_single_everything () =
  (* N = C = K = 1: the signal-processing degenerate case the paper calls
     out as poorly served by vendor libraries. *)
  check_conv (CP.input ~n:1 ~c:1 ~k:1 ~p:8 ~q:8 ~r:5 ~s:5 ()) (cfg ())

let test_wide_filter () =
  check_conv (CP.input ~n:1 ~c:2 ~k:8 ~p:4 ~q:10 ~r:5 ~s:10 ()) (cfg ())

let test_deep_reduction_split () =
  (* Large CRS with C_G/C_L reduction splitting (Conv7/Conv8 shape
     class). *)
  check_conv (CP.input ~n:1 ~c:32 ~k:8 ~p:4 ~q:4 ~r:3 ~s:3 ()) (cfg ~kg:2 ~kl:2 ())

let test_ks_split () =
  check_conv (CP.input ~n:2 ~c:8 ~k:8 ~p:4 ~q:4 ~r:3 ~s:3 ()) (cfg ~ks:2 ())

let test_ragged_tiles () =
  check_conv (CP.input ~n:1 ~c:3 ~k:5 ~p:5 ~q:7 ~r:2 ~s:2 ()) (cfg ())

let test_f16 () =
  check_conv (CP.input ~dtype:F16 ~n:1 ~c:4 ~k:8 ~p:6 ~q:6 ~r:3 ~s:3 ()) (cfg ())

let test_f64 () =
  check_conv (CP.input ~dtype:F64 ~n:1 ~c:4 ~k:8 ~p:6 ~q:6 ~r:3 ~s:3 ()) (cfg ())

let test_branch_bounds () =
  check_conv ~bounds:P.Branch (CP.input ~n:1 ~c:3 ~k:5 ~p:5 ~q:7 ~r:2 ~s:2 ()) (cfg ())

let test_strided () =
  check_conv (CP.input ~stride:2 ~n:2 ~c:3 ~k:4 ~p:5 ~q:5 ~r:3 ~s:3 ()) (cfg ())

let test_padded () =
  (* "same" convolution: pad 1 with a 3x3 filter. *)
  check_conv (CP.input ~pad:1 ~n:1 ~c:4 ~k:6 ~p:8 ~q:8 ~r:3 ~s:3 ()) (cfg ())

let test_strided_and_padded () =
  check_conv (CP.input ~stride:2 ~pad:2 ~n:2 ~c:2 ~k:4 ~p:6 ~q:5 ~r:5 ~s:5 ())
    (cfg ())

let test_pad_preserves_identity_filter () =
  (* A centered 1-hot 3x3 filter with pad 1 must reproduce the image. *)
  let i = CP.input ~pad:1 ~n:1 ~c:1 ~k:1 ~p:6 ~q:6 ~r:3 ~s:3 () in
  let image = random_array i.dtype (CP.h i * CP.w i) in
  let filter = Array.make 9 0.0 in
  filter.(4) <- 1.0;
  let out = C.run i (cfg ()) ~image ~filter in
  Array.iteri
    (fun idx v ->
      if Float.abs (v -. image.(idx)) > 1e-12 then
        Alcotest.failf "identity filter: O[%d] = %g, want %g" idx v image.(idx))
    out

let test_im2col_agrees_with_implicit () =
  (* The two algorithm families (explicit IM2COL+GEMM vs implicit GEMM
     with indirection tables) must agree bit-for-bit: same reduction
     order, same kernels, different A-side plumbing. *)
  List.iter
    (fun i ->
      let c = cfg () in
      if CP.structurally_legal i c then begin
        let image = random_array i.CP.dtype (i.n * i.c * CP.h i * CP.w i) in
        let filter = random_array i.dtype (CP.crs i * i.k) in
        let implicit = C.run i c ~image ~filter in
        let explicit = C.run_im2col i c ~image ~filter in
        Alcotest.(check bool) "identical results" true (implicit = explicit)
      end)
    [ CP.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:6 ~r:3 ~s:3 ();
      CP.input ~stride:2 ~pad:1 ~n:1 ~c:4 ~k:6 ~p:5 ~q:5 ~r:3 ~s:3 ();
      CP.input ~n:1 ~c:8 ~k:8 ~p:4 ~q:4 ~r:1 ~s:1 () ]

let test_im2col_shape () =
  let i = CP.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:5 ~r:3 ~s:2 () in
  let image = random_array i.dtype (i.n * i.c * CP.h i * CP.w i) in
  Alcotest.(check int) "NPQ x CRS" (CP.npq i * CP.crs i)
    (Array.length (C.im2col i image))

let test_tables_shape () =
  let i = CP.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:6 ~r:3 ~s:3 () in
  let c = cfg () in
  let lut_row, lut_delta = C.tables i c in
  let m = CP.npq i in
  Alcotest.(check int) "row table padded" ((m + c.ml - 1) / c.ml * c.ml)
    (Array.length lut_row);
  Alcotest.(check int) "delta table padded" (CP.crs i + c.u) (Array.length lut_delta);
  (* All addresses must be in range for the image buffer. *)
  let img_len = i.n * i.c * CP.h i * CP.w i in
  let max_delta = Array.fold_left Float.max 0.0 lut_delta in
  Array.iteri
    (fun idx base ->
      if idx < m then
        Alcotest.(check bool)
          "address in range" true
          (base +. max_delta < float_of_int img_len))
    lut_row

let test_random_convs () =
  let checked = ref 0 in
  for _ = 1 to 12 do
    let n = Util.Rng.int_in rng 1 3 in
    let c = Util.Rng.int_in rng 1 8 in
    let k = Util.Rng.int_in rng 1 12 in
    let p = Util.Rng.int_in rng 1 8 in
    let q = Util.Rng.int_in rng 1 8 in
    let r = Util.Rng.int_in rng 1 3 in
    let s = Util.Rng.int_in rng 1 3 in
    let i = CP.input ~n ~c ~k ~p ~q ~r ~s () in
    let candidates =
      [ cfg (); cfg ~ml:8 ~nl:8 ~ms:1 ~ns:2 ~u:4 (); cfg ~kg:2 ();
        cfg ~ml:32 ~nl:8 ~ms:4 ~ns:1 ~u:4 () ]
    in
    List.iter
      (fun cand ->
        if CP.structurally_legal i cand then begin
          incr checked;
          check_conv i cand
        end)
      candidates
  done;
  if !checked < 10 then Alcotest.failf "only %d conv cases checked" !checked

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "conv"
    [ ("shapes", [ quick "3x3" test_basic_3x3;
                   quick "1x1 (pure gemm)" test_1x1;
                   quick "N=C=K=1 signal" test_single_everything;
                   quick "wide filter" test_wide_filter;
                   quick "ragged tiles" test_ragged_tiles ]);
      ("splits", [ quick "deep reduction cg*cl" test_deep_reduction_split;
                   quick "cs split" test_ks_split ]);
      ("dtypes", [ quick "f16" test_f16; quick "f64" test_f64 ]);
      ("bounds", [ quick "branch mode" test_branch_bounds ]);
      ("stride/pad", [ quick "stride 2" test_strided;
                       quick "same padding" test_padded;
                       quick "stride 2 + pad 2" test_strided_and_padded;
                       quick "identity filter under padding"
                         test_pad_preserves_identity_filter ]);
      ("im2col", [ quick "agrees with implicit gemm" test_im2col_agrees_with_implicit;
                   quick "patch matrix shape" test_im2col_shape ]);
      ("tables", [ quick "shapes and ranges" test_tables_shape ]);
      ("random", [ Alcotest.test_case "random shapes" `Slow test_random_convs ]) ]
