(* Tests of the mini-PTX layer: half rounding, program validation,
   interpreter semantics (ALU ops, predication, barriers, shared memory,
   atomics, loops), traps, and the disassembler. *)

open Ptx.Types
module I = Ptx.Instr
module B = Ptx.Builder

let quick name f = Alcotest.test_case name `Quick f

(* --- half-precision rounding ----------------------------------------- *)

let test_round_half_exact () =
  List.iter
    (fun v -> Alcotest.(check (float 0.0)) "exact" v (round_half v))
    [ 0.0; 1.0; -1.0; 0.5; 2.0; 1024.0; 65504.0; -0.25 ]

let test_round_half_rounds () =
  (* 1 + 2^-11 is not representable in binary16: it must round to 1 or
     the next half value 1 + 2^-10. *)
  let v = 1.0 +. (1.0 /. 2048.0) in
  let r = round_half v in
  Alcotest.(check bool) "rounds to neighbour" true (r = 1.0 || r = 1.0 +. (1.0 /. 1024.0))

let test_round_half_overflow () =
  Alcotest.(check bool) "overflows to inf" true (round_half 1e6 = Float.infinity);
  Alcotest.(check bool) "neg overflow" true (round_half (-1e6) = Float.neg_infinity)

let prop_round_half_idempotent =
  QCheck.Test.make ~name:"round_half idempotent"
    QCheck.(float_range (-60000.0) 60000.0)
    (fun v ->
      let r = round_half v in
      Float.is_nan r || round_half r = r)

let prop_round_half_error_bound =
  QCheck.Test.make ~name:"round_half relative error < 2^-10"
    QCheck.(float_range 1e-3 60000.0)
    (fun v -> Float.abs (round_half v -. v) /. v <= 1.0 /. 1024.0 +. 1e-9)

(* --- small hand-built kernels ----------------------------------------- *)

(* C[tid] = A[tid] + B[tid] over one block. *)
let vector_add n =
  let b = B.create ~name:"vadd" ~dtype:F32 in
  let a_slot = B.buf_param b "A" in
  let b_slot = B.buf_param b "B" in
  let c_slot = B.buf_param b "C" in
  let tid = B.mov_i b (Ispecial Tid_x) in
  let fa = B.fresh_f b and fb = B.fresh_f b in
  B.emit b (I.Ld_global (fa, a_slot, Ireg tid));
  B.emit b (I.Ld_global (fb, b_slot, Ireg tid));
  let fc = B.fresh_f b in
  B.emit b (I.Fadd (fc, Freg fa, Freg fb));
  B.emit b (I.St_global (c_slot, Ireg tid, Freg fc));
  ignore n;
  B.finish b

let test_vector_add () =
  let n = 64 in
  let p = vector_add n in
  let a = Array.init n float_of_int in
  let b = Array.init n (fun i -> float_of_int (i * 10)) in
  let c = Array.make n 0.0 in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(n, 1, 1)
      ~bufs:[ ("A", a); ("B", b); ("C", c) ]
      ~iargs:[]
  in
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) "sum" (float_of_int (11 * i)) v)
    c

(* Block-wide reduction through shared memory with a barrier: thread 0
   sums all staged values. *)
let test_shared_reduction () =
  let n = 32 in
  let b = B.create ~name:"reduce" ~dtype:F32 in
  let a_slot = B.buf_param b "A" in
  let c_slot = B.buf_param b "C" in
  B.set_shared b ~words:n ~int_words:0;
  let tid = B.mov_i b (Ispecial Tid_x) in
  let v = B.fresh_f b in
  B.emit b (I.Ld_global (v, a_slot, Ireg tid));
  B.emit b (I.St_shared (Ireg tid, Freg v));
  B.emit b I.Bar;
  let p0 = B.setp b Eq (Ireg tid) (Iimm 0) in
  let acc = B.mov_f b (Fimm 0.0) in
  let tmp = B.fresh_f b in
  for i = 0 to n - 1 do
    B.emit b ~guard:(p0, true) (I.Ld_shared (tmp, Iimm i));
    B.emit b ~guard:(p0, true) (I.Fadd (acc, Freg acc, Freg tmp))
  done;
  B.emit b ~guard:(p0, true) (I.St_global (c_slot, Iimm 0, Freg acc));
  let p = B.finish b in
  let a = Array.init n (fun i -> float_of_int (i + 1)) in
  let c = Array.make 1 0.0 in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(n, 1, 1)
      ~bufs:[ ("A", a); ("C", c) ] ~iargs:[]
  in
  Alcotest.(check (float 1e-9)) "sum 1..32" (float_of_int (n * (n + 1) / 2)) c.(0)

(* Atomic accumulation across blocks. *)
let test_atomics_across_blocks () =
  let b = B.create ~name:"atom" ~dtype:F32 in
  let c_slot = B.buf_param b "C" in
  B.emit b (I.Atom_global_add (c_slot, Iimm 0, Fimm 1.0));
  let p = B.finish b in
  let c = Array.make 1 0.0 in
  let counters =
    Ptx.Interp.run p ~grid:(7, 3, 2) ~block:(8, 2, 1) ~bufs:[ ("C", c) ] ~iargs:[]
  in
  let total_threads = 7 * 3 * 2 * 8 * 2 in
  Alcotest.(check (float 0.0)) "all atoms landed" (float_of_int total_threads) c.(0);
  Alcotest.(check int) "atom counter" total_threads counters.atom

(* A loop with a runtime trip count: C[0] = sum_{i<K} i. *)
let test_loop () =
  let b = B.create ~name:"loop" ~dtype:F32 in
  let c_slot = B.buf_param b "C" in
  let pk = B.int_param b "K" in
  let i = B.mov_i b (Iimm 0) in
  let acc = B.mov_f b (Fimm 0.0) in
  let fi = B.fresh_f b in
  let top = B.fresh_label b "top" in
  let done_ = B.fresh_label b "done" in
  let p_enter = B.setp b Lt (Ireg i) pk in
  B.emit b ~guard:(p_enter, false) (I.Bra done_);
  B.place_label b top;
  (* fi <- i via repeated integer add trick: store as float by building
     the value with FMA on 1.0 would need conversion; instead use shared
     trick: accumulate 1.0 each iteration times loop counter. Simpler:
     acc += i by adding fi which we maintain as a running float copy. *)
  B.emit b (I.Fadd (acc, Freg acc, Freg fi));
  B.emit b (I.Fadd (fi, Freg fi, Fimm 1.0));
  B.emit b (I.Iadd (i, Ireg i, Iimm 1));
  let p_loop = B.setp b Lt (Ireg i) pk in
  B.emit b ~guard:(p_loop, true) (I.Bra top);
  B.place_label b done_;
  B.emit b (I.St_global (c_slot, Iimm 0, Freg acc));
  let p = B.finish b in
  let c = Array.make 1 (-1.0) in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(1, 1, 1) ~bufs:[ ("C", c) ]
      ~iargs:[ ("K", 10) ]
  in
  Alcotest.(check (float 1e-9)) "sum 0..9" 45.0 c.(0);
  (* zero-trip loop *)
  let c = Array.make 1 (-1.0) in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(1, 1, 1) ~bufs:[ ("C", c) ]
      ~iargs:[ ("K", 0) ]
  in
  Alcotest.(check (float 1e-9)) "zero-trip" 0.0 c.(0)

(* Predication: guarded stores only fire where the predicate holds. *)
let test_predication () =
  let b = B.create ~name:"pred" ~dtype:F32 in
  let c_slot = B.buf_param b "C" in
  let tid = B.mov_i b (Ispecial Tid_x) in
  let p_even = B.fresh_p b in
  let r = B.rem_i b (Ireg tid) (Iimm 2) in
  B.emit b (I.Setp (Eq, p_even, Ireg r, Iimm 0));
  B.emit b ~guard:(p_even, true) (I.St_global (c_slot, Ireg tid, Fimm 1.0));
  B.emit b ~guard:(p_even, false) (I.St_global (c_slot, Ireg tid, Fimm 2.0));
  let p = B.finish b in
  let c = Array.make 8 0.0 in
  let counters =
    Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(8, 1, 1) ~bufs:[ ("C", c) ] ~iargs:[]
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.0)) "parity value"
        (if i mod 2 = 0 then 1.0 else 2.0) v)
    c;
  Alcotest.(check int) "masked instruction count" 8 counters.predicated_off

(* Integer ALU semantics. *)
let test_int_alu () =
  let b = B.create ~name:"ialu" ~dtype:F32 in
  let c_slot = B.buf_param b "C" in
  (* Verify a chain of integer ops through a predicate: the kernel writes
     1.0 iff every intermediate value is what the semantics dictate. *)
  let x = B.mad_i b (Iimm 7) (Iimm 6) (Iimm 3) in
  let shifted = B.fresh_i b in
  B.emit b (I.Ishl (shifted, Ireg x, Iimm 1));        (* 90 *)
  let masked = B.fresh_i b in
  B.emit b (I.Iand (masked, Ireg shifted, Iimm 0xFF)); (* 90 *)
  let q = B.div_i b (Ireg masked) (Iimm 4) in          (* 22 *)
  let r = B.rem_i b (Ireg masked) (Iimm 4) in          (* 2 *)
  let mn = B.min_i b (Ireg q) (Ireg r) in              (* 2 *)
  let mx = B.fresh_i b in
  B.emit b (I.Imax (mx, Ireg q, Ireg r));              (* 22 *)
  let sum = B.add_i b (Ireg mn) (Ireg mx) in           (* 24 *)
  let p_ok = B.setp b Eq (Ireg sum) (Iimm 24) in
  B.emit b ~guard:(p_ok, true) (I.St_global (c_slot, Iimm 0, Fimm 1.0));
  let p = B.finish b in
  let c = Array.make 1 0.0 in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(1, 1, 1) ~bufs:[ ("C", c) ] ~iargs:[]
  in
  Alcotest.(check (float 0.0)) "alu chain" 1.0 c.(0)

(* --- traps ------------------------------------------------------------ *)

let expect_trap name f =
  match f () with
  | exception Ptx.Interp.Trap _ -> ()
  | _ -> Alcotest.failf "%s: expected Trap" name

let test_trap_oob_global () =
  let b = B.create ~name:"oob" ~dtype:F32 in
  let c_slot = B.buf_param b "C" in
  B.emit b (I.St_global (c_slot, Iimm 100, Fimm 1.0));
  let p = B.finish b in
  expect_trap "oob store" (fun () ->
      Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(1, 1, 1)
        ~bufs:[ ("C", Array.make 4 0.0) ] ~iargs:[])

let test_trap_missing_buffer () =
  let p = vector_add 4 in
  expect_trap "missing buffer" (fun () ->
      Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(4, 1, 1)
        ~bufs:[ ("A", Array.make 4 0.0) ] ~iargs:[])

let test_trap_budget () =
  let b = B.create ~name:"inf" ~dtype:F32 in
  let (_ : int) = B.buf_param b "C" in
  let top = B.fresh_label b "top" in
  B.place_label b top;
  B.emit b (I.Bra top);
  let p = B.finish b in
  expect_trap "infinite loop" (fun () ->
      Ptx.Interp.run ~max_dynamic:10_000 p ~grid:(1, 1, 1) ~block:(1, 1, 1)
        ~bufs:[ ("C", Array.make 1 0.0) ] ~iargs:[])

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let expect_trap_msg name f check =
  match f () with
  | exception Ptx.Interp.Trap msg ->
    if not (check msg) then Alcotest.failf "%s: unexpected trap message %S" name msg
  | _ -> Alcotest.failf "%s: expected Trap" name

(* Trap messages locate the fault by pc and nearest preceding label. *)
let test_trap_message_location () =
  let b = B.create ~name:"locmsg" ~dtype:F32 in
  let (_ : int) = B.buf_param b "C" in
  B.set_shared b ~words:4 ~int_words:0;
  let l = B.fresh_label b "body" in
  B.place_label b l;
  B.emit b (I.Mov (B.fresh_i b, Iimm 0));
  B.emit b (I.St_shared (Iimm 9, Fimm 1.0));
  let p = B.finish b in
  expect_trap_msg "oob shared store" (fun () ->
      Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(1, 1, 1)
        ~bufs:[ ("C", Array.make 1 0.0) ] ~iargs:[])
    (fun msg -> contains msg "pc " && contains msg ("label " ^ l))

let test_trap_barrier_divergence () =
  (* Threads disagree on whether they hit the barrier: tid 0 jumps over
     it. *)
  let b = B.create ~name:"diverge" ~dtype:F32 in
  let (_ : int) = B.buf_param b "C" in
  B.set_shared b ~words:4 ~int_words:0;
  let tid = B.mov_i b (Ispecial Tid_x) in
  let p0 = B.setp b Eq (Ireg tid) (Iimm 0) in
  let skip = B.fresh_label b "skip" in
  B.emit b ~guard:(p0, true) (I.Bra skip);
  B.emit b I.Bar;
  B.place_label b skip;
  let p = B.finish b in
  expect_trap_msg "barrier divergence" (fun () ->
      Ptx.Interp.run p ~grid:(1, 1, 1) ~block:(2, 1, 1)
        ~bufs:[ ("C", Array.make 1 0.0) ] ~iargs:[])
    (fun msg -> contains msg "barrier divergence" && contains msg "thread")

(* --- validation -------------------------------------------------------- *)

let test_validate_undefined_label () =
  let bad =
    { Ptx.Program.name = "bad"; dtype = F32; buf_params = [||]; int_params = [||];
      shared_words = 0; shared_int_words = 0;
      body = [| I.mk (I.Bra "nowhere"); I.mk I.Ret |];
      n_fregs = 0; n_iregs = 0; n_pregs = 0 }
  in
  match Ptx.Program.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undefined label accepted"

let test_validate_reg_range () =
  let bad =
    { Ptx.Program.name = "bad"; dtype = F32; buf_params = [||]; int_params = [||];
      shared_words = 0; shared_int_words = 0;
      body = [| I.mk (I.Movf (3, Fimm 0.0)); I.mk I.Ret |];
      n_fregs = 2; n_iregs = 0; n_pregs = 0 }
  in
  match Ptx.Program.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range register accepted"

let test_validate_duplicate_label () =
  let bad =
    { Ptx.Program.name = "bad"; dtype = F32; buf_params = [||]; int_params = [||];
      shared_words = 0; shared_int_words = 0;
      body = [| I.mk (I.Label "x"); I.mk (I.Label "x"); I.mk I.Ret |];
      n_fregs = 0; n_iregs = 0; n_pregs = 0 }
  in
  match Ptx.Program.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate label accepted"

(* --- analysis / disasm -------------------------------------------------- *)

let test_analysis_counts () =
  let p = vector_add 4 in
  let mix = Ptx.Analysis.of_program p in
  Alcotest.(check int) "2 global loads" 2 mix.ld_global;
  Alcotest.(check int) "1 global store" 1 mix.st_global;
  Alcotest.(check int) "1 fp add" 1 mix.fp_other

let test_between_labels_result () =
  let b = B.create ~name:"bl" ~dtype:F32 in
  let c_slot = B.buf_param b "C" in
  let l0 = B.fresh_label b "first" in
  let l1 = B.fresh_label b "second" in
  B.place_label b l0;
  let x = B.mov_i b (Iimm 1) in
  B.emit b (I.Iadd (x, Ireg x, Iimm 2));
  B.place_label b l1;
  B.emit b (I.St_global (c_slot, Iimm 0, Fimm 0.0));
  let p = B.finish b in
  (match Ptx.Analysis.between_labels p ~start:l0 ~stop:l1 with
   | Ok m ->
     Alcotest.(check int) "mov between" 1 m.Ptx.Analysis.mov;
     Alcotest.(check int) "ialu between" 1 m.Ptx.Analysis.ialu;
     Alcotest.(check int) "no store between" 0 m.Ptx.Analysis.st_global
   | Error e -> Alcotest.failf "expected Ok, got %s" e);
  (match Ptx.Analysis.between_labels p ~start:"nowhere" ~stop:l1 with
   | Error e -> Alcotest.(check bool) "names label" true (contains e "nowhere")
   | Ok _ -> Alcotest.fail "missing label accepted");
  match Ptx.Analysis.between_labels p ~start:l1 ~stop:l0 with
  | Error e -> Alcotest.(check bool) "says precedes" true (contains e "precedes")
  | Ok _ -> Alcotest.fail "reversed labels accepted"

let test_disasm_roundtrip_markers () =
  let p = vector_add 4 in
  let text = Ptx.Disasm.program p in
  List.iter
    (fun needle ->
      if not (String.length text > 0) then Alcotest.fail "empty";
      let found =
        let nh = String.length text and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) needle true found)
    [ "ld.global.f32"; "st.global.f32"; "add.f32"; ".visible .entry vadd"; "ret" ]



(* --- assembler round-trip -------------------------------------------------- *)

let roundtrip_program name p =
  let text = Ptx.Disasm.program p in
  match Ptx.Asm.parse text with
  | Error e -> Alcotest.failf "%s: parse failed: %s" name e
  | Ok q ->
    if q <> p then begin
      (* Locate the first difference for a useful message. *)
      Array.iteri
        (fun i instr ->
          if i < Array.length q.body && q.body.(i) <> instr then
            Alcotest.failf "%s: instruction %d differs:\n  %s\n  %s" name i
              (Ptx.Disasm.instr p.dtype instr)
              (Ptx.Disasm.instr q.dtype q.body.(i)))
        p.body;
      Alcotest.failf "%s: metadata differs" name
    end

let test_roundtrip_vadd () = roundtrip_program "vadd" (vector_add 8)

let test_roundtrip_handmade () =
  (* Exercise every instruction kind in one kernel. *)
  let b = B.create ~name:"kitchen_sink" ~dtype:F64 in
  let a_slot = B.buf_param b "A" in
  let c_slot = B.buf_param b "C" in
  let pk = B.int_param b "K" in
  B.set_shared b ~words:16 ~int_words:8;
  let tid = B.mov_i b (Ispecial Tid_x) in
  let x = B.add_i b (Ireg tid) (Iimm 3) in
  let x = B.sub_i b (Ireg x) pk in
  let x = B.mul_i b (Ireg x) (Iimm 2) in
  let x = B.mad_i b (Ireg x) (Iimm 5) (Ireg tid) in
  let x = B.div_i b (Ireg x) (Iimm 3) in
  let x = B.rem_i b (Ireg x) (Iimm 97) in
  let x = B.min_i b (Ireg x) (Iimm 50) in
  let y = B.fresh_i b in
  B.emit b (I.Imax (y, Ireg x, Iimm 1));
  B.emit b (I.Ishl (y, Ireg y, Iimm 2));
  B.emit b (I.Ishr (y, Ireg y, Iimm 1));
  B.emit b (I.Iand (y, Ireg y, Iimm 255));
  B.emit b (I.Ior (y, Ireg y, Iimm 1));
  let p1 = B.setp b Lt (Ireg y) (Iimm 100) in
  let p2 = B.setp b Ge (Ireg y) (Iimm 0) in
  let p3 = B.and_p b p1 p2 in
  let p4 = B.fresh_p b in
  B.emit b (I.Or_p (p4, p1, p3));
  B.emit b (I.Not_p (p4, p4));
  let f1 = B.mov_f b (Fimm 0.5) in
  let f2 = B.fresh_f b in
  B.emit b ~guard:(p3, true) (I.Ld_global (f2, a_slot, Ireg tid));
  B.emit b (I.Fadd (f1, Freg f1, Freg f2));
  B.emit b (I.Fsub (f1, Freg f1, Fimm 0.25));
  B.emit b (I.Fmul (f1, Freg f1, Fimm 3.0));
  B.emit b (I.Ffma (f1, Freg f1, Freg f2, Fimm 1e-3));
  B.emit b (I.St_shared (Iimm 2, Freg f1));
  B.emit b (I.St_shared_i (Iimm 1, Ireg y));
  let z = B.fresh_i b in
  B.emit b (I.Ld_shared_i (z, Iimm 1));
  B.emit b (I.Ld_shared (f2, Iimm 2));
  B.emit b I.Bar;
  let loop = B.fresh_label b "loop" in
  B.place_label b loop;
  B.emit b ~guard:(p4, false) (I.Bra loop);
  B.emit b ~guard:(p3, true) (I.St_global (c_slot, Ireg tid, Freg f1));
  B.emit b (I.Atom_global_add (c_slot, Iimm 0, Fimm 1.0));
  roundtrip_program "kitchen sink" (B.finish b)

let test_roundtrip_f16 () =
  let b = B.create ~name:"halfk" ~dtype:F16 in
  let c_slot = B.buf_param b "C" in
  B.emit b (I.St_global (c_slot, Iimm 0, Fimm 0.333251953125));
  roundtrip_program "f16 program" (B.finish b)

let test_parse_rejects_garbage () =
  List.iter
    (fun text ->
      match Ptx.Asm.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage: %s" text)
    [ "not ptx at all";
      ".visible .entry x (  // dtype=f99\n)\n{ // 0 fregs, 0 iregs, 0 pregs, 0 shared words, 0 shared int words\n  ret\n}";
      ".visible .entry x (  // dtype=f32\n)\n{ // 0 fregs, 0 iregs, 0 pregs, 0 shared words, 0 shared int words\n  frobnicate %r1\n}";
      (* undefined label must fail validation *)
      ".visible .entry x (  // dtype=f32\n)\n{ // 0 fregs, 0 iregs, 0 pregs, 0 shared words, 0 shared int words\n  bra nowhere\n  ret\n}" ]

let prop_asm_roundtrip_generated =
  QCheck.Test.make ~name:"assembler roundtrips random generated kernels" ~count:40
    QCheck.(quad (int_range 1 40) (int_range 1 40) (int_range 1 64) (int_range 0 3))
    (fun (m, n, k, variant) ->
      let open Codegen.Gemm_params in
      let c =
        match variant with
        | 0 -> { ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1; vec = 1; db = 1 }
        | 1 -> { ms = 2; ns = 2; ks = 2; ml = 16; nl = 16; u = 8; kl = 2; kg = 1; vec = 1; db = 1 }
        | 2 -> { ms = 4; ns = 2; ks = 1; ml = 16; nl = 8; u = 8; kl = 1; kg = 2; vec = 1; db = 1 }
        | _ -> { ms = 1; ns = 4; ks = 1; ml = 8; nl = 16; u = 4; kl = 1; kg = 1; vec = 1; db = 1 }
      in
      let i = input m n k in
      QCheck.assume (structurally_legal i c);
      QCheck.assume (c.kg = 1 || (k + c.kg - 1) / c.kg >= c.u);
      let p = Codegen.Gemm.generate i c in
      match Ptx.Asm.parse (Ptx.Disasm.program p) with
      | Ok q -> q = p
      | Error _ -> false)

let test_parsed_program_runs () =
  let p = vector_add 8 in
  let q = Ptx.Asm.parse_exn (Ptx.Disasm.program p) in
  let a = Array.init 8 float_of_int in
  let b = Array.init 8 (fun i -> float_of_int (100 * i)) in
  let c = Array.make 8 0.0 in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run q ~grid:(1, 1, 1) ~block:(8, 1, 1)
      ~bufs:[ ("A", a); ("B", b); ("C", c) ] ~iargs:[]
  in
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) "sum" (float_of_int (101 * i)) v)
    c


let () =
  Alcotest.run "ptx"
    [ ("half",
       [ quick "exact values" test_round_half_exact;
         quick "rounding" test_round_half_rounds;
         quick "overflow" test_round_half_overflow;
         QCheck_alcotest.to_alcotest prop_round_half_idempotent;
         QCheck_alcotest.to_alcotest prop_round_half_error_bound ]);
      ("interp",
       [ quick "vector add" test_vector_add;
         quick "shared reduction + barrier" test_shared_reduction;
         quick "atomics across blocks" test_atomics_across_blocks;
         quick "runtime loop" test_loop;
         quick "predication" test_predication;
         quick "integer alu chain" test_int_alu ]);
      ("traps",
       [ quick "oob global" test_trap_oob_global;
         quick "missing buffer" test_trap_missing_buffer;
         quick "instruction budget" test_trap_budget;
         quick "trap message locates pc/label" test_trap_message_location;
         quick "barrier divergence" test_trap_barrier_divergence ]);
      ("validate",
       [ quick "undefined label" test_validate_undefined_label;
         quick "register range" test_validate_reg_range;
         quick "duplicate label" test_validate_duplicate_label ]);
      ("analysis",
       [ quick "static counts" test_analysis_counts;
         quick "between_labels result paths" test_between_labels_result;
         quick "disasm markers" test_disasm_roundtrip_markers ]);
      ("assembler",
       [ quick "roundtrip vadd" test_roundtrip_vadd;
         quick "roundtrip kitchen sink" test_roundtrip_handmade;
         quick "roundtrip f16" test_roundtrip_f16;
         quick "rejects garbage" test_parse_rejects_garbage;
         QCheck_alcotest.to_alcotest prop_asm_roundtrip_generated;
         quick "parsed program runs" test_parsed_program_runs ]) ]