(* Tests for Obs.Telemetry: bucket geometry, known-value percentiles,
   snapshot merge algebra, multi-domain exactness, the model-drift
   channel, the flight recorder, and the snapshot exporters.

   The correctness claims pinned here are the ones telemetry.mli
   advertises: counter totals are exact for any domain count, histogram
   quantiles carry a <= 2% relative error, and snapshot merge is
   associative and commutative. *)

module T = Obs.Telemetry
module H = T.Histo
module J = Obs.Json

let quick name f = Alcotest.test_case name `Quick f

let tmp_path name =
  let path = Filename.temp_file ("isaac_telemetry_" ^ name) ".jsonl" in
  Sys.remove path;
  path

(* Run [f] with telemetry enabled against a throwaway snapshot file,
   always stopping (and so disabling) afterwards so later tests see the
   layer off again. *)
let with_telemetry name f =
  let path = tmp_path name in
  T.start ~path ();
  Fun.protect
    ~finally:(fun () ->
      T.stop ();
      T.reset ();
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".prom") then Sys.remove (path ^ ".prom"))
    (fun () -> f path)

(* --- bucket geometry ---------------------------------------------------- *)

let test_bucket_boundaries () =
  (* A bucket's inclusive lower edge must map back to that bucket, and
     the largest float below it must fall in the previous bucket. Edges
     are dyadic rationals, so both checks are exact, not approximate. *)
  List.iter
    (fun b ->
      Alcotest.(check int)
        (Printf.sprintf "lower edge of bucket %d" b)
        b
        (H.bucket_of (H.bucket_lower b));
      if b > 0 then
        Alcotest.(check int)
          (Printf.sprintf "pred of lower edge of bucket %d" b)
          (b - 1)
          (H.bucket_of (Float.pred (H.bucket_lower b))))
    [ 1; 2; 31; 32; 33; 64; 100; 1000; H.n_buckets - 1 ];
  (* Out-of-range and degenerate inputs clamp instead of escaping. *)
  Alcotest.(check int) "zero clamps low" 0 (H.bucket_of 0.0);
  Alcotest.(check int) "negative clamps low" 0 (H.bucket_of (-3.0));
  Alcotest.(check int) "nan clamps low" 0 (H.bucket_of Float.nan);
  Alcotest.(check int) "denormal clamps low" 0 (H.bucket_of 1e-300);
  Alcotest.(check int)
    "inf clamps high"
    (H.n_buckets - 1)
    (H.bucket_of Float.infinity);
  Alcotest.(check int)
    "huge clamps high"
    (H.n_buckets - 1)
    (H.bucket_of 1e300);
  (* Monotonicity across a few octaves of in-range values. *)
  let prev = ref (-1) in
  let v = ref 1e-6 in
  while !v < 1e6 do
    let b = H.bucket_of !v in
    if b < !prev then
      Alcotest.failf "bucket_of not monotone at %g: %d < %d" !v b !prev;
    prev := b;
    v := !v *. 1.01
  done

let check_rel ~msg ~expect actual =
  let rel = Float.abs (actual -. expect) /. Float.abs expect in
  if rel > 0.02 then
    Alcotest.failf "%s: got %g, want %g (+-2%%), rel err %.3f%%" msg actual
      expect (100.0 *. rel)

let test_known_percentiles () =
  (* 1..1000: every order statistic is known, so the quantile walk can
     be checked against ground truth at the advertised 2% bound. *)
  let h = H.create () in
  for i = 1 to 1000 do
    H.observe h (float i)
  done;
  let s = H.snapshot h in
  Alcotest.(check int) "count" 1000 s.H.count;
  Alcotest.(check (float 1e-9)) "sum" 500500.0 s.H.sum;
  Alcotest.(check (float 0.0)) "min exact" 1.0 s.H.min_v;
  Alcotest.(check (float 0.0)) "max exact" 1000.0 s.H.max_v;
  check_rel ~msg:"p50" ~expect:500.0 (H.quantile s 0.5);
  check_rel ~msg:"p90" ~expect:900.0 (H.quantile s 0.9);
  check_rel ~msg:"p99" ~expect:990.0 (H.quantile s 0.99);
  (* Extreme quantiles clamp to the exact observed min/max, so they can
     never overshoot the bucket midpoint would suggest. *)
  check_rel ~msg:"p100" ~expect:1000.0 (H.quantile s 1.0);
  check_rel ~msg:"p0" ~expect:1.0 (H.quantile s 0.0);
  if H.quantile s 1.0 > s.H.max_v then Alcotest.fail "p100 above exact max";
  if H.quantile s 0.0 < s.H.min_v then Alcotest.fail "p0 below exact min";
  check_rel ~msg:"mean" ~expect:500.5 (H.mean s);
  (* A second, skewed vector: 99 fast outcomes and one slow one. *)
  let h2 = H.create () in
  for _ = 1 to 99 do
    H.observe h2 0.001
  done;
  H.observe h2 10.0;
  let s2 = H.snapshot h2 in
  check_rel ~msg:"skewed p50" ~expect:0.001 (H.quantile s2 0.5);
  Alcotest.(check (float 0.0)) "skewed p100" 10.0 (H.quantile s2 1.0);
  (* Empty histogram degenerates to NaN, not a crash. *)
  Alcotest.(check bool) "empty quantile NaN" true
    (Float.is_nan (H.quantile H.empty_snapshot 0.5));
  Alcotest.(check bool) "empty mean NaN" true
    (Float.is_nan (H.mean H.empty_snapshot))

(* --- merge algebra ------------------------------------------------------ *)

let snap_equal a b =
  a.H.count = b.H.count
  && a.H.sum = b.H.sum
  && a.H.min_v = b.H.min_v
  && a.H.max_v = b.H.max_v
  && a.H.buckets = b.H.buckets

let snap_pp fmt s =
  Format.fprintf fmt "{count=%d; sum=%g; min=%g; max=%g; buckets=%d}" s.H.count
    s.H.sum s.H.min_v s.H.max_v (Array.length s.H.buckets)

let snap = Alcotest.testable snap_pp snap_equal

let test_merge_algebra () =
  (* Integer-valued samples keep the float sums exact, so structural
     equality of merged snapshots is meaningful. *)
  let mk samples =
    let h = H.create () in
    List.iter (fun v -> H.observe h v) samples;
    H.snapshot h
  in
  let a = mk [ 1.0; 2.0; 4.0; 1024.0 ]
  and b = mk [ 3.0; 3.0; 3.0 ]
  and c = mk [ 0.5; 7.0; 4096.0; 2.0 ] in
  Alcotest.check snap "commutative" (H.merge a b) (H.merge b a);
  Alcotest.check snap "associative"
    (H.merge a (H.merge b c))
    (H.merge (H.merge a b) c);
  Alcotest.check snap "identity left" a (H.merge H.empty_snapshot a);
  Alcotest.check snap "identity right" a (H.merge a H.empty_snapshot);
  let m = H.merge a (H.merge b c) in
  Alcotest.(check int) "merged count" 11 m.H.count;
  Alcotest.(check (float 1e-9)) "merged sum" 5145.5 m.H.sum;
  Alcotest.(check (float 0.0)) "merged min" 0.5 m.H.min_v;
  Alcotest.(check (float 0.0)) "merged max" 4096.0 m.H.max_v;
  (* Merging must agree with observing everything into one histogram. *)
  let all = mk [ 1.0; 2.0; 4.0; 1024.0; 3.0; 3.0; 3.0; 0.5; 7.0; 4096.0; 2.0 ] in
  Alcotest.check snap "merge = union of observations" all m

(* --- multi-domain exactness --------------------------------------------- *)

let test_domain_hammer () =
  (* Four domains hammer one counter and one histogram. Shard aliasing
     (two domains landing on the same shard) may cost contention but can
     never lose an increment: totals must be exact. *)
  let c = T.Counter.create () in
  let h = H.create () in
  let per_domain = 25_000 in
  let worker () =
    for i = 1 to per_domain do
      T.Counter.incr c;
      T.Counter.add c 2;
      H.observe h (float ((i mod 100) + 1))
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain * 3)
    (T.Counter.value c);
  let s = H.snapshot h in
  Alcotest.(check int) "no lost observations" (4 * per_domain) s.H.count;
  (* Each domain observes 1..100 cyclically: sum and extremes are known
     exactly, and the median is 50.5 +- the bucket error bound. *)
  let expect_sum = float (4 * (per_domain / 100) * 5050) in
  Alcotest.(check (float 1e-6)) "exact sum" expect_sum s.H.sum;
  Alcotest.(check (float 0.0)) "exact min" 1.0 s.H.min_v;
  Alcotest.(check (float 0.0)) "exact max" 100.0 s.H.max_v;
  check_rel ~msg:"hammered p50" ~expect:50.0 (H.quantile s 0.5);
  T.Counter.reset c;
  Alcotest.(check int) "reset" 0 (T.Counter.value c)

(* --- gauges and registry ------------------------------------------------ *)

let test_gauge_and_registry () =
  let g = T.Gauge.create () in
  Alcotest.(check bool) "unset gauge is NaN" true
    (Float.is_nan (T.Gauge.value g));
  T.Gauge.set g 1.5;
  T.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "last write wins" 2.5 (T.Gauge.value g);
  let reg = T.Registry.create () in
  let c1 = T.Registry.counter reg "x" in
  let c2 = T.Registry.counter reg "x" in
  Alcotest.(check bool) "same handle for same name" true (c1 == c2);
  (match T.Registry.histo reg "x" with
  | (_ : H.t) -> Alcotest.fail "kind mismatch not rejected"
  | exception Invalid_argument _ -> ());
  T.Counter.add c1 7;
  Alcotest.(check bool) "find_counter finds it" true
    (match T.Registry.find_counter reg "x" with
    | Some c -> T.Counter.value c = 7
    | None -> false);
  T.Registry.reset_values reg;
  Alcotest.(check int) "reset_values keeps handle" 0 (T.Counter.value c1);
  T.Registry.clear reg;
  Alcotest.(check bool) "clear unregisters" true
    (T.Registry.find_counter reg "x" = None)

(* --- gating, model drift, flight recorder ------------------------------- *)

let test_gated_sinks_off () =
  Alcotest.(check bool) "telemetry off in test env" false (T.enabled ());
  T.incr "off.counter";
  T.observe "off.hist" 1.0;
  T.set_gauge "off.gauge" 1.0;
  T.Model.record ~op:"gemm" ~bucket:"2^30" ~predicted:1.0 ~measured:2.0;
  T.Flight.record ~kind:"span" ~name:"dead" "nope";
  (* Gated sinks don't even register the name while disabled. *)
  Alcotest.(check (option int)) "counter never registered" None
    (T.counter_value "off.counter");
  Alcotest.(check (option (float 0.0))) "gauge never set" None
    (T.gauge_value "off.gauge");
  Alcotest.(check bool) "no drift recorded" true (T.Model.drift ~op:"gemm" = None);
  Alcotest.(check int) "flight empty" 0 (List.length (T.Flight.events ()))

let test_model_drift () =
  with_telemetry "drift" (fun _path ->
      T.Model.record ~op:"gemm" ~bucket:"2^30" ~predicted:1.1 ~measured:1.0;
      T.Model.record ~op:"gemm" ~bucket:"2^30" ~predicted:0.9 ~measured:1.0;
      T.Model.record ~op:"gemm" ~bucket:"2^34" ~predicted:1.5 ~measured:1.0;
      T.Model.record ~op:"conv" ~bucket:"2^28" ~predicted:2.0 ~measured:2.0;
      (* Garbage measurements are dropped, not folded in. *)
      T.Model.record ~op:"gemm" ~bucket:"2^30" ~predicted:1.0 ~measured:0.0;
      T.Model.record ~op:"gemm" ~bucket:"2^30" ~predicted:Float.nan
        ~measured:1.0;
      Alcotest.(check (list string)) "ops sorted" [ "conv"; "gemm" ]
        (T.Model.ops ());
      (match T.Model.drift ~op:"gemm" with
      | None -> Alcotest.fail "gemm drift missing"
      | Some d ->
        (* Sample-weighted mean over both buckets:
           (0.1 + 0.1 + 0.5) / 3. *)
        Alcotest.(check (float 1e-9)) "gemm drift" (0.7 /. 3.0) d);
      (match T.Model.drift ~op:"conv" with
      | None -> Alcotest.fail "conv drift missing"
      | Some d -> Alcotest.(check (float 1e-9)) "perfect prediction" 0.0 d);
      Alcotest.(check bool) "unknown op" true (T.Model.drift ~op:"fft" = None))

let test_flight_recorder () =
  with_telemetry "flight" (fun _path ->
      for i = 1 to 199 do
        T.Flight.record ~req:i ~kind:"span" ~name:"k"
          (Printf.sprintf "event-%d" i)
      done;
      (* Clock ticks between the bulk and the final event, so the
         newest-by-timestamp event is unambiguous even where the bulk's
         timestamps collide. *)
      Unix.sleepf 0.002;
      T.Flight.record ~req:200 ~kind:"span" ~name:"k" "event-200";
      let evs = T.Flight.events () in
      (* One writing domain touches one 64-slot ring: exactly the last
         64 events survive, the rest fell off. *)
      Alcotest.(check int) "ring capacity" 64 (List.length evs);
      let details =
        List.sort compare (List.map (fun e -> e.T.Flight.detail) evs)
      in
      let expect =
        List.sort compare
          (List.init 64 (fun i -> Printf.sprintf "event-%d" (i + 137)))
      in
      Alcotest.(check (list string)) "exactly the newest 64" expect details;
      let last = List.nth evs 63 in
      Alcotest.(check string) "newest by timestamp" "event-200"
        last.T.Flight.detail;
      Alcotest.(check int) "request id carried" 200 last.T.Flight.req;
      Alcotest.(check string) "kind carried" "span" last.T.Flight.kind;
      let dump = T.Flight.dump ~limit:5 () in
      let contains needle =
        let nl = String.length needle and hl = String.length dump in
        let rec go i = i + nl <= hl && (String.sub dump i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "dump shows newest" true (contains "event-200");
      Alcotest.(check bool) "dump tags request" true (contains "[req 200]");
      let lines =
        List.length
          (List.filter (fun s -> s <> "") (String.split_on_char '\n' dump))
      in
      (* Header line plus the [limit] newest events. *)
      Alcotest.(check int) "dump honours limit" 6 lines;
      T.Flight.clear ();
      Alcotest.(check int) "clear empties" 0 (List.length (T.Flight.events ()));
      Alcotest.(check string) "empty dump" "" (T.Flight.dump ()))

(* --- snapshot export ---------------------------------------------------- *)

let test_snapshot_and_export () =
  with_telemetry "export" (fun path ->
      T.add "plan.cache_hit" 3;
      T.incr "plan.cache_miss";
      T.set_gauge "mlp.val_mse" 0.25;
      for i = 1 to 100 do
        T.observe "plan.latency_s" (0.001 *. float i)
      done;
      T.Model.record ~op:"gemm" ~bucket:"2^30" ~predicted:1.2 ~measured:1.0;
      let snap = T.snapshot_json () in
      (* The snapshot must survive a JSONL round trip. *)
      let snap = J.of_string (J.to_string snap) in
      Alcotest.(check (option string)) "schema" (Some "isaac-telemetry")
        (Option.bind (J.member "schema" snap) J.to_str);
      let counter name =
        Option.bind (J.member "counters" snap) (fun c ->
            Option.bind (J.member name c) J.to_int)
      in
      Alcotest.(check (option int)) "hit counter" (Some 3)
        (counter "plan.cache_hit");
      Alcotest.(check (option int)) "miss counter" (Some 1)
        (counter "plan.cache_miss");
      let hist_field field =
        Option.bind (J.member "hists" snap) (fun h ->
            Option.bind (J.member "plan.latency_s" h) (fun h ->
                Option.bind (J.member field h) J.to_float))
      in
      (match hist_field "p50" with
      | None -> Alcotest.fail "plan latency p50 missing"
      | Some p50 -> check_rel ~msg:"exported p50" ~expect:0.05 p50);
      Alcotest.(check bool) "p95 and p99 present" true
        (hist_field "p95" <> None && hist_field "p99" <> None);
      let drift =
        Option.bind (J.member "gauges" snap) (fun g ->
            Option.bind (J.member "model.drift.gemm" g) J.to_float)
      in
      (match drift with
      | None -> Alcotest.fail "drift gauge missing"
      | Some d -> Alcotest.(check (float 1e-9)) "drift gauge value" 0.2 d);
      (* Files: export_now appends a JSONL line and renames a .prom in. *)
      T.export_now ();
      let snaps, skipped = Obs.Trace.read_file_partial path in
      Alcotest.(check int) "no torn lines" 0 skipped;
      Alcotest.(check bool) "at least one snapshot" true (snaps <> []);
      let prom = In_channel.with_open_text (path ^ ".prom") In_channel.input_all in
      let contains needle =
        let nl = String.length needle and hl = String.length prom in
        let rec go i = i + nl <= hl && (String.sub prom i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "prom counter" true
        (contains "isaac_plan_cache_hit_total 3");
      Alcotest.(check bool) "prom quantile" true (contains "quantile=\"0.99\"");
      Alcotest.(check bool) "prom drift gauge" true
        (contains "isaac_model_drift_gemm"));
  (* stop() wrote a final snapshot and turned the layer back off. *)
  Alcotest.(check bool) "disabled after stop" false (T.enabled ())

let test_seq_advances () =
  with_telemetry "seq" (fun path ->
      T.incr "seq.probe";
      T.export_now ();
      T.export_now ();
      let snaps, _ = Obs.Trace.read_file_partial path in
      let seqs =
        List.filter_map
          (fun s -> Option.bind (J.member "seq" s) J.to_int)
          snaps
      in
      match seqs with
      | a :: b :: _ ->
        Alcotest.(check bool) "monotone seq" true (b > a)
      | _ -> Alcotest.failf "expected 2 snapshots, got %d" (List.length seqs))

let () =
  Alcotest.run "telemetry"
    [ ( "histo",
        [ quick "bucket boundaries" test_bucket_boundaries;
          quick "known-value percentiles" test_known_percentiles;
          quick "merge algebra" test_merge_algebra ] );
      ( "sharding",
        [ quick "4-domain hammer" test_domain_hammer;
          quick "gauge + registry" test_gauge_and_registry ] );
      ( "gating",
        [ quick "sinks off by default" test_gated_sinks_off;
          quick "model drift" test_model_drift;
          quick "flight recorder" test_flight_recorder ] );
      ( "export",
        [ quick "snapshot json + prometheus" test_snapshot_and_export;
          quick "seq advances" test_seq_advances ] ) ]
