(* Tests for the alternative discrete optimizers (simulated annealing,
   genetic) and the power model. *)

let quick name f = Alcotest.test_case name `Quick f

let rng () = Util.Rng.create 1618

(* A synthetic objective with a unique known optimum: negative distance
   (in value-index space) to a target configuration. Illegal region:
   first parameter's smallest value. *)
let space = Tuner.Config_space.gemm

let target = Array.map (fun p -> p.Tuner.Config_space.values.(1)) space

let objective cfg =
  if cfg.(0) = space.(0).values.(0) then None
  else begin
    let d = ref 0 in
    Array.iteri
      (fun i v ->
        let ji = Tuner.Config_space.value_index space.(i) v in
        let jt = Tuner.Config_space.value_index space.(i) target.(i) in
        d := !d + abs (ji - jt))
      cfg;
    Some (-.float_of_int !d)
  end

let score_of (o : Tuner.Optim.outcome option) =
  match o with Some o -> o.score | None -> Alcotest.fail "no outcome"

let test_random_search_legal () =
  let o = Tuner.Optim.random_search (rng ()) space objective ~budget:500 in
  match o with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
    Alcotest.(check bool) "legal result" true (objective o.config <> None);
    Alcotest.(check bool) "within budget" true (o.evaluations <= 500)

let test_annealing_beats_random () =
  let r1 = score_of (Tuner.Optim.random_search (rng ()) space objective ~budget:800) in
  let sa =
    score_of (Tuner.Optim.simulated_annealing (rng ()) space objective ~budget:800)
  in
  Alcotest.(check bool) "sa >= random on smooth objective" true (sa >= r1)

let test_annealing_finds_optimum () =
  let o =
    Option.get (Tuner.Optim.simulated_annealing (rng ()) space objective ~budget:4000)
  in
  Alcotest.(check bool) "near optimum" true (o.score >= -1.0)

let test_genetic_finds_optimum () =
  let o = Option.get (Tuner.Optim.genetic (rng ()) space objective ~budget:4000) in
  Alcotest.(check bool) "near optimum" true (o.score >= -2.0);
  Alcotest.(check bool) "legal" true (objective o.config <> None)

let test_all_legal_results () =
  (* Never return the illegal region even when it is most of the space. *)
  let harsh cfg = if cfg.(1) <> space.(1).values.(0) then None else Some 1.0 in
  List.iter
    (fun o ->
      match o with
      | Some (o : Tuner.Optim.outcome) ->
        Alcotest.(check bool) "legal" true (harsh o.config <> None)
      | None -> ())
    [ Tuner.Optim.random_search (rng ()) space harsh ~budget:300;
      Tuner.Optim.simulated_annealing (rng ()) space harsh ~budget:300;
      Tuner.Optim.genetic (rng ()) space harsh ~budget:300 ]

let test_deterministic () =
  let a = Tuner.Optim.simulated_annealing (Util.Rng.create 5) space objective ~budget:500 in
  let b = Tuner.Optim.simulated_annealing (Util.Rng.create 5) space objective ~budget:500 in
  match (a, b) with
  | Some a, Some b ->
    Alcotest.(check bool) "same result" true (a.config = b.config && a.score = b.score)
  | _ -> Alcotest.fail "no outcome"

(* --- power model ------------------------------------------------------- *)

let report input cfg =
  Option.get
    (Gpu.Perf_model.predict Gpu.Device.p100 (Codegen.Gemm_params.cost input cfg))

let linpack_cfg =
  { Codegen.Gemm_params.ms = 8; ns = 8; ks = 1; ml = 64; nl = 64; u = 8; kl = 1;
    kg = 1; vec = 4; db = 2 }

let test_power_bounds () =
  let r = report (Codegen.Gemm_params.input ~b_trans:true 2048 2048 2048) linpack_cfg in
  let w = Gpu.Power.board_watts Gpu.Device.p100 r in
  Alcotest.(check bool) "within idle..TDP" true (w >= 37.0 && w <= 250.0)

let test_compute_bound_draws_more () =
  let busy = report (Codegen.Gemm_params.input ~b_trans:true 2048 2048 2048) linpack_cfg in
  let idleish = report (Codegen.Gemm_params.input ~b_trans:true 64 64 64) linpack_cfg in
  Alcotest.(check bool) "saturated kernel draws more power" true
    (Gpu.Power.board_watts Gpu.Device.p100 busy
     > Gpu.Power.board_watts Gpu.Device.p100 idleish)

let test_energy_consistency () =
  let r = report (Codegen.Gemm_params.input ~b_trans:true 1024 1024 1024) linpack_cfg in
  let j = Gpu.Power.kernel_joules Gpu.Device.p100 r in
  Alcotest.(check bool) "energy = power x time" true
    (Float.abs (j -. (Gpu.Power.board_watts Gpu.Device.p100 r *. r.seconds)) < 1e-12);
  let eff = Gpu.Power.gflops_per_watt Gpu.Device.p100 r in
  Alcotest.(check bool) "plausible efficiency" true (eff > 1.0 && eff < 200.0)

let () =
  Alcotest.run "optim"
    [ ("optimizers",
       [ quick "random search legal" test_random_search_legal;
         quick "annealing >= random" test_annealing_beats_random;
         quick "annealing near optimum" test_annealing_finds_optimum;
         quick "genetic near optimum" test_genetic_finds_optimum;
         quick "never returns illegal" test_all_legal_results;
         quick "deterministic" test_deterministic ]);
      ("power",
       [ quick "bounds" test_power_bounds;
         quick "utilization-sensitive" test_compute_bound_draws_more;
         quick "energy consistency" test_energy_consistency ]) ]
