(* Functional correctness of the GEMM kernel generator: generated mini-PTX
   executed by the interpreter must match the reference triple loop across
   layouts, data-types, ragged shapes, bounds-checking modes and all three
   reduction-splitting mechanisms. *)

module P = Codegen.Gemm_params
module G = Codegen.Gemm

let rng = Util.Rng.create 2024

let random_array rng dtype n =
  Array.init n (fun _ ->
      let v = Util.Rng.uniform rng *. 2.0 -. 1.0 in
      if dtype = Ptx.Types.F16 then Ptx.Types.round_half v else v)

let tolerance dtype k =
  let kf = float_of_int k in
  match (dtype : Ptx.Types.dtype) with
  | F64 -> 1e-12 *. kf
  | F32 -> 1e-13 *. kf +. 1e-9
  | F16 -> 5e-3 *. sqrt kf +. 1e-3

let check_gemm ?bounds (i : P.input) (c : P.config) =
  Alcotest.(check bool)
    (Printf.sprintf "legal %s" (P.describe c))
    true
    (P.structurally_legal i c);
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let got = G.run ?bounds i c ~a ~b in
  let want = G.reference i ~a ~b in
  let tol = tolerance i.dtype i.k in
  Array.iteri
    (fun idx w ->
      let g = got.(idx) in
      if Float.abs (g -. w) > tol *. (1.0 +. Float.abs w) then
        Alcotest.failf "%s %s: C[%d] = %.9g, want %.9g (tol %g)"
          (P.describe_name i c) (P.describe c) idx g w tol)
    want

let cfg ?(ms = 2) ?(ns = 2) ?(ks = 1) ?(ml = 16) ?(nl = 16) ?(u = 8) ?(kl = 1)
    ?(kg = 1) ?(vec = 1) ?(db = 1) () =
  { P.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

let test_square_exact () =
  check_gemm (P.input 32 32 32) (cfg ())

let test_ragged_m () = check_gemm (P.input 19 16 24) (cfg ())
let test_ragged_n () = check_gemm (P.input 16 21 24) (cfg ())
let test_ragged_k () = check_gemm (P.input 16 16 13) (cfg ())
let test_ragged_all () = check_gemm (P.input 17 23 29) (cfg ())
let test_tiny () = check_gemm (P.input 1 1 1) (cfg ())
let test_row_vector () = check_gemm (P.input 1 40 7) (cfg ())
let test_col_vector () = check_gemm (P.input 40 1 7) (cfg ())

let test_a_trans () = check_gemm (P.input ~a_trans:true 20 18 25) (cfg ())
let test_b_trans () = check_gemm (P.input ~b_trans:true 20 18 25) (cfg ())
let test_ab_trans () =
  check_gemm (P.input ~a_trans:true ~b_trans:true 20 18 25) (cfg ())

let test_ks_split () = check_gemm (P.input 24 24 40) (cfg ~ks:2 ())
let test_ks4_split () = check_gemm (P.input 24 24 40) (cfg ~ks:4 ~u:8 ())
let test_kl_split () = check_gemm (P.input 24 24 40) (cfg ~kl:2 ())
let test_kl4_split () = check_gemm (P.input 24 24 64) (cfg ~kl:4 ~u:16 ())
let test_kg_split () = check_gemm (P.input 24 24 64) (cfg ~kg:2 ())
let test_kg4_split () = check_gemm (P.input 24 24 128) (cfg ~kg:4 ())
let test_all_splits () =
  check_gemm (P.input 24 24 160) (cfg ~ks:2 ~kl:2 ~kg:2 ~u:8 ())

let test_k_smaller_than_u () = check_gemm (P.input 16 16 3) (cfg ~u:8 ())
let test_kg_with_ragged_k () = check_gemm (P.input 16 16 49) (cfg ~kg:2 ~u:8 ())

let test_f64 () = check_gemm (P.input ~dtype:F64 20 20 30) (cfg ())
let test_f16 () = check_gemm (P.input ~dtype:F16 20 20 30) (cfg ())

let test_bounds_branch () =
  check_gemm ~bounds:P.Branch (P.input 17 23 29) (cfg ())

let test_bounds_unchecked () =
  (* Only valid for exactly-divisible shapes. *)
  check_gemm ~bounds:P.Unchecked (P.input 32 32 32) (cfg ())

let test_big_tiles () =
  check_gemm (P.input 70 70 40) (cfg ~ms:4 ~ns:4 ~ml:32 ~nl:32 ~u:8 ())

let test_asymmetric_tiles () =
  check_gemm (P.input 70 20 40) (cfg ~ms:4 ~ns:2 ~ml:32 ~nl:8 ~u:8 ())

(* --- alpha/beta BLAS semantics ------------------------------------------ *)

let check_gemm_alpha_beta ~alpha ~beta (i : P.input) (c : P.config) =
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let c_in = random_array rng i.dtype (i.m * i.n) in
  let got = G.run ~alpha ~beta ~c_in i c ~a ~b in
  let want = G.reference ~alpha ~beta ~c_in i ~a ~b in
  let tol = tolerance i.dtype i.k in
  Array.iteri
    (fun idx w ->
      if Float.abs (got.(idx) -. w) > tol *. (1.0 +. Float.abs w) then
        Alcotest.failf "alpha/beta: C[%d] = %.9g, want %.9g" idx got.(idx) w)
    want

let test_alpha_scaling () =
  check_gemm_alpha_beta ~alpha:2.5 ~beta:0.0 (P.input 20 18 24) (cfg ())

let test_beta_accumulate () =
  check_gemm_alpha_beta ~alpha:1.0 ~beta:1.0 (P.input 20 18 24) (cfg ())

let test_alpha_beta_general () =
  check_gemm_alpha_beta ~alpha:(-0.5) ~beta:0.25 (P.input 17 23 29) (cfg ())

let test_alpha_beta_with_kg () =
  (* Grid splitting folds beta on the host; semantics must be unchanged. *)
  check_gemm_alpha_beta ~alpha:2.0 ~beta:0.5 (P.input 16 16 64) (cfg ~kg:2 ())

let test_alpha_beta_with_kl () =
  check_gemm_alpha_beta ~alpha:3.0 ~beta:(-1.0) (P.input 24 24 40) (cfg ~kl:2 ())

(* --- fused epilogues -------------------------------------------------------- *)

let check_epilogue ~epilogue ?(alpha = 1.0) ?(beta = 0.0) (i : P.input) (c : P.config) =
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let bias =
    match epilogue with
    | P.Bias | P.Bias_relu -> Some (random_array rng i.dtype i.n)
    | P.Plain | P.Relu -> None
  in
  let c_in = if beta <> 0.0 then Some (random_array rng i.dtype (i.m * i.n)) else None in
  let got = G.run ~alpha ~beta ~epilogue ?bias ?c_in i c ~a ~b in
  let want = G.reference ~alpha ~beta ~epilogue ?bias ?c_in i ~a ~b in
  let tol = tolerance i.dtype i.k in
  Array.iteri
    (fun idx w ->
      if Float.abs (got.(idx) -. w) > tol *. (1.0 +. Float.abs w) then
        Alcotest.failf "epilogue: C[%d] = %.9g, want %.9g" idx got.(idx) w)
    want

let test_epilogue_relu () =
  check_epilogue ~epilogue:P.Relu (P.input 20 18 24) (cfg ());
  (* relu must actually clamp: verify some negatives existed. *)
  let i = P.input 16 16 16 in
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let plain = G.run i (cfg ()) ~a ~b in
  let relu = G.run ~epilogue:P.Relu i (cfg ()) ~a ~b in
  Alcotest.(check bool) "clamps negatives" true
    (Array.exists (fun v -> v < 0.0) plain
    && Array.for_all (fun v -> v >= 0.0) relu)

let test_epilogue_bias () =
  check_epilogue ~epilogue:P.Bias (P.input 17 23 29) (cfg ())

let test_epilogue_bias_relu () =
  check_epilogue ~epilogue:P.Bias_relu (P.input 20 18 24) (cfg ())

let test_epilogue_with_alpha_beta () =
  check_epilogue ~epilogue:P.Bias_relu ~alpha:0.5 ~beta:(-0.25) (P.input 20 18 24)
    (cfg ())

let test_epilogue_with_kl () =
  check_epilogue ~epilogue:P.Bias_relu (P.input 24 24 40) (cfg ~kl:2 ())

(* --- strided-batched GEMM ------------------------------------------------- *)

let check_batched ~batch (i : P.input) (c : P.config) =
  let a = random_array rng i.dtype (batch * i.m * i.k) in
  let b = random_array rng i.dtype (batch * i.k * i.n) in
  let got = G.run_batched ~batch i c ~a ~b in
  let tol = tolerance i.dtype i.k in
  for bi = 0 to batch - 1 do
    let want =
      G.reference i
        ~a:(Array.sub a (bi * i.m * i.k) (i.m * i.k))
        ~b:(Array.sub b (bi * i.k * i.n) (i.k * i.n))
    in
    Array.iteri
      (fun idx w ->
        let g = got.((bi * i.m * i.n) + idx) in
        if Float.abs (g -. w) > tol *. (1.0 +. Float.abs w) then
          Alcotest.failf "batched: batch %d C[%d] = %.9g, want %.9g" bi idx g w)
      want
  done

let test_batched_basic () = check_batched ~batch:3 (P.input 20 18 24) (cfg ())
let test_batched_ragged () = check_batched ~batch:4 (P.input 17 23 29) (cfg ())
let test_batched_transposed () =
  check_batched ~batch:2 (P.input ~a_trans:true ~b_trans:true 20 18 25) (cfg ())
let test_batched_with_splits () =
  check_batched ~batch:3 (P.input 24 24 64) (cfg ~ks:2 ~kl:2 ~kg:2 ~u:8 ())
let test_batched_one_is_plain () =
  (* batch = 1 must agree with the unbatched path exactly. *)
  let i = P.input 20 18 24 in
  let c = cfg () in
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  Alcotest.(check bool) "same result" true
    (G.run_batched ~batch:1 i c ~a ~b = G.run i c ~a ~b)

(* Property test: random legal configurations on random small shapes. *)
let random_legal_config rng (i : P.input) =
  let pick values = Util.Rng.choice rng values in
  let rec go tries =
    if tries = 0 then None
    else
      let c =
        { P.ms = pick P.values_ms; ns = pick P.values_ns; ks = pick P.values_ks;
          ml = pick [| 8; 16; 32 |]; nl = pick [| 8; 16; 32 |];
          u = pick [| 4; 8; 16 |]; kl = pick [| 1; 2; 4 |];
          kg = pick [| 1; 2; 4 |]; vec = pick P.values_vec; db = pick P.values_db }
      in
      if P.structurally_legal i c && P.threads_per_block c <= 256 then Some c
      else go (tries - 1)
  in
  go 200

let test_random_configs () =
  let checked = ref 0 in
  for _ = 1 to 25 do
    let m = Util.Rng.int_in rng 1 48 in
    let n = Util.Rng.int_in rng 1 48 in
    let k = Util.Rng.int_in rng 1 64 in
    let a_trans = Util.Rng.bool rng and b_trans = Util.Rng.bool rng in
    let i = P.input ~a_trans ~b_trans m n k in
    match random_legal_config rng i with
    | None -> ()
    | Some c ->
      incr checked;
      check_gemm i c
  done;
  if !checked < 10 then Alcotest.failf "only %d random configs checked" !checked

(* The dynamic FMA count must match the cost model's issued_fmas exactly
   (scalar kernels): this ties the timing model to the code that runs. *)
let test_fma_count_matches_cost () =
  let i = P.input 20 24 37 in
  let c = cfg ~ms:2 ~ns:2 ~ml:16 ~nl:16 ~u:8 () in
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let _, counters = G.run_counted i c ~a ~b () in
  let cost = P.cost i c in
  Alcotest.(check int)
    "issued fmas" (int_of_float cost.issued_fmas) counters.fma

let test_shared_store_count_matches_cost () =
  (* Staging stores only (no transposes, kl = 1): ml*u + nl*u per block
     per iteration. *)
  let i = P.input 32 32 32 in
  let c = cfg ~ms:2 ~ns:2 ~ml:16 ~nl:16 ~u:8 () in
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let _, counters = G.run_counted i c ~a ~b () in
  let gm, gn, gk = G.grid i c in
  let iters = (32 + c.u - 1) / c.u in
  let expect = gm * gn * gk * iters * ((c.ml * c.u) + (c.nl * c.u)) in
  Alcotest.(check int) "staging stores" expect counters.st_shared

let test_atomics_iff_kg () =
  let i = P.input 16 16 64 in
  let a = random_array rng i.dtype (i.m * i.k) in
  let b = random_array rng i.dtype (i.k * i.n) in
  let _, c1 = G.run_counted i (cfg ~kg:1 ()) ~a ~b () in
  let _, c2 = G.run_counted i (cfg ~kg:2 ()) ~a ~b () in
  Alcotest.(check int) "no atomics when kg=1" 0 c1.atom;
  Alcotest.(check bool) "atomics when kg=2" true (c2.atom > 0);
  Alcotest.(check int) "kg=2 atom count" (16 * 16 * 2) c2.atom

let test_program_validates () =
  let i = P.input ~a_trans:true 33 45 67 in
  let c = cfg ~ms:4 ~ns:2 ~ml:16 ~nl:16 ~u:8 ~kl:2 ~kg:2 ~ks:2 () in
  let p = G.generate i c in
  match Ptx.Program.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_disasm_nonempty () =
  let p = G.generate (P.input 16 16 16) (cfg ()) in
  let text = Ptx.Disasm.program p in
  Alcotest.(check bool) "has fma" true (contains_substring text "fma.rn.f32");
  Alcotest.(check bool) "has predication" true (contains_substring text "@%p")

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "gemm"
    [ ("exact", [ quick "square 32" test_square_exact;
                  quick "tiny 1x1x1" test_tiny;
                  quick "row vector" test_row_vector;
                  quick "col vector" test_col_vector ]);
      ("ragged", [ quick "ragged m" test_ragged_m;
                   quick "ragged n" test_ragged_n;
                   quick "ragged k" test_ragged_k;
                   quick "ragged all" test_ragged_all;
                   quick "k < u" test_k_smaller_than_u;
                   quick "kg with ragged k" test_kg_with_ragged_k ]);
      ("layouts", [ quick "A transposed" test_a_trans;
                    quick "B transposed" test_b_trans;
                    quick "both transposed" test_ab_trans ]);
      ("splits", [ quick "ks=2" test_ks_split;
                   quick "ks=4" test_ks4_split;
                   quick "kl=2" test_kl_split;
                   quick "kl=4" test_kl4_split;
                   quick "kg=2" test_kg_split;
                   quick "kg=4" test_kg4_split;
                   quick "ks*kl*kg" test_all_splits ]);
      ("dtypes", [ quick "f64" test_f64; quick "f16" test_f16 ]);
      ("bounds modes", [ quick "branch" test_bounds_branch;
                         quick "unchecked" test_bounds_unchecked ]);
      ("tiles", [ quick "32x32 tiles" test_big_tiles;
                  quick "asymmetric" test_asymmetric_tiles ]);
      ("epilogues", [ quick "relu" test_epilogue_relu;
                      quick "bias" test_epilogue_bias;
                      quick "bias+relu" test_epilogue_bias_relu;
                      quick "with alpha/beta" test_epilogue_with_alpha_beta;
                      quick "with block split" test_epilogue_with_kl ]);
      ("batched", [ quick "basic" test_batched_basic;
                    quick "ragged" test_batched_ragged;
                    quick "transposed" test_batched_transposed;
                    quick "with splits" test_batched_with_splits;
                    quick "batch=1 degenerates" test_batched_one_is_plain ]);
      ("alpha/beta", [ quick "alpha scaling" test_alpha_scaling;
                       quick "beta accumulate" test_beta_accumulate;
                       quick "general" test_alpha_beta_general;
                       quick "with grid split" test_alpha_beta_with_kg;
                       quick "with block split" test_alpha_beta_with_kl ]);
      ("random", [ Alcotest.test_case "25 random configs" `Slow test_random_configs ]);
      ("cost cross-check", [ quick "fma count" test_fma_count_matches_cost;
                             quick "staging stores" test_shared_store_count_matches_cost;
                             quick "atomics iff kg>1" test_atomics_iff_kg ]);
      ("structure", [ quick "program validates" test_program_validates;
                      quick "disasm" test_disasm_nonempty ]) ]
