(* Tests for the einsum front-end: parsing, classification, lowering to
   GEMM (with layout fast paths), batching, broadcasting, and output
   permutation — all validated against the naive reference evaluator and,
   for plain matrix products, against the GEMM oracle. *)

module E = Frontend.Einsum
let quick name f = Alcotest.test_case name `Quick f
let rng = Util.Rng.create 97

let arr n = Array.init n (fun _ -> Util.Rng.uniform rng *. 2.0 -. 1.0)

let check_contract ?config text sizes =
  let spec = E.parse text in
  let extent idx = List.fold_left (fun acc c -> acc * List.assoc c sizes) 1 idx in
  let a = arr (extent spec.a_indices) in
  let b = arr (extent spec.b_indices) in
  let got = E.contract ?config spec sizes ~a ~b in
  let want = E.reference spec sizes ~a ~b in
  Alcotest.(check int) (text ^ " size") (Array.length want) (Array.length got);
  Array.iteri
    (fun i w ->
      if Float.abs (got.(i) -. w) > 1e-9 *. (1.0 +. Float.abs w) then
        Alcotest.failf "%s: out[%d] = %g, want %g" text i got.(i) w)
    want

(* --- parsing ------------------------------------------------------------ *)

let test_parse_gemm () =
  let s = E.parse "mk,kn->mn" in
  Alcotest.(check string) "roundtrip" "mk,kn->mn" (E.to_string s);
  Alcotest.(check bool) "k contracted" true (List.assoc 'k' s.roles = E.K);
  Alcotest.(check bool) "m is M" true (List.assoc 'm' s.roles = E.M);
  Alcotest.(check bool) "n is N" true (List.assoc 'n' s.roles = E.N)

let test_parse_batch () =
  let s = E.parse "bmk,bkn->bmn" in
  Alcotest.(check bool) "b is batch" true (List.assoc 'b' s.roles = E.Batch)

let expect_parse_error text =
  match E.parse text with
  | exception E.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Parse_error" text

let test_parse_errors () =
  List.iter expect_parse_error
    [ "mk,kn"; "mk->mn"; "mk,kn,xy->mn"; "mm,mn->mn"; "mk,kn->mq";
      "mkq,kn->mn"; "m2,2n->mn"; ",kn->n" ]

let test_gemm_shape () =
  let s = E.parse "bmk,bkn->bmn" in
  let shape = E.gemm_shape s [ ('b', 3); ('m', 4); ('n', 5); ('k', 6) ] in
  Alcotest.(check (list int)) "b,m,n,k" [ 3; 4; 5; 6 ]
    (let a, b, c, d = shape in [ a; b; c; d ])

(* --- evaluation ----------------------------------------------------------- *)

let sizes = [ ('m', 18); ('n', 13); ('k', 21); ('b', 3); ('i', 7); ('j', 9) ]

let test_plain_gemm () = check_contract "mk,kn->mn" sizes

let test_matches_gemm_oracle () =
  let spec = E.parse "mk,kn->mn" in
  let m = 18 and n = 13 and k = 21 in
  let a = arr (m * k) and b = arr (k * n) in
  let got = E.contract spec sizes ~a ~b in
  let want = Codegen.Gemm.reference (Codegen.Gemm_params.input m n k) ~a ~b in
  Array.iteri
    (fun i w ->
      if Float.abs (got.(i) -. w) > 1e-9 then Alcotest.failf "oracle mismatch at %d" i)
    want

let test_a_transposed () = check_contract "km,kn->mn" sizes
let test_b_transposed () = check_contract "mk,nk->mn" sizes
let test_both_transposed () = check_contract "km,nk->mn" sizes
let test_output_transposed () = check_contract "mk,kn->nm" sizes
let test_batched () = check_contract "bmk,bkn->bmn" sizes
let test_batched_transposed () = check_contract "bkm,bkn->bmn" sizes
let test_broadcast_b () = check_contract "bmk,kn->bmn" sizes
let test_broadcast_a () = check_contract "mk,bkn->bmn" sizes
let test_multi_contraction () = check_contract "mij,ijn->mn" sizes
let test_multi_m () = check_contract "imk,kn->imn" sizes
let test_inner_product () =
  check_contract "ik,ik->i" [ ('i', 5); ('k', 40) ]
let test_outer_ish () = check_contract "mk,kn->mn" [ ('m', 1); ('n', 30); ('k', 2) ]

let test_with_explicit_config () =
  let config =
    { Codegen.Gemm_params.ms = 2; ns = 2; ks = 2; ml = 16; nl = 16; u = 8;
      kl = 1; kg = 2; vec = 1; db = 1 }
  in
  check_contract ~config "km,kn->mn" [ ('m', 20); ('n', 20); ('k', 64) ]

let test_bad_sizes_rejected () =
  let spec = E.parse "mk,kn->mn" in
  match E.contract spec [ ('m', 4); ('n', 4); ('k', 4) ] ~a:(arr 3) ~b:(arr 16) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for wrong operand size"

(* qcheck: random shapes for the four layout variants. *)
let prop_layouts =
  QCheck.Test.make ~name:"random shapes, all layouts" ~count:25
    QCheck.(quad (int_range 1 12) (int_range 1 12) (int_range 1 16) (int_range 0 3))
    (fun (m, n, k, layout) ->
      let text =
        match layout with
        | 0 -> "mk,kn->mn"
        | 1 -> "km,kn->mn"
        | 2 -> "mk,nk->mn"
        | _ -> "km,nk->mn"
      in
      let sizes = [ ('m', m); ('n', n); ('k', k) ] in
      let spec = E.parse text in
      let extent idx = List.fold_left (fun acc c -> acc * List.assoc c sizes) 1 idx in
      let a = arr (extent spec.a_indices) in
      let b = arr (extent spec.b_indices) in
      let got = E.contract spec sizes ~a ~b in
      let want = E.reference spec sizes ~a ~b in
      Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs y))
        got want)

let () =
  Alcotest.run "frontend"
    [ ("parse",
       [ quick "gemm spec" test_parse_gemm;
         quick "batch spec" test_parse_batch;
         quick "errors" test_parse_errors;
         quick "gemm shape" test_gemm_shape ]);
      ("contract",
       [ quick "plain gemm" test_plain_gemm;
         quick "matches gemm oracle" test_matches_gemm_oracle;
         quick "A transposed" test_a_transposed;
         quick "B transposed" test_b_transposed;
         quick "both transposed" test_both_transposed;
         quick "output transposed" test_output_transposed;
         quick "batched" test_batched;
         quick "batched + transposed" test_batched_transposed;
         quick "broadcast B" test_broadcast_b;
         quick "broadcast A" test_broadcast_a;
         quick "multi-index contraction" test_multi_contraction;
         quick "multi-index M group" test_multi_m;
         quick "row-wise inner products" test_inner_product;
         quick "degenerate m=1" test_outer_ish;
         quick "explicit config" test_with_explicit_config;
         quick "wrong sizes rejected" test_bad_sizes_rejected;
         QCheck_alcotest.to_alcotest prop_layouts ]) ]
