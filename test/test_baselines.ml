(* Tests for the cuBLAS/cuDNN baselines: the structural properties the
   paper attributes to the vendor libraries must hold of our clones, and
   selection must always produce runnable kernels on the evaluation
   suites. *)

let quick name f = Alcotest.test_case name `Quick f

module GP = Codegen.Gemm_params
let rng () = Util.Rng.create 31415

let devices = [ Gpu.Device.gtx980ti; Gpu.Device.p100 ]
let dtypes : Ptx.Types.dtype list = [ F16; F32; F64 ]

(* §7.3/§8.1: cuBLAS only tiles 64- or 128-wide along N and never uses
   block-level reduction splitting. *)
let test_cublas_set_structure () =
  List.iter
    (fun device ->
      List.iter
        (fun dtype ->
          List.iter
            (fun (c : GP.config) ->
              Alcotest.(check bool) "NL in {64,128}" true (c.nl = 64 || c.nl = 128);
              Alcotest.(check int) "KL = 1" 1 c.kl)
            (Baselines.Cublas.kernel_set device dtype))
        dtypes)
    devices

let test_cublas_has_split_kernels () =
  let set = Baselines.Cublas.kernel_set Gpu.Device.p100 F32 in
  Alcotest.(check bool) "some KG>1 kernels" true
    (List.exists (fun (c : GP.config) -> c.kg > 1) set)

let test_cublas_fp16x2_limited () =
  (* Only a couple of fp16x2 (vec>=2) kernels exist. *)
  let set = Baselines.Cublas.kernel_set Gpu.Device.p100 F16 in
  let packed = List.filter (fun (c : GP.config) -> c.vec >= 2 && c.kg = 1) set in
  Alcotest.(check bool) "at most 2 packed kernels" true (List.length packed <= 2)

let all_gemm_tasks =
  Workloads.Gemm_suites.fp32_suite ~mk:2560
  @ Workloads.Gemm_suites.mixed_suite ~mk:2560
  @ Workloads.Gemm_suites.fp32_suite ~mk:1760

let test_cublas_heuristic_always_picks () =
  List.iter
    (fun device ->
      List.iter
        (fun (task : Workloads.Gemm_suites.task) ->
          match Baselines.Cublas.heuristic_pick device task.input with
          | None -> Alcotest.failf "no pick for %s %s" task.group task.label
          | Some c ->
            Alcotest.(check bool) "pick is legal" true
              (GP.structurally_legal task.input c
              && Gpu.Executor.legal device (GP.cost task.input c)))
        all_gemm_tasks)
    devices

let test_cublas_best_at_least_heuristic () =
  let r = rng () in
  List.iter
    (fun (task : Workloads.Gemm_suites.task) ->
      let device = Gpu.Device.p100 in
      let h = Baselines.Cublas.heuristic ~noise:0.0 r device task.input in
      let b = Baselines.Cublas.best_kernel ~noise:0.0 r device task.input in
      match (h, b) with
      | Some (_, hm), Some (_, bm) ->
        Alcotest.(check bool) "best >= heuristic" true
          (bm.tflops >= hm.tflops *. 0.999)
      | _ -> Alcotest.fail "both should pick")
    all_gemm_tasks

let test_cublas_ica_heuristic_hole () =
  (* The paper: cuBLAS heuristics fail to apply reduction splitting on the
     256-channel ICA case, losing an order of magnitude vs the best
     kernel. *)
  let r = rng () in
  let device = Gpu.Device.p100 in
  let input = GP.input ~b_trans:true 256 256 60000 in
  let _, hm = Option.get (Baselines.Cublas.heuristic ~noise:0.0 r device input) in
  let _, bm = Option.get (Baselines.Cublas.best_kernel ~noise:0.0 r device input) in
  Alcotest.(check bool) "heuristic much slower than best kernel" true
    (bm.tflops > 2.0 *. hm.tflops)

let test_cublas_square_picks_big_tiles () =
  let device = Gpu.Device.p100 in
  let c =
    Option.get (Baselines.Cublas.heuristic_pick device (GP.input ~b_trans:true 2048 2048 2048))
  in
  Alcotest.(check bool) "128-wide tile for big squares" true (c.ml >= 128 && c.nl >= 64)

(* --- cuDNN ----------------------------------------------------------------- *)

let conv_tasks dtype = Workloads.Conv_suites.suite dtype

let test_cudnn_no_crs_splitting () =
  List.iter
    (fun device ->
      List.iter
        (fun (c : GP.config) ->
          Alcotest.(check int) "no C_L" 1 c.kl;
          Alcotest.(check int) "no C_G" 1 c.kg)
        (Baselines.Cudnn.kernel_set device F32))
    devices

let test_cudnn_heuristic_always_picks () =
  List.iter
    (fun device ->
      List.iter
        (fun dtype ->
          List.iter
            (fun (task : Workloads.Conv_suites.task) ->
              match Baselines.Cudnn.heuristic_pick device task.input with
              | None -> Alcotest.failf "no pick for %s" task.label
              | Some c ->
                Alcotest.(check bool) "pick legal" true
                  (Codegen.Conv_params.structurally_legal task.input c
                  && Gpu.Executor.legal device
                       (Codegen.Conv_params.cost task.input c)))
            (conv_tasks dtype))
        [ Ptx.Types.F32; Ptx.Types.F16 ])
    devices

let test_cudnn_best_at_least_heuristic () =
  let r = rng () in
  List.iter
    (fun (task : Workloads.Conv_suites.task) ->
      let device = Gpu.Device.gtx980ti in
      let h = Baselines.Cudnn.heuristic ~noise:0.0 r device task.input in
      let b = Baselines.Cudnn.best_kernel ~noise:0.0 r device task.input in
      match (h, b) with
      | Some (_, hm), Some (_, bm) ->
        Alcotest.(check bool) "best >= heuristic" true
          (bm.tflops >= hm.tflops *. 0.999)
      | _ -> Alcotest.fail "both should pick")
    (conv_tasks Ptx.Types.F32)

let test_determinism () =
  let device = Gpu.Device.p100 in
  let input = GP.input 2560 32 2560 in
  let pick1 = Baselines.Cublas.heuristic_pick device input in
  let pick2 = Baselines.Cublas.heuristic_pick device input in
  Alcotest.(check bool) "same pick" true (pick1 = pick2)

let () =
  Alcotest.run "baselines"
    [ ("cublas structure",
       [ quick "NL/KL constraints" test_cublas_set_structure;
         quick "split kernels exist" test_cublas_has_split_kernels;
         quick "fp16x2 limited" test_cublas_fp16x2_limited ]);
      ("cublas selection",
       [ quick "always picks legally" test_cublas_heuristic_always_picks;
         quick "best >= heuristic" test_cublas_best_at_least_heuristic;
         quick "ICA heuristic hole" test_cublas_ica_heuristic_hole;
         quick "square -> big tiles" test_cublas_square_picks_big_tiles;
         quick "deterministic" test_determinism ]);
      ("cudnn",
       [ quick "no reduction splitting" test_cudnn_no_crs_splitting;
         quick "always picks legally" test_cudnn_heuristic_always_picks;
         quick "best >= heuristic" test_cudnn_best_at_least_heuristic ]) ]
