(* Tests for liveness analysis and linear-scan register allocation:
   pressure bounds, allocation compactness, semantic preservation under
   the interpreter on full generated GEMM kernels, and agreement with the
   cost model's register estimates. *)

module GP = Codegen.Gemm_params
let quick name f = Alcotest.test_case name `Quick f
let rng = Util.Rng.create 555

let cfg ?(ms = 2) ?(ns = 2) ?(ks = 1) ?(ml = 16) ?(nl = 16) ?(u = 8) ?(kl = 1)
    ?(kg = 1) ?(vec = 1) ?(db = 1) () =
  { GP.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

let gemm_program i c = Codegen.Gemm.generate i c

let test_pressure_below_virtual () =
  let p = gemm_program (GP.input 33 29 41) (cfg ()) in
  let pr = Ptx.Regalloc.pressure p in
  Alcotest.(check bool) "fregs" true (pr.fregs <= p.n_fregs);
  Alcotest.(check bool) "iregs" true (pr.iregs <= p.n_iregs);
  Alcotest.(check bool) "pregs" true (pr.pregs <= p.n_pregs);
  Alcotest.(check bool) "nontrivial program" true (p.n_iregs > 50);
  (* The generator emits fresh registers per unrolled step; a real
     allocator collapses them by an order of magnitude. *)
  Alcotest.(check bool) "massive compaction" true (pr.iregs * 4 < p.n_iregs)

let test_allocate_validates_and_compacts () =
  let p = gemm_program (GP.input 20 24 37) (cfg ~ks:2 ~kl:2 ~kg:2 ~u:8 ()) in
  let q = Ptx.Regalloc.allocate p in
  (match Ptx.Program.validate q with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let pr = Ptx.Regalloc.pressure p in
  Alcotest.(check bool) "alloc >= pressure" true
    (q.n_fregs >= pr.fregs && q.n_iregs >= pr.iregs && q.n_pregs >= pr.pregs);
  Alcotest.(check bool) "alloc far below virtual" true (q.n_iregs * 4 < p.n_iregs)

(* The allocated kernel must compute exactly the same result. *)
let check_equivalence (i : GP.input) c =
  let a = Array.init (i.m * i.k) (fun _ -> Util.Rng.uniform rng -. 0.5) in
  let b = Array.init (i.k * i.n) (fun _ -> Util.Rng.uniform rng -. 0.5) in
  let run program =
    let out = Array.make (i.m * i.n) 0.0 in
    let (_ : Ptx.Interp.counters) =
      Ptx.Interp.run program
        ~grid:(Codegen.Gemm.grid i c)
        ~block:(Codegen.Gemm.block c)
        ~bufs:[ ("A", a); ("B", b); ("C", out) ]
        ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
    in
    out
  in
  let p = gemm_program i c in
  let original = run p in
  let allocated = run (Ptx.Regalloc.allocate p) in
  Array.iteri
    (fun idx v ->
      if v <> original.(idx) then
        Alcotest.failf "allocation changed semantics at %d: %g vs %g" idx v
          original.(idx))
    allocated

let test_equivalence_basic () = check_equivalence (GP.input 33 29 41) (cfg ())

let test_equivalence_splits () =
  check_equivalence (GP.input 24 24 160) (cfg ~ks:2 ~kl:2 ~kg:2 ~u:8 ())

let test_equivalence_transposed () =
  check_equivalence (GP.input ~a_trans:true ~b_trans:true 20 18 25) (cfg ())

let test_equivalence_branch_bounds () =
  let i = GP.input 17 23 29 in
  let c = cfg () in
  let a = Array.init (i.m * i.k) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (i.k * i.n) (fun _ -> Util.Rng.uniform rng) in
  let p = Codegen.Gemm.generate ~bounds:GP.Branch i c in
  let run program =
    let out = Array.make (i.m * i.n) 0.0 in
    let (_ : Ptx.Interp.counters) =
      Ptx.Interp.run program ~grid:(Codegen.Gemm.grid i c)
        ~block:(Codegen.Gemm.block c)
        ~bufs:[ ("A", a); ("B", b); ("C", out) ]
        ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
    in
    out
  in
  Alcotest.(check bool) "divergent kernel preserved" true
    (run p = run (Ptx.Regalloc.allocate p))

(* Accumulators dominate float pressure: for an ms x ns x ks thread tile
   the measured MaxLive must be at least ms*ns*ks (the accumulators are
   live across the whole main loop) and in the same ballpark as the cost
   model's estimate. *)
let test_pressure_tracks_accumulators () =
  List.iter
    (fun (ms, ns, ks) ->
      let c = cfg ~ms ~ns ~ks ~ml:(ms * 8) ~nl:(ns * 8) () in
      let i = GP.input 64 64 64 in
      if GP.structurally_legal i c then begin
        let pr = Ptx.Regalloc.pressure (gemm_program i c) in
        let acc = ms * ns * ks in
        Alcotest.(check bool)
          (Printf.sprintf "%dx%dx%d >= acc" ms ns ks)
          true (pr.fregs >= acc);
        Alcotest.(check bool)
          (Printf.sprintf "%dx%dx%d within estimate ballpark" ms ns ks)
          true
          (pr.fregs + pr.iregs <= 2 * GP.regs_estimate i c + 16)
      end)
    [ (1, 1, 1); (2, 2, 1); (2, 2, 4); (4, 4, 1); (8, 8, 1) ]

let test_live_ranges_cover_accumulators () =
  let i = GP.input 32 32 64 in
  let c = cfg () in
  let p = gemm_program i c in
  let ranges = Ptx.Regalloc.live_ranges p in
  Alcotest.(check bool) "has ranges" true (Array.length ranges > 0);
  (* Some float register (an accumulator) must be live across most of the
     program: from before the main loop to the store epilogue. *)
  let n = Array.length p.body in
  let spans_most =
    Array.exists (fun (_, s, e) -> s < n / 4 && e > (3 * n) / 4) ranges
  in
  Alcotest.(check bool) "accumulator-length interval" true spans_most

let test_idempotent_pressure () =
  (* Allocating twice changes nothing further. *)
  let p = gemm_program (GP.input 24 24 40) (cfg ~kl:2 ()) in
  let q = Ptx.Regalloc.allocate p in
  let r = Ptx.Regalloc.allocate q in
  Alcotest.(check bool) "second allocation is stable" true
    (r.n_fregs <= q.n_fregs && r.n_iregs <= q.n_iregs && r.n_pregs <= q.n_pregs)

let () =
  Alcotest.run "regalloc"
    [ ("pressure",
       [ quick "below virtual counts" test_pressure_below_virtual;
         quick "tracks accumulators" test_pressure_tracks_accumulators;
         quick "live ranges" test_live_ranges_cover_accumulators ]);
      ("allocation",
       [ quick "validates + compacts" test_allocate_validates_and_compacts;
         quick "semantics: basic" test_equivalence_basic;
         quick "semantics: all splits" test_equivalence_splits;
         quick "semantics: transposed" test_equivalence_transposed;
         quick "semantics: divergent branches" test_equivalence_branch_bounds;
         quick "idempotent" test_idempotent_pressure ]) ]
