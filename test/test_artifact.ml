(* Crash-safety of the artifact store: atomic replacement, checksummed
   headers, torn/corrupt/foreign file detection, and the deterministic
   fault injector that drives the recovery tests. *)

module A = Util.Artifact
module F = Util.Faultsim

let with_temp f =
  let path = Filename.temp_file "isaac_artifact" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Every test that arms faults must disarm them, or the shared process
   state leaks into later suites. *)
let with_faults spec f =
  F.configure spec;
  Fun.protect ~finally:(fun () -> F.configure "") f

let raw_contents path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let check_read ~kind ~max_version path =
  match A.read ~path ~kind ~max_version with
  | Ok (v, payload) -> (v, payload)
  | Error e -> Alcotest.fail (A.error_to_string ~path e)

let test_roundtrip () =
  with_temp (fun path ->
      let payload = "line one\nline two\n\x00binary\xffbytes\n" in
      A.write ~path ~kind:"test-kind" ~version:3 payload;
      let v, got = check_read ~kind:"test-kind" ~max_version:5 path in
      Alcotest.(check int) "version" 3 v;
      Alcotest.(check string) "payload" payload got)

let test_empty_payload () =
  with_temp (fun path ->
      A.write ~path ~kind:"test-kind" ~version:1 "";
      let v, got = check_read ~kind:"test-kind" ~max_version:1 path in
      Alcotest.(check int) "version" 1 v;
      Alcotest.(check string) "payload" "" got)

let test_atomic_replace () =
  with_temp (fun path ->
      A.write ~path ~kind:"test-kind" ~version:1 "old generation";
      A.write ~path ~kind:"test-kind" ~version:2 "new generation";
      let v, got = check_read ~kind:"test-kind" ~max_version:2 path in
      Alcotest.(check int) "latest version" 2 v;
      Alcotest.(check string) "latest payload" "new generation" got)

(* The heart of the store: a write that dies mid-flight must leave the
   previous artifact fully readable. *)
let test_crash_leaves_previous_intact () =
  with_temp (fun path ->
      A.write ~path ~kind:"test-kind" ~version:1 "the safe copy";
      with_faults "io_crash:1" (fun () ->
          (match A.write ~path ~kind:"test-kind" ~version:1 "doomed" with
           | exception F.Injected _ -> ()
           | () -> Alcotest.fail "io_crash:1 did not fire"));
      let _, got = check_read ~kind:"test-kind" ~max_version:1 path in
      Alcotest.(check string) "previous version intact" "the safe copy" got;
      (* Cleanup of orphan temp files is the caller's business; they must
         never shadow the real artifact. *)
      Array.iter
        (fun f ->
          if String.starts_with ~prefix:(Filename.basename path ^ ".tmp") f then
            Sys.remove (Filename.concat (Filename.dirname path) f))
        (Sys.readdir (Filename.dirname path)))

let test_crash_on_first_write_leaves_nothing () =
  with_temp (fun path ->
      Sys.remove path;
      with_faults "io_crash:1" (fun () ->
          (match A.write ~path ~kind:"test-kind" ~version:1 "doomed" with
           | exception F.Injected _ -> ()
           | () -> Alcotest.fail "io_crash:1 did not fire"));
      Alcotest.(check bool) "destination never created" false
        (Sys.file_exists path);
      Array.iter
        (fun f ->
          if String.starts_with ~prefix:(Filename.basename path ^ ".tmp") f then
            Sys.remove (Filename.concat (Filename.dirname path) f))
        (Sys.readdir (Filename.dirname path)))

let test_corruption_detected () =
  with_temp (fun path ->
      with_faults "io_corrupt:1" (fun () ->
          A.write ~path ~kind:"test-kind" ~version:1 "payload under attack");
      match A.read ~path ~kind:"test-kind" ~max_version:1 with
      | Error (A.Checksum_mismatch _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "corrupted artifact loaded")

let test_flipped_byte_detected () =
  with_temp (fun path ->
      A.write ~path ~kind:"test-kind" ~version:1 "some honest payload";
      let raw = raw_contents path in
      let b = Bytes.of_string raw in
      let i = Bytes.length b - 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      write_raw path (Bytes.to_string b);
      match A.read ~path ~kind:"test-kind" ~max_version:1 with
      | Error (A.Checksum_mismatch _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "bit flip survived the checksum")

let test_truncation_detected () =
  with_temp (fun path ->
      A.write ~path ~kind:"test-kind" ~version:1 "a payload that will be cut";
      let raw = raw_contents path in
      write_raw path (String.sub raw 0 (String.length raw - 7));
      match A.read ~path ~kind:"test-kind" ~max_version:1 with
      | Error (A.Truncated _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "torn artifact loaded")

let test_kind_mismatch () =
  with_temp (fun path ->
      A.write ~path ~kind:"isaac-profile" ~version:1 "x";
      match A.read ~path ~kind:"isaac-plans" ~max_version:1 with
      | Error (A.Kind_mismatch { expected = "isaac-plans"; found = "isaac-profile" }) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "kind mismatch accepted")

let test_version_newer () =
  with_temp (fun path ->
      A.write ~path ~kind:"test-kind" ~version:9 "from the future";
      match A.read ~path ~kind:"test-kind" ~max_version:2 with
      | Error (A.Version_newer { supported = 2; found = 9 }) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "future schema accepted")

let test_garbage_is_bad_header () =
  with_temp (fun path ->
      write_raw path "just some file\nwith lines\n";
      match A.read ~path ~kind:"test-kind" ~max_version:1 with
      | Error (A.Bad_header _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "headerless file accepted")

let test_missing_file_is_io () =
  with_temp (fun path ->
      Sys.remove path;
      match A.read ~path ~kind:"test-kind" ~max_version:1 with
      | Error (A.Io _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ A.error_to_string ~path e)
      | Ok _ -> Alcotest.fail "missing file read")

let test_checksum_known_values () =
  (* FNV-1a 64 reference vectors. *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (A.checksum "");
  Alcotest.(check string) "a" "af63dc4c8601ec8c" (A.checksum "a");
  Alcotest.(check string) "foobar" "85944171f73967e8" (A.checksum "foobar")

(* Faultsim semantics: rate r fires deterministically every round(1/r)
   calls, counters are per-kind, and "" disarms everything. *)
let test_faultsim_period () =
  with_faults "slow:0.5,always:1,off:0" (fun () ->
      Alcotest.(check (option int)) "period of 0.5" (Some 2) (F.period "slow");
      Alcotest.(check (option int)) "period of 1.0" (Some 1) (F.period "always");
      Alcotest.(check (option int)) "rate 0 disarms" None (F.period "off");
      Alcotest.(check (option int)) "unknown kind" None (F.period "nope");
      let fired = List.init 6 (fun _ -> F.fire "slow") in
      Alcotest.(check (list bool)) "every 2nd call"
        [ false; true; false; true; false; true ] fired;
      Alcotest.(check bool) "rate 1 always fires" true (F.fire "always");
      Alcotest.(check bool) "rate 0 never fires" false (F.fire "off");
      Alcotest.(check bool) "unarmed kind never fires" false (F.fire "nope"));
  Alcotest.(check bool) "disarmed after reset" false (F.active ());
  Alcotest.(check bool) "no residual firing" false (F.fire "always")

let test_faultsim_rejects_malformed () =
  match F.configure "io_crash" with
  | exception Invalid_argument _ -> F.configure ""
  | () ->
    F.configure "";
    Alcotest.fail "malformed spec accepted"

let test_rng_serialization () =
  let rng = Util.Rng.create 12345 in
  (* Advance past the seed so we exercise a mid-stream state. *)
  for _ = 1 to 100 do
    ignore (Util.Rng.float rng 1.0)
  done;
  let state = Util.Rng.serialize rng in
  let clone =
    match Util.Rng.deserialize state with
    | Some r -> r
    | None -> Alcotest.fail "serialized state did not parse"
  in
  for i = 1 to 50 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "draw %d identical" i)
      (Util.Rng.float rng 1.0) (Util.Rng.float clone 1.0)
  done;
  Alcotest.(check (option reject)) "garbage rejected" None
    (Option.map ignore (Util.Rng.deserialize "not a state"))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "artifact"
    [ ("roundtrip",
       [ quick "write/read" test_roundtrip;
         quick "empty payload" test_empty_payload;
         quick "atomic replace" test_atomic_replace ]);
      ("crash safety",
       [ quick "crash keeps previous" test_crash_leaves_previous_intact;
         quick "crash on first write" test_crash_on_first_write_leaves_nothing ]);
      ("corruption",
       [ quick "injected corruption" test_corruption_detected;
         quick "flipped byte" test_flipped_byte_detected;
         quick "truncation" test_truncation_detected;
         quick "kind mismatch" test_kind_mismatch;
         quick "newer version" test_version_newer;
         quick "garbage file" test_garbage_is_bad_header;
         quick "missing file" test_missing_file_is_io;
         quick "fnv64 vectors" test_checksum_known_values ]);
      ("faultsim",
       [ quick "deterministic periods" test_faultsim_period;
         quick "malformed spec" test_faultsim_rejects_malformed ]);
      ("rng state",
       [ quick "serialize/deserialize" test_rng_serialization ]) ]
