(* Tests of the GPU substrate: occupancy calculator, memory model,
   timing model sanity and monotonicity properties, and the executor. *)

module GP = Codegen.Gemm_params

let quick name f = Alcotest.test_case name `Quick f

let d980 = Gpu.Device.gtx980ti
let dp100 = Gpu.Device.p100

(* --- device ------------------------------------------------------------ *)

let test_peaks () =
  let close a b = Float.abs (a -. b) < 0.15 in
  Alcotest.(check bool) "980ti fp32 5.8" true
    (close (Gpu.Device.peak_tflops d980 F32 ~vectorized:false) 5.8);
  Alcotest.(check bool) "p100 fp32 9.7" true
    (close (Gpu.Device.peak_tflops dp100 F32 ~vectorized:false) 9.7);
  Alcotest.(check bool) "p100 fp64 half of fp32" true
    (close (Gpu.Device.peak_tflops dp100 F64 ~vectorized:false) 4.85);
  Alcotest.(check bool) "p100 fp16x2 double" true
    (close (Gpu.Device.peak_tflops dp100 F16 ~vectorized:true) 19.4);
  (* Maxwell has no fp16x2: vectorized or not, fp16 runs at fp32 rate. *)
  Alcotest.(check (float 1e-9))
    "maxwell fp16 = fp32 rate"
    (Gpu.Device.peak_tflops d980 F32 ~vectorized:false)
    (Gpu.Device.peak_tflops d980 F16 ~vectorized:true)

(* --- occupancy ---------------------------------------------------------- *)

let usage ?(regs = 32) ?(shared = 0) ?(threads = 256) () =
  { Gpu.Occupancy.regs_per_thread = regs; shared_bytes = shared;
    threads_per_block = threads }

let test_occupancy_thread_limited () =
  let r = Gpu.Occupancy.calc d980 (usage ~threads:1024 ~regs:16 ()) in
  Alcotest.(check int) "2 blocks of 1024" 2 r.blocks_per_sm;
  Alcotest.(check (float 1e-9)) "full occupancy" 1.0 r.occupancy

let test_occupancy_register_limited () =
  (* 128 regs x 256 threads = 32768 regs/block; 65536/32768 = 2 blocks. *)
  let r = Gpu.Occupancy.calc d980 (usage ~regs:128 ~threads:256 ()) in
  Alcotest.(check int) "2 blocks" 2 r.blocks_per_sm;
  Alcotest.(check bool) "register limited" true (r.limiter = Gpu.Occupancy.By_registers)

let test_occupancy_shared_limited () =
  let r = Gpu.Occupancy.calc d980 (usage ~shared:40960 ~threads:128 ()) in
  Alcotest.(check int) "96KB/40KB = 2" 2 r.blocks_per_sm;
  Alcotest.(check bool) "shared limited" true (r.limiter = Gpu.Occupancy.By_shared)

let test_occupancy_illegal () =
  Alcotest.(check bool) "too many threads" false
    (Gpu.Occupancy.legal d980 (usage ~threads:2048 ()));
  Alcotest.(check bool) "too many regs" false
    (Gpu.Occupancy.legal d980 (usage ~regs:300 ()));
  Alcotest.(check bool) "too much shared" false
    (Gpu.Occupancy.legal d980 (usage ~shared:(64 * 1024) ()));
  Alcotest.(check bool) "non-warp-multiple" false
    (Gpu.Occupancy.legal d980 (usage ~threads:100 ()));
  let r = Gpu.Occupancy.calc d980 (usage ~threads:2048 ()) in
  Alcotest.(check int) "calc yields 0 blocks" 0 r.blocks_per_sm

let prop_occupancy_monotone_regs =
  QCheck.Test.make ~name:"more registers never increases occupancy"
    QCheck.(pair (int_range 16 200) (int_range 16 200))
    (fun (r1, r2) ->
      let lo = min r1 r2 and hi = max r1 r2 in
      let occ r = (Gpu.Occupancy.calc d980 (usage ~regs:r ())).Gpu.Occupancy.blocks_per_sm in
      occ hi <= occ lo)

let prop_occupancy_monotone_shared =
  QCheck.Test.make ~name:"more shared memory never increases occupancy"
    QCheck.(pair (int_range 0 49152) (int_range 0 49152))
    (fun (s1, s2) ->
      let lo = min s1 s2 and hi = max s1 s2 in
      let occ s = (Gpu.Occupancy.calc d980 (usage ~shared:s ())).Gpu.Occupancy.blocks_per_sm in
      occ hi <= occ lo)

(* --- memory model -------------------------------------------------------- *)

let test_l2_hits_bounded () =
  let r =
    Gpu.Memory_model.l2_hits d980 ~concurrent_blocks:100 ~grid_m:32 ~grid_n:32
      ~tile_m:64 ~tile_n:64 ~u_depth:8 ~elem_bytes:4
  in
  Alcotest.(check bool) "hit_a in [0,1]" true (r.hit_a >= 0.0 && r.hit_a <= 1.0);
  Alcotest.(check bool) "hit_b in [0,1]" true (r.hit_b >= 0.0 && r.hit_b <= 1.0)

let test_l2_more_concurrency_more_sharing () =
  let hits c =
    (Gpu.Memory_model.l2_hits d980 ~concurrent_blocks:c ~grid_m:32 ~grid_n:32
       ~tile_m:32 ~tile_n:32 ~u_depth:8 ~elem_bytes:4).hit_b
  in
  Alcotest.(check bool) "1 block shares nothing" true (hits 1 <= 0.01);
  Alcotest.(check bool) "more blocks share more" true (hits 20 > hits 1)

let test_latency_bw_scaling () =
  let bw w = Gpu.Memory_model.latency_limited_bw_gbs d980 ~warps_per_sm:w ~mlp:4.0 in
  Alcotest.(check bool) "monotone in warps" true (bw 32 > bw 4);
  Alcotest.(check (float 1e-6)) "linear" (2.0 *. bw 8) (bw 16)

(* --- timing model --------------------------------------------------------- *)

let cost i c = GP.cost i c

let cfg ?(ms = 8) ?(ns = 8) ?(ks = 1) ?(ml = 64) ?(nl = 64) ?(u = 8) ?(kl = 1)
    ?(kg = 1) ?(vec = 4) ?(db = 2) () =
  { GP.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

let linpack n = GP.input ~b_trans:true n n n

let test_predict_below_peak () =
  List.iter
    (fun dev ->
      match Gpu.Perf_model.predict dev (cost (linpack 2048) (cfg ())) with
      | None -> Alcotest.fail "should be legal"
      | Some r ->
        let peak = Gpu.Device.peak_tflops dev F32 ~vectorized:false in
        Alcotest.(check bool) "below peak" true (r.tflops <= peak);
        Alcotest.(check bool) "above 50% of peak" true (r.tflops >= 0.5 *. peak);
        Alcotest.(check bool) "occupancy in (0,1]" true
          (r.occupancy > 0.0 && r.occupancy <= 1.0))
    [ d980; dp100 ]

let test_predict_illegal_none () =
  (* 128x128 fp64 tiles with huge U exceed shared memory. *)
  let c = cfg ~ml:128 ~nl:128 ~u:32 ~db:2 () in
  let i = GP.input ~dtype:F64 512 512 512 in
  if GP.structurally_legal i c then
    Alcotest.(check bool) "illegal on device" true
      (Gpu.Perf_model.predict d980 (cost i c) = None)

let test_more_work_more_time () =
  let t n =
    match Gpu.Perf_model.predict d980 (cost (linpack n) (cfg ())) with
    | Some r -> r.seconds
    | None -> Alcotest.fail "legal"
  in
  Alcotest.(check bool) "512 < 1024 < 2048" true (t 512 < t 1024 && t 1024 < t 2048)

let test_fp64_slower_on_maxwell () =
  let t dtype =
    match
      Gpu.Perf_model.predict d980 (cost (GP.input ~dtype ~b_trans:true 1024 1024 1024) (cfg ()))
    with
    | Some r -> r.seconds
    | None -> Alcotest.fail "legal"
  in
  Alcotest.(check bool) "fp64 >= 10x slower (1/32 rate)" true (t F64 > 10.0 *. t F32)

let test_fp16x2_faster_on_pascal () =
  let t dev dtype =
    match
      Gpu.Perf_model.predict dev (cost (GP.input ~dtype ~b_trans:true 2048 2048 2048) (cfg ()))
    with
    | Some r -> r.seconds
    | None -> Alcotest.fail "legal"
  in
  Alcotest.(check bool) "p100 fp16 ~2x faster than fp32" true
    (t dp100 F16 < 0.7 *. t dp100 F32);
  Alcotest.(check bool) "maxwell fp16 no arithmetic speedup" true
    (t d980 F16 > 0.8 *. t d980 F32)

let test_skinny_prefers_narrow_tiles () =
  (* For N=16, a 64-wide tile wastes 4x the math; the model must prefer a
     16-wide tile (this is the core DeepBench mechanism). *)
  let i = GP.input 2560 16 2560 in
  let t c =
    match Gpu.Perf_model.predict dp100 (cost i c) with
    | Some r -> r.seconds
    | None -> infinity
  in
  let wide = cfg ~ml:128 ~nl:64 ~ms:8 ~ns:4 ~vec:2 () in
  let narrow = cfg ~ml:64 ~nl:16 ~ms:4 ~ns:2 ~u:16 ~vec:2 ~kg:4 () in
  Alcotest.(check bool) "narrow+split beats wide" true (t narrow < t wide)

let test_deep_k_needs_split () =
  let i = GP.input ~b_trans:true 32 32 60000 in
  let t c =
    match Gpu.Perf_model.predict d980 (cost i c) with
    | Some r -> r.seconds
    | None -> infinity
  in
  let unsplit = cfg ~ml:32 ~nl:32 ~ms:4 ~ns:4 ~vec:2 () in
  let split = cfg ~ml:32 ~nl:32 ~ms:4 ~ns:4 ~vec:2 ~kg:16 () in
  Alcotest.(check bool) "kg=16 much faster on deep K" true (t split < 0.5 *. t unsplit)

let test_wave_quantization () =
  (* A grid of exactly one block per SM wave vs one block more: the extra
     block forces a second wave on one SM. *)
  let i1 = GP.input ~b_trans:true (64 * 22) 64 512 in   (* 22 blocks *)
  let i2 = GP.input ~b_trans:true (64 * 23) 64 512 in   (* 23 blocks *)
  (* 1024-thread, single-buffered blocks: exactly one block fits per SM
     in both launches and arithmetic dominates, so only the wave count
     differs between the two. *)
  let c = cfg ~ml:64 ~nl:64 ~ms:2 ~ns:2 ~u:16 ~vec:1 ~db:1 () in
  let t i =
    match Gpu.Perf_model.predict d980 (cost i c) with
    | Some r -> r.seconds
    | None -> Alcotest.fail "legal"
  in
  let ratio = t i2 /. t i1 in
  Alcotest.(check bool) "one extra block costs far more than 1/22 of time" true
    (ratio > 1.2)

(* --- executor -------------------------------------------------------------- *)

let test_executor_noise_deterministic () =
  let rng1 = Util.Rng.create 4 and rng2 = Util.Rng.create 4 in
  let c = cost (linpack 512) (cfg ()) in
  let m1 = Option.get (Gpu.Executor.measure rng1 d980 c) in
  let m2 = Option.get (Gpu.Executor.measure rng2 d980 c) in
  Alcotest.(check (float 0.0)) "same seed same measurement" m1.tflops m2.tflops

let test_executor_noise_spread () =
  let rng = Util.Rng.create 4 in
  let c = cost (linpack 512) (cfg ()) in
  let samples =
    Array.init 200 (fun _ -> (Option.get (Gpu.Executor.measure rng d980 c)).tflops)
  in
  let cv = Util.Stats.stddev samples /. Util.Stats.mean samples in
  Alcotest.(check bool) "noise ~3%" true (cv > 0.01 && cv < 0.06)

let test_executor_best_of_reduces_noise () =
  let rng = Util.Rng.create 4 in
  let c = cost (linpack 512) (cfg ()) in
  let noiseless = (Option.get (Gpu.Perf_model.predict d980 c)).seconds in
  let best =
    Array.init 50 (fun _ ->
        (Option.get (Gpu.Executor.measure_best_of ~reps:5 rng d980 c)).seconds)
  in
  (* Best-of-5 is biased fast: mean of best-of should be below noiseless. *)
  Alcotest.(check bool) "best-of biased fast" true (Util.Stats.mean best < noiseless)

let test_executor_illegal () =
  let rng = Util.Rng.create 4 in
  let c = cost (GP.input ~dtype:F64 512 512 512) (cfg ~ml:128 ~nl:128 ~u:32 ()) in
  Alcotest.(check bool) "illegal returns None" true
    (Gpu.Executor.measure rng d980 c = None)

(* --- golden regression pins --------------------------------------------
   The analytical model was calibrated against the paper's relative
   results; these pins catch accidental drift. A deliberate recalibration
   should update the constants (and re-run the bench shape checks). *)

let golden =
  [ ("maxwell linpack 2048", d980, linpack 2048, cfg (), 5.137);
    ("pascal linpack 2048", dp100, linpack 2048, cfg (), 8.499);
    ("pascal deepbench n16",
     dp100, GP.input 2560 16 2560,
     cfg ~ms:2 ~ns:4 ~ml:64 ~nl:16 ~u:16 ~kg:4 ~vec:2 (), 4.949);
    ("maxwell ica 32",
     d980, GP.input ~b_trans:true 32 32 60000,
     cfg ~ms:2 ~ns:4 ~ml:32 ~nl:32 ~u:16 ~kl:4 ~kg:32 ~vec:1 (), 0.951) ]

let test_golden_pins () =
  List.iter
    (fun (name, dev, input, c, expect) ->
      match Gpu.Perf_model.predict dev (cost input c) with
      | None -> Alcotest.failf "%s: became illegal" name
      | Some r ->
        let rel = Float.abs (r.tflops -. expect) /. expect in
        if rel > 0.10 then
          Alcotest.failf "%s drifted: %.3f TFLOPS, pinned %.3f (%.0f%% off)" name
            r.tflops expect (100.0 *. rel))
    golden


let () =
  Alcotest.run "gpu"
    [ ("device", [ quick "peak tflops" test_peaks ]);
      ("occupancy",
       [ quick "thread limited" test_occupancy_thread_limited;
         quick "register limited" test_occupancy_register_limited;
         quick "shared limited" test_occupancy_shared_limited;
         quick "illegal kernels" test_occupancy_illegal;
         QCheck_alcotest.to_alcotest prop_occupancy_monotone_regs;
         QCheck_alcotest.to_alcotest prop_occupancy_monotone_shared ]);
      ("memory model",
       [ quick "hit rates bounded" test_l2_hits_bounded;
         quick "concurrency increases sharing" test_l2_more_concurrency_more_sharing;
         quick "latency bandwidth scaling" test_latency_bw_scaling ]);
      ("timing model",
       [ quick "below peak, above half" test_predict_below_peak;
         quick "illegal -> None" test_predict_illegal_none;
         quick "monotone in work" test_more_work_more_time;
         quick "fp64 penalty on Maxwell" test_fp64_slower_on_maxwell;
         quick "fp16x2 on Pascal only" test_fp16x2_faster_on_pascal;
         quick "skinny N prefers narrow tiles" test_skinny_prefers_narrow_tiles;
         quick "deep K needs splitting" test_deep_k_needs_split;
         quick "wave quantization" test_wave_quantization ]);
      ("executor",
       [ quick "deterministic noise" test_executor_noise_deterministic;
         quick "noise spread ~3%" test_executor_noise_spread;
         quick "best-of bias" test_executor_best_of_reduces_noise;
         quick "illegal -> None" test_executor_illegal ]);
      ("golden", [ quick "calibration pins" test_golden_pins ]) ]

