(* Property tests on the kernel cost model: invariants that must hold for
   every legal (input, config) pair, checked over random draws. These
   guard the contract between the code generator and the timing model. *)

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let rng = Util.Rng.create 424242

let random_legal ~input_gen =
  let rec go tries =
    if tries = 0 then None
    else begin
      let input = input_gen rng in
      let cfg_array = Tuner.Config_space.(random rng gemm) in
      let cfg = GP.config_of_array cfg_array in
      if GP.structurally_legal input cfg then Some (input, cfg) else go (tries - 1)
    end
  in
  go 500

let gen_pairs n =
  let out = ref [] in
  while List.length !out < n do
    match random_legal ~input_gen:(fun rng -> Tuner.Dataset.random_gemm_input rng) with
    | Some p -> out := p :: !out
    | None -> ()
  done;
  !out

let pairs = lazy (gen_pairs 300)

let check_all name f =
  List.iter
    (fun (input, cfg) ->
      let cost = GP.cost input cfg in
      if not (f input cfg cost) then
        Alcotest.failf "%s violated for %s %s" name (GP.describe_name input cfg)
          (GP.describe cfg))
    (Lazy.force pairs)

let quick name f = Alcotest.test_case name `Quick f

let test_nonnegative () =
  check_all "non-negative fields" (fun _ _ c ->
      c.useful_flops > 0.0 && c.issued_fmas > 0.0 && c.load_a_bytes > 0.0
      && c.load_b_bytes > 0.0 && c.store_bytes >= 0.0 && c.atom_ops >= 0.0
      && c.shared_traffic_bytes > 0.0 && c.ilp >= 0.5 && c.mlp >= 1.0
      && c.barriers_per_block > 0.0 && c.k_iters >= 1.0)

let test_padding_waste () =
  (* Issued work covers at least the useful work (padding only adds). *)
  check_all "issued >= useful" (fun _ _ c ->
      c.issued_fmas *. c.fma_flops >= c.useful_flops *. 0.999)

let test_compulsory_traffic () =
  (* Every element of A and B is loaded at least once. *)
  check_all "loads >= compulsory" (fun i _ c ->
      let b = float_of_int (Ptx.Types.dtype_bytes i.dtype) in
      c.load_a_bytes >= float_of_int i.m *. float_of_int i.k *. b *. 0.999
      && c.load_b_bytes >= float_of_int i.k *. float_of_int i.n *. b *. 0.999)

let test_atomics_iff_split () =
  check_all "atomics iff kg>1" (fun _ cfg c ->
      if cfg.kg > 1 then c.atom_ops > 0.0 && c.store_bytes = 0.0
      else c.atom_ops = 0.0 && c.store_bytes > 0.0)

let test_threads_consistent () =
  check_all "threads match parameterization" (fun _ cfg c ->
      c.threads_per_block = GP.threads_per_block cfg)

let test_coalescing_bounds () =
  check_all "coalescing in (0,1]" (fun _ _ c ->
      c.coalescing > 0.0 && c.coalescing <= 1.0)

let test_grid_covers_problem () =
  check_all "grid covers problem" (fun i cfg c ->
      c.grid_m * cfg.ml >= i.m && c.grid_n * cfg.nl >= i.n
      && (c.grid_m - 1) * cfg.ml < i.m && (c.grid_n - 1) * cfg.nl < i.n)

let test_bigger_problem_more_work () =
  (* Doubling K doubles issued FMAs when K stays U-aligned. *)
  let input = GP.input 128 128 512 in
  let cfg = { GP.ms = 4; ns = 8; ks = 1; ml = 32; nl = 64; u = 8; kl = 1; kg = 1;
              vec = 2; db = 2 } in
  let c1 = GP.cost input cfg in
  let c2 = GP.cost { input with k = 1024 } cfg in
  Alcotest.(check (float 1e-6)) "2x fmas" (2.0 *. c1.issued_fmas) c2.issued_fmas

let test_fp16_packs () =
  let input = GP.input ~dtype:F16 256 256 256 in
  let cfg = { GP.ms = 4; ns = 8; ks = 1; ml = 32; nl = 64; u = 8; kl = 1; kg = 1;
              vec = 2; db = 2 } in
  let half = GP.cost input cfg in
  let single = GP.cost { input with dtype = F32 } cfg in
  Alcotest.(check bool) "packed instruction count halves" true
    (Float.abs ((2.0 *. half.issued_fmas) -. single.issued_fmas) < 1.0);
  Alcotest.(check (float 1e-9)) "flops per packed instr" 4.0 half.fma_flops

let test_conv_cost_matches_gemm_view () =
  (* Conv cost inherits the implicit-GEMM work accounting. *)
  let i = CP.input ~n:4 ~c:16 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 () in
  let cfg = { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
              vec = 1; db = 1 } in
  if CP.structurally_legal i cfg then begin
    let conv = CP.cost i cfg in
    let gemm = GP.cost (CP.gemm_input i) cfg in
    Alcotest.(check (float 1.0)) "same useful flops" gemm.useful_flops conv.useful_flops;
    Alcotest.(check (float 1.0)) "same issued fmas" gemm.issued_fmas conv.issued_fmas;
    Alcotest.(check bool) "gather adds addressing work" true
      (conv.ialu_per_fma > gemm.ialu_per_fma);
    Alcotest.(check bool) "gather coalesces worse" true
      (conv.coalescing < gemm.coalescing)
  end

let test_bank_conflicts_change_shared_cost () =
  (* A stride-1 fragment tiling (ms=1) is bank-conflict-free; widening the
     per-thread tile to ms=8 makes A-fragment loads step 8 words per lane,
     which the analyzer must flag and the timing model must charge for. *)
  let device =
    List.find (fun (d : Gpu.Device.t) -> d.name = "Tesla P100") Gpu.Device.all
  in
  let input = GP.input 256 256 256 in
  let free = { GP.ms = 1; ns = 4; ks = 1; ml = 8; nl = 32; u = 8; kl = 1;
               kg = 1; vec = 1; db = 1 } in
  let conf = { free with GP.ms = 8; ml = 64 } in
  Alcotest.(check bool) "both tilings legal" true
    (GP.structurally_legal input free && GP.structurally_legal input conf);
  let c_free = GP.cost input free and c_conf = GP.cost input conf in
  Alcotest.(check (float 1e-9)) "stride-1 tiling is conflict-free" 1.0
    c_free.shared_conflict_factor;
  Alcotest.(check bool) "stride-8 fragments conflict" true
    (c_conf.shared_conflict_factor > 1.2);
  match
    ( Gpu.Perf_model.predict device c_conf,
      Gpu.Perf_model.predict device { c_conf with shared_conflict_factor = 1.0 } )
  with
  | Some r, Some r0 ->
    Alcotest.(check (float 1e-12))
      "shared-pipe time scales by the conflict factor"
      (r0.shared_seconds *. c_conf.shared_conflict_factor)
      r.shared_seconds
  | _ -> Alcotest.fail "predict returned None"

let () =
  Alcotest.run "cost-model"
    [ ("invariants (300 random legal pairs)",
       [ quick "non-negative" test_nonnegative;
         quick "issued >= useful" test_padding_waste;
         quick "compulsory traffic" test_compulsory_traffic;
         quick "atomics iff kg>1" test_atomics_iff_split;
         quick "threads consistent" test_threads_consistent;
         quick "coalescing bounds" test_coalescing_bounds;
         quick "grid covers problem" test_grid_covers_problem ]);
      ("scaling",
       [ quick "work scales with K" test_bigger_problem_more_work;
         quick "fp16x2 packing" test_fp16_packs;
         quick "conv = gemm view + gather" test_conv_cost_matches_gemm_view;
         quick "bank conflicts change shared cost"
           test_bank_conflicts_change_shared_cost ]) ]
