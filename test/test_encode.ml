(* Binary encoding round-trips, three ways:

   1. qcheck: [decode (encode p) = p] and [of_bytes (to_bytes e) = e]
      over random valid programs (random register files, guards, labels,
      wide and inline immediates — wide ones exercise the constant
      pools).

   2. Real generated kernels across the Table 4/5 suites: exact
      encode/decode and wire round-trips, the [asm -> disasm -> asm]
      fixed point the round-trip tests depend on, control-info
      consistency with the scoreboard schedule, and hash-collision
      sanity (distinct programs => distinct hashes; renamed copies of
      the same kernel hash identically — the plan cache's cross-shape
      dedup key).

   3. Kernel-corpus artifacts: save/load with dedup and hash
      verification. *)

open Ptx.Types
module I = Ptx.Instr
module E = Ptx.Encode
module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let quick name f = Alcotest.test_case name `Quick f

(* Structural equality that treats NaN float immediates as equal. *)
let same_program (a : Ptx.Program.t) (b : Ptx.Program.t) = compare a b = 0

let encode_exn p =
  match E.encode p with
  | Ok e -> e
  | Error e -> Alcotest.failf "encode failed: %s" e

let decode_exn e =
  match E.decode e with
  | Ok p -> p
  | Error e -> Alcotest.failf "decode failed: %s" e

(* ------------------------------------------------------------------ *)
(* Random programs                                                    *)
(* ------------------------------------------------------------------ *)

(* A random but always-valid program: registers drawn inside a fixed
   file, labels emitted before any branch that targets them (backward
   branches only, guarded so the interpreter semantics don't matter —
   only the structure does here). *)
let gen_program : Ptx.Program.t QCheck.Gen.t =
  QCheck.Gen.(
    let nf = 8 and ni = 8 and np = 4 in
    let ireg = map (fun r -> Ireg r) (int_bound (ni - 1)) in
    let imm =
      frequency
        [ (3, map (fun v -> Iimm (v - 100)) (int_bound 200));
          (1, map (fun v -> Iimm ((v * 7919) - 400_000)) (int_bound 100_000)) ]
    in
    let ioperand =
      frequency
        [ (4, ireg); (2, imm);
          (1, map (fun s -> Iparam (s mod 2)) (int_bound 10));
          (1,
           map
             (fun s ->
               Ispecial
                 [| Tid_x; Tid_y; Tid_z; Ctaid_x; Ctaid_y; Ctaid_z; Ntid_x;
                    Ntid_y; Ntid_z; Nctaid_x; Nctaid_y; Nctaid_z |].(s mod 12))
             (int_bound 11)) ]
    in
    let foperand =
      frequency
        [ (3, map (fun r -> Freg r) (int_bound (nf - 1)));
          (1, map (fun v -> Fimm ((float_of_int v *. 0.37) -. 9.0)) (int_bound 1000)) ]
    in
    let dst_i = int_bound (ni - 1) and dst_f = int_bound (nf - 1) in
    let dst_p = int_bound (np - 1) in
    let cmp = map (fun c -> [| Eq; Ne; Lt; Le; Gt; Ge |].(c mod 6)) (int_bound 5) in
    let op =
      frequency
        [ (3, map2 (fun d a -> I.Mov (d, a)) dst_i ioperand);
          (3, map3 (fun d a b -> I.Iadd (d, a, b)) dst_i ioperand ioperand);
          (2, map3 (fun d a b -> I.Isub (d, a, b)) dst_i ioperand ioperand);
          (2, map3 (fun d a b -> I.Imul (d, a, b)) dst_i ioperand ioperand);
          (1, map3 (fun d a b -> I.Ishl (d, a, b)) dst_i ioperand ioperand);
          (1, map3 (fun d a b -> I.Iand (d, a, b)) dst_i ioperand ioperand);
          (2,
           (fun st ->
             I.Imad (dst_i st, ioperand st, ioperand st, ioperand st)));
          (2,
           (fun st -> I.Setp (cmp st, dst_p st, ioperand st, ioperand st)));
          (1, map3 (fun d a b -> I.And_p (d, a, b)) dst_p dst_p dst_p);
          (1, map2 (fun d a -> I.Not_p (d, a)) dst_p dst_p);
          (2, map2 (fun d a -> I.Movf (d, a)) dst_f foperand);
          (2, map3 (fun d a b -> I.Fadd (d, a, b)) dst_f foperand foperand);
          (2,
           (fun st ->
             I.Ffma (dst_f st, foperand st, foperand st, foperand st)));
          (1, map2 (fun d a -> I.Ld_global (d, 0, a)) dst_f ioperand);
          (1, map2 (fun d a -> I.Ld_shared (d, a)) dst_f ioperand);
          (1, map2 (fun a v -> I.St_global (1, a, v)) ioperand foperand);
          (1, map2 (fun a v -> I.St_shared (a, v)) ioperand foperand);
          (1, map2 (fun a v -> I.Atom_global_add (1, a, v)) ioperand foperand) ]
    in
    let guarded =
      map2
        (fun g (o : I.op) ->
          match g with
          | 0 -> I.mk o
          | 1 -> I.mk ~guard:(0, true) o
          | _ -> I.mk ~guard:(1, false) o)
        (int_bound 5) op
    in
    map2
      (fun steps with_loop ->
        let body = List.map (fun i -> i) steps in
        let body =
          if with_loop && body <> [] then
            (I.mk (I.Label "top") :: body)
            @ [ I.mk ~guard:(2, true) (I.Bra "top") ]
          else body
        in
        let body = body @ [ I.mk I.Ret ] in
        { Ptx.Program.name = "rand";
          dtype = F32;
          buf_params = [| "IN"; "OUT" |];
          int_params = [| "M"; "N" |];
          shared_words = 16;
          shared_int_words = 4;
          body = Array.of_list body;
          n_fregs = nf;
          n_iregs = ni;
          n_pregs = np })
      (list_size (int_range 1 40) guarded)
      bool)

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode p) = p" ~count:500
    (QCheck.make gen_program)
    (fun p ->
      (match Ptx.Program.validate p with Ok () -> () | Error e -> failwith e);
      match E.encode p with
      | Error e -> failwith e
      | Ok enc -> (
        let wire =
          match E.of_bytes (E.to_bytes enc) with
          | Ok w -> w
          | Error e -> failwith ("of_bytes: " ^ e)
        in
        if compare wire enc <> 0 then failwith "wire round-trip mismatch";
        if E.hash wire <> E.hash enc then failwith "wire hash drift";
        match E.decode enc with
        | Error e -> failwith ("decode: " ^ e)
        | Ok p' -> same_program p p'))

(* ------------------------------------------------------------------ *)
(* Generated kernels across the suites                                *)
(* ------------------------------------------------------------------ *)

let base_cfg =
  { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
    vec = 1; db = 1 }

let configs =
  [ base_cfg;
    { base_cfg with ns = 4; vec = 2; db = 2 };
    { base_cfg with kl = 2 };
    { base_cfg with ks = 2 };
    { base_cfg with kg = 2 };
    { base_cfg with ms = 4; ns = 4; ml = 32; nl = 32; u = 4 } ]

(* Kernels for every Table 4 task (all groups, fp32 + mixed suites) and
   the Table 5-style conv shapes, across configs and bounds modes. *)
let suite_kernels () =
  let kernels = ref [] in
  let add name p = kernels := (name, p) :: !kernels in
  let tasks =
    Workloads.Gemm_suites.fp32_suite ~mk:1760
    @ Workloads.Gemm_suites.mixed_suite ~mk:1760
  in
  List.iter
    (fun (t : Workloads.Gemm_suites.task) ->
      List.iteri
        (fun ci cfg ->
          if GP.structurally_legal t.input cfg then
            List.iter
              (fun (bname, bounds) ->
                add
                  (Printf.sprintf "%s/%s cfg%d %s" t.group t.label ci bname)
                  (Codegen.Gemm.generate ~bounds t.input cfg))
              [ ("exact", GP.Unchecked); ("pred", GP.Predicated);
                ("branch", GP.Branch) ])
        configs)
    tasks;
  List.iter
    (fun (name, i) ->
      List.iteri
        (fun ci cfg ->
          if CP.structurally_legal i cfg then
            add
              (Printf.sprintf "conv %s cfg%d" name ci)
              (Codegen.Conv.generate i cfg))
        configs)
    [ ("5x5 pad1", CP.input ~pad:1 ~n:1 ~c:2 ~k:4 ~p:5 ~q:5 ~r:3 ~s:3 ());
      ("stride2", CP.input ~stride:2 ~n:2 ~c:3 ~k:4 ~p:4 ~q:4 ~r:3 ~s:3 ()) ];
  List.rev !kernels

let test_kernel_roundtrip () =
  let kernels = suite_kernels () in
  if List.length kernels < 20 then
    Alcotest.failf "suite too small: %d kernels" (List.length kernels);
  List.iter
    (fun (name, p) ->
      let enc = encode_exn p in
      let p' = decode_exn enc in
      if not (same_program p p') then
        Alcotest.failf "%s: decode(encode p) <> p" name;
      (match E.of_bytes (E.to_bytes enc) with
       | Error e -> Alcotest.failf "%s: of_bytes: %s" name e
       | Ok wire ->
         if compare wire enc <> 0 then
           Alcotest.failf "%s: wire round-trip mismatch" name);
      (* The packed form must be denser than the text form. *)
      let text = String.length (Ptx.Disasm.program p) in
      let packed = E.byte_size enc in
      if packed * 3 > text * 2 then
        Alcotest.failf "%s: packed %dB not dense vs %dB text" name packed text)
    kernels

let test_disasm_fixed_point () =
  List.iter
    (fun (name, p) ->
      let text = Ptx.Disasm.program p in
      let p' =
        match Ptx.Asm.parse text with
        | Ok p' -> p'
        | Error e -> Alcotest.failf "%s: reparse failed: %s" name e
      in
      if not (same_program p p') then
        Alcotest.failf "%s: asm -> disasm -> asm not a fixed point" name;
      let text' = Ptx.Disasm.program p' in
      if text <> text' then
        Alcotest.failf "%s: disasm text not stable under reparse" name)
    (suite_kernels ())

let test_control_info () =
  List.iter
    (fun (name, p) ->
      let enc = encode_exn p in
      match Ptx.Scoreboard.analyze p with
      | Error e -> Alcotest.failf "%s: scoreboard: %s" name e
      | Ok t ->
        let total_sched =
          Array.fold_left
            (fun acc (b : Ptx.Scoreboard.block_sched) -> acc + b.stall_cycles)
            0 t.Ptx.Scoreboard.blocks
        in
        let saturated = Array.exists (fun c -> c = 255) enc.E.ctrl in
        let total_ctrl = Array.fold_left ( + ) 0 enc.E.ctrl in
        if saturated then begin
          if total_ctrl > total_sched then
            Alcotest.failf "%s: control info exceeds schedule stalls" name
        end
        else if total_ctrl <> total_sched then
          Alcotest.failf
            "%s: control-info stalls %d disagree with scoreboard %d" name
            total_ctrl total_sched)
    (suite_kernels ())

let test_hashes () =
  let kernels = suite_kernels () in
  let by_hash = Hashtbl.create 64 in
  List.iter
    (fun (name, p) ->
      let enc = encode_exn p in
      let h = E.hash enc in
      (* Hash ignores the entry name: a renamed copy dedups. *)
      let renamed = encode_exn { p with Ptx.Program.name = "other" } in
      if E.hash renamed <> h then
        Alcotest.failf "%s: hash depends on kernel name" name;
      match Hashtbl.find_opt by_hash h with
      | Some (name0, p0) ->
        if not (same_program { p0 with Ptx.Program.name = "" }
                  { p with Ptx.Program.name = "" }) then
          Alcotest.failf "%s / %s: distinct programs share hash %s" name0 name
            (E.hash_hex h)
      | None -> Hashtbl.add by_hash h (name, p))
    kernels;
  (* A one-instruction perturbation must change the hash. *)
  match kernels with
  | (_, p) :: _ ->
    let body = Array.copy p.Ptx.Program.body in
    let swapped = ref false in
    Array.iteri
      (fun i (ins : I.t) ->
        if not !swapped then
          match ins.I.op with
          | I.Iadd (d, a, b) ->
            body.(i) <- { ins with I.op = I.Isub (d, a, b) };
            swapped := true
          | _ -> ())
      body;
    if !swapped then begin
      let h0 = E.hash (encode_exn p) in
      let h1 = E.hash (encode_exn { p with Ptx.Program.body = body }) in
      if h0 = h1 then Alcotest.fail "perturbed kernel kept its hash"
    end
  | [] -> ()

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_field_overflow () =
  let p =
    { Ptx.Program.name = "wide";
      dtype = F32;
      buf_params = [| "OUT" |];
      int_params = [||];
      shared_words = 0;
      shared_int_words = 0;
      body =
        [| I.mk (I.Mov (300, Iimm 0)); I.mk I.Ret |];
      n_fregs = 0;
      n_iregs = 512;
      n_pregs = 0 }
  in
  match E.encode p with
  | Ok _ -> Alcotest.fail "register 300 must overflow the 8-bit field"
  | Error e ->
    if String.length e = 0 then Alcotest.fail "empty overflow message"

let test_corpus () =
  let kernels = suite_kernels () in
  let encs = List.map (fun (_, p) -> encode_exn p) kernels in
  let dir = Filename.temp_file "corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "kernels.bin" in
  (* Duplicate the list: save_corpus must dedup by hash. *)
  E.save_corpus ~fsync:false ~path (encs @ encs);
  (match E.load_corpus ~path with
   | Error e -> Alcotest.failf "load_corpus: %s" e
   | Ok loaded ->
     let uniq = Hashtbl.create 16 in
     List.iter (fun e -> Hashtbl.replace uniq (E.hash e) ()) encs;
     if List.length loaded <> Hashtbl.length uniq then
       Alcotest.failf "corpus not deduplicated: %d vs %d" (List.length loaded)
         (Hashtbl.length uniq);
     List.iter
       (fun e ->
         if not (Hashtbl.mem uniq (E.hash e)) then
           Alcotest.fail "corpus returned an unknown kernel")
       loaded);
  Sys.remove path;
  Unix.rmdir dir

let test_dump () =
  let _, p = List.hd (suite_kernels ()) in
  let enc = encode_exn p in
  let d = E.dump enc in
  if String.length d < 100 then Alcotest.fail "dump suspiciously short";
  List.iter
    (fun needle ->
      if not (contains_sub d needle) then
        Alcotest.failf "dump misses %S" needle)
    [ "hash="; "stall="; "op="; "pools:" ]

let () =
  Alcotest.run "encode"
    [ ("random", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
      ( "kernels",
        [ quick "encode/decode + wire round-trip" test_kernel_roundtrip;
          quick "asm -> disasm -> asm fixed point" test_disasm_fixed_point;
          quick "control info matches scoreboard stalls" test_control_info;
          quick "hash: distinct kernels, name-independent" test_hashes;
          quick "field overflow is a clean error" test_field_overflow ] );
      ( "artifacts",
        [ quick "corpus save/load with dedup" test_corpus;
          quick "dump is human-readable" test_dump ] ) ]
