(* Static verifier: generated kernels must verify clean; deliberately
   corrupted programs must be rejected with the expected diagnostic; and
   verifier acceptance must imply trap-free interpretation (differential
   property). *)

open Ptx.Types
module I = Ptx.Instr
module B = Ptx.Builder
module V = Ptx.Verify
module P = Codegen.Gemm_params
module G = Codegen.Gemm

let quick name f = Alcotest.test_case name `Quick f

let verify_program ?(iargs = []) ~block p = V.run ~iargs ~block p

let check_clean name ?(iargs = []) ~block p =
  let r = verify_program ~iargs ~block p in
  if not (V.ok r) then
    Alcotest.failf "%s: expected clean verification, got:\n%s" name
      (V.to_string r)

let check_rejected name kind ?(iargs = []) ~block p =
  let r = verify_program ~iargs ~block p in
  if V.ok r then
    Alcotest.failf "%s: expected a %s error, verified clean:\n%s" name
      (V.kind_name kind) (V.to_string r);
  if not (List.exists (fun (d : V.diag) -> d.kind = kind) r.errors) then
    Alcotest.failf "%s: expected a %s error, got:\n%s" name (V.kind_name kind)
      (V.to_string r)

(* --- generated GEMM kernels verify clean ------------------------------- *)

let gemm_iargs (i : P.input) = [ ("M", i.m); ("N", i.n); ("K", i.k) ]

let check_gemm ?bounds (i : P.input) (c : P.config) =
  Alcotest.(check bool) "legal" true (P.structurally_legal i c);
  let p = G.generate ?bounds i c in
  check_clean
    (Printf.sprintf "%s %s" (P.describe_name i c) (P.describe c))
    ~iargs:(gemm_iargs i)
    ~block:(P.threads_per_block c, 1, 1)
    p

let cfg ?(ms = 2) ?(ns = 2) ?(ks = 1) ?(ml = 16) ?(nl = 16) ?(u = 8) ?(kl = 1)
    ?(kg = 1) ?(vec = 1) ?(db = 1) () =
  { P.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

let test_gemm_basic () = check_gemm (P.input 32 32 32) (cfg ())
let test_gemm_ragged () = check_gemm (P.input 17 23 29) (cfg ())

let test_gemm_splits () =
  check_gemm (P.input 24 24 40) (cfg ~ks:2 ());
  check_gemm (P.input 24 24 40) (cfg ~kl:2 ());
  check_gemm (P.input 24 24 64) (cfg ~kl:4 ~u:16 ());
  check_gemm (P.input 24 24 64) (cfg ~kg:2 ());
  check_gemm (P.input 24 24 160) (cfg ~ks:2 ~kl:2 ~kg:2 ~u:8 ())

let test_gemm_trans () =
  check_gemm (P.input ~a_trans:true 20 18 25) (cfg ());
  check_gemm (P.input ~b_trans:true 20 18 25) (cfg ());
  check_gemm (P.input ~a_trans:true ~b_trans:true 20 18 25) (cfg ())

let test_gemm_bounds_modes () =
  check_gemm ~bounds:P.Branch (P.input 17 23 29) (cfg ());
  check_gemm ~bounds:P.Unchecked (P.input 32 32 32) (cfg ())

let test_gemm_vec_db () =
  check_gemm (P.input 32 32 32) (cfg ~vec:2 ());
  check_gemm (P.input 32 32 32) (cfg ~db:2 ())

let test_conv_clean () =
  let ci =
    Codegen.Conv_params.input ~n:2 ~c:3 ~k:4 ~p:6 ~q:6 ~r:3 ~s:3 ()
  in
  let c = cfg ~ml:16 ~nl:16 ~u:8 () in
  let gi = Codegen.Conv_params.gemm_input ci in
  let p = Codegen.Conv.generate ci c in
  check_clean "conv"
    ~iargs:[ ("M", gi.P.m); ("N", gi.P.n); ("K", gi.P.k) ]
    ~block:(P.threads_per_block c, 1, 1)
    p

(* --- hand-built corrupted programs are rejected ------------------------ *)

let prog ?(shared = 0) ?(shared_i = 0) ?(nf = 4) ?(ni = 4) ?(np = 4) body =
  { Ptx.Program.name = "corrupt";
    dtype = F32;
    buf_params = [||];
    int_params = [||];
    shared_words = shared;
    shared_int_words = shared_i;
    body = Array.of_list body;
    n_fregs = nf;
    n_iregs = ni;
    n_pregs = np }

let ins op = I.mk op
let gins p op = I.mk ~guard:(p, true) op

let test_bad_branch_target () =
  check_rejected "undefined label" V.Structure ~block:(1, 1, 1)
    (prog [ ins (I.Bra "nowhere"); ins I.Ret ])

let test_fell_off_end () =
  check_rejected "no ret" V.Structure ~block:(1, 1, 1)
    (prog [ ins (I.Mov (0, Iimm 1)) ])

let test_use_before_def () =
  check_rejected "undefined ireg" V.Use_before_def ~block:(1, 1, 1)
    (prog [ ins (I.Iadd (0, Ireg 1, Iimm 1)); ins I.Ret ])

let test_guarded_def_counts () =
  (* A guarded write still defines the register in our semantics (the
     masked lane keeps the old deterministic value). *)
  check_clean "guarded def" ~block:(2, 1, 1)
    (prog
       [ ins (I.Setp (Eq, 0, Ispecial Tid_x, Iimm 0));
         gins 0 (I.Mov (0, Iimm 7));
         ins (I.Iadd (1, Ireg 0, Iimm 1));
         ins I.Ret ])

let test_store_past_shared () =
  check_rejected "constant OOB" V.Shared_bounds ~block:(1, 1, 1)
    (prog ~shared:4 [ ins (I.St_shared (Iimm 100, Fimm 1.0)); ins I.Ret ]);
  check_rejected "tid-dependent OOB" V.Shared_bounds ~block:(4, 1, 1)
    (prog ~shared:4
       [ ins (I.Ishl (0, Ispecial Tid_x, Iimm 1));
         ins (I.St_shared (Ireg 0, Fimm 1.0));
         ins I.Ret ])

let test_divergent_bar_guard () =
  check_rejected "tid-guarded bar" V.Barrier_divergence ~block:(4, 1, 1)
    (prog
       [ ins (I.Setp (Lt, 0, Ispecial Tid_x, Iimm 2));
         gins 0 I.Bar;
         ins I.Ret ])

let test_divergent_bar_branch () =
  check_rejected "bar under varying branch" V.Barrier_divergence
    ~block:(4, 1, 1)
    (prog
       [ ins (I.Setp (Ge, 0, Ispecial Tid_x, Iimm 2));
         gins 0 (I.Bra "skip");
         ins I.Bar;
         ins (I.Label "skip");
         ins I.Ret ])

let test_divergent_early_ret () =
  check_rejected "bar after guarded ret" V.Barrier_divergence ~block:(4, 1, 1)
    (prog
       [ ins (I.Setp (Lt, 0, Ispecial Tid_x, Iimm 2));
         gins 0 I.Ret;
         ins I.Bar;
         ins I.Ret ])

let test_uniform_bar_guard_ok () =
  (* A guard that only depends on a scalar parameter is uniform: every
     thread takes the same side, so the guarded bar is safe. *)
  let p =
    { (prog
         [ ins (I.Setp (Lt, 0, Iparam 0, Iimm 100));
           gins 0 I.Bar;
           ins I.Ret ])
      with Ptx.Program.int_params = [| "M" |] }
  in
  check_clean "param-guarded bar" ~block:(4, 1, 1) p

let test_race_write_write () =
  check_rejected "w/w same word" V.Shared_race ~block:(4, 1, 1)
    (prog ~shared:4 [ ins (I.St_shared (Iimm 0, Fimm 1.0)); ins I.Ret ])

let test_race_read_write () =
  check_rejected "r/w same interval" V.Shared_race ~block:(4, 1, 1)
    (prog ~shared:4
       [ ins (I.Mov (0, Ispecial Tid_x));
         ins (I.St_shared (Ireg 0, Fimm 1.0));
         ins (I.Ld_shared (0, Iimm 0));
         ins I.Ret ])

let test_race_cut_by_barrier () =
  check_clean "bar separates r/w" ~block:(4, 1, 1)
    (prog ~shared:4
       [ ins (I.Mov (0, Ispecial Tid_x));
         ins (I.St_shared (Ireg 0, Fimm 1.0));
         ins I.Bar;
         ins (I.Ld_shared (0, Iimm 0));
         ins I.Ret ])

let test_spaces_dont_alias () =
  (* The float and integer shared arrays are distinct storage. *)
  check_clean "f vs i shared" ~block:(4, 1, 1)
    (prog ~shared:4 ~shared_i:4
       [ ins (I.St_shared_i (Ispecial Tid_x, Iimm 1));
         ins (I.Ld_shared (0, Iimm 0));
         ins I.Ret ])

let test_corrupted_gemm_rejected () =
  let i = P.input 32 32 32 in
  let c = cfg () in
  let p = G.generate i c in
  let body = Array.copy p.Ptx.Program.body in
  let patched = ref false in
  Array.iteri
    (fun idx (instr : I.t) ->
      match instr.op with
      | I.St_shared (_, v) when not !patched ->
        patched := true;
        body.(idx) <- { instr with op = I.St_shared (Iimm (p.shared_words + 5), v) }
      | _ -> ())
    body;
  Alcotest.(check bool) "found a shared store to corrupt" true !patched;
  check_rejected "gemm store past shared_words" V.Shared_bounds
    ~iargs:(gemm_iargs i)
    ~block:(P.threads_per_block c, 1, 1)
    { p with body }

(* --- bank-conflict statistics ------------------------------------------ *)

let test_bank_conflicts () =
  let stride s =
    prog ~shared:1024
      [ ins (I.Imul (0, Ispecial Tid_x, Iimm s));
        ins (I.St_shared (Ireg 0, Fimm 1.0));
        ins I.Ret ]
  in
  let factor s =
    (verify_program ~block:(32, 1, 1) (stride s)).V.bank.V.conflict_factor
  in
  Alcotest.(check (float 1e-9)) "stride 1 conflict-free" 1.0 (factor 1);
  Alcotest.(check (float 1e-9)) "stride 8 -> 8-way" 8.0 (factor 8);
  Alcotest.(check (float 1e-9)) "stride 32 -> 32-way" 32.0 (factor 32);
  (* Same word for every lane broadcasts: degree 1. *)
  let bcast =
    prog ~shared:4 ~np:1
      [ ins (I.Setp (Eq, 0, Ispecial Tid_x, Iimm 0));
        gins 0 (I.St_shared (Iimm 0, Fimm 1.0));
        ins I.Bar;
        ins (I.Ld_shared (0, Iimm 0));
        ins I.Ret ]
  in
  let r = verify_program ~block:(32, 1, 1) bcast in
  if not (V.ok r) then Alcotest.failf "broadcast: %s" (V.to_string r);
  Alcotest.(check (float 1e-9)) "broadcast factor" 1.0 r.V.bank.V.conflict_factor

(* --- differential property: verifier-accept => interpreter trap-free --- *)

let shapes = [| (32, 32, 32); (17, 23, 29); (24, 24, 40); (16, 16, 64) |]

let ms_ns = [| (1, 1); (2, 2); (4, 2) |]
let tiles = [| (16, 16); (16, 32); (32, 16) |]
let splits = [| (1, 1, 1); (2, 1, 1); (1, 2, 1); (1, 1, 2); (1, 4, 1) |]

let prop_verified_runs_trap_free =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, b, c, d) -> (a, b, c, d))
        (quad (oneofa shapes) (oneofa ms_ns) (oneofa tiles) (oneofa splits)))
  in
  let arb = QCheck.make ~print:(fun _ -> "gemm case") gen in
  QCheck.Test.make ~name:"verify-accept => trap-free" ~count:40 arb
    (fun ((m, n, k), (ms, ns), (ml, nl), (ks, kl, kg)) ->
      let i = P.input m n k in
      let c = cfg ~ms ~ns ~ml ~nl ~ks ~kl ~kg ~u:8 () in
      QCheck.assume (P.structurally_legal i c);
      let p = G.generate i c in
      let r =
        verify_program ~iargs:(gemm_iargs i)
          ~block:(P.threads_per_block c, 1, 1)
          p
      in
      if not (V.ok r) then
        QCheck.Test.fail_reportf "verifier rejected a legal kernel:\n%s"
          (V.to_string r);
      let a = Array.make (m * k) 1.0 and b = Array.make (k * n) 1.0 in
      (* Any Interp.Trap escaping here fails the property. *)
      let got = G.run i c ~a ~b in
      Array.length got = m * n)

let corruption_suite =
  [ quick "bad branch target" test_bad_branch_target;
    quick "fell off end" test_fell_off_end;
    quick "use before def" test_use_before_def;
    quick "guarded def counts" test_guarded_def_counts;
    quick "store past shared" test_store_past_shared;
    quick "divergent bar guard" test_divergent_bar_guard;
    quick "divergent bar branch" test_divergent_bar_branch;
    quick "divergent early ret" test_divergent_early_ret;
    quick "uniform bar guard ok" test_uniform_bar_guard_ok;
    quick "race write/write" test_race_write_write;
    quick "race read/write" test_race_read_write;
    quick "race cut by barrier" test_race_cut_by_barrier;
    quick "spaces don't alias" test_spaces_dont_alias;
    quick "corrupted gemm rejected" test_corrupted_gemm_rejected ]

let suite =
  [ quick "gemm basic" test_gemm_basic;
    quick "gemm ragged" test_gemm_ragged;
    quick "gemm splits" test_gemm_splits;
    quick "gemm trans" test_gemm_trans;
    quick "gemm bounds modes" test_gemm_bounds_modes;
    quick "gemm vec/db" test_gemm_vec_db;
    quick "conv clean" test_conv_clean ]

let () =
  Alcotest.run "verify"
    [ ("clean", suite);
      ("corrupt", corruption_suite);
      ("bank", [ quick "bank conflicts" test_bank_conflicts ]);
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_verified_runs_trap_free ] ) ]
