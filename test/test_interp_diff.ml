(* Differential testing of the interpreter, two ways:

   1. Random straight-line programs are executed by Ptx.Interp, by
      Ptx.Interp_ref, and by a direct OCaml evaluation of the same
      operation sequence; all three must agree bit-for-bit. This pins
      the semantics of every ALU operation, predicate logic, guarded
      execution, and shared-memory data flow under randomized
      composition — beyond what the hand-written unit tests cover.

   2. Real generated kernels (GEMM in all three bounds modes, kl/ks
      reduction splits, a kg>1 atomics split, and implicit-GEMM CONV)
      are launched through the retained decode-per-step reference
      engine and through the threaded-code engine at domains=1 and
      domains=4; output buffers must be bitwise identical and all 16
      dynamic counters exactly equal. This is the contract that lets
      the compiled engine replace the reference everywhere. *)

open Ptx.Types
module B = Ptx.Builder
module I = Ptx.Instr

(* A program step, interpretable both ways. Register indices are taken
   modulo the current file size. *)
type step =
  | SIadd of int * int
  | SIsub of int * int
  | SImul of int * int
  | SImadi of int * int * int       (* a*imm + b *)
  | SIdivi of int * int             (* a / imm, imm in 1..7 *)
  | SIremi of int * int
  | SImin of int * int
  | SImax of int * int
  | SIandi of int * int
  | SIori of int * int
  | SIshli of int * int             (* shift 0..4 *)
  | SFadd of int * int
  | SFsub of int * int
  | SFmul of int * int
  | SFfma of int * int * int
  | SSetp of int * int * int        (* cmp index, a, b *)
  | SAndp of int * int
  | SNotp of int
  | SGuardedMovf of int * float     (* guarded by last predicate *)
  | SStLdShared of int * int        (* store f[a] to shared slot, load back into new f *)

let n_seed_i = 6
let n_seed_f = 6
let n_preds = 4

let cmps = [| Eq; Ne; Lt; Le; Gt; Ge |]

(* Build the PTX program and the model in lock-step. *)
let run_both steps =
  let b = B.create ~name:"diff" ~dtype:F64 in
  let out_slot = B.buf_param b "OUT" in
  B.set_shared b ~words:8 ~int_words:0;
  (* Seed registers with deterministic values. *)
  let iregs = ref [] and imodel = ref [] in
  let fregs = ref [] and fmodel = ref [] in
  for v = 0 to n_seed_i - 1 do
    let r = B.mov_i b (Iimm ((v * 37) - 55)) in
    iregs := !iregs @ [ r ];
    imodel := !imodel @ [ (v * 37) - 55 ]
  done;
  for v = 0 to n_seed_f - 1 do
    let r = B.mov_f b (Fimm (float_of_int v *. 0.75 -. 2.0)) in
    fregs := !fregs @ [ r ];
    fmodel := !fmodel @ [ (float_of_int v *. 0.75) -. 2.0 ]
  done;
  let preds = Array.init n_preds (fun _ -> B.fresh_p b) in
  let pmodel = Array.make n_preds false in
  let last_pred = ref 0 in
  let pick l i = List.nth l (i mod List.length l) in
  let push_i r v =
    iregs := !iregs @ [ r ];
    imodel := !imodel @ [ v ]
  in
  let push_f r v =
    fregs := !fregs @ [ r ];
    fmodel := !fmodel @ [ v ]
  in
  List.iter
    (fun step ->
      let ia i = pick !iregs i and iv i = pick !imodel i in
      let fa i = pick !fregs i and fv i = pick !fmodel i in
      match step with
      | SIadd (x, y) -> push_i (B.add_i b (Ireg (ia x)) (Ireg (ia y))) (iv x + iv y)
      | SIsub (x, y) -> push_i (B.sub_i b (Ireg (ia x)) (Ireg (ia y))) (iv x - iv y)
      | SImul (x, y) -> push_i (B.mul_i b (Ireg (ia x)) (Ireg (ia y))) (iv x * iv y)
      | SImadi (x, m, y) ->
        let m = (m mod 5) + 1 in
        push_i (B.mad_i b (Ireg (ia x)) (Iimm m) (Ireg (ia y))) ((iv x * m) + iv y)
      | SIdivi (x, d) ->
        let d = (abs d mod 7) + 1 in
        push_i (B.div_i b (Ireg (ia x)) (Iimm d)) (iv x / d)
      | SIremi (x, d) ->
        let d = (abs d mod 7) + 1 in
        push_i (B.rem_i b (Ireg (ia x)) (Iimm d)) (iv x mod d)
      | SImin (x, y) -> push_i (B.min_i b (Ireg (ia x)) (Ireg (ia y))) (min (iv x) (iv y))
      | SImax (x, y) ->
        let d = B.fresh_i b in
        B.emit b (I.Imax (d, Ireg (ia x), Ireg (ia y)));
        push_i d (max (iv x) (iv y))
      | SIandi (x, m) ->
        let d = B.fresh_i b in
        let m = abs m land 0xFFFF in
        B.emit b (I.Iand (d, Ireg (ia x), Iimm m));
        push_i d (iv x land m)
      | SIori (x, m) ->
        let d = B.fresh_i b in
        let m = abs m land 0xFFFF in
        B.emit b (I.Ior (d, Ireg (ia x), Iimm m));
        push_i d (iv x lor m)
      | SIshli (x, k) ->
        let d = B.fresh_i b in
        let k = abs k mod 5 in
        B.emit b (I.Ishl (d, Ireg (ia x), Iimm k));
        push_i d (iv x lsl k)
      | SFadd (x, y) ->
        let d = B.fresh_f b in
        B.emit b (I.Fadd (d, Freg (fa x), Freg (fa y)));
        push_f d (fv x +. fv y)
      | SFsub (x, y) ->
        let d = B.fresh_f b in
        B.emit b (I.Fsub (d, Freg (fa x), Freg (fa y)));
        push_f d (fv x -. fv y)
      | SFmul (x, y) ->
        let d = B.fresh_f b in
        B.emit b (I.Fmul (d, Freg (fa x), Freg (fa y)));
        push_f d (fv x *. fv y)
      | SFfma (x, y, z) ->
        let d = B.fresh_f b in
        B.emit b (I.Ffma (d, Freg (fa x), Freg (fa y), Freg (fa z)));
        push_f d ((fv x *. fv y) +. fv z)
      | SSetp (c, x, y) ->
        let c = c mod Array.length cmps in
        let p = (x + y) mod n_preds in
        B.emit b (I.Setp (cmps.(c), preds.(p), Ireg (ia x), Ireg (ia y)));
        pmodel.(p) <- eval_cmp cmps.(c) (iv x) (iv y);
        last_pred := p
      | SAndp (x, y) ->
        let px = x mod n_preds and py = y mod n_preds in
        let pd = (x + (2 * y)) mod n_preds in
        B.emit b (I.And_p (preds.(pd), preds.(px), preds.(py)));
        pmodel.(pd) <- pmodel.(px) && pmodel.(py);
        last_pred := pd
      | SNotp x ->
        let px = x mod n_preds in
        B.emit b (I.Not_p (preds.(px), preds.(px)));
        pmodel.(px) <- not pmodel.(px);
        last_pred := px
      | SGuardedMovf (x, v) ->
        (* Guarded overwrite of an existing float register. *)
        let tgt_pos = x mod List.length !fregs in
        let tgt = List.nth !fregs tgt_pos in
        B.emit b ~guard:(preds.(!last_pred), true) (I.Movf (tgt, Fimm v));
        if pmodel.(!last_pred) then
          fmodel := List.mapi (fun i old -> if i = tgt_pos then v else old) !fmodel
      | SStLdShared (x, slot) ->
        let slot = abs slot mod 8 in
        B.emit b (I.St_shared (Iimm slot, Freg (fa x)));
        let d = B.fresh_f b in
        B.emit b (I.Ld_shared (d, Iimm slot));
        push_f d (fv x))
    steps;
  (* Verify results in-kernel: integer registers are compared against the
     model with equality probes (storing 1.0 on success), float registers
     are stored directly and compared bitwise on the host. *)
  let n_i = List.length !iregs and n_f = List.length !fregs in
  let out_len = n_i + n_f in
  List.iteri
    (fun idx r ->
      let expect = List.nth !imodel idx in
      let p = B.setp b Eq (Ireg r) (Iimm expect) in
      B.emit b ~guard:(p, true) (I.St_global (out_slot, Iimm idx, Fimm 1.0)))
    !iregs;
  List.iteri
    (fun idx r -> B.emit b (I.St_global (out_slot, Iimm (n_i + idx), Freg r)))
    !fregs;
  let program = B.finish b in
  (match Ptx.Program.validate program with
   | Ok () -> ()
   | Error e -> failwith e);
  let out = Array.make out_len 0.0 in
  let c =
    Ptx.Interp.run program ~grid:(1, 1, 1) ~block:(1, 1, 1) ~bufs:[ ("OUT", out) ]
      ~iargs:[]
  in
  (* Cross-check against the decode-per-step reference engine: same
     bits out, same counters. *)
  let out_ref = Array.make out_len 0.0 in
  let c_ref =
    Ptx.Interp_ref.run program ~grid:(1, 1, 1) ~block:(1, 1, 1)
      ~bufs:[ ("OUT", out_ref) ] ~iargs:[]
  in
  (* Check: int probes all 1.0; float slots bitwise-equal to the model
     (shared stores round to f64 = identity here). *)
  let ok = ref (c = c_ref) in
  for idx = 0 to out_len - 1 do
    if Int64.bits_of_float out.(idx) <> Int64.bits_of_float out_ref.(idx) then
      ok := false
  done;
  for idx = 0 to n_i - 1 do
    if out.(idx) <> 1.0 then ok := false
  done;
  List.iteri
    (fun idx v ->
      let got = out.(n_i + idx) in
      if not (got = v || (Float.is_nan got && Float.is_nan v)) then ok := false)
    !fmodel;
  !ok

(* QCheck generator for steps. *)
let step_gen =
  QCheck.Gen.(
    let i2 f = map2 f (int_bound 40) (int_bound 40) in
    let i3 f = map3 f (int_bound 40) (int_bound 40) (int_bound 40) in
    frequency
      [ (3, i2 (fun a b -> SIadd (a, b)));
        (2, i2 (fun a b -> SIsub (a, b)));
        (2, i2 (fun a b -> SImul (a, b)));
        (2, i3 (fun a b c -> SImadi (a, b, c)));
        (1, i2 (fun a b -> SIdivi (a, b)));
        (1, i2 (fun a b -> SIremi (a, b)));
        (1, i2 (fun a b -> SImin (a, b)));
        (1, i2 (fun a b -> SImax (a, b)));
        (1, i2 (fun a b -> SIandi (a, b)));
        (1, i2 (fun a b -> SIori (a, b)));
        (1, i2 (fun a b -> SIshli (a, b)));
        (3, i2 (fun a b -> SFadd (a, b)));
        (2, i2 (fun a b -> SFsub (a, b)));
        (2, i2 (fun a b -> SFmul (a, b)));
        (2, i3 (fun a b c -> SFfma (a, b, c)));
        (2, i3 (fun c a b -> SSetp (c, a, b)));
        (1, i2 (fun a b -> SAndp (a, b)));
        (1, map (fun a -> SNotp a) (int_bound 40));
        (2, map2 (fun a v -> SGuardedMovf (a, float_of_int v *. 0.125))
             (int_bound 40) (int_bound 64));
        (2, i2 (fun a b -> SStLdShared (a, b))) ])

let prop_differential =
  QCheck.Test.make ~name:"interpreter matches direct evaluation" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) step_gen))
    run_both

(* --- generated kernels: reference engine vs threaded-code engine -------- *)

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let quick name f = Alcotest.test_case name `Quick f

(* Bitwise output equality plus exact equality of all 16 counters (the
   counters record contains only ints, so structural equality is it). *)
let check_same name (out_ref, c_ref) (out_got, c_got) =
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float out_got.(i) then
        Alcotest.failf "%s: output[%d] differs: %h vs %h" name i v out_got.(i))
    out_ref;
  if c_ref <> c_got then
    Alcotest.failf "%s: counters differ:\n  ref: %s\n  got: %s" name
      (Ptx.Interp.summary c_ref) (Ptx.Interp.summary c_got)

(* Launch the same program + inputs through the naive reference and both
   production engines (flat bytecode and threaded closures) at 1 and 4
   domains, and insist all five runs are indistinguishable. Fresh output
   buffers per launch so an atomics kernel (kg > 1) accumulates from
   zero each time. *)
let diff_launch name program ~grid ~block ~bufs ~iargs ~out_len =
  let launch run =
    let out = Array.make out_len 0.0 in
    let c = run (bufs out) in
    (out, c)
  in
  let reference =
    launch (fun bufs -> Ptx.Interp_ref.run program ~grid ~block ~bufs ~iargs)
  in
  List.iter
    (fun (ename, engine) ->
      List.iter
        (fun domains ->
          let got =
            launch (fun bufs ->
                Ptx.Interp.run ~engine ~domains program ~grid ~block ~bufs
                  ~iargs)
          in
          check_same
            (Printf.sprintf "%s [%s domains=%d]" name ename domains)
            reference got)
        [ 1; 4 ])
    [ ("bytecode", `Bytecode); ("closures", `Closures) ]

let gemm_case ?bounds name (m, n, k) (cfg : GP.config) =
  let input = GP.input m n k in
  if not (GP.structurally_legal input cfg) then
    Alcotest.failf "%s: config not structurally legal" name;
  let program = Codegen.Gemm.generate ?bounds input cfg in
  let grid = Codegen.Gemm.grid input cfg and block = Codegen.Gemm.block cfg in
  let rng = Util.Rng.create (Hashtbl.hash name) in
  let a = Array.init (m * k) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (k * n) (fun _ -> Util.Rng.uniform rng) in
  diff_launch name program ~grid ~block
    ~bufs:(fun out -> [ ("A", a); ("B", b); ("C", out) ])
    ~iargs:[ ("M", m); ("N", n); ("K", k) ]
    ~out_len:(m * n)

let base_cfg =
  { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
    vec = 1; db = 1 }

let test_gemm_diff () =
  (* Exact shape, every bounds mode. *)
  gemm_case "gemm 32^3" (32, 32, 32) base_cfg;
  gemm_case ~bounds:GP.Unchecked "gemm 32^3 unchecked" (32, 32, 32) base_cfg;
  (* Ragged shape: predication and divergent branches both exercised,
     multi-block grid in both x and y. *)
  gemm_case ~bounds:GP.Predicated "gemm 33x17x24 predicated" (33, 17, 24) base_cfg;
  gemm_case ~bounds:GP.Branch "gemm 33x17x24 branch" (33, 17, 24) base_cfg;
  (* Vectorized + double-buffered staging. *)
  gemm_case "gemm 32^3 vec2 db2" (32, 32, 32)
    { base_cfg with ns = 4; vec = 2; db = 2 };
  (* K_L > 1: shared-memory reduction tree; K_S > 1: register chains. *)
  gemm_case "gemm 32^3 kl2" (32, 32, 32) { base_cfg with kl = 2 };
  gemm_case "gemm 33x17x24 ks2" (33, 17, 24) { base_cfg with ks = 2 }

let test_gemm_diff_atomics () =
  (* kg > 1 reduces across the grid with global atomics: the threaded
     engine must detect this and fall back to serial execution even at
     domains=4, keeping results identical to the reference. *)
  gemm_case "gemm 32^3 kg2 atomics" (32, 32, 32) { base_cfg with kg = 2 }

let conv_case name (i : CP.input) (cfg : GP.config) =
  if not (CP.structurally_legal i cfg) then
    Alcotest.failf "%s: config not structurally legal" name;
  let gi = CP.gemm_input i in
  let program = Codegen.Conv.generate i cfg in
  let lut_row, lut_delta = Codegen.Conv.tables i cfg in
  let rng = Util.Rng.create (Hashtbl.hash name) in
  let image =
    Array.init (i.n * i.c * CP.h i * CP.w i) (fun _ -> Util.Rng.uniform rng)
  in
  let filter = Array.init (CP.crs i * i.k) (fun _ -> Util.Rng.uniform rng) in
  let padded = Codegen.Conv.pad_image i image in
  let ceil_div a b = (a + b - 1) / b in
  let grid = (ceil_div gi.m cfg.ml, ceil_div gi.n cfg.nl, cfg.kg) in
  let block = (GP.threads_per_block cfg, 1, 1) in
  diff_launch name program ~grid ~block
    ~bufs:(fun out ->
      [ ("A", padded); ("B", filter); ("C", out); ("LUT_ROW", lut_row);
        ("LUT_DELTA", lut_delta) ])
    ~iargs:[ ("M", gi.m); ("N", gi.n); ("K", gi.k) ]
    ~out_len:(CP.npq i * i.k)

let test_conv_diff () =
  (* Padded 3x3 conv: the gather kernel indirects every A load through
     the LUTs. *)
  conv_case "conv 5x5 pad1"
    (CP.input ~pad:1 ~n:1 ~c:2 ~k:4 ~p:5 ~q:5 ~r:3 ~s:3 ())
    base_cfg;
  (* Strided, multi-image, multi-block. *)
  conv_case "conv stride2"
    (CP.input ~stride:2 ~n:2 ~c:3 ~k:4 ~p:4 ~q:4 ~r:3 ~s:3 ())
    base_cfg

let () =
  Alcotest.run "interp-diff"
    [ ("differential", [ QCheck_alcotest.to_alcotest prop_differential ]);
      ( "kernels",
        [ quick "gemm: ref vs compiled, serial and 4 domains" test_gemm_diff;
          quick "gemm kg>1: atomics force serial fallback" test_gemm_diff_atomics;
          quick "conv: ref vs compiled, serial and 4 domains" test_conv_diff ] )
    ]
