(* Tests for the tuner: config spaces, the categorical generative model,
   feature transformation, dataset generation, profiles and the
   exhaustive runtime search. *)

let quick name f = Alcotest.test_case name `Quick f
let () = Unix.putenv "ISAAC_SEARCH_CAP" "4000"  (* keep searches fast in tests *)

let rng () = Util.Rng.create 2718
module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

(* --- config space -------------------------------------------------------- *)

let test_space_size () =
  let expected =
    Array.fold_left
      (fun acc p -> acc * Array.length p.Tuner.Config_space.values)
      1 Tuner.Config_space.gemm
  in
  Alcotest.(check int) "size = product" expected
    (Tuner.Config_space.size Tuner.Config_space.gemm);
  Alcotest.(check int) "table1 grid is 5^10" (5 * 5 * 5 * 5 * 5 * 5 * 5 * 5 * 5 * 5)
    (Tuner.Config_space.size Tuner.Config_space.table1)

let test_space_iter_count () =
  let small : Tuner.Config_space.t =
    [| { name = "a"; values = [| 1; 2 |] }; { name = "b"; values = [| 1; 2; 3 |] } |]
  in
  let n = ref 0 in
  Tuner.Config_space.iter small (fun _ -> incr n);
  Alcotest.(check int) "2*3 combos" 6 !n

let test_value_index () =
  let p = { Tuner.Config_space.name = "x"; values = [| 1; 2; 4; 8 |] } in
  Alcotest.(check int) "index of 4" 2 (Tuner.Config_space.value_index p 4);
  Alcotest.check_raises "foreign value" Not_found (fun () ->
      ignore (Tuner.Config_space.value_index p 3))

let test_random_in_grid () =
  let r = rng () in
  for _ = 1 to 100 do
    let cfg = Tuner.Config_space.random r Tuner.Config_space.gemm in
    Array.iteri
      (fun i v ->
        let p = Tuner.Config_space.gemm.(i) in
        Alcotest.(check bool) "value from grid" true (Array.exists (( = ) v) p.values))
      cfg
  done

(* [iter_pruned] must visit exactly the leaves no prefix of which was
   pruned, in [iter] order — for any prune predicate, sound or not. *)
let prop_iter_pruned_equals_filtered =
  QCheck.Test.make ~name:"iter_pruned = iter + prefix filter" ~count:50
    QCheck.small_int (fun seed ->
      let space : Tuner.Config_space.t =
        [| { name = "a"; values = [| 1; 2; 3 |] };
           { name = "b"; values = [| 1; 2 |] };
           { name = "c"; values = [| 1; 2; 3; 4 |] };
           { name = "d"; values = [| 1; 2; 3 |] } |]
      in
      (* Deterministic pseudo-random predicate of (prefix values, depth). *)
      let prune buf d =
        let h = ref (seed + 17) in
        for i = 0 to d do
          h := (!h * 31) + buf.(i)
        done;
        !h mod 4 = 0
      in
      let pruned = ref [] in
      Tuner.Config_space.iter_pruned space ~prune (fun b ->
          pruned := Array.copy b :: !pruned);
      let filtered = ref [] in
      Tuner.Config_space.iter space (fun b ->
          let dead = ref false in
          for d = 0 to Array.length b - 1 do
            dead := !dead || prune b d
          done;
          if not !dead then filtered := Array.copy b :: !filtered);
      !pruned = !filtered)

(* --- sampler -------------------------------------------------------------- *)

(* Toy space where legality = "first parameter >= 4": the fitted marginal
   must shift mass onto {4, 8}. *)
let toy_space : Tuner.Config_space.t =
  [| { name = "a"; values = [| 1; 2; 4; 8 |] };
     { name = "b"; values = [| 1; 2 |] } |]

let test_sampler_learns_marginals () =
  let r = rng () in
  let legal cfg = cfg.(0) >= 4 in
  let s = Tuner.Sampler.fit ~alpha:1.0 ~warmup:4000 r toy_space ~legal in
  let m = Tuner.Sampler.marginal s 0 in
  Alcotest.(check (float 1e-9)) "marginal sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 m);
  Alcotest.(check bool) "mass concentrates on legal values" true
    (m.(2) +. m.(3) > 0.9);
  (* and the acceptance rate improves accordingly *)
  let uni =
    Tuner.Sampler.acceptance_rate ~trials:2000
      ~sample:(fun () -> Tuner.Config_space.random r toy_space)
      ~legal
  in
  let cat =
    Tuner.Sampler.acceptance_rate ~trials:2000
      ~sample:(fun () -> Tuner.Sampler.sample r s)
      ~legal
  in
  Alcotest.(check bool) "categorical beats uniform" true (cat > 1.5 *. uni)

let test_sampler_dirichlet_prior_no_zero () =
  let r = rng () in
  (* With legality never accepting value 1, the prior still gives it
     non-zero probability. *)
  let s = Tuner.Sampler.fit ~alpha:100.0 ~warmup:2000 r toy_space
      ~legal:(fun cfg -> cfg.(0) >= 4) in
  let m = Tuner.Sampler.marginal s 0 in
  Alcotest.(check bool) "no exact zero" true (Array.for_all (fun p -> p > 0.0) m)

let test_sample_legal () =
  let r = rng () in
  let legal cfg = cfg.(0) >= 4 in
  let s = Tuner.Sampler.fit ~warmup:500 r toy_space ~legal in
  match Tuner.Sampler.sample_legal r s ~legal with
  | Some cfg -> Alcotest.(check bool) "result legal" true (legal cfg)
  | None -> Alcotest.fail "should find a legal sample"

(* --- features --------------------------------------------------------------- *)

let test_gemm_features () =
  let i = GP.input ~a_trans:true 64 128 256 in
  let cfg = Array.make 10 8 in
  let f = Tuner.Features.gemm_features ~log:true i cfg in
  Alcotest.(check int) "dim" Tuner.Features.dim (Array.length f);
  Alcotest.(check (float 1e-9)) "log2 m" 6.0 f.(0);
  Alcotest.(check (float 1e-9)) "log2 n" 7.0 f.(1);
  Alcotest.(check (float 1e-9)) "log2 k" 8.0 f.(2);
  Alcotest.(check (float 1e-9)) "log2 bytes" 2.0 f.(3);
  Alcotest.(check (float 1e-9)) "a_trans flag" 1.0 f.(4);
  Alcotest.(check (float 1e-9)) "b_trans flag" 0.0 f.(5);
  Alcotest.(check (float 1e-9)) "log2 tuning value" 3.0 f.(6);
  let raw = Tuner.Features.gemm_features ~log:false i cfg in
  Alcotest.(check (float 1e-9)) "raw m" 64.0 raw.(0)

(* Per-query featurization cache: cached rows must be bit-identical to
   the uncached featurizers, in both log and raw modes. *)
let test_query_features_match_uncached () =
  let r = rng () in
  let gemm_inputs =
    [ GP.input 512 512 512;
      GP.input ~a_trans:true ~dtype:Ptx.Types.F16 2560 16 2560;
      GP.input ~b_trans:true ~dtype:Ptx.Types.F64 7 9 60000 ]
  in
  List.iter
    (fun log ->
      List.iter
        (fun i ->
          let q = Tuner.Features.gemm_query ~log i in
          for _ = 1 to 50 do
            let cfg = Tuner.Config_space.random r Tuner.Config_space.gemm in
            Alcotest.(check (array (float 0.0))) "gemm bit-equal"
              (Tuner.Features.gemm_features ~log i cfg)
              (Tuner.Features.query_features q cfg)
          done)
        gemm_inputs;
      let ci = CP.input ~n:2 ~c:16 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 () in
      let q = Tuner.Features.conv_query ~log ci in
      for _ = 1 to 50 do
        let cfg = Tuner.Config_space.random r Tuner.Config_space.gemm in
        Alcotest.(check (array (float 0.0))) "conv bit-equal"
          (Tuner.Features.conv_features ~log ci cfg)
          (Tuner.Features.query_features q cfg)
      done)
    [ true; false ]

let test_target_scaler_roundtrip () =
  let s = Tuner.Features.fit_target_scaler [| 0.5; 1.0; 2.0; 4.0 |] in
  List.iter
    (fun v ->
      Alcotest.(check (float 1e-9)) "roundtrip" v
        (Tuner.Features.untarget s (Tuner.Features.target s v)))
    [ 0.1; 1.0; 7.3 ]

(* --- dataset ----------------------------------------------------------------- *)

let test_dataset_generation () =
  let r = rng () in
  let ds = Tuner.Dataset.generate_gemm r Gpu.Device.gtx980ti ~n:50 in
  Alcotest.(check int) "size" 50 (Tuner.Dataset.size ds);
  Alcotest.(check int) "feature rows" 50 ds.features_log.Mlp.Tensor.rows;
  Array.iter
    (fun v -> Alcotest.(check bool) "positive tflops" true (v > 0.0))
    ds.tflops;
  Array.iter
    (fun v -> Alcotest.(check bool) "finite features" true (Float.is_finite v))
    ds.features_log.Mlp.Tensor.data

let test_dataset_parallel_generation () =
  (* Multi-domain generation must produce the right count and the same
     statistical shape; determinism holds per (seed, domain-count). *)
  let ds1 =
    Tuner.Dataset.generate_gemm ~domains:3 (Util.Rng.create 12) Gpu.Device.p100 ~n:90
  in
  let ds2 =
    Tuner.Dataset.generate_gemm ~domains:3 (Util.Rng.create 12) Gpu.Device.p100 ~n:90
  in
  Alcotest.(check int) "size" 90 (Tuner.Dataset.size ds1);
  Alcotest.(check bool) "deterministic for fixed domains" true
    (ds1.tflops = ds2.tflops);
  Array.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.0)) ds1.tflops

let test_dataset_conv_generation () =
  let r = rng () in
  let ds = Tuner.Dataset.generate_conv r Gpu.Device.p100 ~n:30 in
  Alcotest.(check int) "size" 30 (Tuner.Dataset.size ds);
  Alcotest.(check bool) "tagged conv" true (ds.op = `Conv)

(* The packed-kernel companion of a dataset: sampled kernels land in a
   hash-verified Ptx.Encode corpus, every entry decodes back to a valid
   program, and the reported count matches the (deduplicated) file. *)
let test_dataset_kernel_corpus_export () =
  let path = Filename.temp_file "isaac_kernels" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let distinct =
        Tuner.Dataset.export_kernel_corpus ~warmup:500 ~op:`Gemm
          (Util.Rng.create 31) Gpu.Device.gtx980ti ~n:20 ~path
      in
      Alcotest.(check bool) "some kernels written" true (distinct > 0);
      match Ptx.Encode.load_corpus ~path with
      | Error e -> Alcotest.fail e
      | Ok kernels ->
        Alcotest.(check int) "count matches file" distinct
          (List.length kernels);
        List.iter
          (fun k ->
            match Ptx.Encode.decode k with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "corpus kernel undecodable: %s" e)
          kernels)

let test_legality_split () =
  (* gemm_legal must match structural && device legality. *)
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let both = ref 0 in
  for _ = 1 to 2000 do
    let input = Tuner.Dataset.random_gemm_input r in
    let cfg = Tuner.Config_space.random r Tuner.Config_space.gemm in
    let legal = Tuner.Dataset.gemm_legal device input cfg in
    let expect =
      GP.structurally_legal input (GP.config_of_array cfg)
      && Gpu.Executor.legal device (GP.cost input (GP.config_of_array cfg))
    in
    if legal then incr both;
    Alcotest.(check bool) "legality agrees" expect legal
  done;
  Alcotest.(check bool) "some legal configs found" true (!both > 0)

(* --- profile / search ---------------------------------------------------------- *)

let tiny_profile r device =
  let ds = Tuner.Dataset.generate_gemm r device ~n:2000 in
  Tuner.Profile.train ~arch:[| 32; 32 |] ~epochs:15 r ds

let test_search_parallel_scoring () =
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let profile = tiny_profile r device in
  let input = GP.input 512 512 512 in
  let run domains =
    let r = Util.Rng.create 77 in
    Option.get
      (Tuner.Search.exhaustive_gemm ~top_k:10 ~cap:5000 ~domains r device ~profile
         input)
  in
  let s1 = run 1 and s3 = run 3 in
  (* Scoring is deterministic regardless of domains: identical ranking. *)
  Alcotest.(check bool) "same best config" true
    (GP.equal_config s1.best s3.best);
  Alcotest.(check int) "same n_scored" s1.n_scored s3.n_scored

let test_profile_save_load () =
  let r = rng () in
  let p = tiny_profile r Gpu.Device.gtx980ti in
  let path = Filename.temp_file "profile" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tuner.Profile.save p path;
      let p2 = Tuner.Profile.load_exn path in
      Alcotest.(check string) "device" p.device p2.device;
      let i = GP.input 512 512 512 in
      let f = Tuner.Features.gemm_features ~log:true i (Array.make 10 8) in
      Alcotest.(check (float 1e-6)) "same prediction"
        (Tuner.Profile.predict_tflops p f) (Tuner.Profile.predict_tflops p2 f))

let test_search_returns_legal () =
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let profile = tiny_profile r device in
  let input = GP.input 512 512 512 in
  match Tuner.Search.exhaustive_gemm ~top_k:20 r device ~profile input with
  | None -> Alcotest.fail "search found nothing"
  | Some result ->
    Alcotest.(check bool) "config legal" true
      (GP.structurally_legal input result.best
      && Gpu.Executor.legal device (GP.cost input result.best));
    Alcotest.(check bool) "positive tflops" true
      (result.best_measurement.tflops > 0.0);
    Alcotest.(check bool) "legal space explored" true (result.n_legal > 100);
    Alcotest.(check int) "top-k candidates" 20 (Array.length result.candidates)

let test_search_beats_median_kernel () =
  (* Even a tiny model + top-k re-measurement must comfortably beat the
     median legal configuration (the value of the §6 pipeline). *)
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let profile = tiny_profile r device in
  let input = GP.input 2560 16 2560 in
  let result =
    Option.get
      (Tuner.Search.exhaustive_gemm ~top_k:50 ~cap:20000 r device ~profile input)
  in
  let configs = Tuner.Search.legal_gemm_configs device input in
  let tflops =
    List.filter_map
      (fun c ->
        Option.map
          (fun (rep : Gpu.Perf_model.report) -> rep.tflops)
          (Gpu.Perf_model.predict device (GP.cost input c)))
      configs
  in
  let median = Util.Stats.median (Array.of_list tflops) in
  Alcotest.(check bool) "beats median" true
    (result.best_measurement.tflops > median)

let test_oracle_is_upper_bound () =
  let device = Gpu.Device.gtx980ti in
  let input = GP.input 512 512 512 in
  let _, oracle_report = Option.get (Tuner.Search.oracle_gemm device input) in
  (* The oracle beats every cuBLAS kernel (it searches a superset). *)
  let r = rng () in
  match Baselines.Cublas.best_kernel ~noise:0.0 r device input with
  | None -> Alcotest.fail "cublas found nothing"
  | Some (_, m) ->
    Alcotest.(check bool) "oracle >= cublas best" true
      (oracle_report.tflops >= m.tflops *. 0.999)

let test_subsample_cap () =
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let profile = tiny_profile r device in
  let input = GP.input 512 512 512 in
  let result =
    Option.get (Tuner.Search.exhaustive_gemm ~cap:500 r device ~profile input)
  in
  Alcotest.(check bool) "scored at most ~cap" true (result.n_scored <= 600)

(* --- pruned enumeration vs reference ------------------------------------- *)

let check_config_arrays name (want : GP.config array) (got : GP.config array) =
  Alcotest.(check int) (name ^ ": same count") (Array.length want)
    (Array.length got);
  Array.iteri
    (fun i c ->
      if not (GP.equal_config want.(i) c) then
        Alcotest.failf "%s: config %d differs: %s vs %s" name i
          (GP.describe want.(i)) (GP.describe c))
    got

(* Soundness + completeness of the bound-pruned enumerator: the legal
   arrays must equal the unpruned full-cost reference element for
   element (same set, same order). Equal legal sets imply the pruned
   search can never change the argmax. Shapes cover ragged sizes, deep-K
   (exercises the kg bound), every dtype (the register lower bound), and
   randomly drawn inputs. *)
let test_pruned_legal_sets_match_reference () =
  let r = Util.Rng.create 4242 in
  let random_input () =
    GP.input
      ~dtype:(Util.Rng.choice r [| Ptx.Types.F16; Ptx.Types.F32; Ptx.Types.F64 |])
      ~a_trans:(Util.Rng.bool r) ~b_trans:(Util.Rng.bool r)
      (1 + Util.Rng.int r 3000)
      (1 + Util.Rng.int r 3000)
      (1 + Util.Rng.int r 60000)
  in
  let cases =
    [ (Gpu.Device.gtx980ti, GP.input 512 512 512);
      (Gpu.Device.gtx980ti, GP.input ~a_trans:true 2560 16 2560);
      (Gpu.Device.gtx980ti, GP.input ~dtype:Ptx.Types.F16 ~b_trans:true 64 64 8);
      (Gpu.Device.p100, GP.input ~dtype:Ptx.Types.F64 256 256 256);
      (Gpu.Device.p100, GP.input 7 9 13);
      (Gpu.Device.gtx980ti, random_input ());
      (Gpu.Device.p100, random_input ()) ]
  in
  List.iter
    (fun (device, input) ->
      check_config_arrays
        (Printf.sprintf "gemm %dx%dx%d" input.GP.m input.GP.n input.GP.k)
        (Tuner.Search.legal_gemm_config_array_ref device input)
        (Tuner.Search.legal_gemm_config_array device input))
    cases

let test_pruned_conv_legal_matches_reference () =
  let device = Gpu.Device.gtx980ti in
  List.iter
    (fun input ->
      check_config_arrays "conv"
        (Tuner.Search.legal_conv_config_array_ref device input)
        (Tuner.Search.legal_conv_config_array device input))
    [ CP.input ~n:2 ~c:16 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 ();
      CP.input ~n:1 ~c:3 ~k:64 ~p:112 ~q:112 ~r:7 ~s:7 ~stride:2 ~pad:3
        ~dtype:Ptx.Types.F16 () ]

(* The two scoring engines must pick bit-identical plans: same legal set,
   same predictions, same sort, same rebench rng consumption. Batched
   runs with 3 domains to also cross engine equality with
   domain-invariance. *)
let test_engines_choose_identical_plans () =
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let profile = tiny_profile r device in
  List.iter
    (fun input ->
      let run engine domains =
        let r = Util.Rng.create 77 in
        Option.get
          (Tuner.Search.exhaustive_gemm ~top_k:10 ~cap:5000 ~domains ~engine r
             device ~profile input)
      in
      let b = run `Batched 3 and s = run `Scalar 1 in
      Alcotest.(check bool) "same best config" true (GP.equal_config b.best s.best);
      Alcotest.(check int) "same n_legal" s.n_legal b.n_legal;
      Alcotest.(check int) "same n_scored" s.n_scored b.n_scored;
      Alcotest.(check (float 0.0)) "bit-equal measurement"
        s.best_measurement.tflops b.best_measurement.tflops;
      Alcotest.(check int) "same top-k" (Array.length s.candidates)
        (Array.length b.candidates);
      Array.iteri
        (fun i (c : Tuner.Search.candidate) ->
          Alcotest.(check bool) "same candidate" true
            (GP.equal_config c.config s.candidates.(i).config);
          Alcotest.(check (float 0.0)) "bit-equal prediction"
            s.candidates.(i).predicted_tflops c.predicted_tflops)
        b.candidates;
      Alcotest.(check bool) "pruning visits fewer leaves" true
        (b.n_visited < s.n_visited);
      Alcotest.(check (list string)) "phase names"
        [ "enumerate"; "featurize"; "inference"; "argmax"; "rebench" ]
        (List.map fst b.phases))
    [ GP.input 512 512 512; GP.input ~b_trans:true 2560 16 2560 ]

let test_engines_choose_identical_conv_plans () =
  let r = rng () in
  let device = Gpu.Device.gtx980ti in
  let ds = Tuner.Dataset.generate_conv r device ~n:800 in
  let profile = Tuner.Profile.train ~arch:[| 32; 32 |] ~epochs:10 r ds in
  let input = CP.input ~n:2 ~c:16 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 () in
  let run engine =
    let r = Util.Rng.create 78 in
    Option.get
      (Tuner.Search.exhaustive_conv ~top_k:10 ~cap:5000 ~engine r device
         ~profile input)
  in
  let b = run `Batched and s = run `Scalar in
  Alcotest.(check bool) "same best config" true (GP.equal_config b.best s.best);
  Alcotest.(check (float 0.0)) "bit-equal measurement" s.best_measurement.tflops
    b.best_measurement.tflops

(* Pruning can never change the argmax: over randomly drawn lattices
   (shape, dtype, layout, device), the bound-pruned batched search and
   the full-grid scalar reference must pick the identical plan — same
   best config and a bit-equal re-benchmarked measurement. Each case is
   expensive (the reference walks all 806k grid leaves), so the count
   stays small; the legal-set differential above covers many more
   lattices per second and implies this property. *)
let prop_pruning_never_changes_argmax =
  let profile =
    lazy (tiny_profile (Util.Rng.create 31415) Gpu.Device.gtx980ti)
  in
  QCheck.Test.make ~name:"pruned argmax = reference argmax" ~count:5
    QCheck.small_int (fun seed ->
      let r = Util.Rng.create (seed + 9001) in
      let input =
        GP.input
          ~dtype:
            (Util.Rng.choice r [| Ptx.Types.F16; Ptx.Types.F32; Ptx.Types.F64 |])
          ~a_trans:(Util.Rng.bool r) ~b_trans:(Util.Rng.bool r)
          (1 + Util.Rng.int r 4000)
          (1 + Util.Rng.int r 512)
          (1 + Util.Rng.int r 8000)
      in
      let device =
        if Util.Rng.bool r then Gpu.Device.gtx980ti else Gpu.Device.p100
      in
      let run engine =
        (* Fresh rng per engine: identical rebench draws. *)
        Tuner.Search.exhaustive_gemm ~top_k:5 ~cap:2000 ~domains:1 ~engine
          (Util.Rng.create 55) device ~profile:(Lazy.force profile) input
      in
      match (run `Batched, run `Scalar) with
      | None, None -> true
      | Some b, Some s ->
        GP.equal_config b.best s.best
        && b.n_legal = s.n_legal
        && b.best_measurement.tflops = s.best_measurement.tflops
      | _ -> false)

let () =
  Alcotest.run "tuner"
    [ ("config space",
       [ quick "size" test_space_size;
         quick "iter count" test_space_iter_count;
         quick "value index" test_value_index;
         quick "random in grid" test_random_in_grid;
         QCheck_alcotest.to_alcotest prop_iter_pruned_equals_filtered ]);
      ("sampler",
       [ quick "learns marginals" test_sampler_learns_marginals;
         quick "dirichlet prior" test_sampler_dirichlet_prior_no_zero;
         quick "sample_legal" test_sample_legal ]);
      ("features",
       [ quick "gemm features" test_gemm_features;
         quick "query cache bit-equal" test_query_features_match_uncached;
         quick "target scaler" test_target_scaler_roundtrip ]);
      ("dataset",
       [ quick "gemm generation" test_dataset_generation;
         quick "conv generation" test_dataset_conv_generation;
         quick "parallel generation" test_dataset_parallel_generation;
         quick "kernel corpus export" test_dataset_kernel_corpus_export;
         quick "legality consistency" test_legality_split ]);
      ("profile+search",
       [ Alcotest.test_case "profile save/load" `Slow test_profile_save_load;
         Alcotest.test_case "parallel scoring" `Slow test_search_parallel_scoring;
         Alcotest.test_case "search returns legal" `Slow test_search_returns_legal;
         Alcotest.test_case "search beats median" `Slow test_search_beats_median_kernel;
         Alcotest.test_case "oracle upper bound" `Slow test_oracle_is_upper_bound;
         Alcotest.test_case "cap subsampling" `Slow test_subsample_cap ]);
      ("pruned enumeration",
       [ Alcotest.test_case "gemm legal sets match reference" `Slow
           test_pruned_legal_sets_match_reference;
         Alcotest.test_case "conv legal sets match reference" `Slow
           test_pruned_conv_legal_matches_reference;
         Alcotest.test_case "engines choose identical plans" `Slow
           test_engines_choose_identical_plans;
         Alcotest.test_case "conv engines agree" `Slow
           test_engines_choose_identical_conv_plans;
         QCheck_alcotest.to_alcotest prop_pruning_never_changes_argmax ]) ]
