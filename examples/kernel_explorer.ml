(* Kernel explorer: look inside the code generator.

   Prints the mini-PTX emitted for a small GEMM parameterization, its
   static instruction mix, the resource/occupancy picture on both
   devices, and the §8.3 bounds-checking comparison (predication vs
   divergent branches) with real dynamic instruction counts from the
   interpreter.

   Run with:  dune exec examples/kernel_explorer.exe *)

module GP = Codegen.Gemm_params

let () =
  let input = GP.input 100 100 64 in
  let config = { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 2;
                 kg = 2; vec = 1; db = 1 } in
  let program = Codegen.Gemm.generate input config in

  Printf.printf "=== Generated PTX for GEMM %dx%dx%d, %s ===\n\n" input.m input.n
    input.k (GP.describe config);
  let text = Ptx.Disasm.program program in
  (* The full listing is long; print the head and the loop skeleton. *)
  let lines = String.split_on_char '\n' text in
  List.iteri (fun i l -> if i < 40 then print_endline l) lines;
  Printf.printf "  ... (%d instructions total)\n" (Array.length program.body);

  let mix = Ptx.Analysis.of_program program in
  Printf.printf "\nStatic instruction mix: %d fma, %d ialu, %d ld.shared, %d st.shared, %d ld.global, %d bar\n"
    mix.fma mix.ialu mix.ld_shared mix.st_shared mix.ld_global mix.bar;

  (* Register allocation: the generator emits fresh virtual registers;
     liveness + linear scan recover the physical count a PTX assembler
     would use. *)
  let pr = Ptx.Regalloc.pressure program in
  let allocated = Ptx.Regalloc.allocate program in
  Printf.printf
    "\nRegister allocation: %d/%d/%d virtual f/i/p regs -> MaxLive %d/%d/%d -> allocated %d/%d/%d\n"
    program.n_fregs program.n_iregs program.n_pregs pr.fregs pr.iregs pr.pregs
    allocated.n_fregs allocated.n_iregs allocated.n_pregs;

  (* Resource usage and what the occupancy calculator makes of it. *)
  Printf.printf "\n=== Resources and occupancy ===\n";
  let cost = GP.cost input config in
  Printf.printf "threads/block %d, regs/thread %d (cost-model estimate), shared %d B\n"
    cost.threads_per_block cost.regs_per_thread cost.shared_bytes;
  List.iter
    (fun device ->
      match Gpu.Perf_model.predict device cost with
      | Some r ->
        Printf.printf "  %-12s occupancy %4.0f%%, %2d blocks/SM, bound: %s, %.2f TFLOPS\n"
          device.Gpu.Device.name (100.0 *. r.occupancy) r.blocks_per_sm
          (Gpu.Perf_model.bound_name r.bound) r.tflops
      | None -> Printf.printf "  %-12s cannot launch\n" device.Gpu.Device.name)
    Gpu.Device.all;

  (* §8.3: bounds-checking strategies, functionally and in the model. *)
  Printf.printf "\n=== Bounds checking (paper section 8.3) ===\n";
  let rng = Util.Rng.create 3 in
  let a = Array.init (input.m * input.k) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (input.k * input.n) (fun _ -> Util.Rng.uniform rng) in
  let reference = Codegen.Gemm.reference input ~a ~b in
  List.iter
    (fun (name, bounds) ->
      let out, counters = Codegen.Gemm.run_counted ~bounds input config ~a ~b () in
      let ok = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) out reference in
      Printf.printf
        "  %-11s %8d dynamic instrs (%6d masked, %5d branches) -> %s\n" name
        (Ptx.Interp.total counters) counters.predicated_off counters.branch
        (if ok then "correct" else "WRONG");
      ignore bounds)
    [ ("predicated", GP.Predicated); ("branch", GP.Branch) ];
  (* For the timing-model comparison use a compute-bound production-size
     kernel (the tiny one above is latency-bound, so extra instructions
     hide in the bubbles — itself an instructive effect). *)
  let big = GP.input 2049 2049 2048 in
  let big_cfg = { GP.ms = 8; ns = 8; ks = 1; ml = 64; nl = 64; u = 8; kl = 1;
                  kg = 1; vec = 4; db = 2 } in
  let model_time bounds =
    match Gpu.Perf_model.predict Gpu.Device.p100 (GP.cost ~bounds big big_cfg) with
    | Some r -> r.seconds
    | None -> Float.nan
  in
  let base = model_time GP.Unchecked in
  Printf.printf
    "  timing model overhead vs unchecked: predication %+.1f%%, branches %+.1f%%\n"
    (100.0 *. (model_time GP.Predicated /. base -. 1.0))
    (100.0 *. (model_time GP.Branch /. base -. 1.0))
