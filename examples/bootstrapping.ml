(* Bootstrapping: using ISAAC to speed up ISAAC.

   §5 of the paper observes that "since MLP involving small feature
   vectors rely on highly rectangular matrix computations, our system
   could itself be bootstrapped to make its own auto-tuning procedure
   more efficient": scoring 60k kernel configurations through a
   16-feature MLP is a stack of extremely skinny GEMMs — exactly the
   input class vendor libraries underserve.

   This example (1) plans the inference products of the default 32-64-32
   regression network at exhaustive-search batch sizes and compares the
   chosen kernels against the cuBLAS-like baseline, and (2) actually runs
   a small MLP forward pass through the ISAAC-planned kernels (via the
   einsum front-end) and checks it against the CPU implementation.

   Run with:  dune exec examples/bootstrapping.exe *)

module GP = Codegen.Gemm_params
module E = Frontend.Einsum

let () =
  let rng = Util.Rng.create 21 in
  let device = Gpu.Device.p100 in
  Printf.printf "Tuning GEMM on the simulated %s...\n%!" device.name;
  let engine = Isaac.tune ~samples:2500 ~epochs:15 rng device ~op:`Gemm () in

  (* The regression net scores `batch` configurations at once: the layer
     products are (batch x in) . (in x out) with in/out in 16..64. *)
  let batch = 60_000 in
  let layers = [ (16, 32); (32, 64); (64, 32); (32, 1) ] in
  Printf.printf
    "\nScoring %d configs through the 16-32-64-32-1 model = skinny GEMMs:\n" batch;
  Util.Table.print
    ~header:[| "layer product"; "ISAAC kernel"; "ISAAC"; "cuBLAS-like"; "speedup" |]
    (List.map
       (fun (inp, out) ->
         let input = GP.input batch out inp in
         let plan = Option.get (Isaac.plan_gemm engine input) in
         let cublas =
           match Baselines.Cublas.heuristic rng device input with
           | Some (_, m) -> m.tflops
           | None -> nan
         in
         [| Printf.sprintf "%dx%d . %dx%d" batch inp inp out;
            GP.describe plan.config;
            Printf.sprintf "%.2f TF" plan.measurement.tflops;
            Printf.sprintf "%.2f TF" cublas;
            Printf.sprintf "%.2fx" (plan.measurement.tflops /. cublas) |])
       layers);

  (* Forward pass of a real (random) relu MLP through the planned
     kernels, executed as mini-PTX, vs the CPU tensor path. *)
  let b = 48 and sizes = [ 16; 32; 64; 1 ] in
  let mats =
    let rec pairs = function
      | a :: (bdim :: _ as tl) -> (a, bdim) :: pairs tl
      | _ -> []
    in
    List.map
      (fun (fan_in, fan_out) ->
        (fan_in, fan_out,
         Array.init (fan_in * fan_out) (fun _ -> Util.Rng.gaussian rng *. 0.3)))
      (pairs sizes)
  in
  let x0 = Array.init (b * List.hd sizes) (fun _ -> Util.Rng.gaussian rng) in
  let relu = Array.map (fun v -> Float.max 0.0 v) in
  let forward mult =
    let n_layers = List.length mats in
    List.fold_left
      (fun (idx, act) (fan_in, fan_out, w) ->
        let z = mult act (Array.length act / fan_in) fan_in fan_out w in
        (idx + 1, if idx = n_layers - 1 then z else relu z))
      (0, x0) mats
    |> snd
  in
  let via_isaac =
    forward (fun act rows fan_in fan_out w ->
        let spec = E.parse "mk,kn->mn" in
        E.contract ~engine spec
          [ ('m', rows); ('k', fan_in); ('n', fan_out) ]
          ~a:act ~b:w)
  in
  let via_cpu =
    forward (fun act rows fan_in fan_out w ->
        let a = Mlp.Tensor.of_array ~rows ~cols:fan_in act in
        let wt = Mlp.Tensor.of_array ~rows:fan_in ~cols:fan_out w in
        (Mlp.Tensor.matmul_nn a wt).data)
  in
  (* Bonus: the same layer with the relu fused into the kernel's store
     phase (the deep-learning epilogue), checked against the reference. *)
  let fan_in, fan_out, w0 = List.hd mats in
  let input = GP.input b fan_out fan_in in
  let plan = Option.get (Isaac.plan_gemm engine input) in
  let cfg =
    if plan.config.kg = 1 then plan.config
    else { plan.config with kg = 1 }  (* epilogues require KG = 1 *)
  in
  if GP.structurally_legal input cfg then begin
    let bias = Array.init fan_out (fun j -> 0.01 *. float_of_int j) in
    let fused =
      Codegen.Gemm.run ~epilogue:GP.Bias_relu ~bias input cfg ~a:x0 ~b:w0
    in
    let reference =
      Codegen.Gemm.reference ~epilogue:GP.Bias_relu ~bias input ~a:x0 ~b:w0
    in
    let ok = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) fused reference in
    Printf.printf "  fused bias+relu epilogue in-kernel: %s\n"
      (if ok then "matches reference" else "MISMATCH")
  end;
  let max_err = ref 0.0 in
  Array.iteri
    (fun i v -> max_err := Float.max !max_err (Float.abs (v -. via_cpu.(i))))
    via_isaac;
  Printf.printf
    "\nForward pass of a %d-sample batch through ISAAC-planned kernels:\n\
    \  output[0] = %.6f, max |error| vs CPU tensor path = %.2e\n"
    b via_isaac.(0) !max_err
