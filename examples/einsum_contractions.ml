(* Tensor contractions through the einsum front-end (the paper's §9
   "flexible front-end / DSL" future-work direction).

   Shows a few contractions beyond plain GEMM — Gram matrices, batched
   attention-style products, broadcast projections — all lowered onto the
   input-aware tuned kernels and executed under the PTX interpreter.

   Run with:  dune exec examples/einsum_contractions.exe *)

module E = Frontend.Einsum

let rng = Util.Rng.create 11

let arr n = Array.init n (fun _ -> Util.Rng.uniform rng *. 2.0 -. 1.0)

let show ?engine text sizes =
  let spec = E.parse text in
  let extent idx = List.fold_left (fun acc c -> acc * List.assoc c sizes) 1 idx in
  let a = arr (extent spec.a_indices) in
  let b = arr (extent spec.b_indices) in
  let t0 = Sys.time () in
  let out = E.contract ?engine spec sizes ~a ~b in
  let dt = Sys.time () -. t0 in
  let want = E.reference spec sizes ~a ~b in
  let max_err =
    let m = ref 0.0 in
    Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. want.(i)))) out;
    !m
  in
  let batch, m, n, k = E.gemm_shape spec sizes in
  Printf.printf "  %-14s -> batched GEMM (batch=%d, M=%d, N=%d, K=%d): %d outputs, max err %.1e, %.0f ms\n%!"
    text batch m n k (Array.length out) max_err (1000.0 *. dt)

let () =
  Printf.printf "Tensor contractions lowered to tuned GEMM kernels:\n";
  let engine =
    Isaac.tune ~samples:2000 ~epochs:12 (Util.Rng.create 3) Gpu.Device.p100
      ~op:`Gemm ()
  in
  (* Classic matrix product. *)
  show ~engine "mk,kn->mn" [ ('m', 48); ('n', 40); ('k', 56) ];
  (* Gram / covariance matrix: A^T A without materializing a transpose. *)
  show ~engine "km,kn->mn" [ ('m', 24); ('n', 24); ('k', 300) ];
  (* Batched product (attention scores: queries x keys^T per head). *)
  show ~engine "bmk,bnk->bmn" [ ('b', 4); ('m', 16); ('n', 16); ('k', 32) ];
  (* Broadcast projection: one weight matrix applied to every batch. *)
  show ~engine "bmk,kn->bmn" [ ('b', 6); ('m', 20); ('n', 24); ('k', 32) ];
  (* Two contracted indices at once (a fused inner structure). *)
  show ~engine "mij,ijn->mn" [ ('m', 20); ('i', 6); ('j', 8); ('n', 20) ];
  (* Transposed output layout. *)
  show ~engine "mk,kn->nm" [ ('m', 30); ('n', 20); ('k', 25) ];
  Printf.printf
    "\nEvery contraction above was classified into batch/M/N/K index groups,\n\
     canonicalized (reusing the generator's native transposition support when\n\
     the layout allowed), planned by the tuned model, and executed as real\n\
     mini-PTX under the interpreter, then checked against a naive evaluator.\n"
