(* Quickstart: the whole ISAAC pipeline in ~40 lines.

   1. auto-tune an input-aware performance model for a device (simulated
      Tesla P100);
   2. ask it for the best kernel for a specific problem;
   3. execute that kernel — really — under the mini-PTX interpreter and
      check the numbers against a reference GEMM.

   Run with:  dune exec examples/quickstart.exe *)

module GP = Codegen.Gemm_params

let () =
  (* 1. Tune. The sample count is tiny so the example runs in seconds;
     bench/main.exe uses larger defaults. *)
  let rng = Util.Rng.create 42 in
  let device = Gpu.Device.p100 in
  Printf.printf "Tuning GEMM on the simulated %s...\n%!" device.name;
  let engine = Isaac.tune ~samples:2500 ~epochs:15 rng device ~op:`Gemm () in

  (* 2. Plan: runtime inference for one input shape (a skinny DeepBench
     matrix product, the case vendor libraries underserve). *)
  let input = GP.input 2560 32 2560 in
  let plan = Option.get (Isaac.plan_gemm engine input) in
  Printf.printf "\nFor GEMM %dx%dx%d the tuner chose: %s\n" input.m input.n input.k
    (GP.describe plan.config);
  Printf.printf "  predicted %.2f TFLOPS, re-benchmarked %.2f TFLOPS (searched %d legal kernels)\n"
    plan.predicted_tflops plan.measurement.tflops plan.n_legal;

  (* Compare with the cuBLAS-like baseline on the same simulated device. *)
  (match Baselines.Cublas.heuristic rng device input with
   | Some (c, m) ->
     Printf.printf "  cuBLAS-like heuristics pick %s -> %.2f TFLOPS (%.2fx slower)\n"
       (GP.describe c) m.tflops
       (plan.measurement.tflops /. m.tflops)
   | None -> ());

  (* 3. Execute a small instance functionally and verify. *)
  let small = GP.input 48 40 56 in
  let plan_small = Option.get (Isaac.plan_gemm engine small) in
  let a = Array.init (small.m * small.k) (fun i -> sin (float_of_int i)) in
  let b = Array.init (small.k * small.n) (fun i -> cos (float_of_int i)) in
  let c = Codegen.Gemm.run small plan_small.config ~a ~b in
  let reference = Codegen.Gemm.reference small ~a ~b in
  let max_err =
    Array.mapi (fun i v -> Float.abs (v -. reference.(i))) c
    |> Array.fold_left Float.max 0.0
  in
  Printf.printf
    "\nExecuted the generated kernel on a %dx%dx%d instance under the PTX interpreter:\n"
    small.m small.n small.k;
  Printf.printf "  max |error| vs reference GEMM = %.2e %s\n" max_err
    (if max_err < 1e-9 then "(exact up to fp rounding)" else "(MISMATCH!)")
