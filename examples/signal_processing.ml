(* Signal processing: covariance products for Independent Component
   Analysis.

   ICA whitening computes C = X·Xᵀ where X is (channels x samples) with
   channels tiny (32-256) and samples huge (60000 in the paper's Table 4).
   This is the regime where the paper found cuBLAS heuristics losing an
   order of magnitude: without aggressive reduction splitting, a 32x32
   output grid cannot occupy a GPU.

   This example (1) shows the kernels ISAAC picks across channel counts —
   all three reduction-splitting mechanisms fire — and (2) computes a
   real (scaled-down) covariance through the generated kernel and checks
   it against a reference.

   Run with:  dune exec examples/signal_processing.exe *)

module GP = Codegen.Gemm_params

let () =
  let rng = Util.Rng.create 13 in
  let device = Gpu.Device.gtx980ti in
  Printf.printf "Tuning GEMM on the simulated %s...\n%!" device.name;
  let engine = Isaac.tune ~samples:2500 ~epochs:15 rng device ~op:`Gemm () in

  Printf.printf "\nCovariance products C = X Xt, 60000 samples:\n";
  Util.Table.print
    ~header:[| "channels"; "chosen kernel"; "Ks x KL x KG"; "ISAAC"; "cuBLAS-like";
               "best cuBLAS kernel" |]
    (List.map
       (fun channels ->
         let input = GP.input ~b_trans:true channels channels 60000 in
         let plan = Option.get (Isaac.plan_gemm engine input) in
         let fmt = function
           | Some (_, (m : Gpu.Executor.measurement)) -> Printf.sprintf "%.2f TF" m.tflops
           | None -> "-"
         in
         [| string_of_int channels;
            Printf.sprintf "%dx%dx%d" plan.config.ml plan.config.nl plan.config.u;
            Printf.sprintf "%d x %d x %d" plan.config.ks plan.config.kl plan.config.kg;
            Printf.sprintf "%.2f TF" plan.measurement.tflops;
            fmt (Baselines.Cublas.heuristic rng device input);
            fmt (Baselines.Cublas.best_kernel rng device input) |])
       [ 32; 64; 256 ]);
  Printf.printf
    "(The reduction over 60000 samples is split between registers (Ks), warps (KL)\n\
    \ and grid blocks accumulating through global atomics (KG).)\n";

  (* Functional check on a scaled-down instance: 16 channels x 2048
     samples of two sinusoidal sources mixed linearly. *)
  let channels = 16 and samples = 2048 in
  let x =
    Array.init (channels * samples) (fun idx ->
        let ch = idx / samples and t = float_of_int (idx mod samples) in
        let s1 = sin (0.01 *. t) and s2 = sin (0.031 *. t +. 0.5) in
        (float_of_int (ch + 1) /. 8.0 *. s1) +. (float_of_int (channels - ch) /. 8.0 *. s2))
  in
  let input = GP.input ~b_trans:true channels channels samples in
  let plan = Option.get (Isaac.plan_gemm engine input) in
  (* X is channels x samples row-major; C = X Xt means B = X with the
     "transposed" layout, i.e. the same buffer. *)
  let c = Codegen.Gemm.run input plan.config ~a:x ~b:x in
  let reference = Codegen.Gemm.reference input ~a:x ~b:x in
  let max_rel = ref 0.0 in
  Array.iteri
    (fun i v ->
      let w = reference.(i) in
      max_rel := Float.max !max_rel (Float.abs (v -. w) /. (1.0 +. Float.abs w)))
    c;
  Printf.printf
    "\nComputed a %dx%d covariance from %d samples through the generated kernel (%s):\n"
    channels channels samples (GP.describe plan.config);
  Printf.printf "  C[0,0] = %.4f, C[0,%d] = %.4f, max relative error vs reference = %.2e\n"
    c.(0) (channels - 1) c.(channels - 1) !max_rel
