(* Deep learning workloads: input-aware tuning across batch sizes and
   convolution layers.

   The paper's motivating observation is that a library tuned for square
   matrices collapses on the skinny products of RNN/MLP training
   (DeepBench) and that cuDNN underserves unusual convolutions. This
   example tunes one GEMM engine and one CONV engine and walks both
   through a training-style workload, showing how the chosen tiling
   follows the input — the N-tile tracks the batch size, and deep
   reduction layers get their reduction split.

   Run with:  dune exec examples/deep_learning.exe *)

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let () =
  let rng = Util.Rng.create 7 in
  let device = Gpu.Device.p100 in
  Printf.printf "Tuning GEMM + CONV engines on the simulated %s...\n%!" device.name;
  let gemm_engine = Isaac.tune ~samples:2500 ~epochs:15 rng device ~op:`Gemm () in
  let conv_engine = Isaac.tune ~samples:2000 ~epochs:15 rng device ~op:`Conv () in

  (* A fully-connected layer, forward pass: (hidden x batch) products. *)
  Printf.printf "\nFully-connected layer (M=K=2560) across batch sizes:\n";
  Util.Table.print
    ~header:[| "batch"; "chosen tile (ML x NL)"; "splits KLxKG"; "ISAAC"; "cuBLAS-like" |]
    (List.map
       (fun batch ->
         let input = GP.input 2560 batch 2560 in
         let plan = Option.get (Isaac.plan_gemm gemm_engine input) in
         let cublas =
           match Baselines.Cublas.heuristic rng device input with
           | Some (_, m) -> Printf.sprintf "%.2f TF" m.tflops
           | None -> "-"
         in
         [| string_of_int batch;
            Printf.sprintf "%d x %d" plan.config.ml plan.config.nl;
            Printf.sprintf "%d x %d" plan.config.kl plan.config.kg;
            Printf.sprintf "%.2f TF" plan.measurement.tflops;
            cublas |])
       [ 16; 32; 64; 128; 256 ]);
  Printf.printf
    "(Note how NL tracks the batch size while cuBLAS's fixed 64/128-wide tiles cannot.)\n";

  (* Three structurally different convolution layers from Table 5. *)
  Printf.printf "\nConvolution layers (Table 5 shapes):\n";
  Util.Table.print
    ~header:[| "layer"; "NPQ"; "CRS"; "chosen config"; "ISAAC"; "cuDNN-like" |]
    (List.map
       (fun label ->
         let task = Workloads.Conv_suites.find label Ptx.Types.F32 in
         let plan = Option.get (Isaac.plan_conv conv_engine task.input) in
         let cudnn =
           match Baselines.Cudnn.heuristic rng device task.input with
           | Some (_, m) -> Printf.sprintf "%.2f TF" m.tflops
           | None -> "-"
         in
         [| label;
            string_of_int (CP.npq task.input);
            string_of_int (CP.crs task.input);
            GP.describe plan.config;
            Printf.sprintf "%.2f TF" plan.measurement.tflops;
            cudnn |])
       [ "Conv1"; "Conv8"; "Conv14" ]);
  Printf.printf
    "(Conv8's C.R.S = 20800 reduction gets split across the grid; Conv14 degenerates to GEMM.)\n"
