(* Plan-serving daemon core: protocol handling and hot-reload, shared
   by the stdin-JSONL and Unix-socket transports in bin/isaac_serve.

   The daemon is one resident Isaac engine per op (GEMM / CONV), both
   backed by the sharded coalescing Plan_cache, so any number of
   transport workers can call [handle] concurrently: lookups are
   lock-free, and racing cold requests coalesce onto one planning run.

   Profiles hot-reload: each engine slot remembers the
   Util.Artifact fingerprint of its profile file, and [maybe_reload]
   (called on a rate-limited schedule by the transports, or forced by
   the [reload] request) swaps in a freshly built engine when the file
   changed on disk. Swapping the whole engine — rather than mutating
   the old one — means in-flight requests finish against the profile
   they started with, and the plan cache restarts cold (plans from the
   old profile are stale by definition). *)

let t_requests = Obs.Telemetry.counter "serve.requests"
let t_coalesced = Obs.Telemetry.counter "serve.coalesced"
let t_errors = Obs.Telemetry.counter "serve.errors"
let t_reloads = Obs.Telemetry.counter "serve.reloads"
let t_latency = Obs.Telemetry.histo "serve.latency_s"

type slot = {
  path : string;
  mutable fp : Util.Artifact.fingerprint;  (* guarded by [reload_lock] *)
  engine : Isaac.t Atomic.t;
}

type t = {
  device : Gpu.Device.t;
  gemm : slot option;
  conv : slot option;
  cache_entries : int option;
  cache_bytes : int option;
  reload_lock : Mutex.t;
  mutable last_reload_check : float;  (* guarded by [reload_lock] *)
  reload_interval : float;
  requests : int Atomic.t;
  errors : int Atomic.t;
  reloads : int Atomic.t;
  started_at : float;
}

let device_of_name name =
  match List.find_opt (fun (d : Gpu.Device.t) -> d.name = name) Gpu.Device.all with
  | Some d -> d
  | None -> failwith ("profile tuned on unknown device " ^ name)

let load_slot ?cache_entries ?cache_bytes ~op path =
  match Tuner.Profile.load path with
  | Error msg -> Error msg
  | Ok profile ->
    if profile.op <> op then
      Error
        (Printf.sprintf "%s: profile is for op %s, expected %s" path
           (match profile.op with `Gemm -> "gemm" | `Conv -> "conv")
           (match op with `Gemm -> "gemm" | `Conv -> "conv"))
    else (
      match Util.Artifact.fingerprint ~path with
      | Error e -> Error (Util.Artifact.error_to_string ~path e)
      | Ok fp ->
        let device = device_of_name profile.device in
        let engine =
          Isaac.of_profile ?cache_entries ?cache_bytes ~metrics_prefix:"serve"
            device profile
        in
        Ok { path; fp; engine = Atomic.make engine })

let create ?cache_entries ?cache_bytes ?(reload_interval = 2.0) ?gemm_profile
    ?conv_profile () =
  match (gemm_profile, conv_profile) with
  | None, None -> Error "no profile given: need a GEMM and/or CONV profile"
  | _ -> (
    let load op = function
      | None -> Ok None
      | Some path ->
        Result.map Option.some (load_slot ?cache_entries ?cache_bytes ~op path)
    in
    match load `Gemm gemm_profile with
    | Error e -> Error e
    | Ok gemm -> (
      match load `Conv conv_profile with
      | Error e -> Error e
      | Ok conv ->
        let device_of slot = Isaac.device (Atomic.get slot.engine) in
        let device =
          match (gemm, conv) with
          | Some g, _ -> device_of g
          | None, Some c -> device_of c
          | None, None -> assert false
        in
        (match conv with
         | Some c when (device_of c).name <> device.name ->
           failwith
             (Printf.sprintf "profiles tuned on different devices (%s vs %s)"
                device.name (device_of c).name)
         | _ -> ());
        Ok
          { device;
            gemm;
            conv;
            cache_entries;
            cache_bytes;
            reload_lock = Mutex.create ();
            last_reload_check = Unix.gettimeofday ();
            reload_interval;
            requests = Atomic.make 0;
            errors = Atomic.make 0;
            reloads = Atomic.make 0;
            started_at = Unix.gettimeofday () }))

let device t = t.device

(* --- hot reload -------------------------------------------------------- *)

(* Serialized on [reload_lock]; rate-limited to one stat() pair per
   [reload_interval] unless [force]d. A reload failure (file mid-write,
   wrong device, corrupt artifact) keeps the old engine serving and is
   reported to stderr — the daemon never degrades below its last good
   profile. *)
let reload_slot t slot =
  match Util.Artifact.fingerprint_changed ~path:slot.path slot.fp with
  | Error e ->
    Printf.eprintf "isaac_serve: reload check failed: %s\n%!"
      (Util.Artifact.error_to_string ~path:slot.path e);
    false
  | Ok (`Unchanged fp) ->
    slot.fp <- fp;
    false
  | Ok (`Changed fp) -> (
    match Tuner.Profile.load slot.path with
    | Error msg ->
      Printf.eprintf "isaac_serve: reload of %s failed: %s\n%!" slot.path msg;
      false
    | Ok profile ->
      if profile.device <> t.device.name then (
        Printf.eprintf
          "isaac_serve: reload of %s skipped: profile now targets %s, daemon \
           serves %s\n\
           %!"
          slot.path profile.device t.device.name;
        false)
      else begin
        let engine =
          Isaac.of_profile ?cache_entries:t.cache_entries
            ?cache_bytes:t.cache_bytes ~metrics_prefix:"serve" t.device profile
        in
        Atomic.set slot.engine engine;
        slot.fp <- fp;
        Atomic.incr t.reloads;
        if Obs.Telemetry.enabled () then Obs.Telemetry.Counter.incr t_reloads;
        true
      end)

let maybe_reload ?(force = false) t =
  Mutex.lock t.reload_lock;
  let now = Unix.gettimeofday () in
  let due = force || now -. t.last_reload_check >= t.reload_interval in
  let reloaded =
    if not due then 0
    else begin
      t.last_reload_check <- now;
      let n = ref 0 in
      Option.iter (fun s -> if reload_slot t s then incr n) t.gemm;
      Option.iter (fun s -> if reload_slot t s then incr n) t.conv;
      !n
    end
  in
  Mutex.unlock t.reload_lock;
  reloaded

(* --- request parsing --------------------------------------------------- *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let field_int ?default json name =
  match Obs.Json.member name json with
  | None -> (
    match default with
    | Some d -> d
    | None -> bad "missing integer field %S" name)
  | Some v -> (
    match Obs.Json.to_int v with
    | Some i -> i
    | None -> bad "field %S must be an integer" name)

let field_bool ~default json name =
  match Obs.Json.member name json with
  | None -> default
  | Some v -> (
    match Obs.Json.to_bool v with
    | Some b -> b
    | None -> bad "field %S must be a boolean" name)

let field_dtype json =
  match Obs.Json.member "dtype" json with
  | None -> Ptx.Types.F32
  | Some v -> (
    match Obs.Json.to_str v with
    | Some "f16" -> Ptx.Types.F16
    | Some "f32" -> Ptx.Types.F32
    | Some "f64" -> Ptx.Types.F64
    | Some s -> bad "unknown dtype %S (f16/f32/f64)" s
    | None -> bad "field \"dtype\" must be a string")

(* --- responses --------------------------------------------------------- *)

let json_of_plan (plan : Isaac.plan) =
  let c = plan.config in
  Obs.Json.Obj
    [ ("ms", Obs.Json.Int c.ms);
      ("ns", Obs.Json.Int c.ns);
      ("ks", Obs.Json.Int c.ks);
      ("ml", Obs.Json.Int c.ml);
      ("nl", Obs.Json.Int c.nl);
      ("u", Obs.Json.Int c.u);
      ("kl", Obs.Json.Int c.kl);
      ("kg", Obs.Json.Int c.kg);
      ("vec", Obs.Json.Int c.vec);
      ("db", Obs.Json.Int c.db);
      ("predicted_tflops", Obs.Json.Float plan.predicted_tflops);
      ("tflops", Obs.Json.Float plan.measurement.tflops);
      ("n_legal", Obs.Json.Int plan.n_legal);
      ( "kernel_hash",
        match plan.kernel_hash with
        | Some h -> Obs.Json.String (Printf.sprintf "%016Lx" h)
        | None -> Obs.Json.Null ) ]

let respond_plan ~id ~op ~latency_s (plan, outcome) =
  Obs.Json.Obj
    [ ("id", id);
      ("ok", Obs.Json.Bool true);
      ("op", Obs.Json.String op);
      ("cache", Obs.Json.String (Isaac.Plan_cache.outcome_name outcome));
      ("latency_s", Obs.Json.Float latency_s);
      ( "plan",
        match plan with Some p -> json_of_plan p | None -> Obs.Json.Null ) ]

let respond_error ~id msg =
  Obs.Json.Obj
    [ ("id", id); ("ok", Obs.Json.Bool false);
      ("error", Obs.Json.String msg) ]

let json_of_cache_stats (s : Isaac.Plan_cache.stats) =
  Obs.Json.Obj
    [ ("hits", Obs.Json.Int s.hits);
      ("misses", Obs.Json.Int s.misses);
      ("coalesced", Obs.Json.Int s.coalesced);
      ("evictions", Obs.Json.Int s.evictions);
      ("entries", Obs.Json.Int s.entries);
      ("bytes", Obs.Json.Int s.bytes) ]

let stats_response t ~id =
  let cache =
    let zero : Isaac.Plan_cache.stats =
      { hits = 0; misses = 0; coalesced = 0; evictions = 0; entries = 0;
        bytes = 0 }
    in
    let add acc = function
      | None -> acc
      | Some slot ->
        Isaac.Plan_cache.merge_stats acc
          (Isaac.cache_stats (Atomic.get slot.engine))
    in
    add (add zero t.gemm) t.conv
  in
  Obs.Json.Obj
    [ ("id", id);
      ("ok", Obs.Json.Bool true);
      ("op", Obs.Json.String "stats");
      ("device", Obs.Json.String t.device.name);
      ("uptime_s", Obs.Json.Float (Unix.gettimeofday () -. t.started_at));
      ("requests", Obs.Json.Int (Atomic.get t.requests));
      ("errors", Obs.Json.Int (Atomic.get t.errors));
      ("reloads", Obs.Json.Int (Atomic.get t.reloads));
      ("cache", json_of_cache_stats cache);
      ( "telemetry",
        if Obs.Telemetry.enabled () then Obs.Telemetry.snapshot_json ()
        else Obs.Json.Null ) ]

(* --- dispatch ---------------------------------------------------------- *)

let engine_for t = function
  | `Gemm -> (
    match t.gemm with
    | Some s -> Atomic.get s.engine
    | None -> bad "no GEMM profile loaded (start with --profile)")
  | `Conv -> (
    match t.conv with
    | Some s -> Atomic.get s.engine
    | None -> bad "no CONV profile loaded (start with --conv-profile)")

let record_request t outcome latency_s =
  Atomic.incr t.requests;
  if Obs.Telemetry.enabled () then begin
    Obs.Telemetry.Counter.incr t_requests;
    Obs.Telemetry.Histo.observe t_latency latency_s;
    match (outcome : Isaac.Plan_cache.outcome) with
    | Coalesced -> Obs.Telemetry.Counter.incr t_coalesced
    | Hit | Miss -> ()
  end

let handle_gemm t json ~id =
  let input =
    Codegen.Gemm_params.input ~dtype:(field_dtype json)
      ~a_trans:(field_bool ~default:false json "a_trans")
      ~b_trans:(field_bool ~default:false json "b_trans")
      (field_int json "m") (field_int json "n") (field_int json "k")
  in
  let engine = engine_for t `Gemm in
  let t0 = Unix.gettimeofday () in
  let result = Isaac.plan_gemm_with_status engine input in
  let latency_s = Unix.gettimeofday () -. t0 in
  record_request t (snd result) latency_s;
  respond_plan ~id ~op:"gemm" ~latency_s result

let handle_conv t json ~id =
  let input =
    Codegen.Conv_params.input ~dtype:(field_dtype json)
      ~stride:(field_int ~default:1 json "stride")
      ~pad:(field_int ~default:0 json "pad")
      ~n:(field_int json "n") ~c:(field_int json "c") ~k:(field_int json "k")
      ~p:(field_int json "p") ~q:(field_int json "q") ~r:(field_int json "r")
      ~s:(field_int json "s") ()
  in
  let engine = engine_for t `Conv in
  let t0 = Unix.gettimeofday () in
  let result = Isaac.plan_conv_with_status engine input in
  let latency_s = Unix.gettimeofday () -. t0 in
  record_request t (snd result) latency_s;
  respond_plan ~id ~op:"conv" ~latency_s result

let handle t line =
  let id = ref Obs.Json.Null in
  match
    let json =
      try Obs.Json.of_string line
      with Obs.Json.Parse_error msg -> bad "parse error: %s" msg
    in
    (match Obs.Json.member "id" json with Some v -> id := v | None -> ());
    let op =
      match Option.bind (Obs.Json.member "op" json) Obs.Json.to_str with
      | Some op -> op
      | None -> bad "missing string field \"op\""
    in
    match op with
    | "ping" ->
      ( Obs.Json.Obj
          [ ("id", !id); ("ok", Obs.Json.Bool true);
            ("op", Obs.Json.String "ping") ],
        `Continue )
    | "stats" -> (stats_response t ~id:!id, `Continue)
    | "reload" ->
      let n = maybe_reload ~force:true t in
      ( Obs.Json.Obj
          [ ("id", !id); ("ok", Obs.Json.Bool true);
            ("op", Obs.Json.String "reload"); ("reloaded", Obs.Json.Int n) ],
        `Continue )
    | "shutdown" ->
      ( Obs.Json.Obj
          [ ("id", !id); ("ok", Obs.Json.Bool true);
            ("op", Obs.Json.String "shutdown") ],
        `Stop )
    | "gemm" ->
      ignore (maybe_reload t);
      (handle_gemm t json ~id:!id, `Continue)
    | "conv" ->
      ignore (maybe_reload t);
      (handle_conv t json ~id:!id, `Continue)
    | op -> bad "unknown op %S (ping/stats/reload/gemm/conv/shutdown)" op
  with
  | response, verdict -> (Obs.Json.to_string response, verdict)
  | exception Bad_request msg ->
    Atomic.incr t.errors;
    if Obs.Telemetry.enabled () then Obs.Telemetry.Counter.incr t_errors;
    (Obs.Json.to_string (respond_error ~id:!id msg), `Continue)
  | exception exn ->
    Atomic.incr t.errors;
    if Obs.Telemetry.enabled () then Obs.Telemetry.Counter.incr t_errors;
    ( Obs.Json.to_string (respond_error ~id:!id (Printexc.to_string exn)),
      `Continue )
