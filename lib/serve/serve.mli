(** Plan-serving daemon core — the transport-independent half of
    [isaac_serve].

    One {!t} holds a resident {!Isaac.t} engine per op (GEMM / CONV),
    both backed by the sharded coalescing {!Isaac.Plan_cache}, so any
    number of transport workers (domains reading a Unix socket, or the
    single stdin loop) may call {!handle} concurrently: plan lookups
    are lock-free and racing cold requests coalesce onto one planning
    run.

    {b Protocol} (one JSON object per line, see DESIGN.md "Plan
    serving" for the full schema): requests carry [op] ∈ [ping], [stats],
    [reload], [gemm], [conv], [shutdown] plus an optional [id] echoed
    back verbatim. Plan responses report [cache] ∈ ["hit"] / ["miss"] /
    ["coalesced"], the request [latency_s], and the chosen kernel
    configuration ([plan], [null] when no kernel is legal — that
    negative result is cached too, so the retry is a hit).

    {b Telemetry}: [serve.requests] / [serve.coalesced] /
    [serve.errors] / [serve.reloads] counters, a [serve.latency_s]
    histogram, and [serve.evictions] from the underlying caches
    (cache-hit ages land in the engine-level [plan.cache_hit_age_s]
    histogram). [serve.requests] counts only plan ops — [ping] /
    [stats] / [reload] probes don't pollute the load counters. *)

type t

val create :
  ?cache_entries:int ->
  ?cache_bytes:int ->
  ?reload_interval:float ->
  ?gemm_profile:string ->
  ?conv_profile:string ->
  unit ->
  (t, string) result
(** Load the given profile files (at least one required; both must
    target the same device) and build the resident engines.
    [cache_entries] / [cache_bytes] bound each per-op plan cache (LRU
    beyond them). [reload_interval] (default 2s) rate-limits the
    on-request hot-reload fingerprint checks. *)

val device : t -> Gpu.Device.t

val handle : t -> string -> string * [ `Continue | `Stop ]
(** Process one request line, returning the one-line JSON response and
    whether the transport should keep going ([`Stop] only for the
    [shutdown] op). Never raises: malformed requests produce an
    [{"ok":false,"error":..}] response. Safe to call from multiple
    domains. *)

val maybe_reload : ?force:bool -> t -> int
(** Re-check the profile files' {!Util.Artifact.fingerprint}s and swap
    in freshly built engines for any that changed on disk, returning
    how many were reloaded. Rate-limited to one check per
    [reload_interval] unless [force]d (the [reload] request forces).
    In-flight requests finish against the engine they started with; a
    swapped engine starts with a cold plan cache (old plans are stale
    by definition). Reload failures keep the previous engine serving. *)
