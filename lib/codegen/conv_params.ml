type input = {
  n : int;
  c : int;
  k : int;
  p : int;
  q : int;
  r : int;
  s : int;
  stride : int;
  pad : int;
  dtype : Ptx.Types.dtype;
}

let input ?(dtype = Ptx.Types.F32) ?(stride = 1) ?(pad = 0) ~n ~c ~k ~p ~q ~r ~s () =
  assert (stride >= 1 && pad >= 0);
  { n; c; k; p; q; r; s; stride; pad; dtype }

(* Input spatial extents, from the output size, filter, stride and
   padding: H = (P-1)*stride + R - 2*pad. *)
let h i = ((i.p - 1) * i.stride) + i.r - (2 * i.pad)
let w i = ((i.q - 1) * i.stride) + i.s - (2 * i.pad)

(* Extents of the zero-padded image the kernel actually gathers from. *)
let h_padded i = h i + (2 * i.pad)
let w_padded i = w i + (2 * i.pad)
let npq i = i.n * i.p * i.q
let crs i = i.c * i.r * i.s

let gemm_input i = Gemm_params.input ~dtype:i.dtype (npq i) i.k (crs i)

let structurally_legal i cfg = Gemm_params.structurally_legal (gemm_input i) cfg

let describe_name i (cfg : Gemm_params.config) =
  Printf.sprintf "conv_%s_n%dc%dk%d_p%dq%dr%ds%d_%dx%dx%d"
    (Ptx.Types.dtype_name i.dtype) i.n i.c i.k i.p i.q i.r i.s cfg.ml cfg.nl cfg.u

let cost ?bounds i (cfg : Gemm_params.config) =
  let base = Gemm_params.cost ?bounds (gemm_input i) cfg in
  let threads = Gemm_params.threads_per_block cfg in
  let la = cfg.ml * cfg.u / threads in
  let uc = cfg.u / cfg.kl in
  (* Each staged image element costs two table lookups plus an add; the
     tables are tiny and L2-resident, so they add instructions and a
     little L2 traffic rather than DRAM bandwidth. *)
  let gather_ialu = 3.0 *. float_of_int la in
  let fmas_per_thread_iter =
    float_of_int (cfg.ms * cfg.ns * uc)
    /. (if base.vectorized_fp16 then 2.0 else 1.0)
  in
  (* Patch overlap: the im2col A-operand charges every output its full
     R·S window, but ml consecutive outputs along a row stride through
     the image and share window columns — a tile touches about
     (ml·stride + s − 1) distinct columns where im2col counts ml·s. The
     interpreter's transaction counters see the deduplicated accesses
     (equal addresses broadcast within a warp, neighbours share
     segments), and so do DRAM and L2 on real hardware. *)
  let overlap =
    Float.min 1.0
      (float_of_int ((cfg.ml * i.stride) + i.s - 1)
      /. float_of_int (cfg.ml * i.s))
  in
  { base with
    name = describe_name i cfg;
    ialu_per_fma = base.ialu_per_fma +. (gather_ialu /. fmas_per_thread_iter);
    load_a_bytes = base.load_a_bytes *. overlap;
    coalescing = base.coalescing *. 0.9;
    tx_coalescing = base.tx_coalescing *. 0.9;
    mlp = Float.max 1.0 (base.mlp *. 0.75) }
