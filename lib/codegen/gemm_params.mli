(** Parameterization of the GEMM kernel generator (paper §3.2, Figure 3).

    An {e input} is what the user fixes at runtime — shapes, data-type and
    transposition layouts (6 parameters). A {e config} is what the
    auto-tuner controls — the 10 tuning parameters. Together they span the
    N^16 space of §4.

    Legality is split in two layers, mirroring the paper's X ⊂ X̂:
    {!structurally_legal} checks divisibility/shape constraints knowable
    from the parameterization alone, and device legality (registers,
    shared memory) is checked by {!Gpu.Executor.legal} on the generated
    cost descriptor. *)

type input = {
  m : int;
  n : int;
  k : int;
  dtype : Ptx.Types.dtype;
  a_trans : bool;  (** A is stored K-major ("T" in BLAS terms) *)
  b_trans : bool;
}

type config = {
  ms : int;  (** M_S: per-thread tile height *)
  ns : int;  (** N_S: per-thread tile width *)
  ks : int;  (** K_S: register-level reduction split (independent chains) *)
  ml : int;  (** M_L: per-block tile height *)
  nl : int;  (** N_L: per-block tile width *)
  u : int;   (** U: shared-memory prefetch depth along K *)
  kl : int;  (** K_L: block-level reduction split (extra warps) *)
  kg : int;  (** K_G: grid-level reduction split (global atomics) *)
  vec : int; (** vector width of global fetches (1, 2, 4) *)
  db : int;  (** staging buffers: 1 = single, 2 = double buffering *)
}

(** How out-of-bounds accesses are handled (paper §8.3). *)
type bounds_mode =
  | Predicated  (** PTX predication: ~2% overhead *)
  | Branch      (** CUDA-C-style divergent branches: 15–20% overhead *)
  | Unchecked   (** no checks; only legal for exactly-divisible shapes *)

(** Fused epilogues, the staple of deep-learning GEMM libraries: apply a
    per-column bias and/or a relu inside the kernel's store phase rather
    than in a separate pass. Requires K_G = 1 (the atomics of a
    grid-level reduction split cannot carry a nonlinear epilogue). *)
type epilogue = Plain | Relu | Bias | Bias_relu

val input : ?dtype:Ptx.Types.dtype -> ?a_trans:bool -> ?b_trans:bool ->
  int -> int -> int -> input
(** [input m n k] with fp32 non-transposed defaults. *)

val values_ms : int array
val values_ns : int array
val values_ks : int array
val values_ml : int array
val values_nl : int array
val values_u : int array
val values_kl : int array
val values_kg : int array
val values_vec : int array
val values_db : int array
(** Candidate values of each tuning parameter (the X̂ grid). *)

val config_of_array : int array -> config
val config_to_array : config -> int array
(** Conversion to/from the flat 10-vector ordering
    \[ms; ns; ks; ml; nl; u; kl; kg; vec; db\]. *)

val threads_per_block : config -> int
(** (M_L/M_S)·(N_L/N_S)·K_L. *)

val structurally_legal : input -> config -> bool
(** Divisibility and size constraints (device-independent, but
    input-dependent through K vs K_G·U). *)

val shared_words : config -> int
(** Shared-memory footprint in compute-dtype words (staging, double
    buffering, and the K_L reduction scratch, which reuses the staging
    allocation). *)

val regs_estimate : input -> config -> int
(** Register pressure estimate per thread (accumulators + fragments +
    staging + addressing), matching what a PTX assembler would allocate. *)

val cost : ?bounds:bounds_mode -> input -> config -> Gpu.Kernel_cost.t
(** Timing-model descriptor for this (input, config) pair. Requires
    [structurally_legal input config]. *)

val describe : config -> string
(** Short human-readable form, e.g. "64x32x8 ms2 ns4 ks1 kl1 kg4 v2 db2". *)

val describe_name : input -> config -> string
(** Kernel-name form, e.g. "gemm_f32_nt_64x32x8_t128". *)

val equal_config : config -> config -> bool
