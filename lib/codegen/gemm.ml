open Ptx.Types
module B = Ptx.Builder
module I = Ptx.Instr
module P = Gemm_params

let ceil_div a b = (a + b - 1) / b

let grid (i : P.input) (c : P.config) = (ceil_div i.m c.ml, ceil_div i.n c.nl, c.kg)
let block (c : P.config) = (P.threads_per_block c, 1, 1)

(* Emit a bounds-checked global load of [slot][addr] into freg [dst],
   leaving 0 when the guard predicate [p] is false. The three §8.3
   strategies share a call site. *)
let emit_guarded_load b ~bounds ~p ~dst ~slot ~addr =
  B.emit b (I.Movf (dst, Fimm 0.0));
  match (bounds : P.bounds_mode) with
  | Unchecked -> B.emit b (I.Ld_global (dst, slot, Ireg addr))
  | Predicated -> B.emit b ~guard:(p, true) (I.Ld_global (dst, slot, Ireg addr))
  | Branch ->
    let skip = B.fresh_label b "skip_ld" in
    B.emit b ~guard:(p, false) (I.Bra skip);
    B.emit b (I.Ld_global (dst, slot, Ireg addr));
    B.place_label b skip

let generate_gen ?(bounds = P.Predicated) ?(alpha = 1.0) ?(beta = 0.0) ?(batch = 1)
    ?(epilogue = P.Plain) ~gather (i : P.input) (c : P.config) =
  assert (P.structurally_legal i c);
  assert (batch >= 1);
  assert (batch = 1 || not gather);
  assert (epilogue = P.Plain || c.kg = 1);
  (* Grid-level reduction splitting accumulates through atomics, so the
     beta term must be folded into C before launch (see [run]). *)
  assert (c.kg = 1 || beta = 0.0);
  let b = B.create ~name:(P.describe_name i c) ~dtype:i.dtype in
  let a_slot = B.buf_param b "A" in
  let b_slot = B.buf_param b "B" in
  let c_slot = B.buf_param b "C" in
  (* Implicit-GEMM gather (CONV, §3.3): A row/reduction indices go through
     precomputed indirection tables, "scrambling" loads from the image
     exactly as cuDNN's IMPLICIT_PRECOMP_GEMM does. Tables are padded to
     tile boundaries by the caller so the lookups themselves need no
     bounds predicate. *)
  let lut_slots =
    if gather then Some (B.buf_param b "LUT_ROW", B.buf_param b "LUT_DELTA") else None
  in
  let bias_slot =
    match epilogue with
    | P.Bias | P.Bias_relu -> Some (B.buf_param b "BIAS")
    | P.Plain | P.Relu -> None
  in
  let pm = B.int_param b "M" in
  let pn = B.int_param b "N" in
  let pk = B.int_param b "K" in
  let threads = P.threads_per_block c in
  let mn_threads = c.ml / c.ms * (c.nl / c.ns) in
  let uc = c.u / c.kl in
  let la = c.ml * c.u / threads in
  let lb = c.nl * c.u / threads in
  (* Shared layout: A panel [u][ml] at 0, B panel [u][nl] after it; the
     K_L reduction scratch reuses the staging region once the main loop is
     done. *)
  let as_base = 0 in
  let bs_base = c.ml * c.u in
  B.set_shared b ~words:(P.shared_words c) ~int_words:0;

  (* Thread decomposition. *)
  let tid = B.mov_i b (Ispecial Tid_x) in
  let tmn = B.rem_i b (Ireg tid) (Iimm mn_threads) in
  let tk = B.div_i b (Ireg tid) (Iimm mn_threads) in
  let tm = B.rem_i b (Ireg tmn) (Iimm (c.ml / c.ms)) in
  let tn = B.div_i b (Ireg tmn) (Iimm (c.ml / c.ms)) in
  let tm_ms = B.mul_i b (Ireg tm) (Iimm c.ms) in
  let tn_ns = B.mul_i b (Ireg tn) (Iimm c.ns) in
  let row0 = B.mul_i b (Ispecial Ctaid_x) (Iimm c.ml) in
  (* Strided batching folds the batch index into the Y grid dimension
     (ctaid.y = batch_index * gn + column_block), like
     cublasGemmStridedBatched: each batch element's operands live at
     fixed strides in the same buffers. *)
  let gn = ceil_div i.n c.nl in
  let col0, a_base, b_base, c_base =
    if batch = 1 then
      (B.mul_i b (Ispecial Ctaid_y) (Iimm c.nl), None, None, None)
    else begin
      let bn = B.rem_i b (Ispecial Ctaid_y) (Iimm gn) in
      let bidx = B.div_i b (Ispecial Ctaid_y) (Iimm gn) in
      ( B.mul_i b (Ireg bn) (Iimm c.nl),
        Some (B.mul_i b (Ireg bidx) (Iimm (i.m * i.k))),
        Some (B.mul_i b (Ireg bidx) (Iimm (i.k * i.n))),
        Some (B.mul_i b (Ireg bidx) (Iimm (i.m * i.n))) )
    end
  in
  let with_base base addr =
    match base with None -> addr | Some off -> B.add_i b (Ireg off) (Ireg addr)
  in

  (* K-range of this grid slice (K_G splitting). *)
  let ktmp = B.add_i b pk (Iimm (c.kg - 1)) in
  let kc = B.div_i b (Ireg ktmp) (Iimm c.kg) in
  let k0 = B.mul_i b (Ispecial Ctaid_z) (Ireg kc) in
  let kend_raw = B.add_i b (Ireg k0) (Ireg kc) in
  let kend = B.min_i b (Ireg kend_raw) pk in

  (* Accumulators: ms*ns*ks independent chains. *)
  let acc =
    Array.init (c.ms * c.ns * c.ks)
      (fun _ ->
        let r = B.fresh_f b in
        B.emit b (I.Movf (r, Fimm 0.0));
        r)
  in
  let fa = Array.init c.ms (fun _ -> B.fresh_f b) in
  let fb = Array.init c.ns (fun _ -> B.fresh_f b) in
  let fstage = B.fresh_f b in

  let kk = B.mov_i b (Ireg k0) in
  let after_loop = B.fresh_label b "after_loop" in
  let p_enter = B.setp b Lt (Ireg kk) (Ireg kend) in
  B.emit b ~guard:(p_enter, false) (I.Bra after_loop);
  let main_loop = B.fresh_label b "main_loop" in
  B.place_label b main_loop;

  (* --- staging: cooperative loads of the A and B panels ----------------- *)
  let stage ~elems ~tile_minor ~slot ~base ~origin ~bound ~addr_of =
    (* Panel layout in shared memory is [u][tile_minor]; thread [tid]
       handles flat elements tid, tid+threads, ... *)
    for idx = 0 to elems / threads - 1 do
      let flat = B.mad_i b (Iimm idx) (Iimm threads) (Ireg tid) in
      let u_idx = B.div_i b (Ireg flat) (Iimm tile_minor) in
      let minor = B.rem_i b (Ireg flat) (Iimm tile_minor) in
      let g_minor = B.add_i b (Ireg origin) (Ireg minor) in
      let gk = B.add_i b (Ireg kk) (Ireg u_idx) in
      let p1 = B.setp b Lt (Ireg g_minor) bound in
      let p2 = B.setp b Lt (Ireg gk) (Ireg kend) in
      let p = B.and_p b p1 p2 in
      let addr = addr_of ~g_minor ~gk in
      emit_guarded_load b ~bounds ~p ~dst:fstage ~slot ~addr;
      let saddr = B.mad_i b (Ireg u_idx) (Iimm tile_minor) (Ireg minor) in
      let saddr = if base = 0 then saddr else B.add_i b (Ireg saddr) (Iimm base) in
      B.emit b (I.St_shared (Ireg saddr, Freg fstage))
    done
  in
  let a_addr_of =
    match lut_slots with
    | Some (row_slot, delta_slot) ->
      fun ~g_minor ~gk ->
        let ra = B.fresh_i b in
        B.emit b (I.Ld_global_i (ra, row_slot, Ireg g_minor));
        let rd = B.fresh_i b in
        B.emit b (I.Ld_global_i (rd, delta_slot, Ireg gk));
        B.add_i b (Ireg ra) (Ireg rd)
    | None ->
      fun ~g_minor ~gk ->
        with_base a_base
          (if i.a_trans then B.mad_i b (Ireg gk) pm (Ireg g_minor)
           else B.mad_i b (Ireg g_minor) pk (Ireg gk))
  in
  stage ~elems:(la * threads) ~tile_minor:c.ml ~slot:a_slot ~base:as_base ~origin:row0
    ~bound:pm ~addr_of:a_addr_of;
  stage ~elems:(lb * threads) ~tile_minor:c.nl ~slot:b_slot ~base:bs_base ~origin:col0
    ~bound:pn
    ~addr_of:(fun ~g_minor ~gk ->
      with_base b_base
        (if i.b_trans then B.mad_i b (Ireg g_minor) pk (Ireg gk)
         else B.mad_i b (Ireg gk) pn (Ireg g_minor)));
  B.emit b I.Bar;

  (* --- fully unrolled inner loop over this thread group's K-slice ------- *)
  for uu = 0 to uc - 1 do
    let u_idx = B.mad_i b (Ireg tk) (Iimm uc) (Iimm uu) in
    let base_a = B.mad_i b (Ireg u_idx) (Iimm c.ml) (Ireg tm_ms) in
    Array.iteri
      (fun si r ->
        let addr = if si = 0 then base_a else B.add_i b (Ireg base_a) (Iimm si) in
        B.emit b (I.Ld_shared (r, Ireg addr)))
      fa;
    let base_b = B.mad_i b (Ireg u_idx) (Iimm c.nl) (Ireg tn_ns) in
    Array.iteri
      (fun sj r ->
        let addr = B.add_i b (Ireg base_b) (Iimm (bs_base + sj)) in
        B.emit b (I.Ld_shared (r, Ireg addr)))
      fb;
    for si = 0 to c.ms - 1 do
      for sj = 0 to c.ns - 1 do
        let slot = (((si * c.ns) + sj) * c.ks) + (uu mod c.ks) in
        B.emit b (I.Ffma (acc.(slot), Freg fa.(si), Freg fb.(sj), Freg acc.(slot)))
      done
    done
  done;
  B.emit b I.Bar;

  B.emit b (I.Iadd (kk, Ireg kk, Iimm c.u));
  let p_loop = B.setp b Lt (Ireg kk) (Ireg kend) in
  B.emit b ~guard:(p_loop, true) (I.Bra main_loop);
  B.place_label b after_loop;

  (* --- K_S register reduction ------------------------------------------- *)
  if c.ks > 1 then
    for si = 0 to c.ms - 1 do
      for sj = 0 to c.ns - 1 do
        let base = ((si * c.ns) + sj) * c.ks in
        for s = 1 to c.ks - 1 do
          B.emit b (I.Fadd (acc.(base), Freg acc.(base), Freg acc.(base + s)))
        done
      done
    done;
  let acc_of si sj = acc.(((si * c.ns) + sj) * c.ks) in

  (* --- K_L reduction through shared memory ------------------------------ *)
  let p_owner =
    if c.kl > 1 then begin
      let ftmp = B.fresh_f b in
      let scratch_addr si sj =
        let row_l = B.add_i b (Ireg tm_ms) (Iimm si) in
        let a = B.mad_i b (Ireg row_l) (Iimm c.nl) (Ireg tn_ns) in
        B.add_i b (Ireg a) (Iimm sj)
      in
      for g = 1 to c.kl - 1 do
        let pg = B.setp b Eq (Ireg tk) (Iimm g) in
        for si = 0 to c.ms - 1 do
          for sj = 0 to c.ns - 1 do
            let addr = scratch_addr si sj in
            B.emit b ~guard:(pg, true) (I.St_shared (Ireg addr, Freg (acc_of si sj)))
          done
        done;
        B.emit b I.Bar;
        let p0 = B.setp b Eq (Ireg tk) (Iimm 0) in
        for si = 0 to c.ms - 1 do
          for sj = 0 to c.ns - 1 do
            let addr = scratch_addr si sj in
            B.emit b ~guard:(p0, true) (I.Ld_shared (ftmp, Ireg addr));
            B.emit b ~guard:(p0, true)
              (I.Fadd (acc_of si sj, Freg (acc_of si sj), Freg ftmp))
          done
        done;
        B.emit b I.Bar
      done;
      Some (B.setp b Eq (Ireg tk) (Iimm 0))
    end
    else None
  in

  (* --- store / atomic accumulation of the output tile -------------------
     Epilogue computes alpha*acc (+ beta*C_old when kg = 1). *)
  let row_base = B.add_i b (Ireg row0) (Ireg tm_ms) in
  let col_base = B.add_i b (Ireg col0) (Ireg tn_ns) in
  let fold = B.fresh_f b in
  for si = 0 to c.ms - 1 do
    for sj = 0 to c.ns - 1 do
      let row = if si = 0 then row_base else B.add_i b (Ireg row_base) (Iimm si) in
      let col = if sj = 0 then col_base else B.add_i b (Ireg col_base) (Iimm sj) in
      let pr = B.setp b Lt (Ireg row) pm in
      let pc = B.setp b Lt (Ireg col) pn in
      let p = B.and_p b pr pc in
      let p = match p_owner with None -> p | Some po -> B.and_p b p po in
      let addr = with_base c_base (B.mad_i b (Ireg row) pn (Ireg col)) in
      let acc_reg = acc_of si sj in
      let value =
        if alpha = 1.0 && beta = 0.0 && epilogue = P.Plain then acc_reg
        else begin
          if beta <> 0.0 then begin
            B.emit b (I.Movf (fold, Fimm 0.0));
            B.emit b ~guard:(p, true) (I.Ld_global (fold, c_slot, Ireg addr));
            B.emit b (I.Fmul (fold, Freg fold, Fimm beta));
            B.emit b (I.Ffma (fold, Freg acc_reg, Fimm alpha, Freg fold))
          end
          else if alpha <> 1.0 then B.emit b (I.Fmul (fold, Freg acc_reg, Fimm alpha))
          else B.emit b (I.Movf (fold, Freg acc_reg));
          (match bias_slot with
           | Some slot ->
             (* Per-output-column bias, loaded under the same bounds
                predicate as the store. *)
             let fbias = B.fresh_f b in
             B.emit b (I.Movf (fbias, Fimm 0.0));
             B.emit b ~guard:(p, true) (I.Ld_global (fbias, slot, Ireg col));
             B.emit b (I.Fadd (fold, Freg fold, Freg fbias))
           | None -> ());
          (match epilogue with
           | P.Relu | P.Bias_relu -> B.emit b (I.Fmax (fold, Freg fold, Fimm 0.0))
           | P.Plain | P.Bias -> ());
          fold
        end
      in
      if c.kg > 1 then
        B.emit b ~guard:(p, true) (I.Atom_global_add (c_slot, Ireg addr, Freg value))
      else B.emit b ~guard:(p, true) (I.St_global (c_slot, Ireg addr, Freg value))
    done
  done;
  let prog = B.finish b in
  (* Debug path: with ISAAC_VERIFY=1 every emitted kernel must pass the
     static verifier — the generator invariant the tuner relies on. *)
  if Util.Env_config.bool "ISAAC_VERIFY" false then begin
    let report =
      Ptx.Verify.run prog
        ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
        ~block:(threads, 1, 1)
    in
    if not (Ptx.Verify.ok report) then
      invalid_arg
        (Printf.sprintf "Gemm.generate: %s fails static verification:\n%s"
           prog.Ptx.Program.name
           (Ptx.Verify.to_string report))
  end;
  prog

let generate ?bounds ?alpha ?beta ?epilogue i c =
  generate_gen ?bounds ?alpha ?beta ?epilogue ~gather:false i c

let generate_batched ?bounds ~batch i c =
  generate_gen ?bounds ~batch ~gather:false i c

let generate_gather ?bounds i c = generate_gen ?bounds ~gather:true i c

let run_counted ?bounds ?(alpha = 1.0) ?(beta = 0.0) ?(epilogue = P.Plain) ?bias
    ?domains (i : P.input) (c : P.config) ~a ~b ?c_in () =
  let expect_a = i.m * i.k and expect_b = i.k * i.n in
  if Array.length a <> expect_a then
    invalid_arg (Printf.sprintf "Gemm.run: A has %d elements, expected %d"
                   (Array.length a) expect_a);
  if Array.length b <> expect_b then
    invalid_arg (Printf.sprintf "Gemm.run: B has %d elements, expected %d"
                   (Array.length b) expect_b);
  let out =
    match c_in with
    | None -> Array.make (i.m * i.n) 0.0
    | Some init ->
      if Array.length init <> i.m * i.n then invalid_arg "Gemm.run: bad C size";
      Array.copy init
  in
  (* With grid-level splitting the kernel accumulates via atomics, so the
     beta term is folded into C on the host first and beta=0 is passed to
     the generator. *)
  let kernel_beta = if c.kg > 1 then 0.0 else beta in
  if c.kg > 1 then
    Array.iteri (fun idx v -> out.(idx) <- beta *. v) out;
  let program =
    generate_gen ?bounds ~alpha ~beta:kernel_beta ~epilogue ~gather:false i c
  in
  let bias_bufs =
    match (epilogue, bias) with
    | (P.Bias | P.Bias_relu), Some bias ->
      if Array.length bias <> i.n then invalid_arg "Gemm.run: bias must have N elements";
      [ ("BIAS", bias) ]
    | (P.Bias | P.Bias_relu), None -> invalid_arg "Gemm.run: epilogue needs ~bias"
    | (P.Plain | P.Relu), _ -> []
  in
  let counters =
    Ptx.Interp.run ?domains program ~grid:(grid i c) ~block:(block c)
      ~bufs:([ ("A", a); ("B", b); ("C", out) ] @ bias_bufs)
      ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
  in
  (out, counters)

let run ?bounds ?alpha ?beta ?epilogue ?bias ?c_in ?domains i c ~a ~b =
  fst (run_counted ?bounds ?alpha ?beta ?epilogue ?bias ?domains i c ~a ~b ?c_in ())

let run_batched ?bounds ~batch (i : P.input) (c : P.config) ~a ~b =
  if Array.length a <> batch * i.m * i.k then invalid_arg "Gemm.run_batched: bad A";
  if Array.length b <> batch * i.k * i.n then invalid_arg "Gemm.run_batched: bad B";
  let program = generate_batched ?bounds ~batch i c in
  let out = Array.make (batch * i.m * i.n) 0.0 in
  let gm, gn, gk = grid i c in
  let (_ : Ptx.Interp.counters) =
    Ptx.Interp.run program
      ~grid:(gm, gn * batch, gk)
      ~block:(block c)
      ~bufs:[ ("A", a); ("B", b); ("C", out) ]
      ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
  in
  out

let reference ?(alpha = 1.0) ?(beta = 0.0) ?(epilogue = P.Plain) ?bias ?c_in
    (i : P.input) ~a ~b =
  let get_a m k = if i.a_trans then a.((k * i.m) + m) else a.((m * i.k) + k) in
  let get_b k n = if i.b_trans then b.((n * i.k) + k) else b.((k * i.n) + n) in
  let out = Array.make (i.m * i.n) 0.0 in
  let round = if i.dtype = F16 then round_half else Fun.id in
  for m = 0 to i.m - 1 do
    for n = 0 to i.n - 1 do
      let acc = ref 0.0 in
      for k = 0 to i.k - 1 do
        acc := !acc +. (get_a m k *. get_b k n)
      done;
      let old =
        match c_in with Some init -> init.((m * i.n) + n) | None -> 0.0
      in
      let v = (alpha *. !acc) +. (beta *. old) in
      let v =
        match (epilogue, bias) with
        | (P.Bias | P.Bias_relu), Some bias -> v +. bias.(n)
        | _ -> v
      in
      let v =
        match epilogue with
        | P.Relu | P.Bias_relu -> Float.max 0.0 v
        | P.Plain | P.Bias -> v
      in
      out.((m * i.n) + n) <- round v
    done
  done;
  out
