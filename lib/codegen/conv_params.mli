(** Parameterization of multi-channel convolution (paper §3.3).

    The convolution O_{k,:,:,n} = Σ_c I_{c,:,:,n} ⋆ F_{c,:,:,k} is
    reformulated as an implicit matrix multiplication of shape
    (M̂, N̂, K̂) = (N·P·Q, K, C·R·S): every output element is an inner
    product of C·R·S image and filter elements, with image loads
    scrambled through a precomputed indirection table.

    The paper tiles across five dimensions (K, P, Q, N, C); as in its own
    implementation the reduction splits C_S/C_L/C_G are the GEMM splits
    K_S/K_L/K_G applied to the C·R·S axis, and we tile the fused N·P·Q
    axis jointly (a documented simplification of the 5-D tile shape that
    preserves the tiling/occupancy trade-offs).

    Layouts (row-major): I is N×C×H×W, F is C×R×S×K (so the filter is
    directly the K̂×N̂ matrix), O is N×P×Q×K. Strides and symmetric
    padding are supported: H = (P−1)·stride + R − 2·pad (the DeepBench
    shapes in Table 5 are given by their output sizes). Padding is
    realized by gathering from a host-side zero-padded copy of the image
    — functionally identical to cuDNN's masked taps, and the timing model
    is unaffected because the gather indirection already covers it. *)

type input = {
  n : int;   (** batch *)
  c : int;   (** input channels *)
  k : int;   (** output channels / filters *)
  p : int;   (** output height *)
  q : int;   (** output width *)
  r : int;   (** filter height *)
  s : int;   (** filter width *)
  stride : int;
  pad : int; (** symmetric spatial zero-padding *)
  dtype : Ptx.Types.dtype;
}

val input :
  ?dtype:Ptx.Types.dtype ->
  ?stride:int ->
  ?pad:int ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit -> input

val h : input -> int
(** Input height: (P−1)·stride + R − 2·pad. *)

val w : input -> int
(** Input width: (Q−1)·stride + S − 2·pad. *)

val h_padded : input -> int
(** Height of the zero-padded image the kernel gathers from: H + 2·pad. *)

val w_padded : input -> int

val npq : input -> int
(** M̂: the fused output-pixel dimension. *)

val crs : input -> int
(** K̂: the reduction length. *)

val gemm_input : input -> Gemm_params.input
(** The implicit-GEMM view: (NPQ, K, CRS) with no transpositions. *)

val structurally_legal : input -> Gemm_params.config -> bool

val cost : ?bounds:Gemm_params.bounds_mode -> input -> Gemm_params.config ->
  Gpu.Kernel_cost.t
(** GEMM cost adjusted for the gather: indirection-table loads add
    integer and L2 traffic, and gathered image loads coalesce slightly
    worse than dense panels. *)

val describe_name : input -> Gemm_params.config -> string
