(** Multi-channel convolution kernel generator (paper §3.3).

    Builds the indirection tables for the implicit-GEMM formulation and
    instantiates the gather variant of the GEMM generator
    ({!Gemm.generate_gather}). The generated kernel really executes under
    the interpreter; the test suite checks it against {!reference}, a
    direct convolution loop. *)

val tables : Conv_params.input -> Gemm_params.config -> float array * float array
(** [(lut_row, lut_delta)]: per-output-pixel base addresses into the image
    (padded to the block-tile boundary) and per-(c,r,s) offsets (padded to
    K̂+U). Values are non-negative integers stored as floats, matching the
    interpreter's integer-load convention. *)

val generate :
  ?bounds:Gemm_params.bounds_mode ->
  Conv_params.input ->
  Gemm_params.config ->
  Ptx.Program.t

val pad_image : Conv_params.input -> float array -> float array
(** Zero-pad an N×C×H×W image to N×C×(H+2·pad)×(W+2·pad) — the "A"
    buffer layout the gather kernel addresses through {!tables}. The
    identity when [pad = 0]. Exposed so harnesses (e.g. the interpreter
    differential suite) can construct conv launches directly. *)

val run :
  ?bounds:Gemm_params.bounds_mode ->
  ?domains:int ->
  Conv_params.input ->
  Gemm_params.config ->
  image:float array ->
  filter:float array ->
  float array
(** Launch under the interpreter. [image] is N×C×H×W row-major (H and W
    per {!Conv_params.h} / {!Conv_params.w}); it is zero-padded host-side
    when [pad > 0]. [filter] is C×R×S×K; the result is N×P×Q×K. *)

val run_counted :
  ?bounds:Gemm_params.bounds_mode ->
  ?domains:int ->
  Conv_params.input ->
  Gemm_params.config ->
  image:float array ->
  filter:float array ->
  float array * Ptx.Interp.counters
(** Like {!run} but also returns the interpreter's dynamic counters,
    for cost-model cross-checks and model-vs-counter attribution.
    [domains] is forwarded to {!Ptx.Interp.run}; results are identical
    for any value. *)

val im2col : Conv_params.input -> float array -> float array
(** Materialize the NPQ×CRS patch matrix (the explicit counterpart of the
    indirection tables). Input is the (unpadded) image. *)

val run_im2col :
  ?bounds:Gemm_params.bounds_mode ->
  Conv_params.input ->
  Gemm_params.config ->
  image:float array ->
  filter:float array ->
  float array
(** The IM2COL+GEMM algorithm family: build the patch matrix host-side
    and run a dense GEMM kernel over it. Functionally identical to
    {!run}; it trades the gather indirection for NPQ·CRS elements of
    extra memory — the trade-off that made IMPLICIT_PRECOMP_GEMM the
    paper's comparison point. *)

val reference :
  Conv_params.input -> image:float array -> filter:float array -> float array
(** Direct convolution oracle with the same layouts and output rounding. *)
