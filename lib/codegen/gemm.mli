(** GEMM kernel generator (paper §3.2, Figure 3).

    From an (input, config) pair this module emits a mini-PTX program
    implementing C = A·B with:
    - block tiles M_L × N_L, thread tiles M_S × N_S;
    - cooperative staging of M_L×U and U×N_L panels into shared memory,
      transposing in-place when the layout requires it;
    - a fully unrolled inner loop of M_S·N_S·U multiply-accumulates;
    - reduction splitting at all three levels: K_S independent register
      chains, K_L thread groups reduced through shared memory, K_G grid
      slices accumulated with global atomics;
    - bounds handling by PTX predication, divergent branches (the CUDA-C
      simulation of §8.3) or no checks at all.

    The generated program really executes under {!Ptx.Interp} and is
    checked against {!reference} by the test suite across random
    parameterizations. *)

val generate :
  ?bounds:Gemm_params.bounds_mode ->
  ?alpha:float ->
  ?beta:float ->
  ?epilogue:Gemm_params.epilogue ->
  Gemm_params.input ->
  Gemm_params.config ->
  Ptx.Program.t
(** Requires [Gemm_params.structurally_legal input config]. The scalars
    alpha and beta are baked into the kernel as immediates (as a
    JIT-style generator would); beta ≠ 0 additionally requires
    K_G = 1, as does a fused epilogue (bias and/or relu applied in the
    store phase; bias is a per-column vector passed as an extra "BIAS"
    buffer). *)

val generate_batched :
  ?bounds:Gemm_params.bounds_mode ->
  batch:int ->
  Gemm_params.input ->
  Gemm_params.config ->
  Ptx.Program.t
(** Strided-batched variant (the cublasGemmStridedBatched analogue): the
    batch index is folded into the Y grid dimension and each batch
    element's operands live at strides M·K / K·N / M·N in the same
    buffers. Launch with grid (⌈M/M_L⌉, batch·⌈N/N_L⌉, K_G). *)

val run_batched :
  ?bounds:Gemm_params.bounds_mode ->
  batch:int ->
  Gemm_params.input ->
  Gemm_params.config ->
  a:float array ->
  b:float array ->
  float array
(** Execute a strided-batched product under the interpreter: [a] holds
    batch M·K-element matrices back to back, [b] batch K·N, the result
    batch M·N. *)

val generate_gather :
  ?bounds:Gemm_params.bounds_mode ->
  Gemm_params.input ->
  Gemm_params.config ->
  Ptx.Program.t
(** Implicit-GEMM variant used by {!Conv}: A-side loads are indirected
    through two extra buffer parameters, "LUT_ROW" (per-row base address)
    and "LUT_DELTA" (per-reduction-index offset), so that
    A\[i,j\] = A_buf\[LUT_ROW\[i\] + LUT_DELTA\[j\]\]. Both tables must be
    padded: LUT_ROW to ⌈M/M_L⌉·M_L entries and LUT_DELTA to K+U entries,
    with padding values that keep addresses in range (0 is safe). The
    [a_trans] field of the input is ignored in this mode. *)

val grid : Gemm_params.input -> Gemm_params.config -> int * int * int
(** Launch grid: (⌈M/M_L⌉, ⌈N/N_L⌉, K_G). *)

val block : Gemm_params.config -> int * int * int
(** Launch block: (threads, 1, 1). *)

val run :
  ?bounds:Gemm_params.bounds_mode ->
  ?alpha:float ->
  ?beta:float ->
  ?epilogue:Gemm_params.epilogue ->
  ?bias:float array ->
  ?c_in:float array ->
  ?domains:int ->
  Gemm_params.input ->
  Gemm_params.config ->
  a:float array ->
  b:float array ->
  float array
(** Generate, launch under the interpreter, and return
    C = alpha·A·B + beta·C_in (row-major M×N; alpha defaults to 1, beta
    to 0). [a] has M·K elements (K-major rows unless [a_trans], in which
    case it is stored K×M), [b] has K·N. When the configuration splits
    the reduction across the grid (K_G > 1) the beta term is folded into
    the output buffer on the host before launch, since the kernel then
    accumulates through atomics. *)

val run_counted :
  ?bounds:Gemm_params.bounds_mode ->
  ?alpha:float ->
  ?beta:float ->
  ?epilogue:Gemm_params.epilogue ->
  ?bias:float array ->
  ?domains:int ->
  Gemm_params.input ->
  Gemm_params.config ->
  a:float array ->
  b:float array ->
  ?c_in:float array ->
  unit ->
  float array * Ptx.Interp.counters
(** Like {!run} but also returns the dynamic instruction counters, used by
    tests to cross-check the static cost model. [domains] is forwarded to
    {!Ptx.Interp.run}; results are identical for any value. *)

val reference :
  ?alpha:float ->
  ?beta:float ->
  ?epilogue:Gemm_params.epilogue ->
  ?bias:float array ->
  ?c_in:float array ->
  Gemm_params.input ->
  a:float array ->
  b:float array ->
  float array
(** Straightforward triple-loop GEMM with the same layout conventions and
    output rounding, the oracle for correctness tests. *)
