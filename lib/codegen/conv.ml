module P = Gemm_params
module C = Conv_params

let ceil_div a b = (a + b - 1) / b

(* Tables address the zero-padded image (extents h_padded x w_padded);
   output pixel (p, q) starts its taps at (p*stride, q*stride) of the
   padded image, so no per-tap validity mask is needed. *)
let tables (i : C.input) (cfg : P.config) =
  let hp = C.h_padded i and wp = C.w_padded i in
  let m = C.npq i in
  let kk = C.crs i in
  let rows = ceil_div m cfg.ml * cfg.ml in
  let lut_row = Array.make rows 0.0 in
  for idx = 0 to m - 1 do
    let q = idx mod i.q in
    let p = idx / i.q mod i.p in
    let n = idx / (i.p * i.q) in
    lut_row.(idx) <-
      float_of_int ((n * i.c * hp * wp) + (p * i.stride * wp) + (q * i.stride))
  done;
  let lut_delta = Array.make (kk + cfg.u) 0.0 in
  for j = 0 to kk - 1 do
    let s = j mod i.s in
    let r = j / i.s mod i.r in
    let c = j / (i.r * i.s) in
    lut_delta.(j) <- float_of_int ((c * hp * wp) + (r * wp) + s)
  done;
  (lut_row, lut_delta)

(* Copy the image (N x C x H x W) into its zero-padded form
   (N x C x (H+2p) x (W+2p)). The identity when pad = 0. *)
let pad_image (i : C.input) image =
  if i.pad = 0 then image
  else begin
    let h = C.h i and w = C.w i in
    let hp = C.h_padded i and wp = C.w_padded i in
    let out = Array.make (i.n * i.c * hp * wp) 0.0 in
    for n = 0 to i.n - 1 do
      for c = 0 to i.c - 1 do
        for y = 0 to h - 1 do
          let src = (((n * i.c) + c) * h * w) + (y * w) in
          let dst = (((n * i.c) + c) * hp * wp) + ((y + i.pad) * wp) + i.pad in
          Array.blit image src out dst w
        done
      done
    done;
    out
  end

let generate ?bounds (i : C.input) (cfg : P.config) =
  Gemm.generate_gather ?bounds (C.gemm_input i) cfg

let run_counted ?bounds ?domains (i : C.input) (cfg : P.config) ~image ~filter =
  let gi = C.gemm_input i in
  let expect_i = i.n * i.c * C.h i * C.w i in
  let expect_f = C.crs i * i.k in
  if Array.length image <> expect_i then
    invalid_arg
      (Printf.sprintf "Conv.run: image has %d elements, expected %d"
         (Array.length image) expect_i);
  if Array.length filter <> expect_f then
    invalid_arg
      (Printf.sprintf "Conv.run: filter has %d elements, expected %d"
         (Array.length filter) expect_f);
  let program = generate ?bounds i cfg in
  let lut_row, lut_delta = tables i cfg in
  let padded = pad_image i image in
  let out = Array.make (C.npq i * i.k) 0.0 in
  let grid = (ceil_div gi.m cfg.ml, ceil_div gi.n cfg.nl, cfg.kg) in
  let block = (P.threads_per_block cfg, 1, 1) in
  let counters =
    Ptx.Interp.run ?domains program ~grid ~block
      ~bufs:
        [ ("A", padded); ("B", filter); ("C", out); ("LUT_ROW", lut_row);
          ("LUT_DELTA", lut_delta) ]
      ~iargs:[ ("M", gi.m); ("N", gi.n); ("K", gi.k) ]
  in
  (out, counters)

let run ?bounds ?domains (i : C.input) (cfg : P.config) ~image ~filter =
  fst (run_counted ?bounds ?domains i cfg ~image ~filter)

let im2col (i : C.input) image =
  let padded = pad_image i image in
  let hp = C.h_padded i and wp = C.w_padded i in
  let m = C.npq i and kk = C.crs i in
  let out = Array.make (m * kk) 0.0 in
  for idx = 0 to m - 1 do
    let q = idx mod i.q in
    let p = idx / i.q mod i.p in
    let n = idx / (i.p * i.q) in
    let base = (n * i.c * hp * wp) + (p * i.stride * wp) + (q * i.stride) in
    for j = 0 to kk - 1 do
      let s = j mod i.s in
      let r = j / i.s mod i.r in
      let c = j / (i.r * i.s) in
      out.((idx * kk) + j) <- padded.(base + (c * hp * wp) + (r * wp) + s)
    done
  done;
  out

let run_im2col ?bounds (i : C.input) (cfg : P.config) ~image ~filter =
  let gi = C.gemm_input i in
  let a = im2col i image in
  Gemm.run ?bounds gi cfg ~a ~b:filter

let reference (i : C.input) ~image ~filter =
  let h = C.h i and w = C.w i in
  let out = Array.make (C.npq i * i.k) 0.0 in
  let round = if i.dtype = Ptx.Types.F16 then Ptx.Types.round_half else Fun.id in
  for n = 0 to i.n - 1 do
    for p = 0 to i.p - 1 do
      for q = 0 to i.q - 1 do
        for k = 0 to i.k - 1 do
          let acc = ref 0.0 in
          for c = 0 to i.c - 1 do
            for r = 0 to i.r - 1 do
              for s = 0 to i.s - 1 do
                let y = (p * i.stride) + r - i.pad in
                let x = (q * i.stride) + s - i.pad in
                if y >= 0 && y < h && x >= 0 && x < w then begin
                  let iv = image.((((n * i.c) + c) * h * w) + (y * w) + x) in
                  let fv = filter.(((((c * i.r) + r) * i.s) + s) * i.k + k) in
                  acc := !acc +. (iv *. fv)
                end
              done
            done
          done;
          out.((((n * i.p) + p) * i.q + q) * i.k + k) <- round !acc
        done
      done
    done
  done;
  out
