type input = {
  m : int;
  n : int;
  k : int;
  dtype : Ptx.Types.dtype;
  a_trans : bool;
  b_trans : bool;
}

type config = {
  ms : int;
  ns : int;
  ks : int;
  ml : int;
  nl : int;
  u : int;
  kl : int;
  kg : int;
  vec : int;
  db : int;
}

type bounds_mode = Predicated | Branch | Unchecked

type epilogue = Plain | Relu | Bias | Bias_relu

let input ?(dtype = Ptx.Types.F32) ?(a_trans = false) ?(b_trans = false) m n k =
  { m; n; k; dtype; a_trans; b_trans }

let values_ms = [| 1; 2; 4; 8 |]
let values_ns = [| 1; 2; 4; 8 |]
let values_ks = [| 1; 2; 4 |]
let values_ml = [| 8; 16; 32; 64; 128 |]
let values_nl = [| 8; 16; 32; 64; 128 |]
let values_u = [| 4; 8; 16; 32 |]
let values_kl = [| 1; 2; 4; 8 |]
let values_kg = [| 1; 2; 4; 8; 16; 32; 64 |]
let values_vec = [| 1; 2; 4 |]
let values_db = [| 1; 2 |]

let config_of_array a =
  assert (Array.length a = 10);
  { ms = a.(0); ns = a.(1); ks = a.(2); ml = a.(3); nl = a.(4); u = a.(5);
    kl = a.(6); kg = a.(7); vec = a.(8); db = a.(9) }

let config_to_array c =
  [| c.ms; c.ns; c.ks; c.ml; c.nl; c.u; c.kl; c.kg; c.vec; c.db |]

let threads_per_block c = c.ml / c.ms * (c.nl / c.ns) * c.kl

let ceil_div a b = (a + b - 1) / b

let structurally_legal (i : input) (c : config) =
  let ok_tile = c.ml mod c.ms = 0 && c.nl mod c.ns = 0 in
  if not ok_tile then false
  else begin
    let threads = threads_per_block c in
    let ok_threads = threads >= 32 && threads <= 1024 && threads mod 32 = 0 in
    (* K_L splits the prefetched K-chunk between thread groups; K_S further
       splits each group's chunk into independent register chains. *)
    let ok_split = c.u mod c.kl = 0 && c.u / c.kl mod c.ks = 0 in
    (* Cooperative staging must divide evenly between threads, in whole
       vectors. *)
    let la = c.ml * c.u and lb = c.nl * c.u in
    let ok_stage =
      la mod threads = 0 && lb mod threads = 0
      && la / threads mod c.vec = 0
      && lb / threads mod c.vec = 0
    in
    (* A grid-level split must leave each z-slice at least one full
       prefetch iteration (input-dependent legality). *)
    let ok_kg = c.kg = 1 || ceil_div i.k c.kg >= c.u in
    ok_threads && ok_split && ok_stage && ok_kg
  end

let shared_words c =
  let staging = (c.ml + c.nl) * c.u * c.db in
  let scratch = if c.kl > 1 then c.ml * c.nl else 0 in
  max staging scratch

let regs_per_value (dtype : Ptx.Types.dtype) ~vectorized =
  match dtype with
  | F64 -> 2.0
  | F32 -> 1.0
  | F16 -> if vectorized then 0.5 else 1.0

let vectorized_fp16 (i : input) (c : config) = i.dtype = Ptx.Types.F16 && c.vec >= 2

let regs_estimate (i : input) (c : config) =
  let vectorized = vectorized_fp16 i c in
  let rv = regs_per_value i.dtype ~vectorized in
  let threads = threads_per_block c in
  let acc = float_of_int (c.ms * c.ns * c.ks) *. rv in
  let fragments = float_of_int (c.ms + c.ns) *. rv *. 2.0 in
  let staging = float_of_int ((c.ml + c.nl) * c.u / threads) *. rv in
  let addressing = 24.0 in
  int_of_float (Float.ceil (acc +. fragments +. staging +. addressing))

let bounds_overhead mode (i : input) (c : config) =
  let ragged =
    i.m mod c.ml <> 0 || i.n mod c.nl <> 0 || ceil_div i.k c.kg mod c.u <> 0
  in
  match mode with
  | Predicated -> 0.02
  (* Branches cost the comparison, the jump, divergence replay and the
     loss of uniform-issue scheduling around every guarded access. *)
  | Branch -> if ragged then 0.40 else 0.32
  | Unchecked -> 0.0

(* DRAM transaction efficiency: the extent (elements) of a staged tile
   along each operand's contiguous storage direction determines how much
   of each 128-byte line a warp consumes; panels are streamed along K so a
   large floor applies (lines left partially used by one iteration are
   finished by the next from L2). *)
let coalescing_parts (i : input) (c : config) =
  let b = float_of_int (Ptx.Types.dtype_bytes i.dtype) in
  let extent_a = if i.a_trans then c.ml else c.u in
  let extent_b = if i.b_trans then c.u else c.nl in
  let raw e = Float.min 1.0 (float_of_int e *. b /. 128.0) in
  (* Lines left partially consumed by one K-iteration are finished by the
     next from L2, so the floor is high. *)
  let dram e = Float.max 0.85 (raw e) in
  ( (dram extent_a +. dram extent_b) /. 2.0,
    (raw extent_a +. raw extent_b) /. 2.0 )

(* The inner loop reads shared memory in [u][ml] / [u][nl] order; if the
   global layout's contiguous direction disagrees, staging is a transpose
   in shared memory (paper: DeepBench-Backward needs both transposed). *)
let transposed_staging (i : input) = (i.a_trans, not i.b_trans)

let describe_name i c =
  Printf.sprintf "gemm_%s_%c%c_%dx%dx%d_t%d" (Ptx.Types.dtype_name i.dtype)
    (if i.a_trans then 't' else 'n')
    (if i.b_trans then 't' else 'n')
    c.ml c.nl c.u (threads_per_block c)

let cost ?(bounds = Predicated) (i : input) (c : config) =
  assert (structurally_legal i c);
  let dtype = i.dtype in
  let bytes = Ptx.Types.dtype_bytes dtype in
  let bytes_f = float_of_int bytes in
  let vectorized = vectorized_fp16 i c in
  let width = if vectorized then 2 else 1 in
  let threads = threads_per_block c in
  let grid_m = ceil_div i.m c.ml in
  let grid_n = ceil_div i.n c.nl in
  let grid_k = c.kg in
  let blocks = grid_m * grid_n * grid_k in
  let kc = ceil_div i.k c.kg in
  let k_iters = float_of_int (ceil_div kc c.u) in
  (* Loaded panel extents, clipped to the problem: out-of-bounds lanes
     are predicated off (and Unchecked bounds are only legal when tiles
     divide the shape), so tile-rounding overshoot never turns into
     issued traffic — charging padded extents overstates ragged shapes. *)
  let mp = float_of_int (min (grid_m * c.ml) i.m) in
  let np = float_of_int (min (grid_n * c.nl) i.n) in
  let kp =
    Float.min (k_iters *. float_of_int (c.u * grid_k)) (float_of_int i.k)
  in
  let blocks_f = float_of_int blocks in
  (* FMA instructions: ml*nl*u scalar multiply-accumulates per block per
     iteration, packed two-wide under fp16x2. *)
  let issued_fmas =
    blocks_f *. k_iters *. float_of_int (c.ml * c.nl * c.u) /. float_of_int width
  in
  let useful_flops = 2.0 *. float_of_int i.m *. float_of_int i.n *. float_of_int i.k in
  (* Addressing and loop bookkeeping per thread per iteration, amortized
     over that iteration's FMAs. *)
  let la = c.ml * c.u / threads and lb = c.nl * c.u / threads in
  let uc = c.u / c.kl in
  let trans_a, trans_b = transposed_staging i in
  let stage_ialu =
    let per_elem ta = if ta then 4.0 else 3.0 in
    (float_of_int la *. per_elem trans_a +. float_of_int lb *. per_elem trans_b)
    /. float_of_int c.vec
  in
  let inner_ialu = float_of_int (uc * (c.ms + c.ns)) /. float_of_int (2 * c.vec) in
  let loop_ialu = 8.0 in
  let fmas_per_thread_iter = float_of_int (c.ms * c.ns * uc) /. float_of_int width in
  let ialu_per_fma = (stage_ialu +. inner_ialu +. loop_ialu) /. fmas_per_thread_iter in
  (* Global traffic: every block loads its full A and B panels. *)
  let load_a_bytes = mp *. kp *. float_of_int grid_n *. bytes_f in
  let load_b_bytes = np *. kp *. float_of_int grid_m *. bytes_f in
  let store_bytes =
    if c.kg > 1 then 0.0 else float_of_int i.m *. float_of_int i.n *. bytes_f
  in
  let atom_ops =
    if c.kg > 1 then float_of_int i.m *. float_of_int i.n *. float_of_int c.kg else 0.0
  in
  (* Shared traffic: staging stores (inflated by in-shared transposes) +
     fragment loads + the K_L reduction epilogue. *)
  let stage_factor ta = if ta then 1.3 else 1.0 in
  let staging_bytes =
    blocks_f *. k_iters
    *. (float_of_int (c.ml * c.u) *. stage_factor trans_a
        +. float_of_int (c.nl * c.u) *. stage_factor trans_b)
    *. bytes_f
  in
  (* Fragment loads: per iteration each of the mn_threads·kl threads
     loads ms A-words and ns B-words uc times, i.e. ml·nl·u/ns A-words
     and ml·nl·u/ms B-words per block-iteration. *)
  let fragment_a_bytes =
    blocks_f *. k_iters *. float_of_int (c.ml * c.nl * c.u)
    /. float_of_int c.ns *. bytes_f
  in
  let fragment_b_bytes =
    blocks_f *. k_iters *. float_of_int (c.ml * c.nl * c.u)
    /. float_of_int c.ms *. bytes_f
  in
  let fragment_bytes = fragment_a_bytes +. fragment_b_bytes in
  let kl_epilogue_bytes =
    if c.kl > 1 then
      blocks_f *. float_of_int ((c.kl - 1) * 2 * c.ml * c.nl) *. bytes_f
    else 0.0
  in
  (* Vectorized (≥64-bit) shared accesses halve bank-transaction overhead,
     doubling sustainable shared bandwidth. *)
  let shared_vec_discount = if c.vec >= 2 then 0.5 else 1.0 in
  (* Bank-conflict serialization, per access pattern (32 banks, one word
     wide; same-word lanes broadcast):
     - staging stores walk flat addresses at stride 1: conflict-free;
     - A-fragment loads step [ms] words per lane over the ml/ms distinct
       row groups (lanes of equal tm broadcast);
     - B-fragment loads step [ns] words per lane across the tn groups,
       which change once per ml/ms lanes;
     - the K_L scratch is an [ml][nl] tile addressed at stride ms·nl,
       which for the usual power-of-two nl lands every lane on the same
       bank.
     The factor is the traffic-weighted mean degree, and multiplies the
     shared-pipeline time in {!Gpu.Perf_model}. *)
  let shared_conflict_factor =
    let deg ~distinct ~stride =
      float_of_int (Gpu.Memory_model.stride_conflict_degree ~distinct ~stride)
    in
    let tm_groups = c.ml / c.ms in
    let deg_a = deg ~distinct:(min 32 tm_groups) ~stride:c.ms in
    let deg_b =
      deg ~distinct:(min (c.nl / c.ns) (max 1 (32 / tm_groups))) ~stride:c.ns
    in
    let deg_kl = deg ~distinct:(min 32 tm_groups) ~stride:(c.ms * c.nl) in
    let weighted =
      staging_bytes +. (fragment_a_bytes *. deg_a) +. (fragment_b_bytes *. deg_b)
      +. (kl_epilogue_bytes *. deg_kl)
    in
    let total = staging_bytes +. fragment_bytes +. kl_epilogue_bytes in
    if total > 0.0 then weighted /. total else 1.0
  in
  let barriers =
    (if c.db = 2 then 1.0 else 2.0) *. k_iters +. (2.0 *. float_of_int (c.kl - 1))
  in
  { Gpu.Kernel_cost.name = describe_name i c;
    dtype;
    vectorized_fp16 = vectorized;
    threads_per_block = threads;
    regs_per_thread = regs_estimate i c;
    shared_bytes = shared_words c * bytes;
    grid_m;
    grid_n;
    grid_k;
    tile_m = c.ml;
    tile_n = c.nl;
    u_depth = c.u;
    useful_flops;
    issued_fmas;
    fma_flops = 2.0 *. float_of_int width;
    ialu_per_fma;
    extra_instr_frac = bounds_overhead bounds i c;
    load_a_bytes;
    load_b_bytes;
    store_bytes;
    atom_ops;
    coalescing = (let dram, _ = coalescing_parts i c in dram);
    tx_coalescing = (let _, tx = coalescing_parts i c in tx);
    shared_traffic_bytes =
      (staging_bytes +. fragment_bytes +. kl_epilogue_bytes) *. shared_vec_discount;
    shared_conflict_factor;
    ilp = float_of_int (c.ms * c.ns * c.ks) /. float_of_int width;
    mlp = Float.min 16.0 (float_of_int ((la + lb) / c.vec));
    barriers_per_block = barriers;
    k_iters;
    sched = None }

let describe c =
  Printf.sprintf "%dx%dx%d ms%d ns%d ks%d kl%d kg%d v%d db%d" c.ml c.nl c.u c.ms c.ns
    c.ks c.kl c.kg c.vec c.db

let equal_config (a : config) (b : config) = a = b
