type measurement = {
  tflops : float;
  seconds : float;
  report : Perf_model.report;
}

let default_noise = 0.03

(* Cumulative serving telemetry, distinct from the trace-scoped Metrics
   counters below: handles are resolved once at module init so the
   enabled path costs one shard fetch_and_add per event. *)
let t_measurements = Obs.Telemetry.counter "executor.measurements"
let t_illegal = Obs.Telemetry.counter "executor.illegal"
let t_kernel_s = Obs.Telemetry.histo "executor.kernel_s"

let legal (d : Device.t) (c : Kernel_cost.t) =
  Occupancy.legal d (Kernel_cost.occupancy_usage c)

let measure ?(noise = default_noise) rng d c =
  match Perf_model.predict d c with
  | None ->
    Obs.Metrics.incr "executor.illegal";
    if Obs.Telemetry.enabled () then Obs.Telemetry.Counter.incr t_illegal;
    None
  | Some report ->
    let jitter = exp (noise *. Util.Rng.gaussian rng) in
    let seconds = report.seconds *. jitter in
    Obs.Metrics.incr "executor.measurements";
    Obs.Metrics.observe "executor.kernel_seconds" seconds;
    if Obs.Telemetry.enabled () then begin
      Obs.Telemetry.Counter.incr t_measurements;
      Obs.Telemetry.Histo.observe t_kernel_s seconds
    end;
    Some { tflops = c.useful_flops /. seconds /. 1e12; seconds; report }

let measure_best_of ?(noise = default_noise) ?(reps = 3) rng d c =
  let rec go best k =
    if k = 0 then best
    else
      let best =
        match (measure ~noise rng d c, best) with
        | None, best -> best
        | Some m, None -> Some m
        | Some m, Some b -> Some (if m.seconds < b.seconds then m else b)
      in
      go best (k - 1)
  in
  go None reps
