(** DRAM / L2 behaviour model.

    Captures the two cache effects §8.1 of the paper leans on: (1) tiles
    of the same operand panel loaded by co-resident blocks hit in L2 when
    the combined streaming footprint fits, and (2) deeper prefetching
    (larger U) keeps co-resident blocks' access windows aligned, improving
    inter-block reuse ("ISAAC learns to use resources still available to
    pre-fetch more data …, resulting in better cache-hit rate"). *)

val l2_bandwidth_gbs : Device.t -> float
(** Modeled L2 bandwidth (a fixed multiple of DRAM bandwidth). *)

type l2_result = {
  hit_a : float;         (** fraction of A-side loads served by L2 *)
  hit_b : float;
  working_set_bytes : float;
}

val l2_hits :
  Device.t ->
  concurrent_blocks:int ->
  grid_m:int ->
  grid_n:int ->
  tile_m:int ->
  tile_n:int ->
  u_depth:int ->
  elem_bytes:int ->
  l2_result
(** Inter-block L2 reuse for a blocked GEMM-shaped access pattern with
    row-major block scheduling: blocks sharing a row re-load the same
    B panel, blocks sharing a column the same A panel. *)

val shared_banks : int
(** Number of shared-memory banks (32, one word wide). *)

val stride_conflict_degree : distinct:int -> stride:int -> int
(** Serialization degree of a warp-wide shared access touching
    [distinct] words spaced [stride] apart: [ceil (min distinct 32 /
    (32 / gcd stride 32))], i.e. 1 when conflict-free or broadcast,
    up to 32 when every lane maps to the same bank. *)

val latency_limited_bw_gbs :
  Device.t -> warps_per_sm:int -> mlp:float -> float
(** Little's-law bandwidth ceiling: bytes in flight / memory latency,
    summed over SMs. [mlp] is outstanding 128-byte transactions per
    warp. *)
