let tdp_watts (_ : Device.t) = 250.0

(* Utilization-linear board power: idle floor, plus the arithmetic
   pipelines at full tilt costing ~55% of TDP and the DRAM interface
   ~30%. Utilizations are the fraction of runtime each subsystem is the
   active bottleneck or overlapped with it. *)
let board_watts d (r : Perf_model.report) =
  let tdp = tdp_watts d in
  let idle = 0.15 *. tdp in
  let total = Float.max r.seconds 1e-12 in
  let arith_util = Float.min 1.0 (r.arith_seconds /. total) in
  let mem_util = Float.min 1.0 (r.mem_seconds /. total) in
  let shared_util = Float.min 1.0 (r.shared_seconds /. total) in
  let watts =
    idle
    +. (0.55 *. tdp *. arith_util)
    +. (0.25 *. tdp *. mem_util)
    +. (0.10 *. tdp *. shared_util)
  in
  Float.min tdp (Float.max idle watts)

let kernel_joules d r = board_watts d r *. r.Perf_model.seconds

let gflops_per_watt d (r : Perf_model.report) =
  r.tflops *. 1000.0 /. board_watts d r
