type sample = {
  label : string;
  kernel_hash : int64 option;
  report : Perf_model.report;
  counters : Ptx.Interp.counters;
}

type pairing = {
  term : string;
  counter : string;
  term_of : Perf_model.report -> float;
  counter_of : Ptx.Interp.counters -> float;
}

let pairings =
  [ { term = "arith_seconds";
      counter = "interp.issue_slots";
      term_of = (fun r -> r.Perf_model.arith_seconds);
      counter_of = (fun c -> float_of_int (Ptx.Interp.total c)) };
    { term = "mem_seconds";
      counter = "interp.global_transactions";
      (* The mem term is traffic divided by a config-dependent effective
         bandwidth (occupancy- and latency-limited) after L2 filtering;
         transaction counters measure issued traffic only. Correlating
         the term's traffic driver probes the traffic model without
         conflating it with the bandwidth and L2 models. *)
      term_of = (fun r -> r.Perf_model.global_bytes);
      counter_of =
        (fun c ->
          float_of_int
            (c.Ptx.Interp.gld_transactions + c.Ptx.Interp.gst_transactions)) };
    { term = "shared_seconds";
      counter = "interp.shared_transactions";
      term_of = (fun r -> r.Perf_model.shared_seconds);
      counter_of = (fun c -> float_of_int c.Ptx.Interp.shared_transactions) };
    { term = "overhead_seconds";
      counter = "interp.bar_waits";
      term_of = (fun r -> r.Perf_model.overhead_seconds);
      counter_of = (fun c -> float_of_int c.Ptx.Interp.bar) };
    { term = "stall_cycles";
      counter = "interp.latency_slots";
      (* The scoreboard's predicted hazard stalls are caused by
         latency-producing instructions (FMA chains, shared and global
         loads); their dynamic issue counts are the counter-side driver.
         The static stalls-per-slot factor modulates the ratio per
         configuration, which the drift column makes visible. *)
      term_of = (fun r -> r.Perf_model.stall_cycles);
      counter_of =
        (fun c ->
          float_of_int
            (c.Ptx.Interp.fma + c.Ptx.Interp.ld_shared
           + c.Ptx.Interp.ld_global)) } ]

type row = {
  term : string;
  counter : string;
  n : int;
  pearson_r : float;
  scale : float;
  drift : float;
}

let correlate samples =
  List.map
    (fun p ->
      let xs = Array.of_list (List.map (fun s -> p.term_of s.report) samples) in
      let ys =
        Array.of_list (List.map (fun s -> p.counter_of s.counters) samples)
      in
      let n = Array.length xs in
      let var a =
        n > 1 && Util.Stats.variance a > 0.0
      in
      let pearson_r =
        if var xs && var ys then Util.Stats.correlation xs ys else Float.nan
      in
      let scale =
        if n = 0 then Float.nan
        else
          let my = Util.Stats.mean ys in
          if my > 0.0 then Util.Stats.mean xs /. my else Float.nan
      in
      (* Ratio spread: how far the term strays from "counter times a
         constant". Computed over samples where both sides are positive. *)
      let ratios =
        List.filter_map
          (fun s ->
            let t = p.term_of s.report and c = p.counter_of s.counters in
            if c > 0.0 && t > 0.0 then Some (t /. c) else None)
          samples
      in
      let drift =
        match ratios with
        | [] | [ _ ] -> Float.nan
        | _ ->
          let r = Array.of_list ratios in
          let m = Util.Stats.mean r in
          if m > 0.0 then Util.Stats.stddev r /. m else Float.nan
      in
      { term = p.term; counter = p.counter; n; pearson_r; scale; drift })
    pairings
