type sched = {
  stalls_per_slot : float;
  fma_issue_rate : float;
  crit_path_cycles : int;
  dual_issue_frac : float;
  sched_ilp : float;
  peak_fregs : int;
  peak_iregs : int;
}

let of_summary (s : Ptx.Scoreboard.summary) =
  { stalls_per_slot = s.Ptx.Scoreboard.stalls_per_slot;
    fma_issue_rate = s.fma_issue_rate;
    crit_path_cycles = s.crit_path_cycles;
    dual_issue_frac = s.dual_issue_frac;
    sched_ilp = s.ilp;
    peak_fregs = s.peak_fregs;
    peak_iregs = s.peak_iregs }

type t = {
  name : string;
  dtype : Ptx.Types.dtype;
  vectorized_fp16 : bool;
  threads_per_block : int;
  regs_per_thread : int;
  shared_bytes : int;
  grid_m : int;
  grid_n : int;
  grid_k : int;
  tile_m : int;
  tile_n : int;
  u_depth : int;
  useful_flops : float;
  issued_fmas : float;
  fma_flops : float;
  ialu_per_fma : float;
  extra_instr_frac : float;
  load_a_bytes : float;
  load_b_bytes : float;
  store_bytes : float;
  atom_ops : float;
  coalescing : float;
  tx_coalescing : float;
  shared_traffic_bytes : float;
  shared_conflict_factor : float;
  ilp : float;
  mlp : float;
  barriers_per_block : float;
  k_iters : float;
  sched : sched option;
}

let grid_blocks t = t.grid_m * t.grid_n * t.grid_k
let total_threads t = grid_blocks t * t.threads_per_block

let occupancy_usage t =
  (* With a scoreboard attached, the measured peak pressure refines the
     closed-form register estimate when it is larger: occupancy is
     pressure-capped by what an optimal allocator actually needs. *)
  let regs =
    match t.sched with
    | Some s -> max t.regs_per_thread (s.peak_fregs + s.peak_iregs)
    | None -> t.regs_per_thread
  in
  { Occupancy.regs_per_thread = regs;
    shared_bytes = t.shared_bytes;
    threads_per_block = t.threads_per_block }

let with_sched t summary = { t with sched = Some (of_summary summary) }
