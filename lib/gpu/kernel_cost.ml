type t = {
  name : string;
  dtype : Ptx.Types.dtype;
  vectorized_fp16 : bool;
  threads_per_block : int;
  regs_per_thread : int;
  shared_bytes : int;
  grid_m : int;
  grid_n : int;
  grid_k : int;
  tile_m : int;
  tile_n : int;
  u_depth : int;
  useful_flops : float;
  issued_fmas : float;
  fma_flops : float;
  ialu_per_fma : float;
  extra_instr_frac : float;
  load_a_bytes : float;
  load_b_bytes : float;
  store_bytes : float;
  atom_ops : float;
  coalescing : float;
  tx_coalescing : float;
  shared_traffic_bytes : float;
  shared_conflict_factor : float;
  ilp : float;
  mlp : float;
  barriers_per_block : float;
  k_iters : float;
}

let grid_blocks t = t.grid_m * t.grid_n * t.grid_k
let total_threads t = grid_blocks t * t.threads_per_block

let occupancy_usage t =
  { Occupancy.regs_per_thread = t.regs_per_thread;
    shared_bytes = t.shared_bytes;
    threads_per_block = t.threads_per_block }
