type arch = Maxwell | Pascal

type t = {
  name : string;
  arch : arch;
  sm_count : int;
  cores_per_sm : int;
  clock_ghz : float;
  dram_bw_gbs : float;
  l2_bytes : int;
  shared_per_sm : int;
  shared_per_block_max : int;
  regs_per_sm : int;
  regs_per_thread_max : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  warp_size : int;
  fma_latency : float;
  mem_latency : float;
  shared_bw_bytes_per_clk : int;
  fp64_ratio : float;
  has_fp16x2 : bool;
  atom_cycles : float;
  launch_overhead_us : float;
}

let gtx980ti =
  { name = "GTX 980 Ti";
    arch = Maxwell;
    sm_count = 22;
    cores_per_sm = 128;
    clock_ghz = 1.029;              (* sustained: 2816 * 2 * 1.029 = 5.8 TFLOPS *)
    dram_bw_gbs = 336.0;
    l2_bytes = 3 * 1024 * 1024;
    shared_per_sm = 96 * 1024;
    shared_per_block_max = 48 * 1024;
    regs_per_sm = 65536;
    regs_per_thread_max = 255;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 32;
    warp_size = 32;
    fma_latency = 6.0;
    mem_latency = 370.0;
    shared_bw_bytes_per_clk = 128;
    fp64_ratio = 1.0 /. 32.0;
    has_fp16x2 = false;
    atom_cycles = 2.5;
    launch_overhead_us = 4.0 }

let p100 =
  { name = "Tesla P100";
    arch = Pascal;
    sm_count = 56;
    cores_per_sm = 64;
    clock_ghz = 1.353;              (* 3584 * 2 * 1.353 = 9.7 TFLOPS *)
    dram_bw_gbs = 732.0;
    l2_bytes = 4 * 1024 * 1024;
    shared_per_sm = 64 * 1024;
    shared_per_block_max = 48 * 1024;
    regs_per_sm = 65536;
    regs_per_thread_max = 255;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 32;
    warp_size = 32;
    fma_latency = 6.0;
    mem_latency = 440.0;
    shared_bw_bytes_per_clk = 128;
    fp64_ratio = 0.5;
    has_fp16x2 = true;
    atom_cycles = 2.0;
    launch_overhead_us = 4.0 }

let all = [ gtx980ti; p100 ]

(* Two views of data-type speed. [flops_rate] scales peak flops: fp16x2
   doubles flops on devices with the instruction; elsewhere fp16 runs at
   the fp32 rate (promoted, or two-op emulation of packed kernels).
   [instr_rate] scales *instruction* throughput, which is what the timing
   model divides instruction counts by: a packed-fp16 kernel on a device
   without fp16x2 issues at half rate (each packed FMA costs two fp32
   FMAs), cancelling its halved instruction count. *)
let flops_rate t (dtype : Ptx.Types.dtype) ~vectorized =
  match dtype with
  | F32 -> 1.0
  | F64 -> t.fp64_ratio
  | F16 -> if vectorized && t.has_fp16x2 then 2.0 else 1.0

let instr_rate t (dtype : Ptx.Types.dtype) ~vectorized =
  match dtype with
  | F32 -> 1.0
  | F64 -> t.fp64_ratio
  | F16 -> if vectorized then (if t.has_fp16x2 then 1.0 else 0.5) else 1.0

let peak_tflops t dtype ~vectorized =
  let cores = float_of_int (t.sm_count * t.cores_per_sm) in
  2.0 *. cores *. t.clock_ghz *. flops_rate t dtype ~vectorized /. 1000.0

let fma_warp_throughput t dtype ~vectorized =
  float_of_int t.cores_per_sm /. float_of_int t.warp_size *. instr_rate t dtype ~vectorized

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s (%s): %d SMs x %d cores @ %.3f GHz, %.0f GB/s, %d KB L2, %d KB shared/SM@]"
    t.name
    (match t.arch with Maxwell -> "Maxwell" | Pascal -> "Pascal")
    t.sm_count t.cores_per_sm t.clock_ghz t.dram_bw_gbs (t.l2_bytes / 1024)
    (t.shared_per_sm / 1024)
