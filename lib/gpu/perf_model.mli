(** Analytical kernel timing model in the style of Volkov's dissertation —
    the model family the paper cites (its Eq. 2 and 3) as the structure an
    input-aware MLP must implicitly learn.

    Execution time is the maximum of the arithmetic-pipeline, DRAM and
    shared-memory pipeline times (imperfect overlap adds a fraction of the
    non-dominant terms), each subject to a latency-hiding ceiling driven
    by resident warps and per-thread ILP/MLP, plus barrier, atomic,
    wave-quantization and launch overheads.

    Nothing in this module is specific to a benchmark: speedups in the
    reproduced figures emerge from resource trade-offs, not from oracle
    constants. *)

type bound = Compute | Memory | Shared_pipe | Latency

val bound_name : bound -> string

type report = {
  seconds : float;
  tflops : float;           (** useful flops / seconds *)
  occupancy : float;        (** effective resident warps / max warps *)
  warps_per_sm : int;       (** effective resident warps (grid-limited) *)
  blocks_per_sm : int;      (** occupancy-calculator residency *)
  l2_hit_rate : float;      (** traffic-weighted global-load hit rate *)
  effective_dram_gbs : float;
  global_bytes : float;
      (** pre-L2 global transaction traffic (loads inflated by the
          coalescing factor, plus stores and atomics): the mem term's
          traffic driver, comparable against emulated transaction
          counters independent of the bandwidth model *)
  bound : bound;
  arith_seconds : float;
  mem_seconds : float;
  shared_seconds : float;
  overhead_seconds : float; (** barriers + atomics + launch *)
  stall_cycles : float;
      (** predicted warp-level hazard stall cycles over the whole grid:
          the scoreboard's steady-state stalls per issue slot times the
          warp issue-slot count; 0 when no {!Kernel_cost.sched} is
          attached. The attribution pass correlates this against the
          interpreter's latency-producing instruction counts. *)
}

val predict : Device.t -> Kernel_cost.t -> report option
(** [None] when the kernel cannot launch on the device (occupancy 0 —
    the "possible but not legal" X̂ \ X region of §4).

    When [Kernel_cost.sched] is present (see {!Kernel_cost.with_sched}),
    two terms sharpen: the arithmetic pipeline's latency ceiling uses the
    scoreboard's measured steady-state FMA issue rate instead of the
    coarse ilp/fma_latency guess, and occupancy uses pressure-capped
    registers. With [sched = None] the prediction is bit-identical to
    the pre-scoreboard model. *)
