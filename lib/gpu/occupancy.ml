type usage = {
  regs_per_thread : int;
  shared_bytes : int;
  threads_per_block : int;
}

type limiter = By_threads | By_registers | By_shared | By_blocks | By_block_limit

type result = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;
  limiter : limiter;
}

let legal (d : Device.t) u =
  u.threads_per_block > 0
  && u.threads_per_block <= d.max_threads_per_block
  && u.threads_per_block mod d.warp_size = 0
  && u.regs_per_thread <= d.regs_per_thread_max
  && u.shared_bytes <= d.shared_per_block_max
  && u.regs_per_thread * u.threads_per_block <= d.regs_per_sm

let calc (d : Device.t) u =
  if not (legal d u) then
    { blocks_per_sm = 0; warps_per_sm = 0; occupancy = 0.0; limiter = By_block_limit }
  else begin
    (* Registers are allocated with warp granularity, in multiples of 8 per
       thread, matching the CUDA occupancy calculator's behaviour. *)
    let regs = max 16 ((u.regs_per_thread + 7) / 8 * 8) in
    let by_threads = d.max_threads_per_sm / u.threads_per_block in
    let by_regs = d.regs_per_sm / (regs * u.threads_per_block) in
    let by_shared =
      if u.shared_bytes = 0 then d.max_blocks_per_sm
      else d.shared_per_sm / (max 256 u.shared_bytes)
    in
    let blocks, limiter =
      List.fold_left
        (fun (b, lim) (b', lim') -> if b' < b then (b', lim') else (b, lim))
        (max_int, By_blocks)
        [ (by_threads, By_threads); (by_regs, By_registers); (by_shared, By_shared);
          (d.max_blocks_per_sm, By_blocks) ]
    in
    if blocks <= 0 then
      { blocks_per_sm = 0; warps_per_sm = 0; occupancy = 0.0; limiter }
    else begin
      let warps_per_block = (u.threads_per_block + d.warp_size - 1) / d.warp_size in
      let warps = blocks * warps_per_block in
      let max_warps = d.max_threads_per_sm / d.warp_size in
      { blocks_per_sm = blocks;
        warps_per_sm = warps;
        occupancy = float_of_int warps /. float_of_int max_warps;
        limiter }
    end
  end
