let l2_bandwidth_gbs (d : Device.t) = 3.0 *. d.dram_bw_gbs

type l2_result = {
  hit_a : float;
  hit_b : float;
  working_set_bytes : float;
}

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let l2_hits (d : Device.t) ~concurrent_blocks ~grid_m ~grid_n ~tile_m ~tile_n ~u_depth
    ~elem_bytes =
  let c = float_of_int (max 1 concurrent_blocks) in
  let gm = float_of_int (max 1 grid_m) and gn = float_of_int (max 1 grid_n) in
  (* Streaming footprint of one scheduling window: every resident block
     holds a pipeline of ~4 staging tiles of (tile_m + tile_n) * U elements. *)
  let tile_bytes = float_of_int ((tile_m + tile_n) * u_depth * elem_bytes) in
  let working_set = c *. tile_bytes *. 4.0 in
  let capacity = clamp01 (float_of_int d.l2_bytes /. working_set) in
  (* Deeper prefetching widens the K-window over which co-resident blocks'
     accesses overlap, so reuse survives scheduling drift. *)
  let sync = clamp01 (float_of_int u_depth /. 16.0 *. 0.75 +. 0.25) in
  (* Row-major block scheduling: ~min(c, gn) blocks of one block-row are
     co-resident and share B tiles; across rows, c/gn blocks share a
     column's A tiles. *)
  let row_span = Float.min c gn in
  let col_span = Float.max 1.0 (c /. gn) in
  let col_span = Float.min col_span gm in
  let share_b = 1.0 -. (1.0 /. Float.max 1.0 row_span) in
  let share_a = 1.0 -. (1.0 /. Float.max 1.0 col_span) in
  { hit_a = share_a *. capacity *. sync;
    hit_b = share_b *. capacity *. sync;
    working_set_bytes = working_set }

let shared_banks = 32

(* Classic banked-shared-memory serialization: lanes touching [distinct]
   words at a constant [stride] hit 32/gcd(stride,32) distinct banks, so
   the transaction replays ceil(words/banks) times (a degenerate stride
   that keeps all lanes on one word broadcasts: degree 1). *)
let stride_conflict_degree ~distinct ~stride =
  if distinct <= 1 then 1
  else begin
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    let s = max 1 (abs stride) in
    let banks_hit = shared_banks / gcd s shared_banks in
    (min distinct shared_banks + banks_hit - 1) / banks_hit
  end

let latency_limited_bw_gbs (d : Device.t) ~warps_per_sm ~mlp =
  let transactions_in_flight = float_of_int warps_per_sm *. Float.max 1.0 mlp in
  let bytes_per_cycle_per_sm = transactions_in_flight *. 128.0 /. d.mem_latency in
  bytes_per_cycle_per_sm *. float_of_int d.sm_count *. d.clock_ghz
