(** CUDA occupancy calculator.

    Determines how many blocks of a kernel can be resident on one
    streaming multiprocessor given its register, shared-memory and thread
    usage — the central quantity in the paper's §8 analysis ("smaller
    tiling factors decrease register/shared memory pressure, resulting in
    higher occupancy and therefore better latency hiding"). *)

type usage = {
  regs_per_thread : int;
  shared_bytes : int;
  threads_per_block : int;
}

(** Which resource capped residency. *)
type limiter = By_threads | By_registers | By_shared | By_blocks | By_block_limit

type result = {
  blocks_per_sm : int;  (** 0 if the kernel cannot run at all *)
  warps_per_sm : int;
  occupancy : float;    (** resident warps / max warps, in \[0,1\] *)
  limiter : limiter;
}

val calc : Device.t -> usage -> result

val legal : Device.t -> usage -> bool
(** [legal d u] iff the kernel satisfies all hard per-block limits
    (threads, registers per thread, shared memory per block) — i.e. it
    would launch without error. This is the X vs X̂ distinction of §4. *)
