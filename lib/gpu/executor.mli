(** "Run" a kernel on a device: legality check, timing-model evaluation,
    and deterministic measurement noise.

    This is the reproduction's stand-in for launching a real kernel and
    timing it with CUDA events: the tuner benchmarks thousands of
    configurations through this entry point, and the runtime inference
    stage re-evaluates its top candidates here to "smooth out the inherent
    noise" exactly as §6 describes. *)

type measurement = {
  tflops : float;     (** noisy observed performance *)
  seconds : float;    (** noisy observed time *)
  report : Perf_model.report;  (** noiseless model introspection *)
}

val default_noise : float
(** Default multiplicative log-normal noise sigma (3%), typical of
    wall-clock GPU benchmarking jitter. *)

val legal : Device.t -> Kernel_cost.t -> bool
(** Whether the kernel launches at all on the device (per-block resource
    limits; the X vs X̂ distinction of §4). *)

val measure :
  ?noise:float -> Util.Rng.t -> Device.t -> Kernel_cost.t -> measurement option
(** One noisy benchmark run; [None] if the kernel is illegal on the
    device. Under [ISAAC_TRACE] each call counts
    [executor.measurements] (or [executor.illegal]) and feeds the
    [executor.kernel_seconds] histogram — the per-config benchmark cost
    the profiler aggregates. *)

val measure_best_of :
  ?noise:float -> ?reps:int -> Util.Rng.t -> Device.t -> Kernel_cost.t ->
  measurement option
(** Best of [reps] (default 3) runs — the usual benchmarking practice of
    reporting the fastest repetition. *)
