(** Power and energy model.

    §4.1 of the paper notes that the regression target y can be "FLOPS,
    Joules, FLOPS/W..."; the evaluation uses FLOPS only. This module adds
    the energy side so the tuner can optimize efficiency instead of speed
    (exercised by the energy ablation in the benchmark harness).

    The model is the standard utilization-linear one: board power is an
    idle floor plus terms proportional to arithmetic-pipeline and
    DRAM-interface utilization, capped at the 250 W TDP both of the
    paper's devices share (Table 3). *)

val tdp_watts : Device.t -> float
(** 250 W for both test platforms. *)

val board_watts : Device.t -> Perf_model.report -> float
(** Average board power while the kernel runs, from the report's
    pipeline-utilization breakdown. Always within \[idle, TDP\]. *)

val kernel_joules : Device.t -> Perf_model.report -> float
(** Energy of one kernel execution: [board_watts * seconds]. *)

val gflops_per_watt : Device.t -> Perf_model.report -> float
(** Efficiency: useful GFLOPS divided by board power. *)
