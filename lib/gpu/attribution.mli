(** Model-vs-counter attribution: cross-check the analytical timing
    model against the interpreter's emulated hardware counters.

    {!Perf_model} decomposes predicted kernel time into pipeline terms
    (arithmetic, global memory, shared memory, overheads — the cost
    structure of the paper's Eq. 2–3). {!Ptx.Interp} independently
    executes the same kernels and counts what actually happened: issue
    slots, warp-level global/shared transactions, barrier waits. Each
    cost term should be driven by its counter; this module measures how
    well it is, over a sampled set of verified configurations, so model
    drift is a first-class observable rather than something discovered
    when a reproduced figure silently bends.

    A high Pearson r with low drift says the model term tracks the
    counter up to a constant factor (the device's seconds-per-unit). A
    high r with high drift says the ranking survives but the exchange
    rate wobbles across configurations — usually a second-order effect
    (latency ceilings, wave quantization) the term folds in. A low r is
    a modelling bug. *)

type sample = {
  label : string;  (** config description, for debugging *)
  kernel_hash : int64 option;
  (** {!Ptx.Encode.hash} of the executed kernel (post-allocation), when
      the producer computed it — the same identity the plan cache uses,
      so an attribution outlier can be joined back to the exact packed
      kernel that produced it. [None] for synthetic samples. *)
  report : Perf_model.report;        (** predicted decomposition *)
  counters : Ptx.Interp.counters;    (** measured ground truth *)
}

type pairing = {
  term : string;          (** [Perf_model.report] field name *)
  counter : string;       (** interpreter counter (or combination) name *)
  term_of : Perf_model.report -> float;
  counter_of : Ptx.Interp.counters -> float;
}

val pairings : pairing list
(** The five term↔counter pairs:
    [arith_seconds ↔ interp.issue_slots] (all dynamically issued
    instructions, including predicated-off ones),
    [mem_seconds ↔ interp.global_transactions] (load + store; the term
    side is {!Perf_model.report.global_bytes}, the mem term's pre-L2
    traffic driver, because the term's seconds additionally divide by a
    config-dependent effective bandwidth that counters cannot see),
    [shared_seconds ↔ interp.shared_transactions],
    [overhead_seconds ↔ interp.bar_waits],
    [stall_cycles ↔ interp.latency_slots] (the scoreboard's predicted
    hazard stalls against the dynamic count of latency-producing
    instructions — FMAs plus shared and global loads; only meaningful
    for samples whose {!Kernel_cost.sched} was attached). *)

type row = {
  term : string;
  counter : string;
  n : int;            (** samples correlated *)
  pearson_r : float;  (** nan when fewer than 2 samples or zero variance *)
  scale : float;      (** mean(term) / mean(counter): implied s per unit *)
  drift : float;      (** coefficient of variation of the per-sample
                          term/counter ratio over samples with a nonzero
                          counter; 0 = perfectly proportional *)
}

val correlate : sample list -> row list
(** One row per {!pairings} entry over the given samples. *)
