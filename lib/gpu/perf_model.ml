type bound = Compute | Memory | Shared_pipe | Latency

let bound_name = function
  | Compute -> "compute"
  | Memory -> "memory"
  | Shared_pipe -> "shared"
  | Latency -> "latency"

type report = {
  seconds : float;
  tflops : float;
  occupancy : float;
  warps_per_sm : int;
  blocks_per_sm : int;
  l2_hit_rate : float;
  effective_dram_gbs : float;
  global_bytes : float;
  bound : bound;
  arith_seconds : float;
  mem_seconds : float;
  shared_seconds : float;
  overhead_seconds : float;
  stall_cycles : float;
}

let predict (d : Device.t) (c : Kernel_cost.t) =
  let occ = Occupancy.calc d (Kernel_cost.occupancy_usage c) in
  if occ.blocks_per_sm = 0 then None
  else begin
    let sm = float_of_int d.sm_count in
    let clock_hz = d.clock_ghz *. 1e9 in
    let blocks = Kernel_cost.grid_blocks c in
    let blocks_f = float_of_int blocks in
    let warps_per_block = (c.threads_per_block + d.warp_size - 1) / d.warp_size in
    (* Effective residency: a small grid cannot fill the residency the
       occupancy calculator allows (the mechanism behind §8.1's 17% vs
       10% occupancy comparison). *)
    let assigned_per_sm = int_of_float (Float.ceil (blocks_f /. sm)) in
    let resident_blocks = min occ.blocks_per_sm assigned_per_sm in
    let warps_eff = resident_blocks * warps_per_block in
    let warps_eff_f = float_of_int warps_eff in
    let max_warps = float_of_int (d.max_threads_per_sm / d.warp_size) in
    (* Wave quantization: the SMs that receive one extra block set the
       pace; with few blocks, idle SMs inflate this factor. *)
    let quant = float_of_int assigned_per_sm *. sm /. blocks_f in

    (* --- arithmetic pipeline ------------------------------------------- *)
    let fma_tp = Device.fma_warp_throughput d c.dtype ~vectorized:c.vectorized_fp16 in
    let ialu_tp = float_of_int d.cores_per_sm /. float_of_int d.warp_size in
    (* Latency ceiling (paper Eq. 2): each warp sustains at most
       ilp/fma_latency FMA issues per cycle, 1 when its independent chains
       cover the pipeline latency. With a static scoreboard schedule
       attached, the coarse ilp/latency guess is replaced by the measured
       steady-state FMA issue rate — FMA slots over FMA slots plus stall
       cycles — which additionally sees the latency hiding that
       interleaved addressing and shared-load slots provide. The two
       agree in the limits: a single dependent chain gives 1/fma_latency,
       full independence gives 1. *)
    let per_warp_issue =
      match c.sched with
      | Some s when s.Kernel_cost.fma_issue_rate > 0.0 ->
        Float.min 1.0 s.Kernel_cost.fma_issue_rate
      | _ -> Float.min 1.0 (c.ilp /. d.fma_latency)
    in
    let fma_tp_eff = Float.min fma_tp (warps_eff_f *. per_warp_issue) in
    let warp_size = float_of_int d.warp_size in
    let warp_fmas = c.issued_fmas /. warp_size in
    let warp_ialu = c.issued_fmas *. (c.ialu_per_fma +. c.extra_instr_frac) /. warp_size in
    (* Integer/addressing work partially dual-issues with FMAs. *)
    let arith_cycles = (warp_fmas /. fma_tp_eff) +. (0.5 *. warp_ialu /. ialu_tp) in
    let arith_seconds = arith_cycles /. sm /. clock_hz in
    let latency_capped = fma_tp_eff < fma_tp *. 0.95 in
    (* Predicted warp-level stall cycles over the whole grid: static
       stalls per issue slot times warp issue slots. Zero without a
       schedule (and for stall-free schedules). *)
    let stall_cycles =
      match c.sched with
      | Some s -> s.Kernel_cost.stalls_per_slot *. (warp_fmas +. warp_ialu)
      | None -> 0.0
    in

    (* --- global memory -------------------------------------------------- *)
    let elem_bytes = Ptx.Types.dtype_bytes c.dtype in
    let concurrent = min blocks (occ.blocks_per_sm * d.sm_count) in
    let l2 =
      Memory_model.l2_hits d ~concurrent_blocks:concurrent ~grid_m:c.grid_m
        ~grid_n:c.grid_n ~tile_m:c.tile_m ~tile_n:c.tile_n ~u_depth:c.u_depth
        ~elem_bytes
    in
    let loads = c.load_a_bytes +. c.load_b_bytes in
    let l2_served = (c.load_a_bytes *. l2.hit_a) +. (c.load_b_bytes *. l2.hit_b) in
    let l2_hit_rate = if loads > 0.0 then l2_served /. loads else 0.0 in
    let atom_bytes = c.atom_ops *. 2.0 *. float_of_int elem_bytes in
    let dram_bytes =
      ((loads -. l2_served) /. c.coalescing) +. c.store_bytes +. atom_bytes
    in
    (* Pre-L2 transaction traffic: what the memory pipeline issues,
       regardless of where it is served. Uses the transaction-level
       segment utilization (no L2 line-completion credit) because partial
       lines still issue whole transactions. Atomics are excluded: they
       take the reduction path (their time lives in the overhead term)
       and load/store transaction counters do not see them. This is the
       quantity emulated transaction counters measure (Attribution pairs
       it with gld+gst_transactions). *)
    let global_bytes = (loads /. c.tx_coalescing) +. c.store_bytes in
    (* Little's law: not enough warps in flight caps achievable DRAM
       bandwidth below peak (paper Eq. 2's memory half). *)
    let bw_lat = Memory_model.latency_limited_bw_gbs d ~warps_per_sm:warps_eff ~mlp:c.mlp in
    let dram_bw_eff = Float.min d.dram_bw_gbs bw_lat in
    let dram_seconds = dram_bytes /. 1e9 /. dram_bw_eff in
    let l2_bw = Float.min (Memory_model.l2_bandwidth_gbs d) (2.0 *. bw_lat) in
    let l2_seconds = l2_served /. 1e9 /. l2_bw in
    let mem_seconds = dram_seconds +. l2_seconds in

    (* --- shared-memory pipeline ----------------------------------------- *)
    let shared_bw = float_of_int d.shared_bw_bytes_per_clk *. sm *. clock_hz in
    let shared_seconds =
      c.shared_traffic_bytes *. Float.max 1.0 c.shared_conflict_factor /. shared_bw
    in

    (* --- overheads ------------------------------------------------------ *)
    (* Barrier cost: pipeline-drain bubble, hidden when other resident
       blocks can issue in the gap. *)
    let bar_cycles = 20.0 +. (2.0 *. float_of_int warps_per_block) in
    let bar_seconds =
      c.barriers_per_block *. blocks_f /. Float.max 1.0 (float_of_int concurrent)
      *. bar_cycles /. float_of_int (max 1 resident_blocks) /. clock_hz
    in
    (* Atomics: throughput-limited, with extra serialization when many
       K_G-split blocks contend on the same output tile (the "decreased
       write bandwidth" trade-off of §8.2). *)
    let atom_conflict = sqrt (float_of_int (max 1 c.grid_k)) in
    let atom_seconds = c.atom_ops *. d.atom_cycles *. atom_conflict /. sm /. clock_hz in
    let launch_seconds = d.launch_overhead_us *. 1e-6 in
    let overhead_seconds = bar_seconds +. atom_seconds +. launch_seconds in

    (* --- combine --------------------------------------------------------- *)
    let busy = Float.max arith_seconds (Float.max mem_seconds shared_seconds) in
    let residue = arith_seconds +. mem_seconds +. shared_seconds -. busy in
    let busy = busy +. (0.05 *. residue) in
    let seconds = (busy *. quant) +. overhead_seconds in
    let bound =
      if arith_seconds >= mem_seconds && arith_seconds >= shared_seconds then
        if latency_capped then Latency else Compute
      else if mem_seconds >= shared_seconds then
        if dram_bw_eff < d.dram_bw_gbs *. 0.95 then Latency else Memory
      else Shared_pipe
    in
    Some
      { seconds;
        tflops = c.useful_flops /. seconds /. 1e12;
        occupancy = warps_eff_f /. max_warps;
        warps_per_sm = warps_eff;
        blocks_per_sm = occ.blocks_per_sm;
        l2_hit_rate;
        effective_dram_gbs = dram_bw_eff;
        global_bytes;
        bound;
        arith_seconds;
        mem_seconds;
        shared_seconds;
        overhead_seconds;
        stall_cycles }
  end
