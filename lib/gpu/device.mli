(** GPU device descriptors.

    Table 3 of the paper: the two test platforms are a GTX 980 Ti
    (Maxwell GM200, consumer) and a Tesla P100 PCIe (Pascal GP100,
    server). These records expose the *architectural* constants the
    analytical timing model needs — the "hidden hardware features" the
    paper's MLP must implicitly learn. *)

type arch = Maxwell | Pascal

type t = {
  name : string;
  arch : arch;
  sm_count : int;
  cores_per_sm : int;             (** fp32 lanes per SM *)
  clock_ghz : float;              (** sustained boost clock *)
  dram_bw_gbs : float;            (** peak DRAM bandwidth, GB/s *)
  l2_bytes : int;
  shared_per_sm : int;            (** shared memory per SM, bytes *)
  shared_per_block_max : int;     (** per-block shared memory limit *)
  regs_per_sm : int;              (** 32-bit registers per SM *)
  regs_per_thread_max : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  warp_size : int;
  fma_latency : float;            (** cycles *)
  mem_latency : float;            (** DRAM round-trip, cycles *)
  shared_bw_bytes_per_clk : int;  (** shared-memory bytes/cycle/SM *)
  fp64_ratio : float;             (** fp64 throughput / fp32 throughput *)
  has_fp16x2 : bool;              (** packed half2 FMA (Pascal GP100) *)
  atom_cycles : float;            (** amortized SM-cycles per distinct-address global atomic (conflicts add a factor) *)
  launch_overhead_us : float;     (** fixed kernel launch cost *)
}

val gtx980ti : t
(** Maxwell GM200: 2816 cores, ~5.8 fp32 TFLOPS, 336 GB/s GDDR5, 3 MB L2,
    96 KB shared/SM, fp64 = 1/32, no fp16x2 (fp16 executes at fp32 rate
    with halved storage). *)

val p100 : t
(** Pascal GP100: 3584 cores, ~9.7 fp32 TFLOPS, 732 GB/s HBM2, 4 MB L2,
    64 KB shared/SM, fp64 = 1/2, fp16x2 doubles fp16 throughput. *)

val all : t list

val peak_tflops : t -> Ptx.Types.dtype -> vectorized:bool -> float
(** Peak arithmetic throughput for a data-type. For [F16],
    [vectorized=true] means the kernel uses fp16x2 instructions; on a
    device without fp16x2 support the vectorized and scalar rates are
    both the fp32 rate. *)

val fma_warp_throughput : t -> Ptx.Types.dtype -> vectorized:bool -> float
(** FMA warp-instructions per cycle per SM for the data-type, e.g. 4.0 for
    fp32 on Maxwell (128 lanes / 32). *)

val pp : Format.formatter -> t -> unit
