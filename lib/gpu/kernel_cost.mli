(** Cost descriptor of a generated kernel for a {e specific} input shape.

    The kernel generators emit two artefacts from one parameterization: a
    mini-PTX program (functional behaviour, checked by the interpreter)
    and this record (timing-relevant resource usage and work counts,
    consumed by {!Perf_model}). Tests cross-check the two on small shapes
    by comparing these static counts against the interpreter's dynamic
    counters. *)

(** Static schedule summary from {!Ptx.Scoreboard}, when the kernel's
    mini-PTX has been analyzed. [None] keeps the coarse closed-form
    ILP/register estimates (identical to the model before the scoreboard
    existed). *)
type sched = {
  stalls_per_slot : float;   (** steady-state stall cycles per issue slot *)
  fma_issue_rate : float;    (** per-warp FMA issue ceiling in [0,1]
                                 (0 for FMA-free kernels: no information) *)
  crit_path_cycles : int;    (** loop-carried dependence critical path *)
  dual_issue_frac : float;
  sched_ilp : float;         (** dependence-window ILP estimate *)
  peak_fregs : int;          (** MaxLive register pressure *)
  peak_iregs : int;
}

val of_summary : Ptx.Scoreboard.summary -> sched

type t = {
  name : string;
  dtype : Ptx.Types.dtype;
  vectorized_fp16 : bool;     (** kernel uses fp16x2 packed math *)
  (* resources *)
  threads_per_block : int;
  regs_per_thread : int;
  shared_bytes : int;
  (* geometry *)
  grid_m : int;               (** blocks along the M (rows) dimension *)
  grid_n : int;
  grid_k : int;               (** K_G: grid-level reduction splitting *)
  tile_m : int;               (** M_L: block tile height *)
  tile_n : int;               (** N_L: block tile width *)
  u_depth : int;              (** U: shared-memory prefetch depth *)
  (* work, whole grid *)
  useful_flops : float;       (** 2·M·N·K — what TFLOPS is measured against *)
  issued_fmas : float;        (** FMA instructions issued, incl. tile padding waste *)
  fma_flops : float;          (** flops per FMA instruction (2, or 4 for fp16x2) *)
  ialu_per_fma : float;       (** addressing/loop overhead instructions per FMA *)
  extra_instr_frac : float;   (** extra instruction fraction (e.g. branch-based
                                  bounds checks in §8.3's CUDA-C mode; ~0 for
                                  predication) *)
  (* memory, whole grid, bytes *)
  load_a_bytes : float;       (** global loads from the A-side operand *)
  load_b_bytes : float;
  store_bytes : float;        (** global stores of the output *)
  atom_ops : float;           (** global atomic reductions (K_G > 1) *)
  coalescing : float;         (** DRAM transaction efficiency in (0,1] *)
  tx_coalescing : float;
      (** transaction-level segment utilization in (0,1]: the fraction of
          each 128-byte segment a single warp access group consumes,
          without the L2 line-completion credit [coalescing] grants to
          DRAM bytes — partial lines still issue whole transactions *)
  shared_traffic_bytes : float;
  shared_conflict_factor : float;
                              (** mean bank-serialization degree of the
                                  kernel's shared transactions (≥ 1);
                                  multiplies the shared-pipeline time *)
  (* schedule structure *)
  ilp : float;                (** independent FMA chains per thread (M_S·N_S·K_S) *)
  mlp : float;                (** outstanding global loads per thread in the
                                  staging phase (memory-level parallelism) *)
  barriers_per_block : float;
  k_iters : float;            (** main-loop trip count per block *)
  sched : sched option;       (** static scoreboard schedule, when analyzed *)
}

val grid_blocks : t -> int
(** Total blocks launched: [grid_m * grid_n * grid_k]. *)

val total_threads : t -> int

val occupancy_usage : t -> Occupancy.usage
(** Registers come from [regs_per_thread], raised to the scoreboard's
    measured peak pressure when a schedule is attached (pressure-capped
    occupancy). *)

val with_sched : t -> Ptx.Scoreboard.summary -> t
(** Attach a scoreboard summary to a cost descriptor. *)
