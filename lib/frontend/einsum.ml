exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type role = Batch | M | N | K

type spec = {
  a_indices : char list;
  b_indices : char list;
  out_indices : char list;
  roles : (char * role) list;
}

let chars_of_string s = List.init (String.length s) (String.get s)

let check_operand name idx =
  List.iter
    (fun c ->
      if not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) then
        fail "%s: index '%c' is not a letter" name c)
    idx;
  let sorted = List.sort compare idx in
  let rec dup = function
    | a :: (b :: _ as tl) -> if a = b then Some a else dup tl
    | _ -> None
  in
  match dup sorted with
  | Some c -> fail "%s: repeated index '%c' (diagonals are not supported)" name c
  | None -> ()

let parse text =
  let inputs, output =
    match String.index_opt text '-' with
    | Some i when i + 1 < String.length text && text.[i + 1] = '>' ->
      (String.sub text 0 i, String.sub text (i + 2) (String.length text - i - 2))
    | _ -> fail "expected \"...,...->...\" (missing \"->\")"
  in
  let a_str, b_str =
    match String.split_on_char ',' inputs with
    | [ a; b ] -> (a, b)
    | _ -> fail "expected exactly two comma-separated operands"
  in
  let a_indices = chars_of_string (String.trim a_str) in
  let b_indices = chars_of_string (String.trim b_str) in
  let out_indices = chars_of_string (String.trim output) in
  if a_indices = [] || b_indices = [] then fail "operands must be non-empty";
  check_operand "operand A" a_indices;
  check_operand "operand B" b_indices;
  check_operand "output" out_indices;
  let mem c l = List.mem c l in
  (* Classify every index that appears anywhere. *)
  let all =
    List.sort_uniq compare (a_indices @ b_indices @ out_indices)
  in
  let roles =
    List.map
      (fun c ->
        let in_a = mem c a_indices
        and in_b = mem c b_indices
        and in_out = mem c out_indices in
        let role =
          match (in_a, in_b, in_out) with
          | true, true, true -> Batch
          | true, false, true -> M
          | false, true, true -> N
          | true, true, false -> K
          | true, false, false | false, true, false ->
            fail
              "index '%c' appears in one input but not the output (per-operand \
               reductions are not supported)"
              c
          | false, false, true -> fail "output index '%c' missing from inputs" c
          | false, false, false -> assert false
        in
        (c, role))
      all
  in
  { a_indices; b_indices; out_indices; roles }

let to_string s =
  let str l = String.init (List.length l) (List.nth l) in
  Printf.sprintf "%s,%s->%s" (str s.a_indices) (str s.b_indices) (str s.out_indices)

let role_of spec c = List.assoc c spec.roles

type sizes = (char * int) list

let size_of sizes c =
  match List.assoc_opt c sizes with
  | Some n when n > 0 -> n
  | Some _ -> invalid_arg (Printf.sprintf "Einsum: index '%c' has non-positive size" c)
  | None -> invalid_arg (Printf.sprintf "Einsum: no size given for index '%c'" c)

let group spec role = List.filter (fun c -> role_of spec c = role) spec.out_indices

(* Contracted indices, in their order of appearance in A (the canonical
   K-ordering). *)
let k_group spec = List.filter (fun c -> role_of spec c = K) spec.a_indices

let extent sizes idx = List.fold_left (fun acc c -> acc * size_of sizes c) 1 idx

let gemm_shape spec sizes =
  ( extent sizes (group spec Batch),
    extent sizes (group spec M),
    extent sizes (group spec N),
    extent sizes (k_group spec) )

(* --- reorder: repack an operand, row-major over [src] indices, into
   row-major over [dst] indices (same index set). --- *)
let reorder sizes ~src ~dst data =
  if src = dst then data
  else begin
    let n = List.length src in
    assert (List.length dst = n);
    let dims_dst = Array.of_list (List.map (size_of sizes) dst) in
    (* Position of each dst index inside src, then its stride in src. *)
    let src_arr = Array.of_list src in
    let src_strides = Array.make n 1 in
    for i = n - 2 downto 0 do
      src_strides.(i) <- src_strides.(i + 1) * size_of sizes src_arr.(i + 1)
    done;
    let stride_in_src =
      Array.of_list
        (List.map
           (fun c ->
             let rec find i = if src_arr.(i) = c then i else find (i + 1) in
             src_strides.(find 0))
           dst)
    in
    let total = Array.fold_left ( * ) 1 dims_dst in
    let out = Array.make total 0.0 in
    let counter = Array.make n 0 in
    let src_off = ref 0 in
    for d = 0 to total - 1 do
      out.(d) <- data.(!src_off);
      (* mixed-radix increment, updating the source offset incrementally *)
      let rec bump i =
        if i >= 0 then begin
          counter.(i) <- counter.(i) + 1;
          src_off := !src_off + stride_in_src.(i);
          if counter.(i) = dims_dst.(i) then begin
            src_off := !src_off - (counter.(i) * stride_in_src.(i));
            counter.(i) <- 0;
            bump (i - 1)
          end
        end
      in
      bump (n - 1)
    done;
    out
  end

(* Canonicalize one operand to (batch, rows, cols) row-major, where rows
   and cols are the given groups. If the operand is already ordered
   (batch, cols, rows) we avoid the copy by flagging a transposition for
   the GEMM generator instead — per batch slice the matrix is then stored
   cols-major, exactly the generator's [trans] convention. *)
let canonicalize sizes ~indices ~batch ~rows ~cols data =
  (* A broadcast operand carries no batch indices; canonicalize against
     the batch indices it actually has. *)
  let batch = List.filter (fun c -> List.mem c indices) batch in
  let want = batch @ rows @ cols in
  let want_t = batch @ cols @ rows in
  if indices = want then (data, false)
  else if indices = want_t then (data, true)
  else (reorder sizes ~src:indices ~dst:want data, false)

let default_config =
  { Codegen.Gemm_params.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1;
    kg = 1; vec = 1; db = 1 }

let pick_config ?engine ?config input =
  match config with
  | Some c -> c
  | None ->
    (match engine with
     | Some e ->
       (match Isaac.plan_gemm e input with
        | Some plan -> plan.config
        | None -> default_config)
     | None -> default_config)

let contract ?engine ?config spec sizes ~a ~b =
  let batch_idx = group spec Batch in
  let m_idx = group spec M in
  let n_idx = group spec N in
  let k_idx = k_group spec in
  let nb = extent sizes batch_idx in
  let m = extent sizes m_idx in
  let n = extent sizes n_idx in
  let k = extent sizes k_idx in
  let expect name idx arr =
    let want = extent sizes idx in
    if Array.length arr <> want then
      invalid_arg
        (Printf.sprintf "Einsum.contract: %s has %d elements, expected %d" name
           (Array.length arr) want)
  in
  expect "A" spec.a_indices a;
  expect "B" spec.b_indices b;
  let a_can, a_trans =
    canonicalize sizes ~indices:spec.a_indices ~batch:batch_idx ~rows:m_idx
      ~cols:k_idx a
  in
  let b_can, b_trans =
    canonicalize sizes ~indices:spec.b_indices ~batch:batch_idx ~rows:k_idx
      ~cols:n_idx b
  in
  (* Broadcast: an operand missing all the batch indices is reused for
     every batch element. *)
  let a_batched = List.exists (fun c -> List.mem c spec.a_indices) batch_idx in
  let b_batched = List.exists (fun c -> List.mem c spec.b_indices) batch_idx in
  if batch_idx <> [] && a_batched && not (List.for_all (fun c -> List.mem c spec.a_indices) batch_idx)
  then fail "operand A must carry all batch indices or none";
  if batch_idx <> [] && b_batched && not (List.for_all (fun c -> List.mem c spec.b_indices) batch_idx)
  then fail "operand B must carry all batch indices or none";
  let input = Codegen.Gemm_params.input ~a_trans ~b_trans m n k in
  let cfg = pick_config ?engine ?config input in
  if not (Codegen.Gemm_params.structurally_legal input cfg) then
    invalid_arg "Einsum.contract: supplied kernel config is illegal for this shape";
  let out =
    if nb > 1 && a_batched && b_batched then
      (* Both operands carry the batch: one strided-batched launch. *)
      Codegen.Gemm.run_batched ~batch:nb input cfg ~a:a_can ~b:b_can
    else begin
      let out = Array.make (nb * m * n) 0.0 in
      for bi = 0 to nb - 1 do
        let slice arr batched len =
          if batched then Array.sub arr (bi * len) len else arr
        in
        let a_b = slice a_can a_batched (m * k) in
        let b_b = slice b_can b_batched (k * n) in
        let c_b = Codegen.Gemm.run input cfg ~a:a_b ~b:b_b in
        Array.blit c_b 0 out (bi * m * n) (m * n)
      done;
      out
    end
  in
  (* The GEMM result is row-major over batch @ m @ n; permute to the
     requested output order. *)
  reorder sizes ~src:(batch_idx @ m_idx @ n_idx) ~dst:spec.out_indices out

let reference spec sizes ~a ~b =
  let strides indices =
    let arr = Array.of_list indices in
    let n = Array.length arr in
    let s = Array.make n 1 in
    for i = n - 2 downto 0 do
      s.(i) <- s.(i + 1) * size_of sizes arr.(i + 1)
    done;
    fun assign ->
      let off = ref 0 in
      Array.iteri (fun i c -> off := !off + (List.assoc c assign * s.(i))) arr;
      !off
  in
  let a_off = strides spec.a_indices in
  let b_off = strides spec.b_indices in
  let out_off = strides spec.out_indices in
  let out = Array.make (extent sizes spec.out_indices) 0.0 in
  let k_idx = k_group spec in
  (* Iterate over all assignments of output indices, then sum over the
     contracted ones. *)
  let rec loop_out assign = function
    | [] ->
      let acc = ref 0.0 in
      let rec loop_k kassign = function
        | [] ->
          let full = assign @ kassign in
          acc := !acc +. (a.(a_off full) *. b.(b_off full))
        | c :: rest ->
          for v = 0 to size_of sizes c - 1 do
            loop_k ((c, v) :: kassign) rest
          done
      in
      loop_k [] k_idx;
      out.(out_off assign) <- !acc
    | c :: rest ->
      for v = 0 to size_of sizes c - 1 do
        loop_out ((c, v) :: assign) rest
      done
  in
  loop_out [] spec.out_indices;
  out
