(** An einsum-style tensor-contraction front-end.

    §9 of the paper names "a more flexible front-end (possibly a Domain
    Specific Language) to allow its use on problems beyond GEMM and CONV"
    as future work — the direction that eventually became Triton. This
    module provides a first step along that road: binary contractions in
    einsum notation, e.g.

    - ["mk,kn->mn"]   — matrix multiplication
    - ["km,kn->mn"]   — Aᵀ·B (covariance/Gram matrices)
    - ["bmk,bkn->bmn"] — batched matrix multiplication
    - ["mk,kn->nm"]   — product with transposed output
    - ["bij,jk->bik"] — batch only on one operand (broadcast B)

    Contractions are classified into batch / M / N / K index groups,
    operands are canonicalized (using the GEMM generator's native
    transposition support when the layout allows, repacking otherwise),
    and the computation is lowered onto the tuned, input-aware GEMM
    kernels — one launch per batch element, each planned once.

    Restrictions (rejected with [Parse_error]): single-letter indices, no
    repeated index within one operand (no diagonals), every output index
    must come from an input, every non-output index must appear in both
    inputs (a pure contraction), and the output must consist exactly of
    the non-contracted indices. *)

exception Parse_error of string

(** Role of an index in a contraction. *)
type role =
  | Batch  (** in the output and in at least one input *)
  | M      (** in A and the output only *)
  | N      (** in B and the output only *)
  | K      (** in both inputs, contracted *)

type spec = {
  a_indices : char list;
  b_indices : char list;
  out_indices : char list;
  roles : (char * role) list;  (** every distinct index, classified *)
}

val parse : string -> spec
(** Parse ["ab,bc->ac"]. Raises {!Parse_error} with a descriptive message
    on malformed or unsupported specs. *)

val to_string : spec -> string

type sizes = (char * int) list
(** Concrete extent of every index. *)

val gemm_shape : spec -> sizes -> int * int * int * int
(** [(batch, m, n, k)] extents of the lowered matrix multiplication.
    Raises [Invalid_argument] if an index is missing from [sizes]. *)

val contract :
  ?engine:Isaac.t ->
  ?config:Codegen.Gemm_params.config ->
  spec ->
  sizes ->
  a:float array ->
  b:float array ->
  float array
(** Evaluate the contraction. Operand arrays are row-major over their
    index strings; the result is row-major over [out_indices].

    Kernel selection: an explicit [config] wins; otherwise an [engine]
    (from {!Isaac.tune}) plans the lowered GEMM shape; otherwise a
    conservative default kernel is used. All paths execute the generated
    mini-PTX under the interpreter. *)

val reference : spec -> sizes -> a:float array -> b:float array -> float array
(** Naive nested-loop evaluator, the oracle for tests. *)
