type param = { name : string; values : int array }
type t = param array

let gemm : t =
  [| { name = "ms"; values = Codegen.Gemm_params.values_ms };
     { name = "ns"; values = Codegen.Gemm_params.values_ns };
     { name = "ks"; values = Codegen.Gemm_params.values_ks };
     { name = "ml"; values = Codegen.Gemm_params.values_ml };
     { name = "nl"; values = Codegen.Gemm_params.values_nl };
     { name = "u"; values = Codegen.Gemm_params.values_u };
     { name = "kl"; values = Codegen.Gemm_params.values_kl };
     { name = "kg"; values = Codegen.Gemm_params.values_kg };
     { name = "vec"; values = Codegen.Gemm_params.values_vec };
     { name = "db"; values = Codegen.Gemm_params.values_db } |]

(* The Table 1 measurement grid: "each parameter is constrained to be a
   power of two between 1 and 16" (§4.2), with no pre-restriction to
   plausible values — which is why uniform sampling accepts almost
   nothing there. *)
let pow2_16 = [| 1; 2; 4; 8; 16 |]

let table1 : t =
  Array.map (fun p -> { p with values = pow2_16 }) gemm

let size t = Array.fold_left (fun acc p -> acc * Array.length p.values) 1 t
let num_params t = Array.length t

let value_index p v =
  let rec go i =
    if i = Array.length p.values then raise Not_found
    else if p.values.(i) = v then i
    else go (i + 1)
  in
  go 0

let iter t f =
  let n = Array.length t in
  let buf = Array.make n 0 in
  let rec go i =
    if i = n then f buf
    else
      Array.iter
        (fun v ->
          buf.(i) <- v;
          go (i + 1))
        t.(i).values
  in
  go 0

(* Depth-first enumeration with subtree pruning: after assigning
   buf.(depth), the bound callback may declare the whole subtree under
   that prefix dead. Visit order of surviving leaves is identical to
   [iter]'s. *)
let iter_pruned t ~prune f =
  let n = Array.length t in
  let buf = Array.make n 0 in
  let rec go i =
    if i = n then f buf
    else
      Array.iter
        (fun v ->
          buf.(i) <- v;
          if not (prune buf i) then go (i + 1))
        t.(i).values
  in
  go 0

let random rng t = Array.map (fun p -> Util.Rng.choice rng p.values) t

let describe (t : t) cfg =
  String.concat " "
    (Array.to_list
       (Array.mapi (fun i p -> Printf.sprintf "%s=%d" p.name cfg.(i)) t))
