type objective = int array -> float option

type outcome = {
  config : int array;
  score : float;
  evaluations : int;
}

(* Shared bookkeeping: count evaluations and remember the best legal
   point ever seen. *)
type tracker = {
  mutable best : (int array * float) option;
  mutable evals : int;
  f : objective;
}

let tracker f = { best = None; evals = 0; f }

let eval t cfg =
  t.evals <- t.evals + 1;
  match t.f cfg with
  | None -> None
  | Some score ->
    (match t.best with
     | Some (_, b) when b >= score -> ()
     | _ -> t.best <- Some (Array.copy cfg, score));
    Some score

let outcome t =
  Option.map (fun (config, score) -> { config; score; evaluations = t.evals }) t.best

let random_search rng space f ~budget =
  let t = tracker f in
  for _ = 1 to budget do
    ignore (eval t (Config_space.random rng space))
  done;
  outcome t

(* Move to an adjacent candidate value of one randomly chosen parameter —
   the natural neighbourhood on ordered grids like tile sizes. *)
let neighbour rng (space : Config_space.t) cfg =
  let out = Array.copy cfg in
  let i = Util.Rng.int rng (Array.length space) in
  let p = space.(i) in
  let j = Config_space.value_index p cfg.(i) in
  let n = Array.length p.values in
  let j' =
    if n = 1 then j
    else if j = 0 then 1
    else if j = n - 1 then n - 2
    else if Util.Rng.bool rng then j + 1
    else j - 1
  in
  out.(i) <- p.values.(j');
  out

let simulated_annealing ?(t0 = 1.0) ?(t1 = 0.01) ?(restarts = 4) rng space f ~budget =
  let t = tracker f in
  let per_chain = max 1 (budget / max 1 restarts) in
  for _ = 1 to restarts do
    (* Find a legal starting point. *)
    let rec start tries =
      if tries = 0 then None
      else
        let cfg = Config_space.random rng space in
        match eval t cfg with
        | Some s -> Some (cfg, s)
        | None -> start (tries - 1)
    in
    match start 200 with
    | None -> ()
    | Some (cfg0, s0) ->
      let current = ref (Array.copy cfg0) and current_score = ref s0 in
      let steps = per_chain in
      for step = 0 to steps - 1 do
        let temp = t0 *. ((t1 /. t0) ** (float_of_int step /. float_of_int steps)) in
        let cand = neighbour rng space !current in
        match eval t cand with
        | None -> ()
        | Some s ->
          let accept =
            s >= !current_score
            || Util.Rng.uniform rng < exp ((s -. !current_score) /. temp)
          in
          if accept then begin
            current := cand;
            current_score := s
          end
      done
  done;
  outcome t

let genetic ?(population = 64) ?(elite = 0.25) ?(mutation = 0.15) rng space f ~budget =
  let t = tracker f in
  (* Seed a legal population. *)
  let pool = ref [] in
  let tries = ref (budget / 2) in
  while List.length !pool < population && !tries > 0 do
    decr tries;
    let cfg = Config_space.random rng space in
    match eval t cfg with
    | Some s -> pool := (cfg, s) :: !pool
    | None -> ()
  done;
  if !pool = [] then outcome t
  else begin
    let pool = ref (Array.of_list !pool) in
    let n_elite pool = max 2 (int_of_float (elite *. float_of_int (Array.length pool))) in
    while t.evals < budget do
      let sorted = Array.copy !pool in
      Array.sort (fun (_, a) (_, b) -> compare b a) sorted;
      let elites = Array.sub sorted 0 (min (n_elite sorted) (Array.length sorted)) in
      let parent () = fst (Util.Rng.choice rng elites) in
      let child =
        let a = parent () and b = parent () in
        Array.mapi (fun i _ -> if Util.Rng.bool rng then a.(i) else b.(i)) a
      in
      Array.iteri
        (fun i _ ->
          if Util.Rng.uniform rng < mutation then
            child.(i) <- Util.Rng.choice rng space.(i).Config_space.values)
        child;
      match eval t child with
      | None -> ()
      | Some s ->
        (* Replace the worst member if the child improves on it. *)
        let worst = ref 0 in
        Array.iteri
          (fun i (_, sc) -> if sc < snd !pool.(!worst) then worst := i)
          !pool;
        if s > snd !pool.(!worst) then !pool.(!worst) <- (child, s)
    done;
    outcome t
  end
