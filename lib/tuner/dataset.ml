module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let src = Logs.Src.create "tuner.dataset" ~doc:"ISAAC dataset generation"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  op : [ `Gemm | `Conv ];
  device : string;
  features_log : Mlp.Tensor.t;
  features_raw : Mlp.Tensor.t;
  tflops : float array;
}

let size t = Array.length t.tflops

let default_dtypes : Ptx.Types.dtype list = [ F16; F32; F64 ]

let log_uniform_int rng lo hi =
  let x = Util.Rng.uniform rng in
  let v = Float.exp (Float.log (float_of_int lo) +. (x *. Float.log (float_of_int hi /. float_of_int lo))) in
  max lo (min hi (int_of_float (Float.round v)))

let random_gemm_input ?(dtypes = default_dtypes) rng =
  let dtype = Util.Rng.choice rng (Array.of_list dtypes) in
  { GP.m = log_uniform_int rng 16 4096;
    n = log_uniform_int rng 16 4096;
    k = log_uniform_int rng 16 65536;
    dtype;
    a_trans = Util.Rng.bool rng;
    b_trans = Util.Rng.bool rng }

let random_conv_input ?(dtypes = default_dtypes) rng =
  let dtype = Util.Rng.choice rng (Array.of_list dtypes) in
  let r = Util.Rng.choice rng [| 1; 3; 5; 7 |] in
  let s = Util.Rng.choice rng [| 1; 3; 5; 7 |] in
  (* Strides/padding change only the gather tables, but sampling them
     keeps the training distribution honest about real layer specs. *)
  let stride = Util.Rng.choice rng [| 1; 1; 1; 2 |] in
  let pad = Util.Rng.int rng ((min r s / 2) + 1) in
  CP.input ~dtype ~stride ~pad
    ~n:(log_uniform_int rng 1 32)
    ~c:(log_uniform_int rng 1 1024)
    ~k:(log_uniform_int rng 8 2048)
    ~p:(log_uniform_int rng 4 128)
    ~q:(log_uniform_int rng 4 128)
    ~r ~s ()

let gemm_legal device input cfg_array =
  let cfg = GP.config_of_array cfg_array in
  GP.structurally_legal input cfg
  && Gpu.Executor.legal device (GP.cost input cfg)

let conv_legal device input cfg_array =
  let cfg = GP.config_of_array cfg_array in
  CP.structurally_legal input cfg
  && Gpu.Executor.legal device (CP.cost input cfg)

(* Static-verifier oracles (tentpole wiring): generate the kernel for an
   already-legal configuration and require a clean {!Ptx.Verify} report.
   Orders of magnitude cheaper than an interpreter run, and the only
   check that sees barrier divergence, shared races or OOB statically.
   When tracing, every rejection is counted per diagnostic kind
   ([verify.fail.<kind>]), so a trace shows *why* the static filter is
   discarding configurations, not just how often. *)
let verified_clean report =
  let ok = Ptx.Verify.ok report in
  if not ok && Obs.Trace.enabled () then
    List.iter
      (fun (d : Ptx.Verify.diag) ->
        Obs.Metrics.incr ("verify.fail." ^ Ptx.Verify.kind_name d.kind))
      report.Ptx.Verify.errors;
  ok

let gemm_static_ok (input : GP.input) cfg_array =
  let cfg = GP.config_of_array cfg_array in
  let p = Codegen.Gemm.generate input cfg in
  verified_clean
    (Ptx.Verify.run p
       ~iargs:[ ("M", input.m); ("N", input.n); ("K", input.k) ]
       ~block:(GP.threads_per_block cfg, 1, 1))

let conv_static_ok (input : CP.input) cfg_array =
  let cfg = GP.config_of_array cfg_array in
  let gi = CP.gemm_input input in
  let p = Codegen.Conv.generate input cfg in
  verified_clean
    (Ptx.Verify.run p
       ~iargs:[ ("M", gi.GP.m); ("N", gi.GP.n); ("K", gi.GP.k) ]
       ~block:(GP.threads_per_block cfg, 1, 1))

let fit_gemm_sampler ?(warmup = 10_000) ?dtypes rng device =
  Sampler.fit ~warmup rng Config_space.gemm ~legal:(fun cfg ->
      gemm_legal device (random_gemm_input ?dtypes rng) cfg)

let fit_conv_sampler ?(warmup = 10_000) ?dtypes rng device =
  Sampler.fit ~warmup rng Config_space.gemm ~legal:(fun cfg ->
      conv_legal device (random_conv_input ?dtypes rng) cfg)

(* --- chunk checkpoints -------------------------------------------------- *)

(* A checkpoint freezes one domain's chunk mid-generation: the rows
   measured so far plus the chunk RNG's exact state. Because every draw
   in the chunk loop (inputs, sampler rejections, measurement noise)
   comes from that one generator, restoring it and continuing produces
   the byte-identical tail an uninterrupted run would have. *)
let checkpoint_kind = "isaac-dataset-chunk"
let checkpoint_version = 1

let op_str = function `Gemm -> "gemm" | `Conv -> "conv"

let checkpoint_payload ~op ~device_name ~n ~filled ~rng
    (flog : Mlp.Tensor.t) (fraw : Mlp.Tensor.t) ys =
  let dim = Features.dim in
  let buf = Buffer.create ((filled * (2 * dim + 1) * 26) + 128) in
  Buffer.add_string buf (Printf.sprintf "op %s\n" (op_str op));
  Buffer.add_string buf (Printf.sprintf "device %s\n" device_name);
  Buffer.add_string buf (Printf.sprintf "rows %d of %d\n" filled n);
  Buffer.add_string buf (Printf.sprintf "rng %s\n" (Util.Rng.serialize rng));
  for i = 0 to filled - 1 do
    for j = 0 to dim - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%.17g " flog.Mlp.Tensor.data.((i * dim) + j))
    done;
    for j = 0 to dim - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%.17g " fraw.Mlp.Tensor.data.((i * dim) + j))
    done;
    Buffer.add_string buf (Printf.sprintf "%.17g\n" ys.(i))
  done;
  Buffer.contents buf

(* Parse a checkpoint payload back into the chunk arrays. Any mismatch
   (different op/device/chunk size, malformed rows) rejects the file and
   the chunk restarts from scratch — stale checkpoints must never leak
   rows into a differently-shaped run. *)
let restore_checkpoint ~op ~device_name ~n path (flog : Mlp.Tensor.t)
    (fraw : Mlp.Tensor.t) ys =
  let reject reason =
    Obs.Metrics.incr "dataset.checkpoint_rejected";
    Log.warn (fun m -> m "%s: ignoring checkpoint (%s)" path reason);
    None
  in
  match
    Util.Artifact.read ~path ~kind:checkpoint_kind
      ~max_version:checkpoint_version
  with
  | Error (Util.Artifact.Io _) -> None (* absent: fresh start *)
  | Error e -> reject (Util.Artifact.error_to_string ~path e)
  | Ok (_, payload) -> (
    let dim = Features.dim in
    match String.split_on_char '\n' payload with
    | op_line :: dev_line :: rows_line :: rng_line :: rows ->
      if op_line <> "op " ^ op_str op then reject "different op"
      else if dev_line <> "device " ^ device_name then reject "different device"
      else (
        match Scanf.sscanf rows_line "rows %d of %d%!" (fun a b -> (a, b)) with
        | exception _ -> reject "bad rows line"
        | filled, total ->
          if total <> n || filled < 0 || filled > n then
            reject "different chunk size"
          else (
            match
              Scanf.sscanf rng_line "rng %[^\n]%!" Util.Rng.deserialize
            with
            | exception _ -> reject "bad rng state"
            | None -> reject "bad rng state"
            | Some rng -> (
              let parse_row i line =
                let fields =
                  String.split_on_char ' ' (String.trim line)
                  |> List.filter (( <> ) "")
                  |> List.map float_of_string
                in
                if List.length fields <> (2 * dim) + 1 then failwith "width";
                List.iteri
                  (fun j v ->
                    if j < dim then flog.Mlp.Tensor.data.((i * dim) + j) <- v
                    else if j < 2 * dim then
                      fraw.Mlp.Tensor.data.((i * dim) + (j - dim)) <- v
                    else ys.(i) <- v)
                  fields
              in
              match
                List.iteri
                  (fun i line -> if i < filled then parse_row i line)
                  rows
              with
              | () ->
                if List.length (List.filter (fun l -> String.trim l <> "") rows)
                   <> filled
                then reject "row count mismatch"
                else begin
                  Obs.Metrics.add "dataset.resumed_rows" filled;
                  Some (filled, rng)
                end
              | exception _ -> reject "malformed row")))
    | _ -> reject "truncated header")

let write_checkpoint ~op ~device_name ~n ~filled ~rng path flog fraw ys =
  Util.Artifact.write ~path ~kind:checkpoint_kind ~version:checkpoint_version
    (checkpoint_payload ~op ~device_name ~n ~filled ~rng flog fraw ys);
  Obs.Metrics.incr "dataset.checkpoints_written";
  (* Kill-resume smoke tests die right here, just after a durable
     checkpoint — the worst-case crash point resume must handle. *)
  Util.Faultsim.crash_point "gen_crash"

(* Give up on a chunk after this many consecutive inputs yield no
   measurable configuration: with the sampler already bounding rejection
   attempts per input, a run this dry means the restricted space is
   effectively empty and looping further would never terminate. *)
let max_consecutive_skips = 100

let generate_chunk ?checkpoint ~op ~noise ~sampler ~static_ok rng device ~n
    ~random_input ~legal ~features ~measure =
  let dim = Features.dim in
  let flog = Mlp.Tensor.create n dim in
  let fraw = Mlp.Tensor.create n dim in
  let ys = Array.make n 0.0 in
  let device_name = device.Gpu.Device.name in
  let rng, start =
    match checkpoint with
    | None -> (rng, 0)
    | Some (path, _) -> (
      match restore_checkpoint ~op ~device_name ~n path flog fraw ys with
      | Some (filled, rng') -> (rng', filled)
      | None -> (rng, 0))
  in
  let filled = ref start in
  let skips = ref 0 in
  while !filled < n do
    let input = random_input rng in
    let measured =
      let draw =
        let legal c = legal device input c in
        match static_ok with
        | None -> Sampler.sample_legal rng sampler ~legal
        | Some ok ->
          Sampler.sample_verified rng sampler ~legal ~verify:(fun c -> ok input c)
      in
      match draw with
      | None -> None
      | Some cfg_array ->
        Option.map
          (fun tflops -> (cfg_array, tflops))
          (measure rng device input cfg_array ~noise)
    in
    match measured with
    | None ->
      (* No legal (or measurable) configuration for this input — e.g. an
         over-restricted [?dtypes]. Skip it rather than redrawing
         forever, and fail loudly once the whole chunk stops making
         progress. *)
      Obs.Metrics.incr "dataset.skipped_inputs";
      incr skips;
      if !skips >= max_consecutive_skips then
        failwith
          (Printf.sprintf
             "Dataset.generate: no measurable configuration in %d consecutive \
              input draws (%d/%d samples done on %s) — the restricted \
              configuration space appears to be empty"
             !skips !filled n device_name)
    | Some (cfg_array, tflops) ->
      skips := 0;
      let i = !filled in
      let fl = features ~log:true input cfg_array in
      let fr = features ~log:false input cfg_array in
      Array.blit fl 0 flog.Mlp.Tensor.data (i * dim) dim;
      Array.blit fr 0 fraw.Mlp.Tensor.data (i * dim) dim;
      ys.(i) <- tflops;
      incr filled;
      (match checkpoint with
       | Some (path, every) when every > 0 && !filled mod every = 0 && !filled < n ->
         write_checkpoint ~op ~device_name ~n ~filled:!filled ~rng path flog
           fraw ys
       | _ -> ())
  done;
  (flog, fraw, ys)

let chunk_path path chunk = Printf.sprintf "%s.chunk%d" path chunk

(* Benchmarking sampled kernels is embarrassingly parallel: each domain
   gets an independent PRNG split off the caller's and fills its own
   chunk (the sampler's fitted marginals are shared read-only). With
   [checkpoint = (path, every_n)] each domain persists its chunk to
   [path.chunk<i>] every [every_n] accepted samples; a rerun with the
   same seed, domain count and path resumes each chunk from its last
   durable state, and the deterministic chunk-order merge makes the
   final dataset bitwise-identical to an uninterrupted run. Chunk files
   are removed once the merge completes. *)
let generate_generic ?(domains = 1) ?static_ok ?checkpoint ~op ~noise ~sampler
    rng device ~n ~random_input ~legal ~features ~measure () =
  Obs.Span.with_ "dataset.generate"
    ~meta:(fun () ->
      [ ("op", Obs.Json.String (match op with `Gemm -> "gemm" | `Conv -> "conv"));
        ("n", Obs.Json.Int n);
        ("domains", Obs.Json.Int domains);
        ("checkpointed", Obs.Json.Bool (checkpoint <> None));
        ("verified", Obs.Json.Bool (static_ok <> None)) ])
    (fun () ->
  let dim = Features.dim in
  let rngs = Array.init (max 1 domains) (fun _ -> Util.Rng.split rng) in
  let chunk_checkpoint chunk =
    Option.map (fun (path, every) -> (chunk_path path chunk, every)) checkpoint
  in
  let chunks =
    Util.Parallel.run_chunks ~domains ~total:n (fun ~chunk ~size ->
        generate_chunk ?checkpoint:(chunk_checkpoint chunk) ~op ~noise ~sampler
          ~static_ok rngs.(chunk) device ~n:size ~random_input ~legal ~features
          ~measure)
  in
  (match checkpoint with
   | Some (path, _) ->
     for chunk = 0 to max 1 domains - 1 do
       try Sys.remove (chunk_path path chunk) with Sys_error _ -> ()
     done
   | None -> ());
  let flog = Mlp.Tensor.create n dim in
  let fraw = Mlp.Tensor.create n dim in
  let ys = Array.make n 0.0 in
  let row = ref 0 in
  List.iter
    (fun (cl, cr, cy) ->
      let rows = Array.length cy in
      Array.blit cl.Mlp.Tensor.data 0 flog.Mlp.Tensor.data (!row * dim) (rows * dim);
      Array.blit cr.Mlp.Tensor.data 0 fraw.Mlp.Tensor.data (!row * dim) (rows * dim);
      Array.blit cy 0 ys !row rows;
      row := !row + rows)
    chunks;
  Obs.Metrics.add "dataset.samples" n;
  Obs.Telemetry.add "dataset.rows" n;
  { op; device = device.Gpu.Device.name; features_log = flog; features_raw = fraw;
    tflops = ys })

(* Per-configuration benchmark record in the trace: what was measured,
   how fast it was, and what the (simulated) benchmark run cost — the
   raw material for isaac_profile's "hottest configs" table. *)
let config_event ~op ~phase cfg_array (m : Gpu.Executor.measurement) =
  if Obs.Trace.enabled () then
    Obs.Trace.emit "config"
      [ ("op", Obs.Json.String op);
        ("phase", Obs.Json.String phase);
        ("config", Obs.Json.String (Config_space.describe Config_space.gemm cfg_array));
        ("tflops", Obs.Json.Float m.tflops);
        ("seconds", Obs.Json.Float m.seconds) ]

let measure_gemm rng device input cfg_array ~noise =
  if Util.Faultsim.fire "bench_fail" then begin
    Obs.Metrics.incr "dataset.bench_failures";
    Obs.Telemetry.incr "dataset.bench_failures";
    None
  end
  else
  let cfg = GP.config_of_array cfg_array in
  match Gpu.Executor.measure ~noise rng device (GP.cost input cfg) with
  | Some m when m.tflops > 0.0 ->
    config_event ~op:"gemm" ~phase:"dataset" cfg_array m;
    Some m.tflops
  | _ -> None

let measure_conv rng device input cfg_array ~noise =
  if Util.Faultsim.fire "bench_fail" then begin
    Obs.Metrics.incr "dataset.bench_failures";
    Obs.Telemetry.incr "dataset.bench_failures";
    None
  end
  else
  let cfg = GP.config_of_array cfg_array in
  match Gpu.Executor.measure ~noise rng device (CP.cost input cfg) with
  | Some m when m.tflops > 0.0 ->
    config_event ~op:"conv" ~phase:"dataset" cfg_array m;
    Some m.tflops
  | _ -> None

let generate_gemm ?(domains = 1) ?dtypes ?(noise = Gpu.Executor.default_noise)
    ?sampler ?(verify = false) ?checkpoint rng device ~n =
  let sampler =
    match sampler with Some s -> s | None -> fit_gemm_sampler ?dtypes rng device
  in
  let static_ok = if verify then Some gemm_static_ok else None in
  generate_generic ~domains ?static_ok ?checkpoint ~op:`Gemm ~noise ~sampler rng
    device ~n
    ~random_input:(random_gemm_input ?dtypes)
    ~legal:gemm_legal ~features:(fun ~log i c -> Features.gemm_features ~log i c) ~measure:measure_gemm ()

let generate_conv ?(domains = 1) ?dtypes ?(noise = Gpu.Executor.default_noise)
    ?sampler ?(verify = false) ?checkpoint rng device ~n =
  let sampler =
    match sampler with Some s -> s | None -> fit_conv_sampler ?dtypes rng device
  in
  let static_ok = if verify then Some conv_static_ok else None in
  generate_generic ~domains ?static_ok ?checkpoint ~op:`Conv ~noise ~sampler rng
    device ~n
    ~random_input:(random_conv_input ?dtypes)
    ~legal:conv_legal ~features:(fun ~log i c -> Features.conv_features ~log i c) ~measure:measure_conv ()

let throughput_probe rng device ~n =
  (* Wall-clock, not [Sys.time]: CPU time sums across domains, which
     overstated samples/s by nearly the domain count on parallel runs. *)
  let t0 = Unix.gettimeofday () in
  let (_ : t) = generate_gemm rng device ~n in
  let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  float_of_int n /. dt

(* --- packed-kernel corpus export ---------------------------------- *)

let export_kernel_corpus ?dtypes ?(warmup = 2_000) ~op rng device ~n ~path =
  let sampler, random_input, legal, generate =
    match op with
    | `Gemm ->
      ( fit_gemm_sampler ~warmup ?dtypes rng device,
        (fun rng -> `G (random_gemm_input ?dtypes rng)),
        (fun input c ->
          match input with `G i -> gemm_legal device i c | `C _ -> false),
        fun input c ->
          match input with
          | `G i -> Codegen.Gemm.generate i (GP.config_of_array c)
          | `C _ -> assert false )
    | `Conv ->
      ( fit_conv_sampler ~warmup ?dtypes rng device,
        (fun rng -> `C (random_conv_input ?dtypes rng)),
        (fun input c ->
          match input with `C i -> conv_legal device i c | `G _ -> false),
        fun input c ->
          match input with
          | `C i -> Codegen.Conv.generate i (GP.config_of_array c)
          | `G _ -> assert false )
  in
  let kernels = ref [] and seen = Hashtbl.create 64 in
  let accepted = ref 0 and skips = ref 0 in
  while !accepted < n do
    let input = random_input rng in
    let drawn =
      Sampler.sample_legal rng sampler ~legal:(fun c -> legal input c)
    in
    match drawn with
    | None ->
      Obs.Metrics.incr "dataset.skipped_inputs";
      incr skips;
      if !skips >= max_consecutive_skips then
        failwith
          (Printf.sprintf
             "Dataset.export_kernel_corpus: no legal configuration in %d \
              consecutive input draws — the restricted configuration space \
              appears to be empty"
             !skips)
    | Some cfg_array -> (
      skips := 0;
      incr accepted;
      (* Encode the register-allocated kernel: the packed format's
         fixed-width fields size a physical register file, and the
         canonical form is what the plan cache hashes. *)
      match Ptx.Encode.encode (Ptx.Regalloc.allocate (generate input cfg_array)) with
      | Error _ -> Obs.Metrics.incr "dataset.kernel_encode_failures"
      | Ok e ->
        let h = Ptx.Encode.hash e in
        if not (Hashtbl.mem seen h) then begin
          Hashtbl.add seen h ();
          kernels := e :: !kernels
        end)
  done;
  Ptx.Encode.save_corpus ~path (List.rev !kernels);
  Hashtbl.length seen
