module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type t = {
  op : [ `Gemm | `Conv ];
  device : string;
  features_log : Mlp.Tensor.t;
  features_raw : Mlp.Tensor.t;
  tflops : float array;
}

let size t = Array.length t.tflops

let default_dtypes : Ptx.Types.dtype list = [ F16; F32; F64 ]

let log_uniform_int rng lo hi =
  let x = Util.Rng.uniform rng in
  let v = Float.exp (Float.log (float_of_int lo) +. (x *. Float.log (float_of_int hi /. float_of_int lo))) in
  max lo (min hi (int_of_float (Float.round v)))

let random_gemm_input ?(dtypes = default_dtypes) rng =
  let dtype = Util.Rng.choice rng (Array.of_list dtypes) in
  { GP.m = log_uniform_int rng 16 4096;
    n = log_uniform_int rng 16 4096;
    k = log_uniform_int rng 16 65536;
    dtype;
    a_trans = Util.Rng.bool rng;
    b_trans = Util.Rng.bool rng }

let random_conv_input ?(dtypes = default_dtypes) rng =
  let dtype = Util.Rng.choice rng (Array.of_list dtypes) in
  let r = Util.Rng.choice rng [| 1; 3; 5; 7 |] in
  let s = Util.Rng.choice rng [| 1; 3; 5; 7 |] in
  (* Strides/padding change only the gather tables, but sampling them
     keeps the training distribution honest about real layer specs. *)
  let stride = Util.Rng.choice rng [| 1; 1; 1; 2 |] in
  let pad = Util.Rng.int rng ((min r s / 2) + 1) in
  CP.input ~dtype ~stride ~pad
    ~n:(log_uniform_int rng 1 32)
    ~c:(log_uniform_int rng 1 1024)
    ~k:(log_uniform_int rng 8 2048)
    ~p:(log_uniform_int rng 4 128)
    ~q:(log_uniform_int rng 4 128)
    ~r ~s ()

let gemm_legal device input cfg_array =
  let cfg = GP.config_of_array cfg_array in
  GP.structurally_legal input cfg
  && Gpu.Executor.legal device (GP.cost input cfg)

let conv_legal device input cfg_array =
  let cfg = GP.config_of_array cfg_array in
  CP.structurally_legal input cfg
  && Gpu.Executor.legal device (CP.cost input cfg)

(* Static-verifier oracles (tentpole wiring): generate the kernel for an
   already-legal configuration and require a clean {!Ptx.Verify} report.
   Orders of magnitude cheaper than an interpreter run, and the only
   check that sees barrier divergence, shared races or OOB statically.
   When tracing, every rejection is counted per diagnostic kind
   ([verify.fail.<kind>]), so a trace shows *why* the static filter is
   discarding configurations, not just how often. *)
let verified_clean report =
  let ok = Ptx.Verify.ok report in
  if not ok && Obs.Trace.enabled () then
    List.iter
      (fun (d : Ptx.Verify.diag) ->
        Obs.Metrics.incr ("verify.fail." ^ Ptx.Verify.kind_name d.kind))
      report.Ptx.Verify.errors;
  ok

let gemm_static_ok (input : GP.input) cfg_array =
  let cfg = GP.config_of_array cfg_array in
  let p = Codegen.Gemm.generate input cfg in
  verified_clean
    (Ptx.Verify.run p
       ~iargs:[ ("M", input.m); ("N", input.n); ("K", input.k) ]
       ~block:(GP.threads_per_block cfg, 1, 1))

let conv_static_ok (input : CP.input) cfg_array =
  let cfg = GP.config_of_array cfg_array in
  let gi = CP.gemm_input input in
  let p = Codegen.Conv.generate input cfg in
  verified_clean
    (Ptx.Verify.run p
       ~iargs:[ ("M", gi.GP.m); ("N", gi.GP.n); ("K", gi.GP.k) ]
       ~block:(GP.threads_per_block cfg, 1, 1))

let fit_gemm_sampler ?(warmup = 10_000) ?dtypes rng device =
  Sampler.fit ~warmup rng Config_space.gemm ~legal:(fun cfg ->
      gemm_legal device (random_gemm_input ?dtypes rng) cfg)

let fit_conv_sampler ?(warmup = 10_000) ?dtypes rng device =
  Sampler.fit ~warmup rng Config_space.gemm ~legal:(fun cfg ->
      conv_legal device (random_conv_input ?dtypes rng) cfg)

let generate_chunk ~noise ~sampler ~static_ok rng device ~n ~random_input ~legal
    ~features ~measure =
  let dim = Features.dim in
  let flog = Mlp.Tensor.create n dim in
  let fraw = Mlp.Tensor.create n dim in
  let ys = Array.make n 0.0 in
  let filled = ref 0 in
  while !filled < n do
    let input = random_input rng in
    let draw =
      let legal c = legal device input c in
      match static_ok with
      | None -> Sampler.sample_legal rng sampler ~legal
      | Some ok ->
        Sampler.sample_verified rng sampler ~legal ~verify:(fun c -> ok input c)
    in
    match draw with
    | None -> ()
    | Some cfg_array ->
      (match measure rng device input cfg_array ~noise with
       | None -> ()
       | Some tflops ->
         let i = !filled in
         let fl = features ~log:true input cfg_array in
         let fr = features ~log:false input cfg_array in
         Array.blit fl 0 flog.Mlp.Tensor.data (i * dim) dim;
         Array.blit fr 0 fraw.Mlp.Tensor.data (i * dim) dim;
         ys.(i) <- tflops;
         incr filled)
  done;
  (flog, fraw, ys)

(* Benchmarking sampled kernels is embarrassingly parallel: each domain
   gets an independent PRNG split off the caller's and fills its own
   chunk (the sampler's fitted marginals are shared read-only). *)
let generate_generic ?(domains = 1) ?static_ok ~op ~noise ~sampler rng device ~n
    ~random_input ~legal ~features ~measure () =
  Obs.Span.with_ "dataset.generate"
    ~meta:(fun () ->
      [ ("op", Obs.Json.String (match op with `Gemm -> "gemm" | `Conv -> "conv"));
        ("n", Obs.Json.Int n);
        ("domains", Obs.Json.Int domains);
        ("verified", Obs.Json.Bool (static_ok <> None)) ])
    (fun () ->
  let dim = Features.dim in
  let rngs = Array.init (max 1 domains) (fun _ -> Util.Rng.split rng) in
  let chunks =
    Util.Parallel.run_chunks ~domains ~total:n (fun ~chunk ~size ->
        generate_chunk ~noise ~sampler ~static_ok rngs.(chunk) device ~n:size
          ~random_input ~legal ~features ~measure)
  in
  let flog = Mlp.Tensor.create n dim in
  let fraw = Mlp.Tensor.create n dim in
  let ys = Array.make n 0.0 in
  let row = ref 0 in
  List.iter
    (fun (cl, cr, cy) ->
      let rows = Array.length cy in
      Array.blit cl.Mlp.Tensor.data 0 flog.Mlp.Tensor.data (!row * dim) (rows * dim);
      Array.blit cr.Mlp.Tensor.data 0 fraw.Mlp.Tensor.data (!row * dim) (rows * dim);
      Array.blit cy 0 ys !row rows;
      row := !row + rows)
    chunks;
  Obs.Metrics.add "dataset.samples" n;
  { op; device = device.Gpu.Device.name; features_log = flog; features_raw = fraw;
    tflops = ys })

(* Per-configuration benchmark record in the trace: what was measured,
   how fast it was, and what the (simulated) benchmark run cost — the
   raw material for isaac_profile's "hottest configs" table. *)
let config_event ~op ~phase cfg_array (m : Gpu.Executor.measurement) =
  if Obs.Trace.enabled () then
    Obs.Trace.emit "config"
      [ ("op", Obs.Json.String op);
        ("phase", Obs.Json.String phase);
        ("config", Obs.Json.String (Config_space.describe Config_space.gemm cfg_array));
        ("tflops", Obs.Json.Float m.tflops);
        ("seconds", Obs.Json.Float m.seconds) ]

let measure_gemm rng device input cfg_array ~noise =
  let cfg = GP.config_of_array cfg_array in
  match Gpu.Executor.measure ~noise rng device (GP.cost input cfg) with
  | Some m when m.tflops > 0.0 ->
    config_event ~op:"gemm" ~phase:"dataset" cfg_array m;
    Some m.tflops
  | _ -> None

let measure_conv rng device input cfg_array ~noise =
  let cfg = GP.config_of_array cfg_array in
  match Gpu.Executor.measure ~noise rng device (CP.cost input cfg) with
  | Some m when m.tflops > 0.0 ->
    config_event ~op:"conv" ~phase:"dataset" cfg_array m;
    Some m.tflops
  | _ -> None

let generate_gemm ?(domains = 1) ?dtypes ?(noise = Gpu.Executor.default_noise)
    ?sampler ?(verify = false) rng device ~n =
  let sampler =
    match sampler with Some s -> s | None -> fit_gemm_sampler ?dtypes rng device
  in
  let static_ok = if verify then Some gemm_static_ok else None in
  generate_generic ~domains ?static_ok ~op:`Gemm ~noise ~sampler rng device ~n
    ~random_input:(random_gemm_input ?dtypes)
    ~legal:gemm_legal ~features:Features.gemm_features ~measure:measure_gemm ()

let generate_conv ?(domains = 1) ?dtypes ?(noise = Gpu.Executor.default_noise)
    ?sampler ?(verify = false) rng device ~n =
  let sampler =
    match sampler with Some s -> s | None -> fit_conv_sampler ?dtypes rng device
  in
  let static_ok = if verify then Some conv_static_ok else None in
  generate_generic ~domains ?static_ok ~op:`Conv ~noise ~sampler rng device ~n
    ~random_input:(random_conv_input ?dtypes)
    ~legal:conv_legal ~features:Features.conv_features ~measure:measure_conv ()

let throughput_probe rng device ~n =
  let t0 = Sys.time () in
  let (_ : t) = generate_gemm rng device ~n in
  let dt = Float.max 1e-9 (Sys.time () -. t0) in
  float_of_int n /. dt
