(** Discrete tuning-parameter spaces (the X̂ of §4).

    A space is an ordered list of named categorical parameters; a
    configuration is a value choice for each, represented as a flat
    [int array] in parameter order (the same ordering as
    {!Codegen.Gemm_params.config_of_array}). *)

type param = {
  name : string;
  values : int array;  (** candidate values, ascending *)
}

type t = param array

val gemm : t
(** The 10-parameter GEMM space of §3.2/§4 (also used for CONV, whose
    C_S/C_L/C_G splits are the K-splits of the implicit GEMM). *)

val table1 : t
(** The §4.2 measurement grid: every parameter a power of two in
    \[1, 16\] with no pre-restriction, the setting in which the paper
    reports 0.1% uniform acceptance. *)

val size : t -> int
(** Cardinality of the full cartesian grid. *)

val num_params : t -> int

val value_index : param -> int -> int
(** Position of a value inside a parameter's candidate list.
    Raises [Not_found] for foreign values. *)

val iter : t -> (int array -> unit) -> unit
(** Enumerate the full grid. The callback receives a {e reused} buffer;
    copy it if you keep it. *)

val iter_pruned :
  t -> prune:(int array -> int -> bool) -> (int array -> unit) -> unit
(** [iter_pruned t ~prune f] enumerates the grid depth-first like
    {!iter}, but after each assignment of parameter [d] it consults
    [prune buf d] (with [buf.(0..d)] holding the current prefix and
    deeper slots stale): [true] skips the {e entire} subtree under that
    prefix. Surviving leaves are visited in exactly {!iter}'s order, so
    with a sound bound function — one that only returns [true] when no
    extension of the prefix can be wanted — the output is identical to
    filtering {!iter}. With [prune = fun _ _ -> false] this {e is}
    {!iter}. The planning search uses monotone resource bounds here to
    skip provably illegal lattice regions ({!Search}). *)

val random : Util.Rng.t -> t -> int array
(** Uniform sample from the grid (fresh array). *)

val describe : t -> int array -> string
(** ["name=value ..."] rendering of a flat configuration, in parameter
    order — used by the lint report. *)
