(** Trained input-aware tuning profiles: the artefact ISAAC ships per
    (device, operation) — a regression network plus its target scaler —
    with plain-text persistence so runtime inference can skip tuning
    ("cached on the filesystem", §6). *)

type t = {
  op : [ `Gemm | `Conv ];
  device : string;           (** device name the profile was tuned on *)
  net : Mlp.Network.t;
  scaler : Features.scaler;
  log_features : bool;       (** whether features go through log2 (always
                                 true for shipped profiles; false exists
                                 for the Table 2 ablation) *)
  feat_mean : float array;   (** per-feature standardization, fitted on
                                 the training set *)
  feat_std : float array;
}

val default_arch : int array
(** Hidden-layer sizes used by [tune] when none are given: 32-64-32,
    Table 2's best accuracy-per-weight architecture. *)

val train :
  ?arch:int array ->
  ?epochs:int ->
  ?log_features:bool ->
  Util.Rng.t ->
  Dataset.t ->
  t
(** Fit a network on a dataset (standardized log-TFLOPS target). *)

val mse : t -> Dataset.t -> float
(** Cross-validation MSE of the profile on a held-out dataset, in the
    standardized log space Table 2 reports. *)

val predict_tflops : t -> float array -> float
(** Model prediction for a feature vector, in TFLOPS. *)

val predict_std_batch : t -> Mlp.Tensor.t -> float array
(** Batch prediction in the standardized log-target space (what the
    exhaustive search ranks by). Rows are un-standardized feature
    vectors matching [log_features]. *)

val predict_std_one : t -> float array -> float
(** One feature vector through feature standardization and the network,
    in the standardized log-target space — the scalar planning path
    ({!Search}'s [`Scalar] engine scores one candidate at a time with
    this). *)

val predict_std_matrix : t -> Mlp.Matrix.t -> float array
(** Batched counterpart of {!predict_std_one} over unboxed
    {!Mlp.Matrix} storage, one un-standardized feature row per
    candidate. {b Mutates its argument}: the matrix is standardized in
    place before {!Mlp.Network.forward_batch} runs over it (callers
    fill a fresh matrix per query). Per row the arithmetic is identical
    to the scalar path, so predictions are bit-equal to
    {!predict_std_one} on the same features. *)

val save : t -> string -> unit
(** Persist through {!Util.Artifact.write} (kind ["isaac-profile"]):
    atomic temp-fsync-rename with a checksummed header, so a crash
    mid-save leaves any previous profile intact. *)

val load : string -> (t, string) result
(** Validating load: header kind/version, payload length and checksum
    are checked before a byte is parsed, and parse failures surface as
    [Error] — a corrupted profile is never partially loaded. *)

val load_exn : string -> t
(** {!load}, raising [Failure] on [Error] (CLI/test convenience). *)
