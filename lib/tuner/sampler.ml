type t = {
  space : Config_space.t;
  weights : float array array;  (* per parameter, per value: alpha + count *)
}

let alpha_default = 100.0

let fit ?(alpha = alpha_default) ?(warmup = 10_000) rng space ~legal =
  Obs.Span.with_ "sampler.fit"
    ~meta:(fun () -> [ ("warmup", Obs.Json.Int warmup) ])
    (fun () ->
      let weights =
        Array.map
          (fun p -> Array.make (Array.length p.Config_space.values) alpha)
          space
      in
      let accepted = ref 0 in
      for _ = 1 to warmup do
        let cfg = Config_space.random rng space in
        if legal cfg then begin
          incr accepted;
          Array.iteri
            (fun i v ->
              let j = Config_space.value_index space.(i) v in
              weights.(i).(j) <- weights.(i).(j) +. 1.0)
            cfg
        end
      done;
      Obs.Metrics.add "sampler.warmup_draws" warmup;
      Obs.Metrics.add "sampler.warmup_legal" !accepted;
      { space; weights })

let space t = t.space

let marginal t i =
  let w = t.weights.(i) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let sample rng t =
  Array.mapi
    (fun i p ->
      let j = Util.Rng.choice_weighted rng t.weights.(i) in
      p.Config_space.values.(j))
    t.space

let sample_legal ?(max_tries = 1000) rng t ~legal =
  let rec go tries =
    if tries = 0 then (Obs.Metrics.incr "sampler.exhausted"; None)
    else
      let cfg = sample rng t in
      if legal cfg then (Obs.Metrics.incr "sampler.accepted"; Some cfg)
      else begin
        Obs.Metrics.incr "sampler.rejected.legal";
        go (tries - 1)
      end
  in
  go max_tries

let sample_verified ?(max_tries = 1000) rng t ~legal ~verify =
  let rec go tries =
    if tries = 0 then (Obs.Metrics.incr "sampler.exhausted"; None)
    else
      let cfg = sample rng t in
      (* Legality is the cheap structural filter; the static verifier
         only runs on configurations that survive it. *)
      if not (legal cfg) then begin
        Obs.Metrics.incr "sampler.rejected.legal";
        go (tries - 1)
      end
      else if not (verify cfg) then begin
        Obs.Metrics.incr "sampler.rejected.verify";
        go (tries - 1)
      end
      else begin
        Obs.Metrics.incr "sampler.accepted";
        Some cfg
      end
  in
  go max_tries

let acceptance_rate ~trials ~sample ~legal =
  let accepted = ref 0 in
  for _ = 1 to trials do
    if legal (sample ()) then incr accepted
  done;
  float_of_int !accepted /. float_of_int trials
