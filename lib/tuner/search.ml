module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type engine = [ `Batched | `Scalar ]

type candidate = {
  config : GP.config;
  predicted_tflops : float;
}

type result = {
  best : GP.config;
  best_measurement : Gpu.Executor.measurement;
  candidates : candidate array;
  n_legal : int;
  n_scored : int;
  n_visited : int;
  phases : (string * float) list;
}

(* Growable push into an array (the space has tens of thousands of legal
   points; consing a list and converting later doubles the allocation).
   Results are reversed by the enumerators so callers keep seeing the
   reverse-grid order the historical list API always produced. *)
let grow_push buf n cfg =
  if !n = Array.length !buf then begin
    let bigger = Array.make (max 1024 (2 * !n)) cfg in
    Array.blit !buf 0 bigger 0 !n;
    buf := bigger
  end;
  !buf.(!n) <- cfg;
  incr n

let rev_of buf n = Array.init n (fun i -> buf.(n - 1 - i))

(* --- pruned enumeration -------------------------------------------------- *)

let min_of a = Array.fold_left min a.(0) a
let max_of a = Array.fold_left max a.(0) a

(* Bound-pruned enumeration of the legal GEMM lattice, specialized to
   the grid's parameter order (ms, ns, ks, ml, nl, u, kl, kg, vec, db).
   The structure is {!Config_space.iter_pruned} with the pruning
   predicate inlined level by level, so every check runs at the
   outermost loop level where its inputs are known and loop-invariant
   work (thread counts, staging divisions, register bounds) is hoisted
   out of the inner loops — the generic walk pays a closure dispatch
   and re-derives these per node, which at ~10^5 legal points is most
   of the enumeration time.

   Soundness (never prune a legal leaf — DESIGN.md "Planning hot
   path"): a subtree is skipped only when an exact check on
   already-assigned parameters fails, or a monotone {e lower} bound on
   a resource (registers, shared memory, threads) computed from the
   assigned prefix and the minima/maxima of the still-free parameters
   already exceeds a device cap. A skipped region therefore contains
   no legal configuration, so it cannot contain the argmax over the
   legal set.

   Completeness (never let an illegal leaf survive): by the innermost
   loop every conjunct of [Gemm_params.structurally_legal] and
   [Gpu.Occupancy.legal] has been checked exactly — tile divisibility
   at the ml/nl levels, thread shape / K-splits / reduction scratch at
   the kl level, the grid split at the kg level, vector staging plus
   the exact register estimate at the vec level (vec decides the
   fp16x2 register width; for F32/F64 the kl-level bound is already
   exact), and the staging shared-memory footprint at the db level.
   Surviving leaves {e are} the legal set and are emitted without
   re-verification; the register and shared-memory arithmetic below
   deliberately mirrors [Gemm_params.regs_estimate] / [shared_words],
   and the differential tests in [test_tuner.ml] pin this enumerator
   to element-for-element equality with [legal_configs_reference]
   (which keeps the original build-the-cost-record semantics).

   Leaves are stored packed — [Config_space.num_params] ints per
   config in one flat int array, in forward grid order — so
   enumerating ~10^5 legal points allocates one flat array instead of
   promoting 10^5 short-lived records through the minor heap; config
   records are materialized later, and only for the configurations
   that are actually scored. The walk runs twice — once to count,
   once to fill an exactly-sized buffer — because the walk itself is
   a few percent of the cost of repeatedly growing (allocate + zero +
   copy, each large enough to pace a major GC slice) a doubling
   buffer in the major heap. *)
type packed_enum = { packed : int array; count : int; visited : int }

(* Serving telemetry: per-phase latency histograms (observed once per
   completed search) and the model-quality channel fed by the rebench
   stage, where every model prediction meets a real measurement. Inputs
   are bucketed by FLOP magnitude so drift localizes to a size region
   rather than washing out in a global average. *)
let t_phase_hists =
  List.map
    (fun ph -> (ph, Obs.Telemetry.histo ("search." ^ ph ^ "_s")))
    [ "enumerate"; "featurize"; "inference"; "argmax"; "rebench" ]

let flops_bucket flops =
  if not (Float.is_finite flops) || flops <= 0.0 then "na"
  else Printf.sprintf "2^%d" (snd (Float.frexp flops) - 1)

let nparams = Config_space.num_params Config_space.gemm

(* One bound-pruned walk of the legal set; calls [emit] once per legal
   configuration, in forward grid order. *)
let walk_legal_gemm device (i : GP.input) ~emit =
  let bytes = Ptx.Types.dtype_bytes i.dtype in
  let shared_max = device.Gpu.Device.shared_per_block_max in
  let regs_max = device.Gpu.Device.regs_per_thread_max in
  let regs_sm = device.Gpu.Device.regs_per_sm in
  let max_threads = min 1024 device.Gpu.Device.max_threads_per_block in
  let warp = device.Gpu.Device.warp_size in
  let min_u = min_of GP.values_u in
  let max_kl = max_of GP.values_kl in
  let f16 = i.dtype = Ptx.Types.F16 in
  (* Registers per value is minimized by the vectorized-fp16 variant, so
     rv_min is a lower bound over the still-free [vec] (and exact for
     F32/F64, whose width never depends on vec). *)
  let rv_min =
    match i.dtype with
    | Ptx.Types.F64 -> 2.0
    | Ptx.Types.F32 -> 1.0
    | Ptx.Types.F16 -> 0.5
  in
  Array.iter (fun ms ->
  Array.iter (fun ns ->
  Array.iter (fun ks ->
  Array.iter (fun ml ->
  if ml mod ms = 0 then
  Array.iter (fun nl ->
  if nl mod ns = 0 then begin
    let mn = ml / ms * (nl / ns) in
    (* threads = mn * kl with kl >= 1, so mn alone already busts the
       cap; and even the largest kl cannot reach a full warp. Staging
       needs (ml+nl)*u*db shared words with db >= 1, u >= min_u. *)
    if mn <= max_threads && mn * max_kl >= 32
       && (ml + nl) * min_u * bytes <= shared_max
    then
      Array.iter (fun u ->
      (* Exact staging lower bound once u is known (db >= 1). *)
      if (ml + nl) * u * bytes <= shared_max then begin
        let la = ml * u and lb = nl * u in
        Array.iter (fun kl ->
        let threads = mn * kl in
        (* Thread-shape and K-split checks are exact from here on. *)
        if threads >= 32 && threads <= max_threads
           && threads mod 32 = 0 && threads mod warp = 0
           && u mod kl = 0
           && (u / kl) mod ks = 0
           && la mod threads = 0
           && lb mod threads = 0
           && not (kl > 1 && ml * nl * bytes > shared_max)
        then begin
          let lat = la / threads and lbt = lb / threads in
          let regs_of rv =
            int_of_float
              (Float.ceil
                 ((float_of_int (ms * ns * ks) *. rv)
                  +. (float_of_int (ms + ns) *. rv *. 2.0)
                  +. (float_of_int ((ml + nl) * u / threads) *. rv)
                  +. 24.0))
          in
          let regs_lb = regs_of rv_min in
          (* Exact register estimate of the non-vectorized F16 variant
             (vec = 1), hoisted out of the vec loop. *)
          let regs_novec_ok =
            (not f16)
            || (let r = regs_of 1.0 in
                r <= regs_max && r * threads <= regs_sm)
          in
          if regs_lb <= regs_max && regs_lb * threads <= regs_sm then
            Array.iter (fun kg ->
            (* A grid split must leave a full prefetch iteration. *)
            if kg = 1 || (i.k + kg - 1) / kg >= u then
              Array.iter (fun vec ->
              (* Staging must divide between threads in whole vectors;
                 vec also fixes fp16x2 vectorization, making the
                 register estimate exact (F32/F64 were exact above). *)
              if lat mod vec = 0 && lbt mod vec = 0
                 && ((not f16) || vec >= 2 || regs_novec_ok)
              then
                Array.iter (fun db ->
                (* Exact staging footprint; the kl > 1 reduction
                   scratch was checked at the kl level, and
                   [shared_words] is the max of the two. *)
                if (ml + nl) * u * db * bytes <= shared_max then
                  emit ms ns ks ml nl u kl kg vec db)
                GP.values_db)
              GP.values_vec)
            GP.values_kg
        end)
        GP.values_kl
      end)
      GP.values_u
  end)
  GP.values_nl)
  GP.values_ml)
  GP.values_ks)
  GP.values_ns)
  GP.values_ms

let legal_configs_fast_packed device (i : GP.input) =
  let count = ref 0 in
  walk_legal_gemm device i
    ~emit:(fun _ _ _ _ _ _ _ _ _ _ -> incr count);
  let total = !count in
  let buf = Array.make (total * nparams) 0 in
  let n = ref 0 in
  walk_legal_gemm device i
    ~emit:(fun ms ns ks ml nl u kl kg vec db ->
      let o = !n * nparams in
      Array.unsafe_set buf o ms;
      Array.unsafe_set buf (o + 1) ns;
      Array.unsafe_set buf (o + 2) ks;
      Array.unsafe_set buf (o + 3) ml;
      Array.unsafe_set buf (o + 4) nl;
      Array.unsafe_set buf (o + 5) u;
      Array.unsafe_set buf (o + 6) kl;
      Array.unsafe_set buf (o + 7) kg;
      Array.unsafe_set buf (o + 8) vec;
      Array.unsafe_set buf (o + 9) db;
      incr n);
  { packed = buf; count = total; visited = total }

(* Config [j] in the caller-facing (reverse grid) order lives at packed
   slot [count - 1 - j]. *)
let packed_config e j =
  let o = (e.count - 1 - j) * nparams in
  let p = e.packed in
  { GP.ms = p.(o); ns = p.(o + 1); ks = p.(o + 2); ml = p.(o + 3);
    nl = p.(o + 4); u = p.(o + 5); kl = p.(o + 6); kg = p.(o + 7);
    vec = p.(o + 8); db = p.(o + 9) }

let legal_configs_fast device (i : GP.input) =
  let e = legal_configs_fast_packed device i in
  (Array.init e.count (packed_config e), e.visited)

(* Reference enumeration: one unpruned pass over the whole space, with
   legality decided by building the full cost record — the original
   semantics, retained as the [`Scalar] engine and as the differential
   baseline for the pruned path. *)
let legal_configs_reference ~structurally_legal ~cost device =
  let buf = ref [||] and n = ref 0 and visited = ref 0 in
  Config_space.iter Config_space.gemm (fun arr ->
      incr visited;
      let cfg = GP.config_of_array arr in
      if structurally_legal cfg && Gpu.Executor.legal device (cost cfg) then
        grow_push buf n cfg);
  (rev_of !buf !n, !visited)

let legal_gemm_config_array device (i : GP.input) =
  fst (legal_configs_fast device i)

(* CONV legality is GEMM legality of the implicit-GEMM view:
   [CP.structurally_legal] delegates to it, and [CP.cost] keeps the base
   record's per-block resource fields untouched. *)
let legal_conv_config_array device (i : CP.input) =
  fst (legal_configs_fast device (CP.gemm_input i))

let legal_gemm_config_array_ref device (i : GP.input) =
  fst
    (legal_configs_reference device
       ~structurally_legal:(fun c -> GP.structurally_legal i c)
       ~cost:(fun c -> GP.cost i c))

let legal_conv_config_array_ref device (i : CP.input) =
  fst
    (legal_configs_reference device
       ~structurally_legal:(fun c -> CP.structurally_legal i c)
       ~cost:(fun c -> CP.cost i c))

let legal_gemm_configs device i = Array.to_list (legal_gemm_config_array device i)
let legal_conv_configs device i = Array.to_list (legal_conv_config_array device i)

let default_cap () = Util.Env_config.int "ISAAC_SEARCH_CAP" 60_000

(* Deterministic subsample preserving order: every ceil(n/cap)-th item. *)
let subsample cap items =
  let n = Array.length items in
  if n <= cap then items
  else begin
    let stride = (n + cap - 1) / cap in
    Array.init ((n + stride - 1) / stride) (fun i -> items.(i * stride))
  end

(* Same selection over the packed representation — materializes records
   only for the configurations that will be scored. *)
let subsample_packed cap e =
  if e.count <= cap then Array.init e.count (packed_config e)
  else begin
    let stride = (e.count + cap - 1) / cap in
    Array.init
      ((e.count + stride - 1) / stride)
      (fun i -> packed_config e (i * stride))
  end

(* Batched scoring: fill one shared feature matrix through the per-query
   featurization cache, standardize + forward it as matrix-matrix work,
   fanning row ranges across domains. Rows are independent, so the
   result is identical for any domain count. *)
let score_batched ~domains ~query profile cfgs =
  let n = Array.length cfgs in
  (* Worker domains start with empty DLS — hand them the caller's
     request id so their spans/flight events correlate with the plan
     request that spawned them. *)
  let req = Obs.Span.current_request () in
  let x, t_feat =
    Obs.Span.timed (fun () ->
        let x = Mlp.Matrix.create n Features.dim in
        Util.Parallel.iter_ranges ~domains ~total:n (fun ~offset ~size ->
            Obs.Span.set_request req;
            for row = offset to offset + size - 1 do
              Features.fill_query query (GP.config_to_array cfgs.(row)) x ~row
            done);
        x)
  in
  let pred, t_inf =
    Obs.Span.timed (fun () ->
        if domains <= 1 then Profile.predict_std_matrix profile x
        else begin
          let out = Array.make n 0.0 in
          let chunks =
            Util.Parallel.run_chunks_offsets ~domains ~total:n
              (fun ~chunk:_ ~offset ~size ->
                Obs.Span.set_request req;
                let sub = Mlp.Matrix.sub_rows x ~off:offset ~len:size in
                (offset, Profile.predict_std_matrix profile sub))
          in
          List.iter
            (fun (off, p) -> Array.blit p 0 out off (Array.length p))
            chunks;
          out
        end)
  in
  (pred, t_feat, t_inf)

(* Scalar scoring: re-featurize every candidate from scratch and run the
   network one row at a time — the historical per-candidate path, kept
   as the differential reference the batched engine must match
   bit-for-bit. *)
let score_scalar ~domains ~features_of profile cfgs =
  let feats, t_feat = Obs.Span.timed (fun () -> Array.map features_of cfgs) in
  let pred, t_inf =
    Obs.Span.timed (fun () ->
        if domains <= 1 then Array.map (Profile.predict_std_one profile) feats
        else
          Util.Parallel.map_array ~domains (Profile.predict_std_one profile)
            feats)
  in
  (pred, t_feat, t_inf)

let exhaustive ~op ~flops ~legal_fast ~legal_ref ~query ~features_of ~cost
    ?(top_k = 100) ?cap ?noise ?domains ?(engine = `Batched) rng device
    ~profile =
  let cap = match cap with Some c -> c | None -> default_cap () in
  let domains =
    match domains with
    | Some d -> d
    | None -> Util.Parallel.recommended_domains ()
  in
  let enum, t_enum =
    Obs.Span.with_ "search.enumerate" (fun () ->
        Obs.Span.timed (fun () ->
            match engine with
            | `Batched -> `Packed (legal_fast device)
            | `Scalar ->
              let all, visited = legal_ref device in
              `Materialized (all, visited)))
  in
  let n_legal, n_visited =
    match enum with
    | `Packed e -> (e.count, e.visited)
    | `Materialized (all, visited) -> (Array.length all, visited)
  in
  if n_legal = 0 then None
  else begin
    let scored_cfgs =
      match enum with
      | `Packed e -> subsample_packed cap e
      | `Materialized (all, _) -> subsample cap all
    in
    let n = Array.length scored_cfgs in
    let pred, t_feat, t_inf =
      Obs.Span.with_ "search.score"
        ~meta:(fun () ->
          [ ("n_legal", Obs.Json.Int n_legal);
            ("n_scored", Obs.Json.Int n);
            ("domains", Obs.Json.Int domains);
            ( "engine",
              Obs.Json.String
                (match engine with `Batched -> "batched" | `Scalar -> "scalar")
            ) ])
        (fun () ->
          match engine with
          | `Batched -> score_batched ~domains ~query profile scored_cfgs
          | `Scalar -> score_scalar ~domains ~features_of profile scored_cfgs)
    in
    let candidates, t_argmax =
      Obs.Span.timed (fun () ->
          let order = Array.init n (fun i -> i) in
          (* Float.compare, not polymorphic compare: the latter is an
             out-of-line C call per comparison, ~3x the whole sort. *)
          Array.sort (fun a b -> Float.compare pred.(b) pred.(a)) order;
          let k = min top_k n in
          Array.init k (fun rank ->
              let idx = order.(rank) in
              { config = scored_cfgs.(idx);
                predicted_tflops =
                  Features.untarget profile.Profile.scaler pred.(idx) }))
    in
    (* Re-benchmark the short-list on the device and keep the fastest. *)
    let best, t_rebench =
      Obs.Span.with_ "search.rebench"
        ~meta:(fun () -> [ ("top_k", Obs.Json.Int (Array.length candidates)) ])
        (fun () ->
          Obs.Span.timed (fun () ->
              let best = ref None in
              Array.iter
                (fun cand ->
                  match
                    Gpu.Executor.measure_best_of ?noise rng device
                      (cost cand.config)
                  with
                  | None -> ()
                  | Some m ->
                    (* Every rebench pairs a model prediction with a
                       fresh measurement: feed the drift tracker. *)
                    Obs.Telemetry.Model.record ~op
                      ~bucket:(flops_bucket flops)
                      ~predicted:cand.predicted_tflops ~measured:m.tflops;
                    if Obs.Trace.enabled () then
                      Obs.Trace.emit "config"
                        [ ("phase", Obs.Json.String "rebench");
                          ("config", Obs.Json.String (GP.describe cand.config));
                          ( "predicted_tflops",
                            Obs.Json.Float cand.predicted_tflops );
                          ("tflops", Obs.Json.Float m.tflops);
                          ("seconds", Obs.Json.Float m.seconds) ];
                    (match !best with
                     | Some (_, bm) when bm.Gpu.Executor.seconds <= m.seconds ->
                       ()
                     | _ -> best := Some (cand.config, m)))
                candidates;
              !best))
    in
    match best with
    | None -> None
    | Some (cfg, m) ->
      let phases =
        [ ("enumerate", t_enum); ("featurize", t_feat);
          ("inference", t_inf); ("argmax", t_argmax);
          ("rebench", t_rebench) ]
      in
      if Obs.Telemetry.enabled () then
        List.iter
          (fun (ph, t) ->
            match List.assoc_opt ph t_phase_hists with
            | Some h -> Obs.Telemetry.Histo.observe h t
            | None -> ())
          phases;
      Some
        { best = cfg;
          best_measurement = m;
          candidates;
          n_legal;
          n_scored = n;
          n_visited;
          phases }
  end

let exhaustive_gemm ?top_k ?cap ?noise ?domains ?engine rng device ~profile
    (i : GP.input) =
  let log = profile.Profile.log_features in
  exhaustive ?top_k ?cap ?noise ?domains ?engine rng device ~profile ~op:"gemm"
    ~flops:(2.0 *. float_of_int i.m *. float_of_int i.n *. float_of_int i.k)
    ~legal_fast:(fun d -> legal_configs_fast_packed d i)
    ~legal_ref:(fun d ->
      legal_configs_reference d
        ~structurally_legal:(fun c -> GP.structurally_legal i c)
        ~cost:(fun c -> GP.cost i c))
    ~query:(Features.gemm_query ~log i)
    ~features_of:(fun cfg ->
      Features.gemm_features ~log i (GP.config_to_array cfg))
    ~cost:(fun cfg -> GP.cost i cfg)

let exhaustive_conv ?top_k ?cap ?noise ?domains ?engine rng device ~profile
    (i : CP.input) =
  let log = profile.Profile.log_features in
  let gi = CP.gemm_input i in
  exhaustive ?top_k ?cap ?noise ?domains ?engine rng device ~profile ~op:"conv"
    ~flops:(2.0 *. float_of_int gi.m *. float_of_int gi.n *. float_of_int gi.k)
    ~legal_fast:(fun d -> legal_configs_fast_packed d (CP.gemm_input i))
    ~legal_ref:(fun d ->
      legal_configs_reference d
        ~structurally_legal:(fun c -> CP.structurally_legal i c)
        ~cost:(fun c -> CP.cost i c))
    ~query:(Features.conv_query ~log i)
    ~features_of:(fun cfg ->
      Features.conv_features ~log i (GP.config_to_array cfg))
    ~cost:(fun cfg -> CP.cost i cfg)

let oracle ~legal_configs ~cost device =
  let best = ref None in
  Array.iter
    (fun cfg ->
      match Gpu.Perf_model.predict device (cost cfg) with
      | None -> ()
      | Some report ->
        (match !best with
         | Some (_, br) when br.Gpu.Perf_model.seconds <= report.seconds -> ()
         | _ -> best := Some (cfg, report)))
    (legal_configs device);
  !best

let oracle_gemm device (i : GP.input) =
  oracle device
    ~legal_configs:(fun d -> legal_gemm_config_array d i)
    ~cost:(fun cfg -> GP.cost i cfg)

let oracle_conv device (i : CP.input) =
  oracle device
    ~legal_configs:(fun d -> legal_conv_config_array d i)
    ~cost:(fun cfg -> CP.cost i cfg)
