module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type candidate = {
  config : GP.config;
  predicted_tflops : float;
}

type result = {
  best : GP.config;
  best_measurement : Gpu.Executor.measurement;
  candidates : candidate array;
  n_legal : int;
  n_scored : int;
}

(* One forward pass over the space into a growable array (the space has
   tens of thousands of legal points; consing a list and converting later
   doubles the allocation). The result is reversed so callers keep seeing
   the reverse-grid order the list version always produced. *)
let legal_configs ~structurally_legal ~cost device =
  let buf = ref [||] in
  let n = ref 0 in
  Config_space.iter Config_space.gemm (fun arr ->
      let cfg = GP.config_of_array arr in
      if structurally_legal cfg && Gpu.Executor.legal device (cost cfg) then begin
        if !n = Array.length !buf then begin
          let bigger = Array.make (max 1024 (2 * !n)) cfg in
          Array.blit !buf 0 bigger 0 !n;
          buf := bigger
        end;
        !buf.(!n) <- cfg;
        incr n
      end);
  let a = !buf and m = !n in
  Array.init m (fun i -> a.(m - 1 - i))

let legal_gemm_config_array device (i : GP.input) =
  legal_configs device
    ~structurally_legal:(fun c -> GP.structurally_legal i c)
    ~cost:(fun c -> GP.cost i c)

let legal_conv_config_array device (i : CP.input) =
  legal_configs device
    ~structurally_legal:(fun c -> CP.structurally_legal i c)
    ~cost:(fun c -> CP.cost i c)

let legal_gemm_configs device i = Array.to_list (legal_gemm_config_array device i)
let legal_conv_configs device i = Array.to_list (legal_conv_config_array device i)

let default_cap () = Util.Env_config.int "ISAAC_SEARCH_CAP" 60_000

(* Deterministic subsample preserving order: every ceil(n/cap)-th item. *)
let subsample cap items =
  let n = Array.length items in
  if n <= cap then items
  else begin
    let stride = (n + cap - 1) / cap in
    Array.init ((n + stride - 1) / stride) (fun i -> items.(i * stride))
  end

let exhaustive ~legal_configs ~features_of ~cost ?(top_k = 100) ?cap ?noise
    ?domains rng device ~profile =
  let cap = match cap with Some c -> c | None -> default_cap () in
  let domains =
    match domains with
    | Some d -> d
    | None -> Util.Parallel.recommended_domains ()
  in
  let all =
    Obs.Span.with_ "search.enumerate" (fun () -> legal_configs device)
  in
  let n_legal = Array.length all in
  if n_legal = 0 then None
  else begin
    let scored_cfgs = subsample cap all in
    let n = Array.length scored_cfgs in
    let pred =
      Obs.Span.with_ "search.score"
        ~meta:(fun () ->
          [ ("n_legal", Obs.Json.Int n_legal);
            ("n_scored", Obs.Json.Int n);
            ("domains", Obs.Json.Int domains) ])
        (fun () ->
          let dim = Features.dim in
          let x = Mlp.Tensor.create n dim in
          Array.iteri
            (fun row cfg ->
              let f = features_of cfg in
              Array.blit f 0 x.Mlp.Tensor.data (row * dim) dim)
            scored_cfgs;
          (* Model scoring is the latency of §6's runtime inference; fan
             the batch out over domains when asked. *)
          if domains <= 1 then Profile.predict_std_batch profile x
          else begin
            let out = Array.make n 0.0 in
            let base = n / domains and extra = n mod domains in
            let offset chunk = (chunk * base) + min chunk extra in
            let chunks =
              Util.Parallel.run_chunks ~domains ~total:n (fun ~chunk ~size ->
                  let off = offset chunk in
                  let sub = Mlp.Tensor.create size dim in
                  Array.blit x.Mlp.Tensor.data (off * dim) sub.Mlp.Tensor.data 0
                    (size * dim);
                  (off, Profile.predict_std_batch profile sub))
            in
            List.iter (fun (off, p) -> Array.blit p 0 out off (Array.length p)) chunks;
            out
          end)
    in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare pred.(b) pred.(a)) order;
    let k = min top_k n in
    let candidates =
      Array.init k (fun rank ->
          let idx = order.(rank) in
          { config = scored_cfgs.(idx);
            predicted_tflops = Features.untarget profile.Profile.scaler pred.(idx) })
    in
    (* Re-benchmark the short-list on the device and keep the fastest. *)
    let best =
      Obs.Span.with_ "search.rebench"
        ~meta:(fun () -> [ ("top_k", Obs.Json.Int k) ])
        (fun () ->
          let best = ref None in
          Array.iter
            (fun cand ->
              match
                Gpu.Executor.measure_best_of ?noise rng device (cost cand.config)
              with
              | None -> ()
              | Some m ->
                if Obs.Trace.enabled () then
                  Obs.Trace.emit "config"
                    [ ("phase", Obs.Json.String "rebench");
                      ("config", Obs.Json.String (GP.describe cand.config));
                      ("predicted_tflops", Obs.Json.Float cand.predicted_tflops);
                      ("tflops", Obs.Json.Float m.tflops);
                      ("seconds", Obs.Json.Float m.seconds) ];
                (match !best with
                 | Some (_, bm) when bm.Gpu.Executor.seconds <= m.seconds -> ()
                 | _ -> best := Some (cand.config, m)))
            candidates;
          !best)
    in
    match best with
    | None -> None
    | Some (cfg, m) ->
      Some { best = cfg; best_measurement = m; candidates; n_legal; n_scored = n }
  end

let exhaustive_gemm ?top_k ?cap ?noise ?domains rng device ~profile (i : GP.input) =
  exhaustive ?top_k ?cap ?noise ?domains rng device ~profile
    ~legal_configs:(fun d -> legal_gemm_config_array d i)
    ~features_of:(fun cfg ->
      Features.gemm_features ~log:true i (GP.config_to_array cfg))
    ~cost:(fun cfg -> GP.cost i cfg)

let exhaustive_conv ?top_k ?cap ?noise ?domains rng device ~profile (i : CP.input) =
  exhaustive ?top_k ?cap ?noise ?domains rng device ~profile
    ~legal_configs:(fun d -> legal_conv_config_array d i)
    ~features_of:(fun cfg ->
      Features.conv_features ~log:true i (GP.config_to_array cfg))
    ~cost:(fun cfg -> CP.cost i cfg)

let oracle ~legal_configs ~cost device =
  let best = ref None in
  Array.iter
    (fun cfg ->
      match Gpu.Perf_model.predict device (cost cfg) with
      | None -> ()
      | Some report ->
        (match !best with
         | Some (_, br) when br.Gpu.Perf_model.seconds <= report.seconds -> ()
         | _ -> best := Some (cfg, report)))
    (legal_configs device);
  !best

let oracle_gemm device (i : GP.input) =
  oracle device
    ~legal_configs:(fun d -> legal_gemm_config_array d i)
    ~cost:(fun cfg -> GP.cost i cfg)

let oracle_conv device (i : CP.input) =
  oracle device
    ~legal_configs:(fun d -> legal_conv_config_array d i)
    ~cost:(fun cfg -> CP.cost i cfg)
