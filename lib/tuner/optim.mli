(** Alternative discrete optimizers for runtime inference.

    §6 of the paper notes that "any discrete optimization method (e.g.,
    simulated annealing, genetic algorithm, exhaustive search) may be
    used" to optimize the trained model over tuning parameters; it opts
    for exhaustive search. This module provides the other two, used by
    the optimizer ablation in the benchmark harness and available to
    users whose search spaces outgrow exhaustive enumeration.

    An {!objective} scores a flat configuration (higher is better) and
    returns [None] for illegal points; optimizers never return an illegal
    configuration. All methods are deterministic for a given rng. *)

type objective = int array -> float option

type outcome = {
  config : int array;
  score : float;
  evaluations : int;  (** objective calls spent *)
}

val random_search :
  Util.Rng.t -> Config_space.t -> objective -> budget:int -> outcome option
(** Baseline: best of [budget] uniform draws. *)

val simulated_annealing :
  ?t0:float ->
  ?t1:float ->
  ?restarts:int ->
  Util.Rng.t ->
  Config_space.t ->
  objective ->
  budget:int ->
  outcome option
(** Metropolis search over the grid with a geometric temperature schedule
    from [t0] (default 1.0) to [t1] (default 0.01) and single-parameter
    neighbourhood moves (step to an adjacent candidate value). The budget
    is split across [restarts] (default 4) independent chains; the best
    point ever visited is returned. *)

val genetic :
  ?population:int ->
  ?elite:float ->
  ?mutation:float ->
  Util.Rng.t ->
  Config_space.t ->
  objective ->
  budget:int ->
  outcome option
(** Steady-state genetic algorithm: uniform crossover of two parents
    drawn from the elite fraction (default 0.25), per-parameter mutation
    probability [mutation] (default 0.15). Population defaults to 64;
    generations are bounded by the evaluation budget. *)
