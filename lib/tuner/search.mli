(** Runtime kernel inference (paper §6).

    At runtime the input parameters are fixed; the trained model is
    optimized over tuning parameters only, by exhaustive search over the
    legal grid — "guaranteed to find the global optimum within the
    specified search range" — followed by re-benchmarking the top-k
    candidates on the device "to smooth out the inherent noise of our
    predictive model".

    Under [ISAAC_TRACE] the three stages report as [search.enumerate],
    [search.score] and [search.rebench] spans, and every re-benchmarked
    candidate emits a [config] event carrying both its predicted and
    measured TFLOPS — the data for studying model miscalibration on the
    short-list. *)

type candidate = {
  config : Codegen.Gemm_params.config;
  predicted_tflops : float;
}

type result = {
  best : Codegen.Gemm_params.config;
  best_measurement : Gpu.Executor.measurement;
  candidates : candidate array;   (** top-k by model prediction, ranked *)
  n_legal : int;                  (** size of the legal space searched *)
  n_scored : int;                 (** configurations scored by the model *)
}

val legal_gemm_config_array :
  Gpu.Device.t -> Codegen.Gemm_params.input -> Codegen.Gemm_params.config array
(** All fully legal configurations for this input, enumerated in a single
    pass over the space (reverse grid order, matching what the historical
    list API produced). This is what {!exhaustive_gemm} and {!oracle_gemm}
    consume internally. *)

val legal_conv_config_array :
  Gpu.Device.t -> Codegen.Conv_params.input -> Codegen.Gemm_params.config array
(** CONV analogue of {!legal_gemm_config_array} (CONV reuses the GEMM
    configuration record via the implicit-GEMM formulation). *)

val legal_gemm_configs :
  Gpu.Device.t -> Codegen.Gemm_params.input -> Codegen.Gemm_params.config list
(** [Array.to_list] of {!legal_gemm_config_array}, kept for callers that
    want a list. *)

val legal_conv_configs :
  Gpu.Device.t -> Codegen.Conv_params.input -> Codegen.Gemm_params.config list
(** CONV analogue of {!legal_gemm_configs}. *)

val exhaustive_gemm :
  ?top_k:int ->
  ?cap:int ->
  ?noise:float ->
  ?domains:int ->
  Util.Rng.t ->
  Gpu.Device.t ->
  profile:Profile.t ->
  Codegen.Gemm_params.input ->
  result option
(** Full §6 pipeline. [top_k] defaults to 100 (as in the paper); [cap]
    (default 60000, env ISAAC_SEARCH_CAP) bounds how many legal
    configurations are scored — beyond it a deterministic subsample is
    scored instead, trading the global-optimum guarantee for latency
    exactly like shrinking the paper's "specified search range".
    [None] when no configuration is legal (never happens for the spaces
    shipped here). [domains > 1] spreads model scoring over OCaml 5
    domains; it defaults to [Util.Parallel.recommended_domains ()], so
    ISAAC_DOMAINS governs it. Results are identical for any value. *)

val exhaustive_conv :
  ?top_k:int ->
  ?cap:int ->
  ?noise:float ->
  ?domains:int ->
  Util.Rng.t ->
  Gpu.Device.t ->
  profile:Profile.t ->
  Codegen.Conv_params.input ->
  result option
(** CONV analogue of {!exhaustive_gemm}. *)

val oracle_gemm :
  Gpu.Device.t -> Codegen.Gemm_params.input ->
  (Codegen.Gemm_params.config * Gpu.Perf_model.report) option
(** Noise-free argmax of the timing model over the whole legal space: the
    best any search could do. Used by tests ("the MLP search reaches ≥x%
    of the oracle") and by the §8 analysis tables. *)

val oracle_conv :
  Gpu.Device.t -> Codegen.Conv_params.input ->
  (Codegen.Gemm_params.config * Gpu.Perf_model.report) option
(** CONV analogue of {!oracle_gemm}. *)
