(** Runtime kernel inference (paper §6).

    At runtime the input parameters are fixed; the trained model is
    optimized over tuning parameters only, by exhaustive search over the
    legal grid — "guaranteed to find the global optimum within the
    specified search range" — followed by re-benchmarking the top-k
    candidates on the device "to smooth out the inherent noise of our
    predictive model".

    Two scoring engines implement the same pipeline (see DESIGN.md,
    "Planning hot path"):

    - [`Batched] (the default): bound-pruned lattice enumeration whose
      surviving leaves are exactly the legal set (the deepest pruning
      levels check every legality conjunct), per-query featurization caching
      ({!Features.query}), and one matrix-matrix network evaluation per
      layer over the whole candidate batch ({!Mlp.Network.forward_batch}),
      fanned across domains.
    - [`Scalar]: the historical reference — unpruned enumeration with
      full cost-record legality, per-candidate featurization and one
      network evaluation per candidate.

    Float contract: the two engines compute bit-identical predictions
    (same enumeration order, same feature values, same accumulation
    order in the network), so they sort candidates identically, consume
    the rebench [rng] identically, and return the {e same chosen config}
    — asserted by differential tests and by the deterministic
    [plan_argmax_equal] bench check in CI.

    Under [ISAAC_TRACE] the stages report as [search.enumerate],
    [search.score] and [search.rebench] spans, and every re-benchmarked
    candidate emits a [config] event carrying both its predicted and
    measured TFLOPS — the data for studying model miscalibration on the
    short-list. *)

type engine = [ `Batched | `Scalar ]
(** Which scoring engine {!exhaustive_gemm}/{!exhaustive_conv} run.
    Both return identical results; [`Scalar] exists as the differential
    reference and for planning-latency comparisons. *)

type candidate = {
  config : Codegen.Gemm_params.config;
  predicted_tflops : float;
}

type result = {
  best : Codegen.Gemm_params.config;
  best_measurement : Gpu.Executor.measurement;
  candidates : candidate array;   (** top-k by model prediction, ranked *)
  n_legal : int;                  (** size of the legal space searched *)
  n_scored : int;                 (** configurations scored by the model *)
  n_visited : int;                (** lattice leaves materialized by the
                                      enumerator: the full grid for
                                      [`Scalar], the post-pruning survivors
                                      (= the legal set) for [`Batched] *)
  phases : (string * float) list;
  (** wall-clock seconds per pipeline phase, in order: [enumerate]
      (legal-space construction), [featurize] (feature-matrix fill),
      [inference] (network forward), [argmax] (sort + top-k) and
      [rebench] (on-device short-list timing). Surfaced by
      [isaac_query --timing]. *)
}

val legal_gemm_config_array :
  Gpu.Device.t -> Codegen.Gemm_params.input -> Codegen.Gemm_params.config array
(** All fully legal configurations for this input, enumerated in a single
    bound-pruned pass over the space (reverse grid order, matching what
    the historical list API produced; identical to
    {!legal_gemm_config_array_ref} element-for-element). This is what
    {!exhaustive_gemm}'s [`Batched] engine and {!oracle_gemm} consume
    internally. *)

val legal_conv_config_array :
  Gpu.Device.t -> Codegen.Conv_params.input -> Codegen.Gemm_params.config array
(** CONV analogue of {!legal_gemm_config_array}: CONV legality is GEMM
    legality of the implicit-GEMM view ([Conv_params.gemm_input]), so the
    same pruned enumerator runs on that view. *)

val legal_gemm_config_array_ref :
  Gpu.Device.t -> Codegen.Gemm_params.input -> Codegen.Gemm_params.config array
(** Reference enumeration — one unpruned pass over the whole grid with
    legality decided by building each candidate's full cost record. The
    [`Scalar] engine uses this; the differential tests assert it equals
    {!legal_gemm_config_array} exactly. *)

val legal_conv_config_array_ref :
  Gpu.Device.t -> Codegen.Conv_params.input -> Codegen.Gemm_params.config array
(** CONV analogue of {!legal_gemm_config_array_ref}. *)

val legal_gemm_configs :
  Gpu.Device.t -> Codegen.Gemm_params.input -> Codegen.Gemm_params.config list
(** [Array.to_list] of {!legal_gemm_config_array}, kept for callers that
    want a list. *)

val legal_conv_configs :
  Gpu.Device.t -> Codegen.Conv_params.input -> Codegen.Gemm_params.config list
(** CONV analogue of {!legal_gemm_configs}. *)

val exhaustive_gemm :
  ?top_k:int ->
  ?cap:int ->
  ?noise:float ->
  ?domains:int ->
  ?engine:engine ->
  Util.Rng.t ->
  Gpu.Device.t ->
  profile:Profile.t ->
  Codegen.Gemm_params.input ->
  result option
(** Full §6 pipeline. [top_k] defaults to 100 (as in the paper); [cap]
    (default 60000, env ISAAC_SEARCH_CAP) bounds how many legal
    configurations are scored — beyond it a deterministic subsample is
    scored instead, trading the global-optimum guarantee for latency
    exactly like shrinking the paper's "specified search range".
    [None] when no configuration is legal (never happens for the spaces
    shipped here). [domains > 1] spreads featurization and model scoring
    over OCaml 5 domains; it defaults to
    [Util.Parallel.recommended_domains ()], so ISAAC_DOMAINS governs it.
    [engine] defaults to [`Batched]. Results are identical for any
    [domains] and either [engine] (given equal [rng] state). Features
    follow the profile's [log_features] flag. *)

val exhaustive_conv :
  ?top_k:int ->
  ?cap:int ->
  ?noise:float ->
  ?domains:int ->
  ?engine:engine ->
  Util.Rng.t ->
  Gpu.Device.t ->
  profile:Profile.t ->
  Codegen.Conv_params.input ->
  result option
(** CONV analogue of {!exhaustive_gemm}. *)

val oracle_gemm :
  Gpu.Device.t -> Codegen.Gemm_params.input ->
  (Codegen.Gemm_params.config * Gpu.Perf_model.report) option
(** Noise-free argmax of the timing model over the whole legal space: the
    best any search could do. Used by tests ("the MLP search reaches ≥x%
    of the oracle") and by the §8 analysis tables. *)

val oracle_conv :
  Gpu.Device.t -> Codegen.Conv_params.input ->
  (Codegen.Gemm_params.config * Gpu.Perf_model.report) option
(** CONV analogue of {!oracle_gemm}. *)
