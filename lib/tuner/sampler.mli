(** Generative modeling of the legal configuration space (paper §4.1).

    When only the possible space X̂ is explicitly known, uniform sampling
    wastes almost every draw on illegal configurations. The paper's
    remedy is a naive factorized categorical model: treat each tuning
    parameter as an independent categorical variable, estimate each
    marginal from the acceptance proportions of a short uniform warm-up,
    and smooth with a Dirichlet prior (pseudo-count α = 100 per value so
    no probability is ever exactly zero).

    Table 1 reports the resulting acceptance rates; {!acceptance_rate}
    reproduces that measurement.

    Under [ISAAC_TRACE], fitting reports a [sampler.fit] span and the
    rejection loops count [sampler.accepted],
    [sampler.rejected.legal]/[.verify] and [sampler.exhausted], so a
    trace shows the realized acceptance rate of any run. *)

type t
(** A fitted categorical model over a {!Config_space.t}. *)

val alpha_default : float
(** Dirichlet prior pseudo-count, 100 as in the paper. *)

val fit :
  ?alpha:float ->
  ?warmup:int ->
  Util.Rng.t ->
  Config_space.t ->
  legal:(int array -> bool) ->
  t
(** [fit rng space ~legal] draws [warmup] (default 10000) uniform
    configurations, keeps the acceptance counts of every parameter value
    among legal draws, and returns the smoothed per-parameter
    marginals. *)

val space : t -> Config_space.t
(** The configuration space this model was fitted over. *)

val marginal : t -> int -> float array
(** [marginal t i] is the fitted probability distribution over parameter
    [i]'s values (sums to 1). *)

val sample : Util.Rng.t -> t -> int array
(** One draw from the factorized model (not necessarily legal — the
    factorization is naive; callers keep rejecting, just ~100× less
    often). *)

val sample_legal :
  ?max_tries:int -> Util.Rng.t -> t -> legal:(int array -> bool) -> int array option
(** Rejection-sample until [legal] accepts (default 1000 tries). *)

val sample_verified :
  ?max_tries:int ->
  Util.Rng.t ->
  t ->
  legal:(int array -> bool) ->
  verify:(int array -> bool) ->
  int array option
(** Like {!sample_legal}, but additionally requires [verify] — intended
    to be a static-verifier oracle (e.g. {!Dataset.gemm_static_ok}),
    which runs only on configurations [legal] already accepted, so the
    expensive kernel generation + analysis is paid ~1 time per accepted
    draw rather than per rejection. *)

val acceptance_rate :
  trials:int -> sample:(unit -> int array) -> legal:(int array -> bool) -> float
(** Monte-Carlo acceptance estimate used by the Table 1 reproduction. *)
