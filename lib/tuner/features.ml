let dim = 16

let log2 x = Float.log x /. Float.log 2.0

let tr log v = if log then log2 (float_of_int v) else float_of_int v

let pack ~log ~m ~n ~k ~bytes ~flag_a ~flag_b config =
  assert (Array.length config = 10);
  let f = Array.make dim 0.0 in
  f.(0) <- tr log m;
  f.(1) <- tr log n;
  f.(2) <- tr log k;
  f.(3) <- tr log bytes;
  f.(4) <- flag_a;
  f.(5) <- flag_b;
  Array.iteri (fun i v -> f.(6 + i) <- tr log v) config;
  f

let gemm_features ~log (i : Codegen.Gemm_params.input) config =
  pack ~log ~m:i.m ~n:i.n ~k:i.k
    ~bytes:(Ptx.Types.dtype_bytes i.dtype)
    ~flag_a:(if i.a_trans then 1.0 else 0.0)
    ~flag_b:(if i.b_trans then 1.0 else 0.0)
    config

let conv_features ~log (i : Codegen.Conv_params.input) config =
  let gi = Codegen.Conv_params.gemm_input i in
  let rs = tr log (i.r * i.s) in
  let f =
    pack ~log ~m:gi.m ~n:gi.n ~k:gi.k
      ~bytes:(Ptx.Types.dtype_bytes i.dtype) ~flag_a:rs ~flag_b:0.0 config
  in
  f

type scaler = { mean : float; std : float }

let fit_target_scaler tflops =
  let logs = Array.map (fun v -> assert (v > 0.0); Float.log v) tflops in
  let mean = Util.Stats.mean logs in
  let std = Float.max 1e-6 (Util.Stats.stddev logs) in
  { mean; std }

let target s v = (Float.log v -. s.mean) /. s.std
let untarget s y = Float.exp ((y *. s.std) +. s.mean)
