let dim = 16
let schedule_dim = dim + 3

let log2 x = Float.log x /. Float.log 2.0

let tr log v = if log then log2 (float_of_int v) else float_of_int v

(* Schedule-derived features from the static scoreboard: dependence
   critical path per iteration, stall fraction (stall cycles over total
   cycles, already in [0,1)), and peak register pressure. The program is
   regenerated from (input, config); analysis failure (a CFG the
   generators never emit) degrades to zeros rather than poisoning the
   sample. *)
let sched_slots ~log program =
  match Ptx.Scoreboard.analyze program with
  | Error _ -> [| 0.0; 0.0; 0.0 |]
  | Ok t ->
    let s = t.Ptx.Scoreboard.summary in
    let stall_frac = s.stalls_per_slot /. (1.0 +. s.stalls_per_slot) in
    [| tr log (max 1 s.crit_path_cycles);
       stall_frac;
       tr log (max 1 (s.peak_fregs + s.peak_iregs)) |]

let with_schedule ~log base program =
  Array.append base (sched_slots ~log program)

let pack ~log ~m ~n ~k ~bytes ~flag_a ~flag_b config =
  assert (Array.length config = 10);
  let f = Array.make dim 0.0 in
  f.(0) <- tr log m;
  f.(1) <- tr log n;
  f.(2) <- tr log k;
  f.(3) <- tr log bytes;
  f.(4) <- flag_a;
  f.(5) <- flag_b;
  Array.iteri (fun i v -> f.(6 + i) <- tr log v) config;
  f

(* --- per-query featurization cache ------------------------------------- *)

(* Memoized log2 of small non-negative ints. Tuning-parameter values are
   tiny powers of two (<= 128), so during a planning query every config
   slot is a table lookup instead of a [log] call. Entries are computed
   by the same [tr] the uncached path uses, hence bit-identical; the
   table is immutable after module init, so lookups are domain-safe. *)
let log2_memo_size = 256
let log2_memo = Array.init log2_memo_size (fun v -> tr true (max 1 v))

let tr_memo log v =
  if not log then float_of_int v
  else if v > 0 && v < log2_memo_size then Array.unsafe_get log2_memo v
  else tr log v

type query = {
  prefix : float array;  (* the six static input slots of [pack] *)
  q_log : bool;
}

let gemm_query ~log (i : Codegen.Gemm_params.input) =
  { prefix =
      [| tr log i.m; tr log i.n; tr log i.k;
         tr log (Ptx.Types.dtype_bytes i.dtype);
         (if i.a_trans then 1.0 else 0.0);
         (if i.b_trans then 1.0 else 0.0) |];
    q_log = log }

let conv_query ~log (i : Codegen.Conv_params.input) =
  let gi = Codegen.Conv_params.gemm_input i in
  { prefix =
      [| tr log gi.m; tr log gi.n; tr log gi.k;
         tr log (Ptx.Types.dtype_bytes i.dtype);
         tr log (i.r * i.s); 0.0 |];
    q_log = log }

let fill_query q config (x : Mlp.Matrix.t) ~row =
  assert (Array.length config = 10 && x.Mlp.Matrix.cols = dim);
  assert (row >= 0 && row < x.Mlp.Matrix.rows);
  let d = x.Mlp.Matrix.data in
  let base = row * dim in
  for j = 0 to 5 do
    Bigarray.Array1.unsafe_set d (base + j) (Array.unsafe_get q.prefix j)
  done;
  for j = 0 to 9 do
    Bigarray.Array1.unsafe_set d (base + 6 + j)
      (tr_memo q.q_log (Array.unsafe_get config j))
  done

let query_features q config =
  let x = Mlp.Matrix.create 1 dim in
  fill_query q config x ~row:0;
  Array.init dim (fun j -> Mlp.Matrix.get x 0 j)

let gemm_features ?(schedule = false) ~log (i : Codegen.Gemm_params.input)
    config =
  let base =
    pack ~log ~m:i.m ~n:i.n ~k:i.k
      ~bytes:(Ptx.Types.dtype_bytes i.dtype)
      ~flag_a:(if i.a_trans then 1.0 else 0.0)
      ~flag_b:(if i.b_trans then 1.0 else 0.0)
      config
  in
  if not schedule then base
  else
    with_schedule ~log base
      (Codegen.Gemm.generate i
         (Codegen.Gemm_params.config_of_array config))

let conv_features ?(schedule = false) ~log (i : Codegen.Conv_params.input)
    config =
  let gi = Codegen.Conv_params.gemm_input i in
  let rs = tr log (i.r * i.s) in
  let base =
    pack ~log ~m:gi.m ~n:gi.n ~k:gi.k
      ~bytes:(Ptx.Types.dtype_bytes i.dtype) ~flag_a:rs ~flag_b:0.0 config
  in
  if not schedule then base
  else
    with_schedule ~log base
      (Codegen.Conv.generate i
         (Codegen.Gemm_params.config_of_array config))

type scaler = { mean : float; std : float }

let fit_target_scaler tflops =
  let logs = Array.map (fun v -> assert (v > 0.0); Float.log v) tflops in
  let mean = Util.Stats.mean logs in
  let std = Float.max 1e-6 (Util.Stats.stddev logs) in
  { mean; std }

let target s v = (Float.log v -. s.mean) /. s.std
let untarget s y = Float.exp ((y *. s.std) +. s.mean)
