type t = {
  op : [ `Gemm | `Conv ];
  device : string;
  net : Mlp.Network.t;
  scaler : Features.scaler;
  log_features : bool;
  feat_mean : float array;
  feat_std : float array;
}

let default_arch = [| 32; 64; 32 |]

(* Per-feature z-scoring, fitted on the training set. Both the log and
   raw feature variants get it, so Table 2's ablation isolates the log
   transform itself (as in the paper) rather than raw-scale blow-up. *)
let fit_feature_scaler (x : Mlp.Tensor.t) =
  let d = x.Mlp.Tensor.cols and n = x.Mlp.Tensor.rows in
  let mean = Array.make d 0.0 and std = Array.make d 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      mean.(j) <- mean.(j) +. Mlp.Tensor.get x i j
    done
  done;
  Array.iteri (fun j v -> mean.(j) <- v /. float_of_int n) mean;
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      let dv = Mlp.Tensor.get x i j -. mean.(j) in
      std.(j) <- std.(j) +. (dv *. dv)
    done
  done;
  Array.iteri (fun j v -> std.(j) <- Float.max 1e-6 (sqrt (v /. float_of_int n))) std;
  (mean, std)

let standardize ~feat_mean ~feat_std (x : Mlp.Tensor.t) =
  let d = x.Mlp.Tensor.cols and n = x.Mlp.Tensor.rows in
  let out = Mlp.Tensor.create n d in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      Mlp.Tensor.set out i j ((Mlp.Tensor.get x i j -. feat_mean.(j)) /. feat_std.(j))
    done
  done;
  out

let features_of t (ds : Dataset.t) =
  if t.log_features then ds.features_log else ds.features_raw

let train ?(arch = default_arch) ?(epochs = 20) ?(log_features = true) rng
    (ds : Dataset.t) =
  let scaler = Features.fit_target_scaler ds.tflops in
  let y = Array.map (Features.target scaler) ds.tflops in
  let x_raw = if log_features then ds.features_log else ds.features_raw in
  let feat_mean, feat_std = fit_feature_scaler x_raw in
  let x = standardize ~feat_mean ~feat_std x_raw in
  (* Input width follows the dataset (16 paper features, or 19 in the
     schedule-extended ablation). *)
  let sizes = Array.concat [ [| x_raw.Mlp.Tensor.cols |]; arch; [| 1 |] ] in
  let net = Mlp.Network.create rng ~sizes in
  let (_ : Mlp.Train.history) = Mlp.Train.fit ~epochs rng net ~x ~y in
  { op = ds.op; device = ds.device; net; scaler; log_features; feat_mean; feat_std }

let predict_std_batch t x =
  Mlp.Network.predict t.net (standardize ~feat_mean:t.feat_mean ~feat_std:t.feat_std x)

let predict_std_one t features =
  let x = Mlp.Tensor.of_array ~rows:1 ~cols:(Array.length features) features in
  (predict_std_batch t x).(0)

(* Same (x - mean) / std arithmetic as [standardize], applied in place
   on Bigarray storage — the batched scorer fills a fresh matrix per
   query, so there is nothing to preserve. Walks rows in storage order
   (row-major) so the pass is a single sequential sweep. *)
let standardize_matrix_inplace t (x : Mlp.Matrix.t) =
  let d = x.Mlp.Matrix.cols and n = x.Mlp.Matrix.rows in
  assert (Array.length t.feat_mean = d);
  let data = x.Mlp.Matrix.data in
  let mean = t.feat_mean and std = t.feat_std in
  for i = 0 to n - 1 do
    let base = i * d in
    for j = 0 to d - 1 do
      Bigarray.Array1.unsafe_set data (base + j)
        ((Bigarray.Array1.unsafe_get data (base + j) -. Array.unsafe_get mean j)
         /. Array.unsafe_get std j)
    done
  done

let predict_std_matrix t x =
  standardize_matrix_inplace t x;
  Mlp.Network.predict_matrix t.net x

let mse t (ds : Dataset.t) =
  let x = features_of t ds in
  let y = Array.map (Features.target t.scaler) ds.tflops in
  let pred = predict_std_batch t x in
  Util.Stats.mse pred y

let predict_tflops t features =
  let x = Mlp.Tensor.of_array ~rows:1 ~cols:(Array.length features) features in
  Features.untarget t.scaler (predict_std_batch t x).(0)

(* Artifact versions 1–2 were the pre-checksum [isaac-profile v1/v2]
   text files; version 3 is the same v2 body carried in a checksummed
   {!Util.Artifact} envelope (the in-payload header line is gone — the
   envelope owns kind and version now). *)
let artifact_kind = "isaac-profile"
let artifact_version = 3

let to_payload t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "op %s\n" (match t.op with `Gemm -> "gemm" | `Conv -> "conv"));
  Buffer.add_string buf (Printf.sprintf "device %s\n" t.device);
  Buffer.add_string buf
    (Printf.sprintf "scaler %.17g %.17g\n" t.scaler.mean t.scaler.std);
  Buffer.add_string buf (Printf.sprintf "log_features %b\n" t.log_features);
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g " v)) t.feat_mean;
  Buffer.add_char buf '\n';
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g " v)) t.feat_std;
  Buffer.add_char buf '\n';
  Mlp.Network.save_buf buf t.net;
  Buffer.contents buf

let save t path =
  Util.Artifact.write ~path ~kind:artifact_kind ~version:artifact_version
    (to_payload t)

let of_payload path payload =
  let lines = ref (String.split_on_char '\n' payload) in
  let next () =
    match !lines with [] -> raise End_of_file | l :: tl -> lines := tl; l
  in
  let expect fmt = Scanf.sscanf (next ()) fmt in
  let op =
    match expect "op %s" Fun.id with
    | "gemm" -> `Gemm
    | "conv" -> `Conv
    | other -> failwith (path ^ ": unknown op " ^ other)
  in
  let device = expect "device %[^\n]" Fun.id in
  let mean, std = expect "scaler %g %g" (fun a b -> (a, b)) in
  let log_features = expect "log_features %B" Fun.id in
  let floats_of_line l =
    String.split_on_char ' ' (String.trim l)
    |> List.filter (fun s -> s <> "")
    |> List.map float_of_string
    |> Array.of_list
  in
  let feat_mean = floats_of_line (next ()) in
  let feat_std = floats_of_line (next ()) in
  if Array.length feat_mean <> Features.dim || Array.length feat_std <> Features.dim
  then failwith (path ^ ": bad feature scaler");
  let net = Mlp.Network.load_from next in
  { op; device; net; scaler = { Features.mean; std }; log_features; feat_mean;
    feat_std }

let load path =
  match
    Util.Artifact.read ~path ~kind:artifact_kind ~max_version:artifact_version
  with
  | Error e -> Error (Util.Artifact.error_to_string ~path e)
  | Ok (_, payload) -> (
    (* The envelope checksum already rules out torn or rotted bytes, so a
       parse failure here means a genuine schema problem. *)
    match of_payload path payload with
    | t -> Ok t
    | exception Failure msg -> Error msg
    | exception _ -> Error (path ^ ": malformed profile payload"))

let load_exn path =
  match load path with Ok t -> t | Error msg -> failwith msg
