type t = {
  op : [ `Gemm | `Conv ];
  device : string;
  net : Mlp.Network.t;
  scaler : Features.scaler;
  log_features : bool;
  feat_mean : float array;
  feat_std : float array;
}

let default_arch = [| 32; 64; 32 |]

(* Per-feature z-scoring, fitted on the training set. Both the log and
   raw feature variants get it, so Table 2's ablation isolates the log
   transform itself (as in the paper) rather than raw-scale blow-up. *)
let fit_feature_scaler (x : Mlp.Tensor.t) =
  let d = x.Mlp.Tensor.cols and n = x.Mlp.Tensor.rows in
  let mean = Array.make d 0.0 and std = Array.make d 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      mean.(j) <- mean.(j) +. Mlp.Tensor.get x i j
    done
  done;
  Array.iteri (fun j v -> mean.(j) <- v /. float_of_int n) mean;
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      let dv = Mlp.Tensor.get x i j -. mean.(j) in
      std.(j) <- std.(j) +. (dv *. dv)
    done
  done;
  Array.iteri (fun j v -> std.(j) <- Float.max 1e-6 (sqrt (v /. float_of_int n))) std;
  (mean, std)

let standardize ~feat_mean ~feat_std (x : Mlp.Tensor.t) =
  let d = x.Mlp.Tensor.cols and n = x.Mlp.Tensor.rows in
  let out = Mlp.Tensor.create n d in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      Mlp.Tensor.set out i j ((Mlp.Tensor.get x i j -. feat_mean.(j)) /. feat_std.(j))
    done
  done;
  out

let features_of t (ds : Dataset.t) =
  if t.log_features then ds.features_log else ds.features_raw

let train ?(arch = default_arch) ?(epochs = 20) ?(log_features = true) rng
    (ds : Dataset.t) =
  let scaler = Features.fit_target_scaler ds.tflops in
  let y = Array.map (Features.target scaler) ds.tflops in
  let x_raw = if log_features then ds.features_log else ds.features_raw in
  let feat_mean, feat_std = fit_feature_scaler x_raw in
  let x = standardize ~feat_mean ~feat_std x_raw in
  let sizes = Array.concat [ [| Features.dim |]; arch; [| 1 |] ] in
  let net = Mlp.Network.create rng ~sizes in
  let (_ : Mlp.Train.history) = Mlp.Train.fit ~epochs rng net ~x ~y in
  { op = ds.op; device = ds.device; net; scaler; log_features; feat_mean; feat_std }

let predict_std_batch t x =
  Mlp.Network.predict t.net (standardize ~feat_mean:t.feat_mean ~feat_std:t.feat_std x)

let mse t (ds : Dataset.t) =
  let x = features_of t ds in
  let y = Array.map (Features.target t.scaler) ds.tflops in
  let pred = predict_std_batch t x in
  Util.Stats.mse pred y

let predict_tflops t features =
  let x = Mlp.Tensor.of_array ~rows:1 ~cols:(Array.length features) features in
  Features.untarget t.scaler (predict_std_batch t x).(0)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "isaac-profile v2\n";
      Printf.fprintf oc "op %s\n" (match t.op with `Gemm -> "gemm" | `Conv -> "conv");
      Printf.fprintf oc "device %s\n" t.device;
      Printf.fprintf oc "scaler %.17g %.17g\n" t.scaler.mean t.scaler.std;
      Printf.fprintf oc "log_features %b\n" t.log_features;
      Array.iter (fun v -> Printf.fprintf oc "%.17g " v) t.feat_mean;
      Printf.fprintf oc "\n";
      Array.iter (fun v -> Printf.fprintf oc "%.17g " v) t.feat_std;
      Printf.fprintf oc "\n";
      Mlp.Network.save t.net oc)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let expect fmt = Scanf.sscanf (input_line ic) fmt in
      (try expect "isaac-profile v2%!" () with _ -> failwith (path ^ ": bad header"));
      let op =
        match expect "op %s" Fun.id with
        | "gemm" -> `Gemm
        | "conv" -> `Conv
        | other -> failwith (path ^ ": unknown op " ^ other)
      in
      let device = expect "device %[^\n]" Fun.id in
      let mean, std = expect "scaler %g %g" (fun a b -> (a, b)) in
      let log_features = expect "log_features %B" Fun.id in
      let floats_of_line l =
        String.split_on_char ' ' (String.trim l)
        |> List.filter (fun s -> s <> "")
        |> List.map float_of_string
        |> Array.of_list
      in
      let feat_mean = floats_of_line (input_line ic) in
      let feat_std = floats_of_line (input_line ic) in
      if Array.length feat_mean <> Features.dim || Array.length feat_std <> Features.dim
      then failwith (path ^ ": bad feature scaler");
      let net = Mlp.Network.load ic in
      { op; device; net; scaler = { Features.mean; std }; log_features; feat_mean;
        feat_std })
