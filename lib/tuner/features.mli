(** Feature transformation for the performance MLP (paper §5.2).

    Performance models compose hidden hardware constants with input and
    tuning parameters through multiplications, divisions and maximums
    (Eq. 2–3); a feed-forward net cannot easily represent products of raw
    features, but in log space products become sums, so the paper sets
    a₋₁ = log(x) and reports that without it the model "converges to much
    worse solutions — if at all" (Table 2 reproduces both columns).

    A GEMM sample has 16 features: 6 input parameters (M, N, K, data-type
    size, two transposition flags) and 10 tuning parameters. CONV samples
    use the same 16 through their implicit-GEMM view plus the filter
    extent, see {!conv_features}. *)

val dim : int
(** Number of paper features, 16. *)

val schedule_dim : int
(** Number of features in the [~schedule:true] extended mode, 19: the 16
    paper features plus three static-schedule features from
    {!Ptx.Scoreboard} — dependence critical path per iteration, stall
    fraction (stall cycles over total cycles, in [0,1)), and peak
    register pressure. An extension beyond the paper; the ablation suite
    measures its effect on held-out MSE. *)

val gemm_features :
  ?schedule:bool -> log:bool -> Codegen.Gemm_params.input -> int array ->
  float array
(** [gemm_features ~log input config_array]: with [log] the sizes and
    tuning values go through log2 (flags stay 0/1); without it they are
    passed raw (the ablation column of Table 2). With [~schedule:true]
    the kernel is regenerated, the scoreboard runs, and the three
    schedule features are appended ({!schedule_dim} slots total; critical
    path and pressure respect [log], the stall fraction is already
    normalized). *)

val conv_features :
  ?schedule:bool -> log:bool -> Codegen.Conv_params.input -> int array ->
  float array
(** Implicit-GEMM features of a convolution, with R·S folded into the
    data-type slot's spare bits — concretely the same 16 slots, with the
    transposition flags reused for log2(R·S) since convolutions have no
    layout flags. [~schedule] as in {!gemm_features}. *)

type query
(** Featurization cache for one planning query: the six static input
    slots (shapes, data-type size, layout flags — identical for every
    candidate configuration of that query) precomputed once, so scoring
    a lattice of thousands of candidates recomputes only the ten tuning
    slots per row, each a memoized-log2 table lookup. Values are
    bit-identical to the uncached {!gemm_features}/{!conv_features}
    (asserted by the differential tests). *)

val gemm_query : log:bool -> Codegen.Gemm_params.input -> query
(** Precompute the static feature slots of a GEMM input. *)

val conv_query : log:bool -> Codegen.Conv_params.input -> query
(** Precompute the static slots of a convolution's implicit-GEMM view
    (R·S folded into the layout-flag slot, as in {!conv_features}). *)

val fill_query : query -> int array -> Mlp.Matrix.t -> row:int -> unit
(** [fill_query q config x ~row] writes the {!dim}-wide feature vector
    of [config] (a flat 10-slot tuning configuration) into row [row] of
    the batch matrix [x] — the write side of the batched scoring path.
    [x] must have {!dim} columns. *)

val query_features : query -> int array -> float array
(** One row through {!fill_query}, returned as a plain array (tests and
    scalar callers). Equals [gemm_features]/[conv_features] of the same
    (input, config) bit-for-bit. *)

type scaler = {
  mean : float;
  std : float;
}
(** Standardization of the regression target. The target is
    log(TFLOPS): performance spans 3+ orders of magnitude and MSE on the
    log is what makes Table 2's values comparable across problems. *)

val fit_target_scaler : float array -> scaler
(** Fit on raw TFLOPS values (must be positive). *)

val target : scaler -> float -> float
(** TFLOPS → standardized log-space target. *)

val untarget : scaler -> float -> float
(** Inverse of {!target}. *)
