(** Training-set synthesis (paper §4): draw random (input, tuning)
    pairs from the generative model, benchmark the induced kernels on the
    device, and record (features, TFLOPS) pairs.

    Inputs (shapes, layouts, data-types) are sampled log-uniformly across
    the ranges the evaluation suites live in, so the MLP must genuinely
    interpolate input-dependence — the system never trains on the
    benchmark shapes themselves.

    When [ISAAC_TRACE] is set, generation runs inside a
    [dataset.generate] span and reports [dataset.samples],
    per-diagnostic static-verifier rejections ([verify.fail.<kind>]) and
    one [config] trace event per benchmarked configuration (see
    DESIGN.md, "Observability"). *)

type t = {
  op : [ `Gemm | `Conv ];
  device : string;
  features_log : Mlp.Tensor.t;   (** n × {!Features.dim}, log-transformed *)
  features_raw : Mlp.Tensor.t;   (** same rows without the log (ablation) *)
  tflops : float array;
}

val size : t -> int
(** Number of measured samples (rows). *)

val random_gemm_input :
  ?dtypes:Ptx.Types.dtype list -> Util.Rng.t -> Codegen.Gemm_params.input
(** Log-uniform M, N ∈ \[16, 4096\], K ∈ \[16, 65536\], random layouts and
    data-type. *)

val random_conv_input :
  ?dtypes:Ptx.Types.dtype list -> Util.Rng.t -> Codegen.Conv_params.input
(** Log-uniform N/C/K/P/Q, filter sizes in {1,3,5,7}, random stride and
    padding — the CONV analogue of {!random_gemm_input}. *)

val gemm_legal :
  Gpu.Device.t -> Codegen.Gemm_params.input -> int array -> bool
(** Full legality of a flat configuration: structural + device resource
    limits (the X of §4). *)

val conv_legal : Gpu.Device.t -> Codegen.Conv_params.input -> int array -> bool
(** CONV analogue of {!gemm_legal} (legality is checked on the induced
    implicit-GEMM problem). *)

val gemm_static_ok : Codegen.Gemm_params.input -> int array -> bool
(** Static legality oracle: generate the kernel and accept iff
    {!Ptx.Verify.run} reports no errors. Requires the configuration to
    already be structurally legal (pair with {!gemm_legal} or use
    {!Sampler.sample_verified}). *)

val conv_static_ok : Codegen.Conv_params.input -> int array -> bool
(** CONV analogue of {!gemm_static_ok}. *)

val fit_gemm_sampler :
  ?warmup:int -> ?dtypes:Ptx.Types.dtype list -> Util.Rng.t -> Gpu.Device.t ->
  Sampler.t
(** Fit the categorical generative model against legality under random
    inputs (each warm-up draw pairs a uniform configuration with a fresh
    random input). *)

val fit_conv_sampler :
  ?warmup:int -> ?dtypes:Ptx.Types.dtype list -> Util.Rng.t -> Gpu.Device.t ->
  Sampler.t
(** CONV analogue of {!fit_gemm_sampler}. *)

val generate_gemm :
  ?domains:int ->
  ?dtypes:Ptx.Types.dtype list ->
  ?noise:float ->
  ?sampler:Sampler.t ->
  ?verify:bool ->
  ?checkpoint:string * int ->
  Util.Rng.t ->
  Gpu.Device.t ->
  n:int ->
  t
(** Generate [n] measured samples. A pre-fitted sampler can be supplied
    to skip the warm-up. [domains > 1] fans the benchmarking loop out
    over OCaml 5 domains (deterministic for fixed seed and domain
    count). [verify] (default false) additionally gates every accepted
    configuration on the static verifier ({!gemm_static_ok}).

    [checkpoint = (path, every_n)] makes the expensive benchmarking loop
    resumable: each domain atomically persists its partial chunk to
    [path.chunk<i>] (a checksummed {!Util.Artifact}, kind
    ["isaac-dataset-chunk"]) every [every_n] accepted samples, recording
    the measured rows and the chunk RNG state. A killed run re-invoked
    with the same seed, [domains] and [path] restores each chunk from
    its last durable state and produces a dataset bitwise-identical to
    an uninterrupted run; chunk files are deleted once the final merge
    completes. Stale checkpoints (different op, device or chunk size)
    and corrupt ones are rejected with a warning (counted in
    [dataset.checkpoint_rejected]) and the chunk restarts from scratch.

    Inputs for which no measurable configuration exists (e.g. an
    over-restricted [dtypes]) are skipped and counted in
    [dataset.skipped_inputs]; if 100 consecutive inputs make no
    progress, generation raises [Failure] with a descriptive message
    instead of spinning forever. *)

val generate_conv :
  ?domains:int ->
  ?dtypes:Ptx.Types.dtype list ->
  ?noise:float ->
  ?sampler:Sampler.t ->
  ?verify:bool ->
  ?checkpoint:string * int ->
  Util.Rng.t ->
  Gpu.Device.t ->
  n:int ->
  t
(** CONV analogue of {!generate_gemm}. *)

val throughput_probe :
  Util.Rng.t -> Gpu.Device.t -> n:int -> float
(** Samples-per-second of the full generate-validate-measure loop (the
    §4.2 "50,000 valid kernels in under two hours" claim, which our
    simulated device beats by construction; reported for completeness).
    Measured in wall-clock time, so multi-domain runs are not credited
    with their summed CPU time. *)

val export_kernel_corpus :
  ?dtypes:Ptx.Types.dtype list ->
  ?warmup:int ->
  op:[ `Gemm | `Conv ] ->
  Util.Rng.t ->
  Gpu.Device.t ->
  n:int ->
  path:string ->
  int
(** Sample [n] legal (input, configuration) pairs exactly as dataset
    generation does, lower each to its kernel, and persist the
    register-allocated kernels in {!Ptx.Encode}'s packed binary corpus
    format at [path] (kind ["isaac-packed-kernels"], deduplicated by
    kernel hash — the same identity the plan cache uses, so a dataset's
    kernel population can be joined against served plans). Kernels that
    exceed the fixed-width encoding even post-allocation are counted in
    [dataset.kernel_encode_failures] and skipped. Returns the number of
    distinct kernels written. Deterministic given the rng; raises
    [Failure] like [generate_*] when the restricted space is empty. *)
