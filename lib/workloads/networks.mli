(** Whole-network workloads: the layer stacks of three representative
    deep networks, mixing convolutions and matrix products, used by the
    "networks" benchmark to aggregate ISAAC's per-layer gains into
    end-to-end inference/training-step speedups (the deployment scenario
    the paper's introduction motivates). *)

type layer =
  | Gemm of Codegen.Gemm_params.input
  | Conv of Codegen.Conv_params.input

type network = {
  name : string;
  layers : (string * layer) list;  (** (label, layer) in execution order *)
}

val flops : layer -> float
(** Useful flops of one layer (2·M·N·K or 2·N·P·Q·K·C·R·S). *)

val alexnet : ?batch:int -> Ptx.Types.dtype -> network
(** The five AlexNet convolutions (strides and paddings included) plus
    its three fully-connected layers. Default batch 16. *)

val resnet50_excerpt : ?batch:int -> Ptx.Types.dtype -> network
(** One bottleneck's worth of convolutions from each of ResNet-50's four
    stages (1x1 reduce, 3x3, 1x1 expand at 56/28/14/7 spatial sizes) and
    the final classifier GEMM. Default batch 8. *)

val lstm : ?batch:int -> ?hidden:int -> ?steps:int -> Ptx.Types.dtype -> network
(** A single-layer LSTM unrolled over [steps] timesteps (default 8):
    each step is the fused-gate product (4·hidden × batch × 2·hidden).
    Default hidden 1024, batch 32 — DeepBench's RNN regime, where the
    batch dimension is far below vendor tile widths. *)

val all : Ptx.Types.dtype -> network list
