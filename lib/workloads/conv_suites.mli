(** The convolution evaluation tasks of Table 5: fourteen DeepBench
    layers spanning six applications (DeepSpeech, OCR, face recognition,
    vision, speaker identification, ResNet). Figures 9–11 run this suite
    in fp32 on the GTX 980 Ti and in fp32/fp16 on the P100. *)

type task = {
  group : string;    (** application, e.g. "DeepSpeech" *)
  label : string;    (** "Conv1" … "Conv14" *)
  input : Codegen.Conv_params.input;
}

val suite : Ptx.Types.dtype -> task list
(** All fourteen layers in Table 5 order. *)

val find : string -> Ptx.Types.dtype -> task
(** Look up a layer by label, e.g. [find "Conv8" F32].
    Raises [Not_found]. *)
