module GP = Codegen.Gemm_params

type task = {
  group : string;
  label : string;
  input : GP.input;
}

let linpack dtype =
  List.map
    (fun s ->
      { group = "LINPACK"; label = string_of_int s;
        input = GP.input ~dtype ~b_trans:true s s s })
    [ 512; 1024; 2048 ]

let deepbench_ns = [ 16; 32; 64; 128 ]

let deepbench_forward ?(mk = 2560) dtype =
  List.map
    (fun n ->
      { group = "DeepBench [F]"; label = string_of_int n;
        input = GP.input ~dtype mk n mk })
    deepbench_ns

let deepbench_backward ?(mk = 2560) dtype =
  List.map
    (fun n ->
      { group = "DeepBench [B]"; label = string_of_int n;
        input = GP.input ~dtype ~a_trans:true mk n mk })
    deepbench_ns

let ica dtype =
  List.map
    (fun c ->
      { group = "ICA"; label = string_of_int c;
        input = GP.input ~dtype ~b_trans:true c c 60000 })
    [ 32; 64; 256 ]

let blocked_svd dtype =
  List.map
    (fun s ->
      { group = "Blocked SVD"; label = string_of_int s;
        input = GP.input ~dtype ~b_trans:true s s 32 })
    [ 896; 2048; 4096 ]

let fp32_suite ~mk =
  linpack F32 @ deepbench_forward ~mk F32 @ deepbench_backward ~mk F32 @ ica F32
  @ blocked_svd F32

let mixed_suite ~mk =
  linpack F16 @ deepbench_forward ~mk F16 @ deepbench_backward ~mk F16 @ ica F64
  @ blocked_svd F64

let table6_problems =
  [ ("LINPACK (512)", GP.input ~b_trans:true 512 512 512);
    ("LINPACK (2048)", GP.input ~b_trans:true 2048 2048 2048);
    ("DeepBench-F (16)", GP.input 2560 16 2560);
    ("DeepBench-F (128)", GP.input 2560 128 2560);
    ("DeepBench-B (16)", GP.input ~a_trans:true 2560 16 2560);
    ("DeepBench-B (128)", GP.input ~a_trans:true 2560 128 2560);
    ("ICA (32)", GP.input ~b_trans:true 32 32 60000);
    ("ICA (256)", GP.input ~b_trans:true 256 256 60000);
    ("LAPACK (896)", GP.input ~b_trans:true 896 896 32);
    ("LAPACK (4096)", GP.input ~b_trans:true 4096 4096 32) ]
