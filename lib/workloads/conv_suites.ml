module CP = Codegen.Conv_params

type task = {
  group : string;
  label : string;
  input : CP.input;
}

(* Table 5: (N, P, Q, K, C, R, S) per row. *)
let rows =
  [ ("DeepSpeech", "Conv1", (16, 79, 341, 32, 1, 5, 20));
    ("DeepSpeech", "Conv2", (16, 38, 166, 32, 32, 5, 10));
    ("OCR", "Conv3", (16, 24, 240, 32, 16, 3, 3));
    ("OCR", "Conv4", (16, 12, 120, 64, 32, 3, 3));
    ("Face Recognition", "Conv5", (8, 54, 54, 64, 64, 3, 3));
    ("Face Recognition", "Conv6", (8, 27, 27, 128, 128, 3, 3));
    ("Face Recognition", "Conv7", (16, 14, 14, 48, 512, 5, 5));
    ("Face Recognition", "Conv8", (16, 7, 7, 128, 832, 5, 5));
    ("Vision", "Conv9", (8, 112, 112, 128, 64, 3, 3));
    ("Vision", "Conv10", (8, 56, 56, 256, 128, 3, 3));
    ("Speaker ID", "Conv11", (16, 128, 39, 174, 64, 5, 5));
    ("Speaker ID", "Conv12", (16, 256, 19, 87, 128, 5, 5));
    ("ResNET", "Conv13", (16, 7, 7, 512, 512, 3, 3));
    ("ResNET", "Conv14", (16, 7, 7, 2048, 1024, 1, 1)) ]

let suite dtype =
  List.map
    (fun (group, label, (n, p, q, k, c, r, s)) ->
      { group; label; input = CP.input ~dtype ~n ~c ~k ~p ~q ~r ~s () })
    rows

let find label dtype =
  match List.find_opt (fun t -> t.label = label) (suite dtype) with
  | Some t -> t
  | None -> raise Not_found
