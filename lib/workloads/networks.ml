module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type layer = Gemm of GP.input | Conv of CP.input

type network = {
  name : string;
  layers : (string * layer) list;
}

let flops = function
  | Gemm i -> 2.0 *. float_of_int i.m *. float_of_int i.n *. float_of_int i.k
  | Conv i ->
    2.0 *. float_of_int (CP.npq i) *. float_of_int i.k *. float_of_int (CP.crs i)

let conv ?(stride = 1) ?(pad = 0) ~dtype ~n ~c ~k ~p ~r () =
  Conv (CP.input ~dtype ~stride ~pad ~n ~c ~k ~p ~q:p ~r ~s:r ())

(* Fully connected forward pass: out(features_out x batch) =
   W(features_out x features_in) . x(features_in x batch). *)
let fc ~dtype ~batch ~fin ~fout =
  Gemm (GP.input ~dtype fout batch fin)

let alexnet ?(batch = 16) dtype =
  { name = "AlexNet";
    layers =
      [ ("conv1", conv ~dtype ~n:batch ~c:3 ~k:64 ~p:55 ~r:11 ~stride:4 ~pad:2 ());
        ("conv2", conv ~dtype ~n:batch ~c:64 ~k:192 ~p:27 ~r:5 ~pad:2 ());
        ("conv3", conv ~dtype ~n:batch ~c:192 ~k:384 ~p:13 ~r:3 ~pad:1 ());
        ("conv4", conv ~dtype ~n:batch ~c:384 ~k:256 ~p:13 ~r:3 ~pad:1 ());
        ("conv5", conv ~dtype ~n:batch ~c:256 ~k:256 ~p:13 ~r:3 ~pad:1 ());
        ("fc6", fc ~dtype ~batch ~fin:9216 ~fout:4096);
        ("fc7", fc ~dtype ~batch ~fin:4096 ~fout:4096);
        ("fc8", fc ~dtype ~batch ~fin:4096 ~fout:1000) ] }

let resnet50_excerpt ?(batch = 8) dtype =
  let block ~stage ~c ~k ~p =
    [ (Printf.sprintf "s%d.1x1a" stage, conv ~dtype ~n:batch ~c ~k ~p ~r:1 ());
      (Printf.sprintf "s%d.3x3" stage, conv ~dtype ~n:batch ~c:k ~k ~p ~r:3 ~pad:1 ());
      (Printf.sprintf "s%d.1x1b" stage,
       conv ~dtype ~n:batch ~c:k ~k:(4 * k) ~p ~r:1 ()) ]
  in
  { name = "ResNet-50 (excerpt)";
    layers =
      block ~stage:2 ~c:256 ~k:64 ~p:56
      @ block ~stage:3 ~c:512 ~k:128 ~p:28
      @ block ~stage:4 ~c:1024 ~k:256 ~p:14
      @ block ~stage:5 ~c:2048 ~k:512 ~p:7
      @ [ ("fc", fc ~dtype ~batch ~fin:2048 ~fout:1000) ] }

let lstm ?(batch = 32) ?(hidden = 1024) ?(steps = 8) dtype =
  { name = Printf.sprintf "LSTM h=%d" hidden;
    layers =
      List.init steps (fun t ->
          (* Fused gates: [i f g o] = W . [x; h], W is 4h x 2h. *)
          (Printf.sprintf "step%d" t,
           Gemm (GP.input ~dtype (4 * hidden) batch (2 * hidden)))) }

let all dtype = [ alexnet dtype; resnet50_excerpt dtype; lstm dtype ]
