(** The GEMM evaluation tasks of Table 4: LINPACK squares, DeepBench
    forward/backward propagation shapes, independent component analysis
    covariance products, and blocked-SVD panel products.

    Figure 6 (GTX 980 Ti) and Figure 7 (P100) run the fp32 suite;
    Figure 8 (P100) runs the mixed-precision variant (fp16 for LINPACK
    and DeepBench, fp64 for ICA and SVD). *)

type task = {
  group : string;   (** "LINPACK", "DeepBench [F]", ... *)
  label : string;   (** x-axis label in the figures, e.g. "512" or "16" *)
  input : Codegen.Gemm_params.input;
}

val linpack : Ptx.Types.dtype -> task list
(** Square M=N=K ∈ {512, 1024, 2048}, A·Bᵀ. *)

val deepbench_forward : ?mk:int -> Ptx.Types.dtype -> task list
(** M=K fixed (1760 on Maxwell, 2560 on Pascal — the paper uses both),
    N ∈ {16,32,64,128}, no transposes. *)

val deepbench_backward : ?mk:int -> Ptx.Types.dtype -> task list
(** Same shapes with A transposed (gradient computation). *)

val ica : Ptx.Types.dtype -> task list
(** M=N ∈ {32, 64, 256}, K = 60000, covariance layout A·Bᵀ. *)

val blocked_svd : Ptx.Types.dtype -> task list
(** M=N ∈ {896, 2048, 4096}, K = 32: the packed outer products of blocked
    Householder bi-diagonalization. *)

val fp32_suite : mk:int -> task list
(** The Figure 6/7 list in paper order. [mk] is the DeepBench M=K. *)

val mixed_suite : mk:int -> task list
(** The Figure 8 list: fp16 LINPACK + DeepBench, fp64 ICA + SVD. *)

val table6_problems : (string * Codegen.Gemm_params.input) list
(** The ten rows of Table 6 (parameterization choices of ISAAC). *)
