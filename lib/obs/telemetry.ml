(* Always-on serving telemetry: sharded lock-free counters and gauges,
   log-bucketed mergeable histograms, a per-domain flight recorder, a
   model-quality (predicted-vs-measured residual) channel, and a
   periodic snapshot exporter (JSONL + Prometheus-style text).

   Design contract (mirrors Trace): when ISAAC_TELEMETRY is unset every
   gated entry point reduces to one atomic-bool load. When enabled, the
   hot path is a shard lookup plus one [Atomic.fetch_and_add] — no
   mutex is ever taken on a counter bump or histogram observation, so
   totals are exact for any domain count (fetch-and-add cannot lose
   increments even when two domains collide on a shard). *)

let shard_bits = 4
let n_shards = 1 lsl shard_bits

(* Domain ids grow monotonically over the program's life; masking can
   alias two live domains onto one shard. That only costs contention on
   the shard's atomics — never correctness. *)
let shard_self () = (Domain.self () :> int) land (n_shards - 1)

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let rec atomic_min_float a x =
  let cur = Atomic.get a in
  if x < cur && not (Atomic.compare_and_set a cur x) then atomic_min_float a x

let rec atomic_max_float a x =
  let cur = Atomic.get a in
  if x > cur && not (Atomic.compare_and_set a cur x) then atomic_max_float a x

(* --- enabled flag (set by [start], read by every gated call) ----------- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* --- counters ----------------------------------------------------------- *)

module Counter = struct
  type t = { cells : int Atomic.t array }

  let create () = { cells = Array.init n_shards (fun _ -> Atomic.make 0) }
  let add t n = ignore (Atomic.fetch_and_add t.cells.(shard_self ()) n)
  let incr t = add t 1
  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
  let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells
end

(* --- log-bucketed histograms -------------------------------------------- *)

module Histo = struct
  (* HDR-style layout: each power-of-two octave [2^k, 2^{k+1}) is split
     into [sub_count] equal linear sub-buckets, so the relative bucket
     width is at most 1/sub_count = 3.125% and reporting the bucket
     midpoint bounds the relative quantile error by half that (~1.6%,
     under the documented 2% bound). Bucket indices are computable from
     [frexp] alone — no log call on the hot path. *)
  let sub_bits = 5
  let sub_count = 1 lsl sub_bits
  let oct_lo = -40 (* smallest octave: values below 2^-40 clamp to bucket 0 *)
  let n_octaves = 64 (* largest octave 2^23: ~8.4e6 (seconds, bytes, ratios) *)
  let n_buckets = n_octaves * sub_count

  let bucket_of v =
    if Float.is_nan v || v <= 0.0 then 0
    else if v = Float.infinity then n_buckets - 1
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1): v lies in octave [2^(e-1), 2^e). *)
      let oct = e - 1 in
      if oct < oct_lo then 0
      else if oct >= oct_lo + n_octaves then n_buckets - 1
      else begin
        let s = int_of_float ((m *. 2.0 -. 1.0) *. float_of_int sub_count) in
        let s = if s >= sub_count then sub_count - 1 else if s < 0 then 0 else s in
        ((oct - oct_lo) lsl sub_bits) lor s
      end
    end

  let bucket_lower b =
    let oct = oct_lo + (b lsr sub_bits) and s = b land (sub_count - 1) in
    Float.ldexp (1.0 +. (float_of_int s /. float_of_int sub_count)) oct

  let bucket_width b =
    Float.ldexp (1.0 /. float_of_int sub_count) (oct_lo + (b lsr sub_bits))

  let bucket_mid b = bucket_lower b +. (0.5 *. bucket_width b)

  type shard = {
    (* Bucket arrays are allocated on a shard's first observation, so
       idle shards cost one word instead of [n_buckets] atomics. *)
    s_buckets : int Atomic.t array option Atomic.t;
    s_sum : float Atomic.t;
  }

  type t = {
    shards : shard array;
    h_min : float Atomic.t;
    h_max : float Atomic.t;
  }

  let create () =
    { shards =
        Array.init n_shards (fun _ ->
            { s_buckets = Atomic.make None; s_sum = Atomic.make 0.0 });
      h_min = Atomic.make Float.infinity;
      h_max = Atomic.make Float.neg_infinity }

  let shard_buckets sh =
    match Atomic.get sh.s_buckets with
    | Some b -> b
    | None ->
      let fresh = Array.init n_buckets (fun _ -> Atomic.make 0) in
      if Atomic.compare_and_set sh.s_buckets None (Some fresh) then fresh
      else (
        match Atomic.get sh.s_buckets with
        | Some b -> b
        | None -> fresh (* unreachable: CAS loser implies a publisher *))

  let observe t v =
    if not (Float.is_nan v) then begin
      let sh = t.shards.(shard_self ()) in
      let b = shard_buckets sh in
      ignore (Atomic.fetch_and_add b.(bucket_of v) 1);
      atomic_add_float sh.s_sum v;
      if v < Atomic.get t.h_min then atomic_min_float t.h_min v;
      if v > Atomic.get t.h_max then atomic_max_float t.h_max v
    end

  type snapshot = {
    count : int;
    sum : float;
    min_v : float; (* +inf when empty *)
    max_v : float; (* -inf when empty *)
    buckets : (int * int) array; (* sparse (bucket, count), ascending *)
  }

  let empty_snapshot =
    { count = 0; sum = 0.0; min_v = Float.infinity;
      max_v = Float.neg_infinity; buckets = [||] }

  let snapshot t =
    let totals = Array.make n_buckets 0 in
    let sum = ref 0.0 in
    Array.iter
      (fun sh ->
        (match Atomic.get sh.s_buckets with
         | None -> ()
         | Some b ->
           for i = 0 to n_buckets - 1 do
             totals.(i) <- totals.(i) + Atomic.get b.(i)
           done);
        sum := !sum +. Atomic.get sh.s_sum)
      t.shards;
    let count = Array.fold_left ( + ) 0 totals in
    let sparse = ref [] in
    for i = n_buckets - 1 downto 0 do
      if totals.(i) > 0 then sparse := (i, totals.(i)) :: !sparse
    done;
    { count;
      sum = !sum;
      min_v = Atomic.get t.h_min;
      max_v = Atomic.get t.h_max;
      buckets = Array.of_list !sparse }

  let reset t =
    Array.iter
      (fun sh ->
        (match Atomic.get sh.s_buckets with
         | None -> ()
         | Some b -> Array.iter (fun a -> Atomic.set a 0) b);
        Atomic.set sh.s_sum 0.0)
      t.shards;
    Atomic.set t.h_min Float.infinity;
    Atomic.set t.h_max Float.neg_infinity

  (* Merge is element-wise bucket addition: associative and commutative
     (exactly so for the integer fields; the float [sum] is exact
     whenever the observations are, e.g. integer-valued tests). *)
  let merge a b =
    if a.count = 0 then b
    else if b.count = 0 then a
    else begin
      let out = ref [] in
      let ia = ref 0 and ib = ref 0 in
      let na = Array.length a.buckets and nb = Array.length b.buckets in
      while !ia < na || !ib < nb do
        if !ib >= nb then (out := a.buckets.(!ia) :: !out; incr ia)
        else if !ia >= na then (out := b.buckets.(!ib) :: !out; incr ib)
        else begin
          let ka, ca = a.buckets.(!ia) and kb, cb = b.buckets.(!ib) in
          if ka < kb then (out := (ka, ca) :: !out; incr ia)
          else if kb < ka then (out := (kb, cb) :: !out; incr ib)
          else (out := (ka, ca + cb) :: !out; incr ia; incr ib)
        end
      done;
      { count = a.count + b.count;
        sum = a.sum +. b.sum;
        min_v = Float.min a.min_v b.min_v;
        max_v = Float.max a.max_v b.max_v;
        buckets = Array.of_list (List.rev !out) }
    end

  let quantile s q =
    if s.count = 0 then Float.nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = max 1 (int_of_float (Float.ceil (q *. float_of_int s.count))) in
      let rec go i cum =
        if i >= Array.length s.buckets then s.max_v
        else begin
          let b, c = s.buckets.(i) in
          let cum = cum + c in
          if cum >= target then
            (* Clamp the bucket midpoint to the observed range so p0/p100
               coincide with the exactly-tracked min/max. *)
            Float.max s.min_v (Float.min s.max_v (bucket_mid b))
          else go (i + 1) cum
        end
      in
      go 0 0
    end

  let mean s = if s.count = 0 then Float.nan else s.sum /. float_of_int s.count
end

(* --- gauges ------------------------------------------------------------- *)

module Gauge = struct
  type t = { cell : float Atomic.t }

  let create () = { cell = Atomic.make Float.nan }
  let set t v = Atomic.set t.cell v
  let value t = Atomic.get t.cell
  let reset t = Atomic.set t.cell Float.nan
end

(* --- model-quality cells ------------------------------------------------ *)

type model_cell = {
  cell_op : string;
  cell_bucket : string;
  m_n : int Atomic.t;
  m_abs_rel : float Atomic.t; (* sum of |predicted-measured|/measured *)
}

(* --- registry ----------------------------------------------------------- *)

module Registry = struct
  type entity =
    | C of Counter.t
    | H of Histo.t
    | G of Gauge.t
    | M of model_cell

  (* Copy-on-write table published through an [Atomic]: reads (the hot
     path for string-keyed callers) are lock-free on an immutable
     snapshot; inserts take the mutex, copy, and republish. *)
  type t = {
    tbl : (string, entity) Hashtbl.t Atomic.t;
    lock : Mutex.t;
  }

  let create () = { tbl = Atomic.make (Hashtbl.create 16); lock = Mutex.create () }

  let find_or reg name make =
    match Hashtbl.find_opt (Atomic.get reg.tbl) name with
    | Some e -> e
    | None ->
      Mutex.lock reg.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock reg.lock)
        (fun () ->
          let cur = Atomic.get reg.tbl in
          match Hashtbl.find_opt cur name with
          | Some e -> e
          | None ->
            let e = make () in
            let copy = Hashtbl.copy cur in
            Hashtbl.add copy name e;
            Atomic.set reg.tbl copy;
            e)

  let counter reg name =
    match find_or reg name (fun () -> C (Counter.create ())) with
    | C c -> c
    | _ -> invalid_arg ("Telemetry: " ^ name ^ " is not a counter")

  let histo reg name =
    match find_or reg name (fun () -> H (Histo.create ())) with
    | H h -> h
    | _ -> invalid_arg ("Telemetry: " ^ name ^ " is not a histogram")

  let gauge reg name =
    match find_or reg name (fun () -> G (Gauge.create ())) with
    | G g -> g
    | _ -> invalid_arg ("Telemetry: " ^ name ^ " is not a gauge")

  let fold reg f acc =
    let items =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) (Atomic.get reg.tbl) []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.fold_left (fun acc (k, v) -> f acc k v) acc items

  let counters reg =
    fold reg (fun acc k v -> match v with C c -> (k, c) :: acc | _ -> acc) []
    |> List.rev

  let histos reg =
    fold reg (fun acc k v -> match v with H h -> (k, h) :: acc | _ -> acc) []
    |> List.rev

  let gauges reg =
    fold reg (fun acc k v -> match v with G g -> (k, g) :: acc | _ -> acc) []
    |> List.rev

  let model_cells reg =
    fold reg (fun acc _ v -> match v with M m -> m :: acc | _ -> acc) []
    |> List.rev

  let find_counter reg name =
    match Hashtbl.find_opt (Atomic.get reg.tbl) name with
    | Some (C c) -> Some c
    | _ -> None

  let clear reg =
    Mutex.lock reg.lock;
    Atomic.set reg.tbl (Hashtbl.create 16);
    Mutex.unlock reg.lock

  let reset_values reg =
    fold reg
      (fun () _ v ->
        match v with
        | C c -> Counter.reset c
        | H h -> Histo.reset h
        | G g -> Gauge.reset g
        | M m ->
          Atomic.set m.m_n 0;
          Atomic.set m.m_abs_rel 0.0)
      ()
end

(* --- global registry + named convenience sinks -------------------------- *)

let global = Registry.create ()

let counter name = Registry.counter global name
let histo name = Registry.histo global name
let gauge name = Registry.gauge global name

let add name n = if enabled () then Counter.add (counter name) n
let incr name = add name 1
let observe name v = if enabled () then Histo.observe (histo name) v
let set_gauge name v = if enabled () then Gauge.set (gauge name) v

let counter_value name = Option.map Counter.value (Registry.find_counter global name)

let gauge_value name =
  match Hashtbl.find_opt (Atomic.get global.Registry.tbl) name with
  | Some (Registry.G g) ->
    let v = Gauge.value g in
    if Float.is_nan v then None else Some v
  | _ -> None

(* --- model-quality channel ---------------------------------------------- *)

module Model = struct
  let key ~op ~bucket = "model/" ^ op ^ "/" ^ bucket

  let cell ~op ~bucket =
    match
      Registry.find_or global (key ~op ~bucket) (fun () ->
          Registry.M
            { cell_op = op; cell_bucket = bucket; m_n = Atomic.make 0;
              m_abs_rel = Atomic.make 0.0 })
    with
    | Registry.M m -> m
    | _ -> invalid_arg "Telemetry.Model: name collision"

  let record ~op ~bucket ~predicted ~measured =
    if enabled () && Float.is_finite predicted && Float.is_finite measured
       && measured > 0.0
    then begin
      let m = cell ~op ~bucket in
      ignore (Atomic.fetch_and_add m.m_n 1);
      atomic_add_float m.m_abs_rel (Float.abs (predicted -. measured) /. measured)
    end

  (* Mean absolute relative residual across every bucket of [op];
     [None] until something was recorded. *)
  let drift ~op =
    let n, s =
      List.fold_left
        (fun (n, s) m ->
          if m.cell_op = op then
            (n + Atomic.get m.m_n, s +. Atomic.get m.m_abs_rel)
          else (n, s))
        (0, 0.0)
        (Registry.model_cells global)
    in
    if n = 0 then None else Some (s /. float_of_int n)

  let ops () =
    List.sort_uniq compare
      (List.map (fun m -> m.cell_op) (Registry.model_cells global))
end

(* --- flight recorder ---------------------------------------------------- *)

module Flight = struct
  type event = {
    ts : float; (* unix time *)
    req : int; (* 0 = no request in scope *)
    kind : string;
    name : string;
    detail : string;
  }

  let ring_size = 64
  let n_rings = 8

  type ring = { slots : event option array; pos : int Atomic.t }

  let rings =
    Array.init n_rings (fun _ ->
        { slots = Array.make ring_size None; pos = Atomic.make 0 })

  let record ?(req = 0) ~kind ~name detail =
    if enabled () then begin
      let r = rings.((Domain.self () :> int) land (n_rings - 1)) in
      let i = Atomic.fetch_and_add r.pos 1 in
      (* A racing store to the same slot writes one pointer — the slot
         always holds a whole event, just possibly not the very latest. *)
      r.slots.(i land (ring_size - 1)) <-
        Some { ts = Unix.gettimeofday (); req; kind; name; detail }
    end

  let events () =
    let acc = ref [] in
    Array.iter
      (fun r ->
        Array.iter
          (function None -> () | Some e -> acc := e :: !acc)
          r.slots)
      rings;
    List.sort (fun a b -> compare a.ts b.ts) !acc

  let clear () =
    Array.iter
      (fun r ->
        Array.fill r.slots 0 ring_size None;
        Atomic.set r.pos 0)
      rings

  let dump ?(limit = 12) () =
    match events () with
    | [] -> ""
    | evs ->
      let evs =
        let n = List.length evs in
        if n <= limit then evs
        else List.filteri (fun i _ -> i >= n - limit) evs
      in
      let newest = List.fold_left (fun acc e -> Float.max acc e.ts) 0.0 evs in
      let line e =
        Printf.sprintf "  %+.3fs%s %s %s%s" (e.ts -. newest)
          (if e.req > 0 then Printf.sprintf " [req %d]" e.req else "")
          e.kind e.name
          (if e.detail = "" then "" else ": " ^ e.detail)
      in
      "flight recorder (most recent last):\n"
      ^ String.concat "\n" (List.map line evs)
end

(* --- snapshots ---------------------------------------------------------- *)

let seq = Atomic.make 0

let hist_json name (s : Histo.snapshot) =
  ( name,
    Json.Obj
      [ ("count", Json.Int s.count);
        ("sum", Json.Float s.sum);
        ("min", Json.Float s.min_v);
        ("max", Json.Float s.max_v);
        ("mean", Json.Float (Histo.mean s));
        ("p50", Json.Float (Histo.quantile s 0.50));
        ("p90", Json.Float (Histo.quantile s 0.90));
        ("p95", Json.Float (Histo.quantile s 0.95));
        ("p99", Json.Float (Histo.quantile s 0.99)) ] )

let snapshot_json () =
  let counters =
    List.map
      (fun (name, c) -> (name, Json.Int (Counter.value c)))
      (Registry.counters global)
  in
  let gauges =
    List.filter_map
      (fun (name, g) ->
        let v = Gauge.value g in
        if Float.is_nan v then None else Some (name, Json.Float v))
      (Registry.gauges global)
  in
  let drift_gauges =
    List.filter_map
      (fun op ->
        Option.map
          (fun d -> ("model.drift." ^ op, Json.Float d))
          (Model.drift ~op))
      (Model.ops ())
  in
  let hists =
    List.filter_map
      (fun (name, h) ->
        let s = Histo.snapshot h in
        if s.count = 0 then None else Some (hist_json name s))
      (Registry.histos global)
  in
  let model =
    List.map
      (fun op ->
        let buckets =
          List.filter_map
            (fun m ->
              if m.cell_op <> op then None
              else begin
                let n = Atomic.get m.m_n in
                if n = 0 then None
                else
                  Some
                    ( m.cell_bucket,
                      Json.Obj
                        [ ("n", Json.Int n);
                          ( "mae_rel",
                            Json.Float
                              (Atomic.get m.m_abs_rel /. float_of_int n) ) ] )
              end)
            (Registry.model_cells global)
        in
        ( op,
          Json.Obj
            [ ( "drift",
                match Model.drift ~op with
                | Some d -> Json.Float d
                | None -> Json.Null );
              ("buckets", Json.Obj buckets) ] ))
      (Model.ops ())
  in
  Json.Obj
    [ ("schema", Json.String "isaac-telemetry");
      ("version", Json.Int 1);
      ("seq", Json.Int (Atomic.get seq));
      ("unix_time", Json.Float (Unix.gettimeofday ()));
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj (gauges @ drift_gauges));
      ("hists", Json.Obj hists);
      ("model", Json.Obj model) ]

(* --- Prometheus-style text exposition ----------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, c) ->
      let n = "isaac_" ^ sanitize name ^ "_total" in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Counter.value c)))
    (Registry.counters global);
  let emit_gauge name v =
    let n = "isaac_" ^ sanitize name in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
    Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float v))
  in
  List.iter
    (fun (name, g) ->
      let v = Gauge.value g in
      if not (Float.is_nan v) then emit_gauge name v)
    (Registry.gauges global);
  List.iter
    (fun op ->
      match Model.drift ~op with
      | Some d -> emit_gauge ("model_drift_" ^ op) d
      | None -> ())
    (Model.ops ());
  List.iter
    (fun (name, h) ->
      let s = Histo.snapshot h in
      if s.count > 0 then begin
        let n = "isaac_" ^ sanitize name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun q ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n q
                 (prom_float (Histo.quantile s q))))
          [ 0.5; 0.9; 0.95; 0.99 ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" n (prom_float s.sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.count)
      end)
    (Registry.histos global);
  Buffer.contents buf

(* --- exporter ----------------------------------------------------------- *)

type exporter = {
  path : string;
  interval : float; (* <= 0: export only on stop / export_now *)
  stop_requested : bool Atomic.t;
  mutable worker : unit Domain.t option;
  ex_lock : Mutex.t; (* serializes file writes across callers *)
}

let state : exporter option Atomic.t = Atomic.make None
let master = Mutex.create ()
let exit_hook_installed = ref false

let write_exports ex =
  Mutex.lock ex.ex_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ex.ex_lock)
    (fun () ->
      ignore (Atomic.fetch_and_add seq 1);
      let line = Json.to_string (snapshot_json ()) in
      let oc =
        open_out_gen [ Open_append; Open_creat ] 0o644 ex.path
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc line;
          output_char oc '\n');
      (* Prometheus text goes through write-temp-then-rename so scrapers
         never see a torn file. *)
      let prom_path = ex.path ^ ".prom" in
      let tmp = prom_path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (prometheus ()));
      Sys.rename tmp prom_path)

let export_now () =
  match Atomic.get state with
  | None -> ()
  | Some ex -> (
    try write_exports ex
    with e ->
      Printf.eprintf "isaac telemetry: export to %s failed: %s\n%!" ex.path
        (Printexc.to_string e))

let rec sleep_until ex t_end =
  if Atomic.get ex.stop_requested then false
  else begin
    let now = Unix.gettimeofday () in
    if now >= t_end then true
    else begin
      Unix.sleepf (Float.min 0.05 (t_end -. now));
      sleep_until ex t_end
    end
  end

let rec export_loop ex =
  if sleep_until ex (Unix.gettimeofday () +. ex.interval) then begin
    export_now ();
    export_loop ex
  end

let stop () =
  Mutex.lock master;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock master)
    (fun () ->
      match Atomic.get state with
      | None -> ()
      | Some ex ->
        Atomic.set ex.stop_requested true;
        (match ex.worker with
         | Some d ->
           Domain.join d;
           ex.worker <- None
         | None -> ());
        export_now ();
        Atomic.set enabled_flag false;
        Atomic.set state None)

let start ?(interval_s = 0.0) ~path () =
  Mutex.lock master;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock master)
    (fun () ->
      if Atomic.get state = None then begin
        let ex =
          { path; interval = interval_s; stop_requested = Atomic.make false;
            worker = None; ex_lock = Mutex.create () }
        in
        Atomic.set state (Some ex);
        Atomic.set enabled_flag true;
        if interval_s > 0.0 then
          ex.worker <- Some (Domain.spawn (fun () -> export_loop ex));
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit stop
        end
      end)

let reset () =
  Registry.reset_values global;
  Flight.clear ()

(* Honour ISAAC_TELEMETRY=path[,interval_seconds] as soon as any
   instrumented code touches this module, mirroring Trace/ISAAC_TRACE. *)
let () =
  match Util.Env_config.string "ISAAC_TELEMETRY" "" with
  | "" -> ()
  | spec ->
    let path, interval =
      match String.rindex_opt spec ',' with
      | Some i -> (
        match
          float_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
        with
        | Some f -> (String.sub spec 0 i, f)
        | None -> (spec, 0.0))
      | None -> (spec, 0.0)
    in
    if path <> "" then start ~interval_s:interval ~path ()
