(* Reversed stack of open span names, one per domain. *)
let stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let path_of rev_names = String.concat "/" (List.rev rev_names)

let current_path () = path_of (Domain.DLS.get stack)

(* Request-scoped ids: a process-wide counter hands out ids, and each
   domain carries the id of the request it is currently serving in DLS
   (0 = none). Parallel stages copy the id into worker domains with
   [set_request], so every span/flight event of one plan request carries
   the same id across domains. *)
let req_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let next_req = Atomic.make 1

let current_request () =
  match Domain.DLS.get req_key with 0 -> None | id -> Some id

let set_request id = Domain.DLS.set req_key (Option.value id ~default:0)

let with_request ?id f =
  if not (Trace.enabled () || Telemetry.enabled ()) then f ()
  else begin
    let outer = Domain.DLS.get req_key in
    let id =
      match id with Some i -> i | None -> Atomic.fetch_and_add next_req 1
    in
    Domain.DLS.set req_key id;
    Fun.protect ~finally:(fun () -> Domain.DLS.set req_key outer) f
  end

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Float.max 0.0 (Unix.gettimeofday () -. t0))

let with_ ?meta name f =
  let traced = Trace.enabled () in
  if not (traced || Telemetry.enabled ()) then f ()
  else begin
    let outer = Domain.DLS.get stack in
    let rev_names = name :: outer in
    Domain.DLS.set stack rev_names;
    let start = Trace.now () in
    let m0 = Trace.monotonic () in
    let close ~ok =
      (* Durations come off the raw monotonized clock so telemetry-only
         runs (no trace sink, [Trace.now] pinned at 0) still time
         correctly. *)
      let dur = Float.max 0.0 (Trace.monotonic () -. m0) in
      Domain.DLS.set stack outer;
      let req = Domain.DLS.get req_key in
      if traced then begin
        let fields =
          [ ("name", Json.String name);
            ("path", Json.String (path_of rev_names));
            ("start", Json.Float start);
            ("dur", Json.Float dur) ]
        in
        let fields =
          if req = 0 then fields else fields @ [ ("req", Json.Int req) ]
        in
        let fields = if ok then fields else fields @ [ ("error", Json.Bool true) ] in
        let fields =
          match meta with
          | None -> fields
          | Some m -> fields @ [ ("meta", Json.Obj (m ())) ]
        in
        Trace.emit "span" fields
      end;
      if Telemetry.enabled () then
        Telemetry.Flight.record ~req
          ~kind:(if ok then "span" else "span.error")
          ~name:(path_of rev_names)
          (Printf.sprintf "%.3f ms" (dur *. 1e3))
    in
    match f () with
    | v -> close ~ok:true; v
    | exception e -> close ~ok:false; raise e
  end
