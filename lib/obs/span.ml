(* Reversed stack of open span names, one per domain. *)
let stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let path_of rev_names = String.concat "/" (List.rev rev_names)

let current_path () = path_of (Domain.DLS.get stack)

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Float.max 0.0 (Unix.gettimeofday () -. t0))

let with_ ?meta name f =
  if not (Trace.enabled ()) then f ()
  else begin
    let outer = Domain.DLS.get stack in
    let rev_names = name :: outer in
    Domain.DLS.set stack rev_names;
    let start = Trace.now () in
    let close ~ok =
      let dur = Trace.now () -. start in
      Domain.DLS.set stack outer;
      let fields =
        [ ("name", Json.String name);
          ("path", Json.String (path_of rev_names));
          ("start", Json.Float start);
          ("dur", Json.Float dur) ]
      in
      let fields = if ok then fields else fields @ [ ("error", Json.Bool true) ] in
      let fields =
        match meta with
        | None -> fields
        | Some m -> fields @ [ ("meta", Json.Obj (m ())) ]
      in
      Trace.emit "span" fields
    in
    match f () with
    | v -> close ~ok:true; v
    | exception e -> close ~ok:false; raise e
  end
