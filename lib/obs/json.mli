(** Minimal JSON values for the trace sink and its reader.

    The repository has no JSON dependency, and the trace schema
    (DESIGN.md, "Observability") only needs flat objects of scalars plus
    one nesting level for span metadata — but this module implements the
    full value grammar anyway so traces survive being post-processed by
    external tools and read back verbatim.

    Serialization is canonical enough for round-tripping: object key
    order is preserved, floats print with up to 17 significant digits
    (lossless for IEEE doubles), and non-finite floats serialize as the
    strings ["nan"], ["inf"], ["-inf"] (JSON has no literal for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order preserved *)

val to_string : t -> string
(** One-line rendering (no newlines — required by the JSONL framing). *)

val to_buffer : Buffer.t -> t -> unit

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val of_string : string -> t
(** Parse one JSON value; trailing garbage is a {!Parse_error}. Numbers
    without [.], [e] or [E] parse as {!Int}, everything else as
    {!Float}. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks a field up; [None] for missing keys
    {e and} for non-object values. *)

val to_float : t -> float option
(** Numeric coercion: accepts {!Int}, {!Float}, and the non-finite
    string encodings produced by {!to_string}. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
