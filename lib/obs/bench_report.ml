let schema_version = 1
let schema_name = "isaac-bench-report"

type direction = Higher_better | Lower_better | Neutral
type kind = Deterministic | Timing

type metric = {
  m_name : string;
  m_experiment : string;
  value : float;
  unit_ : string;
  direction : direction;
  kind : kind;
  ci : (float * float) option;
  n : int option;
}

type check = { claim : string; paper : string; ours : string; pass : bool }

type experiment = {
  key : string;
  wall_seconds : float;
  checks : check list;
}

type attribution = {
  term : string;
  counter : string;
  a_n : int;
  pearson_r : float;
  scale : float;
  drift : float;
}

type env = {
  rev : string;
  seed : int;
  repro_scale : float;
  device : string;
  argv : string list;
  knobs : (string * string) list;
  ocaml_version : string;
  hostname : string;
}

type t = {
  version : int;
  env : env;
  experiments : experiment list;
  metrics : metric list;
  attribution : attribution list;
}

let filename ~rev = Printf.sprintf "BENCH_%s.json" rev

let find_metric t name = List.find_opt (fun m -> m.m_name = name) t.metrics
let find_experiment t key = List.find_opt (fun e -> e.key = key) t.experiments

(* --- serialization ----------------------------------------------------- *)

let direction_str = function
  | Higher_better -> "higher"
  | Lower_better -> "lower"
  | Neutral -> "neutral"

let kind_str = function Deterministic -> "deterministic" | Timing -> "timing"

let metric_json m =
  Json.Obj
    ([ ("name", Json.String m.m_name);
       ("experiment", Json.String m.m_experiment);
       ("value", Json.Float m.value);
       ("unit", Json.String m.unit_);
       ("direction", Json.String (direction_str m.direction));
       ("kind", Json.String (kind_str m.kind)) ]
    @ (match m.ci with
       | Some (lo, hi) ->
         [ ("ci_lo", Json.Float lo); ("ci_hi", Json.Float hi) ]
       | None -> [])
    @ match m.n with Some n -> [ ("n", Json.Int n) ] | None -> [])

let check_json c =
  Json.Obj
    [ ("claim", Json.String c.claim);
      ("paper", Json.String c.paper);
      ("ours", Json.String c.ours);
      ("pass", Json.Bool c.pass) ]

let experiment_json e =
  Json.Obj
    [ ("key", Json.String e.key);
      ("wall_seconds", Json.Float e.wall_seconds);
      ("checks_passed",
       Json.Int (List.length (List.filter (fun c -> c.pass) e.checks)));
      ("checks_total", Json.Int (List.length e.checks));
      ("checks", Json.List (List.map check_json e.checks)) ]

let attribution_json a =
  Json.Obj
    [ ("term", Json.String a.term);
      ("counter", Json.String a.counter);
      ("n", Json.Int a.a_n);
      ("pearson_r", Json.Float a.pearson_r);
      ("scale", Json.Float a.scale);
      ("drift", Json.Float a.drift) ]

let env_json e =
  Json.Obj
    [ ("rev", Json.String e.rev);
      ("seed", Json.Int e.seed);
      ("repro_scale", Json.Float e.repro_scale);
      ("device", Json.String e.device);
      ("argv", Json.List (List.map (fun s -> Json.String s) e.argv));
      ("knobs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.knobs));
      ("ocaml_version", Json.String e.ocaml_version);
      ("hostname", Json.String e.hostname) ]

let to_json t =
  Json.Obj
    [ ("schema", Json.String schema_name);
      ("version", Json.Int t.version);
      ("env", env_json t.env);
      ("experiments", Json.List (List.map experiment_json t.experiments));
      ("metrics", Json.List (List.map metric_json t.metrics));
      ("attribution", Json.List (List.map attribution_json t.attribution)) ]

(* --- deserialization ---------------------------------------------------- *)

(* A tiny checked-decoder monad over [result]: every accessor carries the
   field path so validation errors name the offending field. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field path name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" path name)

let opt_field name j = Json.member name j

let str path name j =
  let* v = field path name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s.%s: expected string" path name)

let num path name j =
  let* v = field path name j in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s.%s: expected number" path name)

let integer path name j =
  let* v = field path name j in
  match Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s.%s: expected integer" path name)

let boolean path name j =
  let* v = field path name j in
  match v with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s.%s: expected bool" path name)

let elements path name j =
  let* v = field path name j in
  match v with
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "%s.%s: expected array" path name)

let map_result path f l =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | x :: tl -> (
      match f (Printf.sprintf "%s[%d]" path i) x with
      | Ok v -> go (i + 1) (v :: acc) tl
      | Error _ as e -> e)
  in
  go 0 [] l

let direction_of_string path = function
  | "higher" -> Ok Higher_better
  | "lower" -> Ok Lower_better
  | "neutral" -> Ok Neutral
  | s -> Error (Printf.sprintf "%s: unknown direction %S" path s)

let kind_of_string path = function
  | "deterministic" -> Ok Deterministic
  | "timing" -> Ok Timing
  | s -> Error (Printf.sprintf "%s: unknown kind %S" path s)

let metric_of_json path j =
  let* m_name = str path "name" j in
  let* m_experiment = str path "experiment" j in
  let* value = num path "value" j in
  let* unit_ = str path "unit" j in
  let* dir_s = str path "direction" j in
  let* direction = direction_of_string path dir_s in
  let* kind_s = str path "kind" j in
  let* kind = kind_of_string path kind_s in
  let ci =
    match
      (Option.bind (opt_field "ci_lo" j) Json.to_float,
       Option.bind (opt_field "ci_hi" j) Json.to_float)
    with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None
  in
  let n = Option.bind (opt_field "n" j) Json.to_int in
  Ok { m_name; m_experiment; value; unit_; direction; kind; ci; n }

let check_of_json path j =
  let* claim = str path "claim" j in
  let* paper = str path "paper" j in
  let* ours = str path "ours" j in
  let* pass = boolean path "pass" j in
  Ok { claim; paper; ours; pass }

let experiment_of_json path j =
  let* key = str path "key" j in
  let* wall_seconds = num path "wall_seconds" j in
  let* checks_j = elements path "checks" j in
  let* checks = map_result (path ^ ".checks") check_of_json checks_j in
  Ok { key; wall_seconds; checks }

let attribution_of_json path j =
  let* term = str path "term" j in
  let* counter = str path "counter" j in
  let* a_n = integer path "n" j in
  let* pearson_r = num path "pearson_r" j in
  let* scale = num path "scale" j in
  let* drift = num path "drift" j in
  Ok { term; counter; a_n; pearson_r; scale; drift }

let env_of_json path j =
  let* rev = str path "rev" j in
  let* seed = integer path "seed" j in
  let* repro_scale = num path "repro_scale" j in
  let* device = str path "device" j in
  let* argv_j = elements path "argv" j in
  let* argv =
    map_result (path ^ ".argv")
      (fun p v ->
        match Json.to_str v with
        | Some s -> Ok s
        | None -> Error (p ^ ": expected string"))
      argv_j
  in
  let* knobs_j = field path "knobs" j in
  let* knobs =
    match knobs_j with
    | Json.Obj fields ->
      map_result (path ^ ".knobs")
        (fun p (k, v) ->
          match Json.to_str v with
          | Some s -> Ok (k, s)
          | None -> Error (p ^ ": expected string value"))
        fields
    | _ -> Error (path ^ ".knobs: expected object")
  in
  let* ocaml_version = str path "ocaml_version" j in
  let* hostname = str path "hostname" j in
  Ok { rev; seed; repro_scale; device; argv; knobs; ocaml_version; hostname }

let of_json j =
  let path = "report" in
  let* schema = str path "schema" j in
  if schema <> schema_name then
    Error (Printf.sprintf "report.schema: expected %S, got %S" schema_name schema)
  else
    let* version = integer path "version" j in
    if version > schema_version then
      Error
        (Printf.sprintf
           "report.version: %d is newer than this binary's schema (%d)" version
           schema_version)
    else
      let* env_j = field path "env" j in
      let* env = env_of_json (path ^ ".env") env_j in
      let* experiments_j = elements path "experiments" j in
      let* experiments =
        map_result (path ^ ".experiments") experiment_of_json experiments_j
      in
      let* metrics_j = elements path "metrics" j in
      let* metrics = map_result (path ^ ".metrics") metric_of_json metrics_j in
      let* attribution_j = elements path "attribution" j in
      let* attribution =
        map_result (path ^ ".attribution") attribution_of_json attribution_j
      in
      Ok { version; env; experiments; metrics; attribution }

(* --- I/O ---------------------------------------------------------------- *)

let artifact_kind = "isaac-bench-report"

let write ~path t =
  Util.Artifact.write ~path ~kind:artifact_kind ~version:schema_version
    (Json.to_string (to_json t) ^ "\n")

let parse path contents =
  match Json.of_string contents with
  | exception Json.Parse_error msg -> Error (path ^ ": " ^ msg)
  | j -> of_json j

let load path =
  match
    Util.Artifact.read ~path ~kind:artifact_kind ~max_version:schema_version
  with
  | Ok (_, payload) -> parse path payload
  | Error (Util.Artifact.Bad_header _) -> (
    (* Legacy headerless report (e.g. a committed baseline predating the
       artifact store): the whole file is the JSON document. *)
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | contents -> parse path contents)
  | Error e -> Error (Util.Artifact.error_to_string ~path e)
