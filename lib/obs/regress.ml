module B = Bench_report

type verdict = Improved | Unchanged | Regressed | Missing | New

let verdict_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "REGRESSED"
  | Missing -> "missing"
  | New -> "new"

type comparison = {
  c_name : string;
  base : float;
  cand : float;
  rel : float;
  verdict : verdict;
  significant : bool;
  note : string;
}

type config = {
  det_tolerance : float;
  timing_threshold : float;
  wall_threshold : float;
}

let default_config =
  { det_tolerance = 0.01; timing_threshold = 0.25; wall_threshold = 0.5 }

let rel_change ~base ~cand =
  if base = cand then 0.0
  else (cand -. base) /. Float.max 1e-12 (Float.abs base)

let ci_disjoint a b =
  match (a, b) with
  | Some (alo, ahi), Some (blo, bhi) -> ahi < blo || bhi < alo
  | _ -> false

(* Compare one metric present in both reports. *)
let compare_metric cfg (bm : B.metric) (cm : B.metric) =
  let rel = rel_change ~base:bm.value ~cand:cm.value in
  let worse =
    match cm.direction with
    | B.Higher_better -> rel < 0.0
    | B.Lower_better -> rel > 0.0
    | B.Neutral -> false
  in
  let verdict, significant, note =
    if cm.direction = B.Neutral then (Unchanged, false, "informational")
    else if Float.abs rel <= cfg.det_tolerance then
      (Unchanged, false, Printf.sprintf "within %.0f%%" (100.0 *. cfg.det_tolerance))
    else if not worse then (Improved, false, "")
    else
      match cm.kind with
      | B.Deterministic ->
        ( Regressed, true,
          Printf.sprintf "deterministic drift > %.0f%%"
            (100.0 *. cfg.det_tolerance) )
      | B.Timing ->
        if bm.ci <> None && cm.ci <> None then
          if ci_disjoint bm.ci cm.ci && Float.abs rel > cfg.timing_threshold
          then (Regressed, true, "CIs disjoint and past threshold")
          else if ci_disjoint bm.ci cm.ci then
            (Regressed, false, "CIs disjoint but within threshold")
          else (Unchanged, false, "CIs overlap")
        else if Float.abs rel > cfg.wall_threshold then
          (Regressed, true, "no CI; past wall threshold")
        else (Regressed, false, "no CI; within wall threshold")
  in
  { c_name = cm.m_name; base = bm.value; cand = cm.value; rel; verdict;
    significant; note }

(* Single-shot experiment wall times become CI-less timing comparisons. *)
let wall_metric (e : B.experiment) =
  { B.m_name = "wall." ^ e.key;
    m_experiment = e.key;
    value = e.wall_seconds;
    unit_ = "s";
    direction = B.Lower_better;
    kind = B.Timing;
    ci = None;
    n = None }

let effective_metrics (r : B.t) =
  r.B.metrics @ List.map wall_metric r.B.experiments

let check_comparisons (base : B.t) (cand : B.t) =
  List.concat_map
    (fun (be : B.experiment) ->
      match B.find_experiment cand be.key with
      | None -> []
      | Some ce ->
        List.filter_map
          (fun (bc : B.check) ->
            match
              List.find_opt (fun (cc : B.check) -> cc.B.claim = bc.B.claim)
                ce.checks
            with
            | Some cc when bc.pass && not cc.pass ->
              Some
                { c_name = Printf.sprintf "check:%s/%s" be.key bc.claim;
                  base = 1.0; cand = 0.0; rel = -1.0; verdict = Regressed;
                  significant = true;
                  note = Printf.sprintf "was %S, now %S" bc.ours cc.ours }
            | Some cc when (not bc.pass) && cc.pass ->
              Some
                { c_name = Printf.sprintf "check:%s/%s" be.key bc.claim;
                  base = 0.0; cand = 1.0; rel = 1.0; verdict = Improved;
                  significant = false; note = "check now passes" }
            | _ -> None)
          be.checks)
    base.B.experiments

let compare_reports ?(config = default_config) base cand =
  let base_metrics = effective_metrics base in
  let cand_metrics = effective_metrics cand in
  let matched =
    List.map
      (fun (cm : B.metric) ->
        match
          List.find_opt (fun (bm : B.metric) -> bm.B.m_name = cm.B.m_name)
            base_metrics
        with
        | Some bm -> compare_metric config bm cm
        | None ->
          { c_name = cm.m_name; base = Float.nan; cand = cm.value; rel = 0.0;
            verdict = New; significant = false; note = "not in baseline" })
      cand_metrics
  in
  let missing =
    List.filter_map
      (fun (bm : B.metric) ->
        if
          List.exists (fun (cm : B.metric) -> cm.B.m_name = bm.B.m_name)
            cand_metrics
        then None
        else
          Some
            { c_name = bm.m_name; base = bm.value; cand = Float.nan;
              rel = 0.0; verdict = Missing; significant = false;
              note = "metric disappeared" })
      base_metrics
  in
  matched @ missing @ check_comparisons base cand

let regressions l =
  List.filter (fun c -> c.verdict = Regressed && c.significant) l

let worsened l =
  List.filter (fun c -> c.verdict = Regressed || c.verdict = Missing) l
