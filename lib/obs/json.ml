type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- serialization ----------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f then Buffer.add_string buf "\"nan\""
    else if f = Float.infinity then Buffer.add_string buf "\"inf\""
    else if f = Float.neg_infinity then Buffer.add_string buf "\"-inf\""
    else Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "at %d: %s" cur.pos s))) fmt

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && (match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | Some d -> fail cur "expected %c, got %c" c d
  | None -> fail cur "expected %c, got end of input" c

let keyword cur kw v =
  let n = String.length kw in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = kw then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur "bad literal (expected %s)" kw

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur; Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char buf '"'; advance cur
       | Some '\\' -> Buffer.add_char buf '\\'; advance cur
       | Some '/' -> Buffer.add_char buf '/'; advance cur
       | Some 'n' -> Buffer.add_char buf '\n'; advance cur
       | Some 'r' -> Buffer.add_char buf '\r'; advance cur
       | Some 't' -> Buffer.add_char buf '\t'; advance cur
       | Some 'b' -> Buffer.add_char buf '\b'; advance cur
       | Some 'f' -> Buffer.add_char buf '\012'; advance cur
       | Some 'u' ->
         advance cur;
         if cur.pos + 4 > String.length cur.src then fail cur "bad \\u escape";
         let hex = String.sub cur.src cur.pos 4 in
         let code =
           match int_of_string_opt ("0x" ^ hex) with
           | Some c -> c
           | None -> fail cur "bad \\u escape %s" hex
         in
         cur.pos <- cur.pos + 4;
         (* Traces only ever escape control characters; encode the BMP
            code point as UTF-8 for generality. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail cur "bad escape");
      go ()
    | Some c -> Buffer.add_char buf c; advance cur; go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') -> advance cur; go ()
    | Some ('.' | 'e' | 'E') -> is_float := true; advance cur; go ()
    | _ -> ()
  in
  go ();
  let text = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number %s" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail cur "bad number %s" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then (advance cur; Obj [])
    else begin
      let rec fields acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; fields ((k, v) :: acc)
        | Some '}' -> advance cur; Obj (List.rev ((k, v) :: acc))
        | _ -> fail cur "expected , or } in object"
      in
      fields []
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then (advance cur; List [])
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; items (v :: acc)
        | Some ']' -> advance cur; List (List.rev (v :: acc))
        | _ -> fail cur "expected , or ] in array"
      in
      items []
    end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> keyword cur "true" (Bool true)
  | Some 'f' -> keyword cur "false" (Bool false)
  | Some 'n' -> keyword cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur "unexpected character %c" c

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String "nan" -> Some Float.nan
  | String "inf" -> Some Float.infinity
  | String "-inf" -> Some Float.neg_infinity
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function String s -> Some s | _ -> None
