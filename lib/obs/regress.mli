(** Statistical comparison of two {!Bench_report}s — the logic behind the
    [isaac_bench_diff] CI gate.

    Metrics are matched by name and judged per {!Bench_report.kind}:

    - [Deterministic] metrics are bit-reproducible for a fixed seed and
      scale, so any worse-direction drift beyond [det_tolerance]
      (default 1%) is a significant regression.
    - [Timing] metrics carry machine noise. When both sides have
      bootstrap confidence intervals, a regression is significant only
      if the intervals are disjoint {e and} the relative change exceeds
      [timing_threshold] (default 25%) — the CI-overlap rule of Chen &
      Revels' robust-benchmarking methodology. Without intervals (e.g.
      single-shot experiment wall times, synthesized from the report's
      experiments section as [wall.<key>] comparisons), only the
      generous [wall_threshold] (default 50%) applies.

    Shape checks regress when a check passing in the baseline fails in
    the candidate (always significant — the reproduction lost a claim).
    Metrics present in only one report yield [Missing] / [New] verdicts,
    which never count as significant; strict callers can still refuse
    them. *)

type verdict = Improved | Unchanged | Regressed | Missing | New

val verdict_name : verdict -> string

type comparison = {
  c_name : string;           (** metric name, [wall.<key>] or [check:…] *)
  base : float;
  cand : float;
  rel : float;               (** (cand - base) / |base| *)
  verdict : verdict;
  significant : bool;        (** regressed beyond the statistical gate *)
  note : string;             (** human-readable rationale *)
}

type config = {
  det_tolerance : float;
  timing_threshold : float;
  wall_threshold : float;
}

val default_config : config
(** [{ det_tolerance = 0.01; timing_threshold = 0.25;
      wall_threshold = 0.5 }] *)

val compare_reports :
  ?config:config -> Bench_report.t -> Bench_report.t -> comparison list
(** [compare_reports base cand] — all comparisons, metric order
    following the candidate report (then baseline-only leftovers). *)

val regressions : comparison list -> comparison list
(** The significant regressions only. *)

val worsened : comparison list -> comparison list
(** Every [Regressed] verdict, significant or not (strict-mode fodder),
    plus [Missing] metrics. *)
