(** Named counters, histograms and time-series points (trace-scoped).

    A thin adapter over {!Telemetry}'s sharded lock-free primitives:
    counters accumulate in per-domain [Atomic] shards merged on read,
    histograms in log-bucketed mergeable shards, so OCaml 5 worker
    domains report concurrently without any global mutex. Summaries are
    emitted as [counter] / [hist] events when the trace sink closes (one
    event per name, however many domains contributed). Series points
    ([point] events) are written through immediately — they are
    low-volume by construction (one per training epoch, not one per
    sample).

    Every entry point is a no-op returning immediately when the sink is
    disabled; nothing is accumulated, so an untraced process pays one
    boolean load per call. This registry is private to the trace window
    — it resets on {!flush} — and is distinct from {!Telemetry}'s
    cumulative global registry. *)

val incr : string -> unit
(** [incr name] adds 1 to counter [name], creating it at 0. *)

val add : string -> int -> unit
(** [add name n] adds [n] (may be negative) to counter [name]. *)

val observe : string -> float -> unit
(** [observe name v] records one histogram observation. The summary
    event carries count/sum/min/max/mean and p50/p90/p99 quantiles from
    the log-bucketed histogram (≤ ~2% relative error for positive
    in-range values; count/sum/min/max are exact). *)

val point : ?unit_:string -> string -> x:float -> y:float -> unit
(** [point series ~x ~y] emits one [point] event immediately (e.g.
    per-epoch training loss, [x] = epoch). [unit_] annotates the y
    axis (["mse"], ["s"], …). *)

val counter_value : string -> int option
(** Current value of a counter, [None] if never written (or disabled
    throughout). Exposed for tests. *)

val flush : unit -> unit
(** Emit [counter] and [hist] summary events for everything accumulated
    and clear the tables. Registered automatically with
    {!Trace.at_stop}; callable earlier to checkpoint a long run. *)

val reset : unit -> unit
(** Drop all accumulated state without emitting. For tests. *)
