(** Named counters, histograms and time-series points.

    Counters and histograms accumulate in-process (guarded by one global
    mutex, so OCaml 5 worker domains can report concurrently) and are
    emitted as [counter] / [hist] summary events when the trace sink
    closes. Series points ([point] events) are written through
    immediately — they are low-volume by construction (one per training
    epoch, not one per sample).

    Every entry point is a no-op returning immediately when the sink is
    disabled; nothing is accumulated, so an untraced process pays one
    boolean load per call. *)

val incr : string -> unit
(** [incr name] adds 1 to counter [name], creating it at 0. *)

val add : string -> int -> unit
(** [add name n] adds [n] (may be negative) to counter [name]. *)

val observe : string -> float -> unit
(** [observe name v] records one histogram observation. The summary
    event carries count/sum/min/max/mean and p50/p90/p99 quantiles
    estimated from a deterministic decimating reservoir (exact below
    4096 observations, every 2^k-th sample beyond). *)

val point : ?unit_:string -> string -> x:float -> y:float -> unit
(** [point series ~x ~y] emits one [point] event immediately (e.g.
    per-epoch training loss, [x] = epoch). [unit_] annotates the y
    axis (["mse"], ["s"], …). *)

val counter_value : string -> int option
(** Current value of a counter, [None] if never written (or disabled
    throughout). Exposed for tests. *)

val flush : unit -> unit
(** Emit [counter] and [hist] summary events for everything accumulated
    and clear the tables. Registered automatically with
    {!Trace.at_stop}; callable earlier to checkpoint a long run. *)

val reset : unit -> unit
(** Drop all accumulated state without emitting. For tests. *)
