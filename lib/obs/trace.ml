type sink = {
  oc : out_channel;
  t0 : float;  (* monotonic origin of the trace *)
  lock : Mutex.t;  (* serializes writes; guards [closed] *)
  mutable closed : bool;
}

(* Cross-domain lifecycle: [on] and [sink] are atomics so emitters on any
   domain read a coherent snapshot without locking; [master] serializes
   the start/stop transitions (and the finalizer list). An emitter that
   read the sink just before a concurrent [stop] is harmless: [stop]
   flips [closed] and closes the channel under the sink's own lock, and
   every write re-checks [closed] under that lock first. *)
let sink : sink option Atomic.t = Atomic.make None
let on = Atomic.make false
let master = Mutex.create ()
let finalizers : (unit -> unit) list ref = ref []
let exit_hook_installed = ref false

let enabled () = Atomic.get on

(* This Unix build has no [clock_gettime]; monotonize gettimeofday by
   clamping to the largest timestamp handed out so far, so a wall-clock
   step backwards can never produce a negative duration. *)
let high_water = Atomic.make 0.0

let mono () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let hw = Atomic.get high_water in
    if t <= hw then hw
    else if Atomic.compare_and_set high_water hw t then t
    else clamp ()
  in
  clamp ()

let now () =
  match Atomic.get sink with None -> 0.0 | Some s -> mono () -. s.t0

let emit ev fields =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
    let line =
      Json.to_string
        (Json.Obj (("ev", Json.String ev) :: ("ts", Json.Float (mono () -. s.t0)) :: fields))
    in
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        if not s.closed then begin
          output_string s.oc line;
          output_char s.oc '\n'
        end)

let stop () =
  Mutex.lock master;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock master)
    (fun () ->
      match Atomic.get sink with
      | None -> ()
      | Some s ->
        (* Finalizers run while the sink is still live so they can emit
           (Metrics flushes its summary events here). *)
        List.iter (fun f -> f ()) (List.rev !finalizers);
        emit "trace_end" [];
        Atomic.set on false;
        Atomic.set sink None;
        (* Close under the sink lock: an emitter that read this sink
           before we unpublished it either finishes its write first or
           sees [closed] and drops the event — never a closed channel. *)
        Mutex.lock s.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock s.lock)
          (fun () ->
            s.closed <- true;
            close_out s.oc))

let at_stop f =
  Mutex.lock master;
  finalizers := f :: !finalizers;
  Mutex.unlock master

let start ~path =
  Mutex.lock master;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock master)
    (fun () ->
      if Atomic.get sink = None then begin
        let oc = open_out path in
        Atomic.set sink
          (Some { oc; t0 = mono (); lock = Mutex.create (); closed = false });
        Atomic.set on true;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit stop
        end;
        emit "trace_start"
          [ ("version", Json.Int 1);
            ("unix_time", Json.Float (Unix.gettimeofday ()));
            ("argv", Json.List (Array.to_list (Array.map (fun a -> Json.String a) Sys.argv))) ]
      end)

(* Honour ISAAC_TRACE as soon as any instrumented code touches this
   module, so binaries need no explicit initialization. *)
let () =
  match Sys.getenv_opt "ISAAC_TRACE" with
  | Some path when path <> "" -> start ~path
  | _ -> ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
          match Json.of_string line with
          | v -> go (lineno + 1) (v :: acc)
          | exception Json.Parse_error msg ->
            raise (Json.Parse_error (Printf.sprintf "line %d: %s" lineno msg)))
      in
      go 1 [])
