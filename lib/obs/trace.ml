type sink = {
  mutable oc : out_channel; (* guarded by [lock]; swapped on rotation *)
  path : string;
  t0 : float;  (* monotonic origin of the trace *)
  lock : Mutex.t;  (* serializes writes; guards [closed]/[oc]/[bytes] *)
  mutable closed : bool;
  mutable bytes : int; (* bytes written to the current file *)
  max_bytes : int option; (* rotation threshold; None = unbounded *)
}

(* Cross-domain lifecycle: [on] and [sink] are atomics so emitters on any
   domain read a coherent snapshot without locking; [master] serializes
   the start/stop transitions (and the finalizer list). An emitter that
   read the sink just before a concurrent [stop] is harmless: [stop]
   flips [closed] and closes the channel under the sink's own lock, and
   every write re-checks [closed] under that lock first. *)
let sink : sink option Atomic.t = Atomic.make None
let on = Atomic.make false
let master = Mutex.create ()
let finalizers : (unit -> unit) list ref = ref []
let exit_hook_installed = ref false

let enabled () = Atomic.get on

(* This Unix build has no [clock_gettime]; monotonize gettimeofday by
   clamping to the largest timestamp handed out so far, so a wall-clock
   step backwards can never produce a negative duration. *)
let high_water = Atomic.make 0.0

let mono () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let hw = Atomic.get high_water in
    if t <= hw then hw
    else if Atomic.compare_and_set high_water hw t then t
    else clamp ()
  in
  clamp ()

let monotonic = mono

let now () =
  match Atomic.get sink with None -> 0.0 | Some s -> mono () -. s.t0

(* Rotate under the sink lock: close, shift the current file to a [.1]
   suffix (clobbering any previous one — a single rotation generation is
   the documented retention), reopen fresh, and leave a marker event so
   readers of the new file know data precedes it. [Sys.rename] is atomic
   on POSIX, so a concurrent reader of [path] sees either the old or the
   new file, never a torn one. *)
let rotate_locked s =
  close_out s.oc;
  let old = s.path ^ ".1" in
  if Sys.file_exists old then Sys.remove old;
  Sys.rename s.path old;
  s.oc <- open_out s.path;
  s.bytes <- 0;
  let marker =
    Json.to_string
      (Json.Obj
         [ ("ev", Json.String "trace_rotate");
           ("ts", Json.Float (mono () -. s.t0));
           ("rotated_to", Json.String old) ])
  in
  output_string s.oc marker;
  output_char s.oc '\n';
  s.bytes <- s.bytes + String.length marker + 1

let emit ev fields =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
    let line =
      Json.to_string
        (Json.Obj (("ev", Json.String ev) :: ("ts", Json.Float (mono () -. s.t0)) :: fields))
    in
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        if not s.closed then begin
          (match s.max_bytes with
           | Some cap when s.bytes > 0 && s.bytes + String.length line + 1 > cap ->
             rotate_locked s
           | _ -> ());
          output_string s.oc line;
          output_char s.oc '\n';
          s.bytes <- s.bytes + String.length line + 1
        end)

let stop () =
  Mutex.lock master;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock master)
    (fun () ->
      match Atomic.get sink with
      | None -> ()
      | Some s ->
        (* Finalizers run while the sink is still live so they can emit
           (Metrics flushes its summary events here). *)
        List.iter (fun f -> f ()) (List.rev !finalizers);
        emit "trace_end" [];
        Atomic.set on false;
        Atomic.set sink None;
        (* Close under the sink lock: an emitter that read this sink
           before we unpublished it either finishes its write first or
           sees [closed] and drops the event — never a closed channel. *)
        Mutex.lock s.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock s.lock)
          (fun () ->
            s.closed <- true;
            close_out s.oc))

let at_stop f =
  Mutex.lock master;
  finalizers := f :: !finalizers;
  Mutex.unlock master

let start ?max_bytes ~path () =
  Mutex.lock master;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock master)
    (fun () ->
      if Atomic.get sink = None then begin
        let oc = open_out path in
        Atomic.set sink
          (Some
             { oc; path; t0 = mono (); lock = Mutex.create (); closed = false;
               bytes = 0; max_bytes });
        Atomic.set on true;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit stop
        end;
        emit "trace_start"
          [ ("version", Json.Int 1);
            ("unix_time", Json.Float (Unix.gettimeofday ()));
            ("argv", Json.List (Array.to_list (Array.map (fun a -> Json.String a) Sys.argv))) ]
      end)

(* Honour ISAAC_TRACE as soon as any instrumented code touches this
   module, so binaries need no explicit initialization. ISAAC_TRACE_MAX_MB
   caps the file size via single-generation rotation to [path.1]. *)
let () =
  match Sys.getenv_opt "ISAAC_TRACE" with
  | Some path when path <> "" ->
    let max_bytes =
      let mb = Util.Env_config.float "ISAAC_TRACE_MAX_MB" 0.0 in
      if mb > 0.0 then Some (int_of_float (mb *. 1024.0 *. 1024.0)) else None
    in
    start ?max_bytes ~path ()
  | _ -> ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
          match Json.of_string line with
          | v -> go (lineno + 1) (v :: acc)
          | exception Json.Parse_error msg ->
            raise (Json.Parse_error (Printf.sprintf "line %d: %s" lineno msg)))
      in
      go 1 [])

let read_file_partial path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc skipped =
        match input_line ic with
        | exception End_of_file -> (List.rev acc, skipped)
        | line when String.trim line = "" -> go acc skipped
        | line -> (
          match Json.of_string line with
          | v -> go (v :: acc) skipped
          | exception Json.Parse_error _ -> go acc (skipped + 1))
      in
      go [] 0)
