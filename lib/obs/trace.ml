type sink = {
  oc : out_channel;
  t0 : float;  (* monotonic origin of the trace *)
  lock : Mutex.t;
}

let sink : sink option ref = ref None
let on = ref false
let finalizers : (unit -> unit) list ref = ref []
let exit_hook_installed = ref false

let enabled () = !on

(* This Unix build has no [clock_gettime]; monotonize gettimeofday by
   clamping to the largest timestamp handed out so far, so a wall-clock
   step backwards can never produce a negative duration. *)
let high_water = Atomic.make 0.0

let mono () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let hw = Atomic.get high_water in
    if t <= hw then hw
    else if Atomic.compare_and_set high_water hw t then t
    else clamp ()
  in
  clamp ()

let now () = match !sink with None -> 0.0 | Some s -> mono () -. s.t0

let emit ev fields =
  match !sink with
  | None -> ()
  | Some s ->
    let line =
      Json.to_string
        (Json.Obj (("ev", Json.String ev) :: ("ts", Json.Float (mono () -. s.t0)) :: fields))
    in
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        output_string s.oc line;
        output_char s.oc '\n')

let stop () =
  match !sink with
  | None -> ()
  | Some s ->
    List.iter (fun f -> f ()) (List.rev !finalizers);
    emit "trace_end" [];
    (* Disable before closing so a finalizer-triggered emit from another
       domain cannot race a closed channel. *)
    on := false;
    sink := None;
    close_out s.oc

let at_stop f = finalizers := f :: !finalizers

let start ~path =
  if !sink = None then begin
    let oc = open_out path in
    sink := Some { oc; t0 = mono (); lock = Mutex.create () };
    on := true;
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit stop
    end;
    emit "trace_start"
      [ ("version", Json.Int 1);
        ("unix_time", Json.Float (Unix.gettimeofday ()));
        ("argv", Json.List (Array.to_list (Array.map (fun a -> Json.String a) Sys.argv))) ]
  end

(* Honour ISAAC_TRACE as soon as any instrumented code touches this
   module, so binaries need no explicit initialization. *)
let () =
  match Sys.getenv_opt "ISAAC_TRACE" with
  | Some path when path <> "" -> start ~path
  | _ -> ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
          match Json.of_string line with
          | v -> go (lineno + 1) (v :: acc)
          | exception Json.Parse_error msg ->
            raise (Json.Parse_error (Printf.sprintf "line %d: %s" lineno msg)))
      in
      go 1 [])
