(** Hierarchical timing spans.

    [with_ "phase" f] times [f ()] on the monotonized clock and, when the
    trace sink is enabled, emits a [span] event on completion carrying
    the span's slash-joined ancestry path (["tune/dataset/benchmark"]).
    Nesting is tracked per domain ({!Domain.DLS}): spans opened inside a
    parallel worker domain start a fresh path rather than attaching to
    the spawning domain's open spans, so paths never interleave across
    domains (the profile report attributes worker time to the worker's
    own top-level span).

    When the sink is disabled, [with_ name f] is exactly [f ()] — no
    clock read, no allocation beyond the closure the caller already
    built. *)

val with_ :
  ?meta:(unit -> (string * Json.t) list) -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f], emitting a [span] event when tracing. The
    [meta] thunk is forced only when enabled, at span close — use it for
    fields that are costly to render (config descriptions, counts). If
    [f] raises, the span is still closed with an ["error":true] field
    and the exception is re-raised. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), elapsed_seconds)] (clamped non-negative),
    independent of the sink — the building block for callers that want a
    duration without emitting anything. *)

val current_path : unit -> string
(** Slash-joined names of the open spans of the calling domain, [""] at
    top level. Exposed for tests and for custom events that want to
    attach themselves to the active phase. *)
