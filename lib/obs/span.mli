(** Hierarchical timing spans and request-scoped correlation ids.

    [with_ "phase" f] times [f ()] on the monotonized clock and, when the
    trace sink is enabled, emits a [span] event on completion carrying
    the span's slash-joined ancestry path (["tune/dataset/benchmark"]).
    Nesting is tracked per domain ({!Domain.DLS}): spans opened inside a
    parallel worker domain start a fresh path rather than attaching to
    the spawning domain's open spans, so paths never interleave across
    domains (the profile report attributes worker time to the worker's
    own top-level span).

    When {!Telemetry} is enabled, every closing span is additionally
    appended to the telemetry flight recorder (kind ["span"], or
    ["span.error"] if [f] raised), and spans carry the current request
    id so one plan request's spans correlate across domains.

    When both sinks are disabled, [with_ name f] is exactly [f ()] — no
    clock read, no allocation beyond the closure the caller already
    built. *)

val with_ :
  ?meta:(unit -> (string * Json.t) list) -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f], emitting a [span] event when tracing (with
    a ["req"] field when a request id is in scope) and a flight-recorder
    entry when telemetry is on. The [meta] thunk is forced only when
    tracing, at span close — use it for fields that are costly to render
    (config descriptions, counts). If [f] raises, the span is still
    closed with an ["error":true] field and the exception is re-raised. *)

val with_request : ?id:int -> (unit -> 'a) -> 'a
(** [with_request f] runs [f] with a request id installed in the calling
    domain (a fresh process-unique id unless [id] is given), restoring
    the previous id afterwards. Nested calls shadow. No-op wrapper when
    both trace and telemetry are disabled. *)

val current_request : unit -> int option
(** The request id in scope on the calling domain, if any. Parallel
    stages capture this before fanning out and install it in each
    worker via {!set_request}. *)

val set_request : int option -> unit
(** Install (or with [None] clear) a request id on the calling domain.
    Intended for worker domains whose lifetime is contained in the
    request; they need not restore the previous value. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), elapsed_seconds)] (clamped non-negative),
    independent of the sink — the building block for callers that want a
    duration without emitting anything. *)

val current_path : unit -> string
(** Slash-joined names of the open spans of the calling domain, [""] at
    top level. Exposed for tests and for custom events that want to
    attach themselves to the active phase. *)
