(** Always-on serving telemetry, gated by [ISAAC_TELEMETRY].

    Unlike {!Trace} (a per-run event log meant to be switched on for one
    diagnostic run), this module is designed to stay on in a resident
    serving process: counters and histograms are sharded across atomics
    so the hot path never takes a mutex, and a background domain
    periodically exports merged snapshots (JSONL via {!Json}, plus a
    Prometheus-style text file at [path ^ ".prom"]).

    Set [ISAAC_TELEMETRY=path] to export one final snapshot at exit, or
    [ISAAC_TELEMETRY=path,2.5] to also export every 2.5 seconds. When
    the variable is unset, every gated entry point reduces to a single
    atomic-bool load, mirroring the {!Trace} contract.

    Correctness notes (pinned by [test/test_telemetry.ml]):
    - counter totals are {e exact} for any domain count — increments go
      through [Atomic.fetch_and_add], which cannot lose updates even
      when two domains alias onto the same shard;
    - histogram quantiles carry a ≤ 2% relative error bound (32 linear
      sub-buckets per power-of-two octave; reporting bucket midpoints
      halves the 3.125% bucket width);
    - snapshot merge is associative and commutative (element-wise bucket
      addition). *)

val enabled : unit -> bool
(** Whether telemetry is active. The one check every instrumented call
    site performs first. *)

val start : ?interval_s:float -> path:string -> unit -> unit
(** Enable telemetry, appending JSONL snapshots to [path] (and writing
    Prometheus text to [path ^ ".prom"] via atomic rename). When
    [interval_s > 0] a background domain exports on that period;
    otherwise snapshots are written only by {!export_now} and {!stop}.
    No-op if already started. Installs an [at_exit] {!stop}. *)

val stop : unit -> unit
(** Export one final snapshot, join the exporter domain, and disable
    telemetry. No-op when disabled. Runs automatically [at_exit]. *)

val export_now : unit -> unit
(** Write a snapshot immediately (no-op when disabled). Export errors
    are reported on stderr, never raised into the instrumented caller. *)

val reset : unit -> unit
(** Zero every registered value (counters, histograms, gauges, model
    cells) and clear the flight recorder, keeping handles valid. For
    tests. *)

(** Sharded lock-free counters. Handles are cheap to create and safe to
    keep in module-level bindings; operations on a handle are {e not}
    gated on {!enabled} — wrap call sites in [if Telemetry.enabled ()]
    or use the string-keyed sinks below. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  (** Merge-on-read sum over all shards. Exact once writers are
      quiescent; monotonically catching-up while they race. *)

  val reset : t -> unit
end

(** Log-bucketed mergeable histograms (HDR-style). *)
module Histo : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one observation. NaN is dropped; values ≤ 0 (and
      underflows below 2^-40) clamp into the lowest bucket; overflows
      (≥ 2^24) clamp into the highest. *)

  type snapshot = {
    count : int;
    sum : float;
    min_v : float;  (** +inf when empty; exact, not bucketed *)
    max_v : float;  (** -inf when empty; exact, not bucketed *)
    buckets : (int * int) array;
        (** sparse [(bucket_index, count)], ascending by index *)
  }

  val snapshot : t -> snapshot
  (** Merge all shards into one immutable summary. *)

  val empty_snapshot : snapshot

  val merge : snapshot -> snapshot -> snapshot
  (** Element-wise bucket addition; associative and commutative. *)

  val quantile : snapshot -> float -> float
  (** [quantile s 0.99] walks the cumulative bucket counts and returns
      the midpoint of the bucket containing that rank, clamped to the
      exact observed [min_v]/[max_v]. NaN when empty. Relative error
      ≤ 1/64 (~1.6%) for in-range positive observations. *)

  val mean : snapshot -> float
  (** [sum /. count]; NaN when empty. *)

  val reset : t -> unit

  (** Bucket geometry, exposed for tests. *)

  val n_buckets : int
  val bucket_of : float -> int
  val bucket_lower : int -> float
  (** Inclusive lower edge; [bucket_of (bucket_lower b) = b] exactly
      (edges are dyadic rationals, representable in binary float). *)

  val bucket_mid : int -> float
end

(** Last-write-wins float gauges. *)
module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val value : t -> float
  (** NaN until first set. *)

  val reset : t -> unit
end

(** A named collection of counters/histograms/gauges: lock-free
    copy-on-write lookups, mutex-serialized first-use registration.
    {!Metrics} keeps its trace-scoped values in a private registry so
    its reset-on-flush lifecycle cannot disturb the global cumulative
    telemetry; the string-keyed sinks below operate on the global one. *)
module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Find or register. Raises [Invalid_argument] if [name] is already
      registered as a different entity kind. *)

  val histo : t -> string -> Histo.t
  val gauge : t -> string -> Gauge.t
  val find_counter : t -> string -> Counter.t option
  val counters : t -> (string * Counter.t) list
  (** Sorted by name; likewise below. *)

  val histos : t -> (string * Histo.t) list
  val gauges : t -> (string * Gauge.t) list

  val clear : t -> unit
  (** Drop every entity (names become unregistered). *)

  val reset_values : t -> unit
  (** Zero values, keeping handles valid. *)
end

(** Predicted-vs-measured model-quality channel. Call {!Model.record}
    whenever a prediction is checked against a real measurement (the
    search rebench stage does); drift per op surfaces in snapshots as
    the [model.drift.<op>] gauge. *)
module Model : sig
  val record :
    op:string -> bucket:string -> predicted:float -> measured:float -> unit
  (** Accumulate one residual [|predicted - measured| / measured] into
      the [(op, bucket)] cell. Gated on {!enabled}; non-finite or
      non-positive measurements are dropped. *)

  val drift : op:string -> float option
  (** Mean absolute relative residual across all buckets of [op];
      [None] until something was recorded. *)

  val ops : unit -> string list
  (** Sorted ops with at least one cell. *)
end

(** Fixed-size per-domain ring buffers retaining the most recent
    span/trap events, for post-mortem context in failure reports. *)
module Flight : sig
  type event = {
    ts : float;  (** unix time *)
    req : int;  (** request id, 0 when none was in scope *)
    kind : string;
    name : string;
    detail : string;
  }

  val record : ?req:int -> kind:string -> name:string -> string -> unit
  (** Append one event to the calling domain's ring (64 slots per ring,
      8 rings). Gated on {!enabled}. *)

  val events : unit -> event list
  (** All retained events, oldest first. *)

  val dump : ?limit:int -> unit -> string
  (** Multi-line human-readable rendering of the newest [limit]
      (default 12) events, [""] when none — sized for embedding in a
      trap or artifact error message. *)

  val clear : unit -> unit
end

(** String-keyed convenience sinks over a global registry. Handle
    lookup is lock-free on a copy-on-write table; first use of a name
    takes a mutex once to register it. [add]/[incr]/[observe]/
    [set_gauge] are gated on {!enabled}. *)

val counter : string -> Counter.t
val histo : string -> Histo.t
val gauge : string -> Gauge.t
val add : string -> int -> unit
val incr : string -> unit
val observe : string -> float -> unit
val set_gauge : string -> float -> unit

val counter_value : string -> int option
(** [None] if the name was never registered as a counter. *)

val gauge_value : string -> float option
(** [None] if never registered or never set. *)

val snapshot_json : unit -> Json.t
(** The full merged snapshot: [{"schema":"isaac-telemetry","version":1,
    "seq":..,"unix_time":..,"counters":{..},"gauges":{..},
    "hists":{name:{count,sum,min,max,mean,p50,p90,p95,p99}},
    "model":{op:{drift,buckets:{bucket:{n,mae_rel}}}}}]. Empty
    histograms are omitted; counters appear even at zero. *)

val prometheus : unit -> string
(** Prometheus text exposition of the same snapshot ([isaac_] prefix,
    [_total] counters, summary-typed histograms). *)
