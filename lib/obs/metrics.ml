let lock = Mutex.create ()

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32

(* Histogram: streaming moments plus a deterministic decimating
   reservoir. The reservoir keeps every [stride]-th observation; when it
   fills, every other kept sample is dropped and the stride doubles, so
   quantiles stay unbiased for smoothly varying streams and the memory
   bound is hard. *)
let reservoir_cap = 4096

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable kept : float array;
  mutable n_kept : int;
  mutable stride : int;
}

let hists : (string, hist) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let add name n =
  if Trace.enabled () then
    locked (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add counters name (ref n))

let incr name = add name 1

let observe name v =
  if Trace.enabled () then
    locked (fun () ->
        let h =
          match Hashtbl.find_opt hists name with
          | Some h -> h
          | None ->
            let h =
              { count = 0; sum = 0.0; min_v = Float.infinity;
                max_v = Float.neg_infinity;
                kept = Array.make 64 0.0; n_kept = 0; stride = 1 }
            in
            Hashtbl.add hists name h;
            h
        in
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min_v then h.min_v <- v;
        if v > h.max_v then h.max_v <- v;
        if (h.count - 1) mod h.stride = 0 then begin
          if h.n_kept = Array.length h.kept then
            if h.n_kept < reservoir_cap then begin
              let bigger = Array.make (2 * h.n_kept) 0.0 in
              Array.blit h.kept 0 bigger 0 h.n_kept;
              h.kept <- bigger
            end
            else begin
              for i = 0 to (h.n_kept / 2) - 1 do
                h.kept.(i) <- h.kept.(2 * i)
              done;
              h.n_kept <- h.n_kept / 2;
              h.stride <- h.stride * 2
            end;
          h.kept.(h.n_kept) <- v;
          h.n_kept <- h.n_kept + 1
        end)

let point ?unit_ name ~x ~y =
  if Trace.enabled () then
    Trace.emit "point"
      ([ ("series", Json.String name); ("x", Json.Float x); ("y", Json.Float y) ]
      @ match unit_ with None -> [] | Some u -> [ ("unit", Json.String u) ])

let counter_value name =
  locked (fun () -> Option.map ( ! ) (Hashtbl.find_opt counters name))

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let flush () =
  let counter_events, hist_events =
    locked (fun () ->
        let cs =
          Hashtbl.fold
            (fun name r acc ->
              (name, [ ("name", Json.String name); ("value", Json.Int !r) ]) :: acc)
            counters []
        in
        let hs =
          Hashtbl.fold
            (fun name h acc ->
              let sorted = Array.sub h.kept 0 h.n_kept in
              Array.sort compare sorted;
              ( name,
                [ ("name", Json.String name);
                  ("count", Json.Int h.count);
                  ("sum", Json.Float h.sum);
                  ("min", Json.Float h.min_v);
                  ("max", Json.Float h.max_v);
                  ("mean", Json.Float (h.sum /. float_of_int (max 1 h.count)));
                  ("p50", Json.Float (quantile sorted 0.50));
                  ("p90", Json.Float (quantile sorted 0.90));
                  ("p99", Json.Float (quantile sorted 0.99)) ] )
              :: acc)
            hists []
        in
        Hashtbl.reset counters;
        Hashtbl.reset hists;
        (cs, hs))
  in
  (* Emit outside the metrics lock: Trace has its own, and emitting under
     both invites ordering bugs. Sort for deterministic output. *)
  let by_name (a, _) (b, _) = compare a b in
  List.iter (fun (_, f) -> Trace.emit "counter" f) (List.sort by_name counter_events);
  List.iter (fun (_, f) -> Trace.emit "hist" f) (List.sort by_name hist_events)

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset hists)

let () = Trace.at_stop flush
