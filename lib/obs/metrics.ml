(* Trace-scoped metrics, now a thin adapter over Telemetry's sharded
   lock-free primitives: counters are per-domain [Atomic.fetch_and_add]
   shards merged on read, histograms the log-bucketed mergeable kind.
   This removes the old global mutex from every [add]/[observe] and
   makes flush idempotent by construction — each name maps to exactly
   one entity regardless of how many domains touched it, so a flush can
   never emit duplicate rows for one histogram.

   The registry here is private and reset on flush (the trace contract:
   summary events describe the window since the last flush). The
   cumulative serving registry lives in [Telemetry]'s global; call
   sites that want both report to both. *)

let reg = Telemetry.Registry.create ()

let add name n =
  if Trace.enabled () then
    Telemetry.Counter.add (Telemetry.Registry.counter reg name) n

let incr name = add name 1

let observe name v =
  if Trace.enabled () then
    Telemetry.Histo.observe (Telemetry.Registry.histo reg name) v

let point ?unit_ name ~x ~y =
  if Trace.enabled () then
    Trace.emit "point"
      ([ ("series", Json.String name); ("x", Json.Float x); ("y", Json.Float y) ]
      @ match unit_ with None -> [] | Some u -> [ ("unit", Json.String u) ])

let counter_value name =
  Option.map Telemetry.Counter.value (Telemetry.Registry.find_counter reg name)

let flush () =
  let counter_events =
    List.map
      (fun (name, c) ->
        [ ("name", Json.String name);
          ("value", Json.Int (Telemetry.Counter.value c)) ])
      (Telemetry.Registry.counters reg)
  in
  let hist_events =
    List.map
      (fun (name, h) ->
        let s = Telemetry.Histo.snapshot h in
        [ ("name", Json.String name);
          ("count", Json.Int s.Telemetry.Histo.count);
          ("sum", Json.Float s.Telemetry.Histo.sum);
          ("min", Json.Float s.Telemetry.Histo.min_v);
          ("max", Json.Float s.Telemetry.Histo.max_v);
          ("mean", Json.Float (Telemetry.Histo.mean s));
          ("p50", Json.Float (Telemetry.Histo.quantile s 0.50));
          ("p90", Json.Float (Telemetry.Histo.quantile s 0.90));
          ("p99", Json.Float (Telemetry.Histo.quantile s 0.99)) ])
      (Telemetry.Registry.histos reg)
  in
  Telemetry.Registry.clear reg;
  (* Registry listings are already name-sorted; emit outside any metrics
     state so Trace's own lock is the only one held while writing. *)
  List.iter (fun f -> Trace.emit "counter" f) counter_events;
  List.iter (fun f -> Trace.emit "hist" f) hist_events

let reset () = Telemetry.Registry.clear reg

let () = Trace.at_stop flush
