(** Versioned, machine-readable benchmark reports ([BENCH_<rev>.json]).

    The bench harness assembles one {!t} per run: environment metadata
    (seed, scale, git revision, devices, every {!Util.Env_config} knob
    the run consulted), per-experiment wall times and shape-check
    outcomes, scalar metrics (predicted TFLOPS, acceptance rates,
    micro-benchmark medians with bootstrap confidence intervals) and the
    model-vs-counter attribution rows of {!Gpu.Attribution}.

    Reports serialize through {!Json} and round-trip exactly; {!Regress}
    compares two of them and [isaac_bench_diff] turns that comparison
    into a CI exit code. The schema is versioned: [of_json] accepts any
    report whose [version] is at most {!schema_version} (fields added
    later must be optional), and rejects newer ones. *)

val schema_version : int
(** Current schema version (1). *)

val schema_name : string
(** The ["schema"] discriminator field, ["isaac-bench-report"]. *)

type direction = Higher_better | Lower_better | Neutral
(** Which way improvement points for a metric. [Neutral] metrics are
    informational and never gate. *)

type kind =
  | Deterministic
      (** Bit-reproducible given seed and scale (model predictions,
          acceptance rates, correlations): any drift beyond a small
          tolerance is a genuine behaviour change. *)
  | Timing
      (** Wall-clock measurement: machine- and load-dependent, gated
          only with confidence intervals and generous thresholds. *)

type metric = {
  m_name : string;       (** unique key, e.g. ["fig6.geomean_speedup"] *)
  m_experiment : string; (** owning experiment key, e.g. ["fig6"] *)
  value : float;
  unit_ : string;        (** ["tflops"], ["ns/op"], ["ratio"], … *)
  direction : direction;
  kind : kind;
  ci : (float * float) option;
      (** bootstrap confidence interval for the value, when available *)
  n : int option;        (** sample count behind the value *)
}

type check = { claim : string; paper : string; ours : string; pass : bool }
(** One qualitative shape check, as printed by the harness. *)

type experiment = {
  key : string;
  wall_seconds : float;
  checks : check list;
}

type attribution = {
  term : string;      (** [Perf_model] cost term, e.g. ["mem_seconds"] *)
  counter : string;   (** paired interpreter counter name *)
  a_n : int;          (** configs correlated *)
  pearson_r : float;
  scale : float;      (** mean(term)/mean(counter): implied s per unit *)
  drift : float;      (** coeff. of variation of per-config term/counter *)
}

type env = {
  rev : string;              (** git revision the report was built from *)
  seed : int;
  repro_scale : float;
  device : string;           (** device descriptors exercised *)
  argv : string list;
  knobs : (string * string) list;  (** {!Util.Env_config.snapshot} *)
  ocaml_version : string;
  hostname : string;
}

type t = {
  version : int;
  env : env;
  experiments : experiment list;
  metrics : metric list;
  attribution : attribution list;
}

val filename : rev:string -> string
(** ["BENCH_<rev>.json"]. *)

val find_metric : t -> string -> metric option
val find_experiment : t -> string -> experiment option

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Structural validation with field-path error messages; rejects
    reports with a newer [version] or the wrong ["schema"] field. *)

val write : path:string -> t -> unit
(** Atomic, checksummed write through {!Util.Artifact} (kind
    ["isaac-bench-report"]). The payload stays one deterministic
    {!Json.to_string} line plus a trailing newline, so reports written
    by the same schema version remain byte-comparable; a crash mid-write
    leaves any previous report readable. *)

val load : string -> (t, string) result
(** Read, validate (artifact checksum) and parse; I/O, corruption and
    parse failures are returned as [Error]. Headerless legacy reports
    (e.g. [bench/baseline.json] written before the artifact store) are
    still accepted. *)
