(** JSONL trace sink, gated by the [ISAAC_TRACE] environment variable.

    When [ISAAC_TRACE=file.jsonl] is set, every subsystem that calls into
    {!Obs} appends one JSON object per line to that file; when it is
    unset, every entry point in this library reduces to a single boolean
    load, so instrumented hot paths cost nothing measurable (the
    acceptance bound is < 2% on a full tuning run; the no-op test in
    [test/test_obs.ml] pins this).

    Long-running processes can cap the file size with
    [ISAAC_TRACE_MAX_MB=N]: when an append would push the current file
    past the cap, it is atomically renamed to [file.jsonl.1] (replacing
    any previous rotation) and a fresh file is started with a
    [trace_rotate] marker event, so total disk usage stays under ~2N MB.

    The sink is safe to use concurrently from multiple OCaml 5 domains —
    the tuner's benchmarking loops fan out — and event timestamps are
    monotonized (wall clock clamped to its high-water mark, since this
    Unix build lacks [clock_gettime]) so a clock step backwards can
    never yield a negative duration. See DESIGN.md ("Observability")
    for the field-by-field event schema. *)

val enabled : unit -> bool
(** Whether a sink is currently open. The one check every instrumented
    call site performs first. *)

val start : ?max_bytes:int -> path:string -> unit -> unit
(** Open (truncate) [path] and emit the [trace_start] header event.
    [max_bytes] enables size-capped rotation (see above; the env path
    derives it from [ISAAC_TRACE_MAX_MB]). No-op if a sink is already
    open. Called automatically at program start when [ISAAC_TRACE] is
    set; exposed for tests and embedders. *)

val stop : unit -> unit
(** Flush registered finalizers (metric summaries), emit [trace_end],
    close the sink. No-op when disabled. Runs automatically [at_exit]. *)

val at_stop : (unit -> unit) -> unit
(** Register a finalizer to run inside {!stop} before the sink closes
    (used by {!Metrics} to emit its summary events). *)

val now : unit -> float
(** Monotonized seconds since the trace started (0.0 when disabled). *)

val monotonic : unit -> float
(** The raw monotonized clock (seconds since the epoch, clamped to its
    high-water mark). Usable for durations independently of whether a
    sink is open — {!Span} times telemetry-only spans with it. *)

val emit : string -> (string * Json.t) list -> unit
(** [emit ev fields] appends [{"ev":ev,"ts":now(),...fields}] as one
    line. Thread-safe; no-op when disabled. Callers must ensure field
    names do not collide with ["ev"]/["ts"]. *)

val read_file : string -> Json.t list
(** Parse a trace file back into one value per line, skipping blank
    lines. Raises [Json.Parse_error] (with the line number prepended) on
    malformed input and [Sys_error] on I/O failure. *)

val read_file_partial : string -> Json.t list * int
(** Like {!read_file} but lenient: unparseable lines (e.g. a line
    truncated by a crash or rotation race) are skipped rather than
    raised on. Returns the parsed values and the number of skipped
    lines. *)
