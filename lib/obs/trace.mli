(** JSONL trace sink, gated by the [ISAAC_TRACE] environment variable.

    When [ISAAC_TRACE=file.jsonl] is set, every subsystem that calls into
    {!Obs} appends one JSON object per line to that file; when it is
    unset, every entry point in this library reduces to a single boolean
    load, so instrumented hot paths cost nothing measurable (the
    acceptance bound is < 2% on a full tuning run; the no-op test in
    [test/test_obs.ml] pins this).

    The sink is safe to use concurrently from multiple OCaml 5 domains —
    the tuner's benchmarking loops fan out — and event timestamps are
    monotonized (wall clock clamped to its high-water mark, since this
    Unix build lacks [clock_gettime]) so a clock step backwards can
    never yield a negative duration. See DESIGN.md ("Observability")
    for the field-by-field event schema. *)

val enabled : unit -> bool
(** Whether a sink is currently open. The one check every instrumented
    call site performs first. *)

val start : path:string -> unit
(** Open (truncate) [path] and emit the [trace_start] header event.
    No-op if a sink is already open. Called automatically at program
    start when [ISAAC_TRACE] is set; exposed for tests and embedders. *)

val stop : unit -> unit
(** Flush registered finalizers (metric summaries), emit [trace_end],
    close the sink. No-op when disabled. Runs automatically [at_exit]. *)

val at_stop : (unit -> unit) -> unit
(** Register a finalizer to run inside {!stop} before the sink closes
    (used by {!Metrics} to emit its summary events). *)

val now : unit -> float
(** Monotonized seconds since the trace started (0.0 when disabled). *)

val emit : string -> (string * Json.t) list -> unit
(** [emit ev fields] appends [{"ev":ev,"ts":now(),...fields}] as one
    line. Thread-safe; no-op when disabled. Callers must ensure field
    names do not collide with ["ev"]/["ts"]. *)

val read_file : string -> Json.t list
(** Parse a trace file back into one value per line, skipping blank
    lines. Raises [Json.Parse_error] (with the line number prepended) on
    malformed input and [Sys_error] on I/O failure. *)
