(** Dense row-major matrices and the handful of BLAS-like operations the
    MLP needs. Everything is plain [float array] for portability; the
    matmul kernels use cache-blocked loops that are fast enough for the
    training sizes in this reproduction.

    (The paper notes, §5, that an MLP over ~20 features relies on highly
    rectangular matrix products — the very shapes ISAAC tunes for; our CPU
    stand-in keeps that irony intact.) *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length rows·cols *)
}

val create : int -> int -> t
(** Zero-filled matrix. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Wrap an existing array (no copy). Length must match. *)

val get : t -> int -> int -> float
(** [get m i j] is element [(i, j)] (row [i], column [j]). *)

val set : t -> int -> int -> float -> unit
(** [set m i j v] stores [v] at [(i, j)]. *)

val random_he : Util.Rng.t -> int -> int -> t
(** He-normal initialization: N(0, sqrt(2 / cols)) — the standard choice
    for relu networks. *)

val matmul_nt : t -> t -> t
(** [matmul_nt a b] = a · bᵀ where a is (m×k), b is (n×k); result (m×n).
    This is the forward-pass shape: activations (batch×in) times weights
    (out×in). *)

val matmul_nn : t -> t -> t
(** [matmul_nn a b] = a · b, a (m×k), b (k×n). *)

val matmul_tn : t -> t -> t
(** [matmul_tn a b] = aᵀ · b, a (k×m), b (k×n); result (m×n). The
    weight-gradient shape: deltasᵀ times activations. *)

val add_row_inplace : t -> float array -> unit
(** Add a row vector to every row (bias). *)

val relu_inplace : t -> unit
(** Clamp every element to [max 0] in place (hidden-layer activation). *)

val relu_mask_inplace : t -> t -> unit
(** [relu_mask_inplace delta z]: zero the entries of [delta] where the
    corresponding [z] entry is ≤ 0 (backprop through relu). *)

val col_sums : t -> float array
(** Per-column sums — the bias-gradient reduction over a minibatch. *)

val scale_inplace : t -> float -> unit
(** Multiply every element by a scalar, in place. *)

val sub : t -> t -> t
(** Element-wise difference (fresh matrix); shapes must match. *)

val copy : t -> t
(** Deep copy (fresh data array). *)
