type history = {
  epoch_train_mse : float array;
  epoch_val_mse : float array;
}

let rows x idx =
  let cols = x.Tensor.cols in
  let out = Tensor.create (List.length idx) cols in
  List.iteri
    (fun i r ->
      Array.blit x.Tensor.data (r * cols) out.Tensor.data (i * cols) cols)
    idx;
  out

let fit ?(batch_size = 64) ?(epochs = 20) ?(adam = Network.default_adam) ?validation
    rng net ~x ~y =
  let n = x.Tensor.rows in
  assert (Array.length y = n);
  Obs.Span.with_ "mlp.fit"
    ~meta:(fun () ->
      [ ("epochs", Obs.Json.Int epochs);
        ("batch_size", Obs.Json.Int batch_size);
        ("n", Obs.Json.Int n) ])
    (fun () ->
  let cols = x.Tensor.cols in
  let order = Array.init n (fun i -> i) in
  let train_hist = Array.make epochs 0.0 in
  let val_hist =
    match validation with Some _ -> Array.make epochs 0.0 | None -> [||]
  in
  let xb = Tensor.create batch_size cols in
  let yb = Array.make batch_size 0.0 in
  for epoch = 0 to epochs - 1 do
    Util.Rng.shuffle rng order;
    let batches = ref 0 and loss_sum = ref 0.0 in
    let i = ref 0 in
    while !i + batch_size <= n do
      for j = 0 to batch_size - 1 do
        let r = order.(!i + j) in
        Array.blit x.Tensor.data (r * cols) xb.Tensor.data (j * cols) cols;
        yb.(j) <- y.(r)
      done;
      loss_sum := !loss_sum +. Network.train_batch net adam ~x:xb ~y:yb;
      incr batches;
      i := !i + batch_size
    done;
    train_hist.(epoch) <- (if !batches = 0 then Float.nan else !loss_sum /. float_of_int !batches);
    let fe = float_of_int epoch in
    Obs.Metrics.point "mlp.train_mse" ~x:fe ~y:train_hist.(epoch);
    Obs.Metrics.point "mlp.lr" ~x:fe ~y:adam.Network.lr;
    if Obs.Telemetry.enabled () then begin
      Obs.Telemetry.incr "mlp.epochs";
      Obs.Telemetry.set_gauge "mlp.train_mse" train_hist.(epoch)
    end;
    match validation with
    | Some (xv, yv) ->
      val_hist.(epoch) <- Network.mse net ~x:xv ~y:yv;
      Obs.Metrics.point "mlp.val_mse" ~x:fe ~y:val_hist.(epoch);
      Obs.Telemetry.set_gauge "mlp.val_mse" val_hist.(epoch)
    | None -> ()
  done;
  { epoch_train_mse = train_hist; epoch_val_mse = val_hist })

let split rng ~test_fraction ~x ~y =
  let n = x.Tensor.rows in
  let order = Array.to_list (Util.Rng.permutation rng n) in
  let n_test = int_of_float (Float.round (float_of_int n *. test_fraction)) in
  let n_test = max 1 (min (n - 1) n_test) in
  let rec take k = function
    | [] -> ([], [])
    | hd :: tl ->
      if k = 0 then ([], hd :: tl)
      else
        let a, b = take (k - 1) tl in
        (hd :: a, b)
  in
  let test_idx, train_idx = take n_test order in
  let pick idx = (rows x idx, Array.of_list (List.map (fun i -> y.(i)) idx)) in
  (pick train_idx, pick test_idx)
