(** Multi-layer perceptron for performance regression (paper §5,
    Algorithm 1).

    Hidden layers use relu — chosen by the paper because performance
    models are full of maximums (Eq. 2–3) — and the output layer is
    linear. Training minimizes mean squared error with Adam.

    The caller is responsible for feature transformation; the paper's key
    finding (§5.2) that inputs must be passed through a logarithm lives in
    {!Tuner.Features}, and Table 2 reproduces the degradation without
    it. *)

type t

val create : Util.Rng.t -> sizes:int array -> t
(** [create rng ~sizes] with [sizes = [|inputs; hidden...; 1|]]. *)

val sizes : t -> int array
val num_weights : t -> int
(** Total trainable parameters (weights + biases), as reported in
    Table 2's "#weights" column. *)

val predict : t -> Tensor.t -> float array
(** Batch forward pass: (batch × inputs) → batch predictions. *)

val predict_one : t -> float array -> float

type adam = {
  lr : float;
  beta1 : float;
  beta2 : float;
  epsilon : float;
}

val default_adam : adam

val train_batch : t -> adam -> x:Tensor.t -> y:float array -> float
(** One optimizer step on a minibatch; returns the batch MSE before the
    update. *)

val mse : t -> x:Tensor.t -> y:float array -> float
(** Evaluation loss on a dataset (no update). *)

val copy : t -> t
(** Deep copy (weights and optimizer state). *)

val save : t -> out_channel -> unit
val load : in_channel -> t
(** Plain-text serialization (architecture then weights), used by the
    profile cache. *)

val save_buf : Buffer.t -> t -> unit
(** Append the same serialization to a buffer — how {!Tuner.Profile}
    embeds the weights in a checksummed {!Util.Artifact} payload. *)

val load_from : (unit -> string) -> t
(** Read the serialization from a line producer (raising [End_of_file]
    when out of lines). Raises on malformed input — callers reading
    checksummed artifacts translate that into an [Error]. *)
