(** Multi-layer perceptron for performance regression (paper §5,
    Algorithm 1).

    Hidden layers use relu — chosen by the paper because performance
    models are full of maximums (Eq. 2–3) — and the output layer is
    linear. Training minimizes mean squared error with Adam.

    The caller is responsible for feature transformation; the paper's key
    finding (§5.2) that inputs must be passed through a logarithm lives in
    {!Tuner.Features}, and Table 2 reproduces the degradation without
    it. *)

type t

val create : Util.Rng.t -> sizes:int array -> t
(** [create rng ~sizes] with [sizes = [|inputs; hidden...; 1|]]. *)

val sizes : t -> int array
(** Layer widths as passed to {!create}: [[|inputs; hidden...; 1|]]. *)

val num_weights : t -> int
(** Total trainable parameters (weights + biases), as reported in
    Table 2's "#weights" column. *)

val predict : t -> Tensor.t -> float array
(** Batch forward pass: (batch × inputs) → batch predictions. *)

val predict_one : t -> float array -> float
(** Single-sample convenience: wraps the features in a 1-row batch and
    runs {!predict}. This is the {e scalar} planning path — one network
    evaluation per candidate configuration — retained as the
    differential reference for {!forward_batch}. *)

val forward_batch : t -> input:Matrix.t -> Matrix.t
(** Batched forward pass over unboxed {!Matrix} storage: [input] is
    (batch × inputs), one feature vector per row; the result is
    (batch × 1) network outputs. Evaluates the whole batch as one
    matrix product per layer with eight-row weight reuse — the planning
    hot path that scores thousands of candidate configurations per
    query ({!Tuner.Search}).

    Float contract: per element the arithmetic (ascending-[k]
    single-accumulator dot product, then bias add, then relu) is
    identical to {!predict}'s {!Tensor} pipeline, so outputs are
    bit-equal to the scalar path on the same rows, for any batch size
    (including 1 and ragged tails). The differential tests in
    [test/test_mlp.ml] assert exact equality. *)

val predict_matrix : t -> Matrix.t -> float array
(** {!forward_batch} with the (batch × 1) result flattened to one
    prediction per row — the batched analogue of {!predict}. *)

type adam = {
  lr : float;
  beta1 : float;
  beta2 : float;
  epsilon : float;
}

val default_adam : adam
(** lr 1e-3, β₁ 0.9, β₂ 0.999, ε 1e-8 — the standard Adam settings. *)

val train_batch : t -> adam -> x:Tensor.t -> y:float array -> float
(** One optimizer step on a minibatch; returns the batch MSE before the
    update. *)

val mse : t -> x:Tensor.t -> y:float array -> float
(** Evaluation loss on a dataset (no update). *)

val copy : t -> t
(** Deep copy (weights and optimizer state). *)

val save : t -> out_channel -> unit
(** Write the plain-text serialization (architecture then weights) used
    by the profile cache. *)

val load : in_channel -> t
(** Read back what {!save} wrote. *)

val save_buf : Buffer.t -> t -> unit
(** Append the same serialization to a buffer — how {!Tuner.Profile}
    embeds the weights in a checksummed {!Util.Artifact} payload. *)

val load_from : (unit -> string) -> t
(** Read the serialization from a line producer (raising [End_of_file]
    when out of lines). Raises on malformed input — callers reading
    checksummed artifacts translate that into an [Error]. *)
