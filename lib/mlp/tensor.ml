type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_array ~rows ~cols data =
  assert (Array.length data = rows * cols);
  { rows; cols; data }

let get t i j = t.data.((i * t.cols) + j)
let set t i j v = t.data.((i * t.cols) + j) <- v

let random_he rng rows cols =
  let sigma = sqrt (2.0 /. float_of_int cols) in
  { rows; cols;
    data = Array.init (rows * cols) (fun _ -> sigma *. Util.Rng.gaussian rng) }

(* a (m×k) · bᵀ with b (n×k): both operands walk rows, which are
   contiguous, so the inner loop is a pure dot product. *)
let matmul_nt a b =
  assert (a.cols = b.cols);
  let m = a.rows and n = b.rows and k = a.cols in
  let out = create m n in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to m - 1 do
    let abase = i * k in
    let obase = i * n in
    for j = 0 to n - 1 do
      let bbase = j * k in
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (ad.(abase + l) *. bd.(bbase + l))
      done;
      od.(obase + j) <- !acc
    done
  done;
  out

(* a (m×k) · b (k×n): ikj order keeps the inner loop streaming over rows
   of b and out. *)
let matmul_nn a b =
  assert (a.cols = b.rows);
  let m = a.rows and k = a.cols and n = b.cols in
  let out = create m n in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to m - 1 do
    let abase = i * k and obase = i * n in
    for l = 0 to k - 1 do
      let av = ad.(abase + l) in
      if av <> 0.0 then begin
        let bbase = l * n in
        for j = 0 to n - 1 do
          od.(obase + j) <- od.(obase + j) +. (av *. bd.(bbase + j))
        done
      end
    done
  done;
  out

(* aᵀ (m×k) · b (k×n) with a stored (k×m). *)
let matmul_tn a b =
  assert (a.rows = b.rows);
  let k = a.rows and m = a.cols and n = b.cols in
  let out = create m n in
  let ad = a.data and bd = b.data and od = out.data in
  for l = 0 to k - 1 do
    let abase = l * m and bbase = l * n in
    for i = 0 to m - 1 do
      let av = ad.(abase + i) in
      if av <> 0.0 then begin
        let obase = i * n in
        for j = 0 to n - 1 do
          od.(obase + j) <- od.(obase + j) +. (av *. bd.(bbase + j))
        done
      end
    done
  done;
  out

let add_row_inplace t row =
  assert (Array.length row = t.cols);
  for i = 0 to t.rows - 1 do
    let base = i * t.cols in
    for j = 0 to t.cols - 1 do
      t.data.(base + j) <- t.data.(base + j) +. row.(j)
    done
  done

let relu_inplace t =
  Array.iteri (fun i v -> if v < 0.0 then t.data.(i) <- 0.0) t.data

let relu_mask_inplace delta z =
  assert (delta.rows = z.rows && delta.cols = z.cols);
  Array.iteri (fun i v -> if v <= 0.0 then delta.data.(i) <- 0.0) z.data

let col_sums t =
  let out = Array.make t.cols 0.0 in
  for i = 0 to t.rows - 1 do
    let base = i * t.cols in
    for j = 0 to t.cols - 1 do
      out.(j) <- out.(j) +. t.data.(base + j)
    done
  done;
  out

let scale_inplace t s = Array.iteri (fun i v -> t.data.(i) <- v *. s) t.data

let sub a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) -. b.data.(i)) }

let copy t = { t with data = Array.copy t.data }
