(** Minibatch training loops and cross-validation for {!Network}. *)

type history = {
  epoch_train_mse : float array;  (** mean minibatch loss per epoch *)
  epoch_val_mse : float array;    (** validation MSE per epoch (empty if
                                      no validation set was supplied) *)
}

val fit :
  ?batch_size:int ->
  ?epochs:int ->
  ?adam:Network.adam ->
  ?validation:Tensor.t * float array ->
  Util.Rng.t ->
  Network.t ->
  x:Tensor.t ->
  y:float array ->
  history
(** Shuffled minibatch Adam training (defaults: batch 64, 20 epochs). *)

val split :
  Util.Rng.t ->
  test_fraction:float ->
  x:Tensor.t ->
  y:float array ->
  (Tensor.t * float array) * (Tensor.t * float array)
(** Random train/test split; the paper's Table 2 measures MSE "on a fixed
    set of data-points separate from the samples used for training". *)

val rows : Tensor.t -> int list -> Tensor.t
(** Extract a row subset in the given order. *)
