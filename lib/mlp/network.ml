type layer = {
  w : Tensor.t;          (* out × in *)
  b : float array;       (* out *)
  (* Adam first/second moments *)
  mw : Tensor.t;
  vw : Tensor.t;
  mb : float array;
  vb : float array;
}

type t = {
  layers : layer array;
  arch : int array;
  mutable step : int;   (* Adam timestep *)
}

let create rng ~sizes =
  assert (Array.length sizes >= 2);
  assert (sizes.(Array.length sizes - 1) = 1);
  let layers =
    Array.init
      (Array.length sizes - 1)
      (fun i ->
        let fan_in = sizes.(i) and fan_out = sizes.(i + 1) in
        { w = Tensor.random_he rng fan_out fan_in;
          b = Array.make fan_out 0.0;
          mw = Tensor.create fan_out fan_in;
          vw = Tensor.create fan_out fan_in;
          mb = Array.make fan_out 0.0;
          vb = Array.make fan_out 0.0 })
  in
  { layers; arch = Array.copy sizes; step = 0 }

let sizes t = Array.copy t.arch

let num_weights t =
  Array.fold_left
    (fun acc l -> acc + (l.w.Tensor.rows * l.w.Tensor.cols) + Array.length l.b)
    0 t.layers

(* Forward pass keeping pre-activations (z) and activations (a) of every
   layer for backprop. *)
let forward t x =
  let n = Array.length t.layers in
  let zs = Array.make n x and activations = Array.make (n + 1) x in
  for i = 0 to n - 1 do
    let l = t.layers.(i) in
    let z = Tensor.matmul_nt activations.(i) l.w in
    Tensor.add_row_inplace z l.b;
    zs.(i) <- z;
    let a = if i = n - 1 then z else begin
        let a = Tensor.copy z in
        Tensor.relu_inplace a;
        a
      end
    in
    activations.(i + 1) <- a
  done;
  (zs, activations)

let predict t x =
  let _, activations = forward t x in
  let out = activations.(Array.length t.layers) in
  assert (out.Tensor.cols = 1);
  Array.copy out.Tensor.data

let predict_one t features =
  let x = Tensor.of_array ~rows:1 ~cols:(Array.length features) features in
  (predict t x).(0)

type adam = { lr : float; beta1 : float; beta2 : float; epsilon : float }

let default_adam = { lr = 1e-3; beta1 = 0.9; beta2 = 0.999; epsilon = 1e-8 }

let adam_update opt ~step ~m ~v ~g ~theta =
  let n = Array.length theta in
  let bc1 = 1.0 -. (opt.beta1 ** float_of_int step) in
  let bc2 = 1.0 -. (opt.beta2 ** float_of_int step) in
  for i = 0 to n - 1 do
    m.(i) <- (opt.beta1 *. m.(i)) +. ((1.0 -. opt.beta1) *. g.(i));
    v.(i) <- (opt.beta2 *. v.(i)) +. ((1.0 -. opt.beta2) *. g.(i) *. g.(i));
    let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
    theta.(i) <- theta.(i) -. (opt.lr *. mhat /. (sqrt vhat +. opt.epsilon))
  done

let train_batch t opt ~x ~y =
  let batch = x.Tensor.rows in
  assert (Array.length y = batch);
  let n = Array.length t.layers in
  let zs, activations = forward t x in
  let out = activations.(n) in
  (* MSE and its gradient on the linear output. *)
  let loss = ref 0.0 in
  let delta = Tensor.create batch 1 in
  for i = 0 to batch - 1 do
    let d = out.Tensor.data.(i) -. y.(i) in
    loss := !loss +. (d *. d);
    delta.Tensor.data.(i) <- 2.0 *. d /. float_of_int batch
  done;
  t.step <- t.step + 1;
  let delta = ref delta in
  for i = n - 1 downto 0 do
    let l = t.layers.(i) in
    let dw = Tensor.matmul_tn !delta activations.(i) in
    let db = Tensor.col_sums !delta in
    if i > 0 then begin
      let d_prev = Tensor.matmul_nn !delta l.w in
      Tensor.relu_mask_inplace d_prev zs.(i - 1);
      delta := d_prev
    end;
    adam_update opt ~step:t.step ~m:l.mw.Tensor.data ~v:l.vw.Tensor.data
      ~g:dw.Tensor.data ~theta:l.w.Tensor.data;
    adam_update opt ~step:t.step ~m:l.mb ~v:l.vb ~g:db ~theta:l.b
  done;
  !loss /. float_of_int batch

let mse t ~x ~y =
  let pred = predict t x in
  Util.Stats.mse pred y

let copy t =
  { layers =
      Array.map
        (fun l ->
          { w = Tensor.copy l.w; b = Array.copy l.b; mw = Tensor.copy l.mw;
            vw = Tensor.copy l.vw; mb = Array.copy l.mb; vb = Array.copy l.vb })
        t.layers;
    arch = Array.copy t.arch;
    step = t.step }

let save_buf buf t =
  Buffer.add_string buf (Printf.sprintf "mlp %d\n" (Array.length t.arch));
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%d " s)) t.arch;
  Buffer.add_string buf (Printf.sprintf "\n%d\n" t.step);
  Array.iter
    (fun l ->
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g " v))
        l.w.Tensor.data;
      Buffer.add_char buf '\n';
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g " v)) l.b;
      Buffer.add_char buf '\n')
    t.layers

let save t oc =
  let buf = Buffer.create 4096 in
  save_buf buf t;
  Buffer.output_buffer oc buf

let load_from line =
  let header = line () in
  let arch_len = Scanf.sscanf header "mlp %d" Fun.id in
  let arch =
    let parts =
      String.split_on_char ' ' (String.trim (line ())) |> List.map int_of_string
    in
    assert (List.length parts = arch_len);
    Array.of_list parts
  in
  let step = int_of_string (String.trim (line ())) in
  let floats_of_line l =
    String.split_on_char ' ' (String.trim l)
    |> List.filter (fun s -> s <> "")
    |> List.map float_of_string
    |> Array.of_list
  in
  let layers =
    Array.init (arch_len - 1) (fun i ->
        let fan_in = arch.(i) and fan_out = arch.(i + 1) in
        let wdata = floats_of_line (line ()) in
        assert (Array.length wdata = fan_in * fan_out);
        let b = floats_of_line (line ()) in
        assert (Array.length b = fan_out);
        { w = Tensor.of_array ~rows:fan_out ~cols:fan_in wdata;
          b;
          mw = Tensor.create fan_out fan_in;
          vw = Tensor.create fan_out fan_in;
          mb = Array.make fan_out 0.0;
          vb = Array.make fan_out 0.0 })
  in
  { layers; arch; step }

let load ic = load_from (fun () -> input_line ic)
