type layer = {
  w : Tensor.t;          (* out × in *)
  b : float array;       (* out *)
  (* Adam first/second moments *)
  mw : Tensor.t;
  vw : Tensor.t;
  mb : float array;
  vb : float array;
}

type t = {
  layers : layer array;
  arch : int array;
  mutable step : int;   (* Adam timestep *)
}

let create rng ~sizes =
  assert (Array.length sizes >= 2);
  assert (sizes.(Array.length sizes - 1) = 1);
  let layers =
    Array.init
      (Array.length sizes - 1)
      (fun i ->
        let fan_in = sizes.(i) and fan_out = sizes.(i + 1) in
        { w = Tensor.random_he rng fan_out fan_in;
          b = Array.make fan_out 0.0;
          mw = Tensor.create fan_out fan_in;
          vw = Tensor.create fan_out fan_in;
          mb = Array.make fan_out 0.0;
          vb = Array.make fan_out 0.0 })
  in
  { layers; arch = Array.copy sizes; step = 0 }

let sizes t = Array.copy t.arch

let num_weights t =
  Array.fold_left
    (fun acc l -> acc + (l.w.Tensor.rows * l.w.Tensor.cols) + Array.length l.b)
    0 t.layers

(* Forward pass keeping pre-activations (z) and activations (a) of every
   layer for backprop. *)
let forward t x =
  let n = Array.length t.layers in
  let zs = Array.make n x and activations = Array.make (n + 1) x in
  for i = 0 to n - 1 do
    let l = t.layers.(i) in
    let z = Tensor.matmul_nt activations.(i) l.w in
    Tensor.add_row_inplace z l.b;
    zs.(i) <- z;
    let a = if i = n - 1 then z else begin
        let a = Tensor.copy z in
        Tensor.relu_inplace a;
        a
      end
    in
    activations.(i + 1) <- a
  done;
  (zs, activations)

let predict t x =
  let _, activations = forward t x in
  let out = activations.(Array.length t.layers) in
  assert (out.Tensor.cols = 1);
  Array.copy out.Tensor.data

let predict_one t features =
  let x = Tensor.of_array ~rows:1 ~cols:(Array.length features) features in
  (predict t x).(0)

(* Batched inference over Bigarray storage, the planning hot path. One
   matrix product per layer over the whole batch; rows are processed in
   blocks of eight so each weight load is amortized over eight
   activations and, more importantly, eight independent accumulator
   chains are in flight at once — a single row's dot product is a
   serial FMA dependency chain (the bit-identity contract fixes its
   order), so latency can only be hidden across rows. Per output
   element the arithmetic is the same single-accumulator ascending-k
   dot product as Tensor.matmul_nt followed by the same [+ bias] and
   [< 0 -> 0] relu, so the result is bit-identical to [predict] on the
   same rows — the float contract the scalar/batched differential
   tests pin down. *)
let forward_batch t ~input =
  assert (input.Matrix.cols = t.arch.(0));
  let n = input.Matrix.rows in
  let nlayers = Array.length t.layers in
  let cur = ref input in
  for li = 0 to nlayers - 1 do
    let l = t.layers.(li) in
    let fan_in = (!cur).Matrix.cols in
    let fan_out = Array.length l.b in
    assert (l.w.Tensor.cols = fan_in && l.w.Tensor.rows = fan_out);
    let out = Matrix.create n fan_out in
    let xd = (!cur).Matrix.data and od = out.Matrix.data in
    let wd = l.w.Tensor.data in
    let b = l.b in
    let relu = li < nlayers - 1 in
    (* The relu is inlined as a local branch (not a closure): a closure
       call here boxes its float argument on every output element. *)
    let i = ref 0 in
    while !i + 8 <= n do
      let x0 = !i * fan_in in
      let x1 = x0 + fan_in and x2 = x0 + (2 * fan_in) and x3 = x0 + (3 * fan_in)
      and x4 = x0 + (4 * fan_in) and x5 = x0 + (5 * fan_in)
      and x6 = x0 + (6 * fan_in) and x7 = x0 + (7 * fan_in) in
      let o0 = !i * fan_out in
      for j = 0 to fan_out - 1 do
        let wbase = j * fan_in in
        let acc0 = ref 0.0 and acc1 = ref 0.0 and acc2 = ref 0.0
        and acc3 = ref 0.0 and acc4 = ref 0.0 and acc5 = ref 0.0
        and acc6 = ref 0.0 and acc7 = ref 0.0 in
        for k = 0 to fan_in - 1 do
          let w = Array.unsafe_get wd (wbase + k) in
          acc0 := !acc0 +. (Bigarray.Array1.unsafe_get xd (x0 + k) *. w);
          acc1 := !acc1 +. (Bigarray.Array1.unsafe_get xd (x1 + k) *. w);
          acc2 := !acc2 +. (Bigarray.Array1.unsafe_get xd (x2 + k) *. w);
          acc3 := !acc3 +. (Bigarray.Array1.unsafe_get xd (x3 + k) *. w);
          acc4 := !acc4 +. (Bigarray.Array1.unsafe_get xd (x4 + k) *. w);
          acc5 := !acc5 +. (Bigarray.Array1.unsafe_get xd (x5 + k) *. w);
          acc6 := !acc6 +. (Bigarray.Array1.unsafe_get xd (x6 + k) *. w);
          acc7 := !acc7 +. (Bigarray.Array1.unsafe_get xd (x7 + k) *. w)
        done;
        let bias = Array.unsafe_get b j in
        let v0 = !acc0 +. bias and v1 = !acc1 +. bias and v2 = !acc2 +. bias
        and v3 = !acc3 +. bias and v4 = !acc4 +. bias and v5 = !acc5 +. bias
        and v6 = !acc6 +. bias and v7 = !acc7 +. bias in
        let v0 = if relu && v0 < 0.0 then 0.0 else v0 in
        let v1 = if relu && v1 < 0.0 then 0.0 else v1 in
        let v2 = if relu && v2 < 0.0 then 0.0 else v2 in
        let v3 = if relu && v3 < 0.0 then 0.0 else v3 in
        let v4 = if relu && v4 < 0.0 then 0.0 else v4 in
        let v5 = if relu && v5 < 0.0 then 0.0 else v5 in
        let v6 = if relu && v6 < 0.0 then 0.0 else v6 in
        let v7 = if relu && v7 < 0.0 then 0.0 else v7 in
        Bigarray.Array1.unsafe_set od (o0 + j) v0;
        Bigarray.Array1.unsafe_set od (o0 + fan_out + j) v1;
        Bigarray.Array1.unsafe_set od (o0 + (2 * fan_out) + j) v2;
        Bigarray.Array1.unsafe_set od (o0 + (3 * fan_out) + j) v3;
        Bigarray.Array1.unsafe_set od (o0 + (4 * fan_out) + j) v4;
        Bigarray.Array1.unsafe_set od (o0 + (5 * fan_out) + j) v5;
        Bigarray.Array1.unsafe_set od (o0 + (6 * fan_out) + j) v6;
        Bigarray.Array1.unsafe_set od (o0 + (7 * fan_out) + j) v7
      done;
      i := !i + 8
    done;
    (* Ragged tail: fewer than eight rows left. *)
    while !i < n do
      let xbase = !i * fan_in and obase = !i * fan_out in
      for j = 0 to fan_out - 1 do
        let wbase = j * fan_in in
        let acc = ref 0.0 in
        for k = 0 to fan_in - 1 do
          acc :=
            !acc
            +. (Bigarray.Array1.unsafe_get xd (xbase + k)
                *. Array.unsafe_get wd (wbase + k))
        done;
        let v = !acc +. Array.unsafe_get b j in
        let v = if relu && v < 0.0 then 0.0 else v in
        Bigarray.Array1.unsafe_set od (obase + j) v
      done;
      incr i
    done;
    cur := out
  done;
  !cur

let predict_matrix t x =
  let out = forward_batch t ~input:x in
  assert (out.Matrix.cols = 1);
  Matrix.to_array out

type adam = { lr : float; beta1 : float; beta2 : float; epsilon : float }

let default_adam = { lr = 1e-3; beta1 = 0.9; beta2 = 0.999; epsilon = 1e-8 }

let adam_update opt ~step ~m ~v ~g ~theta =
  let n = Array.length theta in
  let bc1 = 1.0 -. (opt.beta1 ** float_of_int step) in
  let bc2 = 1.0 -. (opt.beta2 ** float_of_int step) in
  for i = 0 to n - 1 do
    m.(i) <- (opt.beta1 *. m.(i)) +. ((1.0 -. opt.beta1) *. g.(i));
    v.(i) <- (opt.beta2 *. v.(i)) +. ((1.0 -. opt.beta2) *. g.(i) *. g.(i));
    let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
    theta.(i) <- theta.(i) -. (opt.lr *. mhat /. (sqrt vhat +. opt.epsilon))
  done

let train_batch t opt ~x ~y =
  let batch = x.Tensor.rows in
  assert (Array.length y = batch);
  let n = Array.length t.layers in
  let zs, activations = forward t x in
  let out = activations.(n) in
  (* MSE and its gradient on the linear output. *)
  let loss = ref 0.0 in
  let delta = Tensor.create batch 1 in
  for i = 0 to batch - 1 do
    let d = out.Tensor.data.(i) -. y.(i) in
    loss := !loss +. (d *. d);
    delta.Tensor.data.(i) <- 2.0 *. d /. float_of_int batch
  done;
  t.step <- t.step + 1;
  let delta = ref delta in
  for i = n - 1 downto 0 do
    let l = t.layers.(i) in
    let dw = Tensor.matmul_tn !delta activations.(i) in
    let db = Tensor.col_sums !delta in
    if i > 0 then begin
      let d_prev = Tensor.matmul_nn !delta l.w in
      Tensor.relu_mask_inplace d_prev zs.(i - 1);
      delta := d_prev
    end;
    adam_update opt ~step:t.step ~m:l.mw.Tensor.data ~v:l.vw.Tensor.data
      ~g:dw.Tensor.data ~theta:l.w.Tensor.data;
    adam_update opt ~step:t.step ~m:l.mb ~v:l.vb ~g:db ~theta:l.b
  done;
  !loss /. float_of_int batch

let mse t ~x ~y =
  let pred = predict t x in
  Util.Stats.mse pred y

let copy t =
  { layers =
      Array.map
        (fun l ->
          { w = Tensor.copy l.w; b = Array.copy l.b; mw = Tensor.copy l.mw;
            vw = Tensor.copy l.vw; mb = Array.copy l.mb; vb = Array.copy l.vb })
        t.layers;
    arch = Array.copy t.arch;
    step = t.step }

let save_buf buf t =
  Buffer.add_string buf (Printf.sprintf "mlp %d\n" (Array.length t.arch));
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%d " s)) t.arch;
  Buffer.add_string buf (Printf.sprintf "\n%d\n" t.step);
  Array.iter
    (fun l ->
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g " v))
        l.w.Tensor.data;
      Buffer.add_char buf '\n';
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g " v)) l.b;
      Buffer.add_char buf '\n')
    t.layers

let save t oc =
  let buf = Buffer.create 4096 in
  save_buf buf t;
  Buffer.output_buffer oc buf

let load_from line =
  let header = line () in
  let arch_len = Scanf.sscanf header "mlp %d" Fun.id in
  let arch =
    let parts =
      String.split_on_char ' ' (String.trim (line ())) |> List.map int_of_string
    in
    assert (List.length parts = arch_len);
    Array.of_list parts
  in
  let step = int_of_string (String.trim (line ())) in
  let floats_of_line l =
    String.split_on_char ' ' (String.trim l)
    |> List.filter (fun s -> s <> "")
    |> List.map float_of_string
    |> Array.of_list
  in
  let layers =
    Array.init (arch_len - 1) (fun i ->
        let fan_in = arch.(i) and fan_out = arch.(i + 1) in
        let wdata = floats_of_line (line ()) in
        assert (Array.length wdata = fan_in * fan_out);
        let b = floats_of_line (line ()) in
        assert (Array.length b = fan_out);
        { w = Tensor.of_array ~rows:fan_out ~cols:fan_in wdata;
          b;
          mw = Tensor.create fan_out fan_in;
          vw = Tensor.create fan_out fan_in;
          mb = Array.make fan_out 0.0;
          vb = Array.make fan_out 0.0 })
  in
  { layers; arch; step }

let load ic = load_from (fun () -> input_line ic)
