type storage =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : storage }

let create rows cols =
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.0;
  { rows; cols; data }

let of_array ~rows ~cols a =
  assert (Array.length a = rows * cols);
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  for i = 0 to (rows * cols) - 1 do
    Bigarray.Array1.unsafe_set data i (Array.unsafe_get a i)
  done;
  { rows; cols; data }

let to_array t =
  Array.init (t.rows * t.cols) (fun i -> Bigarray.Array1.unsafe_get t.data i)

let of_tensor (x : Tensor.t) =
  of_array ~rows:x.Tensor.rows ~cols:x.Tensor.cols x.Tensor.data

let get t i j =
  assert (i >= 0 && i < t.rows && j >= 0 && j < t.cols);
  Bigarray.Array1.get t.data ((i * t.cols) + j)

let set t i j v =
  assert (i >= 0 && i < t.rows && j >= 0 && j < t.cols);
  Bigarray.Array1.set t.data ((i * t.cols) + j) v

(* Row-major rows are contiguous, so a row range is a contiguous span of
   the underlying Array1 — Bigarray.Array1.sub shares storage. *)
let sub_rows t ~off ~len =
  assert (off >= 0 && len >= 0 && off + len <= t.rows);
  { rows = len; cols = t.cols;
    data = Bigarray.Array1.sub t.data (off * t.cols) (len * t.cols) }
