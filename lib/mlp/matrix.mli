(** Unboxed row-major matrices over [Bigarray] storage — the batched
    inference counterpart of {!Tensor}.

    {!Tensor} keeps activations in OCaml [float array]s, which is ideal
    for training (the GC understands them, gradients alias them) but
    bounds-checked on every access. The planning hot path evaluates the
    MLP over tens of thousands of candidate configurations per query, so
    it stores the feature batch in a [Bigarray.Array1] of unboxed
    doubles instead: rows can be sliced into zero-copy views for domain
    fan-out, and the inference kernels in {!Network.forward_batch} walk
    the storage with unchecked loads.

    Shape convention (same as {!Tensor}): a batch is [rows × cols] with
    one configuration's feature vector per {e row}, stored row-major —
    element [(i, j)] lives at linear index [i * cols + j]. *)

type storage =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  rows : int;
  cols : int;
  data : storage;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> t
(** [create rows cols] is a zero-filled [rows × cols] matrix. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Copy a row-major [float array] (length must be [rows * cols]) into
    fresh Bigarray storage. *)

val to_array : t -> float array
(** Copy back out to a row-major [float array] (for tests and for
    callers that hand results to {!Tensor}-based code). *)

val of_tensor : Tensor.t -> t
(** Copy a {!Tensor} batch into Bigarray storage, preserving shape. *)

val get : t -> int -> int -> float
(** [get m i j] is element [(i, j)]. Bounds-checked; the inference
    kernels use unchecked access internally instead. *)

val set : t -> int -> int -> float -> unit
(** [set m i j v] stores element [(i, j)]. Bounds-checked. *)

val sub_rows : t -> off:int -> len:int -> t
(** [sub_rows m ~off ~len] is a zero-copy view of rows
    [off .. off+len-1]: the view shares storage with [m] (writes are
    visible in both). Rows are contiguous in row-major layout, so this
    is how the batched scorer hands each domain its slice of one shared
    feature matrix without copying. *)
