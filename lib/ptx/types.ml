type dtype = F16 | F32 | F64

let dtype_bytes = function F16 -> 2 | F32 -> 4 | F64 -> 8
let dtype_name = function F16 -> "f16" | F32 -> "f32" | F64 -> "f64"

(* Round through IEEE binary16: clamp exponent range, truncate mantissa to
   10 bits with round-to-nearest-even via the float32 path. This is enough
   fidelity for functional tests (we never rely on subnormal behaviour). *)
let round_half x =
  if Float.is_nan x then x
  else if Float.abs x > 65504.0 then if x > 0.0 then Float.infinity else Float.neg_infinity
  else if x = 0.0 then x
  else begin
    let bits = Int32.bits_of_float x in
    let sign = Int32.logand bits 0x80000000l in
    let abs_bits = Int32.logand bits 0x7FFFFFFFl in
    let abs = Int32.float_of_bits abs_bits in
    if abs < 0x1p-24 then Int32.float_of_bits sign (* below half subnormal min: flush *)
    else begin
      (* scale so that ulp(half) becomes ulp at the f32 level, then round by
         adding and subtracting. Simpler: quantize mantissa manually. *)
      let m = Float.abs x in
      let e = Float.floor (Float.log2 m) in
      let e = Float.max e (-14.0) in
      let ulp = Float.pow 2.0 (e -. 10.0) in
      let q = Float.round (m /. ulp) *. ulp in
      if x < 0.0 then -.q else q
    end
  end

type freg = int
type ireg = int
type preg = int

type special =
  | Tid_x | Tid_y | Tid_z
  | Ctaid_x | Ctaid_y | Ctaid_z
  | Ntid_x | Ntid_y | Ntid_z
  | Nctaid_x | Nctaid_y | Nctaid_z

type ioperand =
  | Ireg of ireg
  | Iimm of int
  | Iparam of int
  | Ispecial of special

type foperand =
  | Freg of freg
  | Fimm of float

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let cmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let eval_cmp c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

type space = Global | Shared
