(** Assembler for the mini-PTX textual form.

    Parses exactly the dialect {!Disasm.program} emits, closing the
    loop: [parse (Disasm.program p)] returns a program structurally equal
    to [p] (float immediates are printed with 17 significant digits so
    the round-trip is lossless). Useful for storing kernels as text, for
    hand-writing test kernels, and as a guarantee that the printed form
    carries all program information. *)

val parse : string -> (Program.t, string) result
(** Parse a full kernel listing. Errors carry a line number and a
    message. The parsed program is {!Program.validate}d. *)

val parse_exn : string -> Program.t
(** Like {!parse}; raises [Failure]. *)
