type mix = {
  ialu : int;
  fma : int;
  fp_other : int;
  ld_global : int;
  st_global : int;
  ld_shared : int;
  st_shared : int;
  atom : int;
  bar : int;
  branch : int;
  pred : int;
  mov : int;
}

let zero =
  { ialu = 0; fma = 0; fp_other = 0; ld_global = 0; st_global = 0;
    ld_shared = 0; st_shared = 0; atom = 0; bar = 0; branch = 0; pred = 0; mov = 0 }

let add a b =
  { ialu = a.ialu + b.ialu;
    fma = a.fma + b.fma;
    fp_other = a.fp_other + b.fp_other;
    ld_global = a.ld_global + b.ld_global;
    st_global = a.st_global + b.st_global;
    ld_shared = a.ld_shared + b.ld_shared;
    st_shared = a.st_shared + b.st_shared;
    atom = a.atom + b.atom;
    bar = a.bar + b.bar;
    branch = a.branch + b.branch;
    pred = a.pred + b.pred;
    mov = a.mov + b.mov }

let total m =
  m.ialu + m.fma + m.fp_other + m.ld_global + m.st_global + m.ld_shared
  + m.st_shared + m.atom + m.bar + m.branch + m.pred + m.mov

let count_instr m (i : Instr.t) =
  match Instr.categorize i.op with
  | None -> m
  | Some Cat_ialu -> { m with ialu = m.ialu + 1 }
  | Some Cat_fma -> { m with fma = m.fma + 1 }
  | Some Cat_fp_other -> { m with fp_other = m.fp_other + 1 }
  | Some Cat_ld_global -> { m with ld_global = m.ld_global + 1 }
  | Some Cat_st_global -> { m with st_global = m.st_global + 1 }
  | Some Cat_ld_shared -> { m with ld_shared = m.ld_shared + 1 }
  | Some Cat_st_shared -> { m with st_shared = m.st_shared + 1 }
  | Some Cat_atom -> { m with atom = m.atom + 1 }
  | Some Cat_bar -> { m with bar = m.bar + 1 }
  | Some Cat_branch -> { m with branch = m.branch + 1 }
  | Some Cat_pred -> { m with pred = m.pred + 1 }
  | Some Cat_mov -> { m with mov = m.mov + 1 }

let of_program (p : Program.t) = Array.fold_left count_instr zero p.body

let between_labels (p : Program.t) ~start ~stop =
  let labels = Program.find_labels p in
  let find name =
    match Hashtbl.find_opt labels name with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: no label %S" p.name name)
  in
  match (find start, find stop) with
  | Error e, _ | _, Error e -> Error e
  | Ok i0, Ok i1 ->
    if i1 < i0 then
      Error
        (Printf.sprintf "%s: label %S (pc %d) precedes %S (pc %d)" p.name stop
           i1 start i0)
    else begin
      let m = ref zero in
      for i = i0 + 1 to i1 - 1 do
        m := count_instr !m p.body.(i)
      done;
      Ok !m
    end
