open Types

let special_name = function
  | Tid_x -> "%tid.x" | Tid_y -> "%tid.y" | Tid_z -> "%tid.z"
  | Ctaid_x -> "%ctaid.x" | Ctaid_y -> "%ctaid.y" | Ctaid_z -> "%ctaid.z"
  | Ntid_x -> "%ntid.x" | Ntid_y -> "%ntid.y" | Ntid_z -> "%ntid.z"
  | Nctaid_x -> "%nctaid.x" | Nctaid_y -> "%nctaid.y" | Nctaid_z -> "%nctaid.z"

let operand_i = function
  | Ireg r -> Printf.sprintf "%%r%d" r
  | Iimm v -> string_of_int v
  | Iparam p -> Printf.sprintf "%%param%d" p
  | Ispecial s -> special_name s

let operand_f = function
  | Freg r -> Printf.sprintf "%%f%d" r
  | Fimm v -> Printf.sprintf "%.17g" v

let instr dtype { Instr.op; guard } =
  let ty = dtype_name dtype in
  let g =
    match guard with
    | None -> ""
    | Some (p, true) -> Printf.sprintf "@%%p%d " p
    | Some (p, false) -> Printf.sprintf "@!%%p%d " p
  in
  let i3 name d a b =
    Printf.sprintf "%s.s32 %%r%d, %s, %s" name d (operand_i a) (operand_i b)
  in
  let f3 name d a b =
    Printf.sprintf "%s.%s %%f%d, %s, %s" name ty d (operand_f a) (operand_f b)
  in
  let body =
    match op with
    | Instr.Mov (d, a) -> Printf.sprintf "mov.s32 %%r%d, %s" d (operand_i a)
    | Movf (d, a) -> Printf.sprintf "mov.%s %%f%d, %s" ty d (operand_f a)
    | Iadd (d, a, b) -> i3 "add" d a b
    | Isub (d, a, b) -> i3 "sub" d a b
    | Imul (d, a, b) -> i3 "mul.lo" d a b
    | Imad (d, a, b, c) ->
      Printf.sprintf "mad.lo.s32 %%r%d, %s, %s, %s" d (operand_i a) (operand_i b) (operand_i c)
    | Idiv (d, a, b) -> i3 "div" d a b
    | Irem (d, a, b) -> i3 "rem" d a b
    | Imin (d, a, b) -> i3 "min" d a b
    | Imax (d, a, b) -> i3 "max" d a b
    | Ishl (d, a, b) -> i3 "shl.b32" d a b
    | Ishr (d, a, b) -> i3 "shr.b32" d a b
    | Iand (d, a, b) -> i3 "and.b32" d a b
    | Ior (d, a, b) -> i3 "or.b32" d a b
    | Setp (c, p, a, b) ->
      Printf.sprintf "setp.%s.s32 %%p%d, %s, %s" (cmp_name c) p (operand_i a) (operand_i b)
    | And_p (d, a, b) -> Printf.sprintf "and.pred %%p%d, %%p%d, %%p%d" d a b
    | Or_p (d, a, b) -> Printf.sprintf "or.pred %%p%d, %%p%d, %%p%d" d a b
    | Not_p (d, a) -> Printf.sprintf "not.pred %%p%d, %%p%d" d a
    | Fadd (d, a, b) -> f3 "add" d a b
    | Fsub (d, a, b) -> f3 "sub" d a b
    | Fmul (d, a, b) -> f3 "mul" d a b
    | Fmax (d, a, b) -> f3 "max" d a b
    | Fmin (d, a, b) -> f3 "min" d a b
    | Ffma (d, a, b, c) ->
      Printf.sprintf "fma.rn.%s %%f%d, %s, %s, %s" ty d (operand_f a) (operand_f b) (operand_f c)
    | Ld_global (d, slot, addr) ->
      Printf.sprintf "ld.global.%s %%f%d, [%%param_buf%d + %s]" ty d slot (operand_i addr)
    | Ld_global_i (d, slot, addr) ->
      Printf.sprintf "ld.global.s32 %%r%d, [%%param_buf%d + %s]" d slot (operand_i addr)
    | Ld_shared (d, addr) ->
      Printf.sprintf "ld.shared.%s %%f%d, [%s]" ty d (operand_i addr)
    | Ld_shared_i (d, addr) ->
      Printf.sprintf "ld.shared.s32 %%r%d, [%s]" d (operand_i addr)
    | St_global (slot, addr, v) ->
      Printf.sprintf "st.global.%s [%%param_buf%d + %s], %s" ty slot (operand_i addr) (operand_f v)
    | St_shared (addr, v) ->
      Printf.sprintf "st.shared.%s [%s], %s" ty (operand_i addr) (operand_f v)
    | St_shared_i (addr, v) ->
      Printf.sprintf "st.shared.s32 [%s], %s" (operand_i addr) (operand_i v)
    | Atom_global_add (slot, addr, v) ->
      Printf.sprintf "red.global.add.%s [%%param_buf%d + %s], %s" ty slot (operand_i addr)
        (operand_f v)
    | Label name -> Printf.sprintf "%s:" name
    | Bra target -> Printf.sprintf "bra %s" target
    | Bar -> "bar.sync 0"
    | Ret -> "ret"
  in
  match op with Label _ -> body | _ -> "  " ^ g ^ body

let program (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf ".visible .entry %s (  // dtype=%s\n" p.name (dtype_name p.dtype));
  Array.iteri
    (fun i name -> Buffer.add_string buf (Printf.sprintf "  .param .u64 %s,  // buf%d\n" name i))
    p.buf_params;
  Array.iteri
    (fun i name -> Buffer.add_string buf (Printf.sprintf "  .param .s32 %s   // param%d\n" name i))
    p.int_params;
  Buffer.add_string buf ")\n";
  Buffer.add_string buf
    (Printf.sprintf "{ // %d fregs, %d iregs, %d pregs, %d shared words, %d shared int words\n"
       p.n_fregs p.n_iregs p.n_pregs p.shared_words p.shared_int_words);
  Array.iter
    (fun i ->
      Buffer.add_string buf (instr p.dtype i);
      Buffer.add_char buf '\n')
    p.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
