(** Static scoreboard: dependency/stall scheduling, critical paths and
    register pressure over mini-PTX.

    Runs after {!Verify} on the same {!Cfg} substrate. Three analyses:

    - {b issue model}: an in-order, single-issue-per-cycle scoreboard per
      basic block (classic CDC-6600 style, no renaming): every
      instruction issues when its operands are ready, RAW and WAW hazards
      stall the issue stage, results complete after a per-class latency
      (ALU/FMA/shared/global). [bar.sync] drains all outstanding results.
      Shared memory is modelled as one pseudo-location: a shared load
      waits for the latest preceding shared store (the generators
      separate writers from readers with barriers, so finer disambiguation
      would not change the schedule). Note that reusing one staging
      register across cooperative loads serializes them here exactly as
      on hardware — the scoreboard has no renaming, by design.

    - {b loop steady state}: natural loops are recovered from back edges
      (an edge to an earlier-or-equal block; correct for the reducible
      CFGs our generators emit). The loop body is simulated twice
      back-to-back and the second copy is measured, so loop-carried
      dependences (FMA accumulator chains, the loop counter) appear in
      the steady-state stall counts exactly once per iteration.

    - {b pressure / ILP}: peak simultaneously-live registers per class
      (delegated to {!Regalloc.pressure}) and a dependence-depth ILP
      estimate (issued instructions over critical dependence chain
      length, an independent-window width).

    The {!summary} is what downstream layers consume: the
    latency-pipeline term of [Gpu.Perf_model], the [~schedule:true]
    extended features of [Tuner.Features], and the scheduling lints
    surfaced through {!Verify}. *)

(** Result-availability latencies in cycles, per instruction class, plus
    the issue cost of one instruction. Defaults approximate a Pascal-era
    SM (the device table's [fma_latency] is 6). *)
type latency = {
  alu : int;     (** integer ALU, predicate logic, moves *)
  fma : int;     (** FMA and other floating-point *)
  shared : int;  (** shared-memory load-to-use *)
  global : int;  (** global-memory load-to-use *)
}

val default_latency : latency

(** Issue-pipe classes used for dual-issue pairing. *)
type pipe = P_fp | P_ialu | P_mem | P_ctrl

val pipe_of : Instr.op -> pipe option
(** [None] for [Label] (never issued). *)

val cat_index : Instr.category -> int
(** Stable index of a category in {!block_sched.mix}, following the
    field order of [Interp.counters]: ialu, fma, fp_other, ld_global,
    st_global, ld_shared, st_shared, atom, bar, branch, pred, mov. *)

val n_categories : int

type block_sched = {
  block : int;          (** {!Cfg.block} id *)
  issued : int;         (** issue slots (every non-[Label] instruction) *)
  cycles : int;         (** issue cycles incl. stalls, inputs ready at 0 *)
  stall_cycles : int;   (** cycles the issue stage waited on hazards *)
  crit_path : int;      (** dependence critical path in cycles (infinite
                            issue width, latencies only) *)
  dep_depth : int;      (** critical dependence chain in instructions *)
  dual_issue : int;     (** adjacent independent different-pipe pairs *)
  mix : int array;      (** static issue-slot count per category,
                            indexed by {!cat_index} *)
}

type loop_sched = {
  header : int;           (** header block id (the back edge's target) *)
  latch : int;            (** latch block id (the back edge's source) *)
  body : int list;        (** block ids of the body, ascending *)
  body_issued : int;      (** issue slots per iteration *)
  steady_cycles : int;    (** cycles per steady-state iteration *)
  steady_stalls : int;    (** stall cycles per steady-state iteration *)
  steady_fmas : int;      (** FMA issue slots per iteration *)
  carried_crit_path : int;
      (** cycles the dependence critical path grows per iteration: the
          loop-carried chain (accumulators, induction variables) *)
}

type summary = {
  stalls_per_slot : float;  (** steady-state stall cycles per issue slot
                                in the hottest region *)
  fma_issue_rate : float;   (** FMAs per cycle a single warp sustains in
                                the hot region: [fma / (fma + fp_stalls)]
                                where [fp_stalls] are only the stall
                                cycles whose {e binding} dependence was
                                produced by the FP pipe — the accumulator
                                chain hazard. 1.0 when FP dependences are
                                fully covered, 0.0 for FMA-free kernels,
                                and [u/L] for [u] independent accumulators
                                against FMA latency [L] (a strict
                                refinement of the closed-form
                                [min(1, ilp/fma_latency)]). Measured under
                                compute-side latencies — loads are
                                fire-and-forget here, since their latency
                                is charged to the memory/shared pipeline
                                terms (warp multithreading hides it), not
                                the per-warp arithmetic ceiling *)
  crit_path_cycles : int;   (** hot-region dependence critical path per
                                iteration (whole program when loop-free) *)
  dual_issue_frac : float;  (** dual-issue opportunities per issue slot *)
  ilp : float;              (** issued / dependence depth in the hot region *)
  peak_fregs : int;         (** {!Regalloc.pressure} MaxLive *)
  peak_iregs : int;
  peak_pregs : int;
  hot_loop : int option;    (** header id of the loop the summary is
                                taken from; [None] = whole program *)
}

type t = {
  blocks : block_sched array;
  loops : loop_sched list;
  summary : summary;
}

val analyze : ?lat:latency -> Program.t -> (t, string) result
(** Whole-program analysis. [Error] only when the CFG cannot be built
    (same conditions as {!Cfg.build}; a [Verify]-clean program always
    analyzes). *)

val instr_stalls : ?lat:latency -> Program.t -> (int array, string) result
(** Per-original-pc stall cycles from the same per-block first-execution
    schedule {!analyze} reports ([Label] entries are 0; block sums equal
    {!block_sched.stall_cycles}). [Encode] embeds these as per-word
    control info, mirroring real SASS encoders. [Error] iff the CFG
    cannot be built. *)

(** {1 Scheduling lints}

    Computed from the same def-use and liveness information; surfaced as
    warnings by {!Verify} and [isaac_lint]. *)

type lint =
  | Dead_store of { pc : int; reg : Dataflow.reg }
      (** an unguarded definition never read before being overwritten (or
          the end of all paths); for loads, the loaded value is unused *)
  | Unread_register of Dataflow.reg
      (** written somewhere but never read by any instruction *)
  | Unreachable_code of { pc : int }
      (** first instruction of a CFG-unreachable block *)
  | Redundant_barrier of { pc : int }
      (** a [bar.sync] with no shared-memory access since the previous
          barrier of the same block *)

val lint_message : lint -> int option * string
(** Location and human-readable text of a lint. *)

val lint : Program.t -> lint list
(** Empty for programs whose CFG cannot be built (Verify reports those
    as structural errors already). *)

(** {1 Static trip counts}

    A uniform scalar abstract execution per CTA: integer and predicate
    register files over known/unknown lattice values, thread-id-dependent
    values unknown, loads unknown, parameters bound through [iargs].
    Every branch decision must be statically known and uniform, which
    holds for the generators' predicated kernels (the main-loop bound is
    a function of K, U and ctaid only). *)

val block_trips :
  ?max_steps:int ->
  grid:int * int * int ->
  block:int * int * int ->
  iargs:(string * int) list ->
  Program.t ->
  (int array, string) result
(** Per-{!Cfg.block} execution counts summed over every CTA of the grid.
    [Error] when a branch guard is not statically known (e.g. the
    divergent branch-based bounds mode), on a CFG build failure, or past
    [max_steps] (default 4e6) abstract steps. Multiplying a block's
    {!block_sched.mix} by its trip count and the block's thread count
    reproduces the interpreter's dynamic per-category counters exactly —
    including masked instructions, which issue (and count) on both
    sides; the differential test suite asserts this. *)
