open Types

type t = {
  name : string;
  dtype : dtype;
  mutable buf_params : string list;   (* reversed *)
  mutable int_params : string list;   (* reversed *)
  mutable body : Instr.t list;        (* reversed *)
  mutable next_f : int;
  mutable next_i : int;
  mutable next_p : int;
  mutable next_label : int;
  mutable shared_words : int;
  mutable shared_int_words : int;
}

let create ~name ~dtype =
  { name; dtype; buf_params = []; int_params = []; body = [];
    next_f = 0; next_i = 0; next_p = 0; next_label = 0;
    shared_words = 0; shared_int_words = 0 }

let buf_param t name =
  let slot = List.length t.buf_params in
  t.buf_params <- name :: t.buf_params;
  slot

let int_param t name =
  let slot = List.length t.int_params in
  t.int_params <- name :: t.int_params;
  Iparam slot

let fresh_f t = let r = t.next_f in t.next_f <- r + 1; r
let fresh_i t = let r = t.next_i in t.next_i <- r + 1; r
let fresh_p t = let r = t.next_p in t.next_p <- r + 1; r

let fresh_label t stem =
  let n = t.next_label in
  t.next_label <- n + 1;
  Printf.sprintf "%s_%d" stem n

let emit t ?guard op = t.body <- Instr.mk ?guard op :: t.body
let place_label t name = emit t (Instr.Label name)

let set_shared t ~words ~int_words =
  t.shared_words <- words;
  t.shared_int_words <- int_words

let finish t =
  let body =
    match t.body with
    | { Instr.op = Instr.Ret; _ } :: _ -> List.rev t.body
    | _ -> List.rev (Instr.mk Instr.Ret :: t.body)
  in
  let program =
    { Program.name = t.name;
      dtype = t.dtype;
      buf_params = Array.of_list (List.rev t.buf_params);
      int_params = Array.of_list (List.rev t.int_params);
      shared_words = t.shared_words;
      shared_int_words = t.shared_int_words;
      body = Array.of_list body;
      n_fregs = t.next_f;
      n_iregs = t.next_i;
      n_pregs = t.next_p }
  in
  match Program.validate program with
  | Ok () -> program
  | Error msg -> invalid_arg ("Builder.finish: " ^ msg)

let mov_i t a = let d = fresh_i t in emit t (Instr.Mov (d, a)); d
let mov_f t a = let d = fresh_f t in emit t (Instr.Movf (d, a)); d
let add_i t a b = let d = fresh_i t in emit t (Instr.Iadd (d, a, b)); d
let sub_i t a b = let d = fresh_i t in emit t (Instr.Isub (d, a, b)); d
let mul_i t a b = let d = fresh_i t in emit t (Instr.Imul (d, a, b)); d
let mad_i t a b c = let d = fresh_i t in emit t (Instr.Imad (d, a, b, c)); d
let div_i t a b = let d = fresh_i t in emit t (Instr.Idiv (d, a, b)); d
let rem_i t a b = let d = fresh_i t in emit t (Instr.Irem (d, a, b)); d
let min_i t a b = let d = fresh_i t in emit t (Instr.Imin (d, a, b)); d
let setp t cmp a b = let d = fresh_p t in emit t (Instr.Setp (cmp, d, a, b)); d
let and_p t a b = let d = fresh_p t in emit t (Instr.And_p (d, a, b)); d
