type reg = R_i of int | R_f of int | R_p of int

let pp_reg = function
  | R_i r -> Printf.sprintf "%%r%d" r
  | R_f r -> Printf.sprintf "%%f%d" r
  | R_p r -> Printf.sprintf "%%p%d" r

(* Registers read / written by one instruction. The guard predicate is a
   read; destination registers are written only. *)
let uses_defs (instr : Instr.t) =
  let io acc = function Types.Ireg r -> R_i r :: acc | _ -> acc in
  let fo acc = function Types.Freg r -> R_f r :: acc | _ -> acc in
  let uses, defs =
    match instr.Instr.op with
    | Instr.Mov (d, a) -> (io [] a, [ R_i d ])
    | Iadd (d, a, b) | Isub (d, a, b) | Imul (d, a, b) | Idiv (d, a, b)
    | Irem (d, a, b) | Imin (d, a, b) | Imax (d, a, b) | Ishl (d, a, b)
    | Ishr (d, a, b) | Iand (d, a, b) | Ior (d, a, b) ->
      (io (io [] a) b, [ R_i d ])
    | Imad (d, a, b, c) -> (io (io (io [] a) b) c, [ R_i d ])
    | Setp (_, p, a, b) -> (io (io [] a) b, [ R_p p ])
    | And_p (d, a, b) | Or_p (d, a, b) -> ([ R_p a; R_p b ], [ R_p d ])
    | Not_p (d, a) -> ([ R_p a ], [ R_p d ])
    | Movf (d, a) -> (fo [] a, [ R_f d ])
    | Fadd (d, a, b) | Fsub (d, a, b) | Fmul (d, a, b) | Fmax (d, a, b)
    | Fmin (d, a, b) ->
      (fo (fo [] a) b, [ R_f d ])
    | Ffma (d, a, b, c) -> (fo (fo (fo [] a) b) c, [ R_f d ])
    | Ld_global (d, _, addr) -> (io [] addr, [ R_f d ])
    | Ld_global_i (d, _, addr) -> (io [] addr, [ R_i d ])
    | Ld_shared (d, addr) -> (io [] addr, [ R_f d ])
    | Ld_shared_i (d, addr) -> (io [] addr, [ R_i d ])
    | St_global (_, addr, v) -> (fo (io [] addr) v, [])
    | St_shared (addr, v) -> (fo (io [] addr) v, [])
    | St_shared_i (addr, v) -> (io (io [] addr) v, [])
    | Atom_global_add (_, addr, v) -> (fo (io [] addr) v, [])
    | Label _ | Bra _ | Bar | Ret -> ([], [])
  in
  let uses =
    match instr.Instr.guard with Some (p, _) -> R_p p :: uses | None -> uses
  in
  (uses, defs)

(* --- definite assignment ------------------------------------------------- *)

type undefined_use = { pc : int; reg : reg }

let def_before_use (p : Program.t) (cfg : Cfg.t) =
  let ni = p.Program.n_iregs and nf = p.n_fregs in
  let nregs = ni + nf + p.n_pregs in
  let idx = function R_i r -> r | R_f r -> ni + r | R_p r -> ni + nf + r in
  let nb = Array.length cfg.Cfg.blocks in
  (* Must-analysis: OUT starts at top (all defined) and shrinks. *)
  let out_ = Array.init nb (fun _ -> Array.make (max 1 nregs) true) in
  let in_of b =
    let blk = cfg.blocks.(b) in
    let acc = Array.make (max 1 nregs) (b <> 0 && blk.Cfg.preds <> []) in
    if b <> 0 then
      List.iter
        (fun pr -> Array.iteri (fun j v -> acc.(j) <- v && out_.(pr).(j)) acc)
        blk.Cfg.preds;
    acc
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nb - 1 do
      let acc = in_of b in
      let blk = cfg.blocks.(b) in
      for i = blk.Cfg.first to blk.Cfg.last do
        let _, defs = uses_defs p.body.(i) in
        List.iter (fun d -> acc.(idx d) <- true) defs
      done;
      if acc <> out_.(b) then begin
        out_.(b) <- acc;
        changed := true
      end
    done
  done;
  (* Report pass over reachable blocks only. *)
  let reach = Cfg.reachable cfg in
  let reports = ref [] in
  for b = 0 to nb - 1 do
    if reach.(b) then begin
      let acc = in_of b in
      let blk = cfg.blocks.(b) in
      for i = blk.Cfg.first to blk.Cfg.last do
        let uses, defs = uses_defs p.body.(i) in
        List.iter
          (fun u -> if not acc.(idx u) then reports := { pc = i; reg = u } :: !reports)
          uses;
        List.iter (fun d -> acc.(idx d) <- true) defs
      done
    end
  done;
  List.sort_uniq compare (List.rev !reports)

(* --- symbolic uniformity / affine analysis -------------------------------- *)

module Sym = struct
  type binop = Add | Sub | Mul | Div | Rem | Min | Max | Shl | Shr | And | Or

  type origin =
    | At_pc of int
    | Param of int
    | Special of Types.special
    | Widen of int * int

  type expr =
    | Const of int
    | Tid of int
    | Opaque of origin * bool
    | Bin of binop * expr * expr

  type pexpr =
    | Pconst of bool
    | Pcmp of Types.cmp * expr * expr
    | Pand of pexpr * pexpr
    | Por of pexpr * pexpr
    | Pnot of pexpr
    | Popaque of origin * bool

  let rec uniform = function
    | Const _ -> true
    | Tid _ -> false
    | Opaque (_, u) -> u
    | Bin (_, a, b) -> uniform a && uniform b

  let rec puniform = function
    | Pconst _ -> true
    | Pcmp (_, a, b) -> uniform a && uniform b
    | Pand (a, b) | Por (a, b) -> puniform a && puniform b
    | Pnot a -> puniform a
    | Popaque (_, u) -> u

  let rec closed = function
    | Const _ | Tid _ -> true
    | Opaque _ -> false
    | Bin (_, a, b) -> closed a && closed b

  let rec size = function
    | Const _ | Tid _ | Opaque _ -> 1
    | Bin (_, a, b) -> 1 + size a + size b

  let rec psize = function
    | Pconst _ | Popaque _ -> 1
    | Pcmp (_, a, b) -> 1 + size a + size b
    | Pand (a, b) | Por (a, b) -> 1 + psize a + psize b
    | Pnot a -> 1 + psize a

  let apply op x y =
    match op with
    | Add -> Some (x + y)
    | Sub -> Some (x - y)
    | Mul -> Some (x * y)
    | Div -> if y = 0 then None else Some (x / y)
    | Rem -> if y = 0 then None else Some (x mod y)
    | Min -> Some (min x y)
    | Max -> Some (max x y)
    | Shl -> if y < 0 || y > 62 then None else Some (x lsl y)
    | Shr -> if y < 0 || y > 62 then None else Some (x asr y)
    | And -> Some (x land y)
    | Or -> Some (x lor y)

  (* Smart constructor: constant folding plus the handful of identities
     the generators rely on (additive zero, multiplicative one). *)
  let bin op a b =
    match (op, a, b) with
    | _, Const x, Const y -> (
        match apply op x y with Some v -> Const v | None -> Bin (op, a, b))
    | Add, e, Const 0 | Add, Const 0, e -> e
    | Sub, e, Const 0 -> e
    | Mul, _, Const 0 | Mul, Const 0, _ -> Const 0
    | Mul, e, Const 1 | Mul, Const 1, e -> e
    | _ -> Bin (op, a, b)

  let rec eval ~tid e =
    match e with
    | Const v -> Some v
    | Tid axis ->
      let x, y, z = tid in
      Some (match axis with 0 -> x | 1 -> y | _ -> z)
    | Opaque _ -> None
    | Bin (op, a, b) -> (
        match (eval ~tid a, eval ~tid b) with
        | Some x, Some y -> apply op x y
        | _ -> None)

  let rec peval ~tid = function
    | Pconst b -> Some b
    | Pcmp (c, a, b) -> (
        match (eval ~tid a, eval ~tid b) with
        | Some x, Some y -> Some (Types.eval_cmp c x y)
        | _ -> None)
    | Pand (a, b) -> (
        match (peval ~tid a, peval ~tid b) with
        | Some false, _ | _, Some false -> Some false
        | Some true, Some true -> Some true
        | _ -> None)
    | Por (a, b) -> (
        match (peval ~tid a, peval ~tid b) with
        | Some true, _ | _, Some true -> Some true
        | Some false, Some false -> Some false
        | _ -> None)
    | Pnot a -> Option.map not (peval ~tid a)
    | Popaque _ -> None
end

type env = {
  ints : Sym.expr array;
  preds : Sym.pexpr array;
}

let copy_env e = { ints = Array.copy e.ints; preds = Array.copy e.preds }

let expr_cap = 160

type solution = {
  program : Program.t;
  params : int option array;
  bx : int;
  by : int;
  bz : int;
  blocks : Cfg.block array;
  entries : env option array;
}

let io_expr sol env = function
  | Types.Ireg r -> env.ints.(r)
  | Iimm v -> Sym.Const v
  | Iparam slot ->
    if slot >= 0 && slot < Array.length sol.params then
      (match sol.params.(slot) with
       | Some v -> Sym.Const v
       | None -> Sym.Opaque (Sym.Param slot, true))
    else Sym.Opaque (Sym.Param slot, true)
  | Ispecial s -> (
      match s with
      | Types.Tid_x -> Sym.Tid 0
      | Tid_y -> Sym.Tid 1
      | Tid_z -> Sym.Tid 2
      | Ntid_x -> Sym.Const sol.bx
      | Ntid_y -> Sym.Const sol.by
      | Ntid_z -> Sym.Const sol.bz
      | (Ctaid_x | Ctaid_y | Ctaid_z | Nctaid_x | Nctaid_y | Nctaid_z) as s ->
        Sym.Opaque (Sym.Special s, true))

let operand_expr sol env o = io_expr sol env o

let guard_pexpr env (instr : Instr.t) =
  match instr.Instr.guard with
  | None -> None
  | Some (p, sense) ->
    let pe = env.preds.(p) in
    Some (if sense then pe else Sym.Pnot pe)

(* One instruction's transfer. A guarded write merges old and new value:
   threads whose guard is false keep the old one, so the result is only
   known when both sides agree; a varying guard makes even a merge of two
   uniform values thread-dependent. *)
let step sol env ~pc (instr : Instr.t) =
  let open Sym in
  let cap e = if size e > expr_cap then Opaque (At_pc pc, uniform e) else e in
  let pcap e = if psize e > expr_cap then Popaque (At_pc pc, puniform e) else e in
  let guard = guard_pexpr env instr in
  let set_i r e =
    let e = cap e in
    match guard with
    | None -> env.ints.(r) <- e
    | Some g ->
      let old = env.ints.(r) in
      if old <> e then
        env.ints.(r) <- Opaque (At_pc pc, uniform old && uniform e && puniform g)
  in
  let set_p r pe =
    let pe = pcap pe in
    match guard with
    | None -> env.preds.(r) <- pe
    | Some g ->
      let old = env.preds.(r) in
      if old <> pe then
        env.preds.(r) <- Popaque (At_pc pc, puniform old && puniform pe && puniform g)
  in
  let io = io_expr sol env in
  match instr.Instr.op with
  | Instr.Mov (d, a) -> set_i d (io a)
  | Iadd (d, a, b) -> set_i d (bin Add (io a) (io b))
  | Isub (d, a, b) -> set_i d (bin Sub (io a) (io b))
  | Imul (d, a, b) -> set_i d (bin Mul (io a) (io b))
  | Imad (d, a, b, c) -> set_i d (bin Add (bin Mul (io a) (io b)) (io c))
  | Idiv (d, a, b) -> set_i d (bin Div (io a) (io b))
  | Irem (d, a, b) -> set_i d (bin Rem (io a) (io b))
  | Imin (d, a, b) -> set_i d (bin Min (io a) (io b))
  | Imax (d, a, b) -> set_i d (bin Max (io a) (io b))
  | Ishl (d, a, b) -> set_i d (bin Shl (io a) (io b))
  | Ishr (d, a, b) -> set_i d (bin Shr (io a) (io b))
  | Iand (d, a, b) -> set_i d (bin And (io a) (io b))
  | Ior (d, a, b) -> set_i d (bin Or (io a) (io b))
  | Setp (c, p, a, b) -> set_p p (Pcmp (c, io a, io b))
  | And_p (d, a, b) -> set_p d (Pand (env.preds.(a), env.preds.(b)))
  | Or_p (d, a, b) -> set_p d (Por (env.preds.(a), env.preds.(b)))
  | Not_p (d, a) -> set_p d (Pnot env.preds.(a))
  | Ld_global_i (d, _, _) | Ld_shared_i (d, _) ->
    (* Loaded integers are opaque and potentially thread-dependent. *)
    set_i d (Opaque (At_pc pc, false))
  | Movf _ | Fadd _ | Fsub _ | Fmul _ | Ffma _ | Fmax _ | Fmin _
  | Ld_global _ | Ld_shared _ | St_global _ | St_shared _ | St_shared_i _
  | Atom_global_add _ | Label _ | Bra _ | Bar | Ret ->
    ()

(* Join [incoming] into [entry] for block [bid]. Unequal values widen to
   an opaque unknown keyed by (block, register) so re-joining is stable
   and the fixpoint terminates; the uniformity flag can only drop. *)
let join_into ~bid ~ni entry incoming =
  let changed = ref false in
  Array.iteri
    (fun r old ->
      let inc = incoming.ints.(r) in
      if old <> inc then begin
        let widened =
          Sym.Opaque (Sym.Widen (bid, r), Sym.uniform old && Sym.uniform inc)
        in
        if widened <> old then begin
          entry.ints.(r) <- widened;
          changed := true
        end
      end)
    entry.ints;
  Array.iteri
    (fun r old ->
      let inc = incoming.preds.(r) in
      if old <> inc then begin
        let widened =
          Sym.Popaque (Sym.Widen (bid, ni + r), Sym.puniform old && Sym.puniform inc)
        in
        if widened <> old then begin
          entry.preds.(r) <- widened;
          changed := true
        end
      end)
    entry.preds;
  !changed

let symbolic ?int_params ~block (p : Program.t) (cfg : Cfg.t) =
  let bx, by, bz = block in
  let params =
    match int_params with
    | Some a -> a
    | None -> Array.make (Array.length p.Program.int_params) None
  in
  let nb = Array.length cfg.Cfg.blocks in
  let sol =
    { program = p; params; bx; by; bz; blocks = cfg.blocks;
      entries = Array.make nb None }
  in
  let bottom () =
    { ints = Array.make (max 1 p.n_iregs) (Sym.Const 0);
      preds = Array.make (max 1 p.n_pregs) (Sym.Pconst false) }
  in
  sol.entries.(0) <- Some (bottom ());
  let ni = p.n_iregs in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 64 do
    changed := false;
    incr passes;
    for b = 0 to nb - 1 do
      match sol.entries.(b) with
      | None -> ()
      | Some entry ->
        let env = copy_env entry in
        let blk = cfg.blocks.(b) in
        for i = blk.Cfg.first to blk.Cfg.last do
          step sol env ~pc:i p.body.(i)
        done;
        List.iter
          (fun s ->
            match sol.entries.(s) with
            | None ->
              sol.entries.(s) <- Some (copy_env env);
              changed := true
            | Some se -> if join_into ~bid:s ~ni se env then changed := true)
          blk.Cfg.succs
    done
  done;
  sol

let entry_env sol b =
  match sol.entries.(b) with
  | Some e -> copy_env e
  | None ->
    (* unreachable block: conservative bottom *)
    { ints = Array.make (max 1 sol.program.Program.n_iregs) (Sym.Const 0);
      preds = Array.make (max 1 sol.program.n_pregs) (Sym.Pconst false) }

let walk_block sol b ~f =
  let env = entry_env sol b in
  let blk = sol.blocks.(b) in
  for i = blk.Cfg.first to blk.Cfg.last do
    f ~pc:i env;
    step sol env ~pc:i sol.program.body.(i)
  done
