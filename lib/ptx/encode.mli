(** Dense binary encoding of the mini-PTX IR.

    Real GPU toolchains ship kernels as bit-packed instruction words with
    per-instruction control info (dependency/stall counts), not as
    structured ASTs — that is what makes large kernel corpora tractable
    and cache keys O(1). This module gives the mini-PTX IR the same
    treatment:

    - every instruction packs into one 62-bit word (opcode, guard,
      destination, aux, three discriminated operand fields); immediates
      too wide for an operand field spill into deduplicated constant
      pools, and label names live in a string pool;
    - each word carries one control-info byte: the {!Scoreboard}
      per-instruction stall count (saturated at 255), the nva-style
      "control info" real SASS encoders embed;
    - {!encode}/{!decode} round-trip exactly ([decode (encode p) = p]
      for every valid program that fits the field widths — the
      differential and qcheck suites assert this);
    - {!hash} is a stable FNV-1a 64 over the semantic payload (name and
      control info excluded), giving kernels an O(1) identity for the
      plan cache's cross-shape dedup.

    Encoding fails (with a field/pool diagnostic, mirroring a fixed-width
    ISA's range limits) when a register, pool or label index exceeds its
    field: registers ≥ 256, guard predicates ≥ 64, buffer slots ≥ 16, or
    more than 256 distinct wide constants of one class. The fields size
    a {e physical} register file: generated kernels fit after
    {!Regalloc.allocate} (which is how the plan cache encodes them),
    while large generated kernels in raw virtual-register form may
    not. *)

type t = {
  name : string;
  dtype : Types.dtype;
  buf_params : string array;
  int_params : string array;
  shared_words : int;
  shared_int_words : int;
  n_fregs : int;
  n_iregs : int;
  n_pregs : int;
  words : int array;   (** one packed instruction word per body entry *)
  ctrl : int array;    (** control-info byte per word: stall cycles *)
  ipool : int array;   (** wide integer immediates (deduplicated) *)
  fpool : float array; (** float immediates (deduplicated by bit pattern) *)
  spool : string array;(** label names *)
}

val encode : ?lat:Scoreboard.latency -> Program.t -> (t, string) result
(** Pack a program. [lat] feeds the {!Scoreboard} stall model behind the
    control-info bytes (stalls are 0 when the CFG cannot be built). *)

val decode : t -> (Program.t, string) result
(** Exact inverse of {!encode}. Validates field tags, pool indices and
    (via [Program.validate]) the reconstructed program, so a corrupted
    or adversarial binary is rejected rather than mis-executed. *)

val hash : t -> int64
(** Stable FNV-1a 64 kernel identity over the semantic payload: dtype,
    parameter names, shared sizes, register counts, instruction words
    and constant pools — excluding [name] (so one kernel reused under
    several shape-specific entry names dedups) and [ctrl] (derived
    metadata). *)

val hash_program : ?lat:Scoreboard.latency -> Program.t -> (int64, string) result
(** [encode] then {!hash}. *)

val hash_hex : int64 -> string
(** 16 lowercase hex digits. *)

val to_bytes : t -> string
(** Serialize to the dense wire format (8 bytes per instruction word +
    1 control byte + pools + header). This is the payload persisted in
    plan caches and kernel-corpus artifacts. *)

val of_bytes : string -> (t, string) result
(** Parse {!to_bytes} output; never raises. Tag/bounds failures are
    reported, but full validation happens in {!decode}. *)

val byte_size : t -> int
(** [String.length (to_bytes t)] without materializing the string twice. *)

val dump : t -> string
(** Human-readable listing for [isaac_lint --dump-binary]: per word, the
    hex encoding, the control info, the disassembled text and a field
    breakdown (opcode/guard/dst/aux/operand kinds). *)

(** {1 Kernel-corpus artifacts}

    A deduplicated set of packed kernels persisted through
    [Util.Artifact] — the binary companion a dataset or plan cache
    references by hash. *)

val corpus_kind : string
(** ["isaac-packed-kernels"]. *)

val corpus_version : int

val save_corpus : ?fsync:bool -> path:string -> t list -> unit
(** Atomically write a corpus (deduplicated by {!hash}, order of first
    occurrence preserved). Raises [Sys_error] on I/O failure, like
    [Util.Artifact.write]. *)

val load_corpus : path:string -> (t list, string) result
(** Read a corpus back; every entry's stored hash is re-verified. *)
