open Types

type t = {
  name : string;
  dtype : dtype;
  buf_params : string array;
  int_params : string array;
  shared_words : int;
  shared_int_words : int;
  body : Instr.t array;
  n_fregs : int;
  n_iregs : int;
  n_pregs : int;
}

let shared_bytes t = (t.shared_words * dtype_bytes t.dtype) + (t.shared_int_words * 4)

let find_labels t =
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      match instr.Instr.op with
      | Instr.Label name -> Hashtbl.replace labels name i
      | _ -> ())
    t.body;
  labels

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let labels = Hashtbl.create 16 in
  let exception Bad of string in
  try
    Array.iter
      (fun instr ->
        match instr.Instr.op with
        | Instr.Label name ->
          if Hashtbl.mem labels name then raise (Bad ("duplicate label " ^ name));
          Hashtbl.replace labels name ()
        | _ -> ())
      t.body;
    let check_f r = if r < 0 || r >= t.n_fregs then raise (Bad "freg out of range") in
    let check_i r = if r < 0 || r >= t.n_iregs then raise (Bad "ireg out of range") in
    let check_p r = if r < 0 || r >= t.n_pregs then raise (Bad "preg out of range") in
    let check_slot s =
      if s < 0 || s >= Array.length t.buf_params then raise (Bad "buffer slot out of range")
    in
    let check_io = function
      | Ireg r -> check_i r
      | Iimm _ | Ispecial _ -> ()
      | Iparam p ->
        if p < 0 || p >= Array.length t.int_params then raise (Bad "int param out of range")
    in
    let check_fo = function Freg r -> check_f r | Fimm _ -> () in
    Array.iter
      (fun { Instr.op; guard } ->
        (match guard with Some (p, _) -> check_p p | None -> ());
        match op with
        | Instr.Mov (d, a) -> check_i d; check_io a
        | Iadd (d, a, b) | Isub (d, a, b) | Imul (d, a, b) | Idiv (d, a, b)
        | Irem (d, a, b) | Imin (d, a, b) | Imax (d, a, b)
        | Ishl (d, a, b) | Ishr (d, a, b) | Iand (d, a, b) | Ior (d, a, b) ->
          check_i d; check_io a; check_io b
        | Imad (d, a, b, c) -> check_i d; check_io a; check_io b; check_io c
        | Setp (_, p, a, b) -> check_p p; check_io a; check_io b
        | And_p (d, a, b) | Or_p (d, a, b) -> check_p d; check_p a; check_p b
        | Not_p (d, a) -> check_p d; check_p a
        | Movf (d, a) -> check_f d; check_fo a
        | Fadd (d, a, b) | Fsub (d, a, b) | Fmul (d, a, b)
        | Fmax (d, a, b) | Fmin (d, a, b) ->
          check_f d; check_fo a; check_fo b
        | Ffma (d, a, b, c) -> check_f d; check_fo a; check_fo b; check_fo c
        | Ld_global (d, slot, addr) -> check_f d; check_slot slot; check_io addr
        | Ld_global_i (d, slot, addr) -> check_i d; check_slot slot; check_io addr
        | Ld_shared (d, addr) -> check_f d; check_io addr
        | Ld_shared_i (d, addr) -> check_i d; check_io addr
        | St_global (slot, addr, v) -> check_slot slot; check_io addr; check_fo v
        | St_shared (addr, v) -> check_io addr; check_fo v
        | St_shared_i (addr, v) -> check_io addr; check_io v
        | Atom_global_add (slot, addr, v) -> check_slot slot; check_io addr; check_fo v
        | Bra target ->
          if not (Hashtbl.mem labels target) then raise (Bad ("undefined label " ^ target))
        | Label _ | Bar | Ret -> ())
      t.body;
    Ok ()
  with Bad msg -> err "%s: %s" t.name msg
