(** Basic-block control-flow graph over a [Program.t] body.

    Leaders are the entry instruction, every [Label], and every
    instruction following a branch or return (guarded or not — a guarded
    [Bra]/[Ret] may fall through, so it ends its block with two
    successors). The graph is the substrate for the static verifier's
    dataflow passes: definite assignment, the uniformity/affine abstract
    interpretation, barrier-interval tracking and the post-dominator
    computation behind barrier-divergence detection. *)

type block = {
  id : int;
  first : int;  (** index of the block's first instruction (may be a [Label]) *)
  last : int;   (** index of the block's last instruction, inclusive *)
  succs : int list;  (** successor block ids, in program order *)
  mutable preds : int list;  (** predecessor block ids *)
  to_exit : bool;
      (** the block has an edge to the virtual exit node: it ends in a
          [Ret] (guarded or not) or control may fall past the end of the
          body here *)
}

type t = {
  blocks : block array;
  block_of : int array;
      (** instruction index -> id of the containing block *)
  may_fall_off_end : bool;
      (** true when some path leaves the last instruction without an
          unguarded [Ret] or [Bra] — the interpreter traps "fell off end"
          on such a path *)
}

val build : Program.t -> (t, string) result
(** Build the CFG. [Error] is returned for an empty body, a duplicate
    label or a branch to an undefined label (the same conditions
    [Program.validate] reports, so a validated program always builds). *)

val reachable : t -> bool array
(** Per-block reachability from the entry block. *)

val postdominators : t -> int array
(** [postdominators cfg].(b) is the immediate post-dominator of block
    [b], or [-1] when [b] post-dominates every path it lies on (its only
    "post-dominator" is the virtual exit node). Every block from which
    the exit is unreachable (an infinite loop) also maps to [-1]. *)

val divergence_region : t -> ipdom:int array -> int -> int list
(** [divergence_region cfg ~ipdom b] is the set of blocks
    control-dependent on the terminator of block [b]: every block on some
    path from a successor of [b] to [b]'s immediate post-dominator,
    exclusive. [ipdom] is the result of {!postdominators}. If threads
    disagree on [b]'s branch direction, exactly these blocks execute
    under a thread-varying active mask. *)
