(** Liveness analysis and linear-scan register allocation for mini-PTX.

    The kernel generators emit SSA-ish code with fresh virtual registers;
    real PTX goes through ptxas, whose allocator determines the physical
    register count that drives occupancy (the "Registers" row of the
    paper's §8.1 table). This module provides that step for the mini-PTX:

    - {!pressure} computes MaxLive per register class via a backward
      dataflow fixpoint over the control-flow graph (loops included) —
      the number of physical registers an optimal allocator needs;
    - {!allocate} rewrites a program onto physical registers with a
      linear-scan assignment over live intervals. The result validates
      and is observationally equivalent under the interpreter (the test
      suite executes both and compares outputs).

    Guarded (predicated) definitions are treated as def+use: when the
    guard is false the old value survives, so it must stay live.

    Caveat: allocation assumes registers are written before they are
    read (the builders always emit an initializing [mov]); a kernel
    relying on the interpreter's implicit zero-initialization could
    observe a recycled physical register instead. *)

type pressure = {
  fregs : int;  (** simultaneously live float registers (MaxLive) *)
  iregs : int;
  pregs : int;
}

val pressure : Program.t -> pressure

val allocate : Program.t -> Program.t
(** Rewrite onto a compact physical register file. The returned program's
    [n_fregs]/[n_iregs]/[n_pregs] equal the allocation's register counts,
    which are at least {!pressure} and at most the virtual counts. *)

val live_ranges : Program.t -> (int * int * int) array
(** Float-register live intervals [(reg, start_pc, end_pc)], loop-extended;
    exposed for tests and for the kernel-explorer example. *)
