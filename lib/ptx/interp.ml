open Types

type counters = {
  mutable ialu : int;
  mutable fma : int;
  mutable fp_other : int;
  mutable ld_global : int;
  mutable st_global : int;
  mutable ld_shared : int;
  mutable st_shared : int;
  mutable atom : int;
  mutable bar : int;
  mutable branch : int;
  mutable pred : int;
  mutable mov : int;
  mutable predicated_off : int;
  mutable gld_transactions : int;
  mutable gst_transactions : int;
  mutable shared_transactions : int;
}

let zero_counters () =
  { ialu = 0; fma = 0; fp_other = 0; ld_global = 0; st_global = 0;
    ld_shared = 0; st_shared = 0; atom = 0; bar = 0; branch = 0;
    pred = 0; mov = 0; predicated_off = 0;
    gld_transactions = 0; gst_transactions = 0; shared_transactions = 0 }

let total c =
  c.ialu + c.fma + c.fp_other + c.ld_global + c.st_global + c.ld_shared
  + c.st_shared + c.atom + c.bar + c.branch + c.pred + c.mov

let summary c =
  Printf.sprintf
    "dyn: total=%d ialu=%d fma=%d fp=%d ld.g=%d st.g=%d ld.s=%d st.s=%d \
     atom=%d bar=%d bra=%d pred=%d mov=%d masked=%d gld.txn=%d gst.txn=%d \
     smem.txn=%d"
    (total c) c.ialu c.fma c.fp_other c.ld_global c.st_global c.ld_shared
    c.st_shared c.atom c.bar c.branch c.pred c.mov c.predicated_off
    c.gld_transactions c.gst_transactions c.shared_transactions

let add_into ~into c =
  into.ialu <- into.ialu + c.ialu;
  into.fma <- into.fma + c.fma;
  into.fp_other <- into.fp_other + c.fp_other;
  into.ld_global <- into.ld_global + c.ld_global;
  into.st_global <- into.st_global + c.st_global;
  into.ld_shared <- into.ld_shared + c.ld_shared;
  into.st_shared <- into.st_shared + c.st_shared;
  into.atom <- into.atom + c.atom;
  into.bar <- into.bar + c.bar;
  into.branch <- into.branch + c.branch;
  into.pred <- into.pred + c.pred;
  into.mov <- into.mov + c.mov;
  into.predicated_off <- into.predicated_off + c.predicated_off;
  into.gld_transactions <- into.gld_transactions + c.gld_transactions;
  into.gst_transactions <- into.gst_transactions + c.gst_transactions;
  into.shared_transactions <- into.shared_transactions + c.shared_transactions

(* Feed the per-run totals into the tracing subsystem (one call per
   interpreted launch; a handful of no-ops when tracing is off). *)
let obs_export c =
  if Obs.Trace.enabled () then begin
    Obs.Metrics.incr "interp.runs";
    Obs.Metrics.add "interp.dyn.total" (total c);
    Obs.Metrics.add "interp.dyn.ialu" c.ialu;
    Obs.Metrics.add "interp.dyn.fma" c.fma;
    Obs.Metrics.add "interp.dyn.fp_other" c.fp_other;
    Obs.Metrics.add "interp.dyn.ld_global" c.ld_global;
    Obs.Metrics.add "interp.dyn.st_global" c.st_global;
    Obs.Metrics.add "interp.dyn.ld_shared" c.ld_shared;
    Obs.Metrics.add "interp.dyn.st_shared" c.st_shared;
    Obs.Metrics.add "interp.dyn.atom" c.atom;
    Obs.Metrics.add "interp.dyn.bar_waits" c.bar;
    Obs.Metrics.add "interp.dyn.branch" c.branch;
    Obs.Metrics.add "interp.dyn.pred" c.pred;
    Obs.Metrics.add "interp.dyn.mov" c.mov;
    Obs.Metrics.add "interp.dyn.predicated_off" c.predicated_off;
    Obs.Metrics.add "interp.txn.global_load" c.gld_transactions;
    Obs.Metrics.add "interp.txn.global_store" c.gst_transactions;
    Obs.Metrics.add "interp.txn.shared" c.shared_transactions
  end

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* ---------------------------------------------------------------------
   Threaded-code engine.

   [run] lowers the instruction array once per launch into an array of
   closures ("threaded code"): one closure per real instruction, taking
   the per-domain execution context and the current thread and returning
   the next compiled pc (or a negative stop sentinel for Bar/Ret). All
   launch-invariant decoding happens at compile time:

   - labels are squashed out of the code array, so fall-through is always
     [pc + 1] and branch targets are pre-resolved compiled indices — no
     label Hashtbl on the hot path;
   - operands are pre-discriminated: params and launch-geometry specials
     ([Ntid_*]/[Nctaid_*]) fold to constants, [Tid_*]/[Ctaid_*] read
     thread fields, and the register/immediate split is decided once;
   - guards are hoisted into a wrapper closure, so unguarded instructions
     pay nothing for predication;
   - the per-category counter bump is baked into each closure.

   Blocks are independent except for [Atom_global_add], so the grid loop
   fans out across OCaml domains ([Util.Parallel]): each domain executes
   a contiguous chunk of linearized block indices against its own context
   (counter shard, shared memory, transaction-replay state) and the
   shards are summed in chunk order afterwards — counter totals are
   sums of per-block contributions, so the merged result is bit-identical
   to serial execution. Kernels containing global atomics fall back to a
   single domain so floating-point accumulation order (and thus output
   buffers) also stays bit-identical. The dynamic-instruction budget is a
   shared atomic permit pool; domains take leases of [lease_chunk]
   permits so the hot path stays a plain decrement. *)

(* Per-thread architectural state. Threads are allocated once per domain
   and reset per block (registers zero-filled, as a fresh allocation
   would be). *)
type thread = {
  fregs : float array;
  iregs : int array;
  pregs : bool array;
  mutable pc : int;  (* compiled pc *)
  mutable done_ : bool;
  lin : int;  (* linear thread index within the block (lane = lin mod 32) *)
  tid_x : int;
  tid_y : int;
  tid_z : int;
  mutable cta_x : int;
  mutable cta_y : int;
  mutable cta_z : int;
}

(* One access group of the memory-transaction replay: the accesses issued
   by the lanes of one warp for one dynamic execution of one memory
   instruction. Groups live in per-(instruction, warp) pools indexed by
   the dynamic ordinal and are invalidated lazily by stamp comparison at
   every barrier phase — no per-phase O(size) reset. A group holds at most
   32 entries (one per lane), so membership is a linear scan over a small
   int array: distinct 32-word segments for global memory, distinct
   addresses for shared memory. *)
type grp = {
  mutable g_items : int array;
  mutable g_n : int;
  mutable g_passes : int;  (* shared: serialized passes charged so far *)
  mutable g_stamp : int;
}

(* Per-domain execution context. *)
type ctx = {
  k : counters;  (* this domain's counter shard *)
  pool : int Atomic.t;  (* shared budget: remaining permitted executions *)
  mutable lease : int;  (* permits reserved locally, spent one per charge *)
  n_warps : int;
  shared_f : float array;
  shared_i : int array;
  (* replay state: flat per-(mem-instruction, warp, lane) dynamic
     ordinals plus per-(mem-instruction, warp) group pools *)
  ord : int array;
  ord_stamp : int array;
  grps : grp array array;
  mutable stamp : int;  (* bumped per barrier phase and per block *)
  threads : thread array;
}

let lease_chunk = 65536

let refill ctx =
  let rec take () =
    let cur = Atomic.get ctx.pool in
    if cur <= 0 then
      raise
        (Trap
           (Printf.sprintf "dynamic instruction budget exhausted [%s]"
              (summary ctx.k)))
    else
      let g = if lease_chunk < cur then lease_chunk else cur in
      if Atomic.compare_and_set ctx.pool cur (cur - g) then ctx.lease <- g - 1
      else take ()
  in
  take ()

let new_grp () = { g_items = Array.make 8 0; g_n = 0; g_passes = 0; g_stamp = 0 }

(* Locate this lane's current access group for memory slot [ms]: bump the
   lane's dynamic ordinal and return the (lazily reset) k-th group of the
   (slot, warp) pool. *)
let group ctx ms lin =
  let sw = (ms * ctx.n_warps) + (lin lsr 5) in
  let oi = (sw lsl 5) lor (lin land 31) in
  let stamp = ctx.stamp in
  let kth =
    if Array.unsafe_get ctx.ord_stamp oi = stamp then Array.unsafe_get ctx.ord oi
    else 0
  in
  Array.unsafe_set ctx.ord_stamp oi stamp;
  Array.unsafe_set ctx.ord oi (kth + 1);
  let row = Array.unsafe_get ctx.grps sw in
  let row =
    if kth < Array.length row then row
    else begin
      let n = Array.length row in
      let grown =
        Array.init (max 8 (2 * (kth + 1))) (fun i ->
            if i < n then row.(i) else new_grp ())
      in
      ctx.grps.(sw) <- grown;
      grown
    end
  in
  let g = Array.unsafe_get row kth in
  if g.g_stamp <> stamp then begin
    g.g_stamp <- stamp;
    g.g_n <- 0;
    g.g_passes <- 0
  end;
  g

let grp_add g v =
  if g.g_n = Array.length g.g_items then begin
    let grown = Array.make (2 * g.g_n) 0 in
    Array.blit g.g_items 0 grown 0 g.g_n;
    g.g_items <- grown
  end;
  g.g_items.(g.g_n) <- v;
  g.g_n <- g.g_n + 1

(* One transaction per distinct 32-word segment touched by the group. *)
let record_global ctx ~store ms lin addr =
  let g = group ctx ms lin in
  let seg = addr asr 5 in
  let items = g.g_items and n = g.g_n in
  let rec mem i = i < n && (Array.unsafe_get items i = seg || mem (i + 1)) in
  if not (mem 0) then begin
    grp_add g seg;
    let k = ctx.k in
    if store then k.gst_transactions <- k.gst_transactions + 1
    else k.gld_transactions <- k.gld_transactions + 1
  end

(* Serialized passes: max over banks of the distinct-address count (equal
   addresses broadcast). Charge one transaction each time the running max
   grows — identical to charging the final max once per group. *)
let record_shared ctx ms lin addr =
  let g = group ctx ms lin in
  let items = g.g_items and n = g.g_n in
  let rec mem i = i < n && (Array.unsafe_get items i = addr || mem (i + 1)) in
  if not (mem 0) then begin
    let bank = addr land 31 in
    let c = ref 1 in
    for i = 0 to n - 1 do
      if Array.unsafe_get items i land 31 = bank then incr c
    done;
    grp_add g addr;
    if !c > g.g_passes then begin
      g.g_passes <- !c;
      ctx.k.shared_transactions <- ctx.k.shared_transactions + 1
    end
  end

type stop = Hit_bar | Hit_ret

(* Compiled-pc stop sentinels returned by closures instead of a next pc. *)
let stop_ret = -1
let stop_bar = -2

(* Pre-discriminated integer operand. *)
type ikind =
  | KReg of int
  | KConst of int
  | KDyn of (thread -> int)

(* pc -> nearest preceding label, precomputed in one pass so trap
   messages stay rich ("pc N (label L + k)") at zero steady-state cost. *)
let nearest_labels (body : Instr.t array) =
  let near = Array.make (max 1 (Array.length body)) None in
  let cur = ref None in
  Array.iteri
    (fun i (ins : Instr.t) ->
      (match ins.Instr.op with Instr.Label l -> cur := Some (l, i) | _ -> ());
      near.(i) <- !cur)
    body;
  near

let describe_with near n_body pc =
  let j = if pc < n_body - 1 then pc else n_body - 1 in
  if j < 0 then Printf.sprintf "pc %d" pc
  else
    match near.(j) with
    | Some (l, lpc) when pc = lpc -> Printf.sprintf "pc %d (label %s)" pc l
    | Some (l, lpc) -> Printf.sprintf "pc %d (label %s + %d)" pc l (pc - lpc)
    | None -> Printf.sprintf "pc %d" pc

(* Category bump applied to instructions whose guard evaluated false:
   masked instructions still occupy an issue slot, so they count in their
   category (keeping static/dynamic cross-checks aligned). *)
let masked_bump op : counters -> unit =
  match Instr.categorize op with
  | Some Instr.Cat_ialu -> fun k -> k.ialu <- k.ialu + 1
  | Some Cat_fma -> fun k -> k.fma <- k.fma + 1
  | Some Cat_fp_other -> fun k -> k.fp_other <- k.fp_other + 1
  | Some Cat_ld_global -> fun k -> k.ld_global <- k.ld_global + 1
  | Some Cat_st_global -> fun k -> k.st_global <- k.st_global + 1
  | Some Cat_ld_shared -> fun k -> k.ld_shared <- k.ld_shared + 1
  | Some Cat_st_shared -> fun k -> k.st_shared <- k.st_shared + 1
  | Some Cat_atom -> fun k -> k.atom <- k.atom + 1
  | Some Cat_bar -> fun k -> k.bar <- k.bar + 1
  | Some Cat_branch -> fun k -> k.branch <- k.branch + 1
  | Some Cat_pred -> fun k -> k.pred <- k.pred + 1
  | Some Cat_mov -> fun k -> k.mov <- k.mov + 1
  | None -> fun _ -> ()

let run ?(max_dynamic = 200_000_000) ?domains (p : Program.t) ~grid ~block
    ~bufs ~iargs =
  let gx, gy, gz = grid and bx, by, bz = block in
  if gx <= 0 || gy <= 0 || gz <= 0 || bx <= 0 || by <= 0 || bz <= 0 then
    trap "invalid launch geometry";
  let buffers =
    Array.map
      (fun name ->
        match List.assoc_opt name bufs with
        | Some a -> a
        | None -> trap "missing buffer argument %s" name)
      p.buf_params
  in
  let ints =
    Array.map
      (fun name ->
        match List.assoc_opt name iargs with
        | Some v -> v
        | None -> trap "missing int argument %s" name)
      p.int_params
  in
  let labels = Program.find_labels p in
  let body = p.body in
  let n_body = Array.length body in
  let near = nearest_labels body in
  let describe pc = describe_with near n_body pc in
  (* Every trap raised during execution carries the counter totals
     accumulated up to the fault (this domain's shard) — the "hardware
     counter" snapshot that makes divergent or runaway kernels
     diagnosable post mortem. *)
  let trap_at k opc fmt =
    Printf.ksprintf
      (fun s ->
        let where = describe opc in
        (* When serving telemetry is live, record the trap in the flight
           ring and append the recorder's recent-event context to the
           failure report — the post-mortem for a kernel that faults
           mid-request. *)
        let flight =
          if Obs.Telemetry.enabled () then begin
            Obs.Telemetry.Flight.record ~kind:"trap" ~name:p.name
              (s ^ " at " ^ where);
            match Obs.Telemetry.Flight.dump () with
            | "" -> ""
            | d -> "\n" ^ d
          end
          else ""
        in
        raise
          (Trap (Printf.sprintf "%s at %s [%s]%s" s where (summary k) flight)))
      fmt
  in
  let is_half = p.dtype = F16 in
  let shared_words = p.shared_words in
  let shared_int_words = p.shared_int_words in
  (* --- compile pass ---------------------------------------------------- *)
  (* Squash labels: [idx.(i)] is the compiled index of real instruction
     [i] (-1 for labels); [orig_of] maps back for trap messages;
     [comp_of_orig] maps any original pc to the first real instruction at
     or after it (branch targets land on labels). *)
  let idx = Array.make (max 1 n_body) (-1) in
  let n_code =
    let j = ref 0 in
    for i = 0 to n_body - 1 do
      match body.(i).Instr.op with
      | Instr.Label _ -> ()
      | _ ->
        idx.(i) <- !j;
        incr j
    done;
    !j
  in
  let orig_of = Array.make (n_code + 1) n_body in
  Array.iteri (fun i ci -> if ci >= 0 then orig_of.(ci) <- i) idx;
  let comp_of_orig = Array.make (max 1 n_body) n_code in
  (let nxt = ref n_code in
   for i = n_body - 1 downto 0 do
     if idx.(i) >= 0 then nxt := idx.(i);
     comp_of_orig.(i) <- !nxt
   done);
  (* Dense memory-instruction slots for the transaction replay. *)
  let n_mem = ref 0 in
  let fresh_mem () =
    let m = !n_mem in
    incr n_mem;
    m
  in
  let ik = function
    | Ireg r -> KReg r
    | Iimm v -> KConst v
    | Iparam slot -> KConst ints.(slot)
    | Ispecial s -> (
      match s with
      | Ntid_x -> KConst bx
      | Ntid_y -> KConst by
      | Ntid_z -> KConst bz
      | Nctaid_x -> KConst gx
      | Nctaid_y -> KConst gy
      | Nctaid_z -> KConst gz
      | Tid_x -> KDyn (fun th -> th.tid_x)
      | Tid_y -> KDyn (fun th -> th.tid_y)
      | Tid_z -> KDyn (fun th -> th.tid_z)
      | Ctaid_x -> KDyn (fun th -> th.cta_x)
      | Ctaid_y -> KDyn (fun th -> th.cta_y)
      | Ctaid_z -> KDyn (fun th -> th.cta_z))
  in
  let iget = function
    | KReg r -> fun th -> th.iregs.(r)
    | KConst v -> fun _ -> v
    | KDyn f -> f
  in
  let fget = function
    | Freg r -> fun th -> th.fregs.(r)
    | Fimm v -> fun _ -> v
  in
  (* Generic integer binop (cold shapes); hot ops get inlined cases. *)
  let iop2 d a b (f : int -> int -> int) nxt =
    match (ik a, ik b) with
    | KReg i, KReg j ->
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f th.iregs.(i) th.iregs.(j);
        nxt
    | KReg i, KConst v ->
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f th.iregs.(i) v;
        nxt
    | KConst v, KReg j ->
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f v th.iregs.(j);
        nxt
    | ka, kb ->
      let fa = iget ka and fb = iget kb in
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f (fa th) (fb th);
        nxt
  in
  (* Generic float binop into fp_other. *)
  let fop2 d a b (f : float -> float -> float) nxt =
    match (a, b) with
    | Freg i, Freg j ->
      fun ctx th ->
        let k = ctx.k in
        k.fp_other <- k.fp_other + 1;
        let fr = th.fregs in
        fr.(d) <- f fr.(i) fr.(j);
        nxt
    | _ ->
      let fa = fget a and fb = fget b in
      fun ctx th ->
        let k = ctx.k in
        k.fp_other <- k.fp_other + 1;
        th.fregs.(d) <- f (fa th) (fb th);
        nxt
  in
  let compile_op opc (op : Instr.op) nxt : ctx -> thread -> int =
    match op with
    | Instr.Label _ -> assert false
    | Mov (d, a) -> (
      match ik a with
      | KReg s ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.iregs.(d) <- th.iregs.(s);
          nxt
      | KConst v ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.iregs.(d) <- v;
          nxt
      | KDyn f ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.iregs.(d) <- f th;
          nxt)
    | Movf (d, a) -> (
      match a with
      | Freg s ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.fregs.(d) <- th.fregs.(s);
          nxt
      | Fimm v ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.fregs.(d) <- v;
          nxt)
    | Iadd (d, a, b) -> (
      match (ik a, ik b) with
      | KReg i, KReg j ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) + ir.(j);
          nxt
      | (KReg i, KConst v | KConst v, KReg i) ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) + v;
          nxt
      | ka, kb ->
        let fa = iget ka and fb = iget kb in
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          th.iregs.(d) <- fa th + fb th;
          nxt)
    | Isub (d, a, b) -> iop2 d a b (fun x y -> x - y) nxt
    | Imul (d, a, b) -> (
      match (ik a, ik b) with
      | KReg i, KReg j ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) * ir.(j);
          nxt
      | (KReg i, KConst v | KConst v, KReg i) ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) * v;
          nxt
      | ka, kb ->
        let fa = iget ka and fb = iget kb in
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          th.iregs.(d) <- fa th * fb th;
          nxt)
    | Imad (d, a, b, c) -> (
      match (ik a, ik b, ik c) with
      | KReg i, KReg j, KReg m ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- (ir.(i) * ir.(j)) + ir.(m);
          nxt
      | (KReg i, KConst v, KReg m | KConst v, KReg i, KReg m) ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- (ir.(i) * v) + ir.(m);
          nxt
      | ka, kb, kc ->
        let fa = iget ka and fb = iget kb and fc = iget kc in
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          th.iregs.(d) <- (fa th * fb th) + fc th;
          nxt)
    | Idiv (d, a, b) ->
      let fa = iget (ik a) and fb = iget (ik b) in
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        let bv = fb th in
        if bv = 0 then trap_at k opc "%s: division by zero" p.name;
        th.iregs.(d) <- fa th / bv;
        nxt
    | Irem (d, a, b) ->
      let fa = iget (ik a) and fb = iget (ik b) in
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        let bv = fb th in
        if bv = 0 then trap_at k opc "%s: remainder by zero" p.name;
        th.iregs.(d) <- fa th mod bv;
        nxt
    | Imin (d, a, b) -> iop2 d a b (fun x y -> if x <= y then x else y) nxt
    | Imax (d, a, b) -> iop2 d a b (fun x y -> if x >= y then x else y) nxt
    | Ishl (d, a, b) -> iop2 d a b (fun x y -> x lsl y) nxt
    | Ishr (d, a, b) -> iop2 d a b (fun x y -> x asr y) nxt
    | Iand (d, a, b) -> iop2 d a b (fun x y -> x land y) nxt
    | Ior (d, a, b) -> iop2 d a b (fun x y -> x lor y) nxt
    | Setp (cmp, d, a, b) ->
      let cf : int -> int -> bool =
        match cmp with
        | Eq -> fun x y -> x = y
        | Ne -> fun x y -> x <> y
        | Lt -> fun x y -> x < y
        | Le -> fun x y -> x <= y
        | Gt -> fun x y -> x > y
        | Ge -> fun x y -> x >= y
      in
      (match (ik a, ik b) with
      | KReg i, KReg j ->
        fun ctx th ->
          let k = ctx.k in
          k.pred <- k.pred + 1;
          let ir = th.iregs in
          th.pregs.(d) <- cf ir.(i) ir.(j);
          nxt
      | KReg i, KConst v ->
        fun ctx th ->
          let k = ctx.k in
          k.pred <- k.pred + 1;
          th.pregs.(d) <- cf th.iregs.(i) v;
          nxt
      | ka, kb ->
        let fa = iget ka and fb = iget kb in
        fun ctx th ->
          let k = ctx.k in
          k.pred <- k.pred + 1;
          th.pregs.(d) <- cf (fa th) (fb th);
          nxt)
    | And_p (d, a, b) ->
      fun ctx th ->
        let k = ctx.k in
        k.pred <- k.pred + 1;
        let pr = th.pregs in
        pr.(d) <- pr.(a) && pr.(b);
        nxt
    | Or_p (d, a, b) ->
      fun ctx th ->
        let k = ctx.k in
        k.pred <- k.pred + 1;
        let pr = th.pregs in
        pr.(d) <- pr.(a) || pr.(b);
        nxt
    | Not_p (d, a) ->
      fun ctx th ->
        let k = ctx.k in
        k.pred <- k.pred + 1;
        let pr = th.pregs in
        pr.(d) <- not pr.(a);
        nxt
    | Fadd (d, a, b) -> fop2 d a b (fun x y -> x +. y) nxt
    | Fsub (d, a, b) -> fop2 d a b (fun x y -> x -. y) nxt
    | Fmul (d, a, b) -> fop2 d a b (fun x y -> x *. y) nxt
    | Ffma (d, a, b, c) -> (
      match (a, b, c) with
      | Freg x, Freg y, Freg z ->
        fun ctx th ->
          let k = ctx.k in
          k.fma <- k.fma + 1;
          let fr = th.fregs in
          fr.(d) <- (fr.(x) *. fr.(y)) +. fr.(z);
          nxt
      | _ ->
        let fa = fget a and fb = fget b and fc = fget c in
        fun ctx th ->
          let k = ctx.k in
          k.fma <- k.fma + 1;
          th.fregs.(d) <- (fa th *. fb th) +. fc th;
          nxt)
    | Fmax (d, a, b) -> fop2 d a b (fun x y -> Float.max x y) nxt
    | Fmin (d, a, b) -> fop2 d a b (fun x y -> Float.min x y) nxt
    | Ld_global (d, slot, addr) ->
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_global <- k.ld_global + 1;
        let a = fa th in
        record_global ctx ~store:false ms th.lin a;
        if a < 0 || a >= len then
          trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
            p.name bname a len;
        th.fregs.(d) <- Array.unsafe_get buf a;
        nxt
    | Ld_global_i (d, slot, addr) ->
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_global <- k.ld_global + 1;
        let a = fa th in
        record_global ctx ~store:false ms th.lin a;
        if a < 0 || a >= len then
          trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
            p.name bname a len;
        th.iregs.(d) <- int_of_float (Array.unsafe_get buf a);
        nxt
    | Ld_shared (d, addr) ->
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_shared <- k.ld_shared + 1;
        let a = fa th in
        record_shared ctx ms th.lin a;
        if a < 0 || a >= shared_words then
          trap_at k opc "%s: shared load out of bounds: [%d] (size %d)" p.name
            a shared_words;
        th.fregs.(d) <- Array.unsafe_get ctx.shared_f a;
        nxt
    | Ld_shared_i (d, addr) ->
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_shared <- k.ld_shared + 1;
        let a = fa th in
        record_shared ctx ms th.lin a;
        if a < 0 || a >= shared_int_words then
          trap_at k opc "%s: shared int load out of bounds: [%d] (size %d)"
            p.name a shared_int_words;
        th.iregs.(d) <- Array.unsafe_get ctx.shared_i a;
        nxt
    | St_global (slot, addr, v) ->
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) and fv = fget v in
      let ms = fresh_mem () in
      if is_half then
        fun ctx th ->
          let k = ctx.k in
          k.st_global <- k.st_global + 1;
          let a = fa th in
          record_global ctx ~store:true ms th.lin a;
          if a < 0 || a >= len then
            trap_at k opc "%s: global store out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (round_half (fv th));
          nxt
      else
        fun ctx th ->
          let k = ctx.k in
          k.st_global <- k.st_global + 1;
          let a = fa th in
          record_global ctx ~store:true ms th.lin a;
          if a < 0 || a >= len then
            trap_at k opc "%s: global store out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (fv th);
          nxt
    | St_shared (addr, v) ->
      let fa = iget (ik addr) and fv = fget v in
      let ms = fresh_mem () in
      if is_half then
        fun ctx th ->
          let k = ctx.k in
          k.st_shared <- k.st_shared + 1;
          let a = fa th in
          record_shared ctx ms th.lin a;
          if a < 0 || a >= shared_words then
            trap_at k opc "%s: shared store out of bounds: [%d] (size %d)"
              p.name a shared_words;
          Array.unsafe_set ctx.shared_f a (round_half (fv th));
          nxt
      else
        fun ctx th ->
          let k = ctx.k in
          k.st_shared <- k.st_shared + 1;
          let a = fa th in
          record_shared ctx ms th.lin a;
          if a < 0 || a >= shared_words then
            trap_at k opc "%s: shared store out of bounds: [%d] (size %d)"
              p.name a shared_words;
          Array.unsafe_set ctx.shared_f a (fv th);
          nxt
    | St_shared_i (addr, v) ->
      let fa = iget (ik addr) and fv = iget (ik v) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.st_shared <- k.st_shared + 1;
        let a = fa th in
        record_shared ctx ms th.lin a;
        if a < 0 || a >= shared_int_words then
          trap_at k opc "%s: shared int store out of bounds: [%d] (size %d)"
            p.name a shared_int_words;
        Array.unsafe_set ctx.shared_i a (fv th);
        nxt
    | Atom_global_add (slot, addr, v) ->
      (* No transaction replay for atomics (matching the reference); the
         load-side bounds message fires first, as the reference's
         [global_get] does. Kernels containing this op run serially. *)
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) and fv = fget v in
      if is_half then
        fun ctx th ->
          let k = ctx.k in
          k.atom <- k.atom + 1;
          let a = fa th in
          if a < 0 || a >= len then
            trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (round_half (Array.unsafe_get buf a +. fv th));
          nxt
      else
        fun ctx th ->
          let k = ctx.k in
          k.atom <- k.atom + 1;
          let a = fa th in
          if a < 0 || a >= len then
            trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (Array.unsafe_get buf a +. fv th);
          nxt
    | Bra target -> (
      match Hashtbl.find_opt labels target with
      | Some oi ->
        let t = comp_of_orig.(oi) in
        fun ctx _ ->
          let k = ctx.k in
          k.branch <- k.branch + 1;
          t
      | None ->
        (* Undefined labels trap lazily (on first execution), as the
           reference interpreter does. *)
        fun ctx _ ->
          let k = ctx.k in
          k.branch <- k.branch + 1;
          trap_at k opc "%s: undefined label %s" p.name target)
    | Bar ->
      fun ctx th ->
        let k = ctx.k in
        k.bar <- k.bar + 1;
        th.pc <- nxt;
        stop_bar
    | Ret ->
      let self = nxt - 1 in
      fun ctx th ->
        let k = ctx.k in
        k.branch <- k.branch + 1;
        th.pc <- self;
        th.done_ <- true;
        stop_ret
  in
  let code = Array.make (max 1 n_code) (fun _ _ -> stop_ret) in
  for i = 0 to n_body - 1 do
    let ci = idx.(i) in
    if ci >= 0 then begin
      let { Instr.op; guard } = body.(i) in
      let nxt = ci + 1 in
      let exec = compile_op i op nxt in
      code.(ci) <-
        (match guard with
        | None -> exec
        | Some (preg, sense) ->
          let mb = masked_bump op in
          if sense then
            fun ctx th ->
              if th.pregs.(preg) then exec ctx th
              else begin
                let k = ctx.k in
                k.predicated_off <- k.predicated_off + 1;
                mb k;
                nxt
              end
          else
            fun ctx th ->
              if th.pregs.(preg) then begin
                let k = ctx.k in
                k.predicated_off <- k.predicated_off + 1;
                mb k;
                nxt
              end
              else exec ctx th)
    end
  done;
  let n_mem = max 1 !n_mem in
  (* --- execution ------------------------------------------------------- *)
  let n_threads = bx * by * bz in
  let n_warps = (n_threads + 31) / 32 in
  let n_blocks = gx * gy * gz in
  let pool = Atomic.make (max_dynamic - 1) in
  let mk_ctx () =
    { k = zero_counters ();
      pool;
      lease = 0;
      n_warps;
      shared_f = Array.make (max 1 p.shared_words) 0.0;
      shared_i = Array.make (max 1 p.shared_int_words) 0;
      ord = Array.make (n_mem * n_warps * 32) 0;
      ord_stamp = Array.make (n_mem * n_warps * 32) 0;
      grps = Array.init (n_mem * n_warps) (fun _ -> [||]);
      stamp = 1;
      threads =
        Array.init n_threads (fun linear ->
            { fregs = Array.make (max 1 p.n_fregs) 0.0;
              iregs = Array.make (max 1 p.n_iregs) 0;
              pregs = Array.make (max 1 p.n_pregs) false;
              pc = 0;
              done_ = false;
              lin = linear;
              tid_x = linear mod bx;
              tid_y = linear / bx mod by;
              tid_z = linear / (bx * by);
              cta_x = 0;
              cta_y = 0;
              cta_z = 0 }) }
  in
  (* Execute [th] until it reaches a barrier or returns. The end-of-code
     check precedes the budget charge, as in the reference. *)
  let run_to_barrier ctx th =
    let rec go pc =
      if pc >= n_code then
        trap_at ctx.k (n_body - 1) "%s: fell off end of kernel" p.name
      else begin
        (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1 else refill ctx);
        let n = (Array.unsafe_get code pc) ctx th in
        if n >= 0 then go n else if n = stop_ret then Hit_ret else Hit_bar
      end
    in
    go th.pc
  in
  let exec_block ctx cx cy cz =
    let threads = ctx.threads in
    Array.fill ctx.shared_f 0 (Array.length ctx.shared_f) 0.0;
    Array.fill ctx.shared_i 0 (Array.length ctx.shared_i) 0;
    Array.iter
      (fun th ->
        Array.fill th.fregs 0 (Array.length th.fregs) 0.0;
        Array.fill th.iregs 0 (Array.length th.iregs) 0;
        Array.fill th.pregs 0 (Array.length th.pregs) false;
        th.pc <- 0;
        th.done_ <- false;
        th.cta_x <- cx;
        th.cta_y <- cy;
        th.cta_z <- cz)
      threads;
    ctx.stamp <- ctx.stamp + 1;
    (* Barrier-phase loop: all threads must agree on Hit_bar vs Hit_ret. *)
    let where stop (th : thread) =
      (* After Hit_bar the pc has advanced past the Bar; Ret leaves it. *)
      match stop with
      | Hit_bar ->
        Printf.sprintf "hit barrier at %s" (describe orig_of.(th.pc - 1))
      | Hit_ret -> Printf.sprintf "returned at %s" (describe orig_of.(th.pc))
    in
    let rec phases () =
      let first = run_to_barrier ctx threads.(0) in
      for i = 1 to n_threads - 1 do
        let stop = run_to_barrier ctx threads.(i) in
        if stop <> first then
          raise
            (Trap
               (Printf.sprintf
                  "%s: barrier divergence: thread 0 %s but thread %d %s [%s]"
                  p.name
                  (where first threads.(0))
                  i
                  (where stop threads.(i))
                  (summary ctx.k)))
      done;
      ctx.stamp <- ctx.stamp + 1;
      match first with Hit_ret -> () | Hit_bar -> phases ()
    in
    phases ()
  in
  (* Blocks execute in linearized order b = cz*gy*gx + cy*gx + cx, the
     reference's cz-outer/cx-inner nesting. *)
  let exec_chunk ~offset ~size =
    let ctx = mk_ctx () in
    for b = offset to offset + size - 1 do
      exec_block ctx (b mod gx) (b / gx mod gy) (b / (gx * gy))
    done;
    ctx.k
  in
  let has_atomics =
    Array.exists
      (fun (i : Instr.t) ->
        match i.Instr.op with Instr.Atom_global_add _ -> true | _ -> false)
      body
  in
  let n_domains =
    let d =
      match domains with
      | Some d -> max 1 d
      | None -> Util.Parallel.recommended_domains ()
    in
    if has_atomics then 1 else max 1 (min d n_blocks)
  in
  let shards =
    if n_domains <= 1 then [ exec_chunk ~offset:0 ~size:n_blocks ]
    else
      Util.Parallel.run_chunks_offsets ~domains:n_domains ~total:n_blocks
        (fun ~chunk:_ ~offset ~size -> exec_chunk ~offset ~size)
  in
  let counters = zero_counters () in
  List.iter (fun shard -> add_into ~into:counters shard) shards;
  obs_export counters;
  counters
