open Types

type counters = {
  mutable ialu : int;
  mutable fma : int;
  mutable fp_other : int;
  mutable ld_global : int;
  mutable st_global : int;
  mutable ld_shared : int;
  mutable st_shared : int;
  mutable atom : int;
  mutable bar : int;
  mutable branch : int;
  mutable pred : int;
  mutable mov : int;
  mutable predicated_off : int;
  mutable gld_transactions : int;
  mutable gst_transactions : int;
  mutable shared_transactions : int;
}

let zero_counters () =
  { ialu = 0; fma = 0; fp_other = 0; ld_global = 0; st_global = 0;
    ld_shared = 0; st_shared = 0; atom = 0; bar = 0; branch = 0;
    pred = 0; mov = 0; predicated_off = 0;
    gld_transactions = 0; gst_transactions = 0; shared_transactions = 0 }

let total c =
  c.ialu + c.fma + c.fp_other + c.ld_global + c.st_global + c.ld_shared
  + c.st_shared + c.atom + c.bar + c.branch + c.pred + c.mov

let summary c =
  Printf.sprintf
    "dyn: total=%d ialu=%d fma=%d fp=%d ld.g=%d st.g=%d ld.s=%d st.s=%d \
     atom=%d bar=%d bra=%d pred=%d mov=%d masked=%d gld.txn=%d gst.txn=%d \
     smem.txn=%d"
    (total c) c.ialu c.fma c.fp_other c.ld_global c.st_global c.ld_shared
    c.st_shared c.atom c.bar c.branch c.pred c.mov c.predicated_off
    c.gld_transactions c.gst_transactions c.shared_transactions

let add_into ~into c =
  into.ialu <- into.ialu + c.ialu;
  into.fma <- into.fma + c.fma;
  into.fp_other <- into.fp_other + c.fp_other;
  into.ld_global <- into.ld_global + c.ld_global;
  into.st_global <- into.st_global + c.st_global;
  into.ld_shared <- into.ld_shared + c.ld_shared;
  into.st_shared <- into.st_shared + c.st_shared;
  into.atom <- into.atom + c.atom;
  into.bar <- into.bar + c.bar;
  into.branch <- into.branch + c.branch;
  into.pred <- into.pred + c.pred;
  into.mov <- into.mov + c.mov;
  into.predicated_off <- into.predicated_off + c.predicated_off;
  into.gld_transactions <- into.gld_transactions + c.gld_transactions;
  into.gst_transactions <- into.gst_transactions + c.gst_transactions;
  into.shared_transactions <- into.shared_transactions + c.shared_transactions

(* Feed the per-run totals into the tracing subsystem (one call per
   interpreted launch; a handful of no-ops when tracing is off). *)
let obs_export c =
  if Obs.Trace.enabled () then begin
    Obs.Metrics.incr "interp.runs";
    Obs.Metrics.add "interp.dyn.total" (total c);
    Obs.Metrics.add "interp.dyn.ialu" c.ialu;
    Obs.Metrics.add "interp.dyn.fma" c.fma;
    Obs.Metrics.add "interp.dyn.fp_other" c.fp_other;
    Obs.Metrics.add "interp.dyn.ld_global" c.ld_global;
    Obs.Metrics.add "interp.dyn.st_global" c.st_global;
    Obs.Metrics.add "interp.dyn.ld_shared" c.ld_shared;
    Obs.Metrics.add "interp.dyn.st_shared" c.st_shared;
    Obs.Metrics.add "interp.dyn.atom" c.atom;
    Obs.Metrics.add "interp.dyn.bar_waits" c.bar;
    Obs.Metrics.add "interp.dyn.branch" c.branch;
    Obs.Metrics.add "interp.dyn.pred" c.pred;
    Obs.Metrics.add "interp.dyn.mov" c.mov;
    Obs.Metrics.add "interp.dyn.predicated_off" c.predicated_off;
    Obs.Metrics.add "interp.txn.global_load" c.gld_transactions;
    Obs.Metrics.add "interp.txn.global_store" c.gst_transactions;
    Obs.Metrics.add "interp.txn.shared" c.shared_transactions
  end

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* ---------------------------------------------------------------------
   Threaded-code engine.

   [run] lowers the instruction array once per launch into an array of
   closures ("threaded code"): one closure per real instruction, taking
   the per-domain execution context and the current thread and returning
   the next compiled pc (or a negative stop sentinel for Bar/Ret). All
   launch-invariant decoding happens at compile time:

   - labels are squashed out of the code array, so fall-through is always
     [pc + 1] and branch targets are pre-resolved compiled indices — no
     label Hashtbl on the hot path;
   - operands are pre-discriminated: params and launch-geometry specials
     ([Ntid_*]/[Nctaid_*]) fold to constants, [Tid_*]/[Ctaid_*] read
     thread fields, and the register/immediate split is decided once;
   - guards are hoisted into a wrapper closure, so unguarded instructions
     pay nothing for predication;
   - the per-category counter bump is baked into each closure.

   Blocks are independent except for [Atom_global_add], so the grid loop
   fans out across OCaml domains ([Util.Parallel]): each domain executes
   a contiguous chunk of linearized block indices against its own context
   (counter shard, shared memory, transaction-replay state) and the
   shards are summed in chunk order afterwards — counter totals are
   sums of per-block contributions, so the merged result is bit-identical
   to serial execution. Kernels containing global atomics fall back to a
   single domain so floating-point accumulation order (and thus output
   buffers) also stays bit-identical. The dynamic-instruction budget is a
   shared atomic permit pool; domains take leases of [lease_chunk]
   permits so the hot path stays a plain decrement. *)

(* Per-thread architectural state. Threads are allocated once per domain
   and reset per block (registers zero-filled, as a fresh allocation
   would be). *)
type thread = {
  fregs : float array;
  iregs : int array;
  pregs : bool array;
  mutable pc : int;  (* compiled pc *)
  mutable done_ : bool;
  lin : int;  (* linear thread index within the block (lane = lin mod 32) *)
  tid_x : int;
  tid_y : int;
  tid_z : int;
  mutable cta_x : int;
  mutable cta_y : int;
  mutable cta_z : int;
}

(* One access group of the memory-transaction replay: the accesses issued
   by the lanes of one warp for one dynamic execution of one memory
   instruction. Groups live in per-(instruction, warp) pools indexed by
   the dynamic ordinal and are invalidated lazily by stamp comparison at
   every barrier phase — no per-phase O(size) reset. A group holds at most
   32 entries (one per lane), so membership is a linear scan over a small
   int array: distinct 32-word segments for global memory, distinct
   addresses for shared memory. *)
type grp = {
  mutable g_items : int array;
  mutable g_n : int;
  mutable g_passes : int;  (* shared: serialized passes charged so far *)
  mutable g_stamp : int;
  mutable g_id : int;  (* unique per incarnation; keys the probe table *)
  mutable g_seeded : int;  (* g_id for which the probe table was seeded *)
  mutable g_banks : int array;  (* shared: per-bank counts, big groups *)
  mutable g_tab_addr : int array;  (* open-addressed membership table *)
  mutable g_tab_id : int array;  (* owning g_id per table slot *)
}

(* Per-domain execution context. *)
type ctx = {
  k : counters;  (* this domain's counter shard *)
  pool : int Atomic.t;  (* shared budget: remaining permitted executions *)
  mutable lease : int;  (* permits reserved locally, spent one per charge *)
  n_warps : int;
  shared_f : float array;
  shared_i : int array;
  (* replay state: flat per-(mem-instruction, warp, lane) dynamic
     ordinals — packed as [(stamp lsl 32) lor kth] so one array access
     replaces a separate stamp check — plus per-(mem-instruction, warp)
     group pools *)
  ord : int array;
  grps : grp array array;
  mutable gid : int;  (* next fresh group-incarnation id *)
  mutable stamp : int;  (* bumped per barrier phase and per block *)
  threads : thread array;
}

let lease_chunk = 65536

let refill ctx =
  let rec take () =
    let cur = Atomic.get ctx.pool in
    if cur <= 0 then
      raise
        (Trap
           (Printf.sprintf "dynamic instruction budget exhausted [%s]"
              (summary ctx.k)))
    else
      let g = if lease_chunk < cur then lease_chunk else cur in
      if Atomic.compare_and_set ctx.pool cur (cur - g) then ctx.lease <- g - 1
      else take ()
  in
  take ()

let new_grp () =
  { g_items = Array.make 8 0;
    g_n = 0;
    g_passes = 0;
    g_stamp = 0;
    g_id = 0;
    g_seeded = 0;
    g_banks = [||];
    g_tab_addr = [||];
    g_tab_id = [||] }

(* Locate this lane's current access group: bump the lane's dynamic
   ordinal and return the (lazily reset) k-th group of the (slot, warp)
   pool. [msw] is the memory slot pre-scaled by [n_warps] at compile
   time, so locating the pool costs a shift and an add. The packed
   ordinal word self-invalidates across barrier phases by carrying its
   stamp in the high bits; a kth above 2^32 would corrupt the stamp, but
   that would take >4e9 dynamic executions of a single instruction —
   far beyond any [max_dynamic] in use. *)
let group ctx msw lin =
  let sw = msw + (lin lsr 5) in
  let oi = (sw lsl 5) lor (lin land 31) in
  let stamp = ctx.stamp in
  let o = Array.unsafe_get ctx.ord oi in
  let kth = if o asr 32 = stamp then o land 0xffffffff else 0 in
  Array.unsafe_set ctx.ord oi ((stamp lsl 32) lor (kth + 1));
  let row = Array.unsafe_get ctx.grps sw in
  let row =
    if kth < Array.length row then row
    else begin
      let n = Array.length row in
      let grown =
        Array.init (max 8 (2 * (kth + 1))) (fun i ->
            if i < n then row.(i) else new_grp ())
      in
      ctx.grps.(sw) <- grown;
      grown
    end
  in
  let g = Array.unsafe_get row kth in
  if g.g_stamp <> stamp then begin
    g.g_stamp <- stamp;
    g.g_n <- 0;
    g.g_passes <- 0;
    g.g_id <- ctx.gid;
    ctx.gid <- ctx.gid + 1
  end;
  g

let grp_add g v =
  if g.g_n = Array.length g.g_items then begin
    let grown = Array.make (2 * g.g_n) 0 in
    Array.blit g.g_items 0 grown 0 g.g_n;
    g.g_items <- grown
  end;
  g.g_items.(g.g_n) <- v;
  g.g_n <- g.g_n + 1

let grp_threshold = 8
let shared_tab_mask = 63  (* 64 slots >= 2 * 32 lanes: load factor <= 1/2 *)

(* Closure-free helpers for the replay hot path: module-level recursion
   avoids allocating a local closure environment on every access. *)

let record_global ctx ~store msw lin addr =
  let g = group ctx msw lin in
  let seg = addr asr 5 in
  let items = g.g_items and n = g.g_n in
  let rec mem i = i < n && (Array.unsafe_get items i = seg || mem (i + 1)) in
  if not (mem 0) then begin
    grp_add g seg;
    let k = ctx.k in
    if store then k.gst_transactions <- k.gst_transactions + 1
    else k.gld_transactions <- k.gld_transactions + 1
  end

(* Serialized passes: max over banks of the distinct-address count (equal
   addresses broadcast). Charge one transaction each time the running max
   grows — identical to charging the final max once per group.

   Small groups (the common predicated/tail case) use a linear scan over
   [g_items], exactly the naive algorithm. Once a group crosses
   [grp_threshold] distinct addresses — e.g. the 32 distinct lanes of a
   staging load — membership switches to a 64-slot open-addressed probe
   table and the bank maximum to incrementally maintained per-bank counts,
   turning the per-lane cost from O(n) scans into O(1) expected. Stale
   table slots self-invalidate by [g_id] comparison, so reseating a group
   never clears the table. Both paths charge identically by construction:
   the switch only changes how "distinct" and "max over banks" are
   computed, not their values. *)
let record_shared ctx msw lin addr =
  let g = group ctx msw lin in
  let n = g.g_n in
  let charge c =
    if c > g.g_passes then begin
      g.g_passes <- c;
      ctx.k.shared_transactions <- ctx.k.shared_transactions + 1
    end
  in
  if n < grp_threshold then begin
    let items = g.g_items in
    let rec mem i = i < n && (Array.unsafe_get items i = addr || mem (i + 1)) in
    if not (mem 0) then begin
      let bank = addr land 31 in
      let c = ref 1 in
      for i = 0 to n - 1 do
        if Array.unsafe_get items i land 31 = bank then incr c
      done;
      grp_add g addr;
      charge !c
    end
  end
  else begin
    let id = g.g_id in
    if g.g_seeded <> id then begin
      (* First access past the threshold: seed the probe table and bank
         counts from the items accumulated by the linear path. *)
      if Array.length g.g_tab_addr = 0 then begin
        g.g_tab_addr <- Array.make (shared_tab_mask + 1) 0;
        g.g_tab_id <- Array.make (shared_tab_mask + 1) 0;
        g.g_banks <- Array.make 32 0
      end
      else Array.fill g.g_banks 0 32 0;
      let items = g.g_items and tab_addr = g.g_tab_addr and tab_id = g.g_tab_id in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get items i in
        let rec place s =
          let s = s land shared_tab_mask in
          if Array.unsafe_get tab_id s = id then place (s + 1)
          else begin
            Array.unsafe_set tab_id s id;
            Array.unsafe_set tab_addr s v
          end
        in
        place (v land shared_tab_mask);
        let b = v land 31 in
        Array.unsafe_set g.g_banks b (Array.unsafe_get g.g_banks b + 1)
      done;
      g.g_seeded <- id
    end;
    let tab_addr = g.g_tab_addr and tab_id = g.g_tab_id in
    let rec probe s =
      let s = s land shared_tab_mask in
      if Array.unsafe_get tab_id s = id then
        if Array.unsafe_get tab_addr s = addr then () (* broadcast: free *)
        else probe (s + 1)
      else begin
        Array.unsafe_set tab_id s id;
        Array.unsafe_set tab_addr s addr;
        g.g_n <- n + 1;
        let bank = addr land 31 in
        let c = Array.unsafe_get g.g_banks bank + 1 in
        Array.unsafe_set g.g_banks bank c;
        charge c
      end
    in
    probe (addr land shared_tab_mask)
  end

type stop = Hit_bar | Hit_ret

(* Compiled-pc stop sentinels returned by closures instead of a next pc. *)
let stop_ret = -1
let stop_bar = -2

(* Pre-discriminated integer operand. *)
type ikind =
  | KReg of int
  | KConst of int
  | KDyn of (thread -> int)

(* pc -> nearest preceding label, precomputed in one pass so trap
   messages stay rich ("pc N (label L + k)") at zero steady-state cost. *)
let nearest_labels (body : Instr.t array) =
  let near = Array.make (max 1 (Array.length body)) None in
  let cur = ref None in
  Array.iteri
    (fun i (ins : Instr.t) ->
      (match ins.Instr.op with Instr.Label l -> cur := Some (l, i) | _ -> ());
      near.(i) <- !cur)
    body;
  near

let describe_with near n_body pc =
  let j = if pc < n_body - 1 then pc else n_body - 1 in
  if j < 0 then Printf.sprintf "pc %d" pc
  else
    match near.(j) with
    | Some (l, lpc) when pc = lpc -> Printf.sprintf "pc %d (label %s)" pc l
    | Some (l, lpc) -> Printf.sprintf "pc %d (label %s + %d)" pc l (pc - lpc)
    | None -> Printf.sprintf "pc %d" pc

(* Category bump applied to instructions whose guard evaluated false:
   masked instructions still occupy an issue slot, so they count in their
   category (keeping static/dynamic cross-checks aligned). *)
let masked_bump op : counters -> unit =
  match Instr.categorize op with
  | Some Instr.Cat_ialu -> fun k -> k.ialu <- k.ialu + 1
  | Some Cat_fma -> fun k -> k.fma <- k.fma + 1
  | Some Cat_fp_other -> fun k -> k.fp_other <- k.fp_other + 1
  | Some Cat_ld_global -> fun k -> k.ld_global <- k.ld_global + 1
  | Some Cat_st_global -> fun k -> k.st_global <- k.st_global + 1
  | Some Cat_ld_shared -> fun k -> k.ld_shared <- k.ld_shared + 1
  | Some Cat_st_shared -> fun k -> k.st_shared <- k.st_shared + 1
  | Some Cat_atom -> fun k -> k.atom <- k.atom + 1
  | Some Cat_bar -> fun k -> k.bar <- k.bar + 1
  | Some Cat_branch -> fun k -> k.branch <- k.branch + 1
  | Some Cat_pred -> fun k -> k.pred <- k.pred + 1
  | Some Cat_mov -> fun k -> k.mov <- k.mov + 1
  | None -> fun _ -> ()

(* Stable category numbering packed into bytecode instruction words
   (bits 18–21) for the masked-issue bump; follows the field order of
   [counters], like [Scoreboard.cat_index]. *)
let cat_code = function
  | Instr.Cat_ialu -> 0
  | Cat_fma -> 1
  | Cat_fp_other -> 2
  | Cat_ld_global -> 3
  | Cat_st_global -> 4
  | Cat_ld_shared -> 5
  | Cat_st_shared -> 6
  | Cat_atom -> 7
  | Cat_bar -> 8
  | Cat_branch -> 9
  | Cat_pred -> 10
  | Cat_mov -> 11

let bump_cat k = function
  | 0 -> k.ialu <- k.ialu + 1
  | 1 -> k.fma <- k.fma + 1
  | 2 -> k.fp_other <- k.fp_other + 1
  | 3 -> k.ld_global <- k.ld_global + 1
  | 4 -> k.st_global <- k.st_global + 1
  | 5 -> k.ld_shared <- k.ld_shared + 1
  | 6 -> k.st_shared <- k.st_shared + 1
  | 7 -> k.atom <- k.atom + 1
  | 8 -> k.bar <- k.bar + 1
  | 9 -> k.branch <- k.branch + 1
  | 10 -> k.pred <- k.pred + 1
  | 11 -> k.mov <- k.mov + 1
  | _ -> ()

let run_closures ?(max_dynamic = 200_000_000) ?domains (p : Program.t) ~grid
    ~block ~bufs ~iargs =
  let gx, gy, gz = grid and bx, by, bz = block in
  if gx <= 0 || gy <= 0 || gz <= 0 || bx <= 0 || by <= 0 || bz <= 0 then
    trap "invalid launch geometry";
  let buffers =
    Array.map
      (fun name ->
        match List.assoc_opt name bufs with
        | Some a -> a
        | None -> trap "missing buffer argument %s" name)
      p.buf_params
  in
  let ints =
    Array.map
      (fun name ->
        match List.assoc_opt name iargs with
        | Some v -> v
        | None -> trap "missing int argument %s" name)
      p.int_params
  in
  let labels = Program.find_labels p in
  let body = p.body in
  let n_body = Array.length body in
  let near = nearest_labels body in
  let describe pc = describe_with near n_body pc in
  (* Every trap raised during execution carries the counter totals
     accumulated up to the fault (this domain's shard) — the "hardware
     counter" snapshot that makes divergent or runaway kernels
     diagnosable post mortem. *)
  let trap_at k opc fmt =
    Printf.ksprintf
      (fun s ->
        let where = describe opc in
        (* When serving telemetry is live, record the trap in the flight
           ring and append the recorder's recent-event context to the
           failure report — the post-mortem for a kernel that faults
           mid-request. *)
        let flight =
          if Obs.Telemetry.enabled () then begin
            Obs.Telemetry.Flight.record ~kind:"trap" ~name:p.name
              (s ^ " at " ^ where);
            match Obs.Telemetry.Flight.dump () with
            | "" -> ""
            | d -> "\n" ^ d
          end
          else ""
        in
        raise
          (Trap (Printf.sprintf "%s at %s [%s]%s" s where (summary k) flight)))
      fmt
  in
  let is_half = p.dtype = F16 in

  let shared_words = p.shared_words in
  let shared_int_words = p.shared_int_words in
  (* --- compile pass ---------------------------------------------------- *)
  (* Squash labels: [idx.(i)] is the compiled index of real instruction
     [i] (-1 for labels); [orig_of] maps back for trap messages;
     [comp_of_orig] maps any original pc to the first real instruction at
     or after it (branch targets land on labels). *)
  let idx = Array.make (max 1 n_body) (-1) in
  let n_code =
    let j = ref 0 in
    for i = 0 to n_body - 1 do
      match body.(i).Instr.op with
      | Instr.Label _ -> ()
      | _ ->
        idx.(i) <- !j;
        incr j
    done;
    !j
  in
  let orig_of = Array.make (n_code + 1) n_body in
  Array.iteri (fun i ci -> if ci >= 0 then orig_of.(ci) <- i) idx;
  let comp_of_orig = Array.make (max 1 n_body) n_code in
  (let nxt = ref n_code in
   for i = n_body - 1 downto 0 do
     if idx.(i) >= 0 then nxt := idx.(i);
     comp_of_orig.(i) <- !nxt
   done);
  (* Dense memory-instruction slots for the transaction replay,
     pre-scaled by n_warps so locating a (slot, warp) group pool needs
     no multiply on the hot path. *)
  let n_warps = ((bx * by * bz) + 31) / 32 in
  let n_mem = ref 0 in
  let fresh_mem () =
    let m = !n_mem * n_warps in
    incr n_mem;
    m
  in
  let ik = function
    | Ireg r -> KReg r
    | Iimm v -> KConst v
    | Iparam slot -> KConst ints.(slot)
    | Ispecial s -> (
      match s with
      | Ntid_x -> KConst bx
      | Ntid_y -> KConst by
      | Ntid_z -> KConst bz
      | Nctaid_x -> KConst gx
      | Nctaid_y -> KConst gy
      | Nctaid_z -> KConst gz
      | Tid_x -> KDyn (fun th -> th.tid_x)
      | Tid_y -> KDyn (fun th -> th.tid_y)
      | Tid_z -> KDyn (fun th -> th.tid_z)
      | Ctaid_x -> KDyn (fun th -> th.cta_x)
      | Ctaid_y -> KDyn (fun th -> th.cta_y)
      | Ctaid_z -> KDyn (fun th -> th.cta_z))
  in
  let iget = function
    | KReg r -> fun th -> th.iregs.(r)
    | KConst v -> fun _ -> v
    | KDyn f -> f
  in
  let fget = function
    | Freg r -> fun th -> th.fregs.(r)
    | Fimm v -> fun _ -> v
  in
  (* Generic integer binop (cold shapes); hot ops get inlined cases. *)
  let iop2 d a b (f : int -> int -> int) nxt =
    match (ik a, ik b) with
    | KReg i, KReg j ->
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f th.iregs.(i) th.iregs.(j);
        nxt
    | KReg i, KConst v ->
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f th.iregs.(i) v;
        nxt
    | KConst v, KReg j ->
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f v th.iregs.(j);
        nxt
    | ka, kb ->
      let fa = iget ka and fb = iget kb in
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        th.iregs.(d) <- f (fa th) (fb th);
        nxt
  in
  (* Generic float binop into fp_other. *)
  let fop2 d a b (f : float -> float -> float) nxt =
    match (a, b) with
    | Freg i, Freg j ->
      fun ctx th ->
        let k = ctx.k in
        k.fp_other <- k.fp_other + 1;
        let fr = th.fregs in
        fr.(d) <- f fr.(i) fr.(j);
        nxt
    | _ ->
      let fa = fget a and fb = fget b in
      fun ctx th ->
        let k = ctx.k in
        k.fp_other <- k.fp_other + 1;
        th.fregs.(d) <- f (fa th) (fb th);
        nxt
  in
  let compile_op opc (op : Instr.op) nxt : ctx -> thread -> int =
    match op with
    | Instr.Label _ -> assert false
    | Mov (d, a) -> (
      match ik a with
      | KReg s ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.iregs.(d) <- th.iregs.(s);
          nxt
      | KConst v ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.iregs.(d) <- v;
          nxt
      | KDyn f ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.iregs.(d) <- f th;
          nxt)
    | Movf (d, a) -> (
      match a with
      | Freg s ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.fregs.(d) <- th.fregs.(s);
          nxt
      | Fimm v ->
        fun ctx th ->
          let k = ctx.k in
          k.mov <- k.mov + 1;
          th.fregs.(d) <- v;
          nxt)
    | Iadd (d, a, b) -> (
      match (ik a, ik b) with
      | KReg i, KReg j ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) + ir.(j);
          nxt
      | (KReg i, KConst v | KConst v, KReg i) ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) + v;
          nxt
      | ka, kb ->
        let fa = iget ka and fb = iget kb in
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          th.iregs.(d) <- fa th + fb th;
          nxt)
    | Isub (d, a, b) -> iop2 d a b (fun x y -> x - y) nxt
    | Imul (d, a, b) -> (
      match (ik a, ik b) with
      | KReg i, KReg j ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) * ir.(j);
          nxt
      | (KReg i, KConst v | KConst v, KReg i) ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- ir.(i) * v;
          nxt
      | ka, kb ->
        let fa = iget ka and fb = iget kb in
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          th.iregs.(d) <- fa th * fb th;
          nxt)
    | Imad (d, a, b, c) -> (
      match (ik a, ik b, ik c) with
      | KReg i, KReg j, KReg m ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- (ir.(i) * ir.(j)) + ir.(m);
          nxt
      | (KReg i, KConst v, KReg m | KConst v, KReg i, KReg m) ->
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          let ir = th.iregs in
          ir.(d) <- (ir.(i) * v) + ir.(m);
          nxt
      | ka, kb, kc ->
        let fa = iget ka and fb = iget kb and fc = iget kc in
        fun ctx th ->
          let k = ctx.k in
          k.ialu <- k.ialu + 1;
          th.iregs.(d) <- (fa th * fb th) + fc th;
          nxt)
    | Idiv (d, a, b) ->
      let fa = iget (ik a) and fb = iget (ik b) in
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        let bv = fb th in
        if bv = 0 then trap_at k opc "%s: division by zero" p.name;
        th.iregs.(d) <- fa th / bv;
        nxt
    | Irem (d, a, b) ->
      let fa = iget (ik a) and fb = iget (ik b) in
      fun ctx th ->
        let k = ctx.k in
        k.ialu <- k.ialu + 1;
        let bv = fb th in
        if bv = 0 then trap_at k opc "%s: remainder by zero" p.name;
        th.iregs.(d) <- fa th mod bv;
        nxt
    | Imin (d, a, b) -> iop2 d a b (fun x y -> if x <= y then x else y) nxt
    | Imax (d, a, b) -> iop2 d a b (fun x y -> if x >= y then x else y) nxt
    | Ishl (d, a, b) -> iop2 d a b (fun x y -> x lsl y) nxt
    | Ishr (d, a, b) -> iop2 d a b (fun x y -> x asr y) nxt
    | Iand (d, a, b) -> iop2 d a b (fun x y -> x land y) nxt
    | Ior (d, a, b) -> iop2 d a b (fun x y -> x lor y) nxt
    | Setp (cmp, d, a, b) ->
      let cf : int -> int -> bool =
        match cmp with
        | Eq -> fun x y -> x = y
        | Ne -> fun x y -> x <> y
        | Lt -> fun x y -> x < y
        | Le -> fun x y -> x <= y
        | Gt -> fun x y -> x > y
        | Ge -> fun x y -> x >= y
      in
      (match (ik a, ik b) with
      | KReg i, KReg j ->
        fun ctx th ->
          let k = ctx.k in
          k.pred <- k.pred + 1;
          let ir = th.iregs in
          th.pregs.(d) <- cf ir.(i) ir.(j);
          nxt
      | KReg i, KConst v ->
        fun ctx th ->
          let k = ctx.k in
          k.pred <- k.pred + 1;
          th.pregs.(d) <- cf th.iregs.(i) v;
          nxt
      | ka, kb ->
        let fa = iget ka and fb = iget kb in
        fun ctx th ->
          let k = ctx.k in
          k.pred <- k.pred + 1;
          th.pregs.(d) <- cf (fa th) (fb th);
          nxt)
    | And_p (d, a, b) ->
      fun ctx th ->
        let k = ctx.k in
        k.pred <- k.pred + 1;
        let pr = th.pregs in
        pr.(d) <- pr.(a) && pr.(b);
        nxt
    | Or_p (d, a, b) ->
      fun ctx th ->
        let k = ctx.k in
        k.pred <- k.pred + 1;
        let pr = th.pregs in
        pr.(d) <- pr.(a) || pr.(b);
        nxt
    | Not_p (d, a) ->
      fun ctx th ->
        let k = ctx.k in
        k.pred <- k.pred + 1;
        let pr = th.pregs in
        pr.(d) <- not pr.(a);
        nxt
    | Fadd (d, a, b) -> fop2 d a b (fun x y -> x +. y) nxt
    | Fsub (d, a, b) -> fop2 d a b (fun x y -> x -. y) nxt
    | Fmul (d, a, b) -> fop2 d a b (fun x y -> x *. y) nxt
    | Ffma (d, a, b, c) -> (
      match (a, b, c) with
      | Freg x, Freg y, Freg z ->
        fun ctx th ->
          let k = ctx.k in
          k.fma <- k.fma + 1;
          let fr = th.fregs in
          fr.(d) <- (fr.(x) *. fr.(y)) +. fr.(z);
          nxt
      | _ ->
        let fa = fget a and fb = fget b and fc = fget c in
        fun ctx th ->
          let k = ctx.k in
          k.fma <- k.fma + 1;
          th.fregs.(d) <- (fa th *. fb th) +. fc th;
          nxt)
    | Fmax (d, a, b) -> fop2 d a b (fun x y -> Float.max x y) nxt
    | Fmin (d, a, b) -> fop2 d a b (fun x y -> Float.min x y) nxt
    | Ld_global (d, slot, addr) ->
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_global <- k.ld_global + 1;
        let a = fa th in
        record_global ctx ~store:false ms th.lin a;
        if a < 0 || a >= len then
          trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
            p.name bname a len;
        th.fregs.(d) <- Array.unsafe_get buf a;
        nxt
    | Ld_global_i (d, slot, addr) ->
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_global <- k.ld_global + 1;
        let a = fa th in
        record_global ctx ~store:false ms th.lin a;
        if a < 0 || a >= len then
          trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
            p.name bname a len;
        th.iregs.(d) <- int_of_float (Array.unsafe_get buf a);
        nxt
    | Ld_shared (d, addr) ->
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_shared <- k.ld_shared + 1;
        let a = fa th in
        record_shared ctx ms th.lin a;
        if a < 0 || a >= shared_words then
          trap_at k opc "%s: shared load out of bounds: [%d] (size %d)" p.name
            a shared_words;
        th.fregs.(d) <- Array.unsafe_get ctx.shared_f a;
        nxt
    | Ld_shared_i (d, addr) ->
      let fa = iget (ik addr) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.ld_shared <- k.ld_shared + 1;
        let a = fa th in
        record_shared ctx ms th.lin a;
        if a < 0 || a >= shared_int_words then
          trap_at k opc "%s: shared int load out of bounds: [%d] (size %d)"
            p.name a shared_int_words;
        th.iregs.(d) <- Array.unsafe_get ctx.shared_i a;
        nxt
    | St_global (slot, addr, v) ->
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) and fv = fget v in
      let ms = fresh_mem () in
      if is_half then
        fun ctx th ->
          let k = ctx.k in
          k.st_global <- k.st_global + 1;
          let a = fa th in
          record_global ctx ~store:true ms th.lin a;
          if a < 0 || a >= len then
            trap_at k opc "%s: global store out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (round_half (fv th));
          nxt
      else
        fun ctx th ->
          let k = ctx.k in
          k.st_global <- k.st_global + 1;
          let a = fa th in
          record_global ctx ~store:true ms th.lin a;
          if a < 0 || a >= len then
            trap_at k opc "%s: global store out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (fv th);
          nxt
    | St_shared (addr, v) ->
      let fa = iget (ik addr) and fv = fget v in
      let ms = fresh_mem () in
      if is_half then
        fun ctx th ->
          let k = ctx.k in
          k.st_shared <- k.st_shared + 1;
          let a = fa th in
          record_shared ctx ms th.lin a;
          if a < 0 || a >= shared_words then
            trap_at k opc "%s: shared store out of bounds: [%d] (size %d)"
              p.name a shared_words;
          Array.unsafe_set ctx.shared_f a (round_half (fv th));
          nxt
      else
        fun ctx th ->
          let k = ctx.k in
          k.st_shared <- k.st_shared + 1;
          let a = fa th in
          record_shared ctx ms th.lin a;
          if a < 0 || a >= shared_words then
            trap_at k opc "%s: shared store out of bounds: [%d] (size %d)"
              p.name a shared_words;
          Array.unsafe_set ctx.shared_f a (fv th);
          nxt
    | St_shared_i (addr, v) ->
      let fa = iget (ik addr) and fv = iget (ik v) in
      let ms = fresh_mem () in
      fun ctx th ->
        let k = ctx.k in
        k.st_shared <- k.st_shared + 1;
        let a = fa th in
        record_shared ctx ms th.lin a;
        if a < 0 || a >= shared_int_words then
          trap_at k opc "%s: shared int store out of bounds: [%d] (size %d)"
            p.name a shared_int_words;
        Array.unsafe_set ctx.shared_i a (fv th);
        nxt
    | Atom_global_add (slot, addr, v) ->
      (* No transaction replay for atomics (matching the reference); the
         load-side bounds message fires first, as the reference's
         [global_get] does. Kernels containing this op run serially. *)
      let buf = buffers.(slot) in
      let bname = p.buf_params.(slot) in
      let len = Array.length buf in
      let fa = iget (ik addr) and fv = fget v in
      if is_half then
        fun ctx th ->
          let k = ctx.k in
          k.atom <- k.atom + 1;
          let a = fa th in
          if a < 0 || a >= len then
            trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (round_half (Array.unsafe_get buf a +. fv th));
          nxt
      else
        fun ctx th ->
          let k = ctx.k in
          k.atom <- k.atom + 1;
          let a = fa th in
          if a < 0 || a >= len then
            trap_at k opc "%s: global load out of bounds: %s[%d] (len %d)"
              p.name bname a len;
          Array.unsafe_set buf a (Array.unsafe_get buf a +. fv th);
          nxt
    | Bra target -> (
      match Hashtbl.find_opt labels target with
      | Some oi ->
        let t = comp_of_orig.(oi) in
        fun ctx _ ->
          let k = ctx.k in
          k.branch <- k.branch + 1;
          t
      | None ->
        (* Undefined labels trap lazily (on first execution), as the
           reference interpreter does. *)
        fun ctx _ ->
          let k = ctx.k in
          k.branch <- k.branch + 1;
          trap_at k opc "%s: undefined label %s" p.name target)
    | Bar ->
      fun ctx th ->
        let k = ctx.k in
        k.bar <- k.bar + 1;
        th.pc <- nxt;
        stop_bar
    | Ret ->
      let self = nxt - 1 in
      fun ctx th ->
        let k = ctx.k in
        k.branch <- k.branch + 1;
        th.pc <- self;
        th.done_ <- true;
        stop_ret
  in
  let code = Array.make (max 1 n_code) (fun _ _ -> stop_ret) in
  for i = 0 to n_body - 1 do
    let ci = idx.(i) in
    if ci >= 0 then begin
      let { Instr.op; guard } = body.(i) in
      let nxt = ci + 1 in
      let exec = compile_op i op nxt in
      code.(ci) <-
        (match guard with
        | None -> exec
        | Some (preg, sense) ->
          let mb = masked_bump op in
          if sense then
            fun ctx th ->
              if th.pregs.(preg) then exec ctx th
              else begin
                let k = ctx.k in
                k.predicated_off <- k.predicated_off + 1;
                mb k;
                nxt
              end
          else
            fun ctx th ->
              if th.pregs.(preg) then begin
                let k = ctx.k in
                k.predicated_off <- k.predicated_off + 1;
                mb k;
                nxt
              end
              else exec ctx th)
    end
  done;
  let n_mem = max 1 !n_mem in
  (* --- execution ------------------------------------------------------- *)
  let n_threads = bx * by * bz in
  let n_blocks = gx * gy * gz in
  let pool = Atomic.make (max_dynamic - 1) in
  let mk_ctx () =
    { k = zero_counters ();
      pool;
      lease = 0;
      n_warps;
      shared_f = Array.make (max 1 p.shared_words) 0.0;
      shared_i = Array.make (max 1 p.shared_int_words) 0;
      ord = Array.make (n_mem * n_warps * 32) 0;
      grps = Array.init (n_mem * n_warps) (fun _ -> [||]);
      gid = 1;
      stamp = 1;
      threads =
        Array.init n_threads (fun linear ->
            { fregs = Array.make (max 1 p.n_fregs) 0.0;
              iregs = Array.make (max 1 p.n_iregs) 0;
              pregs = Array.make (max 1 p.n_pregs) false;
              pc = 0;
              done_ = false;
              lin = linear;
              tid_x = linear mod bx;
              tid_y = linear / bx mod by;
              tid_z = linear / (bx * by);
              cta_x = 0;
              cta_y = 0;
              cta_z = 0 }) }
  in
  (* Execute [th] until it reaches a barrier or returns. The end-of-code
     check precedes the budget charge, as in the reference. *)
  let run_to_barrier ctx th =
    let rec go pc =
      if pc >= n_code then
        trap_at ctx.k (n_body - 1) "%s: fell off end of kernel" p.name
      else begin
        (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1 else refill ctx);
        let n = (Array.unsafe_get code pc) ctx th in
        if n >= 0 then go n else if n = stop_ret then Hit_ret else Hit_bar
      end
    in
    go th.pc
  in
  let exec_block ctx cx cy cz =
    let threads = ctx.threads in
    Array.fill ctx.shared_f 0 (Array.length ctx.shared_f) 0.0;
    Array.fill ctx.shared_i 0 (Array.length ctx.shared_i) 0;
    Array.iter
      (fun th ->
        Array.fill th.fregs 0 (Array.length th.fregs) 0.0;
        Array.fill th.iregs 0 (Array.length th.iregs) 0;
        Array.fill th.pregs 0 (Array.length th.pregs) false;
        th.pc <- 0;
        th.done_ <- false;
        th.cta_x <- cx;
        th.cta_y <- cy;
        th.cta_z <- cz)
      threads;
    ctx.stamp <- ctx.stamp + 1;
    (* Barrier-phase loop: all threads must agree on Hit_bar vs Hit_ret. *)
    let where stop (th : thread) =
      (* After Hit_bar the pc has advanced past the Bar; Ret leaves it. *)
      match stop with
      | Hit_bar ->
        Printf.sprintf "hit barrier at %s" (describe orig_of.(th.pc - 1))
      | Hit_ret -> Printf.sprintf "returned at %s" (describe orig_of.(th.pc))
    in
    let rec phases () =
      let first = run_to_barrier ctx threads.(0) in
      for i = 1 to n_threads - 1 do
        let stop = run_to_barrier ctx threads.(i) in
        if stop <> first then
          raise
            (Trap
               (Printf.sprintf
                  "%s: barrier divergence: thread 0 %s but thread %d %s [%s]"
                  p.name
                  (where first threads.(0))
                  i
                  (where stop threads.(i))
                  (summary ctx.k)))
      done;
      ctx.stamp <- ctx.stamp + 1;
      match first with Hit_ret -> () | Hit_bar -> phases ()
    in
    phases ()
  in
  (* Blocks execute in linearized order b = cz*gy*gx + cy*gx + cx, the
     reference's cz-outer/cx-inner nesting. *)
  let exec_chunk ~offset ~size =
    let ctx = mk_ctx () in
    for b = offset to offset + size - 1 do
      exec_block ctx (b mod gx) (b / gx mod gy) (b / (gx * gy))
    done;
    ctx.k
  in
  let has_atomics =
    Array.exists
      (fun (i : Instr.t) ->
        match i.Instr.op with Instr.Atom_global_add _ -> true | _ -> false)
      body
  in
  let n_domains =
    let d =
      match domains with
      | Some d -> max 1 d
      | None -> Util.Parallel.recommended_domains ()
    in
    if has_atomics then 1 else max 1 (min d n_blocks)
  in
  let shards =
    if n_domains <= 1 then [ exec_chunk ~offset:0 ~size:n_blocks ]
    else
      Util.Parallel.run_chunks_offsets ~domains:n_domains ~total:n_blocks
        (fun ~chunk:_ ~offset ~size -> exec_chunk ~offset ~size)
  in
  let counters = zero_counters () in
  List.iter (fun shard -> add_into ~into:counters shard) shards;
  obs_export counters;
  counters

(* ---------------------------------------------------------------------
   Flat bytecode engine.

   [run_bytecode] lowers the body once per launch into one flat [int]
   array of variable-stride packed instructions and runs a direct
   dispatch loop over it — the interpreter analogue of executing the
   [Encode] wire format instead of an AST. Versus the closure engine it
   removes the per-instruction indirect call and closure-environment
   loads: the dispatch is a dense integer [match] (a jump table) and the
   register files / counter shard are hoisted into locals of the
   per-thread execution loop.

   Word 0 of every instruction packs, mirroring [Encode]'s layout idea:
     bits 0–7   bytecode opcode (shape-specialized, not [Instr.opcode])
     bits 8–9   guard kind: 0 none, 1 [@%p], 2 [@!%p]
     bits 18–21 category index ([cat_code]) for the masked-issue bump
     bits 22–25 stride: total words incl. operands; next pc = pc + stride
     bits 26–41 guard predicate register (16 bits: unlike [Encode]'s
                6-bit post-allocation field, this engine must also run
                raw codegen output whose virtual predicates number in
                the hundreds)
   Operand words follow. All launch-invariant decoding happens during
   lowering, exactly like the closure compile pass:
   - labels are squashed; branch targets are absolute word offsets
     patched in a second pass (undefined labels keep the reference's
     lazy first-execution trap via a side table of names);
   - params and launch-geometry specials fold to inline constants;
     [Tid_*]/[Ctaid_*] become six virtual integer registers appended
     after the architectural file and refreshed per block, so every
     integer operand collapses to register-or-constant;
   - hot shapes get dedicated opcodes (reg/reg and reg/const add, mul,
     mad, setp, the all-register FFMA, moves); cold shapes share generic
     opcodes whose operands carry explicit kind words;
   - float immediates live in a per-launch constant pool.

   Counter bumps, trap messages, transaction-replay calls, bounds-check
   ordering and the budget charge are placed exactly as in the closure
   engine — the differential suite holds all three engines to
   bit-identical outputs and counters. *)

(* Bytecode opcodes (the [match] below is a dense jump table). *)
let bc_mov_r = 0
let bc_mov_c = 1
let bc_movf_r = 2
let bc_movf_c = 3
let bc_iadd_rr = 4
let bc_iadd_rc = 5
let bc_imul_rr = 6
let bc_imul_rc = 7
let bc_imad_rrr = 8
let bc_imad_rcr = 9
let bc_iop2 = 10
let bc_imad_g = 11
let bc_idiv = 12
let bc_irem = 13
let bc_setp_rr = 14
let bc_setp_rc = 15
let bc_setp_g = 16
let bc_andp = 17
let bc_orp = 18
let bc_notp = 19
let bc_fadd_rr = 20
let bc_fsub_rr = 21
let bc_fmul_rr = 22
let bc_fmax_rr = 23
let bc_fmin_rr = 24
let bc_f2_g = 25
let bc_ffma_rrr = 26
let bc_ffma_g = 27
let bc_ldg = 28
let bc_ldgi = 29
let bc_lds = 30
let bc_ldsi = 31
let bc_stg = 32
let bc_stg_h = 33
let bc_sts = 34
let bc_sts_h = 35
let bc_stsi = 36
let bc_atom = 37
let bc_atom_h = 38
let bc_bra = 39
let bc_bra_undef = 40
let bc_bar = 41
let bc_ret = 42

(* Superinstruction: a maximal run of >= 2 consecutive unguarded
   all-register FFMAs — the dominant block of every GEMM/CONV inner loop —
   fused into one dispatch. Layout: w0, n, then n quadruples (d, a, b, c).
   Runs never span labels (a label is a body instruction and is not an
   Ffma), so no branch target can land inside a run. *)
let bc_ffma_run = 43

(* Pair superinstructions for the address-bump/staging idiom around every
   shared load in generated GEMM/CONV inner loops. Both components must be
   unguarded and adjacent in the body (so no label — and hence no branch
   target — can sit between them); execution inside the pair stays fully
   sequential, so no operand-independence condition is needed. The second
   component is charged against the budget inline, preserving the exact
   exhaustion point and counter snapshot of the unfused code. *)
let bc_lds_add = 44 (* ld.shared fD, [rA]; iadd rD, rS, imm *)
let bc_add_lds = 45 (* iadd rD, rS, imm; ld.shared fD, [rA] *)
let bc_mad_lds = 46 (* imad rD, rA, imm, rC; ld.shared fD, [rA'] *)
let bc_imad_rcc = 47 (* imad rD, rA, imm, imm' *)

(* Quad superinstructions: the full per-substep shared-operand fetch of
   the unrolled inner loop (imad-or-iadd address, load, bump, load). Same
   fusion rules as the pairs, applied to four adjacent unguarded
   instructions; each shared load carries its own original pc. *)
let bc_mad_lds_add_lds = 48
let bc_add_lds_add_lds = 49

let run_bytecode ?(max_dynamic = 200_000_000) ?domains (p : Program.t) ~grid
    ~block ~bufs ~iargs =
  let gx, gy, gz = grid and bx, by, bz = block in
  if gx <= 0 || gy <= 0 || gz <= 0 || bx <= 0 || by <= 0 || bz <= 0 then
    trap "invalid launch geometry";
  let buffers =
    Array.map
      (fun name ->
        match List.assoc_opt name bufs with
        | Some a -> a
        | None -> trap "missing buffer argument %s" name)
      p.buf_params
  in
  let ints =
    Array.map
      (fun name ->
        match List.assoc_opt name iargs with
        | Some v -> v
        | None -> trap "missing int argument %s" name)
      p.int_params
  in
  let labels = Program.find_labels p in
  let body = p.body in
  let n_body = Array.length body in
  let near = nearest_labels body in
  let describe pc = describe_with near n_body pc in
  let trap_at k opc fmt =
    Printf.ksprintf
      (fun s ->
        let where = describe opc in
        let flight =
          if Obs.Telemetry.enabled () then begin
            Obs.Telemetry.Flight.record ~kind:"trap" ~name:p.name
              (s ^ " at " ^ where);
            match Obs.Telemetry.Flight.dump () with
            | "" -> ""
            | d -> "\n" ^ d
          end
          else ""
        in
        raise
          (Trap (Printf.sprintf "%s at %s [%s]%s" s where (summary k) flight)))
      fmt
  in
  let is_half = p.dtype = F16 in

  let shared_words = p.shared_words in
  let shared_int_words = p.shared_int_words in
  (* --- lowering pass ---------------------------------------------------- *)
  (* Virtual integer registers carrying thread/block ids, appended after
     the architectural file. *)
  let vt = p.n_iregs in
  let cki r =
    if r < 0 || r >= p.n_iregs then trap "invalid integer register %%r%d" r;
    r
  in
  let ckf r =
    if r < 0 || r >= p.n_fregs then trap "invalid float register %%f%d" r;
    r
  in
  let ckp r =
    if r < 0 || r >= p.n_pregs then trap "invalid predicate register %%p%d" r;
    r
  in
  let code_buf = ref (Array.make 256 0) in
  let code_len = ref 0 in
  let emit v =
    if !code_len = Array.length !code_buf then begin
      let grown = Array.make (2 * !code_len) 0 in
      Array.blit !code_buf 0 grown 0 !code_len;
      code_buf := grown
    end;
    !code_buf.(!code_len) <- v;
    incr code_len
  in
  (* Float constant pool (deduplicated by bit pattern). *)
  let ftbl = Hashtbl.create 16 in
  let frev = ref [] in
  let n_fconst = ref 0 in
  let fconst v =
    let key = Int64.bits_of_float v in
    match Hashtbl.find_opt ftbl key with
    | Some i -> i
    | None ->
      let i = !n_fconst in
      incr n_fconst;
      frev := v :: !frev;
      Hashtbl.add ftbl key i;
      i
  in
  (* Undefined branch targets: name table for the lazy trap. *)
  let urev = ref [] in
  let n_undef = ref 0 in
  let undef name =
    let i = !n_undef in
    incr n_undef;
    urev := name :: !urev;
    i
  in
  (* Dense memory-instruction slots, in the same program order as the
     closure engine so the transaction replay is identical. Pre-scaled
     by n_warps, as in the closure engine. *)
  let n_warps = ((bx * by * bz) + 31) / 32 in
  let n_mem = ref 0 in
  let fresh_mem () =
    let m = !n_mem * n_warps in
    incr n_mem;
    m
  in
  (* Integer operand -> (kind, value): kind 0 register (possibly
     virtual), kind 1 inline constant. *)
  let ik = function
    | Ireg r -> (0, cki r)
    | Iimm v -> (1, v)
    | Iparam slot -> (1, ints.(slot))
    | Ispecial s -> (
      match s with
      | Ntid_x -> (1, bx)
      | Ntid_y -> (1, by)
      | Ntid_z -> (1, bz)
      | Nctaid_x -> (1, gx)
      | Nctaid_y -> (1, gy)
      | Nctaid_z -> (1, gz)
      | Tid_x -> (0, vt)
      | Tid_y -> (0, vt + 1)
      | Tid_z -> (0, vt + 2)
      | Ctaid_x -> (0, vt + 3)
      | Ctaid_y -> (0, vt + 4)
      | Ctaid_z -> (0, vt + 5))
  in
  (* Float operand -> (kind, value): kind 0 register, kind 1 pool index. *)
  let fk = function Freg r -> (0, ckf r) | Fimm v -> (1, fconst v) in
  let cmp_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5 in
  let word_at = Array.make (max 1 n_body) (-1) in
  let fixups = ref [] in
  (* FFMA-run lengths: run_len.(i) = number of consecutive unguarded
     all-register FFMAs starting at body position i (0 otherwise). *)
  let is_hot_ffma i =
    let { Instr.op; guard } = body.(i) in
    guard = None
    &&
    match op with
    | Instr.Ffma (_, Freg _, Freg _, Freg _) -> true
    | _ -> false
  in
  let run_len = Array.make (max 1 n_body) 0 in
  for i = n_body - 1 downto 0 do
    if is_hot_ffma i then
      run_len.(i) <- 1 + (if i + 1 < n_body then run_len.(i + 1) else 0)
  done;
  (* Pair-fusion component shapes (all unguarded). *)
  let iadd_rc_parts i =
    let { Instr.op; guard } = body.(i) in
    if guard <> None then None
    else
      match op with
      | Instr.Iadd (d, a, b) -> (
        match (ik a, ik b) with
        | (0, x), (1, v) | (1, v), (0, x) -> Some (cki d, x, v)
        | _ -> None)
      | _ -> None
  in
  let imad_rcr_parts i =
    let { Instr.op; guard } = body.(i) in
    if guard <> None then None
    else
      match op with
      | Instr.Imad (d, a, b, c) -> (
        match (ik a, ik b, ik c) with
        | (0, x), (1, v), (0, z) | (1, v), (0, x), (0, z) ->
          Some (cki d, x, v, z)
        | _ -> None)
      | _ -> None
  in
  let lds_parts i =
    let { Instr.op; guard } = body.(i) in
    if guard <> None then None
    else
      match op with
      | Instr.Ld_shared (d, addr) -> (
        match ik addr with 0, r -> Some (ckf d, r) | _ -> None)
      | _ -> None
  in
  let skip = ref 0 in
  for i = 0 to n_body - 1 do
    let { Instr.op; guard } = body.(i) in
    if !skip > 0 then decr skip
    else if run_len.(i) >= 2 then begin
      let n = run_len.(i) in
      let w0_at = !code_len in
      word_at.(i) <- w0_at;
      emit 0;
      emit n;
      for j = i to i + n - 1 do
        match body.(j).Instr.op with
        | Instr.Ffma (d, Freg a, Freg b, Freg c) ->
          emit (ckf d); emit (ckf a); emit (ckf b); emit (ckf c)
        | _ -> assert false
      done;
      (* Unguarded by construction: guard bits 0, so the masked path (and
         thus the stride field) is unreachable. *)
      !code_buf.(w0_at) <- bc_ffma_run lor (cat_code Instr.Cat_fma lsl 18);
      skip := n - 1
    end
    else if
      (* Greedy adjacent fusion, longest pattern first; the shared load
         keeps the w0 slot's original pc when it comes first, and carries
         its own pc as an operand otherwise (trap attribution). fresh_mem
         is still drawn in program order, keeping replay slots identical
         to the closure engine's. *)
      (let start () =
         let w0_at = !code_len in
         word_at.(i) <- w0_at;
         emit 0;
         w0_at
       in
       let finish w0_at bop cat =
         !code_buf.(w0_at) <- bop lor (cat_code cat lsl 18)
       in
       let emit_lds fd ar opc =
         emit fd; emit (fresh_mem ()); emit ar; emit opc
       in
       let quad =
         if i + 3 >= n_body then false
         else
           match (lds_parts (i + 1), iadd_rc_parts (i + 2), lds_parts (i + 3)) with
           | Some (f1, r1), Some (a2d, a2s, a2i), Some (f2, r2) -> (
             match imad_rcr_parts i with
             | Some (md, mx, mv, mz) ->
               let w0_at = start () in
               emit md; emit mx; emit mv; emit mz;
               emit_lds f1 r1 (i + 1);
               emit a2d; emit a2s; emit a2i;
               emit_lds f2 r2 (i + 3);
               finish w0_at bc_mad_lds_add_lds Instr.Cat_ialu;
               skip := 3;
               true
             | None -> (
               match iadd_rc_parts i with
               | Some (ad, asrc, aimm) ->
                 let w0_at = start () in
                 emit ad; emit asrc; emit aimm;
                 emit_lds f1 r1 (i + 1);
                 emit a2d; emit a2s; emit a2i;
                 emit_lds f2 r2 (i + 3);
                 finish w0_at bc_add_lds_add_lds Instr.Cat_ialu;
                 skip := 3;
                 true
               | None -> false))
           | _ -> false
       in
       quad
       || i + 1 < n_body
          &&
          match lds_parts i with
          | Some (fd, ar) -> (
            match iadd_rc_parts (i + 1) with
            | Some (ad, asrc, imm) ->
              let w0_at = start () in
              emit fd; emit (fresh_mem ()); emit ar;
              emit ad; emit asrc; emit imm;
              finish w0_at bc_lds_add Instr.Cat_ld_shared;
              skip := 1;
              true
            | None -> false)
          | None -> (
            match lds_parts (i + 1) with
            | None -> false
            | Some (fd, ar) -> (
              match iadd_rc_parts i with
              | Some (ad, asrc, imm) ->
                let w0_at = start () in
                emit ad; emit asrc; emit imm;
                emit_lds fd ar (i + 1);
                finish w0_at bc_add_lds Instr.Cat_ialu;
                skip := 1;
                true
              | None -> (
                match imad_rcr_parts i with
                | Some (md, mx, mv, mz) ->
                  let w0_at = start () in
                  emit md; emit mx; emit mv; emit mz;
                  emit_lds fd ar (i + 1);
                  finish w0_at bc_mad_lds Instr.Cat_ialu;
                  skip := 1;
                  true
                | None -> false))))
    then ()
    else
    match op with
    | Instr.Label _ -> ()
    | _ ->
      let w0_at = !code_len in
      word_at.(i) <- w0_at;
      emit 0;
      let e2 a b = emit a; emit b in
      let ek (k, v) = e2 k v in
      let bop =
        match op with
        | Instr.Label _ -> assert false
        | Mov (d, a) -> (
          match ik a with
          | 0, s -> e2 (cki d) s; bc_mov_r
          | _, v -> e2 (cki d) v; bc_mov_c)
        | Movf (d, a) -> (
          match fk a with
          | 0, s -> e2 (ckf d) s; bc_movf_r
          | _, v -> e2 (ckf d) v; bc_movf_c)
        | Iadd (d, a, b) -> (
          match (ik a, ik b) with
          | (0, x), (0, y) -> emit (cki d); e2 x y; bc_iadd_rr
          | (0, x), (1, v) | (1, v), (0, x) -> emit (cki d); e2 x v; bc_iadd_rc
          | ka, kb -> e2 7 (cki d); ek ka; ek kb; bc_iop2)
        | Imul (d, a, b) -> (
          match (ik a, ik b) with
          | (0, x), (0, y) -> emit (cki d); e2 x y; bc_imul_rr
          | (0, x), (1, v) | (1, v), (0, x) -> emit (cki d); e2 x v; bc_imul_rc
          | ka, kb -> e2 8 (cki d); ek ka; ek kb; bc_iop2)
        | Imad (d, a, b, c) -> (
          match (ik a, ik b, ik c) with
          | (0, x), (0, y), (0, z) -> e2 (cki d) x; e2 y z; bc_imad_rrr
          | ((0, x), (1, v), (0, z) | (1, v), (0, x), (0, z)) ->
            e2 (cki d) x; e2 v z; bc_imad_rcr
          | ((0, x), (1, v), (1, w) | (1, v), (0, x), (1, w)) ->
            e2 (cki d) x; e2 v w; bc_imad_rcc
          | ka, kb, kc -> emit (cki d); ek ka; ek kb; ek kc; bc_imad_g)
        | Isub (d, a, b) -> e2 0 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Imin (d, a, b) -> e2 1 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Imax (d, a, b) -> e2 2 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Ishl (d, a, b) -> e2 3 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Ishr (d, a, b) -> e2 4 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Iand (d, a, b) -> e2 5 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Ior (d, a, b) -> e2 6 (cki d); ek (ik a); ek (ik b); bc_iop2
        | Idiv (d, a, b) -> emit (cki d); ek (ik a); ek (ik b); bc_idiv
        | Irem (d, a, b) -> emit (cki d); ek (ik a); ek (ik b); bc_irem
        | Setp (cmp, d, a, b) -> (
          let c = cmp_code cmp in
          match (ik a, ik b) with
          | (0, x), (0, y) -> e2 c (ckp d); e2 x y; bc_setp_rr
          | (0, x), (1, v) -> e2 c (ckp d); e2 x v; bc_setp_rc
          | ka, kb -> e2 c (ckp d); ek ka; ek kb; bc_setp_g)
        | And_p (d, a, b) -> emit (ckp d); e2 (ckp a) (ckp b); bc_andp
        | Or_p (d, a, b) -> emit (ckp d); e2 (ckp a) (ckp b); bc_orp
        | Not_p (d, a) -> e2 (ckp d) (ckp a); bc_notp
        | Fadd (d, a, b) -> (
          match (fk a, fk b) with
          | (0, x), (0, y) -> emit (ckf d); e2 x y; bc_fadd_rr
          | ka, kb -> e2 0 (ckf d); ek ka; ek kb; bc_f2_g)
        | Fsub (d, a, b) -> (
          match (fk a, fk b) with
          | (0, x), (0, y) -> emit (ckf d); e2 x y; bc_fsub_rr
          | ka, kb -> e2 1 (ckf d); ek ka; ek kb; bc_f2_g)
        | Fmul (d, a, b) -> (
          match (fk a, fk b) with
          | (0, x), (0, y) -> emit (ckf d); e2 x y; bc_fmul_rr
          | ka, kb -> e2 2 (ckf d); ek ka; ek kb; bc_f2_g)
        | Fmax (d, a, b) -> (
          match (fk a, fk b) with
          | (0, x), (0, y) -> emit (ckf d); e2 x y; bc_fmax_rr
          | ka, kb -> e2 3 (ckf d); ek ka; ek kb; bc_f2_g)
        | Fmin (d, a, b) -> (
          match (fk a, fk b) with
          | (0, x), (0, y) -> emit (ckf d); e2 x y; bc_fmin_rr
          | ka, kb -> e2 4 (ckf d); ek ka; ek kb; bc_f2_g)
        | Ffma (d, a, b, c) -> (
          match (fk a, fk b, fk c) with
          | (0, x), (0, y), (0, z) -> e2 (ckf d) x; e2 y z; bc_ffma_rrr
          | ka, kb, kc -> emit (ckf d); ek ka; ek kb; ek kc; bc_ffma_g)
        | Ld_global (d, slot, addr) ->
          e2 (ckf d) (fresh_mem ()); emit slot; ek (ik addr); bc_ldg
        | Ld_global_i (d, slot, addr) ->
          e2 (cki d) (fresh_mem ()); emit slot; ek (ik addr); bc_ldgi
        | Ld_shared (d, addr) ->
          e2 (ckf d) (fresh_mem ()); ek (ik addr); bc_lds
        | Ld_shared_i (d, addr) ->
          e2 (cki d) (fresh_mem ()); ek (ik addr); bc_ldsi
        | St_global (slot, addr, v) ->
          e2 (fresh_mem ()) slot; ek (ik addr); ek (fk v);
          if is_half then bc_stg_h else bc_stg
        | St_shared (addr, v) ->
          emit (fresh_mem ()); ek (ik addr); ek (fk v);
          if is_half then bc_sts_h else bc_sts
        | St_shared_i (addr, v) ->
          emit (fresh_mem ()); ek (ik addr); ek (ik v); bc_stsi
        | Atom_global_add (slot, addr, v) ->
          emit slot; ek (ik addr); ek (fk v);
          if is_half then bc_atom_h else bc_atom
        | Bra target -> (
          match Hashtbl.find_opt labels target with
          | Some oi ->
            fixups := (!code_len, oi) :: !fixups;
            emit 0;
            bc_bra
          | None -> emit (undef target); bc_bra_undef)
        | Bar -> bc_bar
        | Ret -> bc_ret
      in
      let stride = !code_len - w0_at in
      let gbits =
        match guard with
        | None -> 0
        | Some (preg, sense) ->
          let preg = ckp preg in
          if preg > 0xffff then
            trap "guard predicate register %%p%d exceeds the bytecode field"
              preg;
          (if sense then 0x100 else 0x200) lor (preg lsl 26)
      in
      let cat =
        match Instr.categorize op with Some c -> cat_code c | None -> 0
      in
      !code_buf.(w0_at) <- bop lor gbits lor (cat lsl 18) lor (stride lsl 22)
  done;
  let n_words = !code_len in
  let bc = Array.sub !code_buf 0 n_words in
  (* Branch targets: original pc -> word offset of the first real
     instruction at or after it (targets land on labels). *)
  let word_of_orig = Array.make (max 1 n_body) n_words in
  (let nxt = ref n_words in
   for i = n_body - 1 downto 0 do
     if word_at.(i) >= 0 then nxt := word_at.(i);
     word_of_orig.(i) <- !nxt
   done);
  List.iter (fun (wi, oi) -> bc.(wi) <- word_of_orig.(oi)) !fixups;
  (* Word offset of each instruction's w0 -> original pc, for traps. *)
  let opc_of = Array.make (max 1 n_words) n_body in
  Array.iteri (fun i w -> if w >= 0 then opc_of.(w) <- i) word_at;
  let fconsts = Array.of_list (List.rev !frev) in
  let undef_names = Array.of_list (List.rev !urev) in
  let n_mem = max 1 !n_mem in
  (* --- execution ------------------------------------------------------- *)
  let n_threads = bx * by * bz in
  let n_blocks = gx * gy * gz in
  let pool = Atomic.make (max_dynamic - 1) in
  let mk_ctx () =
    { k = zero_counters ();
      pool;
      lease = 0;
      n_warps;
      shared_f = Array.make (max 1 p.shared_words) 0.0;
      shared_i = Array.make (max 1 p.shared_int_words) 0;
      ord = Array.make (n_mem * n_warps * 32) 0;
      grps = Array.init (n_mem * n_warps) (fun _ -> [||]);
      gid = 1;
      stamp = 1;
      threads =
        Array.init n_threads (fun linear ->
            { fregs = Array.make (max 1 p.n_fregs) 0.0;
              iregs = Array.make (p.n_iregs + 6) 0;
              pregs = Array.make (max 1 p.n_pregs) false;
              pc = 0;
              done_ = false;
              lin = linear;
              tid_x = linear mod bx;
              tid_y = linear / bx mod by;
              tid_z = linear / (bx * by);
              cta_x = 0;
              cta_y = 0;
              cta_z = 0 }) }
  in
  (* The dispatch loop. The register files, counter shard and shared
     memories are hoisted into locals for the whole barrier phase; every
     case ends in a tail call. Register/operand indices were validated at
     lowering, so register-file accesses are unchecked; memory accesses
     keep their explicit bounds traps. *)
  let run_to_barrier ctx th =
    let k = ctx.k in
    let ir = th.iregs and fr = th.fregs and pr = th.pregs in
    let lin = th.lin in
    let shf = ctx.shared_f and shi = ctx.shared_i in
    let rec go pc =
      if pc >= n_words then
        trap_at ctx.k (n_body - 1) "%s: fell off end of kernel" p.name
      else begin
        (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1 else refill ctx);
        let w0 = Array.unsafe_get bc pc in
        let g = w0 land 0x300 in
        if
          g <> 0
          && Array.unsafe_get pr ((w0 lsr 26) land 0xffff) <> (g = 0x100)
        then begin
          k.predicated_off <- k.predicated_off + 1;
          bump_cat k ((w0 lsr 18) land 0xf);
          go (pc + ((w0 lsr 22) land 0xf))
        end
        else
          match w0 land 0xff with
          | 0 (* mov_r *) ->
            k.mov <- k.mov + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2)));
            go (pc + 3)
          | 1 (* mov_c *) ->
            k.mov <- k.mov + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get bc (pc + 2));
            go (pc + 3)
          | 2 (* movf_r *) ->
            k.mov <- k.mov + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get fr (Array.unsafe_get bc (pc + 2)));
            go (pc + 3)
          | 3 (* movf_c *) ->
            k.mov <- k.mov + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get fconsts (Array.unsafe_get bc (pc + 2)));
            go (pc + 3)
          | 4 (* iadd_rr *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
              + Array.unsafe_get ir (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 5 (* iadd_rc *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
              + Array.unsafe_get bc (pc + 3));
            go (pc + 4)
          | 6 (* imul_rr *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
              * Array.unsafe_get ir (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 7 (* imul_rc *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
              * Array.unsafe_get bc (pc + 3));
            go (pc + 4)
          | 8 (* imad_rrr *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              ((Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
                * Array.unsafe_get ir (Array.unsafe_get bc (pc + 3)))
              + Array.unsafe_get ir (Array.unsafe_get bc (pc + 4)));
            go (pc + 5)
          | 9 (* imad_rcr *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              ((Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
                * Array.unsafe_get bc (pc + 3))
              + Array.unsafe_get ir (Array.unsafe_get bc (pc + 4)));
            go (pc + 5)
          | 10 (* iop2 *) ->
            k.ialu <- k.ialu + 1;
            let sub = Array.unsafe_get bc (pc + 1) in
            let d = Array.unsafe_get bc (pc + 2) in
            let va = Array.unsafe_get bc (pc + 4) in
            let x =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get ir va
              else va
            in
            let vb = Array.unsafe_get bc (pc + 6) in
            let y =
              if Array.unsafe_get bc (pc + 5) = 0 then Array.unsafe_get ir vb
              else vb
            in
            Array.unsafe_set ir d
              (match sub with
              | 0 -> x - y
              | 1 -> if x <= y then x else y
              | 2 -> if x >= y then x else y
              | 3 -> x lsl y
              | 4 -> x asr y
              | 5 -> x land y
              | 6 -> x lor y
              | 7 -> x + y
              | _ -> x * y);
            go (pc + 7)
          | 11 (* imad_g *) ->
            k.ialu <- k.ialu + 1;
            let d = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let x =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            let vb = Array.unsafe_get bc (pc + 5) in
            let y =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get ir vb
              else vb
            in
            let vc = Array.unsafe_get bc (pc + 7) in
            let z =
              if Array.unsafe_get bc (pc + 6) = 0 then Array.unsafe_get ir vc
              else vc
            in
            Array.unsafe_set ir d ((x * y) + z);
            go (pc + 8)
          | 12 (* idiv *) ->
            k.ialu <- k.ialu + 1;
            let d = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let x =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            let vb = Array.unsafe_get bc (pc + 5) in
            let y =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get ir vb
              else vb
            in
            if y = 0 then
              trap_at k (Array.unsafe_get opc_of pc) "%s: division by zero"
                p.name;
            Array.unsafe_set ir d (x / y);
            go (pc + 6)
          | 13 (* irem *) ->
            k.ialu <- k.ialu + 1;
            let d = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let x =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            let vb = Array.unsafe_get bc (pc + 5) in
            let y =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get ir vb
              else vb
            in
            if y = 0 then
              trap_at k (Array.unsafe_get opc_of pc) "%s: remainder by zero"
                p.name;
            Array.unsafe_set ir d (x mod y);
            go (pc + 6)
          | 14 (* setp_rr *) ->
            k.pred <- k.pred + 1;
            let x = Array.unsafe_get ir (Array.unsafe_get bc (pc + 3)) in
            let y = Array.unsafe_get ir (Array.unsafe_get bc (pc + 4)) in
            Array.unsafe_set pr
              (Array.unsafe_get bc (pc + 2))
              (match Array.unsafe_get bc (pc + 1) with
              | 0 -> x = y
              | 1 -> x <> y
              | 2 -> x < y
              | 3 -> x <= y
              | 4 -> x > y
              | _ -> x >= y);
            go (pc + 5)
          | 15 (* setp_rc *) ->
            k.pred <- k.pred + 1;
            let x = Array.unsafe_get ir (Array.unsafe_get bc (pc + 3)) in
            let y = Array.unsafe_get bc (pc + 4) in
            Array.unsafe_set pr
              (Array.unsafe_get bc (pc + 2))
              (match Array.unsafe_get bc (pc + 1) with
              | 0 -> x = y
              | 1 -> x <> y
              | 2 -> x < y
              | 3 -> x <= y
              | 4 -> x > y
              | _ -> x >= y);
            go (pc + 5)
          | 16 (* setp_g *) ->
            k.pred <- k.pred + 1;
            let va = Array.unsafe_get bc (pc + 4) in
            let x =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get ir va
              else va
            in
            let vb = Array.unsafe_get bc (pc + 6) in
            let y =
              if Array.unsafe_get bc (pc + 5) = 0 then Array.unsafe_get ir vb
              else vb
            in
            Array.unsafe_set pr
              (Array.unsafe_get bc (pc + 2))
              (match Array.unsafe_get bc (pc + 1) with
              | 0 -> x = y
              | 1 -> x <> y
              | 2 -> x < y
              | 3 -> x <= y
              | 4 -> x > y
              | _ -> x >= y);
            go (pc + 7)
          | 17 (* andp *) ->
            k.pred <- k.pred + 1;
            Array.unsafe_set pr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get pr (Array.unsafe_get bc (pc + 2))
              && Array.unsafe_get pr (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 18 (* orp *) ->
            k.pred <- k.pred + 1;
            Array.unsafe_set pr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get pr (Array.unsafe_get bc (pc + 2))
              || Array.unsafe_get pr (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 19 (* notp *) ->
            k.pred <- k.pred + 1;
            Array.unsafe_set pr
              (Array.unsafe_get bc (pc + 1))
              (not (Array.unsafe_get pr (Array.unsafe_get bc (pc + 2))));
            go (pc + 3)
          | 20 (* fadd_rr *) ->
            k.fp_other <- k.fp_other + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get fr (Array.unsafe_get bc (pc + 2))
              +. Array.unsafe_get fr (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 21 (* fsub_rr *) ->
            k.fp_other <- k.fp_other + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get fr (Array.unsafe_get bc (pc + 2))
              -. Array.unsafe_get fr (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 22 (* fmul_rr *) ->
            k.fp_other <- k.fp_other + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get fr (Array.unsafe_get bc (pc + 2))
              *. Array.unsafe_get fr (Array.unsafe_get bc (pc + 3)));
            go (pc + 4)
          | 23 (* fmax_rr *) ->
            k.fp_other <- k.fp_other + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Float.max
                 (Array.unsafe_get fr (Array.unsafe_get bc (pc + 2)))
                 (Array.unsafe_get fr (Array.unsafe_get bc (pc + 3))));
            go (pc + 4)
          | 24 (* fmin_rr *) ->
            k.fp_other <- k.fp_other + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              (Float.min
                 (Array.unsafe_get fr (Array.unsafe_get bc (pc + 2)))
                 (Array.unsafe_get fr (Array.unsafe_get bc (pc + 3))));
            go (pc + 4)
          | 25 (* f2_g *) ->
            k.fp_other <- k.fp_other + 1;
            let sub = Array.unsafe_get bc (pc + 1) in
            let d = Array.unsafe_get bc (pc + 2) in
            let va = Array.unsafe_get bc (pc + 4) in
            let x =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get fr va
              else Array.unsafe_get fconsts va
            in
            let vb = Array.unsafe_get bc (pc + 6) in
            let y =
              if Array.unsafe_get bc (pc + 5) = 0 then Array.unsafe_get fr vb
              else Array.unsafe_get fconsts vb
            in
            Array.unsafe_set fr d
              (match sub with
              | 0 -> x +. y
              | 1 -> x -. y
              | 2 -> x *. y
              | 3 -> Float.max x y
              | _ -> Float.min x y);
            go (pc + 7)
          | 26 (* ffma_rrr *) ->
            k.fma <- k.fma + 1;
            Array.unsafe_set fr
              (Array.unsafe_get bc (pc + 1))
              ((Array.unsafe_get fr (Array.unsafe_get bc (pc + 2))
                *. Array.unsafe_get fr (Array.unsafe_get bc (pc + 3)))
              +. Array.unsafe_get fr (Array.unsafe_get bc (pc + 4)));
            go (pc + 5)
          | 27 (* ffma_g *) ->
            k.fma <- k.fma + 1;
            let d = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let x =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get fr va
              else Array.unsafe_get fconsts va
            in
            let vb = Array.unsafe_get bc (pc + 5) in
            let y =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get fr vb
              else Array.unsafe_get fconsts vb
            in
            let vc = Array.unsafe_get bc (pc + 7) in
            let z =
              if Array.unsafe_get bc (pc + 6) = 0 then Array.unsafe_get fr vc
              else Array.unsafe_get fconsts vc
            in
            Array.unsafe_set fr d ((x *. y) +. z);
            go (pc + 8)
          | 28 (* ldg *) ->
            k.ld_global <- k.ld_global + 1;
            let ms = Array.unsafe_get bc (pc + 2) in
            let slot = Array.unsafe_get bc (pc + 3) in
            let va = Array.unsafe_get bc (pc + 5) in
            let a =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get ir va
              else va
            in
            record_global ctx ~store:false ms lin a;
            let b = Array.unsafe_get buffers slot in
            let len = Array.length b in
            if a < 0 || a >= len then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: global load out of bounds: %s[%d] (len %d)" p.name
                p.buf_params.(slot) a len;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get b a);
            go (pc + 6)
          | 29 (* ldgi *) ->
            k.ld_global <- k.ld_global + 1;
            let ms = Array.unsafe_get bc (pc + 2) in
            let slot = Array.unsafe_get bc (pc + 3) in
            let va = Array.unsafe_get bc (pc + 5) in
            let a =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get ir va
              else va
            in
            record_global ctx ~store:false ms lin a;
            let b = Array.unsafe_get buffers slot in
            let len = Array.length b in
            if a < 0 || a >= len then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: global load out of bounds: %s[%d] (len %d)" p.name
                p.buf_params.(slot) a len;
            Array.unsafe_set ir (Array.unsafe_get bc (pc + 1))
              (int_of_float (Array.unsafe_get b a));
            go (pc + 6)
          | 30 (* lds *) ->
            k.ld_shared <- k.ld_shared + 1;
            let ms = Array.unsafe_get bc (pc + 2) in
            let va = Array.unsafe_get bc (pc + 4) in
            let a =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get ir va
              else va
            in
            record_shared ctx ms lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get shf a);
            go (pc + 5)
          | 31 (* ldsi *) ->
            k.ld_shared <- k.ld_shared + 1;
            let ms = Array.unsafe_get bc (pc + 2) in
            let va = Array.unsafe_get bc (pc + 4) in
            let a =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get ir va
              else va
            in
            record_shared ctx ms lin a;
            if a < 0 || a >= shared_int_words then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: shared int load out of bounds: [%d] (size %d)" p.name a
                shared_int_words;
            Array.unsafe_set ir (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get shi a);
            go (pc + 5)
          | 32 (* stg *) ->
            k.st_global <- k.st_global + 1;
            let ms = Array.unsafe_get bc (pc + 1) in
            let slot = Array.unsafe_get bc (pc + 2) in
            let va = Array.unsafe_get bc (pc + 4) in
            let a =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get ir va
              else va
            in
            record_global ctx ~store:true ms lin a;
            let b = Array.unsafe_get buffers slot in
            let len = Array.length b in
            if a < 0 || a >= len then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: global store out of bounds: %s[%d] (len %d)" p.name
                p.buf_params.(slot) a len;
            let vv = Array.unsafe_get bc (pc + 6) in
            Array.unsafe_set b a
              (if Array.unsafe_get bc (pc + 5) = 0 then Array.unsafe_get fr vv
               else Array.unsafe_get fconsts vv);
            go (pc + 7)
          | 33 (* stg_h *) ->
            k.st_global <- k.st_global + 1;
            let ms = Array.unsafe_get bc (pc + 1) in
            let slot = Array.unsafe_get bc (pc + 2) in
            let va = Array.unsafe_get bc (pc + 4) in
            let a =
              if Array.unsafe_get bc (pc + 3) = 0 then Array.unsafe_get ir va
              else va
            in
            record_global ctx ~store:true ms lin a;
            let b = Array.unsafe_get buffers slot in
            let len = Array.length b in
            if a < 0 || a >= len then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: global store out of bounds: %s[%d] (len %d)" p.name
                p.buf_params.(slot) a len;
            let vv = Array.unsafe_get bc (pc + 6) in
            Array.unsafe_set b a
              (round_half
                 (if Array.unsafe_get bc (pc + 5) = 0 then
                    Array.unsafe_get fr vv
                  else Array.unsafe_get fconsts vv));
            go (pc + 7)
          | 34 (* sts *) ->
            k.st_shared <- k.st_shared + 1;
            let ms = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let a =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            record_shared ctx ms lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: shared store out of bounds: [%d] (size %d)" p.name a
                shared_words;
            let vv = Array.unsafe_get bc (pc + 5) in
            Array.unsafe_set shf a
              (if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get fr vv
               else Array.unsafe_get fconsts vv);
            go (pc + 6)
          | 35 (* sts_h *) ->
            k.st_shared <- k.st_shared + 1;
            let ms = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let a =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            record_shared ctx ms lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: shared store out of bounds: [%d] (size %d)" p.name a
                shared_words;
            let vv = Array.unsafe_get bc (pc + 5) in
            Array.unsafe_set shf a
              (round_half
                 (if Array.unsafe_get bc (pc + 4) = 0 then
                    Array.unsafe_get fr vv
                  else Array.unsafe_get fconsts vv));
            go (pc + 6)
          | 36 (* stsi *) ->
            k.st_shared <- k.st_shared + 1;
            let ms = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let a =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            record_shared ctx ms lin a;
            if a < 0 || a >= shared_int_words then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: shared int store out of bounds: [%d] (size %d)" p.name a
                shared_int_words;
            let vv = Array.unsafe_get bc (pc + 5) in
            Array.unsafe_set shi a
              (if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get ir vv
               else vv);
            go (pc + 6)
          | 37 (* atom *) ->
            k.atom <- k.atom + 1;
            let slot = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let a =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            let b = Array.unsafe_get buffers slot in
            let len = Array.length b in
            if a < 0 || a >= len then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: global load out of bounds: %s[%d] (len %d)" p.name
                p.buf_params.(slot) a len;
            let vv = Array.unsafe_get bc (pc + 5) in
            let v =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get fr vv
              else Array.unsafe_get fconsts vv
            in
            Array.unsafe_set b a (Array.unsafe_get b a +. v);
            go (pc + 6)
          | 38 (* atom_h *) ->
            k.atom <- k.atom + 1;
            let slot = Array.unsafe_get bc (pc + 1) in
            let va = Array.unsafe_get bc (pc + 3) in
            let a =
              if Array.unsafe_get bc (pc + 2) = 0 then Array.unsafe_get ir va
              else va
            in
            let b = Array.unsafe_get buffers slot in
            let len = Array.length b in
            if a < 0 || a >= len then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: global load out of bounds: %s[%d] (len %d)" p.name
                p.buf_params.(slot) a len;
            let vv = Array.unsafe_get bc (pc + 5) in
            let v =
              if Array.unsafe_get bc (pc + 4) = 0 then Array.unsafe_get fr vv
              else Array.unsafe_get fconsts vv
            in
            Array.unsafe_set b a (round_half (Array.unsafe_get b a +. v));
            go (pc + 6)
          | 39 (* bra *) ->
            k.branch <- k.branch + 1;
            go (Array.unsafe_get bc (pc + 1))
          | 40 (* bra_undef *) ->
            k.branch <- k.branch + 1;
            trap_at k (Array.unsafe_get opc_of pc) "%s: undefined label %s"
              p.name
              undef_names.(Array.unsafe_get bc (pc + 1))
          | 41 (* bar *) ->
            k.bar <- k.bar + 1;
            th.pc <- pc + 1;
            Hit_bar
          | 42 (* ret *) ->
            k.branch <- k.branch + 1;
            th.pc <- pc;
            th.done_ <- true;
            Hit_ret
          | 43 (* ffma_run *) ->
            let n = Array.unsafe_get bc (pc + 1) in
            let base = pc + 2 in
            let stop_w = base + (n * 4) in
            (* The charge at the top of [go] paid for the first FFMA. *)
            if ctx.lease >= n - 1 then begin
              ctx.lease <- ctx.lease - (n - 1);
              k.fma <- k.fma + n;
              let o = ref base in
              while !o < stop_w do
                let o0 = !o in
                Array.unsafe_set fr
                  (Array.unsafe_get bc o0)
                  ((Array.unsafe_get fr (Array.unsafe_get bc (o0 + 1))
                    *. Array.unsafe_get fr (Array.unsafe_get bc (o0 + 2)))
                  +. Array.unsafe_get fr (Array.unsafe_get bc (o0 + 3)));
                o := o0 + 4
              done;
              go stop_w
            end
            else begin
              (* Budget nearly dry: charge per FFMA exactly as the unfused
                 code would, so an exhaustion trap carries the same counter
                 snapshot at the same point. *)
              k.fma <- k.fma + 1;
              Array.unsafe_set fr
                (Array.unsafe_get bc base)
                ((Array.unsafe_get fr (Array.unsafe_get bc (base + 1))
                  *. Array.unsafe_get fr (Array.unsafe_get bc (base + 2)))
                +. Array.unsafe_get fr (Array.unsafe_get bc (base + 3)));
              let o = ref (base + 4) in
              while !o < stop_w do
                (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
                 else refill ctx);
                k.fma <- k.fma + 1;
                let o0 = !o in
                Array.unsafe_set fr
                  (Array.unsafe_get bc o0)
                  ((Array.unsafe_get fr (Array.unsafe_get bc (o0 + 1))
                    *. Array.unsafe_get fr (Array.unsafe_get bc (o0 + 2)))
                  +. Array.unsafe_get fr (Array.unsafe_get bc (o0 + 3)));
                o := o0 + 4
              done;
              go stop_w
            end
          | 44 (* lds_add *) ->
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 3)) in
            record_shared ctx (Array.unsafe_get bc (pc + 2)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get opc_of pc)
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get shf a);
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 4))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 5))
              + Array.unsafe_get bc (pc + 6));
            go (pc + 7)
          | 45 (* add_lds *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
              + Array.unsafe_get bc (pc + 3));
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 6)) in
            record_shared ctx (Array.unsafe_get bc (pc + 5)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get bc (pc + 7))
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 4))
              (Array.unsafe_get shf a);
            go (pc + 8)
          | 46 (* mad_lds *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              ((Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
                * Array.unsafe_get bc (pc + 3))
              + Array.unsafe_get ir (Array.unsafe_get bc (pc + 4)));
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 7)) in
            record_shared ctx (Array.unsafe_get bc (pc + 6)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get bc (pc + 8))
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 5))
              (Array.unsafe_get shf a);
            go (pc + 9)
          | 47 (* imad_rcc *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              ((Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
                * Array.unsafe_get bc (pc + 3))
              + Array.unsafe_get bc (pc + 4));
            go (pc + 5)
          | 48 (* mad_lds_add_lds *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              ((Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
                * Array.unsafe_get bc (pc + 3))
              + Array.unsafe_get ir (Array.unsafe_get bc (pc + 4)));
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 7)) in
            record_shared ctx (Array.unsafe_get bc (pc + 6)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get bc (pc + 8))
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 5))
              (Array.unsafe_get shf a);
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 9))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 10))
              + Array.unsafe_get bc (pc + 11));
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 14)) in
            record_shared ctx (Array.unsafe_get bc (pc + 13)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get bc (pc + 15))
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 12))
              (Array.unsafe_get shf a);
            go (pc + 16)
          | 49 (* add_lds_add_lds *) ->
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 1))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 2))
              + Array.unsafe_get bc (pc + 3));
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 6)) in
            record_shared ctx (Array.unsafe_get bc (pc + 5)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get bc (pc + 7))
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 4))
              (Array.unsafe_get shf a);
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ialu <- k.ialu + 1;
            Array.unsafe_set ir
              (Array.unsafe_get bc (pc + 8))
              (Array.unsafe_get ir (Array.unsafe_get bc (pc + 9))
              + Array.unsafe_get bc (pc + 10));
            (if ctx.lease > 0 then ctx.lease <- ctx.lease - 1
             else refill ctx);
            k.ld_shared <- k.ld_shared + 1;
            let a = Array.unsafe_get ir (Array.unsafe_get bc (pc + 13)) in
            record_shared ctx (Array.unsafe_get bc (pc + 12)) lin a;
            if a < 0 || a >= shared_words then
              trap_at k (Array.unsafe_get bc (pc + 14))
                "%s: shared load out of bounds: [%d] (size %d)" p.name a
                shared_words;
            Array.unsafe_set fr (Array.unsafe_get bc (pc + 11))
              (Array.unsafe_get shf a);
            go (pc + 15)
          | _ -> assert false
      end
    in
    go th.pc
  in
  let exec_block ctx cx cy cz =
    let threads = ctx.threads in
    Array.fill ctx.shared_f 0 (Array.length ctx.shared_f) 0.0;
    Array.fill ctx.shared_i 0 (Array.length ctx.shared_i) 0;
    Array.iter
      (fun th ->
        Array.fill th.fregs 0 (Array.length th.fregs) 0.0;
        Array.fill th.iregs 0 (Array.length th.iregs) 0;
        Array.fill th.pregs 0 (Array.length th.pregs) false;
        let ir = th.iregs in
        Array.unsafe_set ir vt th.tid_x;
        Array.unsafe_set ir (vt + 1) th.tid_y;
        Array.unsafe_set ir (vt + 2) th.tid_z;
        Array.unsafe_set ir (vt + 3) cx;
        Array.unsafe_set ir (vt + 4) cy;
        Array.unsafe_set ir (vt + 5) cz;
        th.pc <- 0;
        th.done_ <- false;
        th.cta_x <- cx;
        th.cta_y <- cy;
        th.cta_z <- cz)
      threads;
    ctx.stamp <- ctx.stamp + 1;
    let where stop (th : thread) =
      (* After Hit_bar the pc sits one word past the Bar (stride 1);
         Ret leaves it on the Ret's own word. *)
      match stop with
      | Hit_bar ->
        Printf.sprintf "hit barrier at %s" (describe opc_of.(th.pc - 1))
      | Hit_ret -> Printf.sprintf "returned at %s" (describe opc_of.(th.pc))
    in
    let n_threads = Array.length threads in
    let rec phases () =
      let first = run_to_barrier ctx threads.(0) in
      for i = 1 to n_threads - 1 do
        let stop = run_to_barrier ctx threads.(i) in
        if stop <> first then
          raise
            (Trap
               (Printf.sprintf
                  "%s: barrier divergence: thread 0 %s but thread %d %s [%s]"
                  p.name
                  (where first threads.(0))
                  i
                  (where stop threads.(i))
                  (summary ctx.k)))
      done;
      ctx.stamp <- ctx.stamp + 1;
      match first with Hit_ret -> () | Hit_bar -> phases ()
    in
    phases ()
  in
  let exec_chunk ~offset ~size =
    let ctx = mk_ctx () in
    for b = offset to offset + size - 1 do
      exec_block ctx (b mod gx) (b / gx mod gy) (b / (gx * gy))
    done;
    ctx.k
  in
  let has_atomics =
    Array.exists
      (fun (i : Instr.t) ->
        match i.Instr.op with Instr.Atom_global_add _ -> true | _ -> false)
      body
  in
  let n_domains =
    let d =
      match domains with
      | Some d -> max 1 d
      | None -> Util.Parallel.recommended_domains ()
    in
    if has_atomics then 1 else max 1 (min d n_blocks)
  in
  let shards =
    if n_domains <= 1 then [ exec_chunk ~offset:0 ~size:n_blocks ]
    else
      Util.Parallel.run_chunks_offsets ~domains:n_domains ~total:n_blocks
        (fun ~chunk:_ ~offset ~size -> exec_chunk ~offset ~size)
  in
  let counters = zero_counters () in
  List.iter (fun shard -> add_into ~into:counters shard) shards;
  obs_export counters;
  counters

let run ?max_dynamic ?domains ?(engine = `Bytecode) p ~grid ~block ~bufs
    ~iargs =
  match engine with
  | `Bytecode -> run_bytecode ?max_dynamic ?domains p ~grid ~block ~bufs ~iargs
  | `Closures -> run_closures ?max_dynamic ?domains p ~grid ~block ~bufs ~iargs
