(** Kernel programs: an instruction body plus its signature and resource
    metadata. Produced by {!Builder}, consumed by {!Interp} (functional
    execution), {!Disasm} (pretty printing) and the GPU timing model
    (resource usage). *)

open Types

type t = {
  name : string;
  dtype : dtype;                (** compute data-type *)
  buf_params : string array;    (** global buffer parameters, by slot *)
  int_params : string array;    (** scalar integer parameters, by slot *)
  shared_words : int;           (** shared-memory size in float words *)
  shared_int_words : int;       (** shared-memory size in int words *)
  body : Instr.t array;
  n_fregs : int;                (** virtual float registers per thread *)
  n_iregs : int;
  n_pregs : int;
}

val shared_bytes : t -> int
(** Shared memory footprint in bytes ([shared_words] at the compute dtype
    width plus [shared_int_words] 4-byte ints). *)

val validate : t -> (unit, string) result
(** Structural checks: every branch target is a defined, unique label;
    every register index is below the declared counts; every parameter
    slot is in range. The builder always produces valid programs; this
    guards hand-written ones and is exercised by tests. *)

val find_labels : t -> (string, int) Hashtbl.t
(** Map from label name to body index (index of the [Label] instruction). *)
