(** Instruction set of the mini-PTX IR.

    Every instruction may carry a guard predicate, mirroring PTX's
    [@%p]/[@!%p] predication — the mechanism §8.3 of the paper identifies
    as the reason PTX-level bounds checking costs ~2% instead of the
    15–20% of branch-based CUDA C checks. *)

open Types

(** Operation codes. Global memory operands are a pair of a buffer
    parameter slot (static) and a dynamic element offset. *)
type op =
  (* integer ALU *)
  | Mov of ireg * ioperand                        (** d <- a *)
  | Iadd of ireg * ioperand * ioperand            (** d <- a + b *)
  | Isub of ireg * ioperand * ioperand
  | Imul of ireg * ioperand * ioperand
  | Imad of ireg * ioperand * ioperand * ioperand (** d <- a*b + c *)
  | Idiv of ireg * ioperand * ioperand            (** truncated division *)
  | Irem of ireg * ioperand * ioperand
  | Imin of ireg * ioperand * ioperand
  | Imax of ireg * ioperand * ioperand
  | Ishl of ireg * ioperand * ioperand
  | Ishr of ireg * ioperand * ioperand
  | Iand of ireg * ioperand * ioperand
  | Ior of ireg * ioperand * ioperand
  (* predicates *)
  | Setp of cmp * preg * ioperand * ioperand      (** p <- a `cmp` b *)
  | And_p of preg * preg * preg                   (** p <- p1 && p2 *)
  | Or_p of preg * preg * preg
  | Not_p of preg * preg
  (* floating point *)
  | Movf of freg * foperand
  | Fadd of freg * foperand * foperand
  | Fsub of freg * foperand * foperand
  | Fmul of freg * foperand * foperand
  | Ffma of freg * foperand * foperand * foperand (** d <- a*b + c *)
  | Fmax of freg * foperand * foperand
  | Fmin of freg * foperand * foperand
  (* memory *)
  | Ld_global of freg * int * ioperand            (** d <- buf[slot][addr] *)
  | Ld_global_i of ireg * int * ioperand          (** integer gather (indirection tables) *)
  | Ld_shared of freg * ioperand
  | Ld_shared_i of ireg * ioperand
  | St_global of int * ioperand * foperand        (** buf[slot][addr] <- v *)
  | St_shared of ioperand * foperand
  | St_shared_i of ioperand * ioperand
  | Atom_global_add of int * ioperand * foperand  (** buf[slot][addr] += v *)
  (* control *)
  | Label of string
  | Bra of string                                 (** branch (honours guard) *)
  | Bar                                           (** block-wide barrier *)
  | Ret

type t = {
  op : op;
  guard : (preg * bool) option;
      (** [Some (p, sense)]: execute iff the thread's predicate register
          [p] equals [sense]. [None]: always execute. *)
}

val mk : ?guard:preg * bool -> op -> t
(** Build an instruction, unguarded by default. *)

val opcode : op -> int
(** Stable binary opcode number used by {!Encode}'s packed instruction
    words. Follows constructor order; persisted artifacts and kernel
    hashes depend on it, so existing numbers never change. *)

val n_opcodes : int
(** Exclusive upper bound of {!opcode}. *)

val opcode_name : int -> string
(** Short mnemonic for an opcode number (["?"] when out of range); used
    by the [--dump-binary] field breakdown. *)

(** Category used by dynamic instruction counting in the interpreter and by
    the static analysis; the timing model consumes these mixes. *)
type category =
  | Cat_ialu | Cat_fma | Cat_fp_other
  | Cat_ld_global | Cat_st_global | Cat_ld_shared | Cat_st_shared
  | Cat_atom | Cat_bar | Cat_branch | Cat_pred | Cat_mov

val categorize : op -> category option
(** [None] for [Label] (assembler directive, costs nothing). *)
