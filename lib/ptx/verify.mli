(** Static verifier for generated mini-PTX kernels.

    Runs entirely ahead of any interpretation: structural
    well-formedness, definite assignment ({!Dataflow.def_before_use}),
    barrier-divergence detection over the uniformity lattice,
    shared-memory race and bounds checking by enumerating the block's
    threads over closed (tid-only) address expressions, and a
    bank-conflict analysis whose aggregate conflict factor feeds the
    shared-memory term of the performance model.

    The contract mirrors the paper's generator invariant: every emitted
    kernel must verify clean, so the tuner can use [run] as a cheap
    static legality oracle before paying for an interpreter run. *)

type kind =
  | Structure           (** validation / CFG construction / fall-off-end *)
  | Use_before_def
  | Barrier_divergence
  | Shared_race
  | Shared_bounds
  | Unanalyzable        (** warning: an address or guard escapes the
                            affine domain, so race/bounds/bank analysis
                            skipped the site *)
  | Dead_store          (** warning ({!Scoreboard.lint}): value written
                            but never read before being overwritten *)
  | Unread_register     (** warning: register written but never read *)
  | Unreachable_code    (** warning: block with no path from entry *)
  | Redundant_barrier   (** warning: bar.sync with no shared access since
                            the previous barrier in its block *)

val kind_name : kind -> string

type diag = {
  kind : kind;
  pc : int option;  (** instruction index, when the defect has one *)
  message : string;
}

type bank_stats = {
  sites : int;         (** shared-access sites with analyzable addresses *)
  transactions : int;  (** warp-level shared transactions across those sites *)
  conflicted : int;    (** transactions serialized by a bank conflict *)
  conflict_factor : float;
      (** mean serialization degree, [>= 1.0]: total bank cycles divided
          by conflict-free cycles. [1.0] when nothing is analyzable. *)
}

type report = {
  errors : diag list;
  warnings : diag list;
  bank : bank_stats;
}

val ok : report -> bool
(** No errors (warnings allowed). *)

val run :
  ?iargs:(string * int) list ->
  block:int * int * int ->
  Program.t ->
  report
(** Verify [p] for a launch with the given block shape. [iargs] binds
    scalar parameters by name (e.g. [("M", 1024)]); unbound parameters
    stay symbolic-uniform, which weakens bounds checking but never
    soundness of the uniformity analysis. *)

val to_string : report -> string
(** Multi-line human-readable rendering, one diagnostic per line. *)
