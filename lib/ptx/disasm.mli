(** PTX-flavoured textual rendering of programs, for debugging, the
    [ptx_explore] example, and golden tests. The output is close to real
    PTX syntax (guards as [@%p] / [@!%p], [ld.shared.f32], etc.) but is not
    meant to be assembled by ptxas. *)

val special_name : Types.special -> string
val operand_i : Types.ioperand -> string
val operand_f : Types.foperand -> string
val instr : Types.dtype -> Instr.t -> string
(** Render one instruction. *)

val program : Program.t -> string
(** Render a whole program: header with signature and resource usage, then
    one line per instruction. *)
