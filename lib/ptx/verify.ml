module Sym = Dataflow.Sym
module IS = Set.Make (Int)

type kind =
  | Structure
  | Use_before_def
  | Barrier_divergence
  | Shared_race
  | Shared_bounds
  | Unanalyzable
  | Dead_store
  | Unread_register
  | Unreachable_code
  | Redundant_barrier

let kind_name = function
  | Structure -> "structure"
  | Use_before_def -> "use-before-def"
  | Barrier_divergence -> "barrier-divergence"
  | Shared_race -> "shared-race"
  | Shared_bounds -> "shared-bounds"
  | Unanalyzable -> "unanalyzable"
  | Dead_store -> "dead-store"
  | Unread_register -> "unread-register"
  | Unreachable_code -> "unreachable-code"
  | Redundant_barrier -> "redundant-barrier"

type diag = {
  kind : kind;
  pc : int option;
  message : string;
}

type bank_stats = {
  sites : int;
  transactions : int;
  conflicted : int;
  conflict_factor : float;
}

type report = {
  errors : diag list;
  warnings : diag list;
  bank : bank_stats;
}

let ok r = r.errors = []

let neutral_bank = { sites = 0; transactions = 0; conflicted = 0; conflict_factor = 1.0 }

let pp_diag d =
  let loc = match d.pc with Some pc -> Printf.sprintf " @%d" pc | None -> "" in
  Printf.sprintf "[%s]%s %s" (kind_name d.kind) loc d.message

let to_string r =
  let b = Buffer.create 256 in
  List.iter (fun d -> Buffer.add_string b ("error " ^ pp_diag d ^ "\n")) r.errors;
  List.iter (fun d -> Buffer.add_string b ("warning " ^ pp_diag d ^ "\n")) r.warnings;
  Buffer.add_string b
    (Printf.sprintf
       "bank: %d sites, %d transactions, %d conflicted, factor %.3f\n"
       r.bank.sites r.bank.transactions r.bank.conflicted r.bank.conflict_factor);
  Buffer.contents b

(* A shared-memory access site, with its address and guard in the
   symbolic domain at that program point. *)
type access = {
  a_pc : int;
  a_write : bool;
  a_int_space : bool;  (* the integer shared array (St/Ld_shared_i) *)
  a_addr : Sym.expr;
  a_guard : Sym.pexpr option;
}

type tri = No | Yes | Maybe

(* Per-thread evaluation of one site: is the thread active (guard true /
   false / undecidable) and at which word. *)
type site_eval = {
  e_active : tri array;
  e_addr : int option array;
  e_unknown : bool;  (* some possibly-active thread has an unknown address *)
}

let max_enum_threads = 1024

let run ?(iargs = []) ~block (p : Program.t) =
  let errors = ref [] and warnings = ref [] in
  let push store kind ?pc fmt =
    Printf.ksprintf (fun message -> store := { kind; pc; message } :: !store) fmt
  in
  let err ?pc kind fmt = push errors kind ?pc fmt in
  let warn ?pc kind fmt = push warnings kind ?pc fmt in
  let finish bank =
    { errors = List.rev !errors; warnings = List.rev !warnings; bank }
  in
  match Program.validate p with
  | Error msg ->
    err Structure "%s" msg;
    finish neutral_bank
  | Ok () ->
    match Cfg.build p with
    | Error msg ->
      err Structure "%s" msg;
      finish neutral_bank
    | Ok cfg ->
      let body = p.Program.body in
      let n = Array.length body in
      let reach = Cfg.reachable cfg in
      if cfg.Cfg.may_fall_off_end && reach.(cfg.Cfg.block_of.(n - 1)) then
        err Structure ~pc:(n - 1)
          "control may fall off the end of the body without ret";
      List.iter
        (fun { Dataflow.pc; reg } ->
          err Use_before_def ~pc "%s read before any definition on some path"
            (Dataflow.pp_reg reg))
        (Dataflow.def_before_use p cfg);
      (* Scheduling lints from the scoreboard's liveness analysis:
         advisory (warnings), so [ok] — the generators' legality oracle —
         still means "no errors". *)
      List.iter
        (fun l ->
          let kind =
            match l with
            | Scoreboard.Dead_store _ -> Dead_store
            | Scoreboard.Unread_register _ -> Unread_register
            | Scoreboard.Unreachable_code _ -> Unreachable_code
            | Scoreboard.Redundant_barrier _ -> Redundant_barrier
          in
          let pc, message = Scoreboard.lint_message l in
          match pc with
          | Some pc -> warn ~pc kind "%s" message
          | None -> warn kind "%s" message)
        (Scoreboard.lint p);
      (* Symbolic uniformity / affine pass. *)
      let bx, by, bz = block in
      let int_params =
        Array.map (fun name -> List.assoc_opt name iargs) p.int_params
      in
      let sol = Dataflow.symbolic ~int_params ~block p cfg in
      let nb = Array.length cfg.Cfg.blocks in
      let accesses = ref [] in
      let site_of_pc = Hashtbl.create 32 in
      let varying_branches = ref [] in
      for b = 0 to nb - 1 do
        if reach.(b) then
          Dataflow.walk_block sol b ~f:(fun ~pc env ->
              let instr = body.(pc) in
              let add ~write ~int_space addr_op =
                let site =
                  { a_pc = pc;
                    a_write = write;
                    a_int_space = int_space;
                    a_addr = Dataflow.operand_expr sol env addr_op;
                    a_guard = Dataflow.guard_pexpr env instr }
                in
                Hashtbl.replace site_of_pc pc (List.length !accesses);
                accesses := site :: !accesses
              in
              match instr.Instr.op with
              | Instr.Bar -> (
                  match Dataflow.guard_pexpr env instr with
                  | None -> ()
                  | Some g ->
                    if not (Sym.puniform g) then
                      err Barrier_divergence ~pc
                        "bar.sync guarded by a thread-varying predicate")
              | Ld_shared (_, addr) -> add ~write:false ~int_space:false addr
              | Ld_shared_i (_, addr) -> add ~write:false ~int_space:true addr
              | St_shared (addr, _) -> add ~write:true ~int_space:false addr
              | St_shared_i (addr, _) -> add ~write:true ~int_space:true addr
              | Bra _ | Ret -> (
                  match Dataflow.guard_pexpr env instr with
                  | Some g when not (Sym.puniform g) ->
                    varying_branches :=
                      (b, pc, instr.Instr.op = Instr.Ret) :: !varying_branches
                  | _ -> ())
              | _ -> ())
      done;
      let sites = Array.of_list (List.rev !accesses) in
      let m = Array.length sites in
      (* Bar instructions per block; any Bar (guarded or not) is a
         divergence hazard inside a thread-varying region. *)
      let bar_pcs b =
        let blk = cfg.Cfg.blocks.(b) in
        let acc = ref [] in
        for i = blk.Cfg.last downto blk.Cfg.first do
          if body.(i).Instr.op = Instr.Bar then acc := i :: !acc
        done;
        !acc
      in
      (* Barrier divergence from thread-varying control flow. *)
      (match !varying_branches with
       | [] -> ()
       | vb ->
         let ipdom = Cfg.postdominators cfg in
         let reachable_from succs =
           let seen = Array.make nb false in
           let rec go id =
             if not seen.(id) then begin
               seen.(id) <- true;
               List.iter go cfg.Cfg.blocks.(id).Cfg.succs
             end
           in
           List.iter go succs;
           List.filter (fun id -> seen.(id)) (List.init nb Fun.id)
         in
         List.iter
           (fun (b, pc, is_ret) ->
             let region =
               if is_ret then
                 (* Threads that return early never reach a later barrier:
                    any Bar reachable past the guarded ret deadlocks. *)
                 reachable_from cfg.Cfg.blocks.(b).Cfg.succs
               else Cfg.divergence_region cfg ~ipdom b
             in
             match List.concat_map bar_pcs region with
             | [] -> ()
             | bar_pc :: _ ->
               err Barrier_divergence ~pc:bar_pc
                 "bar.sync may be reached with threads diverged at the \
                  %s at pc %d (thread-varying guard)"
                 (if is_ret then "guarded ret" else "branch")
                 pc)
           vb);
      (* Barrier intervals: which sites may execute with no intervening
         (unguarded) bar.sync. Forward may-analysis on site sets. *)
      let walk_sites b live ~at_site =
        let blk = cfg.Cfg.blocks.(b) in
        let live = ref live in
        for i = blk.Cfg.first to blk.Cfg.last do
          match body.(i).Instr.op with
          | Instr.Bar when body.(i).Instr.guard = None -> live := IS.empty
          | Ld_shared _ | Ld_shared_i _ | St_shared _ | St_shared_i _ ->
            let s = Hashtbl.find site_of_pc i in
            at_site s !live;
            live := IS.add s !live
          | _ -> ()
        done;
        !live
      in
      let in_sets = Array.make nb IS.empty in
      let out_sets = Array.make nb IS.empty in
      let changed = ref true in
      while !changed do
        changed := false;
        for b = 0 to nb - 1 do
          if reach.(b) then begin
            let inb =
              List.fold_left
                (fun acc pr -> IS.union acc out_sets.(pr))
                IS.empty cfg.Cfg.blocks.(b).Cfg.preds
            in
            in_sets.(b) <- inb;
            let out = walk_sites b inb ~at_site:(fun _ _ -> ()) in
            if not (IS.equal out out_sets.(b)) then begin
              out_sets.(b) <- out;
              changed := true
            end
          end
        done
      done;
      let pairs = Hashtbl.create 64 in
      for b = 0 to nb - 1 do
        if reach.(b) then
          ignore
            (walk_sites b in_sets.(b) ~at_site:(fun s live ->
                 Hashtbl.replace pairs (s, s) ();
                 IS.iter
                   (fun l -> Hashtbl.replace pairs (min l s, max l s) ())
                   live))
      done;
      let nthreads = bx * by * bz in
      if nthreads <= 0 || nthreads > max_enum_threads then begin
        if m > 0 then
          warn Unanalyzable
            "block of %d threads out of range for enumeration; shared race/\
             bounds/bank analysis skipped" nthreads;
        finish neutral_bank
      end
      else begin
        let tid_of t = (t mod bx, t / bx mod by, t / (bx * by)) in
        let evals =
          Array.map
            (fun s ->
              let e_active = Array.make nthreads No in
              let e_addr = Array.make nthreads None in
              let unknown = ref false in
              for t = 0 to nthreads - 1 do
                let tid = tid_of t in
                let active =
                  match s.a_guard with
                  | None -> Yes
                  | Some g -> (
                      match Sym.peval ~tid g with
                      | Some true -> Yes
                      | Some false -> No
                      | None -> Maybe)
                in
                e_active.(t) <- active;
                if active <> No then begin
                  e_addr.(t) <- Sym.eval ~tid s.a_addr;
                  if e_addr.(t) = None then unknown := true
                end
              done;
              { e_active; e_addr; e_unknown = !unknown })
            sites
        in
        Array.iteri
          (fun i s ->
            if evals.(i).e_unknown then
              warn Unanalyzable ~pc:s.a_pc
                "shared %s address is not a closed function of tid; race/\
                 bounds/bank analysis skipped here"
                (if s.a_write then "store" else "load"))
          sites;
        (* Static bounds: a definitely-active thread with a known address
           must stay inside the declared shared allocation. *)
        Array.iteri
          (fun i s ->
            let bound =
              if s.a_int_space then p.shared_int_words else p.shared_words
            in
            let ev = evals.(i) in
            let reported = ref false in
            for t = 0 to nthreads - 1 do
              if (not !reported) && ev.e_active.(t) = Yes then
                match ev.e_addr.(t) with
                | Some a when a < 0 || a >= bound ->
                  let x, y, z = tid_of t in
                  reported := true;
                  err Shared_bounds ~pc:s.a_pc
                    "thread (%d,%d,%d) accesses shared%s word %d outside \
                     [0,%d)"
                    x y z (if s.a_int_space then "_i" else "") a bound
                | _ -> ()
            done)
          sites;
        (* Races: two possibly-active distinct threads touching the same
           word of the same space in one barrier interval, >=1 write. *)
        Hashtbl.iter
          (fun (i, j) () ->
            let s1 = sites.(i) and s2 = sites.(j) in
            if
              s1.a_int_space = s2.a_int_space
              && (s1.a_write || s2.a_write)
              && (not evals.(i).e_unknown)
              && not evals.(j).e_unknown
            then begin
              let table = Hashtbl.create (2 * nthreads) in
              for t = 0 to nthreads - 1 do
                if evals.(i).e_active.(t) <> No then
                  match evals.(i).e_addr.(t) with
                  | Some a when not (Hashtbl.mem table a) ->
                    Hashtbl.add table a t
                  | _ -> ()
              done;
              let reported = ref false in
              for t2 = 0 to nthreads - 1 do
                if (not !reported) && evals.(j).e_active.(t2) <> No then
                  match evals.(j).e_addr.(t2) with
                  | Some a -> (
                      match Hashtbl.find_opt table a with
                      | Some t1 when t1 <> t2 ->
                        reported := true;
                        let x1, y1, z1 = tid_of t1 and x2, y2, z2 = tid_of t2 in
                        err Shared_race ~pc:s2.a_pc
                          "possible %s/%s race on shared%s word %d: pc %d \
                           thread (%d,%d,%d) vs pc %d thread (%d,%d,%d) in \
                           the same barrier interval"
                          (if s1.a_write then "write" else "read")
                          (if s2.a_write then "write" else "read")
                          (if s1.a_int_space then "_i" else "")
                          a s1.a_pc x1 y1 z1 s2.a_pc x2 y2 z2
                      | _ -> ())
                  | None -> ()
              done
            end)
          pairs;
        (* Bank conflicts: per warp, the serialization degree is the
           largest number of distinct words mapped to one bank (equal
           words broadcast). *)
        let banks = 32 in
        let warp = 32 in
        let analyzable = ref 0 in
        let transactions = ref 0 in
        let conflicted = ref 0 in
        let cycles = ref 0 in
        Array.iteri
          (fun i _ ->
            let ev = evals.(i) in
            if not ev.e_unknown then begin
              incr analyzable;
              let w0 = ref 0 in
              while !w0 < nthreads do
                let per_bank = Hashtbl.create 64 in
                let any = ref false in
                for t = !w0 to min (nthreads - 1) (!w0 + warp - 1) do
                  if ev.e_active.(t) <> No then
                    match ev.e_addr.(t) with
                    | Some a ->
                      any := true;
                      let bank = ((a mod banks) + banks) mod banks in
                      let set =
                        Option.value
                          (Hashtbl.find_opt per_bank bank)
                          ~default:IS.empty
                      in
                      Hashtbl.replace per_bank bank (IS.add a set)
                    | None -> ()
                done;
                if !any then begin
                  let degree =
                    Hashtbl.fold
                      (fun _ set acc -> max acc (IS.cardinal set))
                      per_bank 1
                  in
                  incr transactions;
                  cycles := !cycles + degree;
                  if degree > 1 then incr conflicted
                end;
                w0 := !w0 + warp
              done
            end)
          sites;
        let factor =
          if !transactions = 0 then 1.0
          else float_of_int !cycles /. float_of_int !transactions
        in
        finish
          { sites = !analyzable;
            transactions = !transactions;
            conflicted = !conflicted;
            conflict_factor = factor }
      end
