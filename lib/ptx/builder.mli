(** Imperative construction of {!Program.t} values.

    The kernel generators allocate virtual registers and labels through a
    builder and emit instructions in order; [finish] packages the body with
    the register counts. The builder guarantees the structural invariants
    that {!Program.validate} checks. *)

open Types

type t

val create : name:string -> dtype:dtype -> t

val buf_param : t -> string -> int
(** Declare a global buffer parameter; returns its slot. *)

val int_param : t -> string -> ioperand
(** Declare a scalar integer parameter; returns an operand reading it. *)

val fresh_f : t -> freg
val fresh_i : t -> ireg
val fresh_p : t -> preg

val fresh_label : t -> string -> string
(** [fresh_label t stem] returns a unique label name based on [stem]. *)

val emit : t -> ?guard:preg * bool -> Instr.op -> unit
val place_label : t -> string -> unit
(** Emit the [Label] pseudo-instruction defining a label. *)

val set_shared : t -> words:int -> int_words:int -> unit
(** Declare the shared-memory footprint (float words / int words). *)

val finish : t -> Program.t
(** Close the builder. Appends a trailing [Ret] if the body does not end
    with one, and validates the result (raising [Invalid_argument] on
    failure, which indicates a generator bug). *)

(** {2 Convenience emission helpers}

    These wrap common emit patterns; each returns the destination
    register. *)

val mov_i : t -> ioperand -> ireg
val mov_f : t -> foperand -> freg
val add_i : t -> ioperand -> ioperand -> ireg
val sub_i : t -> ioperand -> ioperand -> ireg
val mul_i : t -> ioperand -> ioperand -> ireg
val mad_i : t -> ioperand -> ioperand -> ioperand -> ireg
val div_i : t -> ioperand -> ioperand -> ireg
val rem_i : t -> ioperand -> ioperand -> ireg
val min_i : t -> ioperand -> ioperand -> ireg
val setp : t -> cmp -> ioperand -> ioperand -> preg
val and_p : t -> preg -> preg -> preg
