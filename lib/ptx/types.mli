(** Core types shared by the mini-PTX intermediate representation.

    The IR models the subset of NVIDIA PTX that the ISAAC kernel generator
    relies on: typed virtual registers, predication, shared/global state
    spaces, barriers and global atomics.  Addresses are expressed in
    {e elements} of the kernel's compute data-type rather than bytes; this
    keeps the functional interpreter simple while preserving every
    structural property the reproduction needs (tiling, staging,
    predicated bounds checks, reduction splitting). *)

type dtype = F16 | F32 | F64
(** Compute data-types. All are represented by OCaml [float] inside the
    interpreter; [F16] values are additionally rounded through half
    precision on stores so that precision-sensitive tests stay honest. *)

val dtype_bytes : dtype -> int
(** Storage size in bytes: 2, 4 or 8. *)

val dtype_name : dtype -> string
(** PTX-style suffix: "f16", "f32", "f64". *)

val round_half : float -> float
(** Round a float through IEEE binary16 (used on [F16] stores). *)

type freg = int
(** Virtual floating-point register index (per-thread). *)

type ireg = int
(** Virtual 32/64-bit integer register index (per-thread). *)

type preg = int
(** Virtual predicate register index (per-thread). *)

(** Special read-only per-thread values, mirroring PTX [%tid], [%ctaid],
    [%ntid] and [%nctaid]. *)
type special =
  | Tid_x | Tid_y | Tid_z
  | Ctaid_x | Ctaid_y | Ctaid_z
  | Ntid_x | Ntid_y | Ntid_z
  | Nctaid_x | Nctaid_y | Nctaid_z

(** Integer operands. *)
type ioperand =
  | Ireg of ireg            (** integer register *)
  | Iimm of int             (** immediate *)
  | Iparam of int           (** kernel scalar parameter, by position *)
  | Ispecial of special     (** special register *)

(** Floating-point operands. *)
type foperand =
  | Freg of freg            (** float register *)
  | Fimm of float           (** immediate *)

(** Comparison operators for [setp]. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

val cmp_name : cmp -> string
val eval_cmp : cmp -> int -> int -> bool

(** State spaces addressable by loads/stores. [Global] addresses are pairs
    (buffer parameter index, element offset); [Shared] is a per-block flat
    array. *)
type space = Global | Shared
