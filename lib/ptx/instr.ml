open Types

type op =
  | Mov of ireg * ioperand
  | Iadd of ireg * ioperand * ioperand
  | Isub of ireg * ioperand * ioperand
  | Imul of ireg * ioperand * ioperand
  | Imad of ireg * ioperand * ioperand * ioperand
  | Idiv of ireg * ioperand * ioperand
  | Irem of ireg * ioperand * ioperand
  | Imin of ireg * ioperand * ioperand
  | Imax of ireg * ioperand * ioperand
  | Ishl of ireg * ioperand * ioperand
  | Ishr of ireg * ioperand * ioperand
  | Iand of ireg * ioperand * ioperand
  | Ior of ireg * ioperand * ioperand
  | Setp of cmp * preg * ioperand * ioperand
  | And_p of preg * preg * preg
  | Or_p of preg * preg * preg
  | Not_p of preg * preg
  | Movf of freg * foperand
  | Fadd of freg * foperand * foperand
  | Fsub of freg * foperand * foperand
  | Fmul of freg * foperand * foperand
  | Ffma of freg * foperand * foperand * foperand
  | Fmax of freg * foperand * foperand
  | Fmin of freg * foperand * foperand
  | Ld_global of freg * int * ioperand
  | Ld_global_i of ireg * int * ioperand
  | Ld_shared of freg * ioperand
  | Ld_shared_i of ireg * ioperand
  | St_global of int * ioperand * foperand
  | St_shared of ioperand * foperand
  | St_shared_i of ioperand * ioperand
  | Atom_global_add of int * ioperand * foperand
  | Label of string
  | Bra of string
  | Bar
  | Ret

type t = { op : op; guard : (preg * bool) option }

let mk ?guard op = { op; guard }

type category =
  | Cat_ialu | Cat_fma | Cat_fp_other
  | Cat_ld_global | Cat_st_global | Cat_ld_shared | Cat_st_shared
  | Cat_atom | Cat_bar | Cat_branch | Cat_pred | Cat_mov

(* Stable binary opcode numbering (the wire format of [Encode]). The
   numbers follow the constructor order above and MUST NOT be reshuffled:
   persisted packed kernels and their FNV-64 hashes depend on them. New
   operations append at the end. *)
let opcode = function
  | Mov _ -> 0 | Iadd _ -> 1 | Isub _ -> 2 | Imul _ -> 3 | Imad _ -> 4
  | Idiv _ -> 5 | Irem _ -> 6 | Imin _ -> 7 | Imax _ -> 8 | Ishl _ -> 9
  | Ishr _ -> 10 | Iand _ -> 11 | Ior _ -> 12 | Setp _ -> 13 | And_p _ -> 14
  | Or_p _ -> 15 | Not_p _ -> 16 | Movf _ -> 17 | Fadd _ -> 18 | Fsub _ -> 19
  | Fmul _ -> 20 | Ffma _ -> 21 | Fmax _ -> 22 | Fmin _ -> 23
  | Ld_global _ -> 24 | Ld_global_i _ -> 25 | Ld_shared _ -> 26
  | Ld_shared_i _ -> 27 | St_global _ -> 28 | St_shared _ -> 29
  | St_shared_i _ -> 30 | Atom_global_add _ -> 31 | Label _ -> 32
  | Bra _ -> 33 | Bar -> 34 | Ret -> 35

let n_opcodes = 36

let opcode_name = function
  | 0 -> "mov" | 1 -> "iadd" | 2 -> "isub" | 3 -> "imul" | 4 -> "imad"
  | 5 -> "idiv" | 6 -> "irem" | 7 -> "imin" | 8 -> "imax" | 9 -> "ishl"
  | 10 -> "ishr" | 11 -> "iand" | 12 -> "ior" | 13 -> "setp" | 14 -> "andp"
  | 15 -> "orp" | 16 -> "notp" | 17 -> "movf" | 18 -> "fadd" | 19 -> "fsub"
  | 20 -> "fmul" | 21 -> "ffma" | 22 -> "fmax" | 23 -> "fmin"
  | 24 -> "ldg" | 25 -> "ldgi" | 26 -> "lds" | 27 -> "ldsi" | 28 -> "stg"
  | 29 -> "sts" | 30 -> "stsi" | 31 -> "atom" | 32 -> "label" | 33 -> "bra"
  | 34 -> "bar" | 35 -> "ret" | _ -> "?"

let categorize = function
  | Mov _ | Movf _ -> Some Cat_mov
  | Iadd _ | Isub _ | Imul _ | Imad _ | Idiv _ | Irem _
  | Imin _ | Imax _ | Ishl _ | Ishr _ | Iand _ | Ior _ -> Some Cat_ialu
  | Setp _ | And_p _ | Or_p _ | Not_p _ -> Some Cat_pred
  | Ffma _ -> Some Cat_fma
  | Fadd _ | Fsub _ | Fmul _ | Fmax _ | Fmin _ -> Some Cat_fp_other
  | Ld_global _ | Ld_global_i _ -> Some Cat_ld_global
  | St_global _ -> Some Cat_st_global
  | Ld_shared _ | Ld_shared_i _ -> Some Cat_ld_shared
  | St_shared _ | St_shared_i _ -> Some Cat_st_shared
  | Atom_global_add _ -> Some Cat_atom
  | Bar -> Some Cat_bar
  | Bra _ -> Some Cat_branch
  | Ret -> Some Cat_branch
  | Label _ -> None
