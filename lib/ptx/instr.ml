open Types

type op =
  | Mov of ireg * ioperand
  | Iadd of ireg * ioperand * ioperand
  | Isub of ireg * ioperand * ioperand
  | Imul of ireg * ioperand * ioperand
  | Imad of ireg * ioperand * ioperand * ioperand
  | Idiv of ireg * ioperand * ioperand
  | Irem of ireg * ioperand * ioperand
  | Imin of ireg * ioperand * ioperand
  | Imax of ireg * ioperand * ioperand
  | Ishl of ireg * ioperand * ioperand
  | Ishr of ireg * ioperand * ioperand
  | Iand of ireg * ioperand * ioperand
  | Ior of ireg * ioperand * ioperand
  | Setp of cmp * preg * ioperand * ioperand
  | And_p of preg * preg * preg
  | Or_p of preg * preg * preg
  | Not_p of preg * preg
  | Movf of freg * foperand
  | Fadd of freg * foperand * foperand
  | Fsub of freg * foperand * foperand
  | Fmul of freg * foperand * foperand
  | Ffma of freg * foperand * foperand * foperand
  | Fmax of freg * foperand * foperand
  | Fmin of freg * foperand * foperand
  | Ld_global of freg * int * ioperand
  | Ld_global_i of ireg * int * ioperand
  | Ld_shared of freg * ioperand
  | Ld_shared_i of ireg * ioperand
  | St_global of int * ioperand * foperand
  | St_shared of ioperand * foperand
  | St_shared_i of ioperand * ioperand
  | Atom_global_add of int * ioperand * foperand
  | Label of string
  | Bra of string
  | Bar
  | Ret

type t = { op : op; guard : (preg * bool) option }

let mk ?guard op = { op; guard }

type category =
  | Cat_ialu | Cat_fma | Cat_fp_other
  | Cat_ld_global | Cat_st_global | Cat_ld_shared | Cat_st_shared
  | Cat_atom | Cat_bar | Cat_branch | Cat_pred | Cat_mov

let categorize = function
  | Mov _ | Movf _ -> Some Cat_mov
  | Iadd _ | Isub _ | Imul _ | Imad _ | Idiv _ | Irem _
  | Imin _ | Imax _ | Ishl _ | Ishr _ | Iand _ | Ior _ -> Some Cat_ialu
  | Setp _ | And_p _ | Or_p _ | Not_p _ -> Some Cat_pred
  | Ffma _ -> Some Cat_fma
  | Fadd _ | Fsub _ | Fmul _ | Fmax _ | Fmin _ -> Some Cat_fp_other
  | Ld_global _ | Ld_global_i _ -> Some Cat_ld_global
  | St_global _ -> Some Cat_st_global
  | Ld_shared _ | Ld_shared_i _ -> Some Cat_ld_shared
  | St_shared _ | St_shared_i _ -> Some Cat_st_shared
  | Atom_global_add _ -> Some Cat_atom
  | Bar -> Some Cat_bar
  | Bra _ -> Some Cat_branch
  | Ret -> Some Cat_branch
  | Label _ -> None
