(** Reference PTX interpreter: the original decode-per-step engine,
    retained verbatim as the executable specification for the
    threaded-code engine in {!Interp}.

    Semantics are identical to {!Interp.run} at [~domains:1] — output
    buffers, all sixteen counters and trap messages must match exactly,
    and [test/test_interp_diff.ml] enforces this differentially over
    sampled GEMM/CONV configurations and random programs. Two deliberate
    differences: this engine is always serial, and it does not export
    [interp.*] metrics to the {!Obs} trace (it exists to be compared
    against, not profiled). *)

val run :
  ?max_dynamic:int ->
  Program.t ->
  grid:int * int * int ->
  block:int * int * int ->
  bufs:(string * float array) list ->
  iargs:(string * int) list ->
  Interp.counters
(** See {!Interp.run}; raises {!Interp.Trap} with identical messages. *)
