open Types
module D = Dataflow

type latency = { alu : int; fma : int; shared : int; global : int }

(* Pascal-era figures: dependent-issue latency ~6 for the ALU and FMA
   pipes (Device.fma_latency is 6.0), ~24 for a shared load, a few
   hundred for a global load. *)
let default_latency = { alu = 6; fma = 6; shared = 24; global = 300 }

type pipe = P_fp | P_ialu | P_mem | P_ctrl

let pipe_of (op : Instr.op) =
  match op with
  | Instr.Label _ -> None
  | Movf _ | Fadd _ | Fsub _ | Fmul _ | Ffma _ | Fmax _ | Fmin _ -> Some P_fp
  | Mov _ | Iadd _ | Isub _ | Imul _ | Imad _ | Idiv _ | Irem _ | Imin _
  | Imax _ | Ishl _ | Ishr _ | Iand _ | Ior _
  | Setp _ | And_p _ | Or_p _ | Not_p _ -> Some P_ialu
  | Ld_global _ | Ld_global_i _ | Ld_shared _ | Ld_shared_i _
  | St_global _ | St_shared _ | St_shared_i _ | Atom_global_add _ -> Some P_mem
  | Bra _ | Bar | Ret -> Some P_ctrl

(* Category indexing follows the field order of Interp.counters. *)
let cat_index = function
  | Instr.Cat_ialu -> 0
  | Cat_fma -> 1
  | Cat_fp_other -> 2
  | Cat_ld_global -> 3
  | Cat_st_global -> 4
  | Cat_ld_shared -> 5
  | Cat_st_shared -> 6
  | Cat_atom -> 7
  | Cat_bar -> 8
  | Cat_branch -> 9
  | Cat_pred -> 10
  | Cat_mov -> 11

let n_categories = 12

(* Unified def/use sets over all three register classes. The guard
   predicate is a use; a guarded definition is additionally a use of the
   destination (the old value survives a masked write). *)
let uses_defs (i : Instr.t) =
  let u = ref [] and d = ref [] in
  let ui r = u := D.R_i r :: !u in
  let up r = u := D.R_p r :: !u in
  let uf r = u := D.R_f r :: !u in
  let io = function Ireg r -> ui r | Iimm _ | Iparam _ | Ispecial _ -> () in
  let fo = function Freg r -> uf r | Fimm _ -> () in
  (match i.Instr.op with
   | Mov (dst, a) -> io a; d := [ D.R_i dst ]
   | Iadd (dst, a, b) | Isub (dst, a, b) | Imul (dst, a, b)
   | Idiv (dst, a, b) | Irem (dst, a, b) | Imin (dst, a, b)
   | Imax (dst, a, b) | Ishl (dst, a, b) | Ishr (dst, a, b)
   | Iand (dst, a, b) | Ior (dst, a, b) -> io a; io b; d := [ D.R_i dst ]
   | Imad (dst, a, b, c) -> io a; io b; io c; d := [ D.R_i dst ]
   | Setp (_, p, a, b) -> io a; io b; d := [ D.R_p p ]
   | And_p (p, a, b) | Or_p (p, a, b) -> up a; up b; d := [ D.R_p p ]
   | Not_p (p, a) -> up a; d := [ D.R_p p ]
   | Movf (dst, a) -> fo a; d := [ D.R_f dst ]
   | Fadd (dst, a, b) | Fsub (dst, a, b) | Fmul (dst, a, b)
   | Fmax (dst, a, b) | Fmin (dst, a, b) -> fo a; fo b; d := [ D.R_f dst ]
   | Ffma (dst, a, b, c) -> fo a; fo b; fo c; d := [ D.R_f dst ]
   | Ld_global (dst, _, addr) -> io addr; d := [ D.R_f dst ]
   | Ld_global_i (dst, _, addr) -> io addr; d := [ D.R_i dst ]
   | Ld_shared (dst, addr) -> io addr; d := [ D.R_f dst ]
   | Ld_shared_i (dst, addr) -> io addr; d := [ D.R_i dst ]
   | St_global (_, addr, v) -> io addr; fo v
   | St_shared (addr, v) -> io addr; fo v
   | St_shared_i (addr, v) -> io addr; io v
   | Atom_global_add (_, addr, v) -> io addr; fo v
   | Label _ | Bra _ | Bar | Ret -> ());
  (match i.Instr.guard with
   | Some (p, _) ->
     up p;
     List.iter (fun r -> u := r :: !u) !d
   | None -> ());
  (!u, !d)

let reg_id (p : Program.t) = function
  | D.R_i r -> r
  | D.R_f r -> p.n_iregs + r
  | D.R_p r -> p.n_iregs + p.n_fregs + r

let n_regs (p : Program.t) = p.n_iregs + p.n_fregs + p.n_pregs

let lat_of lat (op : Instr.op) =
  match op with
  | Instr.Fadd _ | Fsub _ | Fmul _ | Ffma _ | Fmax _ | Fmin _ -> lat.fma
  | Ld_shared _ | Ld_shared_i _ -> lat.shared
  | Ld_global _ | Ld_global_i _ -> lat.global
  | _ -> lat.alu

type block_sched = {
  block : int;
  issued : int;
  cycles : int;
  stall_cycles : int;
  crit_path : int;
  dep_depth : int;
  dual_issue : int;
  mix : int array;
}

type loop_sched = {
  header : int;
  latch : int;
  body : int list;
  body_issued : int;
  steady_cycles : int;
  steady_stalls : int;
  steady_fmas : int;
  carried_crit_path : int;
}

type summary = {
  stalls_per_slot : float;
  fma_issue_rate : float;
  crit_path_cycles : int;
  dual_issue_frac : float;
  ilp : float;
  peak_fregs : int;
  peak_iregs : int;
  peak_pregs : int;
  hot_loop : int option;
}

type t = {
  blocks : block_sched array;
  loops : loop_sched list;
  summary : summary;
}

(* ------------------------------------------------------------------ *)
(* In-order issue simulation                                          *)
(* ------------------------------------------------------------------ *)

type sim = {
  ready : int array;           (* absolute cycle a register's value lands *)
  prod_fp : bool array;        (* register last written by the FP pipe *)
  mutable shared_ready : int;  (* completion of the latest shared store *)
  mutable clock : int;         (* next free issue cycle *)
  mutable issued : int;
  mutable stalls : int;
  mutable fp_stalls : int;     (* stalls whose binding producer was FP *)
  mutable dual : int;
  mutable fmas : int;
  mutable prev : (int list * int list * pipe) option;
      (* previous slot's (uses, defs, pipe) for dual-issue pairing *)
}

let fresh_sim nregs =
  { ready = Array.make (max 1 nregs) 0;
    prod_fp = Array.make (max 1 nregs) false;
    shared_ready = 0;
    clock = 0;
    issued = 0;
    stalls = 0;
    fp_stalls = 0;
    dual = 0;
    fmas = 0;
    prev = None }

(* Pre-resolved per-pc operand ids so the simulation is array walks. *)
let resolve_ud (p : Program.t) =
  Array.map
    (fun instr ->
      let u, d = uses_defs instr in
      (List.map (reg_id p) u, List.map (reg_id p) d))
    p.Program.body

(* Returns the stall cycles charged at [pc] (0 for labels), so the binary
   encoder can persist per-instruction nva-style control info without
   re-deriving the schedule. *)
let step lat (body : Instr.t array) ud sim pc =
  let instr = body.(pc) in
  match instr.Instr.op with
  | Instr.Label _ -> 0
  | op ->
    let uid, did = ud.(pc) in
    let dep = ref 0 in
    (* The binding dependence: which producer class made us wait. Used to
       split stalls into FP-chain stalls (the arithmetic-pipeline ceiling)
       and everything else (address chains, staging-register reuse). *)
    let dep_fp = ref false in
    let raise_reg i =
      if sim.ready.(i) > !dep then begin
        dep := sim.ready.(i);
        dep_fp := sim.prod_fp.(i)
      end
    in
    let raise_other r =
      if r > !dep then begin
        dep := r;
        dep_fp := false
      end
    in
    List.iter raise_reg uid;
    (* WAW: an in-order scoreboard may not overwrite a result still in
       flight (no renaming). *)
    List.iter raise_reg did;
    (match op with
     | Ld_shared _ | Ld_shared_i _ -> raise_other sim.shared_ready
     | Bar ->
       (* A barrier drains every outstanding result. Barrier stalls are
          synchronization cost, never FP-chain cost. *)
       Array.iter raise_other sim.ready;
       raise_other sim.shared_ready
     | _ -> ());
    let issue_at = max sim.clock !dep in
    let stall = issue_at - sim.clock in
    sim.stalls <- sim.stalls + stall;
    if stall > 0 && !dep_fp then sim.fp_stalls <- sim.fp_stalls + stall;
    sim.issued <- sim.issued + 1;
    (match Instr.categorize op with
     | Some Instr.Cat_fma -> sim.fmas <- sim.fmas + 1
     | _ -> ());
    let done_at = issue_at + lat_of lat op in
    let is_fp_arith =
      match op with
      | Fadd _ | Fsub _ | Fmul _ | Ffma _ | Fmax _ | Fmin _ -> true
      | _ -> false
    in
    List.iter
      (fun i ->
        sim.ready.(i) <- done_at;
        sim.prod_fp.(i) <- is_fp_arith)
      did;
    (match op with
     | St_shared _ | St_shared_i _ ->
       if issue_at + lat.shared > sim.shared_ready then
         sim.shared_ready <- issue_at + lat.shared
     | _ -> ());
    (match sim.prev, pipe_of op with
     | Some (puses, pdefs, ppipe), Some pipe
       when pipe <> ppipe && stall = 0 ->
       let inter a b = List.exists (fun x -> List.mem x b) a in
       if
         (not (inter uid pdefs)) && (not (inter did pdefs))
         && not (inter did puses)
       then sim.dual <- sim.dual + 1
     | _ -> ());
    (match pipe_of op with
     | Some pp -> sim.prev <- Some (uid, did, pp)
     | None -> ());
    sim.clock <- issue_at + 1;
    stall

(* Dataflow-only critical path (cycles) and dependence depth
   (instructions), both with infinite issue width. [Bar] acts as a
   schedule barrier: everything after it depends on everything before. *)
type crit = {
  cp : int array;          (* per-register completion, cycles *)
  dp : int array;          (* per-register chain length, instructions *)
  mutable cp_shared : int;
  mutable dp_shared : int;
  mutable cp_floor : int;
  mutable dp_floor : int;
  mutable cp_max : int;
  mutable dp_max : int;
}

let fresh_crit nregs =
  { cp = Array.make (max 1 nregs) 0;
    dp = Array.make (max 1 nregs) 0;
    cp_shared = 0;
    dp_shared = 0;
    cp_floor = 0;
    dp_floor = 0;
    cp_max = 0;
    dp_max = 0 }

let crit_step lat (body : Instr.t array) ud c pc =
  let instr = body.(pc) in
  match instr.Instr.op with
  | Instr.Label _ -> ()
  | op ->
    let uid, did = ud.(pc) in
    let t0 = ref c.cp_floor and d0 = ref c.dp_floor in
    List.iter
      (fun i ->
        if c.cp.(i) > !t0 then t0 := c.cp.(i);
        if c.dp.(i) > !d0 then d0 := c.dp.(i))
      uid;
    (match op with
     | Ld_shared _ | Ld_shared_i _ ->
       if c.cp_shared > !t0 then t0 := c.cp_shared;
       if c.dp_shared > !d0 then d0 := c.dp_shared
     | Bar ->
       if c.cp_max > !t0 then t0 := c.cp_max;
       if c.dp_max > !d0 then d0 := c.dp_max
     | _ -> ());
    let t = !t0 + lat_of lat op and d = !d0 + 1 in
    List.iter
      (fun i ->
        c.cp.(i) <- t;
        c.dp.(i) <- d)
      did;
    (match op with
     | St_shared _ | St_shared_i _ ->
       if t > c.cp_shared then c.cp_shared <- t;
       if d > c.dp_shared then c.dp_shared <- d
     | Bar ->
       c.cp_floor <- t;
       c.dp_floor <- d
     | _ -> ());
    if t > c.cp_max then c.cp_max <- t;
    if d > c.dp_max then c.dp_max <- d

let block_mix (body : Instr.t array) (blk : Cfg.block) =
  let mix = Array.make n_categories 0 in
  for pc = blk.Cfg.first to blk.Cfg.last do
    match Instr.categorize body.(pc).Instr.op with
    | Some cat ->
      let i = cat_index cat in
      mix.(i) <- mix.(i) + 1
    | None -> ()
  done;
  mix

let analyze ?(lat = default_latency) (p : Program.t) =
  match Cfg.build p with
  | Error e -> Error e
  | Ok cfg ->
    let body = p.Program.body in
    let ud = resolve_ud p in
    let nregs = n_regs p in
    let nb = Array.length cfg.Cfg.blocks in
    let run_sim pcs sim = List.iter (fun pc -> ignore (step lat body ud sim pc)) pcs in
    let run_crit pcs c = List.iter (crit_step lat body ud c) pcs in
    let block_pcs (blk : Cfg.block) =
      List.init (blk.Cfg.last - blk.Cfg.first + 1) (fun i -> blk.Cfg.first + i)
    in
    let blocks =
      Array.map
        (fun blk ->
          let pcs = block_pcs blk in
          let sim = fresh_sim nregs in
          run_sim pcs sim;
          let c = fresh_crit nregs in
          run_crit pcs c;
          { block = blk.Cfg.id;
            issued = sim.issued;
            cycles = sim.clock;
            stall_cycles = sim.stalls;
            crit_path = c.cp_max;
            dep_depth = c.dp_max;
            dual_issue = sim.dual;
            mix = block_mix body blk })
        cfg.Cfg.blocks
    in
    (* Natural loops from back edges (target id <= source id; the
       generators emit reducible, program-ordered CFGs, so the body is
       the id interval [header, latch]). One loop per header, widest
       latch wins. *)
    let headers = Hashtbl.create 4 in
    Array.iter
      (fun (blk : Cfg.block) ->
        List.iter
          (fun s ->
            if s <= blk.Cfg.id then
              let latch =
                match Hashtbl.find_opt headers s with
                | Some l -> max l blk.Cfg.id
                | None -> blk.Cfg.id
              in
              Hashtbl.replace headers s latch)
          blk.Cfg.succs)
      cfg.Cfg.blocks;
    let loops =
      Hashtbl.fold
        (fun header latch acc ->
          let ids = List.init (latch - header + 1) (fun i -> header + i) in
          let pcs = List.concat_map (fun b -> block_pcs cfg.Cfg.blocks.(b)) ids in
          (* Two back-to-back copies: the first warms the loop-carried
             state, the second is the steady-state measurement. *)
          let sim = fresh_sim nregs in
          run_sim pcs sim;
          let c1, s1, f1 = (sim.clock, sim.stalls, sim.fmas) in
          let issued1 = sim.issued in
          run_sim pcs sim;
          let c = fresh_crit nregs in
          run_crit pcs c;
          let m1 = c.cp_max in
          run_crit pcs c;
          { header;
            latch;
            body = ids;
            body_issued = issued1;
            steady_cycles = sim.clock - c1;
            steady_stalls = sim.stalls - s1;
            steady_fmas = sim.fmas - f1;
            carried_crit_path = c.cp_max - m1 }
          :: acc)
        headers []
    in
    let loops =
      List.sort (fun a b -> compare (a.header, a.latch) (b.header, b.latch)) loops
    in
    let press = Regalloc.pressure p in
    let hot =
      List.fold_left
        (fun acc l ->
          match acc with
          | Some best when best.body_issued >= l.body_issued -> acc
          | _ -> Some l)
        None loops
    in
    (* FMA issue rate under compute-side latencies only: global and
       shared load-to-use latencies are charged to their own pipeline
       terms (warp multithreading hides them there — Little's law for
       DRAM, the shared-pipe term for shared), so charging them to the
       per-warp arithmetic ceiling too would double-count. Loads are
       fire-and-forget here, and only stalls whose binding producer is
       the FP pipe enter the rate — the accumulator-chain hazard, which
       is exactly the dependent-issue ceiling Eq. 2 models (u independent
       accumulators against latency L give u/L, the old closed form). *)
    let compute_lat = { lat with global = lat.alu; shared = lat.alu } in
    let steady_rate pcs =
      let sim = fresh_sim nregs in
      List.iter (fun pc -> ignore (step compute_lat body ud sim pc)) pcs;
      let s1, f1 = (sim.fp_stalls, sim.fmas) in
      List.iter (fun pc -> ignore (step compute_lat body ud sim pc)) pcs;
      let stalls = sim.fp_stalls - s1 and fmas = sim.fmas - f1 in
      if fmas = 0 then 0.0
      else float_of_int fmas /. float_of_int (fmas + stalls)
    in
    let summary =
      match hot with
      | Some l ->
        let issued = float_of_int l.body_issued in
        let stalls = float_of_int l.steady_stalls in
        let depth =
          List.fold_left
            (fun acc b -> max acc blocks.(b).dep_depth)
            1 l.body
        in
        let dual =
          List.fold_left (fun acc b -> acc + blocks.(b).dual_issue) 0 l.body
        in
        { stalls_per_slot = (if issued > 0.0 then stalls /. issued else 0.0);
          fma_issue_rate =
            steady_rate
              (List.concat_map (fun b -> block_pcs cfg.Cfg.blocks.(b)) l.body);
          crit_path_cycles = max l.carried_crit_path 1;
          dual_issue_frac =
            (if issued > 0.0 then float_of_int dual /. issued else 0.0);
          ilp = (if depth > 0 then issued /. float_of_int depth else issued);
          peak_fregs = press.Regalloc.fregs;
          peak_iregs = press.Regalloc.iregs;
          peak_pregs = press.Regalloc.pregs;
          hot_loop = Some l.header }
      | None ->
        (* Loop-free: one straight-line pass over the blocks in program
           order approximates the single execution. *)
        let pcs = List.init (Array.length body) Fun.id in
        let sim = fresh_sim nregs in
        run_sim pcs sim;
        let c = fresh_crit nregs in
        run_crit pcs c;
        let issued = float_of_int sim.issued in
        let rate =
          let s = fresh_sim nregs in
          List.iter (fun pc -> ignore (step compute_lat body ud s pc)) pcs;
          if s.fmas = 0 then 0.0
          else float_of_int s.fmas /. float_of_int (s.fmas + s.fp_stalls)
        in
        { stalls_per_slot =
            (if issued > 0.0 then float_of_int sim.stalls /. issued else 0.0);
          fma_issue_rate = rate;
          crit_path_cycles = c.cp_max;
          dual_issue_frac =
            (if issued > 0.0 then float_of_int sim.dual /. issued else 0.0);
          ilp =
            (if c.dp_max > 0 then issued /. float_of_int c.dp_max else issued);
          peak_fregs = press.Regalloc.fregs;
          peak_iregs = press.Regalloc.iregs;
          peak_pregs = press.Regalloc.pregs;
          hot_loop = None }
    in
    ignore nb;
    Ok { blocks; loops; summary }

(* Per-instruction stall cycles from the per-block issue simulation (the
   first-execution schedule, inputs ready at cycle 0 — the same pass
   [analyze] reports in [block_sched.stall_cycles]). Indexed by original
   pc; labels are 0. Consumed by [Encode] as nva-style control info. *)
let instr_stalls ?(lat = default_latency) (p : Program.t) =
  match Cfg.build p with
  | Error e -> Error e
  | Ok cfg ->
    let body = p.Program.body in
    let ud = resolve_ud p in
    let nregs = n_regs p in
    let out = Array.make (max 1 (Array.length body)) 0 in
    Array.iter
      (fun (blk : Cfg.block) ->
        let sim = fresh_sim nregs in
        for pc = blk.Cfg.first to blk.Cfg.last do
          out.(pc) <- step lat body ud sim pc
        done)
      cfg.Cfg.blocks;
    Ok out

(* ------------------------------------------------------------------ *)
(* Lints                                                              *)
(* ------------------------------------------------------------------ *)

type lint =
  | Dead_store of { pc : int; reg : D.reg }
  | Unread_register of D.reg
  | Unreachable_code of { pc : int }
  | Redundant_barrier of { pc : int }

let lint_message = function
  | Dead_store { pc; reg } ->
    ( Some pc,
      Printf.sprintf
        "%s is written here but never read before being overwritten (dead \
         store)"
        (D.pp_reg reg) )
  | Unread_register reg ->
    (None, Printf.sprintf "%s is written but never read" (D.pp_reg reg))
  | Unreachable_code { pc } ->
    (Some pc, "unreachable code: no path from entry reaches this block")
  | Redundant_barrier { pc } ->
    ( Some pc,
      "redundant bar.sync: no shared-memory access since the previous \
       barrier in this block" )

let lint (p : Program.t) =
  match Cfg.build p with
  | Error _ -> []
  | Ok cfg ->
    let body = p.Program.body in
    let ud = resolve_ud p in
    let nregs = n_regs p in
    let nb = Array.length cfg.Cfg.blocks in
    let reach = Cfg.reachable cfg in
    let lints = ref [] in
    let add l = lints := l :: !lints in
    (* Unreachable blocks. *)
    for b = 0 to nb - 1 do
      if not reach.(b) then
        add (Unreachable_code { pc = cfg.Cfg.blocks.(b).Cfg.first })
    done;
    (* Backward liveness over reachable blocks. *)
    let live_in = Array.init nb (fun _ -> Array.make (max 1 nregs) false) in
    let live_out_of b =
      let out = Array.make (max 1 nregs) false in
      List.iter
        (fun s ->
          let li = live_in.(s) in
          for r = 0 to nregs - 1 do
            if li.(r) then out.(r) <- true
          done)
        cfg.Cfg.blocks.(b).Cfg.succs;
      out
    in
    let transfer b out =
      let live = Array.copy out in
      let blk = cfg.Cfg.blocks.(b) in
      for pc = blk.Cfg.last downto blk.Cfg.first do
        let uid, did = ud.(pc) in
        List.iter (fun r -> live.(r) <- false) did;
        List.iter (fun r -> live.(r) <- true) uid
      done;
      live
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = nb - 1 downto 0 do
        if reach.(b) then begin
          let li = transfer b (live_out_of b) in
          if li <> live_in.(b) then begin
            live_in.(b) <- li;
            changed := true
          end
        end
      done
    done;
    (* Dead stores: an unguarded definition not live immediately after
       the instruction. Guarded definitions merge with the old value, so
       the generators' mov-then-guarded-load staging idiom stays clean. *)
    for b = 0 to nb - 1 do
      if reach.(b) then begin
        let blk = cfg.Cfg.blocks.(b) in
        let live = live_out_of b in
        for pc = blk.Cfg.last downto blk.Cfg.first do
          let uid, did = ud.(pc) in
          if body.(pc).Instr.guard = None then
            List.iter
              (fun r ->
                if not live.(r) then
                  add
                    (Dead_store
                       { pc;
                         reg =
                           (if r < p.n_iregs then D.R_i r
                            else if r < p.n_iregs + p.n_fregs then
                              D.R_f (r - p.n_iregs)
                            else D.R_p (r - p.n_iregs - p.n_fregs)) }))
              did;
          List.iter (fun r -> live.(r) <- false) did;
          List.iter (fun r -> live.(r) <- true) uid
        done
      end
    done;
    (* Registers written but never read, over reachable code. *)
    let used = Array.make (max 1 nregs) false in
    let defined = Array.make (max 1 nregs) false in
    for b = 0 to nb - 1 do
      if reach.(b) then begin
        let blk = cfg.Cfg.blocks.(b) in
        for pc = blk.Cfg.first to blk.Cfg.last do
          let uid, did = ud.(pc) in
          List.iter (fun r -> used.(r) <- true) uid;
          List.iter (fun r -> defined.(r) <- true) did
        done
      end
    done;
    for r = nregs - 1 downto 0 do
      if defined.(r) && not used.(r) then
        add
          (Unread_register
             (if r < p.n_iregs then D.R_i r
              else if r < p.n_iregs + p.n_fregs then D.R_f (r - p.n_iregs)
              else D.R_p (r - p.n_iregs - p.n_fregs)))
    done;
    (* Redundant consecutive barriers within one block. *)
    for b = 0 to nb - 1 do
      if reach.(b) then begin
        let blk = cfg.Cfg.blocks.(b) in
        let seen_bar = ref false in
        let shared_since = ref true in
        for pc = blk.Cfg.first to blk.Cfg.last do
          match body.(pc).Instr.op with
          | Instr.Bar ->
            if !seen_bar && not !shared_since then
              add (Redundant_barrier { pc });
            seen_bar := true;
            shared_since := false
          | Ld_shared _ | Ld_shared_i _ | St_shared _ | St_shared_i _ ->
            shared_since := true
          | _ -> ()
        done
      end
    done;
    List.rev !lints

(* ------------------------------------------------------------------ *)
(* Static trip counts                                                 *)
(* ------------------------------------------------------------------ *)

let block_trips ?(max_steps = 4_000_000) ~grid ~block ~iargs (p : Program.t) =
  match Cfg.build p with
  | Error e -> Error e
  | Ok cfg ->
    let gx, gy, gz = grid and bx, by, bz = block in
    let body = p.Program.body in
    let n = Array.length body in
    let labels = Program.find_labels p in
    let trips = Array.make (Array.length cfg.Cfg.blocks) 0 in
    let params =
      Array.map (fun name -> List.assoc_opt name iargs) p.int_params
    in
    let steps = ref 0 in
    let error = ref None in
    let fail pc fmt =
      Printf.ksprintf
        (fun m ->
          if !error = None then error := Some (Printf.sprintf "pc %d: %s" pc m))
        fmt
    in
    (try
       for cz = 0 to gz - 1 do
         for cy = 0 to gy - 1 do
           for cx = 0 to gx - 1 do
             (* Uniform scalar state for one CTA: Some v = every thread
                holds v; None = unknown or thread-varying. *)
             let ints = Array.make (max 1 p.n_iregs) (Some 0) in
             let preds = Array.make (max 1 p.n_pregs) (Some false) in
             let ival = function
               | Ireg r -> ints.(r)
               | Iimm v -> Some v
               | Iparam s -> params.(s)
               | Ispecial sp -> (
                   match sp with
                   | Tid_x | Tid_y | Tid_z -> None
                   | Ctaid_x -> Some cx
                   | Ctaid_y -> Some cy
                   | Ctaid_z -> Some cz
                   | Ntid_x -> Some bx
                   | Ntid_y -> Some by
                   | Ntid_z -> Some bz
                   | Nctaid_x -> Some gx
                   | Nctaid_y -> Some gy
                   | Nctaid_z -> Some gz)
             in
             let pc = ref 0 in
             let running = ref true in
             while !running do
               if !pc >= n then begin
                 fail (n - 1) "control fell off the end of the body";
                 raise Exit
               end;
               incr steps;
               if !steps > max_steps then begin
                 fail !pc "abstract step budget (%d) exhausted" max_steps;
                 raise Exit
               end;
               let blk = cfg.Cfg.block_of.(!pc) in
               if cfg.Cfg.blocks.(blk).Cfg.first = !pc then
                 trips.(blk) <- trips.(blk) + 1;
               let instr = body.(!pc) in
               let guard_val =
                 match instr.Instr.guard with
                 | None -> Some true
                 | Some (pr, sense) -> (
                     match preds.(pr) with
                     | Some v -> Some (v = sense)
                     | None -> None)
               in
               let set_i r v =
                 match guard_val with
                 | Some true -> ints.(r) <- v
                 | Some false -> ()
                 | None -> ints.(r) <- None
               in
               let set_p r v =
                 match guard_val with
                 | Some true -> preds.(r) <- v
                 | Some false -> ()
                 | None -> preds.(r) <- None
               in
               let lift2 f a b =
                 match (ival a, ival b) with
                 | Some x, Some y -> f x y
                 | _ -> None
               in
               let arith f a b = lift2 (fun x y -> Some (f x y)) a b in
               (match instr.Instr.op with
                | Instr.Bra l -> (
                    match guard_val with
                    | Some true -> pc := Hashtbl.find labels l
                    | Some false -> incr pc
                    | None ->
                      fail !pc
                        "branch guard is not a statically known uniform value";
                      raise Exit)
                | Ret -> (
                    match guard_val with
                    | Some true -> running := false
                    | Some false -> incr pc
                    | None ->
                      fail !pc
                        "ret guard is not a statically known uniform value";
                      raise Exit)
                | Label _ | Bar -> incr pc
                | Mov (d, a) -> set_i d (ival a); incr pc
                | Iadd (d, a, b) -> set_i d (arith ( + ) a b); incr pc
                | Isub (d, a, b) -> set_i d (arith ( - ) a b); incr pc
                | Imul (d, a, b) -> set_i d (arith ( * ) a b); incr pc
                | Imad (d, a, b, c) ->
                  let v =
                    match (ival a, ival b, ival c) with
                    | Some x, Some y, Some z -> Some ((x * y) + z)
                    | _ -> None
                  in
                  set_i d v;
                  incr pc
                | Idiv (d, a, b) ->
                  set_i d
                    (lift2 (fun x y -> if y = 0 then None else Some (x / y)) a b);
                  incr pc
                | Irem (d, a, b) ->
                  set_i d
                    (lift2
                       (fun x y -> if y = 0 then None else Some (x mod y))
                       a b);
                  incr pc
                | Imin (d, a, b) -> set_i d (arith min a b); incr pc
                | Imax (d, a, b) -> set_i d (arith max a b); incr pc
                | Ishl (d, a, b) ->
                  set_i d
                    (lift2
                       (fun x y ->
                         if y < 0 || y > 62 then None else Some (x lsl y))
                       a b);
                  incr pc
                | Ishr (d, a, b) ->
                  set_i d
                    (lift2
                       (fun x y ->
                         if y < 0 || y > 62 then None else Some (x asr y))
                       a b);
                  incr pc
                | Iand (d, a, b) -> set_i d (arith ( land ) a b); incr pc
                | Ior (d, a, b) -> set_i d (arith ( lor ) a b); incr pc
                | Setp (c, pr, a, b) ->
                  set_p pr (lift2 (fun x y -> Some (eval_cmp c x y)) a b);
                  incr pc
                | And_p (d, a, b) ->
                  set_p d
                    (match (preds.(a), preds.(b)) with
                     | Some false, _ | _, Some false -> Some false
                     | Some x, Some y -> Some (x && y)
                     | _ -> None);
                  incr pc
                | Or_p (d, a, b) ->
                  set_p d
                    (match (preds.(a), preds.(b)) with
                     | Some true, _ | _, Some true -> Some true
                     | Some x, Some y -> Some (x || y)
                     | _ -> None);
                  incr pc
                | Not_p (d, a) ->
                  set_p d (Option.map not preds.(a));
                  incr pc
                | Ld_global_i (d, _, _) | Ld_shared_i (d, _) ->
                  set_i d None;
                  incr pc
                | Movf _ | Fadd _ | Fsub _ | Fmul _ | Ffma _ | Fmax _ | Fmin _
                | Ld_global _ | Ld_shared _ | St_global _ | St_shared _
                | St_shared_i _ | Atom_global_add _ ->
                  incr pc)
             done
           done
         done
       done
     with Exit -> ());
    (match !error with None -> Ok trips | Some e -> Error e)
