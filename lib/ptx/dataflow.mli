(** Forward dataflow analyses over a {!Cfg.t}.

    Two analyses back the static verifier:

    - {b definite assignment}: a must-analysis (meet = intersection over
      predecessors) computing, per program point, the registers written
      on {e every} path from entry; reads outside that set are
      def-before-use defects. Guarded writes count as definitions — the
      generators' idiom is [mov dst, 0] followed by a guarded load into
      the same register, and a masked write still leaves the register
      with its previous (deterministic) value in our semantics.

    - {b symbolic uniformity}: an abstract interpretation of the integer
      and predicate register files in a domain of symbolic expressions
      over the thread-id special registers, opaque uniform unknowns
      (kernel parameters, ctaid, widened loop carries) and opaque varying
      unknowns (memory loads). An expression containing no [Tid] leaf
      and no varying unknown is {e uniform}: all threads of a block
      compute the same value — the lattice behind barrier-divergence
      detection. An expression whose leaves are all [Tid]s and constants
      is {e closed}: it can be evaluated per thread, which is what the
      shared-memory race, bounds and bank-conflict analyses consume. *)

(** {1 Register references} *)

type reg = R_i of int | R_f of int | R_p of int

val pp_reg : reg -> string

(** {1 Definite assignment} *)

type undefined_use = { pc : int; reg : reg }

val def_before_use : Program.t -> Cfg.t -> undefined_use list
(** Reads of registers not written on every path from entry, in program
    order (one report per [pc, reg] pair). *)

(** {1 Symbolic uniformity / affine analysis} *)

module Sym : sig
  type binop =
    | Add | Sub | Mul | Div | Rem | Min | Max | Shl | Shr | And | Or

  (** Why a value is opaque; doubles as a stable identity so the fixpoint
      terminates and structurally equal unknowns stay equal. *)
  type origin =
    | At_pc of int            (** produced by the instruction at [pc] *)
    | Param of int            (** scalar kernel parameter slot *)
    | Special of Types.special
    | Widen of int * int      (** join at (block, register) *)

  type expr =
    | Const of int
    | Tid of int              (** thread-id axis: 0 = x, 1 = y, 2 = z *)
    | Opaque of origin * bool (** [bool]: uniform across the block's threads *)
    | Bin of binop * expr * expr

  type pexpr =
    | Pconst of bool
    | Pcmp of Types.cmp * expr * expr
    | Pand of pexpr * pexpr
    | Por of pexpr * pexpr
    | Pnot of pexpr
    | Popaque of origin * bool

  val uniform : expr -> bool
  val puniform : pexpr -> bool

  val closed : expr -> bool
  (** No opaque leaves: evaluable per thread. *)

  val eval : tid:int * int * int -> expr -> int option
  (** Per-thread evaluation; [None] on an opaque leaf, division by zero
      or an out-of-range shift. *)

  val peval : tid:int * int * int -> pexpr -> bool option
end

type env = {
  ints : Sym.expr array;
  preds : Sym.pexpr array;
}

type solution

val symbolic :
  ?int_params:int option array ->
  block:int * int * int ->
  Program.t ->
  Cfg.t ->
  solution
(** Run the abstract interpretation to a fixpoint. [int_params] supplies
    concrete values for scalar parameter slots ([None] entries stay
    opaque-uniform); [block] is the launch block shape, used to resolve
    [Ntid_*] and bound thread enumeration. Registers start at [Const 0] /
    [Pconst false], matching the interpreter's zeroed register files. *)

val entry_env : solution -> int -> env
(** Abstract environment at a block's entry. *)

val walk_block :
  solution -> int -> f:(pc:int -> env -> unit) -> unit
(** Replay one block's transfer function, calling [f] with the
    environment {e before} each instruction. *)

val operand_expr : solution -> env -> Types.ioperand -> Sym.expr
(** Abstract value of an integer operand in [env]: register contents,
    constants for immediates and resolved parameters / block-shape
    specials, [Tid] for thread-id specials, opaque-uniform unknowns for
    grid-shape specials and unresolved parameters. *)

val guard_pexpr : env -> Instr.t -> Sym.pexpr option
(** The symbolic predicate under which the instruction executes ([None]
    when unguarded): the guard register's abstract value, negated for
    [(p, false)] guards. *)
