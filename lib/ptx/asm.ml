open Types

exception Bad of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Bad (line, s))) fmt

let strip_comment line =
  match String.index_opt line '/' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '/' -> String.sub line 0 i
  | _ -> line

let specials =
  [ ("%tid.x", Tid_x); ("%tid.y", Tid_y); ("%tid.z", Tid_z);
    ("%ctaid.x", Ctaid_x); ("%ctaid.y", Ctaid_y); ("%ctaid.z", Ctaid_z);
    ("%ntid.x", Ntid_x); ("%ntid.y", Ntid_y); ("%ntid.z", Ntid_z);
    ("%nctaid.x", Nctaid_x); ("%nctaid.y", Nctaid_y); ("%nctaid.z", Nctaid_z) ]

let parse_ireg ln tok =
  match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
  | Some r when String.length tok > 2 && tok.[0] = '%' && tok.[1] = 'r' -> r
  | _ -> fail ln "expected integer register, got %S" tok

let parse_freg ln tok =
  match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
  | Some r when String.length tok > 2 && tok.[0] = '%' && tok.[1] = 'f' -> r
  | _ -> fail ln "expected float register, got %S" tok

let parse_preg ln tok =
  match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
  | Some r when String.length tok > 2 && tok.[0] = '%' && tok.[1] = 'p' -> r
  | _ -> fail ln "expected predicate register, got %S" tok

let parse_io ln tok =
  if tok = "" then fail ln "empty integer operand"
  else if tok.[0] = '%' then begin
    match List.assoc_opt tok specials with
    | Some s -> Ispecial s
    | None ->
      if String.length tok > 6 && String.sub tok 0 6 = "%param" then
        match int_of_string_opt (String.sub tok 6 (String.length tok - 6)) with
        | Some p -> Iparam p
        | None -> fail ln "bad parameter operand %S" tok
      else Ireg (parse_ireg ln tok)
  end
  else
    match int_of_string_opt tok with
    | Some v -> Iimm v
    | None -> fail ln "bad integer operand %S" tok

let parse_fo ln tok =
  if tok = "" then fail ln "empty float operand"
  else if tok.[0] = '%' then Freg (parse_freg ln tok)
  else
    match float_of_string_opt tok with
    | Some v -> Fimm v
    | None -> fail ln "bad float operand %S" tok

(* "[%param_buf3 + %r7]" -> (3, operand); "[%r7]" / "[12]" -> shared
   address operand. *)
let parse_global_addr ln tok =
  let inner = String.sub tok 1 (String.length tok - 2) in
  match String.index_opt inner '+' with
  | None -> fail ln "global address %S missing base" tok
  | Some plus ->
    let base = String.trim (String.sub inner 0 plus) in
    let off = String.trim (String.sub inner (plus + 1) (String.length inner - plus - 1)) in
    let prefix = "%param_buf" in
    let pl = String.length prefix in
    if String.length base <= pl || String.sub base 0 pl <> prefix then
      fail ln "bad buffer base %S" base;
    (match int_of_string_opt (String.sub base pl (String.length base - pl)) with
     | Some slot -> (slot, parse_io ln off)
     | None -> fail ln "bad buffer slot in %S" base)

let parse_shared_addr ln tok =
  let inner = String.trim (String.sub tok 1 (String.length tok - 2)) in
  parse_io ln inner

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")

let cmp_of_name ln = function
  | "eq" -> Eq | "ne" -> Ne | "lt" -> Lt | "le" -> Le | "gt" -> Gt | "ge" -> Ge
  | other -> fail ln "unknown comparison %S" other

let parse_instr ln text =
  let text = String.trim text in
  (* guard *)
  let guard, text =
    if text <> "" && text.[0] = '@' then begin
      let sp =
        match String.index_opt text ' ' with
        | Some i -> i
        | None -> fail ln "guard without instruction"
      in
      let g = String.sub text 1 (sp - 1) in
      let sense, reg = if g.[0] = '!' then (false, String.sub g 1 (String.length g - 1)) else (true, g) in
      ( Some (parse_preg ln reg, sense),
        String.trim (String.sub text (sp + 1) (String.length text - sp - 1)) )
    end
    else (None, text)
  in
  let opcode, rest =
    match String.index_opt text ' ' with
    | Some i ->
      (String.sub text 0 i, String.trim (String.sub text (i + 1) (String.length text - i - 1)))
    | None -> (text, "")
  in
  let parts = String.split_on_char '.' opcode in
  let ops = split_operands rest in
  let io i = parse_io ln (List.nth ops i) in
  let fo i = parse_fo ln (List.nth ops i) in
  let ir i = parse_ireg ln (List.nth ops i) in
  let fr i = parse_freg ln (List.nth ops i) in
  let pr i = parse_preg ln (List.nth ops i) in
  let arity n =
    if List.length ops <> n then
      fail ln "%s expects %d operands, got %d" opcode n (List.length ops)
  in
  let i3 mk = arity 3; mk (ir 0) (io 1) (io 2) in
  let f3 mk = arity 3; mk (fr 0) (fo 1) (fo 2) in
  let op =
    match parts with
    | [ "mov"; "s32" ] -> arity 2; Instr.Mov (ir 0, io 1)
    | "mov" :: _ -> arity 2; Movf (fr 0, fo 1)
    | [ "add"; "s32" ] -> i3 (fun d a b -> Instr.Iadd (d, a, b))
    | [ "sub"; "s32" ] -> i3 (fun d a b -> Instr.Isub (d, a, b))
    | [ "mul"; "lo"; "s32" ] -> i3 (fun d a b -> Instr.Imul (d, a, b))
    | [ "mad"; "lo"; "s32" ] -> arity 4; Imad (ir 0, io 1, io 2, io 3)
    | [ "div"; "s32" ] -> i3 (fun d a b -> Instr.Idiv (d, a, b))
    | [ "rem"; "s32" ] -> i3 (fun d a b -> Instr.Irem (d, a, b))
    | [ "min"; "s32" ] -> i3 (fun d a b -> Instr.Imin (d, a, b))
    | [ "max"; "s32" ] -> i3 (fun d a b -> Instr.Imax (d, a, b))
    | [ "shl"; "b32"; "s32" ] -> i3 (fun d a b -> Instr.Ishl (d, a, b))
    | [ "shr"; "b32"; "s32" ] -> i3 (fun d a b -> Instr.Ishr (d, a, b))
    | [ "and"; "b32"; "s32" ] -> i3 (fun d a b -> Instr.Iand (d, a, b))
    | [ "or"; "b32"; "s32" ] -> i3 (fun d a b -> Instr.Ior (d, a, b))
    | [ "setp"; c; "s32" ] -> arity 3; Setp (cmp_of_name ln c, pr 0, io 1, io 2)
    | [ "and"; "pred" ] -> arity 3; And_p (pr 0, pr 1, pr 2)
    | [ "or"; "pred" ] -> arity 3; Or_p (pr 0, pr 1, pr 2)
    | [ "not"; "pred" ] -> arity 2; Not_p (pr 0, pr 1)
    | "add" :: _ -> f3 (fun d a b -> Instr.Fadd (d, a, b))
    | "sub" :: _ -> f3 (fun d a b -> Instr.Fsub (d, a, b))
    | "mul" :: _ -> f3 (fun d a b -> Instr.Fmul (d, a, b))
    | "max" :: _ -> f3 (fun d a b -> Instr.Fmax (d, a, b))
    | "min" :: _ -> f3 (fun d a b -> Instr.Fmin (d, a, b))
    | "fma" :: "rn" :: _ -> arity 4; Ffma (fr 0, fo 1, fo 2, fo 3)
    | [ "ld"; "global"; "s32" ] ->
      arity 2;
      let slot, addr = parse_global_addr ln (List.nth ops 1) in
      Ld_global_i (ir 0, slot, addr)
    | "ld" :: "global" :: _ ->
      arity 2;
      let slot, addr = parse_global_addr ln (List.nth ops 1) in
      Ld_global (fr 0, slot, addr)
    | [ "ld"; "shared"; "s32" ] ->
      arity 2; Ld_shared_i (ir 0, parse_shared_addr ln (List.nth ops 1))
    | "ld" :: "shared" :: _ ->
      arity 2; Ld_shared (fr 0, parse_shared_addr ln (List.nth ops 1))
    | [ "st"; "global"; _ ] ->
      arity 2;
      let slot, addr = parse_global_addr ln (List.nth ops 0) in
      St_global (slot, addr, fo 1)
    | [ "st"; "shared"; "s32" ] ->
      arity 2; St_shared_i (parse_shared_addr ln (List.nth ops 0), io 1)
    | "st" :: "shared" :: _ ->
      arity 2; St_shared (parse_shared_addr ln (List.nth ops 0), fo 1)
    | "red" :: "global" :: "add" :: _ ->
      arity 2;
      let slot, addr = parse_global_addr ln (List.nth ops 0) in
      Atom_global_add (slot, addr, fo 1)
    | [ "bra" ] -> arity 1; Bra (List.nth ops 0)
    | "bar" :: _ -> Bar
    | [ "ret" ] -> Ret
    | _ -> fail ln "unknown opcode %S" opcode
  in
  { Instr.op; guard }

let dtype_of_name ln = function
  | "f16" -> F16
  | "f32" -> F32
  | "f64" -> F64
  | other -> fail ln "unknown dtype %S" other

let parse text =
  try
    let raw_lines = String.split_on_char '\n' text in
    (* Header info lives in comments, so capture before stripping. *)
    let name = ref "" and dtype = ref F32 in
    let bufs = ref [] and ints = ref [] in
    let nf = ref 0 and ni = ref 0 and np = ref 0 in
    let sw = ref 0 and siw = ref 0 in
    let body = ref [] in
    List.iteri
      (fun idx raw ->
        let ln = idx + 1 in
        let trimmed = String.trim raw in
        if trimmed = "" || trimmed = ")" || trimmed = "}" then ()
        else if String.length trimmed >= 15 && String.sub trimmed 0 15 = ".visible .entry" then
          Scanf.sscanf trimmed ".visible .entry %s ( // dtype=%s" (fun n d ->
              name := n;
              dtype := dtype_of_name ln d)
        else if String.length trimmed >= 6 && String.sub trimmed 0 6 = ".param" then begin
          if String.length trimmed > 11 && String.sub trimmed 7 4 = ".u64" then
            Scanf.sscanf trimmed ".param .u64 %[^, ]" (fun n -> bufs := n :: !bufs)
          else Scanf.sscanf trimmed ".param .s32 %[^ ,]" (fun n -> ints := n :: !ints)
        end
        else if trimmed.[0] = '{' then
          Scanf.sscanf trimmed
            "{ // %d fregs, %d iregs, %d pregs, %d shared words, %d shared int words"
            (fun a b c d e -> nf := a; ni := b; np := c; sw := d; siw := e)
        else begin
          let stripped = String.trim (strip_comment trimmed) in
          if stripped = "" then ()
          else if String.length stripped > 1 && stripped.[String.length stripped - 1] = ':'
          then
            body := Instr.mk (Instr.Label (String.sub stripped 0 (String.length stripped - 1)))
                    :: !body
          else body := parse_instr ln stripped :: !body
        end)
      raw_lines;
    let program =
      { Program.name = !name;
        dtype = !dtype;
        buf_params = Array.of_list (List.rev !bufs);
        int_params = Array.of_list (List.rev !ints);
        shared_words = !sw;
        shared_int_words = !siw;
        body = Array.of_list (List.rev !body);
        n_fregs = !nf;
        n_iregs = !ni;
        n_pregs = !np }
    in
    (match Program.validate program with
     | Ok () -> Ok program
     | Error e -> Error ("validation: " ^ e))
  with
  | Bad (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)
  | Scanf.Scan_failure msg -> Error ("scan failure: " ^ msg)
  | Failure msg -> Error msg

let parse_exn text =
  match parse text with Ok p -> p | Error e -> failwith ("Ptx.Asm.parse: " ^ e)
