type block = {
  id : int;
  first : int;
  last : int;
  succs : int list;
  mutable preds : int list;
  to_exit : bool;
}

type t = {
  blocks : block array;
  block_of : int array;
  may_fall_off_end : bool;
}

let build (p : Program.t) =
  let body = p.Program.body in
  let n = Array.length body in
  if n = 0 then Error "empty body"
  else begin
    let err = ref None in
    let labels = Hashtbl.create 16 in
    Array.iteri
      (fun i instr ->
        match instr.Instr.op with
        | Instr.Label name ->
          if Hashtbl.mem labels name then
            (if !err = None then err := Some ("duplicate label " ^ name))
          else Hashtbl.replace labels name i
        | _ -> ())
      body;
    Array.iter
      (fun instr ->
        match instr.Instr.op with
        | Instr.Bra target when not (Hashtbl.mem labels target) ->
          if !err = None then err := Some ("undefined label " ^ target)
        | _ -> ())
      body;
    match !err with
    | Some msg -> Error msg
    | None ->
      (* Leaders: entry, labels, and whatever follows a branch or return. *)
      let leader = Array.make n false in
      leader.(0) <- true;
      Array.iteri
        (fun i instr ->
          match instr.Instr.op with
          | Instr.Label _ -> leader.(i) <- true
          | Instr.Bra _ | Instr.Ret -> if i + 1 < n then leader.(i + 1) <- true
          | _ -> ())
        body;
      let block_of = Array.make n 0 in
      let bounds = ref [] in
      let start = ref 0 in
      for i = 1 to n - 1 do
        if leader.(i) then begin
          bounds := (!start, i - 1) :: !bounds;
          start := i
        end
      done;
      bounds := (!start, n - 1) :: !bounds;
      let bounds = Array.of_list (List.rev !bounds) in
      Array.iteri
        (fun id (first, last) ->
          for i = first to last do
            block_of.(i) <- id
          done)
        bounds;
      let n_blocks = Array.length bounds in
      let may_fall_off = ref false in
      let term_of id =
        (* successors within the body, plus whether this block has an edge
           to the virtual exit node (a Ret, guarded or not, or a possible
           fall past the last instruction). *)
        let _, last = bounds.(id) in
        let next () =
          if last + 1 < n then ([ block_of.(last + 1) ], false)
          else begin
            may_fall_off := true;
            ([], true)
          end
        in
        match body.(last).Instr.op with
        | Instr.Bra target ->
          let tgt = block_of.(Hashtbl.find labels target) in
          (match body.(last).Instr.guard with
           | None -> ([ tgt ], false)
           | Some _ ->
             let fall, exits = next () in
             (tgt :: fall, exits))
        | Instr.Ret ->
          (match body.(last).Instr.guard with
           | None -> ([], true)
           | Some _ ->
             let fall, _ = next () in
             (fall, true))
        | _ -> next ()
      in
      let blocks =
        Array.init n_blocks (fun id ->
            let first, last = bounds.(id) in
            let succs, to_exit = term_of id in
            { id; first; last; succs; preds = []; to_exit })
      in
      Array.iter
        (fun b ->
          List.iter
            (fun s ->
              if not (List.mem b.id blocks.(s).preds) then
                blocks.(s).preds <- b.id :: blocks.(s).preds)
            b.succs)
        blocks;
      Ok { blocks; block_of; may_fall_off_end = !may_fall_off }
  end

let reachable t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter go t.blocks.(id).succs
    end
  in
  go 0;
  seen

(* Iterative post-dominator sets over a virtual exit node. Block counts
   are small (branches are rare in generated kernels), so bitset
   iteration is plenty fast. [pdom.(b).(j)] = "j post-dominates b". *)
let postdominators t =
  let n = Array.length t.blocks in
  let pdom = Array.init n (fun _ -> Array.make n true) in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = n - 1 downto 0 do
      let b = t.blocks.(id) in
      (* Meet over successors; an exit edge contributes the empty set
         (pdom of the virtual exit), killing everything but [id]. *)
      let meet = Array.make n (not b.to_exit && b.succs <> []) in
      if not b.to_exit then
        List.iter
          (fun s -> Array.iteri (fun j v -> meet.(j) <- v && pdom.(s).(j)) meet)
          b.succs;
      meet.(id) <- true;
      if meet <> pdom.(id) then begin
        pdom.(id) <- meet;
        changed := true
      end
    done
  done;
  (* Immediate post-dominator: the strict post-dominator that none of the
     other strict post-dominators is post-dominated by. *)
  Array.init n (fun id ->
      let strict =
        List.filter (fun j -> j <> id && pdom.(id).(j)) (List.init n Fun.id)
      in
      let immediate =
        List.filter
          (fun j -> List.for_all (fun k -> k = j || not (pdom.(k).(j))) strict)
          strict
      in
      match immediate with [ j ] -> j | _ -> -1)

let divergence_region t ~ipdom b =
  let stop = ipdom.(b) in
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec go id =
    if id <> stop && not seen.(id) then begin
      seen.(id) <- true;
      List.iter go t.blocks.(id).succs
    end
  in
  List.iter go t.blocks.(b).succs;
  List.filter (fun id -> seen.(id)) (List.init n Fun.id)
