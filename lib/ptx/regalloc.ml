open Types

type pressure = { fregs : int; iregs : int; pregs : int }

(* def/use sets of one instruction, per register class. Guarded defs are
   also uses (the old value survives a false guard). *)
let def_use (instr : Instr.t) =
  let df = ref [] and uf = ref [] in
  let di = ref [] and ui = ref [] in
  let dp = ref [] and up = ref [] in
  let use_io = function Ireg r -> ui := r :: !ui | Iimm _ | Iparam _ | Ispecial _ -> () in
  let use_fo = function Freg r -> uf := r :: !uf | Fimm _ -> () in
  (match instr.op with
   | Instr.Mov (d, a) -> di := [ d ]; use_io a
   | Iadd (d, a, b) | Isub (d, a, b) | Imul (d, a, b) | Idiv (d, a, b)
   | Irem (d, a, b) | Imin (d, a, b) | Imax (d, a, b) | Ishl (d, a, b)
   | Ishr (d, a, b) | Iand (d, a, b) | Ior (d, a, b) ->
     di := [ d ]; use_io a; use_io b
   | Imad (d, a, b, c) -> di := [ d ]; use_io a; use_io b; use_io c
   | Setp (_, p, a, b) -> dp := [ p ]; use_io a; use_io b
   | And_p (d, a, b) | Or_p (d, a, b) -> dp := [ d ]; up := [ a; b ]
   | Not_p (d, a) -> dp := [ d ]; up := [ a ]
   | Movf (d, a) -> df := [ d ]; use_fo a
   | Fadd (d, a, b) | Fsub (d, a, b) | Fmul (d, a, b)
   | Fmax (d, a, b) | Fmin (d, a, b) ->
     df := [ d ]; use_fo a; use_fo b
   | Ffma (d, a, b, c) -> df := [ d ]; use_fo a; use_fo b; use_fo c
   | Ld_global (d, _, addr) -> df := [ d ]; use_io addr
   | Ld_global_i (d, _, addr) -> di := [ d ]; use_io addr
   | Ld_shared (d, addr) -> df := [ d ]; use_io addr
   | Ld_shared_i (d, addr) -> di := [ d ]; use_io addr
   | St_global (_, addr, v) -> use_io addr; use_fo v
   | St_shared (addr, v) -> use_io addr; use_fo v
   | St_shared_i (addr, v) -> use_io addr; use_io v
   | Atom_global_add (_, addr, v) -> use_io addr; use_fo v
   | Label _ | Bra _ | Bar | Ret -> ());
  (match instr.guard with
   | Some (p, _) ->
     up := p :: !up;
     (* guarded defs keep the old value live *)
     uf := !df @ !uf;
     ui := !di @ !ui;
     up := !dp @ !up
   | None -> ());
  ((!df, !uf), (!di, !ui), (!dp, !up))

let successors (p : Program.t) labels pc =
  let n = Array.length p.body in
  match p.body.(pc).Instr.op with
  | Instr.Ret -> []
  | Bra target ->
    let t = Hashtbl.find labels target in
    (match p.body.(pc).guard with
     | None -> [ t ]
     | Some _ -> if pc + 1 < n then [ t; pc + 1 ] else [ t ])
  | _ -> if pc + 1 < n then [ pc + 1 ] else []

(* Backward liveness fixpoint. live.(class).(pc) is a Bytes bitset over
   the class's registers. *)
type liveness = {
  live_f : Bytes.t array;  (* live-in sets *)
  live_i : Bytes.t array;
  live_p : Bytes.t array;
}

let bit_get b r = Char.code (Bytes.get b (r lsr 3)) land (1 lsl (r land 7)) <> 0
let bit_set b r =
  let i = r lsr 3 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lor (1 lsl (r land 7))))

let bytes_for n = Bytes.make ((n + 7) / 8) '\000'

(* dst <- dst ∪ src; returns true if dst changed. *)
let union_into dst src =
  let changed = ref false in
  for i = 0 to Bytes.length dst - 1 do
    let d = Char.code (Bytes.get dst i) and s = Char.code (Bytes.get src i) in
    let u = d lor s in
    if u <> d then begin
      Bytes.set dst i (Char.chr u);
      changed := true
    end
  done;
  !changed

let compute_liveness (p : Program.t) =
  let n = Array.length p.body in
  let labels = Program.find_labels p in
  let live_f = Array.init n (fun _ -> bytes_for p.n_fregs) in
  let live_i = Array.init n (fun _ -> bytes_for p.n_iregs) in
  let live_p = Array.init n (fun _ -> bytes_for p.n_pregs) in
  let dus = Array.map def_use p.body in
  let succs = Array.init n (successors p labels) in
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = n - 1 downto 0 do
      let (df, uf), (di, ui), (dp, up) = dus.(pc) in
      let step live defs uses nbits get_live =
        (* out = ∪ succ live-in; in = uses ∪ (out − defs) *)
        let out = bytes_for nbits in
        List.iter (fun s -> ignore (union_into out (get_live s))) succs.(pc);
        List.iter (fun d ->
          let i = d lsr 3 in
          Bytes.set out i (Char.chr (Char.code (Bytes.get out i) land lnot (1 lsl (d land 7))))) defs;
        List.iter (fun u -> bit_set out u) uses;
        if union_into live out then changed := true
      in
      step live_f.(pc) df uf p.n_fregs (fun s -> live_f.(s));
      step live_i.(pc) di ui p.n_iregs (fun s -> live_i.(s));
      step live_p.(pc) dp up p.n_pregs (fun s -> live_p.(s))
    done
  done;
  ({ live_f; live_i; live_p }, dus)

let max_live sets nregs =
  let best = ref 0 in
  Array.iter
    (fun b ->
      let count = ref 0 in
      for r = 0 to nregs - 1 do
        if bit_get b r then incr count
      done;
      if !count > !best then best := !count)
    sets;
  !best

let pressure p =
  let lv, _ = compute_liveness p in
  { fregs = max_live lv.live_f p.n_fregs;
    iregs = max_live lv.live_i p.n_iregs;
    pregs = max_live lv.live_p p.n_pregs }

(* Live intervals: [start, stop] over instruction positions. A register
   is "occupied" at pc if live-in at pc, or defined at pc. *)
let intervals sets dus ~select ~nregs =
  let n = Array.length sets in
  let start = Array.make nregs max_int and stop = Array.make nregs (-1) in
  for pc = 0 to n - 1 do
    for r = 0 to nregs - 1 do
      if bit_get sets.(pc) r then begin
        if pc < start.(r) then start.(r) <- pc;
        if pc > stop.(r) then stop.(r) <- pc
      end
    done;
    let defs, uses = select dus.(pc) in
    List.iter
      (fun r ->
        if pc < start.(r) then start.(r) <- pc;
        if pc > stop.(r) then stop.(r) <- pc)
      (defs @ uses)
  done;
  let out = ref [] in
  for r = nregs - 1 downto 0 do
    if stop.(r) >= 0 then out := (r, start.(r), stop.(r)) :: !out
  done;
  Array.of_list !out

let live_ranges p =
  let lv, dus = compute_liveness p in
  intervals lv.live_f dus
    ~select:(fun ((df, uf), _, _) -> (df, uf))
    ~nregs:p.n_fregs

(* Linear scan over intervals: assign the smallest physical register free
   over the whole interval. *)
let linear_scan ivals =
  let ivals = Array.copy ivals in
  Array.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2) ivals;
  let assignment = Hashtbl.create 64 in
  (* active: (stop, phys) list *)
  let active = ref [] in
  let free = ref [] in
  let next = ref 0 in
  Array.iter
    (fun (r, start, stop) ->
      let still, expired = List.partition (fun (e, _) -> e >= start) !active in
      List.iter (fun (_, phys) -> free := phys :: !free) expired;
      active := still;
      let phys =
        match !free with
        | phys :: rest ->
          free := rest;
          phys
        | [] ->
          let phys = !next in
          incr next;
          phys
      in
      active := (stop, phys) :: !active;
      Hashtbl.replace assignment r phys)
    ivals;
  (assignment, !next)

let allocate (p : Program.t) =
  let lv, dus = compute_liveness p in
  let iv_f =
    intervals lv.live_f dus ~select:(fun ((f, uf), _, _) -> (f, uf)) ~nregs:p.n_fregs
  in
  let iv_i =
    intervals lv.live_i dus ~select:(fun (_, (i, ui), _) -> (i, ui)) ~nregs:p.n_iregs
  in
  let iv_p =
    intervals lv.live_p dus ~select:(fun (_, _, (pp, up)) -> (pp, up)) ~nregs:p.n_pregs
  in
  let map_f, nf = linear_scan iv_f in
  let map_i, ni = linear_scan iv_i in
  let map_p, np = linear_scan iv_p in
  let mf r = match Hashtbl.find_opt map_f r with Some x -> x | None -> 0 in
  let mi r = match Hashtbl.find_opt map_i r with Some x -> x | None -> 0 in
  let mp r = match Hashtbl.find_opt map_p r with Some x -> x | None -> 0 in
  let io = function
    | Ireg r -> Ireg (mi r)
    | (Iimm _ | Iparam _ | Ispecial _) as x -> x
  in
  let fo = function Freg r -> Freg (mf r) | Fimm _ as x -> x in
  let rewrite (instr : Instr.t) =
    let op =
      match instr.op with
      | Instr.Mov (d, a) -> Instr.Mov (mi d, io a)
      | Iadd (d, a, b) -> Iadd (mi d, io a, io b)
      | Isub (d, a, b) -> Isub (mi d, io a, io b)
      | Imul (d, a, b) -> Imul (mi d, io a, io b)
      | Imad (d, a, b, c) -> Imad (mi d, io a, io b, io c)
      | Idiv (d, a, b) -> Idiv (mi d, io a, io b)
      | Irem (d, a, b) -> Irem (mi d, io a, io b)
      | Imin (d, a, b) -> Imin (mi d, io a, io b)
      | Imax (d, a, b) -> Imax (mi d, io a, io b)
      | Ishl (d, a, b) -> Ishl (mi d, io a, io b)
      | Ishr (d, a, b) -> Ishr (mi d, io a, io b)
      | Iand (d, a, b) -> Iand (mi d, io a, io b)
      | Ior (d, a, b) -> Ior (mi d, io a, io b)
      | Setp (c, pr, a, b) -> Setp (c, mp pr, io a, io b)
      | And_p (d, a, b) -> And_p (mp d, mp a, mp b)
      | Or_p (d, a, b) -> Or_p (mp d, mp a, mp b)
      | Not_p (d, a) -> Not_p (mp d, mp a)
      | Movf (d, a) -> Movf (mf d, fo a)
      | Fadd (d, a, b) -> Fadd (mf d, fo a, fo b)
      | Fsub (d, a, b) -> Fsub (mf d, fo a, fo b)
      | Fmul (d, a, b) -> Fmul (mf d, fo a, fo b)
      | Fmax (d, a, b) -> Fmax (mf d, fo a, fo b)
      | Fmin (d, a, b) -> Fmin (mf d, fo a, fo b)
      | Ffma (d, a, b, c) -> Ffma (mf d, fo a, fo b, fo c)
      | Ld_global (d, slot, addr) -> Ld_global (mf d, slot, io addr)
      | Ld_global_i (d, slot, addr) -> Ld_global_i (mi d, slot, io addr)
      | Ld_shared (d, addr) -> Ld_shared (mf d, io addr)
      | Ld_shared_i (d, addr) -> Ld_shared_i (mi d, io addr)
      | St_global (slot, addr, v) -> St_global (slot, io addr, fo v)
      | St_shared (addr, v) -> St_shared (io addr, fo v)
      | St_shared_i (addr, v) -> St_shared_i (io addr, io v)
      | Atom_global_add (slot, addr, v) -> Atom_global_add (slot, io addr, fo v)
      | (Label _ | Bra _ | Bar | Ret) as x -> x
    in
    let guard = Option.map (fun (pr, sense) -> (mp pr, sense)) instr.guard in
    { Instr.op; guard }
  in
  { p with
    body = Array.map rewrite p.body;
    n_fregs = max 1 nf;
    n_iregs = max 1 ni;
    n_pregs = max 1 np }
