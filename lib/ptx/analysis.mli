(** Static analysis over program bodies: per-category instruction counts of
    the straight-line portions, used as a sanity cross-check against the
    interpreter's dynamic counters and by tests that pin the structure of
    generated kernels. *)

type mix = {
  ialu : int;
  fma : int;
  fp_other : int;
  ld_global : int;
  st_global : int;
  ld_shared : int;
  st_shared : int;
  atom : int;
  bar : int;
  branch : int;
  pred : int;
  mov : int;
}

val zero : mix
val add : mix -> mix -> mix
val total : mix -> int

val of_program : Program.t -> mix
(** Static (per-occurrence, not per-execution) instruction mix of the whole
    body. *)

val between_labels :
  Program.t -> start:string -> stop:string -> (mix, string) result
(** Mix of the instructions strictly between two labels. [Error]
    describes the failure (absent label, or labels out of order) instead
    of raising. Generators bracket their main loop with labels so tests
    and the timing model can inspect the loop body in isolation. *)
