open Types

(* Packed word layout (62 bits, fits an OCaml native int), low to high:

     [ 0.. 5]  opcode (Instr.opcode)
     [ 6.. 7]  guard kind: 0 none, 1 @%p, 2 @!%p
     [ 8..13]  guard predicate register
     [14..21]  destination register (ireg/freg/preg per opcode)
     [22..25]  aux: memory buffer slot, or Setp comparison code
     [26..37]  src0 \
     [38..49]  src1  } operand fields: [0..7] payload, [8..11] kind
     [50..61]  src2 /

   Operand kinds. Wide immediates spill to the constant pools; small
   integer immediates ride inline, biased by 128. *)

let k_none = 0
let k_ireg = 1
let k_freg = 2
let k_preg = 3
let k_imm = 4 (* inline, payload = value + 128, value in [-128, 127] *)
let k_ipool = 5
let k_fpool = 6
let k_special = 7
let k_param = 8
let k_str = 9

let sh_gkind = 6
let sh_gpreg = 8
let sh_dst = 14
let sh_aux = 22
let sh_src0 = 26
let sh_src1 = 38
let sh_src2 = 50

let special_index = function
  | Tid_x -> 0 | Tid_y -> 1 | Tid_z -> 2
  | Ctaid_x -> 3 | Ctaid_y -> 4 | Ctaid_z -> 5
  | Ntid_x -> 6 | Ntid_y -> 7 | Ntid_z -> 8
  | Nctaid_x -> 9 | Nctaid_y -> 10 | Nctaid_z -> 11

let special_of_index =
  [| Tid_x; Tid_y; Tid_z; Ctaid_x; Ctaid_y; Ctaid_z;
     Ntid_x; Ntid_y; Ntid_z; Nctaid_x; Nctaid_y; Nctaid_z |]

let cmp_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
let cmp_of_code = [| Eq; Ne; Lt; Le; Gt; Ge |]

type t = {
  name : string;
  dtype : Types.dtype;
  buf_params : string array;
  int_params : string array;
  shared_words : int;
  shared_int_words : int;
  n_fregs : int;
  n_iregs : int;
  n_pregs : int;
  words : int array;
  ctrl : int array;
  ipool : int array;
  fpool : float array;
  spool : string array;
}

(* ------------------------------------------------------------------ *)
(* Encode                                                             *)
(* ------------------------------------------------------------------ *)

exception Enc of string

let enc_fail pc fmt =
  Printf.ksprintf (fun s -> raise (Enc (Printf.sprintf "pc %d: %s" pc s))) fmt

let encode ?lat (p : Program.t) =
  try
    let stalls =
      match Scoreboard.instr_stalls ?lat p with
      | Ok s -> s
      | Error _ -> Array.make (max 1 (Array.length p.body)) 0
    in
    let itbl = Hashtbl.create 16 and ipool = ref [] and ni = ref 0 in
    let ftbl = Hashtbl.create 16 and fpool = ref [] and nf = ref 0 in
    let stbl = Hashtbl.create 16 and spool = ref [] and ns = ref 0 in
    let intern_i pc v =
      match Hashtbl.find_opt itbl v with
      | Some i -> i
      | None ->
        if !ni >= 256 then enc_fail pc "integer constant pool overflow (256)";
        let i = !ni in
        Hashtbl.add itbl v i; ipool := v :: !ipool; incr ni; i
    in
    let intern_f pc v =
      let key = Int64.bits_of_float v in
      match Hashtbl.find_opt ftbl key with
      | Some i -> i
      | None ->
        if !nf >= 256 then enc_fail pc "float constant pool overflow (256)";
        let i = !nf in
        Hashtbl.add ftbl key i; fpool := v :: !fpool; incr nf; i
    in
    let intern_s pc v =
      match Hashtbl.find_opt stbl v with
      | Some i -> i
      | None ->
        if !ns >= 256 then enc_fail pc "label pool overflow (256)";
        let i = !ns in
        Hashtbl.add stbl v i; spool := v :: !spool; incr ns; i
    in
    let reg pc what kind r =
      if r < 0 || r > 255 then
        enc_fail pc "%s register %d exceeds the 8-bit operand field" what r;
      (kind lsl 8) lor r
    in
    let iop pc = function
      | Ireg r -> reg pc "integer" k_ireg r
      | Iimm v ->
        if v >= -128 && v <= 127 then (k_imm lsl 8) lor (v + 128)
        else (k_ipool lsl 8) lor intern_i pc v
      | Iparam s ->
        if s < 0 || s > 255 then enc_fail pc "int parameter slot %d out of field" s;
        (k_param lsl 8) lor s
      | Ispecial s -> (k_special lsl 8) lor special_index s
    in
    let fop pc = function
      | Freg r -> reg pc "float" k_freg r
      | Fimm v -> (k_fpool lsl 8) lor intern_f pc v
    in
    let pop pc r = reg pc "predicate" k_preg r in
    let sop pc l = (k_str lsl 8) lor intern_s pc l in
    let words =
      Array.mapi
        (fun pc ({ Instr.op; guard } : Instr.t) ->
          let g =
            match guard with
            | None -> 0
            | Some (pr, sense) ->
              if pr < 0 || pr > 63 then
                enc_fail pc "guard predicate %d exceeds the 6-bit field" pr;
              ((if sense then 1 else 2) lsl sh_gkind) lor (pr lsl sh_gpreg)
          in
          let dst what r =
            if r < 0 || r > 255 then
              enc_fail pc "%s destination %d exceeds the 8-bit field" what r;
            r lsl sh_dst
          in
          let slot s =
            if s < 0 || s > 15 then
              enc_fail pc "buffer slot %d exceeds the 4-bit aux field" s;
            s lsl sh_aux
          in
          let s0 f = f lsl sh_src0 and s1 f = f lsl sh_src1 and s2 f = f lsl sh_src2 in
          let base = Instr.opcode op lor g in
          let io = iop pc and fo = fop pc and po = pop pc in
          match op with
          | Instr.Mov (d, a) -> base lor dst "ireg" d lor s0 (io a)
          | Iadd (d, a, b) | Isub (d, a, b) | Imul (d, a, b) | Idiv (d, a, b)
          | Irem (d, a, b) | Imin (d, a, b) | Imax (d, a, b) | Ishl (d, a, b)
          | Ishr (d, a, b) | Iand (d, a, b) | Ior (d, a, b) ->
            base lor dst "ireg" d lor s0 (io a) lor s1 (io b)
          | Imad (d, a, b, c) ->
            base lor dst "ireg" d lor s0 (io a) lor s1 (io b) lor s2 (io c)
          | Setp (c, d, a, b) ->
            base lor dst "preg" d lor (cmp_code c lsl sh_aux)
            lor s0 (io a) lor s1 (io b)
          | And_p (d, a, b) | Or_p (d, a, b) ->
            base lor dst "preg" d lor s0 (po a) lor s1 (po b)
          | Not_p (d, a) -> base lor dst "preg" d lor s0 (po a)
          | Movf (d, a) -> base lor dst "freg" d lor s0 (fo a)
          | Fadd (d, a, b) | Fsub (d, a, b) | Fmul (d, a, b) | Fmax (d, a, b)
          | Fmin (d, a, b) ->
            base lor dst "freg" d lor s0 (fo a) lor s1 (fo b)
          | Ffma (d, a, b, c) ->
            base lor dst "freg" d lor s0 (fo a) lor s1 (fo b) lor s2 (fo c)
          | Ld_global (d, sl, a) -> base lor dst "freg" d lor slot sl lor s0 (io a)
          | Ld_global_i (d, sl, a) -> base lor dst "ireg" d lor slot sl lor s0 (io a)
          | Ld_shared (d, a) -> base lor dst "freg" d lor s0 (io a)
          | Ld_shared_i (d, a) -> base lor dst "ireg" d lor s0 (io a)
          | St_global (sl, a, v) -> base lor slot sl lor s0 (io a) lor s1 (fo v)
          | St_shared (a, v) -> base lor s0 (io a) lor s1 (fo v)
          | St_shared_i (a, v) -> base lor s0 (io a) lor s1 (io v)
          | Atom_global_add (sl, a, v) ->
            base lor slot sl lor s0 (io a) lor s1 (fo v)
          | Label l -> base lor s0 (sop pc l)
          | Bra l -> base lor s0 (sop pc l)
          | Bar | Ret -> base)
        p.body
    in
    let ctrl = Array.mapi (fun pc _ -> min stalls.(pc) 255) p.body in
    Ok
      { name = p.name;
        dtype = p.dtype;
        buf_params = Array.copy p.buf_params;
        int_params = Array.copy p.int_params;
        shared_words = p.shared_words;
        shared_int_words = p.shared_int_words;
        n_fregs = p.n_fregs;
        n_iregs = p.n_iregs;
        n_pregs = p.n_pregs;
        words;
        ctrl;
        ipool = Array.of_list (List.rev !ipool);
        fpool = Array.of_list (List.rev !fpool);
        spool = Array.of_list (List.rev !spool) }
  with Enc msg -> Error (Printf.sprintf "%s: encode: %s" p.name msg)

(* ------------------------------------------------------------------ *)
(* Decode                                                             *)
(* ------------------------------------------------------------------ *)

exception Dec of string

let dec_fail pc fmt =
  Printf.ksprintf (fun s -> raise (Dec (Printf.sprintf "pc %d: %s" pc s))) fmt

let field_kind f = (f lsr 8) land 15
let field_payload f = f land 255

let decode t =
  try
    let body =
      Array.mapi
        (fun pc w ->
          let opc = w land 63 in
          let guard =
            match (w lsr sh_gkind) land 3 with
            | 0 -> None
            | 1 -> Some ((w lsr sh_gpreg) land 63, true)
            | 2 -> Some ((w lsr sh_gpreg) land 63, false)
            | _ -> dec_fail pc "bad guard kind"
          in
          let d = (w lsr sh_dst) land 255 in
          let aux = (w lsr sh_aux) land 15 in
          let f0 = (w lsr sh_src0) land 0xfff in
          let f1 = (w lsr sh_src1) land 0xfff in
          let f2 = (w lsr sh_src2) land 0xfff in
          let iop f =
            let v = field_payload f in
            match field_kind f with
            | k when k = k_ireg -> Ireg v
            | k when k = k_imm -> Iimm (v - 128)
            | k when k = k_ipool ->
              if v >= Array.length t.ipool then dec_fail pc "int pool index %d out of range" v;
              Iimm t.ipool.(v)
            | k when k = k_param -> Iparam v
            | k when k = k_special ->
              if v >= 12 then dec_fail pc "special index %d out of range" v;
              Ispecial special_of_index.(v)
            | k -> dec_fail pc "bad integer operand kind %d" k
          in
          let fop f =
            let v = field_payload f in
            match field_kind f with
            | k when k = k_freg -> Freg v
            | k when k = k_fpool ->
              if v >= Array.length t.fpool then dec_fail pc "float pool index %d out of range" v;
              Fimm t.fpool.(v)
            | k -> dec_fail pc "bad float operand kind %d" k
          in
          let pop f =
            if field_kind f <> k_preg then dec_fail pc "bad predicate operand kind %d" (field_kind f);
            field_payload f
          in
          let str f =
            let v = field_payload f in
            if field_kind f <> k_str then dec_fail pc "bad string operand kind %d" (field_kind f);
            if v >= Array.length t.spool then dec_fail pc "string pool index %d out of range" v;
            t.spool.(v)
          in
          let cmp () =
            if aux > 5 then dec_fail pc "bad comparison code %d" aux;
            cmp_of_code.(aux)
          in
          let op =
            match opc with
            | 0 -> Instr.Mov (d, iop f0)
            | 1 -> Iadd (d, iop f0, iop f1)
            | 2 -> Isub (d, iop f0, iop f1)
            | 3 -> Imul (d, iop f0, iop f1)
            | 4 -> Imad (d, iop f0, iop f1, iop f2)
            | 5 -> Idiv (d, iop f0, iop f1)
            | 6 -> Irem (d, iop f0, iop f1)
            | 7 -> Imin (d, iop f0, iop f1)
            | 8 -> Imax (d, iop f0, iop f1)
            | 9 -> Ishl (d, iop f0, iop f1)
            | 10 -> Ishr (d, iop f0, iop f1)
            | 11 -> Iand (d, iop f0, iop f1)
            | 12 -> Ior (d, iop f0, iop f1)
            | 13 -> Setp (cmp (), d, iop f0, iop f1)
            | 14 -> And_p (d, pop f0, pop f1)
            | 15 -> Or_p (d, pop f0, pop f1)
            | 16 -> Not_p (d, pop f0)
            | 17 -> Movf (d, fop f0)
            | 18 -> Fadd (d, fop f0, fop f1)
            | 19 -> Fsub (d, fop f0, fop f1)
            | 20 -> Fmul (d, fop f0, fop f1)
            | 21 -> Ffma (d, fop f0, fop f1, fop f2)
            | 22 -> Fmax (d, fop f0, fop f1)
            | 23 -> Fmin (d, fop f0, fop f1)
            | 24 -> Ld_global (d, aux, iop f0)
            | 25 -> Ld_global_i (d, aux, iop f0)
            | 26 -> Ld_shared (d, iop f0)
            | 27 -> Ld_shared_i (d, iop f0)
            | 28 -> St_global (aux, iop f0, fop f1)
            | 29 -> St_shared (iop f0, fop f1)
            | 30 -> St_shared_i (iop f0, iop f1)
            | 31 -> Atom_global_add (aux, iop f0, fop f1)
            | 32 -> Label (str f0)
            | 33 -> Bra (str f0)
            | 34 -> Bar
            | 35 -> Ret
            | n -> dec_fail pc "unknown opcode %d" n
          in
          { Instr.op; guard })
        t.words
    in
    let p =
      { Program.name = t.name;
        dtype = t.dtype;
        buf_params = Array.copy t.buf_params;
        int_params = Array.copy t.int_params;
        shared_words = t.shared_words;
        shared_int_words = t.shared_int_words;
        body;
        n_fregs = t.n_fregs;
        n_iregs = t.n_iregs;
        n_pregs = t.n_pregs }
    in
    match Program.validate p with
    | Ok () -> Ok p
    | Error e -> Error (Printf.sprintf "%s: decode: %s" t.name e)
  with Dec msg -> Error (Printf.sprintf "%s: decode: %s" t.name msg)

(* ------------------------------------------------------------------ *)
(* Wire format                                                        *)
(* ------------------------------------------------------------------ *)

let format_version = 1

let dtype_tag = function F16 -> 0 | F32 -> 1 | F64 -> 2

let add_str16 b s =
  Buffer.add_uint16_le b (String.length s);
  Buffer.add_string b s

(* [semantic] drops the entry name and the derived control info — the
   byte stream {!hash} covers. *)
let serialize ~semantic t =
  let b = Buffer.create (64 + (9 * Array.length t.words)) in
  Buffer.add_uint8 b format_version;
  Buffer.add_uint8 b (dtype_tag t.dtype);
  add_str16 b (if semantic then "" else t.name);
  Buffer.add_uint8 b (Array.length t.buf_params);
  Array.iter (add_str16 b) t.buf_params;
  Buffer.add_uint8 b (Array.length t.int_params);
  Array.iter (add_str16 b) t.int_params;
  Buffer.add_int32_le b (Int32.of_int t.shared_words);
  Buffer.add_int32_le b (Int32.of_int t.shared_int_words);
  Buffer.add_uint16_le b t.n_fregs;
  Buffer.add_uint16_le b t.n_iregs;
  Buffer.add_uint16_le b t.n_pregs;
  Buffer.add_int32_le b (Int32.of_int (Array.length t.words));
  Array.iter (fun w -> Buffer.add_int64_le b (Int64.of_int w)) t.words;
  if not semantic then Array.iter (fun c -> Buffer.add_uint8 b c) t.ctrl;
  Buffer.add_uint16_le b (Array.length t.ipool);
  Array.iter (fun v -> Buffer.add_int64_le b (Int64.of_int v)) t.ipool;
  Buffer.add_uint16_le b (Array.length t.fpool);
  Array.iter (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v)) t.fpool;
  Buffer.add_uint16_le b (Array.length t.spool);
  Array.iter (add_str16 b) t.spool;
  Buffer.contents b

let to_bytes t = serialize ~semantic:false t
let byte_size t = String.length (to_bytes t)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let hash t = fnv64 (serialize ~semantic:true t)
let hash_hex h = Printf.sprintf "%016Lx" h

let hash_program ?lat p =
  match encode ?lat p with Ok t -> Ok (hash t) | Error e -> Error e

exception Rd of string

let of_bytes s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      raise (Rd (Printf.sprintf "truncated packed kernel (%s at byte %d)" what !pos))
  in
  let u8 what = need 1 what; let v = Char.code s.[!pos] in incr pos; v in
  let u16 what = need 2 what; let v = String.get_uint16_le s !pos in pos := !pos + 2; v in
  let i32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v
  in
  let i64 what = need 8 what; let v = String.get_int64_le s !pos in pos := !pos + 8; v in
  let str16 what =
    let n = u16 what in
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    let v = u8 "version" in
    if v <> format_version then
      raise (Rd (Printf.sprintf "unsupported packed-kernel format version %d" v));
    let dtype =
      match u8 "dtype" with
      | 0 -> F16 | 1 -> F32 | 2 -> F64
      | n -> raise (Rd (Printf.sprintf "bad dtype tag %d" n))
    in
    let name = str16 "name" in
    let buf_params = Array.init (u8 "buf count") (fun _ -> str16 "buf param") in
    let int_params = Array.init (u8 "int count") (fun _ -> str16 "int param") in
    let shared_words = i32 "shared words" in
    let shared_int_words = i32 "shared int words" in
    let n_fregs = u16 "fregs" in
    let n_iregs = u16 "iregs" in
    let n_pregs = u16 "pregs" in
    let n_words = i32 "word count" in
    if n_words < 0 || n_words > 1_000_000 then
      raise (Rd (Printf.sprintf "implausible instruction count %d" n_words));
    let words = Array.init n_words (fun _ -> Int64.to_int (i64 "word")) in
    let ctrl = Array.init n_words (fun _ -> u8 "ctrl") in
    let ipool = Array.init (u16 "int pool") (fun _ -> Int64.to_int (i64 "int const")) in
    let fpool =
      Array.init (u16 "float pool") (fun _ -> Int64.float_of_bits (i64 "float const"))
    in
    let spool = Array.init (u16 "string pool") (fun _ -> str16 "label") in
    if !pos <> String.length s then
      raise (Rd (Printf.sprintf "%d trailing bytes" (String.length s - !pos)));
    Ok
      { name; dtype; buf_params; int_params; shared_words; shared_int_words;
        n_fregs; n_iregs; n_pregs; words; ctrl; ipool; fpool; spool }
  with Rd msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Dump                                                               *)
(* ------------------------------------------------------------------ *)

let field_describe t f =
  let v = field_payload f in
  let k = field_kind f in
  if k = k_none then "-"
  else if k = k_ireg then Printf.sprintf "r%d" v
  else if k = k_freg then Printf.sprintf "f%d" v
  else if k = k_preg then Printf.sprintf "p%d" v
  else if k = k_imm then Printf.sprintf "imm:%d" (v - 128)
  else if k = k_ipool then
    Printf.sprintf "ipool[%d]=%s" v
      (if v < Array.length t.ipool then string_of_int t.ipool.(v) else "?")
  else if k = k_fpool then
    Printf.sprintf "fpool[%d]=%s" v
      (if v < Array.length t.fpool then Printf.sprintf "%.17g" t.fpool.(v) else "?")
  else if k = k_special then
    Printf.sprintf "special:%s"
      (if v < 12 then Disasm.special_name special_of_index.(v) else "?")
  else if k = k_param then Printf.sprintf "param:%d" v
  else if k = k_str then
    Printf.sprintf "str[%d]=%s" v
      (if v < Array.length t.spool then t.spool.(v) else "?")
  else Printf.sprintf "kind%d:%d" k v

let dump t =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "// packed kernel %s  dtype=%s  words=%d  bytes=%d  hash=%s\n"
    t.name (dtype_name t.dtype) (Array.length t.words) (byte_size t)
    (hash_hex (hash t));
  Printf.bprintf b "// pools: int=%d float=%d str=%d\n"
    (Array.length t.ipool) (Array.length t.fpool) (Array.length t.spool);
  let prog = match decode t with Ok p -> Some p | Error _ -> None in
  Array.iteri
    (fun i w ->
      let text =
        match prog with
        | Some p -> String.trim (Disasm.instr p.dtype p.body.(i))
        | None -> "<undecodable>"
      in
      Printf.bprintf b "%04d  %016x  stall=%-3d %s\n" i w t.ctrl.(i) text;
      let gk = (w lsr sh_gkind) land 3 in
      let guard =
        match gk with
        | 0 -> "-"
        | 1 -> Printf.sprintf "@p%d" ((w lsr sh_gpreg) land 63)
        | _ -> Printf.sprintf "@!p%d" ((w lsr sh_gpreg) land 63)
      in
      Printf.bprintf b
        "      op=%d(%s) guard=%s dst=%d aux=%d s0=%s s1=%s s2=%s\n"
        (w land 63)
        (Instr.opcode_name (w land 63))
        guard
        ((w lsr sh_dst) land 255)
        ((w lsr sh_aux) land 15)
        (field_describe t ((w lsr sh_src0) land 0xfff))
        (field_describe t ((w lsr sh_src1) land 0xfff))
        (field_describe t ((w lsr sh_src2) land 0xfff)))
    t.words;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Kernel-corpus artifacts                                            *)
(* ------------------------------------------------------------------ *)

let corpus_kind = "isaac-packed-kernels"
let corpus_version = 1

let save_corpus ?fsync ~path kernels =
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun k ->
        let h = hash k in
        if Hashtbl.mem seen h then false
        else begin
          Hashtbl.add seen h ();
          true
        end)
      kernels
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b "kernels %d\n" (List.length uniq);
  List.iter
    (fun k ->
      let bytes = to_bytes k in
      Printf.bprintf b "kernel %s %d\n" (hash_hex (hash k)) (String.length bytes);
      Buffer.add_string b bytes;
      Buffer.add_char b '\n')
    uniq;
  Util.Artifact.write ?fsync ~path ~kind:corpus_kind ~version:corpus_version
    (Buffer.contents b)

let load_corpus ~path =
  match Util.Artifact.read ~path ~kind:corpus_kind ~max_version:corpus_version with
  | Error e -> Error (Util.Artifact.error_to_string ~path e)
  | Ok (_version, payload) -> (
    let pos = ref 0 in
    let line () =
      match String.index_from_opt payload !pos '\n' with
      | None -> Error "truncated corpus (missing newline)"
      | Some nl ->
        let l = String.sub payload !pos (nl - !pos) in
        pos := nl + 1;
        Ok l
    in
    let ( let* ) = Result.bind in
    let* header = line () in
    let* count =
      try Scanf.sscanf header "kernels %d" (fun n -> Ok n)
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        Error "bad corpus header"
    in
    let rec go acc remaining =
      if remaining = 0 then Ok (List.rev acc)
      else
        let* entry = line () in
        let* h, n =
          try Scanf.sscanf entry "kernel %s %d" (fun h n -> Ok (h, n))
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            Error "bad corpus entry header"
        in
        if !pos + n + 1 > String.length payload then Error "truncated corpus entry"
        else begin
          let bytes = String.sub payload !pos n in
          pos := !pos + n + 1;
          let* k = of_bytes bytes in
          if hash_hex (hash k) <> h then
            Error (Printf.sprintf "corpus entry hash mismatch (%s)" k.name)
          else go (k :: acc) (remaining - 1)
        end
    in
    go [] count)
